(* E19 — adaptive re-planning vs static re-execution under outages.

   For each workload we optimize once, simulate cleanly, then inject a
   single full-loss disk outage timed to destroy the checkpoint of the
   earliest-finished non-root stage, at several severities (outage
   duration as a multiple of the clean makespan).  The static baseline
   recovers with Restart_from_sync: it re-executes the lost checkpoint
   and stalls on the dead disk until the outage expires.  The adaptive
   run ([Recovery.Replan] via {!Parqo.Adaptive.simulate}) re-optimizes
   the residual query on the degraded machine — placement avoids the
   down disk — and splices the new plan in.

   Two invariants are enforced, not just reported:
   - without faults, the Replan policy is bit-identical to the clean
     simulator (same makespan and busy bits);
   - on every workload, at least one severity has the adaptive makespan
     strictly below the static one.

   Results go to BENCH_replan.json.  PARQO_SMOKE=1 shrinks the sweep
   (chain only, one severity) so CI gates stay fast. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module TG = Parqo.Task_graph
module Sim = Parqo.Simulator

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

type run = {
  workload : string;
  n_relations : int;
  severity : float;  (** outage duration / clean makespan *)
  outage_resource : int;
  clean_makespan : float;
  static_makespan : float;  (** Restart_from_sync *)
  adaptive_makespan : float;  (** Replan *)
  improvement : float;  (** static / adaptive *)
  n_replans : int;
}

let json_of_run r =
  Printf.sprintf
    "  {\"workload\": %S, \"n_relations\": %d, \"severity\": %.2f, \
     \"outage_resource\": %d, \"clean_makespan\": %.3f, \
     \"static_makespan\": %.3f, \"adaptive_makespan\": %.3f, \
     \"improvement\": %.3f, \"n_replans\": %d}"
    r.workload r.n_relations r.severity r.outage_resource r.clean_makespan
    r.static_makespan r.adaptive_makespan r.improvement r.n_replans

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\": [\"workload\", \"n_relations\", \"severity\", \
     \"outage_resource\", \"clean_makespan\", \"static_makespan\", \
     \"adaptive_makespan\", \"improvement\", \"n_replans\"],\n\
     \"smoke\": %b,\n\"runs\": [\n%s\n]}\n"
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

let optimize env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  match (Parqo.Optimizer.minimize_response_time ~config env).Parqo.Optimizer.best with
  | Some b -> b
  | None -> failwith "E19: no plan found"

(* the checkpointed stage whose loss the outage engineers: earliest
   finished non-root stage that put work on some disk *)
let pick_target machine (g : TG.t) (clean : Sim.outcome) =
  let disk_ids = Parqo.Machine.disk_ids machine in
  let stage_disk (s : TG.stage) =
    List.find_opt
      (fun d ->
        List.exists
          (fun (t : TG.task) ->
            Array.length t.TG.demands > d && t.TG.demands.(d) > 0.)
          s.TG.tasks)
      disk_ids
  in
  let candidates =
    List.filter_map
      (fun (sid, fin) ->
        if sid = g.TG.root_stage then None
        else
          let s = g.TG.stages.(sid) in
          if s.TG.op_root = None then None
          else Option.map (fun d -> (sid, fin, d)) (stage_disk s))
      clean.Sim.stage_finish
  in
  match
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) candidates
  with
  | [] -> None
  | (sid, fin, d) :: _ -> Some (sid, fin, d)

let bits = Int64.bits_of_float

let check_identity name (clean : Sim.outcome) (r : Parqo.Adaptive.result) =
  let o = r.Parqo.Adaptive.outcome in
  let same =
    bits o.Sim.makespan = bits clean.Sim.makespan
    && Array.for_all2 (fun a b -> bits a = bits b) o.Sim.busy clean.Sim.busy
    && o.Sim.n_replans = 0
  in
  if not same then
    failwith
      (Printf.sprintf
         "E19: %s fault-free Replan diverged from the clean simulator" name)

let run () =
  Common.header "E19 — adaptive re-planning vs static recovery (outage sweep)"
    [
      "A full-loss disk outage destroys a finished checkpoint.  static:";
      "Restart_from_sync re-executes it, stalling on the dead disk until";
      "the outage expires.  adaptive: Recovery.Replan re-optimizes the";
      "residual query on the degraded machine and splices the plan in.";
      "severity = outage duration / clean makespan.";
      (if smoke then "[smoke mode]" else "");
    ];
  let workloads =
    if smoke then [ ("chain", Parqo.Query_gen.Chain, 6) ]
    else
      [
        ("chain", Parqo.Query_gen.Chain, 6);
        ("star", Parqo.Query_gen.Star, 6);
        ("clique", Parqo.Query_gen.Clique, 5);
      ]
  in
  let severities = if smoke then [ 2.0 ] else [ 0.5; 1.0; 2.0 ] in
  let tbl =
    T.create ~title:"R19. makespan: static Restart_from_sync vs adaptive Replan"
      ~columns:
        [
          ("workload", T.Left);
          ("sev", T.Right);
          ("clean", T.Right);
          ("static", T.Right);
          ("adaptive", T.Right);
          ("static/adapt", T.Right);
          ("replans", T.Right);
        ]
  in
  let runs = ref [] in
  List.iter
    (fun (name, shape, n) ->
      let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
      let env = Common.shape_env ~nodes:4 shape n in
      let best = optimize env in
      let optree =
        Parqo.Expand.expand ~config:env.Parqo.Env.expand_config
          env.Parqo.Env.estimator best.Cm.tree
      in
      let g = TG.of_optree env optree in
      let clean = Sim.run g in
      check_identity name clean
        (Parqo.Adaptive.simulate ~recovery:(Parqo.Recovery.replan ()) env
           best.Cm.tree);
      match pick_target machine g clean with
      | None -> failwith (Printf.sprintf "E19: %s has no checkpointed stage" name)
      | Some (_sid, fin, disk) ->
        let improved = ref false in
        List.iter
          (fun severity ->
            let outage =
              {
                Parqo.Fault.resource = disk;
                at = fin +. (0.01 *. clean.Sim.makespan);
                duration = severity *. clean.Sim.makespan;
                factor = 0.;
              }
            in
            let faults = { Parqo.Fault.none with Parqo.Fault.outages = [ outage ] } in
            let static_sim =
              Sim.run ~faults ~recovery:Parqo.Recovery.Restart_from_sync g
            in
            let adaptive =
              Parqo.Adaptive.simulate ~faults
                ~recovery:(Parqo.Recovery.replan ()) env best.Cm.tree
            in
            let a = adaptive.Parqo.Adaptive.outcome in
            if a.Sim.makespan < static_sim.Sim.makespan then improved := true;
            let row =
              {
                workload = name;
                n_relations = n;
                severity;
                outage_resource = disk;
                clean_makespan = clean.Sim.makespan;
                static_makespan = static_sim.Sim.makespan;
                adaptive_makespan = a.Sim.makespan;
                improvement = static_sim.Sim.makespan /. a.Sim.makespan;
                n_replans = a.Sim.n_replans;
              }
            in
            runs := row :: !runs;
            T.add_row tbl
              [
                name;
                Common.cell ~decimals:1 severity;
                Common.cell row.clean_makespan;
                Common.cell row.static_makespan;
                Common.cell row.adaptive_makespan;
                Common.cell ~decimals:3 row.improvement;
                Common.celli row.n_replans;
              ])
          severities;
        T.add_rule tbl;
        if not !improved then
          failwith
            (Printf.sprintf
               "E19: adaptive never beat static recovery on %s" name))
    workloads;
  T.print tbl;
  write_json "BENCH_replan.json" (List.rev !runs);
  Printf.printf "wrote BENCH_replan.json (%d runs)\n\n" (List.length !runs)
