(* The experiment harness: regenerates every quantitative artifact of the
   paper (see DESIGN.md section 3) and runs the micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 -- all tables, then micro
     dune exec bench/main.exe -- --tables     -- tables only
     dune exec bench/main.exe -- --micro      -- micro-benchmarks only
     dune exec bench/main.exe -- --only e12   -- one experiment (e1..e12)
*)

let experiments =
  [
    ("e1", Exp_table1.run);
    ("e2", Exp_examples.run);
    ("e4", Exp_theorem3.run);
    ("e5", Exp_desiderata.run);
    ("e6", Exp_bounds.run);
    ("e7", Exp_bushy.run);
    ("e8", Exp_cover.run);
    ("e9", Exp_fidelity.run);
    ("e10", Exp_speedup.run);
    ("e11", Exp_scale.run);
    ("e12", Exp_crossover.run);
    ("e13", Exp_twophase.run);
    ("e14", Exp_estimation.run);
    ("e15", Exp_robustness.run);
    ("e16", Exp_faults.run);
    ("e17", Exp_parsearch.run);
    ("e18", Exp_cost.run);
    ("e19", Exp_replan.run);
    ("e20", Exp_serve.run);
    ("e22", Exp_sched.run);
    ("e23", Exp_hetero.run);
  ]

let tables () = List.iter (fun (_, run) -> run ()) experiments

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let t0 = Unix.gettimeofday () in
  let rec only = function
    | "--only" :: name :: _ -> Some (String.lowercase_ascii name)
    | _ :: rest -> only rest
    | [] -> None
  in
  let rec csv = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> csv rest
    | [] -> None
  in
  Parqo.Tableau.set_csv_dir (csv args);
  (match only args with
  | Some name -> (
    match List.assoc_opt name experiments with
    | Some run -> run ()
    | None ->
      Printf.eprintf "unknown experiment %s (known: %s)\n" name
        (String.concat ", " (List.map fst experiments));
      exit 1)
  | None ->
    if has "--micro" then Micro.run ()
    else if has "--tables" then tables ()
    else begin
      tables ();
      Micro.run ()
    end);
  Printf.printf "total harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
