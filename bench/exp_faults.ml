(* E16 — failure-aware plan choice: pipelined → materialized crossover.

   The failure-oblivious baseline is the failure-aware optimizer run at
   fault rate 0, where the expected re-execution penalty vanishes and the
   objective degenerates to plain response time.  At positive rates the
   optimizer ranks plans by [Faultcost.expected_response_time] (response
   time plus rate·n·W/2 per pipelined segment), so it trades pipelining
   for materialized (checkpoint) edges; we validate each choice by
   simulating BOTH plans under the same injected faults (fixed seed,
   Restart_stage recovery) and comparing recovered makespans. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let count_materialized root =
  Parqo.Op.fold
    (fun acc (n : Parqo.Op.node) ->
      match n.Parqo.Op.composition with
      | Parqo.Op.Materialized -> acc + 1
      | Parqo.Op.Pipelined -> acc)
    0 root

(* mean recovered makespan over a fixed seed set (deterministic); both
   plans see the same seeds, hence the same injection schedule process *)
let simulate env ~fault_rate (e : Cm.eval) =
  if fault_rate <= 0. then
    (Parqo.Simulator.simulate_plan env e.Cm.tree).Parqo.Simulator.makespan
  else
    let total =
      List.fold_left
        (fun acc seed ->
          let sim =
            Parqo.Simulator.simulate_plan
              ~faults:(Parqo.Fault.default ~seed ~fault_rate ())
              ~recovery:Parqo.Recovery.Restart_stage env e.Cm.tree
          in
          acc +. sim.Parqo.Simulator.makespan)
        0. seeds
    in
    total /. float_of_int (List.length seeds)

let optimize_fa config env ~fault_rate =
  match
    (Parqo.Optimizer.minimize_response_time ~config
       ~metric:
         (Parqo.Metric.with_ordering
            (Parqo.Metric.expected_makespan env ~fault_rate))
       ~rank:(Parqo.Faultcost.expected_response_time env ~fault_rate)
       env)
      .Parqo.Optimizer.best
  with
  | Some b -> b
  | None -> failwith "no plan"

let run () =
  Common.header "E16 — failure-aware plan choice (fault-rate sweep)"
    [
      "baseline: failure-aware optimizer at rate 0 (= plain response";
      "time).  fault-aware: ranks by RT + expected re-execution penalty;";
      "both plans then simulated under the SAME injected faults (seed";
      "fixed, Restart_stage).  mat = materialized operator-tree edges.";
    ];
  let tbl =
    T.create ~title:"R16. recovered makespan: baseline vs fault-aware plan"
      ~columns:
        [
          ("query", T.Left);
          ("rate", T.Right);
          ("base mat", T.Right);
          ("fa mat", T.Right);
          ("base sim", T.Right);
          ("fa sim", T.Right);
          ("base/fa", T.Right);
          ("plan", T.Left);
        ]
  in
  (* clone degrees below the node count leave capacity for stages to
     overlap, so pipelining has genuine response-time value at rate 0 and
     the materialization trade-off is not vacuous *)
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let config =
    {
      (Parqo.Space.parallel_config machine) with
      Parqo.Space.clone_degrees = [ 1; 2 ];
    }
  in
  List.iter
    (fun (label, shape, n) ->
      let catalog, query =
        Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
      in
      let env = Parqo.Env.create ~machine ~catalog ~query () in
      let baseline = optimize_fa config env ~fault_rate:0. in
      List.iter
        (fun fault_rate ->
          let fa = optimize_fa config env ~fault_rate in
          let same =
            Parqo.Join_tree.to_string fa.Cm.tree
            = Parqo.Join_tree.to_string baseline.Cm.tree
          in
          let base_sim = simulate env ~fault_rate baseline in
          let fa_sim = simulate env ~fault_rate fa in
          T.add_row tbl
            [
              label;
              Common.cell ~decimals:2 fault_rate;
              string_of_int (count_materialized baseline.Cm.optree);
              string_of_int (count_materialized fa.Cm.optree);
              Common.cell base_sim;
              Common.cell fa_sim;
              Common.cell ~decimals:3 (base_sim /. fa_sim);
              (if same then "= baseline" else "switched");
            ])
        (* rates beyond ~0.3 saturate the per-stage retry budget
           (max_fail_attempts) and every stage becomes its own failure
           domain, which penalizes extra checkpoints; the interesting
           crossover lives below that *)
        [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
      T.add_rule tbl)
    [
      ("chain-4", Parqo.Query_gen.Chain, 4);
      ("star-4", Parqo.Query_gen.Star, 4);
    ];
  T.print tbl
