(* E17 / E21 — domain-parallel partial-order DP search (the §6 hot path).

   Sweeps the PODP search over requested domains ∈ {1, 2, 4, 8} on
   generated workloads, with ONE persistent worker pool per domain count
   reused across all repeats — the pool spawns its workers once, parks
   them between level regions, and the JSON records how many domains
   were actually spawned and used (the pool clamps to the core count by
   default, so requested and effective domains can differ).

   The headline column is OVERHEAD = wall(d) / wall(1): the price of
   running the parallel machinery at all.  On a single-core box the
   clamp makes every run effectively sequential, so overhead measures
   pure coordination cost and must stay ≤ 1.05×; on a multicore box the
   same column doubles as 1/speedup.  Every parallel run is verified
   bit-identical to the sequential one (same best plan, cover, level
   sizes, and plans_expanded — the deterministic merge contract).

   PARQO_SMOKE=1 shrinks the sweep (one small workload, domains
   {1, 2, 4}) and gates CI: overhead at the largest domain count must
   stay ≤ 1.3× (looser than the full-run bound because the smoke
   workload's runtime is milliseconds, where constant costs loom
   large).  Violations fail the process loudly. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module Stats = Parqo.Search_stats
module Pool = Parqo.Domain_pool

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

(* the smoke bound is asserted in CI; the full-run bound documents the
   acceptance criterion and is asserted when regenerating the JSON *)
let overhead_limit = if smoke then 1.3 else 1.05

let plan_string (e : Cm.eval) = Parqo.Join_tree.to_string e.Cm.tree

type run = {
  workload : string;
  n_relations : int;
  domains : int;  (* requested *)
  effective_domains : int;  (* pool width after the core-count clamp *)
  spawned : int;  (* worker domains the pool actually created *)
  wall_ms : float;
  overhead : float;  (* wall(d) / wall(1): ≤ 1 means speedup *)
  speedup : float;
  plans_expanded : int;
  levels : Stats.level list;  (* per-level wall time and domain use *)
}

let json_of_level (l : Stats.level) =
  Printf.sprintf "{\"level\": %d, \"wall_ms\": %.3f, \"domains\": %d}"
    l.Stats.level l.Stats.wall_ms l.Stats.domains

let json_of_run r =
  Printf.sprintf
    "  {\"workload\": %S, \"n_relations\": %d, \"domains\": %d, \
     \"effective_domains\": %d, \"spawned\": %d, \"wall_ms\": %.3f, \
     \"overhead\": %.3f, \"speedup\": %.3f, \"plans_expanded\": %d, \
     \"levels\": [%s]}"
    r.workload r.n_relations r.domains r.effective_domains r.spawned r.wall_ms
    r.overhead r.speedup r.plans_expanded
    (String.concat ", " (List.map json_of_level r.levels))

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
     \"schema\": [\"workload\", \"n_relations\", \"domains\", \
     \"effective_domains\", \"spawned\", \"wall_ms\", \"overhead\", \
     \"speedup\", \"plans_expanded\", \"levels\"],\n\
     \"cores\": %d,\n\"smoke\": %b,\n\"overhead_limit\": %.2f,\n\"runs\": [\n%s\n]}\n"
    (Domain.recommended_domain_count ())
    smoke overhead_limit
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

(* beam cap 8: the sweep measures the level loop's scaling, not cover
   growth; the cap keeps one run in the seconds at n = 8 *)
let optimize ~pool env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let metric = Parqo.Optimizer.default_metric env in
  Parqo.Podp.optimize ~config ~metric ~max_cover:8 ~pool env

let check_identical name (base : Parqo.Podp.result) (r : Parqo.Podp.result) =
  let plan_of (res : Parqo.Podp.result) =
    match res.Parqo.Podp.best with Some e -> plan_string e | None -> "<none>"
  in
  let same_best = String.equal (plan_of base) (plan_of r) in
  let same_cover =
    List.length base.Parqo.Podp.cover = List.length r.Parqo.Podp.cover
    && List.for_all2
         (fun a b -> String.equal (plan_string a) (plan_string b))
         base.Parqo.Podp.cover r.Parqo.Podp.cover
  in
  let same_levels = base.Parqo.Podp.level_sizes = r.Parqo.Podp.level_sizes in
  let same_expanded =
    base.Parqo.Podp.stats.Stats.generated = r.Parqo.Podp.stats.Stats.generated
  in
  if not (same_best && same_cover && same_levels && same_expanded) then
    failwith
      (Printf.sprintf
         "E17: %s parallel result diverged from sequential (best %b cover %b \
          levels %b expanded %b)"
         name same_best same_cover same_levels same_expanded)

(* all repeats share [pool]: worker spawn cost is paid once at pool
   creation, which is the production shape (Twophase/serve reuse one
   pool per process) and what the min-over-repeats should measure *)
let time_once ~pool env =
  let t0 = Unix.gettimeofday () in
  let r = optimize ~pool env in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

(* Overhead is a ratio of ~second-scale wall clocks on a possibly noisy
   host, so the baseline is NOT measured once up front: machine drift
   (thermal, neighbours) over a minutes-long sweep easily exceeds the
   5% bound being asserted.  Instead each domain count's repeats are
   interleaved with fresh baseline runs on a persistent domains=1 pool,
   and overhead = min(parallel) / min(paired baseline) — the drift hits
   both sides of the ratio. *)
let time_paired ~repeats ~base_pool ~pool env =
  let best_b = ref infinity and best_d = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let _, db = time_once ~pool:base_pool env in
    if db < !best_b then best_b := db;
    let r, dd = time_once ~pool env in
    if dd < !best_d then best_d := dd;
    result := Some r
  done;
  (Option.get !result, !best_d, !best_b)

let run () =
  Common.header "E17 — domain-parallel partial-order DP search"
    [
      "PODP level loop partitioned across a persistent OCaml 5 domain pool;";
      "workers spawned once, parked between levels, chunked work claiming.";
      "Wall-clock = min over repeats on one reused pool per domain count;";
      "every parallel run is checked bit-identical to the sequential one.";
      (Printf.sprintf "cores available: %d%s"
         (Domain.recommended_domain_count ())
         (if smoke then "  [smoke mode]" else ""));
    ];
  let workloads =
    if smoke then [ (Parqo.Query_gen.Chain, 5) ]
    else [ (Parqo.Query_gen.Chain, 8); (Parqo.Query_gen.Star, 8) ]
  in
  let domain_counts = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let repeats = if smoke then 3 else 2 in
  let tbl =
    T.create ~title:"P17. PODP wall time vs domains"
      ~columns:
        [
          ("workload", T.Left);
          ("n", T.Right);
          ("domains", T.Right);
          ("eff", T.Right);
          ("wall ms", T.Right);
          ("overhead", T.Right);
          ("speedup", T.Right);
          ("expanded", T.Right);
        ]
  in
  let runs = ref [] in
  let violations = ref [] in
  List.iter
    (fun (shape, n) ->
      let name = Parqo.Query_gen.shape_to_string shape in
      let env = Common.shape_env ~nodes:4 shape n in
      Pool.with_pool ~domains:1 (fun base_pool ->
      let base_r = ref None in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let r, wall_ms, base_ms =
                if domains = 1 then
                  (* the d=1 row: one timed run per repeat, paired with
                     itself — overhead is 1 by construction *)
                  let best = ref infinity and result = ref None in
                  for _ = 1 to repeats do
                    let r, dt = time_once ~pool env in
                    if dt < !best then best := dt;
                    result := Some r
                  done;
                  (Option.get !result, !best, !best)
                else time_paired ~repeats ~base_pool ~pool env
              in
              (match !base_r with
               | None -> base_r := Some r
               | Some b -> check_identical name b r);
              let overhead = wall_ms /. base_ms in
              if domains > 1 && overhead > overhead_limit then
                violations :=
                  Printf.sprintf "%s-%d domains=%d overhead %.3f > %.2f" name n
                    domains overhead overhead_limit
                  :: !violations;
              let row =
                {
                  workload = name;
                  n_relations = n;
                  domains;
                  effective_domains = Pool.width pool;
                  spawned = (Pool.stats pool).Pool.spawned;
                  wall_ms;
                  overhead;
                  speedup = base_ms /. wall_ms;
                  plans_expanded = r.Parqo.Podp.stats.Stats.generated;
                  levels = Stats.levels r.Parqo.Podp.stats;
                }
              in
              runs := row :: !runs;
              T.add_row tbl
                [
                  name;
                  Common.celli n;
                  Common.celli domains;
                  Common.celli row.effective_domains;
                  Common.cell ~decimals:1 wall_ms;
                  Common.cell ~decimals:2 overhead;
                  Common.cell ~decimals:2 row.speedup;
                  Common.celli row.plans_expanded;
                ]))
        domain_counts))
    workloads;
  T.print tbl;
  write_json "BENCH_search.json" (List.rev !runs);
  Printf.printf "wrote BENCH_search.json (%d runs)\n\n" (List.length !runs);
  match !violations with
  | [] -> ()
  | v ->
    (* the gate CI relies on: parallel machinery must be near-free *)
    List.iter (Printf.eprintf "E17 OVERHEAD VIOLATION: %s\n") (List.rev v);
    failwith
      (Printf.sprintf "E17: %d run(s) exceeded the %.2fx overhead limit"
         (List.length v) overhead_limit)
