(* E17 — domain-parallel partial-order DP search (the §6 hot path).

   Sweeps the PODP search over domains ∈ {1, 2, 4, 8} on generated
   workloads and verifies along the way that every parallel run returns
   exactly the sequential plan, cover and level sizes (the deterministic
   merge contract).  Wall-clock per run is the minimum over repeats;
   results are appended to BENCH_search.json — the perf trajectory the
   roadmap tracks.

   PARQO_SMOKE=1 shrinks the sweep (one small workload, domains {1,2},
   one repeat) so CI gates stay fast.  Speedups are only meaningful on a
   multicore machine; the JSON records the core count alongside. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module Stats = Parqo.Search_stats

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

let plan_string (e : Cm.eval) = Parqo.Join_tree.to_string e.Cm.tree

type run = {
  workload : string;
  n_relations : int;
  domains : int;
  wall_ms : float;
  speedup : float;
  plans_expanded : int;
}

let json_of_run r =
  Printf.sprintf
    "  {\"workload\": %S, \"n_relations\": %d, \"domains\": %d, \
     \"wall_ms\": %.3f, \"speedup\": %.3f, \"plans_expanded\": %d}"
    r.workload r.n_relations r.domains r.wall_ms r.speedup r.plans_expanded

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\": [\"workload\", \"n_relations\", \"domains\", \
     \"wall_ms\", \"speedup\", \"plans_expanded\"],\n\
     \"cores\": %d,\n\"smoke\": %b,\n\"runs\": [\n%s\n]}\n"
    (Domain.recommended_domain_count ())
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

(* beam cap 8: the sweep measures the level loop's scaling, not cover
   growth; the cap keeps one run in the tens of seconds at n = 8 *)
let optimize ~domains env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let metric = Parqo.Optimizer.default_metric env in
  Parqo.Podp.optimize ~config ~metric ~max_cover:8 ~domains env

let check_identical name (base : Parqo.Podp.result) (r : Parqo.Podp.result) =
  let plan_of (res : Parqo.Podp.result) =
    match res.Parqo.Podp.best with Some e -> plan_string e | None -> "<none>"
  in
  let same_best = String.equal (plan_of base) (plan_of r) in
  let same_cover =
    List.length base.Parqo.Podp.cover = List.length r.Parqo.Podp.cover
    && List.for_all2
         (fun a b -> String.equal (plan_string a) (plan_string b))
         base.Parqo.Podp.cover r.Parqo.Podp.cover
  in
  let same_levels = base.Parqo.Podp.level_sizes = r.Parqo.Podp.level_sizes in
  if not (same_best && same_cover && same_levels) then
    failwith
      (Printf.sprintf
         "E17: %s parallel result diverged from sequential (best %b cover %b \
          levels %b)"
         name same_best same_cover same_levels)

let time_run ~repeats ~domains env =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = optimize ~domains env in
    let dt = (Unix.gettimeofday () -. t0) *. 1000. in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let run () =
  Common.header "E17 — domain-parallel partial-order DP search"
    [
      "PODP level loop partitioned across OCaml 5 domains; per-level";
      "barriers, deterministic cover merge.  Wall-clock = min over repeats;";
      "every parallel run is checked bit-identical to the sequential one.";
      (Printf.sprintf "cores available: %d%s"
         (Domain.recommended_domain_count ())
         (if smoke then "  [smoke mode]" else ""));
    ];
  let workloads =
    if smoke then [ (Parqo.Query_gen.Chain, 5) ]
    else [ (Parqo.Query_gen.Chain, 8); (Parqo.Query_gen.Star, 8) ]
  in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let repeats = 1 in
  let tbl =
    T.create ~title:"P17. PODP wall time vs domains"
      ~columns:
        [
          ("workload", T.Left);
          ("n", T.Right);
          ("domains", T.Right);
          ("wall ms", T.Right);
          ("speedup", T.Right);
          ("expanded", T.Right);
        ]
  in
  let runs = ref [] in
  List.iter
    (fun (shape, n) ->
      let name = Parqo.Query_gen.shape_to_string shape in
      let env = Common.shape_env ~nodes:4 shape n in
      let base, base_ms = time_run ~repeats ~domains:1 env in
      List.iter
        (fun domains ->
          let r, wall_ms =
            if domains = 1 then (base, base_ms)
            else time_run ~repeats ~domains env
          in
          check_identical name base r;
          let row =
            {
              workload = name;
              n_relations = n;
              domains;
              wall_ms;
              speedup = base_ms /. wall_ms;
              plans_expanded = r.Parqo.Podp.stats.Stats.generated;
            }
          in
          runs := row :: !runs;
          T.add_row tbl
            [
              name;
              Common.celli n;
              Common.celli domains;
              Common.cell ~decimals:1 wall_ms;
              Common.cell ~decimals:2 row.speedup;
              Common.celli row.plans_expanded;
            ])
        domain_counts)
    workloads;
  T.print tbl;
  write_json "BENCH_search.json" (List.rev !runs);
  Printf.printf "wrote BENCH_search.json (%d runs)\n\n" (List.length !runs)
