(* E20 — the optimizer as a service under load and chaos.

   A fixed pool of queries over a clique catalog is served from a
   Poisson request stream at several arrival intensities, chaos off and
   on (slow requests, transient failures, mid-request catalog epoch
   bumps).  Reported per cell: disposition counts, retries, cache
   behaviour, virtual throughput and latency percentiles.

   Two invariants are enforced, not just reported:
   - no request is ever lost: planned + degraded + rejected equals the
     stream length in every cell, chaos included, and every admitted
     request carries a plan;
   - admission control holds: max in-flight never exceeds the queue cap.

   Results go to BENCH_serve.json.  PARQO_SMOKE=1 shrinks the stream so
   CI gates stay fast. *)

module T = Parqo.Tableau
module Server = Parqo_serve.Server
module Chaos = Parqo_serve.Chaos

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

type run = {
  arrival : string;
  rate : float;
  chaos : bool;
  n_requests : int;
  planned : int;
  degraded : int;
  rejected : int;
  retries : int;
  epoch_bumps : int;
  cache_hits : int;
  throughput_qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let json_of_run r =
  Printf.sprintf
    "  {\"arrival\": %S, \"rate\": %.1f, \"chaos\": %b, \"n_requests\": %d, \
     \"planned\": %d, \"degraded\": %d, \"rejected\": %d, \"retries\": %d, \
     \"epoch_bumps\": %d, \"cache_hits\": %d, \"throughput_qps\": %.2f, \
     \"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f}"
    r.arrival r.rate r.chaos r.n_requests r.planned r.degraded r.rejected
    r.retries r.epoch_bumps r.cache_hits r.throughput_qps r.p50_ms r.p95_ms
    r.p99_ms

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\": [\"arrival\", \"rate\", \"chaos\", \"n_requests\", \
     \"planned\", \"degraded\", \"rejected\", \"retries\", \"epoch_bumps\", \
     \"cache_hits\", \"throughput_qps\", \"p50_ms\", \"p95_ms\", \
     \"p99_ms\"],\n\"smoke\": %b,\n\"runs\": [\n%s\n]}\n"
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

let run () =
  Printf.printf "E20: optimizer-as-a-service under load and chaos %s\n"
    (if smoke then "[smoke mode]" else "");
  let n = if smoke then 300 else 2000 in
  let rates = if smoke then [ 200. ] else [ 50.; 200.; 1000. ] in
  let catalog, pool = Parqo.Workloads.serving_pool ~seed:7 () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let tbl =
    T.create ~title:"E20: serving under load"
      ~columns:
        [
          ("rate", T.Right);
          ("chaos", T.Left);
          ("planned", T.Right);
          ("degraded", T.Right);
          ("rejected", T.Right);
          ("retries", T.Right);
          ("hits", T.Right);
          ("qps", T.Right);
          ("p50ms", T.Right);
          ("p95ms", T.Right);
          ("p99ms", T.Right);
        ]
  in
  let runs = ref [] in
  List.iter
    (fun rate ->
      List.iter
        (fun chaos ->
          let rng = Parqo.Rng.create 11 in
          let arrivals =
            Parqo.Workloads.arrivals rng
              ~process:(Parqo.Workloads.Poisson rate) ~n
          in
          let reqs =
            Server.requests rng ~pool ~arrivals ~deadline:0.1 ()
          in
          let config =
            {
              Server.default_config with
              Server.chaos =
                (if chaos then Chaos.default ~seed:3 () else Chaos.none);
            }
          in
          (* a fresh server per cell: cache state must not leak across
             cells or the low-rate cells subsidize the high-rate ones *)
          let server = Server.create ~config ~machine ~catalog () in
          let r = Server.run server reqs in
          let s = r.Server.stats in
          (* invariant: no request lost, chaos or not *)
          if s.Server.planned + s.Server.degraded + s.Server.rejected <> n
          then begin
            Printf.eprintf
              "E20 FAILED: dispositions do not partition the stream \
               (%d + %d + %d <> %d, rate %.0f, chaos %b)\n"
              s.Server.planned s.Server.degraded s.Server.rejected n rate
              chaos;
            exit 1
          end;
          Array.iter
            (fun (c : Server.completion) ->
              match (c.Server.disposition, c.Server.plan) with
              | (Server.Planned | Server.Degraded _), None ->
                Printf.eprintf
                  "E20 FAILED: admitted request %d has no plan\n"
                  c.Server.request.Server.id;
                exit 1
              | Server.Rejected _, Some _ ->
                Printf.eprintf
                  "E20 FAILED: rejected request %d has a plan\n"
                  c.Server.request.Server.id;
                exit 1
              | _ -> ())
            r.Server.completions;
          (* invariant: admission control bounds in-flight work *)
          if s.Server.max_in_flight > config.Server.queue_cap then begin
            Printf.eprintf
              "E20 FAILED: max in flight %d exceeds queue cap %d\n"
              s.Server.max_in_flight config.Server.queue_cap;
            exit 1
          end;
          T.add_row tbl
            [
              T.cell_float rate;
              (if chaos then "on" else "off");
              string_of_int s.Server.planned;
              string_of_int s.Server.degraded;
              string_of_int s.Server.rejected;
              string_of_int s.Server.retries;
              string_of_int s.Server.cache_hits;
              T.cell_float s.Server.throughput_qps;
              T.cell_float (1000. *. s.Server.p50);
              T.cell_float (1000. *. s.Server.p95);
              T.cell_float (1000. *. s.Server.p99);
            ];
          runs :=
            {
              arrival = "poisson";
              rate;
              chaos;
              n_requests = n;
              planned = s.Server.planned;
              degraded = s.Server.degraded;
              rejected = s.Server.rejected;
              retries = s.Server.retries;
              epoch_bumps = s.Server.epoch_bumps;
              cache_hits = s.Server.cache_hits;
              throughput_qps = s.Server.throughput_qps;
              p50_ms = 1000. *. s.Server.p50;
              p95_ms = 1000. *. s.Server.p95;
              p99_ms = 1000. *. s.Server.p99;
            }
            :: !runs)
        [ false; true ])
    rates;
  T.print tbl;
  write_json "BENCH_serve.json" (List.rev !runs);
  Printf.printf "wrote BENCH_serve.json (%d runs)\n\n" (List.length !runs)
