(* E22 — co-scheduling the workload, not the query.

   A pool of optimized plans (the serving pool's queries, each lowered
   to its task graph) arrives as a Poisson stream on one 4-node machine
   and is co-scheduled under fair-share, strict-priority and
   shortest-remaining-work.  Reported per cell: mean/p95/p99 response
   time, makespan and utilization.

   Three invariants are enforced, not just reported:
   - utilization never exceeds 1 and per-resource busy time equals the
     work the jobs offered (busy conservation) in every cell;
   - a single-query workload replays [Simulator.run] bit-for-bit
     (Int64-bit float equality), under every policy;
   - shortest-remaining-work beats fair-share on mean response time at
     the saturating intensity (SRPT's classic advantage).

   The second half measures the work-bound dual under contention: a
   probe query's solo-optimal (lowest-response-time) plan against its
   low-work plan, co-scheduled with growing burst backgrounds.  Alone,
   the solo-optimal plan wins; under contention the ordering must flip
   — the measured crossover — and [Optimizer.minimize_under_contention]
   fed the scheduler's [expected_pressure] must pick a low-work plan at
   the top pressure.

   Results go to BENCH_sched.json.  PARQO_SMOKE=1 shrinks the workload
   so CI gates stay fast. *)

module T = Parqo.Tableau
module Sched = Parqo.Scheduler
module Sim = Parqo.Simulator
module TG = Parqo.Task_graph
module Cm = Parqo.Costmodel
module O = Parqo.Optimizer

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None
let bits = Int64.bits_of_float

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "E22 FAILED: %s\n" msg;
      exit 1)
    fmt

type cell = {
  policy : string;
  intensity : string;
  rate : float;
  n_jobs : int;
  mean : float;
  p95 : float;
  p99 : float;
  makespan : float;
  util : float;
}

type xover = {
  background : int;
  peak_pressure : float;
  rt_response : float;
  work_response : float;
  chosen_work : float;
  chosen_rt : float;
}

let json_of_cell c =
  Printf.sprintf
    "  {\"policy\": %S, \"intensity\": %S, \"rate\": %.6f, \"n_jobs\": %d, \
     \"mean\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"makespan\": %.3f, \
     \"utilization\": %.4f}"
    c.policy c.intensity c.rate c.n_jobs c.mean c.p95 c.p99 c.makespan c.util

let json_of_xover x =
  Printf.sprintf
    "  {\"background\": %d, \"peak_pressure\": %.4f, \"rt_response\": %.3f, \
     \"work_response\": %.3f, \"chosen_work\": %.3f, \"chosen_rt\": %.3f}"
    x.background x.peak_pressure x.rt_response x.work_response x.chosen_work
    x.chosen_rt

let write_json path ~probe_rt ~probe_work cells xovers =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
     \"schema\": {\"policies\": [\"policy\", \"intensity\", \"rate\", \
     \"n_jobs\", \"mean\", \"p95\", \"p99\", \"makespan\", \
     \"utilization\"], \"crossover\": [\"background\", \"peak_pressure\", \
     \"rt_response\", \"work_response\", \"chosen_work\", \"chosen_rt\"]},\n\
     \"smoke\": %b,\n\
     \"probe\": {\"rt_plan_work\": %.3f, \"work_plan_work\": %.3f},\n\
     \"policies\": [\n\
     %s\n\
     ],\n\
     \"crossover\": [\n\
     %s\n\
     ]}\n"
    smoke probe_rt probe_work
    (String.concat ",\n" (List.map json_of_cell cells))
    (String.concat ",\n" (List.map json_of_xover xovers));
  close_out oc

(* busy conservation: every demanded unit of work — and only that —
   lands on its resource *)
let check_conservation ~ctx (jobs : Sched.job array) (o : Sched.outcome) =
  if Sched.utilization o > 1. +. 1e-9 then
    fail "%s: utilization %.6f > 1" ctx (Sched.utilization o);
  let nr = Array.length o.Sched.busy in
  let offered = Array.make nr 0. in
  Array.iter
    (fun (j : Sched.job) ->
      Array.iter
        (fun (s : TG.stage) ->
          List.iter
            (fun (task : TG.task) ->
              Array.iteri
                (fun r d -> offered.(r) <- offered.(r) +. d)
                task.TG.demands)
            s.TG.tasks)
        j.Sched.graph.TG.stages)
    jobs;
  for r = 0 to nr - 1 do
    if Float.abs (o.Sched.busy.(r) -. offered.(r))
       > 1e-6 *. Float.max 1. offered.(r)
    then
      fail "%s: busy conservation broken on r%d (busy %.6f, offered %.6f)"
        ctx r o.Sched.busy.(r) offered.(r)
  done

let optimize_graph ~budget env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  match (O.minimize_response_time ~config ~budget env).O.best with
  | Some best -> (best, TG.of_optree env best.Cm.optree)
  | None -> fail "optimizer returned no plan"

let run () =
  Printf.printf "E22: workload co-scheduling %s\n"
    (if smoke then "[smoke mode]" else "");
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let nr = Parqo.Machine.n_resources machine in
  let budget = Parqo.Budget.expansions (if smoke then 3_000 else 20_000) in
  let catalog, pool = Parqo.Workloads.serving_pool ~seed:7 () in
  (* one graph per distinct fingerprint: the workload's plan library *)
  let tbl_graphs = Hashtbl.create 32 in
  let graph_of q =
    let fp = Parqo.Query.fingerprint q in
    match Hashtbl.find_opt tbl_graphs fp with
    | Some g -> g
    | None ->
      let env = Parqo.Env.create ~machine ~catalog ~query:q () in
      let _, g = optimize_graph ~budget env in
      Hashtbl.add tbl_graphs fp g;
      g
  in
  let rng = Parqo.Rng.create 29 in
  let n_jobs = if smoke then 10 else 30 in
  let queries = Array.init n_jobs (fun _ -> Parqo.Rng.pick rng pool) in
  let graphs = Array.map graph_of queries in
  let priorities = Array.init n_jobs (fun _ -> Parqo.Rng.int rng 3) in

  (* invariant: a single-query workload is Simulator.run, bit for bit *)
  for i = 0 to min 2 (n_jobs - 1) do
    let solo = Sim.run graphs.(i) in
    List.iter
      (fun policy ->
        let o = Sched.run ~policy [| Sched.job ~job_id:0 graphs.(i) |] in
        if
          bits o.Sched.makespan <> bits solo.Sim.makespan
          || Array.exists2
               (fun a b -> bits a <> bits b)
               o.Sched.busy solo.Sim.busy
        then
          fail "single-query %d not bit-identical to Simulator.run under %s" i
            (Sched.policy_to_string policy))
      Sched.all_policies
  done;

  let mean_solo =
    Array.fold_left (fun acc g -> acc +. (Sim.run g).Sim.makespan) 0. graphs
    /. float_of_int n_jobs
  in
  (* arrivals per mean solo makespan: 0.3 is sparse, 3 saturates *)
  let intensities =
    [ ("light", 0.3 /. mean_solo); ("heavy", 3.0 /. mean_solo) ]
  in
  let tbl =
    T.create ~title:"E22: co-scheduling policies under load"
      ~columns:
        [
          ("policy", T.Left);
          ("intensity", T.Left);
          ("jobs", T.Right);
          ("mean", T.Right);
          ("p95", T.Right);
          ("p99", T.Right);
          ("makespan", T.Right);
          ("util", T.Right);
        ]
  in
  let cells = ref [] in
  let mean_of = Hashtbl.create 8 in
  List.iter
    (fun (intensity, rate) ->
      let arng = Parqo.Rng.create 31 in
      let arrivals =
        Parqo.Workloads.arrivals arng
          ~process:(Parqo.Workloads.Poisson rate) ~n:n_jobs
      in
      List.iter
        (fun policy ->
          let jobs =
            Array.mapi
              (fun i g ->
                Sched.job ~arrival:arrivals.(i) ~priority:priorities.(i)
                  ~job_id:i g)
              graphs
          in
          let o = Sched.run ~policy jobs in
          let name = Sched.policy_to_string policy in
          check_conservation ~ctx:(name ^ "/" ^ intensity) jobs o;
          let s = Sched.summarize o in
          Hashtbl.replace mean_of (name, intensity) s.Sched.mean;
          T.add_row tbl
            [
              name;
              intensity;
              string_of_int n_jobs;
              T.cell_float s.Sched.mean;
              T.cell_float s.Sched.p95;
              T.cell_float s.Sched.p99;
              T.cell_float s.Sched.makespan;
              Printf.sprintf "%.3f" s.Sched.utilization;
            ];
          cells :=
            {
              policy = name;
              intensity;
              rate;
              n_jobs;
              mean = s.Sched.mean;
              p95 = s.Sched.p95;
              p99 = s.Sched.p99;
              makespan = s.Sched.makespan;
              util = s.Sched.utilization;
            }
            :: !cells)
        Sched.all_policies)
    intensities;
  T.print tbl;
  (* invariant: SRPT lifted to DAGs still beats processor sharing on
     mean response where it matters — under saturation *)
  let mean name intensity = Hashtbl.find mean_of (name, intensity) in
  if mean "srw" "heavy" > mean "fair" "heavy" *. 1.001 then
    fail "srw mean %.3f exceeds fair-share mean %.3f at heavy load"
      (mean "srw" "heavy") (mean "fair" "heavy");

  (* ---------------------------------------------------------------- *)
  (* the work-bound dual under contention.  Not every query exhibits
     the trade (partitioned sorts can make the parallel plan cheaper in
     total work too), so scan a few probe shapes for one whose low-work
     plan genuinely loses the empty machine. *)
  let probe_specs =
    let open Parqo.Query_gen in
    [
      default_spec Chain 5;
      default_spec Star 5;
      { (default_spec Chain 5) with card_skew = 1.0 };
      { (default_spec Star 5) with card_skew = 1.0 };
      default_spec Cycle 5;
      { (default_spec Chain 4) with base_card = 4000. };
    ]
  in
  let config = Parqo.Space.parallel_config machine in
  let try_spec spec =
    let probe_catalog, probe_query = Parqo.Query_gen.generate spec in
    let env =
      Parqo.Env.create ~machine ~catalog:probe_catalog ~query:probe_query ()
    in
    let rt_plan, rt_graph = optimize_graph ~budget env in
    (* low-work candidates: the sequential System R space (degree 1, no
       cloning/repartition overhead — the paper's §2 dual) and the
       parallel work phase *)
    let work_candidates =
      List.filter_map
        (fun (o : O.outcome) -> o.O.best)
        [
          O.minimize_work_with_orders ~config:Parqo.Space.default_config env;
          O.minimize_work ~config env;
        ]
    in
    let work_plan =
      match
        List.sort
          (fun (a : Cm.eval) b -> Float.compare a.Cm.work b.Cm.work)
          work_candidates
      with
      | w :: _ -> w
      | [] -> fail "work optimizer returned no plan"
    in
    let work_graph = TG.of_optree env work_plan.Cm.optree in
    let solo_rt = (Sim.run rt_graph).Sim.makespan in
    let solo_work = (Sim.run work_graph).Sim.makespan in
    if work_plan.Cm.work < rt_plan.Cm.work *. 0.98 && solo_rt < solo_work
    then Some (spec, env, rt_plan, rt_graph, work_plan, work_graph)
    else None
  in
  let spec, env, rt_plan, rt_graph, work_plan, work_graph =
    match List.find_map try_spec probe_specs with
    | Some p -> p
    | None ->
      fail "no probe shape exhibits the work/response dual: nothing to measure"
  in
  Printf.printf
    "probe: %s-%d (skew %.1f) — rt plan work %.1f, low-work plan work %.1f\n"
    (Parqo.Query_gen.shape_to_string spec.Parqo.Query_gen.shape)
    spec.Parqo.Query_gen.n spec.Parqo.Query_gen.card_skew rt_plan.Cm.work
    work_plan.Cm.work;
  (* background residents drawn from the probe's own family (slightly
     varied cardinalities, each on its solo-optimal plan) so their works
     interleave with the probe's two plans — SRW ranks by remaining
     work, so the work gap must buy real queue positions *)
  let bg_graphs =
    Array.map
      (fun b ->
        let c, q =
          Parqo.Query_gen.generate { spec with Parqo.Query_gen.base_card = b }
        in
        let benv = Parqo.Env.create ~machine ~catalog:c ~query:q () in
        snd (optimize_graph ~budget benv))
      [| 700.; 800.; 900.; 1100.; 1200.; 1300. |]
  in
  let levels = if smoke then [ 0; 24 ] else [ 0; 8; 24 ] in
  let xtbl =
    T.create ~title:"E22: low-work plan vs solo-optimal plan under contention"
      ~columns:
        [
          ("background", T.Right);
          ("pressure", T.Right);
          ("rt-plan resp", T.Right);
          ("work-plan resp", T.Right);
          ("winner", T.Left);
          ("chosen work", T.Right);
        ]
  in
  let xovers = ref [] in
  List.iter
    (fun k ->
      let background =
        Array.init k (fun i ->
            Sched.job ~job_id:(i + 1)
              bg_graphs.(i mod Array.length bg_graphs))
      in
      let probe_response g =
        let jobs = Array.append [| Sched.job ~job_id:0 g |] background in
        let o = Sched.run ~policy:Sched.Shortest_remaining_work jobs in
        check_conservation ~ctx:(Printf.sprintf "crossover k=%d" k) jobs o;
        (Array.get o.Sched.jobs 0).Sched.response
      in
      let rt_resp = probe_response rt_graph in
      let work_resp = probe_response work_graph in
      let pressure = Sched.expected_pressure ~n_resources:nr background in
      let peak = Array.fold_left Float.max 0. pressure in
      (* plan choice fed by the measured contention signal *)
      let chosen =
        match (O.minimize_under_contention ~config ~budget ~pressure env).O.best with
        | Some best -> best
        | None -> fail "contended optimizer returned no plan"
      in
      T.add_row xtbl
        [
          string_of_int k;
          Printf.sprintf "%.3f" peak;
          T.cell_float rt_resp;
          T.cell_float work_resp;
          (if work_resp < rt_resp then "low-work" else "solo-optimal");
          T.cell_float chosen.Cm.work;
        ];
      xovers :=
        {
          background = k;
          peak_pressure = peak;
          rt_response = rt_resp;
          work_response = work_resp;
          chosen_work = chosen.Cm.work;
          chosen_rt = chosen.Cm.response_time;
        }
        :: !xovers;
      if k = 0 && rt_resp > work_resp +. 1e-9 then
        fail "solo-optimal plan lost the empty-machine case (%.3f vs %.3f)"
          rt_resp work_resp;
      if k = List.fold_left max 0 levels then begin
        (* the measured crossover: under contention the low-work plan
           must beat the solo-optimal plan... *)
        if work_resp >= rt_resp then
          fail "no crossover at background %d (%.3f vs %.3f)" k work_resp
            rt_resp;
        (* ...and the contention-aware optimizer must choose low work *)
        if chosen.Cm.work > work_plan.Cm.work *. 1.05 then
          fail
            "contended optimizer kept a high-work plan (%.3f, low-work %.3f)"
            chosen.Cm.work work_plan.Cm.work
      end)
    levels;
  T.print xtbl;
  write_json "BENCH_sched.json" ~probe_rt:rt_plan.Cm.work
    ~probe_work:work_plan.Cm.work (List.rev !cells) (List.rev !xovers);
  Printf.printf "wrote BENCH_sched.json (%d cells, %d crossover levels)\n\n"
    (List.length !cells) (List.length !xovers)
