(* E18 — incremental costing in the PODP hot path.

   Runs the partial-order DP search with the sub-plan cache on and off
   (sequential), plus a cached domains=4 run, on the same workloads E17
   sweeps, and verifies along the way that all runs return exactly the
   same best plan (down to the response time's bits), cover, level sizes
   and expansion counts — the bit-identity contract of
   Costmodel.evaluate_cached and of the domain-parallel memo merge.
   Wall-clock is the minimum over repeats; results go to BENCH_cost.json
   together with the coordinator's allocation per costed plan.

   PARQO_SMOKE=1 shrinks the sweep (one small workload, one repeat) so
   CI gates stay fast, and asserts a generous container-safe ceiling on
   the cached run's us_per_plan so allocation regressions in the costing
   hot path fail loudly. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module Stats = Parqo.Search_stats

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

(* minimum cached sequential throughput the smallest container should
   comfortably beat; the full run on a quiet machine is ~5x faster *)
let smoke_us_per_plan_ceiling = 30.

let plan_string (e : Cm.eval) = Parqo.Join_tree.to_string e.Cm.tree

type run = {
  workload : string;
  n_relations : int;
  plan_cache : bool;
  domains : int;
  wall_ms : float;
  speedup : float;  (** uncached wall / this wall *)
  plans_expanded : int;
  us_per_plan : float;
  minor_words_per_plan : float;
      (** coordinator-domain minor-heap words per costed plan *)
}

let json_of_run r =
  Printf.sprintf
    "  {\"workload\": %S, \"n_relations\": %d, \"plan_cache\": %b, \
     \"domains\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f, \
     \"plans_expanded\": %d, \"us_per_plan\": %.3f, \
     \"minor_words_per_plan\": %.1f}"
    r.workload r.n_relations r.plan_cache r.domains r.wall_ms r.speedup
    r.plans_expanded r.us_per_plan r.minor_words_per_plan

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\": [\"workload\", \"n_relations\", \"plan_cache\", \
     \"domains\", \"wall_ms\", \"speedup\", \"plans_expanded\", \
     \"us_per_plan\", \"minor_words_per_plan\"],\n\
     \"cores\": %d,\n\"smoke\": %b,\n\"runs\": [\n%s\n]}\n"
    (Domain.recommended_domain_count ())
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

(* the E17 configuration: beam cap 8, parallel space *)
let optimize ~plan_cache ~domains env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let metric = Parqo.Optimizer.default_metric env in
  Parqo.Podp.optimize ~config ~metric ~max_cover:8 ~domains ~plan_cache env

let best_rt_bits (res : Parqo.Podp.result) =
  match res.Parqo.Podp.best with
  | Some e -> Int64.bits_of_float e.Cm.response_time
  | None -> 0L

let check_identical name (base : Parqo.Podp.result) (r : Parqo.Podp.result) =
  let plan_of (res : Parqo.Podp.result) =
    match res.Parqo.Podp.best with Some e -> plan_string e | None -> "<none>"
  in
  let same_best = String.equal (plan_of base) (plan_of r) in
  let same_bits = Int64.equal (best_rt_bits base) (best_rt_bits r) in
  let same_cover =
    List.length base.Parqo.Podp.cover = List.length r.Parqo.Podp.cover
    && List.for_all2
         (fun a b -> String.equal (plan_string a) (plan_string b))
         base.Parqo.Podp.cover r.Parqo.Podp.cover
  in
  let same_levels = base.Parqo.Podp.level_sizes = r.Parqo.Podp.level_sizes in
  let same_counts =
    base.Parqo.Podp.stats.Stats.generated = r.Parqo.Podp.stats.Stats.generated
    && base.Parqo.Podp.stats.Stats.considered
       = r.Parqo.Podp.stats.Stats.considered
  in
  if not (same_best && same_bits && same_cover && same_levels && same_counts)
  then
    failwith
      (Printf.sprintf
         "E18: %s result diverged from the uncached sequential baseline \
          (best %b bits %b cover %b levels %b counts %b)"
         name same_best same_bits same_cover same_levels same_counts)

let time_run ~repeats ~plan_cache ~domains env =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = optimize ~plan_cache ~domains env in
    let dt = (Unix.gettimeofday () -. t0) *. 1000. in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let run () =
  Common.header "E18 — incremental costing (sub-plan cache) in PODP"
    [
      "Sequential PODP with Costmodel.evaluate_cached on vs off: every";
      "extension grafts the memoized outer sub-plan's expansion and pipes";
      "its descriptor, so only the new root operators are costed.  A";
      "cached domains=4 run rides along.  All runs are checked";
      "bit-identical (plan + response-time bits, cover, levels, counts).";
      (if smoke then "[smoke mode]" else "");
    ];
  let workloads =
    if smoke then [ (Parqo.Query_gen.Chain, 5) ]
    else [ (Parqo.Query_gen.Chain, 8); (Parqo.Query_gen.Star, 8) ]
  in
  let repeats = if smoke then 1 else 2 in
  let tbl =
    T.create ~title:"P18. PODP wall time, cached vs uncached costing"
      ~columns:
        [
          ("workload", T.Left);
          ("n", T.Right);
          ("cache", T.Left);
          ("domains", T.Right);
          ("wall ms", T.Right);
          ("speedup", T.Right);
          ("expanded", T.Right);
          ("us/plan", T.Right);
          ("words/plan", T.Right);
        ]
  in
  let runs = ref [] in
  List.iter
    (fun (shape, n) ->
      let name = Parqo.Query_gen.shape_to_string shape in
      let env = Common.shape_env ~nodes:4 shape n in
      let off, off_ms = time_run ~repeats ~plan_cache:false ~domains:1 env in
      let on, on_ms = time_run ~repeats ~plan_cache:true ~domains:1 env in
      let on4, on4_ms = time_run ~repeats ~plan_cache:true ~domains:4 env in
      check_identical (name ^ "/cached") off on;
      check_identical (name ^ "/domains=4") off on4;
      List.iter
        (fun (plan_cache, domains, r, wall_ms) ->
          let r : Parqo.Podp.result = r in
          let expanded = r.Parqo.Podp.stats.Stats.generated in
          let row =
            {
              workload = name;
              n_relations = n;
              plan_cache;
              domains;
              wall_ms;
              speedup = off_ms /. wall_ms;
              plans_expanded = expanded;
              us_per_plan = wall_ms *. 1000. /. float_of_int (max 1 expanded);
              minor_words_per_plan =
                r.Parqo.Podp.stats.Stats.minor_words
                /. float_of_int (max 1 expanded);
            }
          in
          runs := row :: !runs;
          T.add_row tbl
            [
              name;
              Common.celli n;
              (if plan_cache then "on" else "off");
              Common.celli domains;
              Common.cell ~decimals:1 wall_ms;
              Common.cell ~decimals:2 row.speedup;
              Common.celli expanded;
              Common.cell ~decimals:2 row.us_per_plan;
              Common.cell ~decimals:1 row.minor_words_per_plan;
            ])
        [
          (false, 1, off, off_ms);
          (true, 1, on, on_ms);
          (true, 4, on4, on4_ms);
        ])
    workloads;
  T.print tbl;
  write_json "BENCH_cost.json" (List.rev !runs);
  Printf.printf "wrote BENCH_cost.json (%d runs)\n\n" (List.length !runs);
  if smoke then
    List.iter
      (fun r ->
        if r.plan_cache && r.domains = 1 && r.us_per_plan > smoke_us_per_plan_ceiling
        then
          failwith
            (Printf.sprintf
               "E18 smoke: cached us_per_plan %.2f exceeds the %.0f ceiling \
                — costing hot path regressed"
               r.us_per_plan smoke_us_per_plan_ceiling))
      !runs
