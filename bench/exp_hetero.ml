(* E23 — heterogeneous degradation and elastic recovery.

   Machines do not only fail: they slow down (brownouts) and grow back
   (scale-out).  This experiment measures both halves of the elastic
   story against the adaptive re-planner:

   - slowdown sweep: a long brownout throttles the busiest CPU to a
     range of remaining-capacity factors.  The static baseline
     (Restart_from_sync) grinds through the slow window; the adaptive
     run replans on the Slowdown trigger, re-placing work on the
     machine rescaled to the observed speeds.
   - scale-out sweep: a fast CPU joins mid-run at a range of onsets.
     The static baseline cannot use a resource its plan never named;
     the adaptive run replans on the Scale_out trigger and splices a
     plan whose placement covers the grown id — measured directly as
     delivered work (busy) on the new resource.

   Three invariants are enforced, not just reported:
   - with no machine events, the Replan policy is bit-identical to the
     clean simulator, and an all-nominal rescale ([speed 1.0]
     everywhere) leaves the optimizer's chosen cost bit-identical;
   - adaptive beats static on at least one slowdown severity;
   - at least one scale-out scenario delivers work on the grown
     resource (post-splice utilization > 0).

   A fourth check is analytic: on a heterogeneous machine every costed
   operator's CPU demand obeys the balance bound — the largest
   per-resource time coordinate equals [(W/k) / s_min] over the k
   fastest CPUs and is never below [W / sum of chosen speeds] (the
   AM-HM lower bound; slowest-clone-dominates).

   Results go to BENCH_hetero.json.  PARQO_SMOKE=1 shrinks the sweep
   (chain only, one severity, one onset) so CI gates stay fast. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module TG = Parqo.Task_graph
module Sim = Parqo.Simulator
module M = Parqo.Machine
module R = Parqo.Resource
module F = Parqo.Fault

let smoke = Sys.getenv_opt "PARQO_SMOKE" <> None

type run = {
  part : string;  (** ["slowdown"] or ["scaleout"] *)
  workload : string;
  param : float;  (** brownout factor, or grow onset / clean makespan *)
  clean_makespan : float;
  static_makespan : float;
  adaptive_makespan : float;
  improvement : float;  (** static / adaptive *)
  grown_busy : float;  (** delivered work on the grown resource *)
  n_replans : int;
}

let json_of_run r =
  Printf.sprintf
    "  {\"part\": %S, \"workload\": %S, \"param\": %.3f, \
     \"clean_makespan\": %.3f, \"static_makespan\": %.3f, \
     \"adaptive_makespan\": %.3f, \"improvement\": %.3f, \
     \"grown_busy\": %.3f, \"n_replans\": %d}"
    r.part r.workload r.param r.clean_makespan r.static_makespan
    r.adaptive_makespan r.improvement r.grown_busy r.n_replans

let write_json path runs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\": [\"part\", \"workload\", \"param\", \"clean_makespan\", \
     \"static_makespan\", \"adaptive_makespan\", \"improvement\", \
     \"grown_busy\", \"n_replans\"],\n\
     \"smoke\": %b,\n\"runs\": [\n%s\n]}\n"
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc

let optimize env =
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  match
    (Parqo.Optimizer.minimize_response_time ~config env).Parqo.Optimizer.best
  with
  | Some b -> b
  | None -> failwith "E23: no plan found"

let bits = Int64.bits_of_float

let check_identity name (clean : Sim.outcome) (r : Parqo.Adaptive.result) =
  let o = r.Parqo.Adaptive.outcome in
  let same =
    bits o.Sim.makespan = bits clean.Sim.makespan
    && Array.for_all2 (fun a b -> bits a = bits b) o.Sim.busy clean.Sim.busy
    && o.Sim.n_replans = 0
  in
  if not same then
    failwith
      (Printf.sprintf
         "E23: %s event-free Replan diverged from the clean simulator" name)

(* the compatibility contract: rescaling every resource to 1.0 is a
   no-op down to the bit — same chosen plan cost, same total work *)
let check_nominal_rescale name machine catalog query (best : Cm.eval) =
  let nominal =
    M.rescale machine
      ~speeds:(List.init (M.n_resources machine) (fun i -> (i, 1.0)))
  in
  let env = Parqo.Env.create ~machine:nominal ~catalog ~query () in
  let best' = optimize env in
  if
    bits best'.Cm.response_time <> bits best.Cm.response_time
    || bits best'.Cm.work <> bits best.Cm.work
  then
    failwith
      (Printf.sprintf
         "E23: %s all-nominal rescale changed the optimizer's answer" name)

(* Frisk et al.'s balance bound, checked over every operator of a plan
   costed on a heterogeneous machine: CPU demand lands on the k fastest
   CPUs in equal work shares, so the largest time coordinate is
   [(W/k) / s_min] — and the AM-HM inequality says no placement of the
   same work on the same CPUs finishes faster than [W / sum of speeds]. *)
let check_balance_bound env machine root =
  let cpu_ids = M.cpu_ids machine in
  let checked = ref 0 in
  let rec walk (node : Parqo.Op.node) =
    let d =
      Parqo.Opcost.base env.Parqo.Env.placement env.Parqo.Env.estimator node
    in
    let wv = Parqo.Descriptor.work_vector d in
    let coords =
      List.filter_map
        (fun id ->
          let w = Parqo.Vecf.get wv id in
          if w > 1e-12 then Some (id, w) else None)
        cpu_ids
    in
    (match coords with
    | [] -> ()
    | _ ->
      let k = List.length coords in
      let total = List.fold_left (fun a (id, w) -> a +. (w *. M.speed machine id)) 0. coords in
      let sum_s = List.fold_left (fun a (id, _) -> a +. M.speed machine id) 0. coords in
      let s_min =
        List.fold_left (fun a (id, _) -> Float.min a (M.speed machine id))
          infinity coords
      in
      let max_t = List.fold_left (fun a (_, w) -> Float.max a w) 0. coords in
      let tol = 1e-6 *. Float.max 1. max_t in
      if max_t +. tol < total /. sum_s then
        failwith "E23: operator beat the heterogeneous balance bound";
      if Float.abs (max_t -. (total /. float_of_int k /. s_min)) > tol then
        failwith "E23: slowest chosen clone does not dominate the stage";
      incr checked);
    List.iter walk node.Parqo.Op.children
  in
  walk root;
  !checked

let run () =
  Common.header
    "E23 — heterogeneous degradation and elastic recovery (speed sweep)"
    [
      "slowdown: a long brownout throttles the busiest CPU; static grinds";
      "through the slow window, adaptive replans on the Slowdown trigger";
      "with work re-placed on the rescaled machine.  scaleout: a fast CPU";
      "joins mid-run; adaptive replans on Scale_out and splices a plan";
      "that delivers work on the grown resource (static cannot).";
      (if smoke then "[smoke mode]" else "");
    ];
  let workloads =
    if smoke then [ ("chain", Parqo.Query_gen.Chain, 6) ]
    else
      [
        ("chain", Parqo.Query_gen.Chain, 6);
        ("star", Parqo.Query_gen.Star, 6);
        ("clique", Parqo.Query_gen.Clique, 5);
      ]
  in
  let factors = if smoke then [ 0.1 ] else [ 0.5; 0.25; 0.1 ] in
  let onsets = if smoke then [ 0.3 ] else [ 0.2; 0.5 ] in
  let tbl =
    T.create
      ~title:"R23. makespan: static vs adaptive under brownouts and scale-out"
      ~columns:
        [
          ("part", T.Left);
          ("workload", T.Left);
          ("param", T.Right);
          ("clean", T.Right);
          ("static", T.Right);
          ("adaptive", T.Right);
          ("static/adapt", T.Right);
          ("grown busy", T.Right);
          ("replans", T.Right);
        ]
  in
  let runs = ref [] in
  let slow_improved = ref false in
  let grown_used = ref false in
  List.iter
    (fun (name, shape, n) ->
      let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
      let catalog, query =
        Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
      in
      let env = Common.env_for ~machine catalog query in
      let best = optimize env in
      let optree =
        Parqo.Expand.expand ~config:env.Parqo.Env.expand_config
          env.Parqo.Env.estimator best.Cm.tree
      in
      let g = TG.of_optree env optree in
      let clean = Sim.run g in
      check_identity name clean
        (Parqo.Adaptive.simulate ~recovery:(Parqo.Recovery.replan ()) env
           best.Cm.tree);
      check_nominal_rescale name machine catalog query best;
      (* the CPU the clean run leaned on hardest: browning it out is the
         worst case for a static plan and the best case for re-placement *)
      let target =
        List.fold_left
          (fun acc id ->
            match acc with
            | Some a when clean.Sim.busy.(a) >= clean.Sim.busy.(id) -> acc
            | _ -> Some id)
          None (M.cpu_ids machine)
      in
      let target = Option.get target in
      let record part param static_mk (a : Parqo.Adaptive.result) grown_busy =
        let o = a.Parqo.Adaptive.outcome in
        let row =
          {
            part;
            workload = name;
            param;
            clean_makespan = clean.Sim.makespan;
            static_makespan = static_mk;
            adaptive_makespan = o.Sim.makespan;
            improvement = static_mk /. o.Sim.makespan;
            grown_busy;
            n_replans = o.Sim.n_replans;
          }
        in
        runs := row :: !runs;
        T.add_row tbl
          [
            part;
            name;
            Common.cell ~decimals:2 param;
            Common.cell row.clean_makespan;
            Common.cell row.static_makespan;
            Common.cell row.adaptive_makespan;
            Common.cell ~decimals:3 row.improvement;
            Common.cell row.grown_busy;
            Common.celli row.n_replans;
          ];
        row
      in
      List.iter
        (fun factor ->
          let outage =
            F.brownout ~resource:target ~at:(0.1 *. clean.Sim.makespan)
              ~duration:(2.0 *. clean.Sim.makespan) ~factor
          in
          let faults = { F.none with F.outages = [ outage ] } in
          let static_sim =
            Sim.run ~faults ~recovery:Parqo.Recovery.Restart_from_sync g
          in
          let adaptive =
            Parqo.Adaptive.simulate ~faults
              ~recovery:(Parqo.Recovery.replan ()) env best.Cm.tree
          in
          let row = record "slowdown" factor static_sim.Sim.makespan adaptive 0. in
          if row.adaptive_makespan < row.static_makespan then
            slow_improved := true)
        factors;
      List.iter
        (fun onset ->
          let grow =
            {
              F.g_at = onset *. clean.Sim.makespan;
              g_kind = R.Cpu;
              g_node = 0;
              (* a faster replacement joining: placement ranks it first,
                 so any replanned clone covers it *)
              g_speed = 2.0;
            }
          in
          let faults = { F.none with F.grows = [ grow ] } in
          let static_sim =
            Sim.run ~faults ~recovery:Parqo.Recovery.Restart_from_sync g
          in
          let adaptive =
            Parqo.Adaptive.simulate ~faults
              ~recovery:(Parqo.Recovery.replan ()) env best.Cm.tree
          in
          let grown_id = M.n_resources machine in
          let o = adaptive.Parqo.Adaptive.outcome in
          let grown_busy =
            if Array.length o.Sim.busy > grown_id then o.Sim.busy.(grown_id)
            else 0.
          in
          let row =
            record "scaleout" onset static_sim.Sim.makespan adaptive grown_busy
          in
          if row.grown_busy > 0. then grown_used := true)
        onsets;
      T.add_rule tbl)
    workloads;
  (* the analytic check runs on a deliberately skewed machine *)
  let name, shape, n = List.hd workloads in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let hetero =
    M.rescale machine
      ~speeds:
        (List.mapi
           (fun i id -> (id, [| 1.0; 0.8; 0.5; 0.25 |].(i mod 4)))
           (M.cpu_ids machine))
  in
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
  in
  let envh = Common.env_for ~machine:hetero catalog query in
  let besth = optimize envh in
  let optreeh =
    Parqo.Expand.expand ~config:envh.Parqo.Env.expand_config
      envh.Parqo.Env.estimator besth.Cm.tree
  in
  let checked = check_balance_bound envh hetero optreeh in
  Printf.printf
    "balance bound verified on %s over %d CPU-bearing operators \
     (cpu speeds 1.0/0.8/0.5/0.25)\n"
    name checked;
  T.print tbl;
  if not !slow_improved then
    failwith "E23: adaptive never beat static under any brownout";
  if not !grown_used then
    failwith "E23: no scale-out scenario delivered work on the grown resource";
  write_json "BENCH_hetero.json" (List.rev !runs);
  Printf.printf "wrote BENCH_hetero.json (%d runs)\n\n" (List.length !runs)
