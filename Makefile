.PHONY: all smoke test bench clean

all:
	dune build @all

# fast correctness gate: typecheck everything, then the full test suite
smoke:
	dune build @check && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
