.PHONY: all smoke test bench bench-search bench-search-smoke clean

all:
	dune build @all

# fast correctness gate: typecheck everything, then the full test suite
smoke:
	dune build @check && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# domain-parallel search sweep: writes BENCH_search.json (full sweep:
# domains 1/2/4/8 on 8-relation workloads; speedups need a multicore box)
bench-search:
	dune exec bench/main.exe -- --only e17

# same experiment shrunk for CI gates (one small workload, domains 1-2)
bench-search-smoke:
	PARQO_SMOKE=1 dune exec bench/main.exe -- --only e17

clean:
	dune clean
