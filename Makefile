.PHONY: all smoke test ci bench bench-search bench-search-smoke bench-cost bench-cost-smoke bench-replan bench-replan-smoke bench-serve bench-serve-smoke bench-sched bench-sched-smoke bench-hetero bench-hetero-smoke clean

all:
	dune build @all

# fast correctness gate: typecheck everything, then the full test suite
smoke:
	dune build @check && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# domain-parallel search sweep: writes BENCH_search.json (full sweep:
# domains 1/2/4/8 on 8-relation workloads; speedups need a multicore box)
bench-search:
	dune exec bench/main.exe -- --only e17

# same experiment shrunk for CI gates (one small workload, domains 1/2/4);
# fails loudly if parallel overhead exceeds 1.3x sequential
bench-search-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e17

# incremental-costing micro-bench: cached vs uncached PODP, identity
# checked, writes BENCH_cost.json (full: chain-8 and star-8)
bench-cost:
	dune exec bench/main.exe -- --only e18

# same experiment shrunk for CI gates (chain-5, one repeat)
bench-cost-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e18

# adaptive re-planning vs static recovery under engineered outages:
# asserts fault-free bit-identity and that adaptive beats static on at
# least one severity per workload; writes BENCH_replan.json
bench-replan:
	dune exec bench/main.exe -- --only e19

# same experiment shrunk for CI gates (chain only, one severity)
bench-replan-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e19

# serving bench: request streams with deadlines, shedding and chaos;
# asserts no request is lost and the in-flight cap holds
bench-serve:
	dune exec bench/main.exe -- --only e20

bench-serve-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e20

# workload co-scheduling bench: policies x arrival intensities plus the
# contention crossover; asserts utilization <= 1, busy conservation,
# single-query bit-identity with the simulator, SRW <= fair-share at
# heavy load, and that the low-work plan wins under contention; writes
# BENCH_sched.json
bench-sched:
	dune exec bench/main.exe -- --only e22

bench-sched-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e22

# heterogeneous degradation and elastic recovery: brownout severities and
# scale-out onsets, static vs adaptive; asserts event-free bit-identity,
# the all-nominal rescale no-op, the heterogeneous balance bound, that
# adaptive beats static on at least one brownout, and that at least one
# scale-out delivers work on the grown resource; writes BENCH_hetero.json
bench-hetero:
	dune exec bench/main.exe -- --only e23

bench-hetero-smoke:
	timeout 600 env PARQO_SMOKE=1 dune exec bench/main.exe -- --only e23

# the CI gate: full test suite plus the smoke micro-benches (which assert
# cached-vs-uncached and replan bit-identity end to end, and that the
# parallel search machinery costs at most 1.3x the sequential path)
ci:
	dune build @all && dune runtest && $(MAKE) bench-search-smoke && $(MAKE) bench-cost-smoke && $(MAKE) bench-replan-smoke && $(MAKE) bench-serve-smoke && $(MAKE) bench-sched-smoke && $(MAKE) bench-hetero-smoke

clean:
	dune clean
