module C = Parqo_catalog
module Q = Parqo_query.Query
module P = Parqo_plan
module Op = Parqo_optree.Op
module Value = C.Value

(* all partitions of a stream share one layout *)
type stream = { layout : Batch.layout; parts : Value.t array list array }

let batch_of stream i =
  Batch.create ~layout:stream.layout ~rows:stream.parts.(i)

let of_batches layout batches =
  { layout; parts = Array.map (fun (b : Batch.t) -> b.Batch.rows) batches }

let table_of db query rel =
  C.Catalog.table db.C.Datagen.catalog (Q.table_name query rel)

let col_pos db query layout (c : P.Ordering.col) =
  let table = table_of db query c.P.Ordering.rel in
  Batch.offset layout c.P.Ordering.rel + C.Table.column_index table c.P.Ordering.column

(* round-robin split of rows into k partitions *)
let split_rows k rows =
  let parts = Array.make k [] in
  List.iteri (fun i row -> parts.(i mod k) <- row :: parts.(i mod k)) rows;
  Array.map List.rev parts

let concat_parts stream = List.concat (Array.to_list stream.parts)

let sort_rows positions rows =
  let compare_rows a b =
    let rec go = function
      | [] -> 0
      | p :: rest ->
        let c = Value.compare a.(p) b.(p) in
        if c <> 0 then c else go rest
    in
    go positions
  in
  List.stable_sort compare_rows rows

let run_stream db query root =
  let skew_log = ref [] in
  let observe (node : Op.node) (parts : Value.t array list array) =
    if node.Op.clone > 1 then begin
      let sizes = Array.map List.length parts in
      let total = Array.fold_left ( + ) 0 sizes in
      let mean = float_of_int total /. float_of_int (Array.length sizes) in
      let biggest = Array.fold_left max 0 sizes in
      let ratio = if mean > 0. then float_of_int biggest /. mean else 1. in
      skew_log :=
        (Op.kind_name node.Op.kind, node.Op.clone, ratio) :: !skew_log
    end
  in
  let expect_degree label k (s : stream) =
    if Array.length s.parts <> k then
      Parqo_util.Parqo_error.failf ~subsystem:"parallel-exec" ~operator:label
        "expected %d input partitions, got %d (missing exchange?)" k
        (Array.length s.parts)
  in
  let rec eval (node : Op.node) : stream =
    let k = node.Op.clone in
    let result =
      match (node.Op.kind, node.Op.children) with
      | Op.Seq_scan { rel }, [] ->
        let b = Executor.scan db query ~rel in
        { layout = b.Batch.layout; parts = split_rows k b.Batch.rows }
      | Op.Index_scan { rel; index }, [] ->
        (* an index scan delivers rows in key order *)
        let b = Executor.scan db query ~rel in
        let positions =
          List.map
            (fun column ->
              col_pos db query b.Batch.layout { P.Ordering.rel; column })
            index.C.Index.columns
        in
        let rows = sort_rows positions b.Batch.rows in
        { layout = b.Batch.layout; parts = split_rows k rows }
      | Op.Sort { key }, [ child ] ->
        let s = eval child in
        expect_degree "sort" k s;
        let positions = List.map (col_pos db query s.layout) key in
        { s with parts = Array.map (sort_rows positions) s.parts }
      | Op.Exchange { mode }, [ child ] ->
        let s = eval child in
        let rows = concat_parts s in
        let parts =
          match mode with
          | Op.Merge_streams -> [| rows |]
          | Op.Broadcast -> Array.make k rows
          | Op.Repartition -> (
            match node.Op.partition with
            | Some col ->
              let pos = col_pos db query s.layout col in
              let parts = Array.make k [] in
              List.iter
                (fun row ->
                  let d = Value.hash row.(pos) mod k in
                  parts.(d) <- row :: parts.(d))
                rows;
              Array.map List.rev parts
            | None -> split_rows k rows)
        in
        { s with parts }
      | Op.Hash_build, [ child ] | Op.Create_index _, [ child ] ->
        (* data structures, not data transforms: rows pass through *)
        let s = eval child in
        expect_degree (Op.kind_name node.Op.kind) k s;
        s
      | Op.Hash_probe, [ outer; inner ]
      | Op.Merge_join, [ outer; inner ]
      | Op.Nl_join, [ outer; inner ] ->
        let so = eval outer and si = eval inner in
        expect_degree "join outer" k so;
        expect_degree "join inner" k si;
        let method_ =
          match node.Op.kind with
          | Op.Hash_probe -> P.Join_method.Hash_join
          | Op.Merge_join -> P.Join_method.Sort_merge
          | Op.Nl_join | _ -> P.Join_method.Nested_loops
        in
        let joined =
          Array.init k (fun i ->
              Executor.join db query ~method_ ~outer:(batch_of so i)
                ~inner:(batch_of si i))
        in
        of_batches (joined.(0)).Batch.layout joined
      | kind, children ->
        Parqo_util.Parqo_error.failf ~subsystem:"parallel-exec"
          ~operator:(Op.kind_name kind) "unexpected shape: %d children"
          (List.length children)
    in
    observe node result.parts;
    result
  in
  let s = eval root in
  (Batch.create ~layout:s.layout ~rows:(concat_parts s), List.rev !skew_log)

let run db query root = fst (run_stream db query root)

let run_query db query root = Executor.finalize db query (run db query root)

let partition_skew db query root =
  let _, skew = run_stream db query root in
  skew
