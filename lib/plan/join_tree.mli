(** Annotated join trees — the syntactic representation of executions
    (§3), extended with the parallel annotations of §4: cloning degree and
    output composition.

    A tree is legal for a query when its leaves are exactly the query's
    relations, each occurring once (the paper's "each tuple computed
    exactly once" constraint rules out the redundant bushy shapes). *)

type access = {
  rel : int;  (** relation id in the query *)
  path : Access_path.t;
  clone : int;  (** degree of intra-operator parallelism, >= 1 *)
  akey : string;  (** precomputed canonical key; use {!key} *)
}

type join = {
  method_ : Join_method.t;
  outer : t;
  inner : t;
  clone : int;
  materialize : bool;
      (** force the join's output to be materialized instead of pipelined
          into its parent — trades pipeline parallelism for freedom from
          the synchronization penalty delta(k) *)
  jkey : string;  (** precomputed canonical key; use {!key} *)
  jrels : Parqo_util.Bitset.t;  (** precomputed leaf set; use {!relations} *)
}

and t = Access of access | Join of join
(** The key and relation-set fields are hash-consed by the smart
    constructors (a join derives them from its children in O(1) extra
    work), which is what makes {!key}, {!relations} and plan-cache
    lookups cheap in the search hot path.  Always build trees through
    {!access} and {!join} — never by record syntax or [{ j with ... }],
    which would carry a stale key past a child replacement. *)

val access : ?path:Access_path.t -> ?clone:int -> int -> t
(** [path] defaults to [Seq_scan], [clone] to 1. *)

val join :
  ?clone:int -> ?materialize:bool -> Join_method.t -> outer:t -> inner:t -> t

val relations : t -> Parqo_util.Bitset.t
(** Set of relation ids at the leaves — O(1), precomputed. *)

val key : t -> string
(** The precomputed canonical rendering (same string as {!to_string}) —
    O(1).  Injective for trees over one catalog, so it is a sound cache
    key and deterministic tie-breaker. *)

val n_leaves : t -> int

val n_joins : t -> int

val is_left_deep : t -> bool
(** Every join's inner operand is a base-relation access. *)

val leaves : t -> access list
(** Left-to-right order. *)

val joins : t -> join list
(** Post-order. *)

val fold : access:(access -> 'a) -> join:(join -> 'a -> 'a -> 'a) -> t -> 'a

val equal : t -> t -> bool

val well_formed : n_relations:int -> t -> (unit, string) result
(** Each relation id in range and used exactly once; clone degrees >= 1. *)

val to_string : t -> string
(** Compact functional rendering, e.g.
    [HJ(SM(scan(t0), idx(t1)/2), scan(t2))]. *)

val pp : Format.formatter -> t -> unit
