module Q = Parqo_query.Query
module Bitset = Parqo_util.Bitset

let join_preds query (j : Join_tree.join) =
  Q.joins_between query
    (Join_tree.relations j.outer)
    (Join_tree.relations j.inner)

(* For a predicate, the column reference on the side inside [set]. *)
let side_in set (p : Q.join_pred) =
  if Bitset.mem p.left.Q.rel set then p.left else p.right

let sort_key_outer query (j : Join_tree.join) =
  let outer = Join_tree.relations j.outer in
  List.map (fun p -> Ordering.of_join_pred_side (side_in outer p)) (join_preds query j)

let sort_key_inner query (j : Join_tree.join) =
  let inner = Join_tree.relations j.inner in
  List.map (fun p -> Ordering.of_join_pred_side (side_in inner p)) (join_preds query j)

(* The output ordering of a join depends on its own annotations plus —
   only for the order-preserving methods — the outer child's ordering,
   supplied as a thunk so incremental costing can feed the memoized value
   instead of re-walking the subtree. *)
let ordering_of_join query (j : Join_tree.join) ~outer =
  if j.clone > 1 then Ordering.none
  else
    match j.method_ with
    | Join_method.Sort_merge -> sort_key_outer query j
    | Join_method.Hash_join | Join_method.Nested_loops -> outer ()

let rec ordering query = function
  | Join_tree.Access a ->
    if a.clone > 1 then Ordering.none else Access_path.ordering ~rel:a.rel a.path
  | Join_tree.Join j ->
    ordering_of_join query j ~outer:(fun () -> ordering query j.outer)

let partition_column query = function
  | Join_tree.Access _ -> None
  | Join_tree.Join j ->
    if j.clone <= 1 then None
    else (
      match sort_key_outer query j with
      | [] -> None
      | col :: _ -> Some col)
