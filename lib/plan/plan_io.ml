module C = Parqo_catalog
module Q = Parqo_query.Query

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let to_string = Join_tree.to_string

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_spaces st =
  while peek st = Some ' ' do
    advance st
  done

let expect st c =
  skip_spaces st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %C at offset %d, found %C" c st.pos c'
  | None -> fail "expected %C at end of input" c

let literal st s =
  skip_spaces st;
  let n = String.length s in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = s
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let ident st =
  skip_spaces st;
  let start = st.pos in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while
    match peek st with Some c when is_ident c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail "expected identifier at offset %d" start;
  String.sub st.input start (st.pos - start)

let int_lit st =
  let s = ident st in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "expected integer, found %S" s

(* [/k] and [!] suffixes *)
let annots st =
  let clone =
    if literal st "/" then begin
      let v = int_lit st in
      if v < 1 then fail "clone degree must be >= 1, found %d" v;
      v
    end
    else 1
  in
  let materialize = literal st "!" in
  (clone, materialize)

let rel_number st =
  expect st 'r';
  int_lit st

let parse ~catalog ~query input =
  let st = { input; pos = 0 } in
  let find_index name table_name =
    match
      List.find_opt
        (fun (i : C.Index.t) -> i.C.Index.name = name)
        (C.Catalog.indexes_of catalog table_name)
    with
    | Some i -> i
    | None -> fail "no index %s on table %s" name table_name
  in
  let rec plan () =
    skip_spaces st;
    if literal st "scan(" then begin
      let rel = rel_number st in
      expect st ')';
      let clone, _ = annots st in
      Join_tree.access ~clone rel
    end
    else if literal st "idx(" then begin
      let rel = rel_number st in
      expect st ':';
      let name = ident st in
      expect st ')';
      let clone, _ = annots st in
      if rel < 0 || rel >= Q.n_relations query then
        fail "relation r%d out of range" rel;
      let index = find_index name (Q.table_name query rel) in
      Join_tree.access ~path:(Access_path.Index_scan index) ~clone rel
    end
    else begin
      let method_ =
        if literal st "NL" then Join_method.Nested_loops
        else if literal st "SM" then Join_method.Sort_merge
        else if literal st "HJ" then Join_method.Hash_join
        else fail "expected NL, SM, HJ, scan( or idx( at offset %d" st.pos
      in
      let clone, materialize = annots st in
      expect st '(';
      let outer = plan () in
      expect st ',';
      let inner = plan () in
      expect st ')';
      Join_tree.join ~clone ~materialize method_ ~outer ~inner
    end
  in
  let tree = plan () in
  skip_spaces st;
  if st.pos <> String.length input then fail "trailing input at offset %d" st.pos;
  (match Join_tree.well_formed ~n_relations:(Q.n_relations query) tree with
  | Ok () -> ()
  | Error e -> fail "%s" e);
  tree

let of_string ~catalog ~query input =
  match parse ~catalog ~query input with
  | tree -> Ok tree
  | exception Error msg -> Error msg

let of_string_exn ~catalog ~query input =
  match of_string ~catalog ~query input with
  | Ok tree -> tree
  | Error msg -> invalid_arg ("Plan_io.of_string: " ^ msg)
