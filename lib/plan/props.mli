(** Physical properties of join-tree outputs.

    These are the plan-dependent properties whose existence breaks the
    principle of optimality for the work metric (interesting orders,
    §6.1.2) and for response time (resource placement, §6.1.3); the
    partial-order pruning metrics expose them as extra dimensions. *)

val join_preds :
  Parqo_query.Query.t -> Join_tree.join -> Parqo_query.Query.join_pred list
(** The query's equi-join predicates connecting the join's two subtrees
    (possibly empty: a cartesian product). *)

val sort_key_outer : Parqo_query.Query.t -> Join_tree.join -> Ordering.t
(** Sort key required on the outer side for a sort-merge join: the outer
    columns of every connecting predicate. *)

val sort_key_inner : Parqo_query.Query.t -> Join_tree.join -> Ordering.t

val ordering_of_join :
  Parqo_query.Query.t ->
  Join_tree.join ->
  outer:(unit -> Ordering.t) ->
  Ordering.t
(** One step of {!ordering}: the join's output ordering given its outer
    child's ordering as a thunk (forced only for the order-preserving
    methods).  Incremental costing passes the memoized child ordering
    here instead of re-walking the subtree. *)

val ordering : Parqo_query.Query.t -> Join_tree.t -> Ordering.t
(** Output ordering: access paths yield their index order; sort-merge
    yields the outer sort key; hash and nested-loops joins preserve the
    outer ordering. Any operator cloned beyond degree 1 destroys global
    order (its output is a union of partitioned streams). *)

val partition_column :
  Parqo_query.Query.t -> Join_tree.t -> Ordering.col option
(** Attribute on which the output is hash-partitioned, when the top
    operator is cloned on a join attribute. *)
