module C = Parqo_catalog
module Q = Parqo_query.Query
module Bitset = Parqo_util.Bitset

(* The cardinality memo must be safe to share across domains: the
   parallel search evaluates plans concurrently against one Env.  For the
   query sizes the search handles, a dense float array indexed by subset
   mask works and makes races benign — every writer stores the same pure
   function of the key, so a concurrent reader sees either the sentinel
   (and recomputes) or the final value, never a torn structure.  Queries
   too wide for a dense table fall back to a mutex-guarded hashtable. *)
type memo =
  | Dense of float array  (** [nan] = absent; idempotent writes *)
  | Sparse of Mutex.t * (int, float) Hashtbl.t

let max_dense_relations = 20  (* 2^20 floats = 8 MB *)

type t = {
  catalog : C.Catalog.t;
  query : Q.t;
  tables : C.Table.t array;  (** by relation id *)
  base_cards : float array;  (** after selections *)
  card_memo : memo;
}

let stats_of t (r : Q.column_ref) =
  C.Table.column_stats t.tables.(r.rel) r.column

let selection_selectivity_of tables (s : Q.selection) =
  let stats = C.Table.column_stats tables.(s.on.Q.rel) s.on.Q.column in
  let v = C.Value.to_float s.value in
  let sel =
    match s.cmp with
    | Q.Eq -> C.Stats.eq_fraction stats v
    | Q.Ne -> 1. -. C.Stats.eq_fraction stats v
    | Q.Le -> C.Stats.le_fraction stats v
    | Q.Lt -> C.Stats.le_fraction stats v -. C.Stats.eq_fraction stats v
    | Q.Gt -> 1. -. C.Stats.le_fraction stats v
    | Q.Ge -> 1. -. C.Stats.le_fraction stats v +. C.Stats.eq_fraction stats v
  in
  Float.min 1. (Float.max 0. sel)

let create catalog query =
  (match Q.validate catalog query with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Estimator.create: " ^ msg));
  let n = Q.n_relations query in
  let tables =
    Array.init n (fun i -> C.Catalog.table catalog (Q.table_name query i))
  in
  let base_cards =
    Array.init n (fun i ->
        let raw = tables.(i).C.Table.cardinality in
        let sel =
          List.fold_left
            (fun acc s -> acc *. selection_selectivity_of tables s)
            1.
            (Q.selections_on query i)
        in
        raw *. sel)
  in
  let card_memo =
    if n <= max_dense_relations then Dense (Array.make (1 lsl n) Float.nan)
    else Sparse (Mutex.create (), Hashtbl.create 64)
  in
  { catalog; query; tables; base_cards; card_memo }

let catalog t = t.catalog
let query t = t.query
let raw_card t rel = t.tables.(rel).C.Table.cardinality
let base_card t rel = t.base_cards.(rel)
let table_of t rel = t.tables.(rel)
let selection_selectivity t s = selection_selectivity_of t.tables s

let join_selectivity t (j : Q.join_pred) =
  C.Stats.join_selectivity (stats_of t j.left) (stats_of t j.right)

let compute_card t set =
  let base = Bitset.fold (fun rel acc -> acc *. t.base_cards.(rel)) set 1. in
  let sel =
    List.fold_left
      (fun acc j -> acc *. join_selectivity t j)
      1.
      (Q.joins_within t.query set)
  in
  base *. sel

let card t set =
  let key = Bitset.to_int set in
  match t.card_memo with
  | Dense a ->
    let c = a.(key) in
    if Float.is_nan c then begin
      let c = compute_card t set in
      a.(key) <- c;
      c
    end
    else c
  | Sparse (m, tbl) ->
    Mutex.lock m;
    let cached = Hashtbl.find_opt tbl key in
    Mutex.unlock m;
    (match cached with
    | Some c -> c
    | None ->
      let c = compute_card t set in
      Mutex.lock m;
      Hashtbl.replace tbl key c;
      Mutex.unlock m;
      c)

let width t set =
  Bitset.fold
    (fun rel acc -> acc +. float_of_int (C.Table.arity t.tables.(rel)))
    set 0.
