module Bitset = Parqo_util.Bitset

type access = { rel : int; path : Access_path.t; clone : int; akey : string }

type join = {
  method_ : Join_method.t;
  outer : t;
  inner : t;
  clone : int;
  materialize : bool;
  jkey : string;
  jrels : Bitset.t;
}

and t = Access of access | Join of join

let method_abbrev = function
  | Join_method.Nested_loops -> "NL"
  | Join_method.Sort_merge -> "SM"
  | Join_method.Hash_join -> "HJ"

(* The canonical rendering doubles as the plan's identity: the search
   breaks rank ties with it and the plan cache keys on it, so it is
   hash-consed bottom-up at construction (a join's key concatenates its
   children's keys) instead of being re-rendered on every comparison. *)
let key = function Access a -> a.akey | Join j -> j.jkey

let relations = function Access a -> Bitset.singleton a.rel | Join j -> j.jrels

let access_key ~path ~clone rel =
  let base =
    match path with
    | Access_path.Seq_scan -> Printf.sprintf "scan(r%d)" rel
    | Access_path.Index_scan i ->
      Printf.sprintf "idx(r%d:%s)" rel i.Parqo_catalog.Index.name
  in
  if clone > 1 then Printf.sprintf "%s/%d" base clone else base

let access ?(path = Access_path.Seq_scan) ?(clone = 1) rel =
  if clone < 1 then invalid_arg "Join_tree.access: clone < 1";
  Access { rel; path; clone; akey = access_key ~path ~clone rel }

(* renders "ABBREV[/clone][!](outer, inner)" by direct concatenation:
   the sprintf equivalent ran once per candidate in the DP's inner loop,
   and format interpretation plus intermediate strings showed up in the
   per-plan allocation profile *)
let join_key ~method_ ~clone ~materialize ~okey ~ikey =
  let abbrev = method_abbrev method_ in
  let cl = if clone > 1 then "/" ^ string_of_int clone else "" in
  let bang = if materialize then "!" else "" in
  let la = String.length abbrev and lc = String.length cl in
  let lb = String.length bang in
  let lo = String.length okey and li = String.length ikey in
  let b = Bytes.create (la + lc + lb + 1 + lo + 2 + li + 1) in
  let pos = ref 0 in
  let put s l =
    Bytes.blit_string s 0 b !pos l;
    pos := !pos + l
  in
  put abbrev la;
  put cl lc;
  put bang lb;
  put "(" 1;
  put okey lo;
  put ", " 2;
  put ikey li;
  put ")" 1;
  Bytes.unsafe_to_string b

let join ?(clone = 1) ?(materialize = false) method_ ~outer ~inner =
  if clone < 1 then invalid_arg "Join_tree.join: clone < 1";
  let jkey =
    join_key ~method_ ~clone ~materialize ~okey:(key outer) ~ikey:(key inner)
  in
  let jrels = Bitset.union (relations outer) (relations inner) in
  Join { method_; outer; inner; clone; materialize; jkey; jrels }

let rec n_leaves = function
  | Access _ -> 1
  | Join j -> n_leaves j.outer + n_leaves j.inner

let rec n_joins = function
  | Access _ -> 0
  | Join j -> 1 + n_joins j.outer + n_joins j.inner

let rec is_left_deep = function
  | Access _ -> true
  | Join j -> (match j.inner with Access _ -> is_left_deep j.outer | Join _ -> false)

let rec leaves = function
  | Access a -> [ a ]
  | Join j -> leaves j.outer @ leaves j.inner

let rec joins = function
  | Access _ -> []
  | Join j -> joins j.outer @ joins j.inner @ [ j ]

let rec fold ~access ~join = function
  | Access a -> access a
  | Join j -> join j (fold ~access ~join j.outer) (fold ~access ~join j.inner)

let rec equal a b =
  match (a, b) with
  | Access x, Access y ->
    x.rel = y.rel && Access_path.equal x.path y.path && x.clone = y.clone
  | Join x, Join y ->
    Join_method.equal x.method_ y.method_
    && x.clone = y.clone
    && x.materialize = y.materialize
    && equal x.outer y.outer && equal x.inner y.inner
  | Access _, Join _ | Join _, Access _ -> false

let well_formed ~n_relations t =
  let ls = leaves t in
  let ids = List.map (fun a -> a.rel) ls in
  let sorted = List.sort_uniq compare ids in
  if List.exists (fun r -> r < 0 || r >= n_relations) ids then
    Error "relation id out of range"
  else if List.length sorted <> List.length ids then
    Error "relation used more than once"
  else if
    List.exists (fun (a : access) -> a.clone < 1) ls
    || List.exists (fun (j : join) -> j.clone < 1) (joins t)
  then Error "clone degree < 1"
  else Ok ()

let to_string = key

let pp ppf t = Format.pp_print_string ppf (to_string t)
