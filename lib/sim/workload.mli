(** Arrival processes shared by the workload scheduler ({!Scheduler})
    and the serving layer ([Parqo.Workloads] re-exports this module, so
    sim and serve draw streams from one implementation).

    Instants are abstract time units: virtual seconds in the serving
    loop, cost-calculus work units in the scheduler — the process only
    fixes the {e shape} of the stream. *)

type arrival =
  | Uniform of float  (** fixed rate, queries per time unit *)
  | Poisson of float  (** exponential inter-arrivals, mean rate *)
  | Burst of { size : int; period : float }
      (** [size] simultaneous arrivals every [period] time units *)

val arrival_to_string : arrival -> string

val arrivals : Parqo_util.Rng.t -> process:arrival -> n:int -> float array
(** [n] non-decreasing arrival instants (time units from stream start)
    drawn from the process; deterministic in the rng state.  Raises
    [Invalid_argument] on [n < 0] or non-positive rate/size/period. *)
