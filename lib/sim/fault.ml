module Rng = Parqo_util.Rng

type kind = Task_failure | Straggler | Resource_outage | Scale_out

let kind_name = function
  | Task_failure -> "task-failure"
  | Straggler -> "straggler"
  | Resource_outage -> "resource-outage"
  | Scale_out -> "scale-out"

type outage = { resource : int; at : float; duration : float; factor : float }

type grow = {
  g_at : float;
  g_kind : Parqo_machine.Resource.kind;
  g_node : int;
  g_speed : float;
}

type config = {
  seed : int;
  task_fail_rate : float;
  max_fail_attempts : int;
  straggler_rate : float;
  straggler_factor : float;
  outages : outage list;
  grows : grow list;
}

let none =
  {
    seed = 0;
    task_fail_rate = 0.;
    max_fail_attempts = 0;
    straggler_rate = 0.;
    straggler_factor = 1.;
    outages = [];
    grows = [];
  }

let default ?(seed = 0) ?(straggler = false) ~fault_rate () =
  {
    seed;
    task_fail_rate = fault_rate;
    max_fail_attempts = 8;
    straggler_rate = (if straggler then fault_rate /. 2. else 0.);
    straggler_factor = 4.;
    outages = [];
    grows = [];
  }

let brownout ~resource ~at ~duration ~factor =
  if not (factor > 0. && factor < 1.) then
    invalid_arg "Fault.brownout: factor must be in (0, 1)";
  { resource; at; duration; factor }

let is_active c =
  c.task_fail_rate > 0. || c.straggler_rate > 0. || c.outages <> []
  || c.grows <> []

let validate c =
  let in_unit ~strict_hi x = x >= 0. && if strict_hi then x < 1. else x <= 1. in
  if not (in_unit ~strict_hi:true c.task_fail_rate) then
    Error "task_fail_rate must be in [0, 1)"
  else if not (in_unit ~strict_hi:false c.straggler_rate) then
    Error "straggler_rate must be in [0, 1]"
  else if c.straggler_factor < 1. then Error "straggler_factor must be >= 1"
  else if c.max_fail_attempts < 0 then Error "max_fail_attempts must be >= 0"
  else if
    List.exists
      (fun o ->
        o.at < 0. || o.duration < 0. || o.factor < 0. || o.factor > 1.
        || o.resource < 0)
      c.outages
  then Error "outage fields out of range"
  else if
    List.exists
      (fun g ->
        (not (Float.is_finite g.g_at))
        || g.g_at < 0.
        || (not (Float.is_finite g.g_speed))
        || g.g_speed <= 0. || g.g_node < -1)
      c.grows
  then Error "grow fields out of range"
  else Ok ()

type draw = { fails : bool; fail_point : float; slowdown : float }

(* One independent generator per (seed, stage, task, attempt): the draw
   depends only on the identity of the attempt, never on simulation
   order.  The multipliers are large odd constants; Rng.create finishes
   the job with a SplitMix64 mix. *)
let draw c ~stage ~task ~attempt =
  let key =
    (((c.seed * 0x2545F491) + stage) * 0x9E3779B1)
    + (task * 0x85EBCA77) + (attempt * 0xC2B2AE35)
  in
  let rng = Rng.create key in
  let u_fail = Rng.float rng 1. in
  let u_point = Rng.float rng 1. in
  let u_strag = Rng.float rng 1. in
  {
    fails = attempt <= c.max_fail_attempts && u_fail < c.task_fail_rate;
    fail_point = 0.05 +. (0.9 *. u_point);
    slowdown =
      (if u_strag < c.straggler_rate then c.straggler_factor else 1.);
  }

let random_outages rng ~n_resources ~horizon ~rate ~mean_duration =
  if rate <= 0. then []
  else begin
    let out = ref [] in
    for r = 0 to n_resources - 1 do
      let t = ref (Rng.exponential rng ~mean:(horizon /. rate)) in
      while !t < horizon do
        let duration = Rng.exponential rng ~mean:mean_duration in
        out := { resource = r; at = !t; duration; factor = 0. } :: !out;
        t := !t +. duration +. Rng.exponential rng ~mean:(horizon /. rate)
      done
    done;
    List.rev !out
  end

let random_rescales rng ~n_resources ~horizon ~rate ~mean_duration ~factor =
  if not (factor > 0. && factor < 1.) then
    invalid_arg "Fault.random_rescales: factor must be in (0, 1)";
  if rate <= 0. then []
  else begin
    let out = ref [] in
    for r = 0 to n_resources - 1 do
      let t = ref (Rng.exponential rng ~mean:(horizon /. rate)) in
      while !t < horizon do
        let duration = Rng.exponential rng ~mean:mean_duration in
        out := { resource = r; at = !t; duration; factor } :: !out;
        t := !t +. duration +. Rng.exponential rng ~mean:(horizon /. rate)
      done
    done;
    List.rev !out
  end

let capacity c ~time ~resource =
  List.fold_left
    (fun cap o ->
      if
        o.resource = resource && time >= o.at -. 1e-12
        && time < o.at +. o.duration -. 1e-12
      then cap *. o.factor
      else cap)
    1. c.outages
  |> Float.max 0.

let next_capacity_change c ~after =
  let pick acc t =
    if t > after +. 1e-12 then
      match acc with
      | None -> Some t
      | Some best -> Some (Float.min best t)
    else acc
  in
  let acc =
    List.fold_left
      (fun acc o -> List.fold_left pick acc [ o.at; o.at +. o.duration ])
      None c.outages
  in
  List.fold_left (fun acc g -> pick acc g.g_at) acc c.grows

let pp ppf c =
  Format.fprintf ppf
    "faults{seed=%d fail=%.3f(max %d) straggler=%.3f(x%.1f) outages=%d grows=%d}"
    c.seed c.task_fail_rate c.max_fail_attempts c.straggler_rate
    c.straggler_factor (List.length c.outages) (List.length c.grows)
