module Parqo_error = Parqo_util.Parqo_error
module Statsu = Parqo_util.Statsu

type policy = Fair_share | Strict_priority | Shortest_remaining_work

let policy_to_string = function
  | Fair_share -> "fair"
  | Strict_priority -> "priority"
  | Shortest_remaining_work -> "srw"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "fair" | "fair-share" | "fair_share" | "ps" -> Ok Fair_share
  | "priority" | "strict-priority" | "strict_priority" -> Ok Strict_priority
  | "srw" | "srpt" | "shortest-remaining-work" | "shortest_remaining_work" ->
    Ok Shortest_remaining_work
  | _ ->
    Error
      (Printf.sprintf "unknown policy %S (valid: fair, priority, srw)" s)

let all_policies = [ Fair_share; Strict_priority; Shortest_remaining_work ]

type job = {
  job_id : int;
  label : string;
  arrival : float;
  priority : int;
  deadline : float option;
  graph : Task_graph.t;
}

let job ?(label = "") ?(priority = 0) ?(arrival = 0.) ?deadline ~job_id graph =
  { job_id; label; arrival; priority; deadline; graph }

type event = { at : float; what : string }

type machine_event = { ev_at : float; ev_resource : int; ev_speed : float }

type disposition = Completed | Rejected of string

type job_outcome = {
  job_id : int;
  label : string;
  arrival : float;
  started : float;
  finished : float;
  response : float;
  work : float;
  disposition : disposition;
  stage_start : (int * float) list;
  stage_finish : (int * float) list;
}

type outcome = {
  policy : policy;
  jobs : job_outcome array;
  makespan : float;
  busy : float array;
  total_work : float;
  trace : event list;
}

type summary = {
  n_jobs : int;
  n_rejected : int;
  makespan : float;
  utilization : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let eps = 1e-9

let utilization (o : outcome) =
  if o.makespan <= 0. then 1.
  else o.total_work /. (o.makespan *. float_of_int (Array.length o.busy))

let summarize (o : outcome) =
  (* response-time statistics cover completed jobs only: a shed job never
     ran, so folding its zero response in would flatter the tail *)
  let rs =
    Array.to_list o.jobs
    |> List.filter_map (fun j ->
           match j.disposition with
           | Completed -> Some j.response
           | Rejected _ -> None)
  in
  let n_rejected =
    Array.fold_left
      (fun acc j ->
        match j.disposition with Rejected _ -> acc + 1 | Completed -> acc)
      0 o.jobs
  in
  let quantile q = match rs with [] -> 0. | l -> Statsu.quantile q l in
  {
    n_jobs = Array.length o.jobs;
    n_rejected;
    makespan = o.makespan;
    utilization = utilization o;
    mean =
      (match rs with
      | [] -> 0.
      | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l));
    p50 = quantile 0.5;
    p95 = quantile 0.95;
    p99 = quantile 0.99;
    max = List.fold_left Float.max 0. rs;
  }

let effective_speeds machine =
  let module M = Parqo_machine.Machine in
  Array.init (M.n_resources machine) (M.speed machine)

let expected_pressure ?horizon ?speeds ~n_resources (jobs : job array) =
  (match speeds with
  | Some s when Array.length s <> n_resources ->
    invalid_arg "Scheduler.expected_pressure: speeds length <> n_resources"
  | _ -> ());
  let totals = Array.make n_resources 0. in
  Array.iter
    (fun j ->
      Array.iter
        (fun (s : Task_graph.stage) ->
          List.iter
            (fun (t : Task_graph.task) ->
              Array.iteri
                (fun r d ->
                  if r < n_resources then totals.(r) <- totals.(r) +. d)
                t.Task_graph.demands)
            s.Task_graph.tasks)
        j.graph.Task_graph.stages)
    jobs;
  if Array.length jobs = 0 then totals
  else begin
    let h =
      match horizon with
      | Some h ->
        if h <= 0. then
          invalid_arg "Scheduler.expected_pressure: horizon <= 0";
        h
      | None ->
        (* arrival span plus the mean job's solo drain time: the window
           over which the offered work actually lands on the machine *)
        let lo = ref infinity and hi = ref neg_infinity in
        Array.iter
          (fun (j : job) ->
            lo := Float.min !lo j.arrival;
            hi := Float.max !hi j.arrival)
          jobs;
        let total = Array.fold_left ( +. ) 0. totals in
        let mean_work = total /. float_of_int (Array.length jobs) in
        Float.max eps (!hi -. !lo +. mean_work)
    in
    (* pressure is offered load against {e effective} capacity: a
       half-speed resource saturates at half the work, so its pressure
       doubles.  The [None] branch is the pre-speed expression verbatim
       (all-nominal callers stay bit-identical); a zero-speed resource
       with offered work reads as infinitely loaded. *)
    match speeds with
    | None -> Array.map (fun w -> w /. h) totals
    | Some s ->
      Array.mapi
        (fun r w ->
          if s.(r) > 0. then w /. (h *. s.(r))
          else if w > eps then infinity
          else 0.)
        totals
  end

type stage_status = Pending | Running | Done

let validate_jobs (jobs : job array) =
  let nj = Array.length jobs in
  if nj = 0 then
    Parqo_error.fail ~subsystem:"scheduler" "empty job set";
  let nr = jobs.(0).graph.Task_graph.n_resources in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (j : job) ->
      if Hashtbl.mem seen j.job_id then
        Parqo_error.failf ~subsystem:"scheduler" "duplicate job id %d" j.job_id;
      Hashtbl.add seen j.job_id ();
      if j.graph.Task_graph.n_resources <> nr then
        Parqo_error.failf ~subsystem:"scheduler"
          "job %d resource-dimension mismatch (%d vs %d)" j.job_id
          j.graph.Task_graph.n_resources nr;
      if (not (Float.is_finite j.arrival)) || j.arrival < 0. then
        Parqo_error.failf ~subsystem:"scheduler"
          "job %d has invalid arrival" j.job_id;
      (match j.deadline with
      | Some d when (not (Float.is_finite d)) || d <= 0. ->
        Parqo_error.failf ~subsystem:"scheduler"
          "job %d has invalid deadline" j.job_id
      | _ -> ());
      match Task_graph.validate j.graph with
      | Ok () -> ()
      | Error msg ->
        Parqo_error.failf ~subsystem:"scheduler" "invalid task graph (job %d): %s"
          j.job_id msg)
    jobs;
  nr

let validate_events ~nr (events : machine_event list) =
  let evs = Array.of_list events in
  Array.iter
    (fun e ->
      if (not (Float.is_finite e.ev_at)) || e.ev_at < 0. then
        Parqo_error.failf ~subsystem:"scheduler"
          "machine event has invalid instant %g" e.ev_at;
      if e.ev_resource < 0 || e.ev_resource >= nr then
        Parqo_error.failf ~subsystem:"scheduler"
          "machine event resource %d out of range (workload has %d)"
          e.ev_resource nr;
      if (not (Float.is_finite e.ev_speed)) || e.ev_speed < 0. then
        Parqo_error.failf ~subsystem:"scheduler"
          "machine event has invalid speed %g" e.ev_speed)
    evs;
  (* stable sort: same-instant events on one resource apply in list
     order, so the last one given wins *)
  let order = Array.init (Array.length evs) Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare evs.(a).ev_at evs.(b).ev_at with
      | 0 -> compare a b
      | c -> c)
    order;
  let sorted = Array.map (fun i -> evs.(i)) order in
  (* drop no-op events: an event that leaves the resource at its current
     speed does not change the piecewise-constant capacity, and keeping
     it would still split a drain segment at its instant — so an
     all-nominal event list must reduce to no events for the bit-identity
     contract to hold *)
  let cur = Array.make nr 1. in
  Array.to_list sorted
  |> List.filter (fun e ->
         if e.ev_speed = cur.(e.ev_resource) then false
         else begin
           cur.(e.ev_resource) <- e.ev_speed;
           true
         end)
  |> Array.of_list

(* The event loop is [Simulator.run_clean ~mode:Concurrent] lifted to a
   set of jobs.  Per resource and instant, the policy selects the
   {e eligible} jobs among those demanding it; a running task of an
   eligible job drains at rate [1 / (count * n)], where [count] is its
   own job's demanding-task count on the resource (processor sharing
   within the job, as in the single-query simulator) and [n] is the
   number of eligible jobs (processor sharing — or preemption — across
   jobs).  The per-task slowdown factor is [f = count * n]: candidate
   next-event times are [d *. f] and advances [d -. dt /. f], so with a
   single job [n = 1] and multiplication by [1.0] being IEEE-exact the
   arithmetic is bit-for-bit the single-query simulator's — the
   degenerate case is Int64-identical by construction, and the total
   drain rate on a demanded resource is exactly 1, so per-resource busy
   time equals delivered work (busy conservation).

   [events] makes the machine itself time-varying: each event sets a
   resource's absolute speed from its instant on (piecewise-constant
   capacity).  A task draining resource [r] then drains at
   [speed(r) / factor] and busy accrues [dt * speed(r)] — delivered
   work, so busy conservation holds against {e effective} capacity.
   With no events every speed is [1.0] and multiplication/division by
   [1.0] is IEEE-exact, so the no-event run is bit-identical to the
   pre-speed scheduler.  A speed-0 window simply parks the demand until
   a later event restores capacity; demand parked on a dead resource
   with no future event is starvation and raises rather than spinning.

   [deadline] is admission control: at a job's arrival instant the
   scheduler estimates its response as (backlog work + its own work)
   divided by total effective speed — a processor-sharing bound that
   ignores placement, so it is optimistic per-resource but monotone in
   load — and sheds the job ([Rejected]) when the estimate exceeds its
   deadline.  Shed jobs never run: no stage starts, no busy accrues. *)
let run ?(policy = Fair_share) ?(events = []) (jobs_in : job array) =
  let nr = validate_jobs jobs_in in
  let mevents = validate_events ~nr events in
  let n_mev = Array.length mevents in
  let nj = Array.length jobs_in in
  let jobs = Array.copy jobs_in in
  (* deterministic processing order: (arrival, job_id) *)
  let order = Array.init nj Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare jobs.(a).arrival jobs.(b).arrival with
      | 0 -> compare jobs.(a).job_id jobs.(b).job_id
      | c -> c)
    order;
  let n_stages =
    Array.map (fun (j : job) -> Array.length j.graph.Task_graph.stages) jobs
  in
  let status =
    Array.map
      (fun (j : job) -> Array.make (Array.length j.graph.Task_graph.stages) Pending)
      jobs
  in
  let remaining_deps =
    Array.map
      (fun (j : job) ->
        Array.map
          (fun (s : Task_graph.stage) -> ref (List.length s.Task_graph.deps))
          j.graph.Task_graph.stages)
      jobs
  in
  let dependents =
    Array.map
      (fun (j : job) -> Array.make (Array.length j.graph.Task_graph.stages) [])
      jobs
  in
  Array.iteri
    (fun p (j : job) ->
      Array.iter
        (fun (s : Task_graph.stage) ->
          List.iter
            (fun d ->
              dependents.(p).(d) <- s.Task_graph.stage_id :: dependents.(p).(d))
            s.Task_graph.deps)
        j.graph.Task_graph.stages)
    jobs;
  let remaining =
    Array.map
      (fun (j : job) ->
        Array.map
          (fun (s : Task_graph.stage) ->
            Array.of_list
              (List.map
                 (fun (t : Task_graph.task) -> Array.copy t.Task_graph.demands)
                 s.Task_graph.tasks))
          j.graph.Task_graph.stages)
      jobs
  in
  let labels =
    Array.map
      (fun (j : job) ->
        Array.map
          (fun (s : Task_graph.stage) ->
            Array.of_list
              (List.map
                 (fun (t : Task_graph.task) -> t.Task_graph.label)
                 s.Task_graph.tasks))
          j.graph.Task_graph.stages)
      jobs
  in
  let busy = Array.make nr 0. in
  let time = ref 0. in
  let trace = ref [] in
  let emit what = trace := { at = !time; what } :: !trace in
  let jname p =
    if jobs.(p).label <> "" then jobs.(p).label
    else Printf.sprintf "q%d" jobs.(p).job_id
  in
  (* piecewise-constant effective speed per resource; events already
     sorted by instant, applied once their time comes *)
  let speed_now = Array.make nr 1. in
  let ev_idx = ref 0 in
  let apply_due_events () =
    while
      !ev_idx < n_mev && mevents.(!ev_idx).ev_at <= !time +. 1e-12
    do
      let e = mevents.(!ev_idx) in
      speed_now.(e.ev_resource) <- e.ev_speed;
      emit
        (Printf.sprintf "resource %d speed -> %.3g" e.ev_resource e.ev_speed);
      incr ev_idx
    done
  in
  (* next machine-event instant strictly in the future, if any *)
  let next_event_instant () =
    if !ev_idx < n_mev then mevents.(!ev_idx).ev_at else infinity
  in
  let arrived = Array.make nj false in
  let rejected = Array.make nj None in
  let finished_at = Array.make nj nan in
  let finished p = not (Float.is_nan finished_at.(p)) in
  let active p = arrived.(p) && not (finished p) in
  let stage_start = Array.make nj [] in
  let stage_finish = Array.make nj [] in
  let stage_done p id =
    Array.for_all
      (fun demands -> Array.for_all (fun d -> d <= eps) demands)
      remaining.(p).(id)
  in
  let rec start_ready p =
    Array.iteri
      (fun id s ->
        if status.(p).(id) = Pending && !(remaining_deps.(p).(id)) = 0 then begin
          status.(p).(id) <- Running;
          stage_start.(p) <- (id, !time) :: stage_start.(p);
          emit (Printf.sprintf "%s stage %d start" (jname p) id);
          if stage_done p id then complete p id
        end;
        ignore s)
      jobs.(p).graph.Task_graph.stages
  and complete p id =
    status.(p).(id) <- Done;
    stage_finish.(p) <- (id, !time) :: stage_finish.(p);
    emit (Printf.sprintf "%s stage %d done" (jname p) id);
    List.iter (fun dep -> decr remaining_deps.(p).(dep)) dependents.(p).(id);
    start_ready p
  in
  let job_done p = Array.for_all (fun s -> s = Done) status.(p) in
  let finish_jobs () =
    Array.iter
      (fun p ->
        if active p && job_done p then begin
          finished_at.(p) <- !time;
          emit (jname p ^ " done")
        end)
      order
  in
  (* next arrival instant strictly in the future, if any *)
  let next_arrival () =
    Array.fold_left
      (fun acc p ->
        if not arrived.(p) then Float.min acc jobs.(p).arrival else acc)
      infinity order
  in
  (* remaining work of an active job, for shortest-remaining-work *)
  let remaining_work p =
    let acc = ref 0. in
    for id = 0 to n_stages.(p) - 1 do
      if status.(p).(id) <> Done then
        Array.iter
          (fun demands -> Array.iter (fun d -> acc := !acc +. d) demands)
          remaining.(p).(id)
    done;
    !acc
  in
  (* admission estimate at arrival: (backlog + own work) over total
     effective speed — the processor-sharing completion bound.  [infinity]
     during a total blackout with work on offer. *)
  let estimated_response () =
    (* the candidate is already marked arrived, so the active sweep
       counts its full (undrained) work alongside the backlog *)
    let backlog = ref 0. in
    Array.iter (fun q -> if active q then backlog := !backlog +. remaining_work q) order;
    let cap = Array.fold_left ( +. ) 0. speed_now in
    if cap > eps then !backlog /. cap
    else if !backlog > eps then infinity
    else 0.
  in
  let activate p =
    arrived.(p) <- true;
    match jobs.(p).deadline with
    | Some dl when estimated_response () > dl +. 1e-12 ->
      let reason =
        Printf.sprintf "estimated response %.3g exceeds deadline %.3g"
          (estimated_response ()) dl
      in
      rejected.(p) <- Some reason;
      finished_at.(p) <- !time;
      emit (Printf.sprintf "%s rejected (%s)" (jname p) reason)
    | _ ->
      emit (jname p ^ " arrives");
      start_ready p
  in
  (* counts.(p).(r): running tasks of job p demanding r — the
     within-job sharing degree, exactly run_clean's [count] *)
  let counts = Array.make_matrix nj nr 0 in
  (* factor.(p).(r): per-task slowdown [count * n_eligible]; 0. when
     job p is not eligible on r (its tasks neither drain nor propose
     next-event candidates there) *)
  let factor = Array.make_matrix nj nr 0. in
  (* contended.(r): some eligible job demands r this step *)
  let contended = Array.make nr false in
  let compute_shares () =
    Array.iter
      (fun p ->
        Array.fill counts.(p) 0 nr 0;
        Array.fill factor.(p) 0 nr 0.)
      order;
    Array.fill contended 0 nr false;
    Array.iter
      (fun p ->
        if active p then
          for id = 0 to n_stages.(p) - 1 do
            if status.(p).(id) = Running then
              Array.iter
                (fun demands ->
                  Array.iteri
                    (fun r d ->
                      if d > eps then counts.(p).(r) <- counts.(p).(r) + 1)
                    demands)
                remaining.(p).(id)
          done)
      order;
    let srw =
      match policy with
      | Shortest_remaining_work ->
        Array.map (fun p -> if active p then remaining_work p else infinity)
          (Array.init nj Fun.id)
      | _ -> [||]
    in
    for r = 0 to nr - 1 do
      (* contenders on r, in deterministic order *)
      let contenders =
        Array.to_list order
        |> List.filter (fun p -> active p && counts.(p).(r) > 0)
      in
      match contenders with
      | [] -> ()
      | _ ->
        contended.(r) <- true;
        let eligible =
          match policy with
          | Fair_share -> contenders
          | Strict_priority ->
            let best =
              List.fold_left
                (fun acc p -> max acc jobs.(p).priority)
                min_int contenders
            in
            List.filter (fun p -> jobs.(p).priority = best) contenders
          | Shortest_remaining_work ->
            let winner =
              List.fold_left
                (fun acc p ->
                  match acc with
                  | None -> Some p
                  | Some q ->
                    if
                      srw.(p) < srw.(q)
                      || (srw.(p) = srw.(q) && jobs.(p).job_id < jobs.(q).job_id)
                    then Some p
                    else acc)
                None contenders
            in
            (match winner with Some p -> [ p ] | None -> [])
        in
        let n_elig = float_of_int (List.length eligible) in
        List.iter
          (fun p -> factor.(p).(r) <- float_of_int counts.(p).(r) *. n_elig)
          eligible
    done
  in
  let all_jobs_done () =
    Array.for_all (fun p -> finished p) order
  in
  let total_stages = Array.fold_left ( + ) 0 n_stages in
  let guard = ref 0 in
  let max_events =
    (1000 * (1 + total_stages) * (1 + nr)) + (10 * nj) + (10 * n_mev)
  in
  while (not (all_jobs_done ())) && !guard < max_events do
    incr guard;
    (* machine events first: admission at this instant must see the
       capacity the events just set *)
    apply_due_events ();
    (* activate everything due at the current instant *)
    Array.iter
      (fun p ->
        if (not arrived.(p)) && jobs.(p).arrival <= !time +. 1e-12 then
          activate p)
      order;
    finish_jobs ();
    if not (all_jobs_done ()) then begin
      compute_shares ();
      (* next demand exhaustion among eligible tasks *)
      let dt = ref infinity in
      Array.iter
        (fun p ->
          if active p then
            for id = 0 to n_stages.(p) - 1 do
              if status.(p).(id) = Running then
                Array.iter
                  (fun demands ->
                    Array.iteri
                      (fun r d ->
                        if d > eps && factor.(p).(r) > 0. && speed_now.(r) > 0.
                        then
                          dt :=
                            Float.min !dt (d *. factor.(p).(r) /. speed_now.(r)))
                      demands)
                  remaining.(p).(id)
            done)
        order;
      let na = next_arrival () in
      let nb = Float.min na (next_event_instant ()) in
      if nb -. !time < !dt then begin
        (* the next event is an arrival or a machine event: drain the
           gap, then land exactly on the boundary instant *)
        let dt = nb -. !time in
        if dt > 0. then begin
          for r = 0 to nr - 1 do
            if contended.(r) then busy.(r) <- busy.(r) +. (dt *. speed_now.(r))
          done;
          Array.iter
            (fun p ->
              if active p then
                for id = 0 to n_stages.(p) - 1 do
                  if status.(p).(id) = Running then
                    Array.iteri
                      (fun ti demands ->
                        Array.iteri
                          (fun r d ->
                            if d > eps && factor.(p).(r) > 0. then begin
                              let d' =
                                d -. (dt *. speed_now.(r) /. factor.(p).(r))
                              in
                              demands.(r) <- (if d' <= eps then 0. else d');
                              if
                                d' <= eps
                                && Array.for_all (fun x -> x <= eps) demands
                              then
                                emit
                                  (Printf.sprintf "task %s done"
                                     labels.(p).(id).(ti))
                            end)
                          demands)
                      remaining.(p).(id)
                done)
            order
        end;
        time := nb;
        Array.iter
          (fun p ->
            if active p then
              Array.iteri
                (fun id s ->
                  ignore s;
                  if status.(p).(id) = Running && stage_done p id then
                    complete p id)
                jobs.(p).graph.Task_graph.stages)
          order;
        finish_jobs ()
      end
      else if !dt = infinity then begin
        (* running stages but no drainable demand: finish them (a stage
           whose tasks all carry zero work, as in run_clean).  If nothing
           completes here — demand parked on zero-speed resources with no
           arrival and no machine event left to restore them — the
           workload is starved: raise rather than spin to the guard. *)
        let progressed = ref false in
        Array.iter
          (fun p ->
            if active p then
              Array.iteri
                (fun id s ->
                  ignore s;
                  if status.(p).(id) = Running && stage_done p id then begin
                    complete p id;
                    progressed := true
                  end)
                jobs.(p).graph.Task_graph.stages)
          order;
        finish_jobs ();
        if (not !progressed) && not (all_jobs_done ()) then
          Parqo_error.fail ~subsystem:"scheduler"
            "starved: remaining demand on zero-capacity resources with no \
             future machine event"
      end
      else begin
        let dt = !dt in
        time := !time +. dt;
        for r = 0 to nr - 1 do
          if contended.(r) then busy.(r) <- busy.(r) +. (dt *. speed_now.(r))
        done;
        Array.iter
          (fun p ->
            if active p then
              for id = 0 to n_stages.(p) - 1 do
                if status.(p).(id) = Running then
                  Array.iteri
                    (fun ti demands ->
                      Array.iteri
                        (fun r d ->
                          if d > eps && factor.(p).(r) > 0. then begin
                            let d' =
                              d -. (dt *. speed_now.(r) /. factor.(p).(r))
                            in
                            demands.(r) <- (if d' <= eps then 0. else d');
                            if
                              d' <= eps
                              && Array.for_all (fun x -> x <= eps) demands
                            then
                              emit
                                (Printf.sprintf "task %s done"
                                   labels.(p).(id).(ti))
                          end)
                        demands)
                    remaining.(p).(id)
              done)
          order;
        Array.iter
          (fun p ->
            if active p then
              Array.iteri
                (fun id s ->
                  ignore s;
                  if status.(p).(id) = Running && stage_done p id then
                    complete p id)
                jobs.(p).graph.Task_graph.stages)
          order;
        finish_jobs ()
      end
    end
  done;
  if not (all_jobs_done ()) then
    Parqo_error.fail ~subsystem:"scheduler" "did not converge";
  let by_id = Array.copy order in
  Array.sort (fun a b -> compare jobs.(a).job_id jobs.(b).job_id) by_id;
  let job_outcomes =
    Array.map
      (fun p ->
        {
          job_id = jobs.(p).job_id;
          label = jobs.(p).label;
          arrival = jobs.(p).arrival;
          started = jobs.(p).arrival;
          finished = finished_at.(p);
          response = finished_at.(p) -. jobs.(p).arrival;
          work = Task_graph.total_work jobs.(p).graph;
          disposition =
            (match rejected.(p) with
            | None -> Completed
            | Some reason -> Rejected reason);
          stage_start = List.rev stage_start.(p);
          stage_finish = List.rev stage_finish.(p);
        })
      by_id
  in
  {
    policy;
    jobs = job_outcomes;
    makespan = !time;
    busy;
    total_work =
      (* shed jobs never ran: their offered work is not part of the
         delivered total, keeping busy conservation exact *)
      Array.fold_left
        (fun acc p ->
          match rejected.(p) with
          | Some _ -> acc
          | None -> acc +. Task_graph.total_work jobs.(p).graph)
        0. order;
    trace = List.rev !trace;
  }
