(** Workload co-scheduling: many task graphs sharing one machine.

    The single-query simulator ({!Simulator}) prices one plan against an
    idle machine; this module runs a {e workload} — jobs with arrival
    instants drawn from a {!Workload.arrival} process — through the same
    processor-sharing event loop, under a scheduling policy, and reports
    per-query response times plus workload-level statistics.  That makes
    the work-bound dual of the paper's §2 measurable: under contention,
    response time is governed by total work, so low-work plans beat
    solo-optimal (low-response-time) plans — see {!expected_pressure}
    and [Optimizer.minimize_under_contention].

    Model: per resource and instant, the policy selects the {e eligible}
    jobs among those demanding the resource; eligible jobs split its
    unit capacity evenly, and within a job the share splits evenly over
    its demanding tasks (the single-query simulator's processor
    sharing).  Ineligible jobs are preempted on that resource.  With one
    job every policy degenerates to {!Simulator.run}, bit-identically
    (Int64-bit float equality) — the per-task slowdown factor is
    [count * n_eligible] and multiplication by [1.0] is IEEE-exact.
    On every demanded resource the eligible class drains exactly at
    capacity, so per-resource busy time equals delivered work (busy
    conservation) and utilization never exceeds 1. *)

type policy =
  | Fair_share
      (** processor sharing across all jobs demanding the resource *)
  | Strict_priority
      (** only the highest-priority demanding class runs (larger
          {!job.priority} wins); the class shares the resource evenly *)
  | Shortest_remaining_work
      (** the single demanding job with the least total remaining work
          (ties by lowest [job_id]) owns the resource — SRPT lifted to
          multi-resource DAGs *)

val policy_to_string : policy -> string
(** ["fair"] / ["priority"] / ["srw"]. *)

val policy_of_string : string -> (policy, string) result
(** Accepts the names above plus common aliases ([fair-share], [ps],
    [strict-priority], [srpt], [shortest-remaining-work]); the error
    lists valid names. *)

val all_policies : policy list

type job = {
  job_id : int;  (** unique within the workload *)
  label : string;  (** for traces; [""] shows as [q<id>] *)
  arrival : float;  (** time units from workload start; finite, >= 0 *)
  priority : int;  (** larger = more urgent; only [Strict_priority] reads it *)
  deadline : float option;
      (** response-time budget from arrival, finite and positive; [None]
          admits unconditionally.  At the arrival instant the scheduler
          estimates the job's response as (active backlog + its own
          work) / total effective speed and sheds the job ([Rejected])
          when the estimate exceeds the budget. *)
  graph : Task_graph.t;
}

val job :
  ?label:string -> ?priority:int -> ?arrival:float -> ?deadline:float ->
  job_id:int -> Task_graph.t -> job
(** [label] defaults to [""], [priority] to [0], [arrival] to [0.],
    [deadline] to [None]. *)

type event = { at : float; what : string }

type machine_event = { ev_at : float; ev_resource : int; ev_speed : float }
(** The machine changing under the workload: from instant [ev_at] on,
    resource [ev_resource] delivers capacity [ev_speed] (absolute, not a
    delta; [1.] is nominal, [0.] an outage, values in between a
    brownout, above [1.] a speed-up).  Same-instant events on one
    resource apply in list order — the last one wins.  An event that
    leaves a resource at its current speed is a no-op and is dropped, so
    an all-nominal ([1.0]) event list is bit-identical to no events at
    all. *)

type disposition =
  | Completed
  | Rejected of string
      (** shed at admission; the string says why (estimate vs deadline) *)

type job_outcome = {
  job_id : int;
  label : string;
  arrival : float;
  started : float;  (** instant the job was admitted (its arrival) *)
  finished : float;  (** instant its last stage completed *)
  response : float;  (** [finished - arrival]; [0.] for a rejected job *)
  work : float;  (** total work of its task graph (offered, even if shed) *)
  disposition : disposition;
  stage_start : (int * float) list;  (** empty for a rejected job *)
  stage_finish : (int * float) list;
}

type outcome = {
  policy : policy;
  jobs : job_outcome array;  (** ascending [job_id] *)
  makespan : float;  (** workload start to last completion *)
  busy : float array;
      (** per-resource busy time in delivered-work units: a contended
          resource accrues [dt * speed], so busy conservation holds
          against effective capacity *)
  total_work : float;  (** sum over admitted (non-rejected) jobs *)
  trace : event list;
}

type summary = {
  n_jobs : int;
  n_rejected : int;  (** jobs shed by admission control *)
  makespan : float;
  utilization : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** response-time quantiles over completed jobs *)
  max : float;
}

val run : ?policy:policy -> ?events:machine_event list -> job array -> outcome
(** Co-schedule the jobs.  [policy] defaults to [Fair_share]; [events]
    (default none) is the timed machine-event list — per-resource speeds
    are piecewise-constant, starting at [1.] and switching at each
    event's instant.  Tasks drain a resource at [speed / factor] and a
    speed-0 window parks demand until capacity returns.  With no events
    and no deadlines the run is bit-identical (Int64-bit float equality)
    to the fixed-capacity scheduler — all speeds are [1.0] and
    multiplication/division by [1.0] is IEEE-exact.

    Raises {!Parqo_util.Parqo_error.Error} (subsystem ["scheduler"]) on
    an empty workload, duplicate job ids, resource-dimension mismatches,
    invalid arrivals, deadlines, or machine events, graphs rejected by
    {!Task_graph.validate}, or a starved workload (demand left on
    zero-capacity resources with no future machine event); never raises
    on a valid, non-starved workload. *)

val summarize : outcome -> summary

val utilization : outcome -> float
(** [total_work / (makespan * n_resources)]; [1.] for an empty span. *)

val effective_speeds : Parqo_machine.Machine.t -> float array
(** Per-resource speed of the machine, indexed by resource id — the
    [?speeds] argument {!expected_pressure} wants for a degraded or
    heterogeneous machine. *)

val expected_pressure :
  ?horizon:float -> ?speeds:float array -> n_resources:int ->
  job array -> float array
(** The contention signal: per-resource offered load of the active set —
    total demanded work on each resource divided by [horizon].  The
    default horizon is the arrival span plus the mean job's solo drain
    time (the window over which that work lands on the machine), so a
    burst of [k] unit jobs yields pressure ~[k ×] each job's per-resource
    share.  [speeds] (length [n_resources]) rescales each resource's
    pressure by its effective capacity — a half-speed resource is twice
    as loaded by the same work, and a zero-speed resource with offered
    work reads [infinity]; omitted, capacity is nominal and the result
    is bit-identical to the pre-speed signal.  Feed it to
    [Metric.contention_rank] / [Optimizer.minimize_under_contention] to
    re-rank plans for a loaded machine.  Raises [Invalid_argument] on a
    non-positive [horizon] or a mis-sized [speeds]. *)
