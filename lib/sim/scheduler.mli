(** Workload co-scheduling: many task graphs sharing one machine.

    The single-query simulator ({!Simulator}) prices one plan against an
    idle machine; this module runs a {e workload} — jobs with arrival
    instants drawn from a {!Workload.arrival} process — through the same
    processor-sharing event loop, under a scheduling policy, and reports
    per-query response times plus workload-level statistics.  That makes
    the work-bound dual of the paper's §2 measurable: under contention,
    response time is governed by total work, so low-work plans beat
    solo-optimal (low-response-time) plans — see {!expected_pressure}
    and [Optimizer.minimize_under_contention].

    Model: per resource and instant, the policy selects the {e eligible}
    jobs among those demanding the resource; eligible jobs split its
    unit capacity evenly, and within a job the share splits evenly over
    its demanding tasks (the single-query simulator's processor
    sharing).  Ineligible jobs are preempted on that resource.  With one
    job every policy degenerates to {!Simulator.run}, bit-identically
    (Int64-bit float equality) — the per-task slowdown factor is
    [count * n_eligible] and multiplication by [1.0] is IEEE-exact.
    On every demanded resource the eligible class drains exactly at
    capacity, so per-resource busy time equals delivered work (busy
    conservation) and utilization never exceeds 1. *)

type policy =
  | Fair_share
      (** processor sharing across all jobs demanding the resource *)
  | Strict_priority
      (** only the highest-priority demanding class runs (larger
          {!job.priority} wins); the class shares the resource evenly *)
  | Shortest_remaining_work
      (** the single demanding job with the least total remaining work
          (ties by lowest [job_id]) owns the resource — SRPT lifted to
          multi-resource DAGs *)

val policy_to_string : policy -> string
(** ["fair"] / ["priority"] / ["srw"]. *)

val policy_of_string : string -> (policy, string) result
(** Accepts the names above plus common aliases ([fair-share], [ps],
    [strict-priority], [srpt], [shortest-remaining-work]); the error
    lists valid names. *)

val all_policies : policy list

type job = {
  job_id : int;  (** unique within the workload *)
  label : string;  (** for traces; [""] shows as [q<id>] *)
  arrival : float;  (** time units from workload start; finite, >= 0 *)
  priority : int;  (** larger = more urgent; only [Strict_priority] reads it *)
  graph : Task_graph.t;
}

val job :
  ?label:string -> ?priority:int -> ?arrival:float -> job_id:int ->
  Task_graph.t -> job
(** [label] defaults to [""], [priority] to [0], [arrival] to [0.]. *)

type event = { at : float; what : string }

type job_outcome = {
  job_id : int;
  label : string;
  arrival : float;
  started : float;  (** instant the job was admitted (its arrival) *)
  finished : float;  (** instant its last stage completed *)
  response : float;  (** [finished - arrival] *)
  work : float;  (** total work of its task graph *)
  stage_start : (int * float) list;
  stage_finish : (int * float) list;
}

type outcome = {
  policy : policy;
  jobs : job_outcome array;  (** ascending [job_id] *)
  makespan : float;  (** workload start to last completion *)
  busy : float array;  (** per-resource busy time *)
  total_work : float;  (** sum over jobs *)
  trace : event list;
}

type summary = {
  n_jobs : int;
  makespan : float;
  utilization : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** response-time quantiles over all jobs *)
  max : float;
}

val run : ?policy:policy -> job array -> outcome
(** Co-schedule the jobs.  [policy] defaults to [Fair_share].  Raises
    {!Parqo_util.Parqo_error.Error} (subsystem ["scheduler"]) on an
    empty workload, duplicate job ids, resource-dimension mismatches,
    invalid arrivals, or graphs rejected by {!Task_graph.validate};
    never raises on a valid workload. *)

val summarize : outcome -> summary

val utilization : outcome -> float
(** [total_work / (makespan * n_resources)]; [1.] for an empty span. *)

val expected_pressure : ?horizon:float -> n_resources:int -> job array -> float array
(** The contention signal: per-resource offered load of the active set —
    total demanded work on each resource divided by [horizon].  The
    default horizon is the arrival span plus the mean job's solo drain
    time (the window over which that work lands on the machine), so a
    burst of [k] unit jobs yields pressure ~[k ×] each job's per-resource
    share.  Feed it to [Metric.contention_rank] /
    [Optimizer.minimize_under_contention] to re-rank plans for a loaded
    machine.  Raises [Invalid_argument] on a non-positive [horizon]. *)
