(** Deterministic, seed-driven fault injection for the execution
    simulator.

    Three fault kinds, mirroring the failure modes a shared-nothing
    machine actually exhibits:

    - {e fail-stop task faults}: a task attempt dies after completing a
      random fraction of its work; the lost work must be re-executed
      under a {!Recovery.policy};
    - {e stragglers}: an attempt runs with all demands inflated by a
      slowdown factor (a slow disk, a contended node);
    - {e resource outages}: a whole resource loses (factor [0.]) or
      degrades — {e browns out} — (factor in [(0,1)]) its capacity over a
      time window — an injection {e schedule}, fixed before the run;
    - {e scale-out}: a new resource joins the machine at a given time
      ({!grow}) — the recovery dual of an outage.  Grown resources extend
      the resource-vector dimension; they deliver nothing before their
      onset and nominal capacity after it (their static speed is folded
      into demand vectors when a replanned graph is lowered on the grown
      machine).

    Every random decision is a pure function of [(seed, stage, task,
    attempt)] via {!Parqo_util.Rng}, so the injected fault sequence is
    independent of simulator event ordering: the same seed and config
    reproduce the same faults, retries and makespan bit-for-bit. *)

type kind = Task_failure | Straggler | Resource_outage | Scale_out

val kind_name : kind -> string

type outage = {
  resource : int;
  at : float;  (** onset time *)
  duration : float;
  factor : float;  (** remaining capacity in [0,1]; [0.] = full loss *)
}

type grow = {
  g_at : float;  (** time the new resource comes online *)
  g_kind : Parqo_machine.Resource.kind;
  g_node : int;  (** hosting site; [-1] for an interconnect *)
  g_speed : float;  (** static relative speed of the new resource, > 0 *)
}

type config = {
  seed : int;
  task_fail_rate : float;  (** per-attempt fail-stop probability, [0,1) *)
  max_fail_attempts : int;
      (** attempts beyond this never fail — bounds re-execution and
          guarantees simulation termination *)
  straggler_rate : float;  (** per-attempt straggler probability *)
  straggler_factor : float;  (** demand inflation for straggler attempts, >= 1 *)
  outages : outage list;  (** the resource-loss injection schedule *)
  grows : grow list;  (** the scale-out schedule *)
}

val none : config
(** All rates zero, no outages: {!is_active} is [false]. *)

val default : ?seed:int -> ?straggler:bool -> fault_rate:float -> unit -> config
(** Fail-stop rate [fault_rate] with up to 8 failing attempts per task;
    when [straggler] (default [false]), also stragglers at half that
    rate with a 4x slowdown.  [seed] defaults to 0. *)

val brownout :
  resource:int -> at:float -> duration:float -> factor:float -> outage
(** An {!outage} that throttles rather than kills: raises
    [Invalid_argument] unless [factor] is strictly inside [(0, 1)]. *)

val is_active : config -> bool
(** Whether the config can inject anything at all. *)

val validate : config -> (unit, string) result
(** Rates in range, factor sanity, outage times non-negative. *)

type draw = {
  fails : bool;
  fail_point : float;
      (** fraction of the attempt's work completed when it dies, in
          [(0.05, 0.95)]; meaningful only when [fails] *)
  slowdown : float;  (** [1.] or [straggler_factor] *)
}

val draw : config -> stage:int -> task:int -> attempt:int -> draw
(** The fault decision for one task attempt (attempts count from 1).
    Pure: equal arguments give equal draws. *)

val random_outages :
  Parqo_util.Rng.t ->
  n_resources:int ->
  horizon:float ->
  rate:float ->
  mean_duration:float ->
  outage list
(** A Poisson-ish schedule: each resource suffers full-loss outages at
    exponential inter-arrival times of mean [horizon /. rate] within
    [[0, horizon)], each lasting an exponential [mean_duration]. *)

val random_rescales :
  Parqo_util.Rng.t ->
  n_resources:int ->
  horizon:float ->
  rate:float ->
  mean_duration:float ->
  factor:float ->
  outage list
(** Like {!random_outages} but the windows are brownouts at the given
    remaining-capacity [factor] (strictly inside [(0, 1)]). *)

val capacity : config -> time:float -> resource:int -> float
(** Available capacity of [resource] at [time]: the product of the
    factors of all outages covering [time] (clamped to [0]). [1.] when
    no outage applies. *)

val next_capacity_change : config -> after:float -> float option
(** The earliest outage onset or expiry — or grow onset — strictly later
    than [after]: the simulator's piecewise-constant capacity
    boundaries. *)

val pp : Format.formatter -> config -> unit
