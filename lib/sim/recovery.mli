(** Recovery policies: what re-executes after an injected fault.

    The paper's composition annotation is read as a {e checkpoint}
    choice: a [Materialized] edge persists its producer's output, so a
    failure in the consuming pipeline never has to reach past it; a
    [Pipelined] edge keeps data in flight, so losing any operator of the
    pipeline can lose the whole segment.  In the lowered
    {!Task_graph.t}, a stage {e is} a maximal pipeline and stage
    dependencies {e are} the materialized (sync) edges, which makes the
    policies exact:

    - [Retry_task]: only the failed task restarts, after a capped
      exponential backoff — the optimistic policy, assuming in-pipeline
      channels can replay their streams;
    - [Restart_stage]: the failed task's whole stage (the pipelined
      segment) re-executes from its materialized inputs — in-flight
      pipeline state is lost, checkpoints hold;
    - [Restart_from_sync]: as [Restart_stage], and additionally a full
      resource loss (outage factor [0.]) destroys checkpoints resident
      on that resource: completed stages with demands there re-execute,
      cascading through any dependents already running — recomputation
      reaches back to the nearest {e surviving} sync point;
    - [Replan]: as [Restart_from_sync], but when recovery crosses a
      sync point (checkpoint loss, or cumulative rework exceeding
      [threshold] × the plan's base work), the simulator asks a
      re-planner for a new task graph over the {e residual} query —
      surviving checkpoints become base relations, the degraded machine
      is re-consulted — and splices it in.  Without a re-planner
      callback (plain {!Simulator.run}), [Replan] degrades to
      [Restart_from_sync] exactly. *)

type policy =
  | Retry_task of { backoff : float; backoff_cap : float }
      (** delay before attempt [n+1] is [min backoff_cap (backoff *.
          2^(n-1))] *)
  | Restart_stage
  | Restart_from_sync
  | Replan of {
      threshold : float;
          (** re-plan when cumulative rework exceeds this fraction of
              the current graph's base work (with at least one
              checkpointed stage to anchor the residual);
              [infinity] restricts re-planning to checkpoint loss *)
      max_expansions : int option;
          (** search budget for each re-optimization *)
      max_seconds : float option;  (** wall-clock budget, if any *)
    }

val default : policy
(** [Restart_stage] — pipelines hold no internal checkpoint. *)

val retry_task : ?backoff:float -> ?backoff_cap:float -> unit -> policy
(** [backoff] defaults to [1.], [backoff_cap] to [64.]. *)

val replan :
  ?threshold:float ->
  ?max_expansions:int option ->
  ?max_seconds:float ->
  unit ->
  policy
(** [threshold] defaults to [0.5] (clamped to [>= 0.]),
    [max_expansions] to [Some 50_000], [max_seconds] to [None]. *)

val valid_names : string list
(** The canonical policy names accepted by {!of_string}. *)

val backoff_delay : policy -> attempt:int -> float
(** Delay charged before re-running a task that just failed its
    [attempt]-th attempt; [0.] for the restart policies. *)

val to_string : policy -> string

val of_string : string -> (policy, string) result
(** Accepts ["retry"], ["stage"], ["sync"], ["replan"] (and the
    [to_string] renderings); the error message lists the valid names. *)
