module Parqo_error = Parqo_util.Parqo_error

type mode = Concurrent | Serialized

type event = { at : float; what : string }

type fault_event = {
  f_at : float;
  f_kind : Fault.kind;
  f_stage : int option;
  f_task : string option;
  f_resource : int option;
  f_attempt : int;
}

type replan_trigger =
  | Checkpoint_loss of { resource : int }
  | Work_inflation of { ratio : float }
  | Slowdown of { resource : int; factor : float }
  | Scale_out of { n_new : int }

type replan_event = {
  rp_at : float;
  rp_trigger : replan_trigger;
  rp_plan : string;
  rp_info : string;
}

type snapshot = {
  s_at : float;
  s_trigger : replan_trigger;
  s_graph : Task_graph.t;
  s_survivors : int list;
}

type replan = { new_graph : Task_graph.t; plan_key : string; info : string }
type replanner = snapshot -> replan option

type outcome = {
  makespan : float;
  busy : float array;
  total_work : float;
  stage_start : (int * float) list;
  stage_finish : (int * float) list;
  trace : event list;
  n_faults : int;
  n_retries : int;
  n_replans : int;
  replans : replan_event list;
  faults : fault_event list;
}

type stage_status = Pending | Running | Done

let trigger_to_string = function
  | Checkpoint_loss { resource } ->
    Printf.sprintf "checkpoint loss (resource %d)" resource
  | Work_inflation { ratio } -> Printf.sprintf "work inflation x%.2f" ratio
  | Slowdown { resource; factor } ->
    Printf.sprintf "slowdown (resource %d at x%.2f)" resource factor
  | Scale_out { n_new } ->
    Printf.sprintf "scale-out (%d new resource%s)" n_new
      (if n_new = 1 then "" else "s")

(* at most this many splices per run, even if the replanner keeps
   volunteering — a backstop against pathological callbacks *)
let max_replans_hard = 32

let eps = 1e-9

(* ------------------------------------------------------------------ *)
(* failure-free paths — the original simulator, bit-identical          *)

let run_clean ~mode (g : Task_graph.t) =
  let n_stages = Array.length g.Task_graph.stages in
  let nr = g.Task_graph.n_resources in
  match mode with
  | Serialized ->
    (* topological order, then run every task to completion alone *)
    let status = Array.make n_stages false in
    let order = ref [] in
    let rec visit id =
      if not status.(id) then begin
        status.(id) <- true;
        List.iter visit g.Task_graph.stages.(id).Task_graph.deps;
        order := id :: !order
      end
    in
    for id = 0 to n_stages - 1 do
      visit id
    done;
    let order = List.rev !order in
    let busy = Array.make nr 0. in
    let time = ref 0. in
    let trace = ref [] in
    let stage_finish = ref [] in
    let stage_start = ref [] in
    List.iter
      (fun id ->
        let stage = g.Task_graph.stages.(id) in
        stage_start := (id, !time) :: !stage_start;
        List.iter
          (fun (t : Task_graph.task) ->
            let w = Array.fold_left ( +. ) 0. t.Task_graph.demands in
            Array.iteri
              (fun r d -> busy.(r) <- busy.(r) +. d)
              t.Task_graph.demands;
            time := !time +. w;
            trace :=
              { at = !time; what = Printf.sprintf "task %s done" t.Task_graph.label }
              :: !trace)
          stage.Task_graph.tasks;
        stage_finish := (id, !time) :: !stage_finish)
      order;
    {
      makespan = !time;
      busy;
      total_work = Task_graph.total_work g;
      stage_start = List.rev !stage_start;
      stage_finish = List.rev !stage_finish;
      trace = List.rev !trace;
      n_faults = 0;
      n_retries = 0;
      n_replans = 0;
      replans = [];
      faults = [];
    }
  | Concurrent ->
    let status = Array.make n_stages Pending in
    let remaining_deps =
      Array.map (fun s -> ref (List.length s.Task_graph.deps)) g.Task_graph.stages
    in
    let dependents = Array.make n_stages [] in
    Array.iter
      (fun (s : Task_graph.stage) ->
        List.iter
          (fun d ->
            dependents.(d) <- s.Task_graph.stage_id :: dependents.(d))
          s.Task_graph.deps)
      g.Task_graph.stages;
    (* remaining work per task, keyed by (stage, index) *)
    let remaining =
      Array.map
        (fun (s : Task_graph.stage) ->
          Array.of_list
            (List.map
               (fun (t : Task_graph.task) -> Array.copy t.Task_graph.demands)
               s.Task_graph.tasks))
        g.Task_graph.stages
    in
    let labels =
      Array.map
        (fun (s : Task_graph.stage) ->
          Array.of_list
            (List.map (fun (t : Task_graph.task) -> t.Task_graph.label) s.Task_graph.tasks))
        g.Task_graph.stages
    in
    let busy = Array.make nr 0. in
    let time = ref 0. in
    let trace = ref [] in
    let stage_start = ref [] in
    let stage_finish = ref [] in
    let emit what = trace := { at = !time; what } :: !trace in
    let stage_done id =
      Array.for_all
        (fun demands -> Array.for_all (fun d -> d <= eps) demands)
        remaining.(id)
    in
    let rec start_ready () =
      Array.iteri
        (fun id s ->
          if status.(id) = Pending && !(remaining_deps.(id)) = 0 then begin
            status.(id) <- Running;
            stage_start := (id, !time) :: !stage_start;
            emit (Printf.sprintf "stage %d start" id);
            (* a stage with no work completes immediately *)
            if stage_done id then complete id
          end;
          ignore s)
        g.Task_graph.stages
    and complete id =
      status.(id) <- Done;
      stage_finish := (id, !time) :: !stage_finish;
      emit (Printf.sprintf "stage %d done" id);
      List.iter
        (fun dep -> decr remaining_deps.(dep))
        dependents.(id);
      start_ready ()
    in
    start_ready ();
    let all_done () = Array.for_all (fun s -> s = Done) status in
    let guard = ref 0 in
    let max_events = 1000 * (1 + n_stages) * (1 + nr) in
    while (not (all_done ())) && !guard < max_events do
      incr guard;
      (* demand counts per resource over running tasks *)
      let count = Array.make nr 0 in
      for id = 0 to n_stages - 1 do
        if status.(id) = Running then
          Array.iter
            (fun demands ->
              Array.iteri
                (fun r d -> if d > eps then count.(r) <- count.(r) + 1)
                demands)
            remaining.(id)
      done;
      (* time to next demand exhaustion *)
      let dt = ref infinity in
      for id = 0 to n_stages - 1 do
        if status.(id) = Running then
          Array.iter
            (fun demands ->
              Array.iteri
                (fun r d ->
                  if d > eps then
                    dt := Float.min !dt (d *. float_of_int count.(r)))
                demands)
            remaining.(id)
      done;
      if !dt = infinity then
        (* running stages but no demand: finish them *)
        Array.iteri
          (fun id s ->
            ignore s;
            if status.(id) = Running && stage_done id then complete id)
          g.Task_graph.stages
      else begin
        let dt = !dt in
        time := !time +. dt;
        for r = 0 to nr - 1 do
          if count.(r) > 0 then busy.(r) <- busy.(r) +. dt
        done;
        (* advance all running demands *)
        for id = 0 to n_stages - 1 do
          if status.(id) = Running then
            Array.iteri
              (fun ti demands ->
                Array.iteri
                  (fun r d ->
                    if d > eps then begin
                      let d' = d -. (dt /. float_of_int count.(r)) in
                      demands.(r) <- (if d' <= eps then 0. else d');
                      if d' <= eps && Array.for_all (fun x -> x <= eps) demands
                      then
                        emit
                          (Printf.sprintf "task %s done" labels.(id).(ti))
                    end)
                  demands)
              remaining.(id)
        done;
        (* completions *)
        Array.iteri
          (fun id s ->
            ignore s;
            if status.(id) = Running && stage_done id then complete id)
          g.Task_graph.stages
      end
    done;
    if not (all_done ()) then
      Parqo_error.fail ~subsystem:"simulator" "did not converge";
    {
      makespan = !time;
      busy;
      total_work = Task_graph.total_work g;
      stage_start = List.rev !stage_start;
      stage_finish = List.rev !stage_finish;
      trace = List.rev !trace;
      n_faults = 0;
      n_retries = 0;
      n_replans = 0;
      replans = [];
      faults = [];
    }

(* ------------------------------------------------------------------ *)
(* fault-injected concurrent path                                      *)

(* The faulty concurrent path runs as a sequence of {e segments}: one
   task graph simulated until it either completes or — under the
   [Replan] policy, with a [replanner] callback — a fault crosses a
   sync point and a new graph for the residual query is spliced in.
   The clock, per-resource busy times, traces, fault logs and outage
   boundary bookkeeping carry across segments; task/stage state is
   per-segment.  When no splice happens the control flow and float
   operations are exactly the single-graph simulator's, so every other
   policy — and [Replan] when it never triggers — is bit-identical to
   it. *)
let run_faulty_concurrent ?replanner (g0 : Task_graph.t) (fc : Fault.config)
    policy =
  let nr = g0.Task_graph.n_resources in
  let is_replan, replan_threshold =
    match policy with
    | Recovery.Replan { threshold; _ } -> (true, threshold)
    | _ -> (false, infinity)
  in
  (* scale-out events, in onset order: each appends one resource-vector
     dimension beyond the initial graph's [nr].  A grown dimension
     delivers no capacity before its onset and nominal capacity after —
     its static speed is already folded into the demands of any graph
     lowered on the grown machine. *)
  let grows =
    Array.of_list
      (List.stable_sort
         (fun (a : Fault.grow) b -> Float.compare a.Fault.g_at b.Fault.g_at)
         fc.Fault.grows)
  in
  let n_grows = Array.length grows in
  let nr_total = nr + n_grows in
  let grow_seen = Array.make n_grows false in
  (* dimension of the current machine: [nr] plus processed grows — what
     a spliced graph must be lowered against *)
  let live_dims = ref nr in
  (* state shared across segments *)
  let busy = Array.make nr_total 0. in
  let time = ref 0. in
  let trace = ref [] in
  let faults_log = ref [] in
  let n_faults = ref 0 in
  let n_retries = ref 0 in
  let n_replans = ref 0 in
  let replans_log = ref [] in
  let total_base = ref (Task_graph.total_work g0) in
  let outages = Array.of_list fc.Fault.outages in
  let onset_seen = Array.make (Array.length outages) false in
  let expiry_seen = Array.make (Array.length outages) false in
  let emit what = trace := { at = !time; what } :: !trace in
  let log_fault f_kind ?stage ?task ?resource f_attempt =
    incr n_faults;
    faults_log :=
      {
        f_at = !time;
        f_kind;
        f_stage = stage;
        f_task = task;
        f_resource = resource;
        f_attempt;
      }
      :: !faults_log
  in
  let total_of = Array.fold_left ( +. ) 0. in
  let exception Splice of Task_graph.t in
  (* one segment; body shared verbatim with the pre-replan simulator *)
  let run_segment (g : Task_graph.t) =
  let n_stages = Array.length g.Task_graph.stages in
  let nr_seg = g.Task_graph.n_resources in
  let base =
    Array.map
      (fun (s : Task_graph.stage) ->
        Array.of_list
          (List.map (fun (t : Task_graph.task) -> t.Task_graph.demands)
             s.Task_graph.tasks))
      g.Task_graph.stages
  in
  let labels =
    Array.map
      (fun (s : Task_graph.stage) ->
        Array.of_list
          (List.map (fun (t : Task_graph.task) -> t.Task_graph.label)
             s.Task_graph.tasks))
      g.Task_graph.stages
  in
  let task_ids =
    Array.map
      (fun (s : Task_graph.stage) ->
        Array.of_list
          (List.map (fun (t : Task_graph.task) -> t.Task_graph.task_id)
             s.Task_graph.tasks))
      g.Task_graph.stages
  in
  (* a fixed absolute epsilon breaks down when demands dwarf float
     precision: at 1e11 units of work one ulp is ~1e-5, so a 1e-9
     done/failure tolerance can never be met and the event loop spins
     on sub-ulp steps until the guard trips.  Scale the tolerance to
     the segment (one part in 1e12), floored at the global [eps] so
     graphs of ordinary magnitude behave bit-identically. *)
  let eps_w = Float.max eps (1e-12 *. Task_graph.total_work g) in
  let remaining = Array.map (Array.map Array.copy) base in
  let attempt = Array.map (Array.map (fun _ -> 0)) base in
  let attempt_total = Array.map (Array.map (fun _ -> 0.)) base in
  (* work-done threshold at which the current attempt fail-stops *)
  let fail_after : float option array array =
    Array.map (Array.map (fun _ -> None)) base
  in
  let suspended_until = Array.map (Array.map (fun _ -> 0.)) base in
  let status = Array.make n_stages Pending in
  let start_t : float option array = Array.make n_stages None in
  let finish_t : float option array = Array.make n_stages None in
  (* cumulative rework this segment: straggler inflation plus work lost
     to fail-stops — feeds the [Replan] inflation trigger only *)
  let rework = ref 0. in
  let seg_base = Task_graph.total_work g in
  let stage_base_work id =
    List.fold_left
      (fun acc (t : Task_graph.task) -> acc +. total_of t.Task_graph.demands)
      0. g.Task_graph.stages.(id).Task_graph.tasks
  in
  let try_replan s_trigger ~survivors =
    match replanner with
    | Some rp when !n_replans < max_replans_hard -> (
      match
        rp { s_at = !time; s_trigger; s_graph = g; s_survivors = survivors }
      with
      | Some { new_graph; plan_key; info } ->
        incr n_replans;
        replans_log :=
          {
            rp_at = !time;
            rp_trigger = s_trigger;
            rp_plan = plan_key;
            rp_info = info;
          }
          :: !replans_log;
        emit
          (Printf.sprintf "replan %d after %s -> %s" !n_replans
             (trigger_to_string s_trigger) plan_key);
        (* keep only the surviving checkpoints' work in the useful-work
           total; the residual graph replaces the rest *)
        let survived =
          List.fold_left (fun acc id -> acc +. stage_base_work id) 0. survivors
        in
        total_base :=
          !total_base
          -. (Task_graph.total_work g -. survived)
          +. Task_graph.total_work new_graph;
        raise (Splice new_graph)
      | None -> ())
    | _ -> ()
  in
  let start_attempt sid ti =
    let a = attempt.(sid).(ti) + 1 in
    attempt.(sid).(ti) <- a;
    if a > 1 then incr n_retries;
    let d = Fault.draw fc ~stage:sid ~task:task_ids.(sid).(ti) ~attempt:a in
    let dem = Array.map (fun x -> x *. d.Fault.slowdown) base.(sid).(ti) in
    remaining.(sid).(ti) <- dem;
    let tot = total_of dem in
    attempt_total.(sid).(ti) <- tot;
    let base_tot = total_of base.(sid).(ti) in
    if tot > base_tot +. eps_w then rework := !rework +. (tot -. base_tot);
    suspended_until.(sid).(ti) <- 0.;
    fail_after.(sid).(ti) <-
      (if d.Fault.fails && tot > eps_w then Some (d.Fault.fail_point *. tot)
       else None);
    if d.Fault.slowdown > 1. +. eps then begin
      log_fault Fault.Straggler ~stage:sid ~task:labels.(sid).(ti) a;
      emit
        (Printf.sprintf "task %s straggles x%.1f (attempt %d)"
           labels.(sid).(ti) d.Fault.slowdown a)
    end
  in
  let stage_done id =
    Array.for_all (fun dem -> Array.for_all (fun d -> d <= eps_w) dem) remaining.(id)
  in
  let deps_done id =
    List.for_all
      (fun d -> status.(d) = Done)
      g.Task_graph.stages.(id).Task_graph.deps
  in
  let all_done () = Array.for_all (fun s -> s = Done) status in
  let rec start_ready () =
    for id = 0 to n_stages - 1 do
      if status.(id) = Pending && deps_done id then begin
        status.(id) <- Running;
        (match start_t.(id) with
        | None ->
          start_t.(id) <- Some !time;
          emit (Printf.sprintf "stage %d start" id)
        | Some _ -> emit (Printf.sprintf "stage %d restart" id));
        Array.iteri (fun ti _ -> start_attempt id ti) base.(id);
        if stage_done id then complete id
      end
    done
  and complete id =
    status.(id) <- Done;
    finish_t.(id) <- Some !time;
    emit (Printf.sprintf "stage %d done" id);
    start_ready ()
  in
  let work_done sid ti =
    attempt_total.(sid).(ti) -. total_of remaining.(sid).(ti)
  in
  let due_failure sid ti =
    match fail_after.(sid).(ti) with
    | Some thresh -> work_done sid ti >= thresh -. eps_w
    | None -> false
  in
  let inject_due_failures () =
    let fired = ref false in
    for id = 0 to n_stages - 1 do
      Array.iteri
        (fun ti _ ->
          if status.(id) = Running && due_failure id ti then begin
            fired := true;
            let a = attempt.(id).(ti) in
            log_fault Fault.Task_failure ~stage:id ~task:labels.(id).(ti) a;
            emit
              (Printf.sprintf "task %s fault (attempt %d)" labels.(id).(ti) a);
            match policy with
            | Recovery.Retry_task _ ->
              rework := !rework +. work_done id ti;
              start_attempt id ti;
              suspended_until.(id).(ti) <-
                !time +. Recovery.backoff_delay policy ~attempt:a
            | Recovery.Restart_stage | Recovery.Restart_from_sync
            | Recovery.Replan _ ->
              Array.iteri
                (fun tj _ -> rework := !rework +. work_done id tj)
                base.(id);
              emit (Printf.sprintf "stage %d restart" id);
              Array.iteri (fun tj _ -> start_attempt id tj) base.(id)
          end)
        base.(id)
    done;
    !fired
  in
  let uses_resource sid r =
    Array.exists (fun dem -> r < Array.length dem && dem.(r) > eps_w) base.(sid)
  in
  let process_outage_boundaries () =
    Array.iteri
      (fun i (o : Fault.outage) ->
        if (not onset_seen.(i)) && o.Fault.at <= !time +. 1e-12 then begin
          onset_seen.(i) <- true;
          emit
            (Printf.sprintf "resource %d down x%.2f for %.1f" o.Fault.resource
               o.Fault.factor o.Fault.duration);
          log_fault Fault.Resource_outage ~resource:o.Fault.resource 0;
          if
            o.Fault.factor <= eps
            && (policy = Recovery.Restart_from_sync || is_replan)
          then begin
            (if is_replan then begin
               (* recovery is about to cross a sync point: offer the
                  surviving checkpoint frontier to the re-planner *)
               let destroyed = ref [] and survivors = ref [] in
               for id = n_stages - 1 downto 0 do
                 if status.(id) = Done then
                   if uses_resource id o.Fault.resource then
                     destroyed := id :: !destroyed
                   else survivors := id :: !survivors
               done;
               if !destroyed <> [] then
                 try_replan
                   (Checkpoint_loss { resource = o.Fault.resource })
                   ~survivors:!survivors
             end);
            (* full loss destroys checkpoints resident on the resource:
               completed stages there re-execute, and running consumers
               of a lost checkpoint restart with them (also the [Replan]
               fallback when the re-planner declines) *)
            for id = 0 to n_stages - 1 do
              if status.(id) = Done && uses_resource id o.Fault.resource
              then begin
                status.(id) <- Pending;
                finish_t.(id) <- None;
                emit
                  (Printf.sprintf "stage %d checkpoint lost (resource %d)" id
                     o.Fault.resource)
              end
            done;
            for id = 0 to n_stages - 1 do
              if
                status.(id) = Running
                && List.exists
                     (fun d -> status.(d) = Pending)
                     g.Task_graph.stages.(id).Task_graph.deps
              then begin
                status.(id) <- Pending;
                emit (Printf.sprintf "stage %d waits (input lost)" id)
              end
            done;
            start_ready ()
          end
          else if
            is_replan && o.Fault.factor > eps
            && o.Fault.factor < 1. -. eps
            && o.Fault.duration > eps
          then begin
            (* a brownout destroys nothing, but a re-planner may prefer
               to steer the residual work away from the slowed resource *)
            let survivors = ref [] in
            for id = n_stages - 1 downto 0 do
              if status.(id) = Done then survivors := id :: !survivors
            done;
            try_replan
              (Slowdown
                 { resource = o.Fault.resource; factor = o.Fault.factor })
              ~survivors:!survivors
          end
        end;
        if
          (not expiry_seen.(i))
          && o.Fault.at +. o.Fault.duration <= !time +. 1e-12
        then begin
          expiry_seen.(i) <- true;
          emit (Printf.sprintf "resource %d restored" o.Fault.resource)
        end)
      outages
  in
  let process_grow_boundaries () =
    let newly = ref 0 in
    Array.iteri
      (fun i (gr : Fault.grow) ->
        if (not grow_seen.(i)) && gr.Fault.g_at <= !time +. 1e-12 then begin
          grow_seen.(i) <- true;
          incr newly;
          live_dims := !live_dims + 1;
          emit
            (Printf.sprintf "resource %d joins (%s, speed %.2f)" (nr + i)
               (Parqo_machine.Resource.kind_to_string gr.Fault.g_kind)
               gr.Fault.g_speed);
          log_fault Fault.Scale_out ~resource:(nr + i) 0
        end)
      grows;
    (* new capacity is useless to the in-flight plan — only a re-planner
       can route work onto it; batch same-instant grows into one offer *)
    if !newly > 0 && is_replan then begin
      let survivors = ref [] in
      for id = n_stages - 1 downto 0 do
        if status.(id) = Done then survivors := id :: !survivors
      done;
      try_replan (Scale_out { n_new = !newly }) ~survivors:!survivors
    end
  in
  let maybe_inflation_replan () =
    if
      is_replan
      && Option.is_some replanner
      && replan_threshold < infinity
      && seg_base > eps_w
      && !rework > replan_threshold *. seg_base
    then begin
      let survivors = ref [] in
      for id = n_stages - 1 downto 0 do
        if status.(id) = Done then survivors := id :: !survivors
      done;
      (* at least one checkpoint must anchor the residual — otherwise
         the restart policies already do the best possible thing *)
      if !survivors <> [] then
        try_replan
          (Work_inflation { ratio = !rework /. seg_base })
          ~survivors:!survivors
    end
  in
  (* grows first: a replan triggered by a same-instant outage must
     already see the grown machine dimension *)
  process_grow_boundaries ();
  process_outage_boundaries ();
  start_ready ();
  let guard = ref 0 in
  let max_events =
    1000 * (1 + n_stages) * (1 + nr) * (2 + fc.Fault.max_fail_attempts)
    + (10 * Array.length outages)
    + (10 * n_grows)
  in
  let starved = ref false in
  while (not (all_done ())) && (not !starved) && !guard < max_events do
    incr guard;
    process_grow_boundaries ();
    process_outage_boundaries ();
    maybe_inflation_replan ();
    if inject_due_failures () then ()
    else begin
      (* complete exhausted stages before looking for timed events *)
      let completed = ref false in
      for id = 0 to n_stages - 1 do
        if status.(id) = Running && stage_done id then begin
          complete id;
          completed := true
        end
      done;
      if not !completed then begin
        let cap =
          Array.init nr_seg (fun r ->
              if r >= nr && not grow_seen.(r - nr) then 0.
              else Fault.capacity fc ~time:!time ~resource:r)
        in
        let active =
          Array.mapi
            (fun id tasks ->
              Array.mapi
                (fun ti dem ->
                  status.(id) = Running
                  && suspended_until.(id).(ti) <= !time +. 1e-12
                  && Array.exists (fun d -> d > eps_w) dem)
                tasks)
            remaining
        in
        let count = Array.make nr_seg 0 in
        Array.iteri
          (fun id tasks ->
            Array.iteri
              (fun ti dem ->
                if active.(id).(ti) then
                  Array.iteri
                    (fun r d -> if d > eps_w then count.(r) <- count.(r) + 1)
                    dem;
                ignore ti)
              tasks)
          remaining;
        let dt = ref infinity in
        let consider x = if x > 1e-12 && x < !dt then dt := x in
        Array.iteri
          (fun id tasks ->
            Array.iteri
              (fun ti dem ->
                if active.(id).(ti) then begin
                  Array.iteri
                    (fun r d ->
                      if d > eps_w && cap.(r) > eps then
                        consider (d *. float_of_int count.(r) /. cap.(r)))
                    dem;
                  match fail_after.(id).(ti) with
                  | Some thresh ->
                    let rate = ref 0. in
                    Array.iteri
                      (fun r d ->
                        if d > eps_w && cap.(r) > eps then
                          rate := !rate +. (cap.(r) /. float_of_int count.(r)))
                      dem;
                    if !rate > eps then
                      consider ((thresh -. work_done id ti) /. !rate)
                  | None -> ()
                end
                else if
                  status.(id) = Running
                  && suspended_until.(id).(ti) > !time +. 1e-12
                  && Array.exists (fun d -> d > eps) dem
                then consider (suspended_until.(id).(ti) -. !time))
              tasks)
          remaining;
        (match Fault.next_capacity_change fc ~after:!time with
        | Some t -> consider (t -. !time)
        | None -> ());
        if !dt = infinity then
          (* remaining demand but no possible progress and no future
             capacity change: a permanently lost resource *)
          starved := true
        else begin
          let dt = !dt in
          time := !time +. dt;
          for r = 0 to nr_seg - 1 do
            if count.(r) > 0 && cap.(r) > eps then
              busy.(r) <- busy.(r) +. (cap.(r) *. dt)
          done;
          Array.iteri
            (fun id tasks ->
              Array.iteri
                (fun ti dem ->
                  if active.(id).(ti) then begin
                    Array.iteri
                      (fun r d ->
                        if d > eps_w && cap.(r) > eps then begin
                          let d' =
                            d -. (dt *. cap.(r) /. float_of_int count.(r))
                          in
                          dem.(r) <- (if d' <= eps_w then 0. else d')
                        end)
                      dem;
                    if
                      Array.for_all (fun d -> d <= eps_w) dem
                      && not (due_failure id ti)
                    then
                      emit (Printf.sprintf "task %s done" labels.(id).(ti))
                  end)
                tasks)
            remaining
        end
      end
    end
  done;
  if !starved then
    Parqo_error.failf ~subsystem:"simulator"
      "starved at t=%.2f: demand on a permanently lost resource" !time;
  if not (all_done ()) then
    Parqo_error.fail ~subsystem:"simulator" "did not converge under faults";
  (start_t, finish_t)
  in
  let rec drive g =
    match run_segment g with
    | res -> res
    | exception Splice g' ->
      if g'.Task_graph.n_resources <> !live_dims then
        Parqo_error.fail ~subsystem:"simulator"
          "replanned graph resource-dimension mismatch";
      (match Task_graph.validate g' with
      | Ok () -> ()
      | Error msg ->
        Parqo_error.fail ~subsystem:"simulator"
          ("invalid replanned task graph: " ^ msg));
      drive g'
  in
  let start_t, finish_t = drive g0 in
  let collect arr =
    let entries = ref [] in
    Array.iteri
      (fun id t -> match t with Some t -> entries := (id, t) :: !entries | None -> ())
      arr;
    List.sort
      (fun (i1, t1) (i2, t2) ->
        match Float.compare t1 t2 with 0 -> compare i1 i2 | c -> c)
      !entries
  in
  {
    makespan = !time;
    busy;
    total_work = !total_base;
    stage_start = collect start_t;
    stage_finish = collect finish_t;
    trace = List.rev !trace;
    n_faults = !n_faults;
    n_retries = !n_retries;
    n_replans = !n_replans;
    replans = List.rev !replans_log;
    faults = List.rev !faults_log;
  }

(* ------------------------------------------------------------------ *)
(* fault-injected serialized path                                      *)

(* One task at a time; a fail-stop attempt charges the lost partial work
   and retries.  Under the restart policies the stage's already-finished
   work is replayed (charged once per fault, fault-free — the serialized
   baseline does not re-draw replayed attempts).  Resource outages do not
   apply: there is no concurrent capacity to degrade. *)
let run_faulty_serialized (g : Task_graph.t) (fc : Fault.config) policy =
  let n_stages = Array.length g.Task_graph.stages in
  let nr = g.Task_graph.n_resources in
  let visited = Array.make n_stages false in
  let order = ref [] in
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter visit g.Task_graph.stages.(id).Task_graph.deps;
      order := id :: !order
    end
  in
  for id = 0 to n_stages - 1 do
    visit id
  done;
  let order = List.rev !order in
  let busy = Array.make nr 0. in
  let time = ref 0. in
  let trace = ref [] in
  let faults_log = ref [] in
  let n_faults = ref 0 in
  let n_retries = ref 0 in
  let stage_start = ref [] in
  let stage_finish = ref [] in
  let emit what = trace := { at = !time; what } :: !trace in
  let log_fault f_kind ?stage ?task f_attempt =
    incr n_faults;
    faults_log :=
      {
        f_at = !time;
        f_kind;
        f_stage = stage;
        f_task = task;
        f_resource = None;
        f_attempt;
      }
      :: !faults_log
  in
  List.iter
    (fun id ->
      let stage = g.Task_graph.stages.(id) in
      stage_start := (id, !time) :: !stage_start;
      (* demands completed so far within this stage, for replay charges *)
      let completed = Array.make nr 0. in
      List.iter
        (fun (t : Task_graph.task) ->
          let attempt = ref 0 in
          let finished = ref false in
          while not !finished do
            incr attempt;
            if !attempt > 1 then incr n_retries;
            let d =
              Fault.draw fc ~stage:id ~task:t.Task_graph.task_id
                ~attempt:!attempt
            in
            if d.Fault.slowdown > 1. +. eps then begin
              log_fault Fault.Straggler ~stage:id ~task:t.Task_graph.label
                !attempt;
              emit
                (Printf.sprintf "task %s straggles x%.1f (attempt %d)"
                   t.Task_graph.label d.Fault.slowdown !attempt)
            end;
            let charge frac =
              Array.iteri
                (fun r dr ->
                  let x = dr *. d.Fault.slowdown *. frac in
                  busy.(r) <- busy.(r) +. x;
                  time := !time +. x)
                t.Task_graph.demands
            in
            if d.Fault.fails then begin
              charge d.Fault.fail_point;
              log_fault Fault.Task_failure ~stage:id ~task:t.Task_graph.label
                !attempt;
              emit
                (Printf.sprintf "task %s fault (attempt %d)" t.Task_graph.label
                   !attempt);
              match policy with
              | Recovery.Retry_task _ ->
                time :=
                  !time +. Recovery.backoff_delay policy ~attempt:!attempt
              | Recovery.Restart_stage | Recovery.Restart_from_sync
              | Recovery.Replan _ ->
                emit (Printf.sprintf "stage %d restart" id);
                Array.iteri
                  (fun r w ->
                    busy.(r) <- busy.(r) +. w;
                    time := !time +. w)
                  completed
            end
            else begin
              charge 1.;
              Array.iteri
                (fun r dr ->
                  completed.(r) <- completed.(r) +. (dr *. d.Fault.slowdown))
                t.Task_graph.demands;
              emit (Printf.sprintf "task %s done" t.Task_graph.label);
              finished := true
            end
          done)
        stage.Task_graph.tasks;
      stage_finish := (id, !time) :: !stage_finish)
    order;
  {
    makespan = !time;
    busy;
    total_work = Task_graph.total_work g;
    stage_start = List.rev !stage_start;
    stage_finish = List.rev !stage_finish;
    trace = List.rev !trace;
    n_faults = !n_faults;
    n_retries = !n_retries;
    n_replans = 0;
    replans = [];
    faults = List.rev !faults_log;
  }

(* ------------------------------------------------------------------ *)

let run ?(mode = Concurrent) ?faults ?(recovery = Recovery.default) ?replanner
    (g : Task_graph.t) =
  (match Task_graph.validate g with
  | Ok () -> ()
  | Error msg ->
    Parqo_error.fail ~subsystem:"simulator" ("invalid task graph: " ^ msg));
  (match faults with
  | None -> ()
  | Some fc -> (
    match Fault.validate fc with
    | Ok () -> ()
    | Error msg ->
      Parqo_error.fail ~subsystem:"simulator" ("invalid fault config: " ^ msg)));
  match faults with
  | Some fc when Fault.is_active fc -> (
    match mode with
    | Concurrent -> run_faulty_concurrent ?replanner g fc recovery
    | Serialized -> run_faulty_serialized g fc recovery)
  | _ -> run_clean ~mode g

let simulate_plan ?mode ?faults ?recovery (env : Parqo_cost.Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.Parqo_cost.Env.expand_config
      env.Parqo_cost.Env.estimator tree
  in
  run ?mode ?faults ?recovery (Task_graph.of_optree env optree)

let utilization o =
  if o.makespan <= 0. then 1.
  else o.total_work /. (o.makespan *. float_of_int (Array.length o.busy))

let timeline ?(width = 50) o =
  let span = Float.max 1e-9 o.makespan in
  let col t = int_of_float (float_of_int width *. t /. span) in
  let stage_faults id =
    List.length (List.filter (fun f -> f.f_stage = Some id) o.faults)
  in
  let rows =
    List.filter_map
      (fun (id, start) ->
        match List.assoc_opt id o.stage_finish with
        | None -> None
        | Some finish -> Some (id, start, finish))
      o.stage_start
    |> List.sort (fun (_, s1, _) (_, s2, _) -> Float.compare s1 s2)
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (id, start, finish) ->
      let s = col start and f = max (col start + 1) (col finish) in
      let bar =
        String.concat ""
          [
            String.make s ' ';
            String.make (min (width - s) (f - s)) '=';
            String.make (max 0 (width - f)) ' ';
          ]
      in
      let annot =
        match stage_faults id with
        | 0 -> ""
        | n -> Printf.sprintf "  (%d fault%s)" n (if n = 1 then "" else "s")
      in
      Buffer.add_string buf
        (Printf.sprintf "stage %-3d |%s| %.1f .. %.1f%s\n" id bar start finish
           annot))
    rows;
  List.iter
    (fun rp ->
      Buffer.add_string buf
        (Printf.sprintf "replan at %.1f after %s -> %s\n" rp.rp_at
           (trigger_to_string rp.rp_trigger) rp.rp_plan))
    o.replans;
  Buffer.contents buf
