module Rng = Parqo_util.Rng

type arrival =
  | Uniform of float
  | Poisson of float
  | Burst of { size : int; period : float }

let arrival_to_string = function
  | Uniform rate -> Printf.sprintf "uniform(%.1f qps)" rate
  | Poisson rate -> Printf.sprintf "poisson(%.1f qps)" rate
  | Burst { size; period } ->
    Printf.sprintf "burst(%d every %.2fs)" size period

let arrivals rng ~process ~n =
  if n < 0 then invalid_arg "Workloads.arrivals: n < 0";
  match process with
  | Uniform rate ->
    if rate <= 0. then invalid_arg "Workloads.arrivals: rate <= 0";
    Array.init n (fun i -> float_of_int i /. rate)
  | Poisson rate ->
    if rate <= 0. then invalid_arg "Workloads.arrivals: rate <= 0";
    let t = ref 0. in
    Array.init n (fun _ ->
        let at = !t in
        t := !t +. Rng.exponential rng ~mean:(1. /. rate);
        at)
  | Burst { size; period } ->
    if size <= 0 then invalid_arg "Workloads.arrivals: burst size <= 0";
    if period <= 0. then invalid_arg "Workloads.arrivals: period <= 0";
    Array.init n (fun i -> float_of_int (i / size) *. period)
