type policy =
  | Retry_task of { backoff : float; backoff_cap : float }
  | Restart_stage
  | Restart_from_sync
  | Replan of {
      threshold : float;
      max_expansions : int option;
      max_seconds : float option;
    }

let default = Restart_stage

let retry_task ?(backoff = 1.) ?(backoff_cap = 64.) () =
  Retry_task { backoff; backoff_cap }

let replan ?(threshold = 0.5) ?(max_expansions = Some 50_000) ?max_seconds () =
  let threshold =
    if Float.is_nan threshold then 0.5 else Float.max 0. threshold
  in
  Replan { threshold; max_expansions; max_seconds }

let backoff_delay policy ~attempt =
  match policy with
  | Restart_stage | Restart_from_sync | Replan _ -> 0.
  | Retry_task { backoff; backoff_cap } ->
    let attempt = max 1 attempt in
    Float.min backoff_cap (backoff *. Float.pow 2. (float_of_int (attempt - 1)))

let to_string = function
  | Retry_task _ -> "retry"
  | Restart_stage -> "stage"
  | Restart_from_sync -> "sync"
  | Replan _ -> "replan"

let valid_names = [ "retry"; "stage"; "sync"; "replan" ]

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "retry" | "retry-task" | "retry_task" -> Ok (retry_task ())
  | "stage" | "restart-stage" | "restart_stage" -> Ok Restart_stage
  | "sync" | "restart-from-sync" | "restart_from_sync" -> Ok Restart_from_sync
  | "replan" | "re-plan" | "adaptive" -> Ok (replan ())
  | other ->
    Error
      (Printf.sprintf "unknown recovery policy %S (expected %s)" other
         (String.concat "|" valid_names))
