(** A fluid discrete-event simulator of parallel plan execution, with
    optional fault injection and recovery.

    Resources are preemptable and time-shared (the paper's §5.2.1
    assumptions, realized as processor sharing): at any instant, each
    resource divides its unit capacity equally among the tasks of running
    stages that still demand it; a task progresses on all its resources
    concurrently and finishes when every demand is exhausted; a stage
    finishes when all its tasks do, releasing dependent stages.  The
    makespan is the simulated response time.

    [Serialized] mode executes stages and tasks one at a time — the
    sequential-execution baseline of the §5 desiderata, whose makespan is
    exactly the total work.

    With a {!Fault.config} the simulator injects fail-stop task faults,
    stragglers and resource outages from a deterministic seed-driven
    schedule, and recovers per the {!Recovery.policy}: a stage is a
    pipelined segment, its dependency edges are materialized sync points,
    so recovery re-executes the failed segment back to its nearest
    checkpoint.  Without faults (or with an inactive config) behavior is
    bit-identical to the failure-free simulator.

    Under the {!Recovery.Replan} policy a [replanner] callback can be
    supplied: when recovery crosses a sync point (a full-loss outage
    destroys checkpoints, or cumulative rework exceeds the policy
    threshold), the simulator snapshots the surviving checkpoint
    frontier and asks the callback for a task graph of the {e residual}
    query; if one is returned it is spliced in and simulation continues
    on it, on the same clock and busy counters.  When the callback
    declines (or none is given), [Replan] behaves exactly like
    [Restart_from_sync]. *)

type mode = Concurrent | Serialized

type event = {
  at : float;
  what : string;  (** e.g. ["task sort done"], ["stage 3 start"] *)
}

type fault_event = {
  f_at : float;
  f_kind : Fault.kind;
  f_stage : int option;  (** the affected stage, for task-level faults *)
  f_task : string option;  (** the affected task's label *)
  f_resource : int option;  (** the lost resource, for outages *)
  f_attempt : int;  (** which attempt faulted (from 1); [0] for outages *)
}

type replan_trigger =
  | Checkpoint_loss of { resource : int }
      (** a full-loss outage destroyed checkpoints on [resource] *)
  | Work_inflation of { ratio : float }
      (** cumulative rework reached [ratio] × the graph's base work *)
  | Slowdown of { resource : int; factor : float }
      (** a brownout began: [resource] runs at [factor] of its capacity —
          nothing is destroyed, but the residual work may be worth
          steering elsewhere *)
  | Scale_out of { n_new : int }
      (** [n_new] grown resources just came online; only a re-planned
          graph (lowered on the grown machine) can place work on them *)

val trigger_to_string : replan_trigger -> string
(** e.g. ["checkpoint loss (resource 3)"], ["work inflation (0.62x)"] *)

type replan_event = {
  rp_at : float;  (** simulation time of the splice *)
  rp_trigger : replan_trigger;
  rp_plan : string;  (** canonical key of the chosen residual plan *)
  rp_info : string;  (** re-optimization summary (expansions, fallback…) *)
}

type snapshot = {
  s_at : float;  (** current simulation time *)
  s_trigger : replan_trigger;
  s_graph : Task_graph.t;  (** the graph being abandoned *)
  s_survivors : int list;
      (** stage ids of [s_graph] whose materialized outputs survive —
          the checkpoint frontier the residual query may build on *)
}

type replan = {
  new_graph : Task_graph.t;
      (** residual graph; its [n_resources] must equal the machine's
          {e current} dimension — the initial graph's plus every grow
          event already online *)
  plan_key : string;
  info : string;
}

type replanner = snapshot -> replan option
(** Returning [None] declines — the simulator falls back to
    [Restart_from_sync] semantics for this trigger. *)

type outcome = {
  makespan : float;
      (** end-to-end completion time; includes recovery re-execution when
          faults were injected *)
  busy : float array;
      (** per-resource busy time; equals per-resource demand totals in a
          failure-free run, and includes re-executed and inflated work
          under faults.  With scale-out events the array covers the grown
          dimensions too (initial [n_resources] + one per grow event, in
          onset order). *)
  total_work : float;
      (** failure-free work of the graph; after a re-plan splice, the
          surviving checkpoints' work plus the residual graph's work *)
  stage_start : (int * float) list;
      (** first activation time per stage (restarts do not move it);
          stages of the {e final} graph when re-planning spliced one in *)
  stage_finish : (int * float) list;  (** final completion time per stage *)
  trace : event list;  (** chronological; includes fault events *)
  n_faults : int;
      (** injected faults: fail-stops + stragglers + outages; [0] without
          fault injection *)
  n_retries : int;  (** task re-executions beyond each task's first attempt *)
  n_replans : int;  (** re-plan splices performed (0 unless [Replan]) *)
  replans : replan_event list;  (** chronological *)
  faults : fault_event list;  (** chronological *)
}

val run :
  ?mode:mode -> ?faults:Fault.config -> ?recovery:Recovery.policy ->
  ?replanner:replanner -> Task_graph.t -> outcome
(** [mode] defaults to [Concurrent], [recovery] to {!Recovery.default}.
    When [faults] is absent or inactive, the result is bit-identical to
    the failure-free simulator (with the fault counters zero).
    [replanner] is consulted only under the [Replan] policy in
    [Concurrent] mode; in [Serialized] mode (no concurrent capacity to
    re-balance) [Replan] behaves like [Restart_stage].  Raises
    {!Parqo_util.Parqo_error.Error} on an invalid graph or fault config
    (task-graph validation per {!Task_graph.validate} also covers every
    spliced residual graph), and when every remaining demand sits on a
    permanently lost resource. *)

val simulate_plan :
  ?mode:mode -> ?faults:Fault.config -> ?recovery:Recovery.policy ->
  Parqo_cost.Env.t -> Parqo_plan.Join_tree.t -> outcome
(** Expand, lower and simulate a join tree in one call. *)

val utilization : outcome -> float
(** [total_work / (makespan * n_resources)] — the fraction of machine
    capacity used; in (0, 1] for failure-free runs (re-execution under
    faults can only lower it). *)

val timeline : ?width:int -> outcome -> string
(** An ASCII Gantt chart of stage lifetimes, one row per stage:
    {v
    stage 1  |   ======                  | 12.0 .. 48.3
    stage 0  |         ================  | 48.3 .. 130.0  (2 faults)
    v}
    [width] (default 50) is the bar area in characters; rows of stages
    that suffered faults are annotated with the fault count, and one
    trailing line per re-plan splice records when and why it fired. *)
