(** A fluid discrete-event simulator of parallel plan execution, with
    optional fault injection and recovery.

    Resources are preemptable and time-shared (the paper's §5.2.1
    assumptions, realized as processor sharing): at any instant, each
    resource divides its unit capacity equally among the tasks of running
    stages that still demand it; a task progresses on all its resources
    concurrently and finishes when every demand is exhausted; a stage
    finishes when all its tasks do, releasing dependent stages.  The
    makespan is the simulated response time.

    [Serialized] mode executes stages and tasks one at a time — the
    sequential-execution baseline of the §5 desiderata, whose makespan is
    exactly the total work.

    With a {!Fault.config} the simulator injects fail-stop task faults,
    stragglers and resource outages from a deterministic seed-driven
    schedule, and recovers per the {!Recovery.policy}: a stage is a
    pipelined segment, its dependency edges are materialized sync points,
    so recovery re-executes the failed segment back to its nearest
    checkpoint.  Without faults (or with an inactive config) behavior is
    bit-identical to the failure-free simulator. *)

type mode = Concurrent | Serialized

type event = {
  at : float;
  what : string;  (** e.g. ["task sort done"], ["stage 3 start"] *)
}

type fault_event = {
  f_at : float;
  f_kind : Fault.kind;
  f_stage : int option;  (** the affected stage, for task-level faults *)
  f_task : string option;  (** the affected task's label *)
  f_resource : int option;  (** the lost resource, for outages *)
  f_attempt : int;  (** which attempt faulted (from 1); [0] for outages *)
}

type outcome = {
  makespan : float;
      (** end-to-end completion time; includes recovery re-execution when
          faults were injected *)
  busy : float array;
      (** per-resource busy time; equals per-resource demand totals in a
          failure-free run, and includes re-executed and inflated work
          under faults *)
  total_work : float;  (** failure-free work of the graph *)
  stage_start : (int * float) list;
      (** first activation time per stage (restarts do not move it) *)
  stage_finish : (int * float) list;  (** final completion time per stage *)
  trace : event list;  (** chronological; includes fault events *)
  n_faults : int;
      (** injected faults: fail-stops + stragglers + outages; [0] without
          fault injection *)
  n_retries : int;  (** task re-executions beyond each task's first attempt *)
  recovered_makespan : float;
      (** completion time including all recovery; equals [makespan] *)
  faults : fault_event list;  (** chronological *)
}

val run :
  ?mode:mode -> ?faults:Fault.config -> ?recovery:Recovery.policy ->
  Task_graph.t -> outcome
(** [mode] defaults to [Concurrent], [recovery] to {!Recovery.default}.
    When [faults] is absent or inactive, the result is bit-identical to
    the failure-free simulator (with the fault counters zero).  Raises
    {!Parqo_util.Parqo_error.Error} on an invalid graph or fault config,
    and when every remaining demand sits on a permanently lost
    resource. *)

val simulate_plan :
  ?mode:mode -> ?faults:Fault.config -> ?recovery:Recovery.policy ->
  Parqo_cost.Env.t -> Parqo_plan.Join_tree.t -> outcome
(** Expand, lower and simulate a join tree in one call. *)

val utilization : outcome -> float
(** [total_work / (makespan * n_resources)] — the fraction of machine
    capacity used; in (0, 1] for failure-free runs (re-execution under
    faults can only lower it). *)

val timeline : ?width:int -> outcome -> string
(** An ASCII Gantt chart of stage lifetimes, one row per stage:
    {v
    stage 1  |   ======                  | 12.0 .. 48.3
    stage 0  |         ================  | 48.3 .. 130.0  (2 faults)
    v}
    [width] (default 50) is the bar area in characters; rows of stages
    that suffered faults are annotated with the fault count. *)
