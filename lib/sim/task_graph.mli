(** Operator trees lowered to a stage DAG for execution simulation.

    A {e stage} is a maximal pipeline: a connected set of operators linked
    by [Pipelined] composition edges, which execute concurrently at run
    time.  A [Materialized] edge becomes a stage dependency — the producer
    stage must finish before the consumer stage starts.  This mirrors how
    the cost calculus treats fronts and residuals, but the simulator
    re-derives timing from first principles (processor sharing), so it is
    an independent check on the model. *)

type task = {
  task_id : int;  (** the operator-tree node id *)
  label : string;
  demands : float array;  (** work per machine resource *)
}

type stage = {
  stage_id : int;
  tasks : task list;
  deps : int list;  (** stage ids that must complete first *)
  op_root : Parqo_optree.Op.node option;
      (** the operator subtree this stage materializes — its root's
          [out_card]/[out_width] size the checkpoint.  [None] for
          hand-built graphs. *)
}

type t = {
  stages : stage array;  (** indexed by [stage_id] *)
  n_resources : int;
  root_stage : int;  (** the stage containing the tree root *)
}

val of_optree : Parqo_cost.Env.t -> Parqo_optree.Op.node -> t
(** Tasks get their demand vectors from the cost model's base operator
    descriptors ({!Parqo_cost.Opcost.base}); the inner index of an
    index-nested-loops join yields no task (it is probed, not scanned —
    same convention as the cost model). *)

val total_work : t -> float

val validate : t -> (unit, string) result
(** Structural well-formedness, checked at simulator entry: [stage_id]
    equals the array index, dependency ids in range, demand vectors no
    longer than [n_resources] with only finite nonnegative entries, and
    the dependency graph acyclic.  Violations that would otherwise
    surface as index crashes or non-termination deep inside the
    simulator are reported here instead. *)
