module Op = Parqo_optree.Op
module Env = Parqo_cost.Env

type task = { task_id : int; label : string; demands : float array }

type stage = {
  stage_id : int;
  tasks : task list;
  deps : int list;
  op_root : Op.node option;
}

type t = { stages : stage array; n_resources : int; root_stage : int }

let of_optree (env : Env.t) root =
  let n_resources = Parqo_machine.Machine.n_resources env.Env.machine in
  (* mutable stage builders *)
  let stages : (int, task list * int list) Hashtbl.t = Hashtbl.create 16 in
  let roots : (int, Op.node) Hashtbl.t = Hashtbl.create 16 in
  let next_stage = ref 0 in
  let new_stage node =
    let id = !next_stage in
    incr next_stage;
    Hashtbl.replace stages id ([], []);
    Hashtbl.replace roots id node;
    id
  in
  let add_task stage task =
    let tasks, deps = Hashtbl.find stages stage in
    Hashtbl.replace stages stage (task :: tasks, deps)
  in
  let add_dep ~on stage =
    let tasks, deps = Hashtbl.find stages stage in
    Hashtbl.replace stages stage (tasks, on :: deps)
  in
  let task_of (node : Op.node) =
    let d = Parqo_cost.Opcost.base env.Env.placement env.Env.estimator node in
    {
      task_id = node.Op.id;
      label = Op.kind_name node.Op.kind;
      demands =
        Parqo_util.Vecf.to_array
          (Parqo_cost.Descriptor.work_vector d);
    }
  in
  let rec assign (node : Op.node) stage =
    add_task stage (task_of node);
    let children =
      (* an index probed by nested loops induces no scanning task *)
      if Parqo_cost.Opcost.nl_inner_is_free node then [ List.hd node.Op.children ]
      else node.Op.children
    in
    List.iter
      (fun (c : Op.node) ->
        match c.Op.composition with
        | Op.Pipelined -> assign c stage
        | Op.Materialized ->
          let child_stage = new_stage c in
          add_dep ~on:child_stage stage;
          assign c child_stage)
      children
  in
  let root_stage = new_stage root in
  assign root root_stage;
  let stages_arr =
    Array.init !next_stage (fun id ->
        let tasks, deps = Hashtbl.find stages id in
        {
          stage_id = id;
          tasks = List.rev tasks;
          deps = List.sort_uniq compare deps;
          op_root = Hashtbl.find_opt roots id;
        })
  in
  { stages = stages_arr; n_resources; root_stage }

let total_work t =
  Array.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc task -> acc +. Array.fold_left ( +. ) 0. task.demands)
        acc s.tasks)
    0. t.stages

let validate t =
  let n = Array.length t.stages in
  let in_range id = id >= 0 && id < n in
  if not (in_range t.root_stage) then Error "root stage out of range"
  else begin
    let bad_id = ref None in
    Array.iteri
      (fun i s -> if !bad_id = None && s.stage_id <> i then bad_id := Some i)
      t.stages;
    let bad_dep =
      Array.exists
        (fun s -> List.exists (fun d -> not (in_range d)) s.deps)
        t.stages
    in
    let bad_demand = ref None in
    Array.iter
      (fun s ->
        List.iter
          (fun task ->
            if Array.length task.demands > t.n_resources then
              bad_demand :=
                Some
                  (Printf.sprintf "task %s: %d demand entries but %d resources"
                     task.label (Array.length task.demands) t.n_resources)
            else
              Array.iter
                (fun d ->
                  if Float.is_nan d || d < 0. then
                    bad_demand :=
                      Some
                        (Printf.sprintf "task %s: negative or NaN demand"
                           task.label))
                task.demands)
          s.tasks)
      t.stages;
    if !bad_id <> None then
      Error
        (Printf.sprintf "stage_id mismatch at index %d"
           (Option.get !bad_id))
    else if bad_dep then Error "dependency out of range"
    else
      match !bad_demand with
      | Some msg -> Error msg
      | None -> begin
      (* cycle check via DFS colors *)
      let color = Array.make n 0 in
      let rec dfs id =
        if color.(id) = 1 then false
        else if color.(id) = 2 then true
        else begin
          color.(id) <- 1;
          let ok = List.for_all dfs t.stages.(id).deps in
          color.(id) <- 2;
          ok
        end
      in
      let acyclic =
        Array.for_all (fun s -> dfs s.stage_id) t.stages
      in
      if acyclic then Ok () else Error "dependency cycle"
    end
  end
