module Parqo_error = Parqo_util.Parqo_error

type params = {
  io_page_cost : float;
  cpu_tuple_cost : float;
  cpu_compare_cost : float;
  cpu_hash_cost : float;
  net_tuple_cost : float;
  pipeline_delta_k : float;
  delta_scales_work : bool;
  clone_overhead : float;
  tuples_per_page : float;
  sort_memory_tuples : float;
  index_page_factor : float;
  unclustered_penalty : float;
  nl_index_probe_io : float;
  hash_memory_tuples : float;
}

type t = {
  resources : Resource.t array;
  nodes : int;
  params : params;
  nominal : float array;
}

let default_params =
  {
    io_page_cost = 1.0;
    cpu_tuple_cost = 0.01;
    cpu_compare_cost = 0.002;
    cpu_hash_cost = 0.005;
    net_tuple_cost = 0.004;
    pipeline_delta_k = 0.1;
    delta_scales_work = false;
    clone_overhead = 0.02;
    tuples_per_page = 50.;
    sort_memory_tuples = 10_000.;
    index_page_factor = 0.5;
    unclustered_penalty = 3.0;
    nl_index_probe_io = 0.5;
    hash_memory_tuples = 50_000.;
  }

let n_resources m = Array.length m.resources
let resource m id = m.resources.(id)
let speed m id = m.resources.(id).Resource.speed

let available m id =
  id >= 0 && id < Array.length m.resources && speed m id > 0.

let down_ids m =
  Array.to_list m.resources
  |> List.filter_map (fun r ->
         if Resource.in_service r then None else Some r.Resource.id)

let by_kind m kind =
  Array.to_list m.resources
  |> List.filter (fun r -> r.Resource.kind = kind && Resource.in_service r)

let cpus m = by_kind m Resource.Cpu
let disks m = by_kind m Resource.Disk

let network m =
  match by_kind m Resource.Network with [] -> None | r :: _ -> Some r

let cpu_ids m = List.map (fun r -> r.Resource.id) (cpus m)
let disk_ids m = List.map (fun r -> r.Resource.id) (disks m)

let effective_capacity m =
  Array.fold_left (fun acc r -> acc +. r.Resource.speed) 0. m.resources

(* in-service / total per kind, for kinds present in the topology *)
let census m =
  List.filter_map
    (fun kind ->
      let total =
        Array.fold_left
          (fun n r -> if r.Resource.kind = kind then n + 1 else n)
          0 m.resources
      in
      if total = 0 then None
      else
        let up = List.length (by_kind m kind) in
        Some (kind, up, total))
    [ Resource.Cpu; Resource.Disk; Resource.Network ]

let census_to_string c =
  String.concat ", "
    (List.map
       (fun (k, up, total) ->
         Printf.sprintf "%s %d/%d" (Resource.kind_to_string k) up total)
       c)

(* Every kind present in the topology must keep at least one resource in
   service: a machine whose disks (or only interconnect) all vanished
   cannot host any placement, and letting it through only defers the
   failure to a confusing place deep in costing. *)
let validate_census ~op m =
  let c = census m in
  match List.find_opt (fun (_, up, _) -> up = 0) c with
  | None -> ()
  | Some (kind, _, _) ->
    Parqo_error.failf ~subsystem:"machine"
      "Machine.%s: no %s left in service (census: %s)" op
      (Resource.kind_to_string kind)
      (census_to_string c)

let rescale_unchecked m ~speeds =
  let n = Array.length m.resources in
  let resources = Array.copy m.resources in
  List.iter
    (fun (id, s) ->
      if not (Float.is_finite s) || s < 0. then
        Parqo_error.failf ~subsystem:"machine"
          "Machine.rescale: speed %g for resource %d (want finite >= 0)" s id;
      if id >= 0 && id < n then
        resources.(id) <- { resources.(id) with Resource.speed = s })
    speeds;
  { m with resources }

let rescale m ~speeds =
  let m' = rescale_unchecked m ~speeds in
  validate_census ~op:"rescale" m';
  m'

let degrade m ~down =
  let m' = rescale_unchecked m ~speeds:(List.map (fun id -> (id, 0.)) down) in
  validate_census ~op:"degrade" m';
  m'

let restore ?up m =
  let n = Array.length m.resources in
  let ids = match up with Some ids -> ids | None -> List.init n Fun.id in
  rescale m ~speeds:(List.filter_map
       (fun id ->
         if id >= 0 && id < n then Some (id, m.nominal.(id)) else None)
       ids)

let build ?(params = default_params) ~nodes specs =
  let resources =
    List.mapi
      (fun id (kind, name, node) -> { Resource.id; kind; name; node; speed = 1. })
      specs
  in
  let resources = Array.of_list resources in
  {
    resources;
    nodes;
    params;
    nominal = Array.make (Array.length resources) 1.;
  }

let grow ?(speed = 1.) m specs =
  if not (Float.is_finite speed) || speed <= 0. then
    Parqo_error.failf ~subsystem:"machine"
      "Machine.grow: speed %g (want finite > 0)" speed;
  if specs = [] then m
  else begin
    let n = Array.length m.resources in
    let added =
      List.mapi
        (fun i (kind, name, node) ->
          { Resource.id = n + i; kind; name; node; speed })
        specs
    in
    let nodes =
      List.fold_left
        (fun acc (_, _, node) -> if node >= acc then node + 1 else acc)
        m.nodes specs
    in
    {
      m with
      resources = Array.append m.resources (Array.of_list added);
      nodes;
      nominal =
        Array.append m.nominal (Array.make (List.length specs) speed);
    }
  end

let shared_nothing ?params ~nodes () =
  if nodes < 1 then invalid_arg "Machine.shared_nothing";
  let specs =
    List.concat
      (List.init nodes (fun i ->
           [
             (Resource.Cpu, Printf.sprintf "cpu%d" i, i);
             (Resource.Disk, Printf.sprintf "disk%d" i, i);
           ]))
    @ (if nodes > 1 then [ (Resource.Network, "net", -1) ] else [])
  in
  build ?params ~nodes specs

let shared_memory ?params ~cpus ~disks () =
  if cpus < 1 || disks < 1 then invalid_arg "Machine.shared_memory";
  let specs =
    List.init cpus (fun i -> (Resource.Cpu, Printf.sprintf "cpu%d" i, 0))
    @ List.init disks (fun i -> (Resource.Disk, Printf.sprintf "disk%d" i, 0))
  in
  build ?params ~nodes:1 specs

let sequential ?params () = shared_memory ?params ~cpus:1 ~disks:1 ()

let two_disks () =
  build ~nodes:1 [ (Resource.Disk, "disk1", 0); (Resource.Disk, "disk2", 0) ]

let node_resource m node kind =
  let found =
    Array.to_list m.resources
    |> List.find_opt (fun r ->
           r.Resource.node = node && r.Resource.kind = kind
           && Resource.in_service r)
  in
  match found with Some r -> r | None -> raise Not_found

let node_cpu m node = node_resource m node Resource.Cpu
let node_disk m node = node_resource m node Resource.Disk
let disk_of_node m node = (node_disk m node).Resource.id

type aggregation = Per_resource | By_kind | By_node | Single

let aggregate m = function
  | Per_resource -> (n_resources m, fun id -> id)
  | Single -> (1, fun _ -> 0)
  | By_kind ->
    (* dimensions in a fixed kind order, but only for kinds present *)
    let kinds =
      List.filter
        (fun k -> by_kind m k <> [])
        [ Resource.Cpu; Resource.Disk; Resource.Network ]
    in
    let dim_of_kind k =
      let rec idx i = function
        | [] -> invalid_arg "Machine.aggregate"
        | k' :: rest -> if k = k' then i else idx (i + 1) rest
      in
      idx 0 kinds
    in
    (List.length kinds, fun id -> dim_of_kind m.resources.(id).Resource.kind)
  | By_node ->
    ( m.nodes,
      fun id ->
        let node = m.resources.(id).Resource.node in
        if node < 0 then 0 else node )

let pp ppf m =
  Format.fprintf ppf "machine(%d nodes: %a%s)" m.nodes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Resource.pp)
    (Array.to_list m.resources)
    (match down_ids m with
    | [] -> ""
    | ids ->
      Printf.sprintf "; down: %s"
        (String.concat "," (List.map string_of_int ids)))
