(** The abstract parallel machine that executes operator trees.

    A machine is a set of preemptable resources plus the cost constants of
    the cost model.  The paper's solution is architecture-independent
    ("differences across architectures appear as variations in the precise
    details of the cost model", §1); the constructors below provide the
    standard configurations used in the experiments.

    Resources carry a relative {!Resource.t.speed}: 1.0 is the nominal
    rate the cost constants are calibrated for, fractional speeds model
    browned-out (throttled, slow) resources, and speed 0 is out of
    service.  {!degrade} is the speed-0 special case of the general
    {!rescale}/{!restore}/{!grow} lifecycle; all three preserve existing
    resource ids, so resource-vector dimensions stay stable ({!grow} only
    appends). *)

type params = {
  io_page_cost : float;  (** time units to read or write one page *)
  cpu_tuple_cost : float;  (** CPU time to produce/consume one tuple *)
  cpu_compare_cost : float;  (** per comparison during sorting/merging *)
  cpu_hash_cost : float;  (** per tuple hashed (build or probe) *)
  net_tuple_cost : float;  (** network time to ship one tuple *)
  pipeline_delta_k : float;
      (** the adjustable [k] in the pipeline penalty [delta(k)] of §5.2.2 *)
  delta_scales_work : bool;
      (** if true, [delta(k)] scales work coordinates too (the literal
          reading of the paper); if false only the time coordinate is
          penalized.  See DESIGN.md "Modeling decisions". *)
  clone_overhead : float;
      (** fractional startup overhead charged per additional clone: a
          degree-[k] clone runs in [t/k * (1 + clone_overhead*(k-1))] *)
  tuples_per_page : float;  (** pages = tuples / tuples_per_page *)
  sort_memory_tuples : float;
      (** in-memory sort threshold; larger inputs pay an external-merge
          I/O pass per factor of [sort_memory_tuples] *)
  index_page_factor : float;
      (** index pages as a fraction of table pages (covering scans) *)
  unclustered_penalty : float;
      (** I/O multiplier for fully scanning an unclustered index *)
  nl_index_probe_io : float;
      (** pages fetched per index-nested-loops probe *)
  hash_memory_tuples : float;
      (** per-clone hash-table capacity; larger builds Grace-partition to
          disk, charging an extra write+read pass on both join inputs.
          Memory itself is non-preemptable and deliberately outside the
          resource vectors (§5.2.1, §7) — this threshold is how its
          effect on I/O shows up. *)
}

type t = {
  resources : Resource.t array;  (** indexed by [Resource.id] *)
  nodes : int;  (** number of sites *)
  params : params;
  nominal : float array;
      (** per-resource speed at construction ({!build}: 1.0; {!grow}: the
          grow speed) — what {!restore} returns a resource to *)
}

val default_params : params

val n_resources : t -> int
(** Includes out-of-service resources: resource-vector dimensions never
    change under {!degrade}/{!rescale}. *)

val resource : t -> int -> Resource.t

val speed : t -> int -> float
(** Current relative speed of a resource id; 0 when out of service. *)

val available : t -> int -> bool
(** True when the id is in range and its speed is positive. *)

val down_ids : t -> int list
(** Ids with speed 0, ascending. *)

val effective_capacity : t -> float
(** Sum of all resource speeds — the machine's speed-weighted capacity
    (a homogeneous machine contributes exactly [n_resources]). *)

val rescale : t -> speeds:(int * float) list -> t
(** A machine with the listed resource ids set to the given absolute
    speeds (later entries win).  Ids keep their positions and dimensions;
    speed-0 resources disappear from {!cpus}/{!disks}/{!network}/
    {!node_cpu}/… so no new plan places work on them.  Out-of-range ids
    are ignored.  Raises {!Parqo_error.Error} if a speed is negative or
    not finite, or if any resource kind present in the topology would be
    left with nothing in service (the error carries the surviving-resource
    census). *)

val degrade : t -> down:int list -> t
(** [rescale] to speed 0: the given ids (in addition to any already out
    of service) are removed from service.  Same validation and
    out-of-range behavior as {!rescale}. *)

val restore : ?up:int list -> t -> t
(** The listed ids (default: all) back at their {!t.nominal} speed — the
    recovery dual of {!degrade}/{!rescale}.  Out-of-range ids are
    ignored. *)

val grow : ?speed:float -> t -> (Resource.kind * string * int) list -> t
(** A machine with the given [(kind, name, node)] resources appended at
    the given speed (default 1.0), continuing the dense id sequence —
    existing ids and vector dimensions are untouched, which is what lets
    a mid-run plan splice onto a grown machine.  [nodes] expands to cover
    any new site index.  Raises {!Parqo_error.Error} on a non-positive or
    non-finite speed. *)

val cpus : t -> Resource.t list
(** In-service CPUs only (see {!degrade}); likewise for the accessors
    below. *)

val disks : t -> Resource.t list

val network : t -> Resource.t option
(** The (single, aggregated) interconnect, if the machine has one. *)

val cpu_ids : t -> int list

val disk_ids : t -> int list

val shared_nothing : ?params:params -> nodes:int -> unit -> t
(** [nodes] sites, each with one CPU and one disk, joined by a single
    shared interconnect resource (the Gamma-style architecture). *)

val shared_memory : ?params:params -> cpus:int -> disks:int -> unit -> t
(** One site with [cpus] CPUs and [disks] disks and no network. *)

val sequential : ?params:params -> unit -> t
(** One CPU, one disk: the machine on which every plan degenerates to
    sequential execution — the baseline for the desiderata experiments. *)

val two_disks : unit -> t
(** The machine of the paper's Example 3: exactly two disks are "the only
    significant resources". *)

val node_cpu : t -> int -> Resource.t
(** CPU of a given site (shared-nothing machines). Raises [Not_found]. *)

val node_disk : t -> int -> Resource.t

val disk_of_node : t -> int -> int
(** Resource id of a site's disk. *)

(** Aggregation of physical resources into pruning-metric dimensions
    (§6.3: "if two resources closely track each other, they should be
    aggregated and modeled as a single resource"). *)
type aggregation =
  | Per_resource  (** one dimension per resource *)
  | By_kind  (** all CPUs one dimension, all disks another, network a third *)
  | By_node  (** one dimension per site (network folded into site 0) *)
  | Single  (** total work only — collapses to the work metric *)

val aggregate : t -> aggregation -> int * (int -> int)
(** [aggregate m agg] is [(l, group)] where [l] is the number of pruning
    dimensions and [group id] maps a resource id to its dimension. *)

val pp : Format.formatter -> t -> unit
