type kind = Cpu | Disk | Network

type t = { id : int; kind : kind; name : string; node : int; speed : float }

let kind_to_string = function
  | Cpu -> "cpu"
  | Disk -> "disk"
  | Network -> "network"

let in_service r = r.speed > 0.

let pp ppf r =
  if r.speed = 1. then Format.fprintf ppf "%s(id=%d,node=%d)" r.name r.id r.node
  else
    Format.fprintf ppf "%s(id=%d,node=%d,speed=%.3g)" r.name r.id r.node r.speed

let equal a b = a.id = b.id
