(** A preemptable (time-sliceable) resource of the parallel machine.

    The paper's cost model (§5.2.1) abstracts resource usage as pairs
    [(t, w)] under a uniformity assumption and requires resources to be
    preemptable — CPUs, disks and network links qualify; memory does not
    and is deliberately out of scope, as in the paper. *)

type kind = Cpu | Disk | Network

type t = {
  id : int;  (** dense index; doubles as the resource-vector coordinate *)
  kind : kind;
  name : string;  (** e.g. ["cpu0"], ["disk1"], ["net"] *)
  node : int;  (** site that hosts the resource; network links use [-1] *)
  speed : float;
      (** relative service rate: 1.0 is the nominal resource the cost
          constants are calibrated for, 0.5 delivers work at half rate,
          0 means out of service.  See {!Machine.rescale}. *)
}

val kind_to_string : kind -> string

val in_service : t -> bool
(** [speed > 0.] *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
