module Cm = Parqo_cost.Costmodel
module Budget = Parqo_search.Budget
module Plan_cache = Parqo_util.Plan_cache
module Parqo_error = Parqo_util.Parqo_error
module Statsu = Parqo_util.Statsu
module Rng = Parqo_util.Rng
module Q = Parqo_query.Query

type config = {
  queue_cap : int;
  workers : int;
  default_deadline : float option;
  budget : Budget.t;
  max_attempts : int;
  backoff : float;
  backoff_cap : float;
  chaos : Chaos.config;
}

let default_config =
  {
    queue_cap = 32;
    workers = 2;
    default_deadline = Some 0.25;
    budget = Budget.unlimited;
    max_attempts = 3;
    backoff = 0.005;
    backoff_cap = 0.05;
    chaos = Chaos.none;
  }

let validate_config c =
  if c.queue_cap < 1 then Error "queue_cap must be >= 1"
  else if c.workers < 1 then Error "workers must be >= 1"
  else if
    match c.default_deadline with Some d -> d <= 0. | None -> false
  then Error "default_deadline must be > 0"
  else if c.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if c.backoff < 0. then Error "backoff must be >= 0"
  else if c.backoff_cap < c.backoff then Error "backoff_cap must be >= backoff"
  else Chaos.validate c.chaos

type request = {
  id : int;
  arrival : float;
  query : Q.t;
  deadline : float option;
}

let requests rng ~pool ~arrivals ?deadline () =
  if Array.length pool = 0 then invalid_arg "Server.requests: empty pool";
  Array.mapi
    (fun i at -> { id = i; arrival = at; query = Rng.pick rng pool; deadline })
    arrivals

type disposition = Planned | Degraded of string | Rejected of string

let disposition_label = function
  | Planned -> "planned"
  | Degraded _ -> "degraded"
  | Rejected _ -> "rejected"

type completion = {
  request : request;
  disposition : disposition;
  plan : Cm.eval option;
  fingerprint : string;
  started : float;
  finished : float;
  latency : float;
  attempts : int;
  cache_hit : bool;
}

type stats = {
  n_requests : int;
  planned : int;
  degraded : int;
  rejected : int;
  retries : int;
  epoch_bumps : int;
  machine_events : int;
  cache_hits : int;
  cache_misses : int;
  max_in_flight : int;
  makespan : float;
  throughput_qps : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type run_result = { completions : completion array; stats : stats }

type t = {
  mutable machine : Parqo_machine.Machine.t;
  mutable catalog : Parqo_catalog.Catalog.t;
  config : config;
  cache : Cm.eval Plan_cache.t;
  pool : Parqo_util.Domain_pool.t option;
      (* one persistent pool shared by every request this server plans;
         per-request searches reuse its workers instead of spawning *)
}

let create ?(config = default_config) ?pool ~machine ~catalog () =
  (match validate_config config with
  | Ok () -> ()
  | Error e -> Parqo_error.failf ~subsystem:"serve" ~phase:"config" "%s" e);
  { machine; catalog; config; cache = Plan_cache.create (); pool }

let epoch t = Plan_cache.epoch t.cache
let bump_epoch t = Plan_cache.bump t.cache

let update_catalog t catalog =
  t.catalog <- catalog;
  Plan_cache.bump t.cache

let machine t = t.machine

let update_machine t machine =
  (* a topology change invalidates every cached plan: demand vectors,
     clone placements and declustering all assumed the old machine.
     Structural equality spares the epoch when nothing changed. *)
  if machine <> t.machine then begin
    t.machine <- machine;
    Plan_cache.bump t.cache
  end

let cache_stats t = (Plan_cache.hits t.cache, Plan_cache.misses t.cache)

(* The full optimizer under the given budget; never raises on a valid
   query — an exhausted budget degrades to greedy inside the optimizer
   and reports [gave_up]. *)
let optimize t ~budget query =
  let env =
    Parqo_cost.Env.create ~machine:t.machine ~catalog:t.catalog ~query ()
  in
  let config = Parqo_search.Space.parallel_config t.machine in
  let outcome =
    Parqo_search.Optimizer.minimize_response_time ~config ~budget
      ?pool:t.pool env
  in
  match outcome.Parqo_search.Optimizer.best with
  | Some plan -> (plan, outcome.Parqo_search.Optimizer.gave_up)
  | None ->
    Parqo_error.fail ~subsystem:"serve" ~phase:"optimize"
      ~query:(Q.fingerprint query) "optimizer returned no plan"

(* The cheap fallback: a greedy plan, no search.  Used when the deadline
   has already passed or every attempt failed — the request degrades,
   it does not error. *)
let greedy_plan t query =
  let env =
    Parqo_cost.Env.create ~machine:t.machine ~catalog:t.catalog ~query ()
  in
  let config = Parqo_search.Space.parallel_config t.machine in
  match (Parqo_search.Greedy.greedy ~config env).Parqo_search.Greedy.best with
  | Some plan -> plan
  | None ->
    Parqo_error.fail ~subsystem:"serve" ~phase:"fallback"
      ~query:(Q.fingerprint query) "greedy fallback returned no plan"

(* Serve one admitted request starting at virtual instant [start].
   Returns the disposition plus the virtual service time: real measured
   optimizer seconds, plus virtual chaos slowdowns and retry backoffs
   (no actual sleeping — a trace simulates in much less than it
   denotes).  Never raises: chaos poisons are retried with capped
   exponential backoff and surviving failures degrade to greedy. *)
let serve_one t (req : request) ~start =
  let fp = Q.fingerprint req.query in
  let deadline =
    match req.deadline with
    | Some _ as d -> d
    | None -> t.config.default_deadline
  in
  (* seconds of deadline left at virtual instant [start + service] *)
  let left service =
    Option.map (fun d -> req.arrival +. d -. start -. service) deadline
  in
  let service = ref 0. in
  let bumps = ref 0 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    service := !service +. (Unix.gettimeofday () -. t0);
    v
  in
  let degrade reason =
    let plan = timed (fun () -> greedy_plan t req.query) in
    (Degraded reason, Some plan, false)
  in
  let used = ref 0 in
  let mevents = ref 0 in
  let rec attempt n last_err =
    if n > t.config.max_attempts then
      degrade (Printf.sprintf "retries exhausted: %s" last_err)
    else begin
      used := n;
      let d = Chaos.draw t.config.chaos ~request:req.id ~attempt:n in
      if d.Chaos.slow then
        service := !service +. t.config.chaos.Chaos.slow_seconds;
      (* the machine may move under the request: apply the drawn event
         through [update_machine] (epoch bump and all) BEFORE observing
         the epoch, so a plan computed now — against the new machine —
         is cacheable.  Census-invalid ops (degrading the only network)
         are skipped: chaos perturbs the machine, it cannot empty it. *)
      (match
         Chaos.machine_draw t.config.chaos ~request:req.id ~attempt:n
           ~n_resources:(Parqo_machine.Machine.n_resources t.machine)
       with
      | None -> ()
      | Some op -> (
        let module M = Parqo_machine.Machine in
        match
          match op with
          | Chaos.M_degrade r -> M.degrade t.machine ~down:[ r ]
          | Chaos.M_rescale (r, f) -> M.rescale t.machine ~speeds:[ (r, f) ]
          | Chaos.M_restore -> M.restore t.machine
        with
        | machine ->
          update_machine t machine;
          incr mevents
        | exception Parqo_error.Error _ -> ()));
      (* observe the epoch BEFORE any mid-request bump: a bump between
         observation and [remember_at] must drop the write *)
      let epoch0 = Plan_cache.epoch t.cache in
      if d.Chaos.bump_epoch then begin
        Plan_cache.bump t.cache;
        incr bumps
      end;
      match Plan_cache.find t.cache fp with
      | Some plan -> (Planned, Some plan, true)
      | None -> (
        match left !service with
        | Some l when l <= 0. -> degrade "deadline expired"
        | remaining -> (
          try
            if d.Chaos.poisoned then
              Parqo_error.fail ~subsystem:"serve" ~phase:"optimize" ~query:fp
                ?deadline_left:remaining "chaos: transient optimizer failure";
            let budget =
              match remaining with
              | None -> t.config.budget
              | Some l ->
                Budget.until (Unix.gettimeofday () +. l) t.config.budget
            in
            let plan, gave_up = timed (fun () -> optimize t ~budget req.query) in
            if gave_up then (Degraded "budget expired mid-search", Some plan, false)
            else begin
              Plan_cache.remember_at t.cache ~epoch:epoch0 fp plan;
              (Planned, Some plan, false)
            end
          with Parqo_error.Error e ->
            let pause =
              Float.min t.config.backoff_cap
                (t.config.backoff *. Float.pow 2. (float_of_int (n - 1)))
            in
            service := !service +. pause;
            attempt (n + 1) e.Parqo_error.message))
    end
  in
  let disposition, plan, cache_hit = attempt 1 "no attempt made" in
  (disposition, plan, cache_hit, !service, !bumps, !mevents, !used, fp)

let run t (reqs : request array) =
  let n = Array.length reqs in
  let reqs = Array.copy reqs in
  (* burst streams emit tied arrivals: break ties by request id so the
     served order — and everything downstream of it (cache warm-up,
     worker assignment, chaos draws) — is reproducible however the
     caller happened to order the trace *)
  Array.sort
    (fun a b ->
      match Float.compare a.arrival b.arrival with
      | 0 -> compare a.id b.id
      | c -> c)
    reqs;
  let hits0, misses0 = cache_stats t in
  let free_at = Array.make t.config.workers 0. in
  (* finish instants of admitted-but-unfinished requests; the in-flight
     set is bounded by queue_cap so a list scan is fine *)
  let in_flight = ref [] in
  let max_in_flight = ref 0 in
  let retries = ref 0 in
  let bumps = ref 0 in
  let mevents = ref 0 in
  let completions =
    Array.map
      (fun req ->
        in_flight := List.filter (fun f -> f > req.arrival) !in_flight;
        if List.length !in_flight >= t.config.queue_cap then
          {
            request = req;
            disposition =
              Rejected
                (Printf.sprintf "queue full (%d in flight)" t.config.queue_cap);
            plan = None;
            fingerprint = Q.fingerprint req.query;
            started = req.arrival;
            finished = req.arrival;
            latency = 0.;
            attempts = 0;
            cache_hit = false;
          }
        else begin
          (* earliest-free worker; head-of-line in arrival order *)
          let w = ref 0 in
          Array.iteri (fun i f -> if f < free_at.(!w) then w := i) free_at;
          let start = Float.max req.arrival free_at.(!w) in
          let ( disposition,
                plan,
                cache_hit,
                service,
                req_bumps,
                req_mevents,
                attempts,
                fp ) =
            serve_one t req ~start
          in
          let finished = start +. service in
          free_at.(!w) <- finished;
          in_flight := finished :: !in_flight;
          max_in_flight := max !max_in_flight (List.length !in_flight);
          retries := !retries + (attempts - 1);
          bumps := !bumps + req_bumps;
          mevents := !mevents + req_mevents;
          {
            request = req;
            disposition;
            plan;
            fingerprint = fp;
            started = start;
            finished;
            latency = finished -. req.arrival;
            attempts;
            cache_hit;
          }
        end)
      reqs
  in
  let hits1, misses1 = cache_stats t in
  let count p = Array.fold_left (fun a c -> if p c then a + 1 else a) 0 completions in
  let planned = count (fun c -> c.disposition = Planned) in
  let rejected =
    count (fun c -> match c.disposition with Rejected _ -> true | _ -> false)
  in
  let degraded = n - planned - rejected in
  let latencies =
    Array.to_list completions
    |> List.filter_map (fun c ->
           match c.disposition with
           | Rejected _ -> None
           | _ -> Some c.latency)
  in
  let makespan =
    Array.fold_left (fun a c -> Float.max a c.finished) 0. completions
  in
  let quantile q = match latencies with [] -> 0. | l -> Statsu.quantile q l in
  {
    completions;
    stats =
      {
        n_requests = n;
        planned;
        degraded;
        rejected;
        retries = !retries;
        epoch_bumps = !bumps;
        machine_events = !mevents;
        cache_hits = hits1 - hits0;
        cache_misses = misses1 - misses0;
        max_in_flight = !max_in_flight;
        makespan;
        throughput_qps =
          (if makespan > 0. then float_of_int (n - rejected) /. makespan
           else 0.);
        p50 = quantile 0.5;
        p95 = quantile 0.95;
        p99 = quantile 0.99;
      };
  }
