module Rng = Parqo_util.Rng

type config = {
  seed : int;
  slow_rate : float;
  slow_seconds : float;
  poison_rate : float;
  epoch_bump_every : int;
  machine_event_rate : float;
}

let none =
  {
    seed = 0;
    slow_rate = 0.;
    slow_seconds = 0.;
    poison_rate = 0.;
    epoch_bump_every = 0;
    machine_event_rate = 0.;
  }

let default ?(seed = 0) () =
  {
    seed;
    slow_rate = 0.05;
    slow_seconds = 0.02;
    poison_rate = 0.05;
    epoch_bump_every = 100;
    machine_event_rate = 0.;
  }

let is_active c =
  c.slow_rate > 0. || c.poison_rate > 0. || c.epoch_bump_every > 0
  || c.machine_event_rate > 0.

let validate c =
  if c.slow_rate < 0. || c.slow_rate > 1. then
    Error "slow_rate must be in [0, 1]"
  else if c.slow_seconds < 0. then Error "slow_seconds must be >= 0"
  else if c.poison_rate < 0. || c.poison_rate >= 1. then
    Error "poison_rate must be in [0, 1)"
  else if c.epoch_bump_every < 0 then Error "epoch_bump_every must be >= 0"
  else if c.machine_event_rate < 0. || c.machine_event_rate > 1. then
    Error "machine_event_rate must be in [0, 1]"
  else Ok ()

type draw = { poisoned : bool; slow : bool; bump_epoch : bool }

(* One independent generator per (seed, request, attempt), after
   [Fault.draw]: the draw depends only on the identity of the attempt,
   never on serving order, so a trace replays bit-identically.  The
   multipliers are large odd constants; Rng.create finishes the job
   with a SplitMix64 mix.  Epoch bumps fire on the first attempt only:
   a retry of a bumped request must be able to terminate. *)
let draw c ~request ~attempt =
  let key =
    ((c.seed * 0x2545F491) + (request * 0x9E3779B1)) + (attempt * 0x85EBCA77)
  in
  let rng = Rng.create key in
  let u_poison = Rng.float rng 1. in
  let u_slow = Rng.float rng 1. in
  {
    poisoned = u_poison < c.poison_rate;
    slow = u_slow < c.slow_rate;
    bump_epoch =
      c.epoch_bump_every > 0 && attempt = 1
      && request mod c.epoch_bump_every = c.epoch_bump_every - 1;
  }

type machine_op =
  | M_degrade of int
  | M_rescale of int * float
  | M_restore

(* Machine events ride the same generator, consuming fresh uniforms
   AFTER the poison and slow draws — same seed, same poison/slow trace
   as before machine events existed.  First attempts only: a retry must
   see a machine that stops moving under it.  The op mix leans towards
   perturbation (degrade/brownout) with periodic full restores so a long
   trace does not drift monotonically towards an empty machine — and the
   server skips any op its machine's census rejects. *)
let machine_draw c ~request ~attempt ~n_resources =
  if c.machine_event_rate <= 0. || attempt <> 1 || n_resources <= 0 then None
  else begin
    let key =
      ((c.seed * 0x2545F491) + (request * 0x9E3779B1)) + (attempt * 0x85EBCA77)
    in
    let rng = Rng.create key in
    let _u_poison = Rng.float rng 1. in
    let _u_slow = Rng.float rng 1. in
    let u_fire = Rng.float rng 1. in
    if u_fire >= c.machine_event_rate then None
    else begin
      let u_op = Rng.float rng 1. in
      let resource = Rng.int rng n_resources in
      let factor = 0.2 +. (0.7 *. Rng.float rng 1.) in
      if u_op < 0.35 then Some (M_degrade resource)
      else if u_op < 0.75 then Some (M_rescale (resource, factor))
      else Some M_restore
    end
  end
