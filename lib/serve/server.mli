(** The optimizer as a long-running service: a stream of optimization
    requests with per-request wall-clock deadlines, admission control
    with load shedding, transient-failure retry with capped exponential
    backoff, and a cross-query plan cache with epoch invalidation.

    The serving loop is a {e virtual-time} simulation over real
    optimizer work: arrivals and queueing delays live on a virtual
    clock (seconds from stream start), while each optimization is
    actually run and its real wall-clock cost charged as that request's
    service time.  Chaos slowdowns and retry backoffs are added as
    virtual delays — a trace denoting minutes of load simulates in the
    time the optimizations themselves take, and latency percentiles
    still mean what they would under real concurrency.

    Every admitted request terminates in [Planned] or [Degraded]; every
    shed request in [Rejected]; {!run} never raises on a valid request
    stream.  Degradation means the request still got a valid plan — the
    greedy fallback, or the best plan found before its budget expired —
    never an error. *)

type config = {
  queue_cap : int;  (** max requests in flight (queued + running) *)
  workers : int;  (** simulated optimizer workers draining the queue *)
  default_deadline : float option;
      (** deadline (seconds after arrival) for requests that carry none *)
  budget : Parqo_search.Budget.t;
      (** standing per-request search budget; a request's deadline is
          composed onto it with {!Parqo_search.Budget.until} *)
  max_attempts : int;  (** total tries per request, first one included *)
  backoff : float;  (** base retry pause, seconds; doubles per retry *)
  backoff_cap : float;  (** pause ceiling *)
  chaos : Chaos.config;
}

val default_config : config
(** queue cap 32, 2 workers, 250 ms default deadline, unlimited budget,
    3 attempts, 5 ms backoff capped at 50 ms, chaos off. *)

val validate_config : config -> (unit, string) result

type request = {
  id : int;  (** unique; chaos draws key on it *)
  arrival : float;  (** virtual seconds from stream start *)
  query : Parqo_query.Query.t;
  deadline : float option;  (** seconds after [arrival]; [None] = default *)
}

val requests :
  Parqo_util.Rng.t ->
  pool:Parqo_query.Query.t array ->
  arrivals:float array ->
  ?deadline:float ->
  unit ->
  request array
(** One request per arrival instant, each drawing a random query from
    the pool (see {!Parqo.Workloads.serving_pool}).  Raises
    [Invalid_argument] on an empty pool. *)

type disposition =
  | Planned  (** optimized in full (or served from the plan cache) *)
  | Degraded of string
      (** valid plan, reduced effort: deadline expired (greedy), budget
          ran out mid-search (best-so-far), or retries exhausted
          (greedy); the string says which *)
  | Rejected of string  (** shed at admission; no plan *)

val disposition_label : disposition -> string
(** ["planned"] / ["degraded"] / ["rejected"]. *)

type completion = {
  request : request;
  disposition : disposition;
  plan : Parqo_cost.Costmodel.eval option;  (** [None] iff [Rejected] *)
  fingerprint : string;
  started : float;  (** virtual instant service began *)
  finished : float;
  latency : float;  (** [finished - arrival]: queueing + service *)
  attempts : int;  (** serving attempts consumed; 0 iff [Rejected] *)
  cache_hit : bool;
}

type stats = {
  n_requests : int;
  planned : int;
  degraded : int;
  rejected : int;  (** the three always sum to [n_requests] *)
  retries : int;  (** attempts beyond each request's first *)
  epoch_bumps : int;  (** chaos-injected mid-request catalog bumps *)
  machine_events : int;
      (** chaos machine events actually applied (census-rejected ops are
          drawn but skipped, and not counted) *)
  cache_hits : int;
  cache_misses : int;
  max_in_flight : int;  (** never exceeds [queue_cap] *)
  makespan : float;  (** virtual seconds, stream start to last finish *)
  throughput_qps : float;  (** non-rejected completions per virtual second *)
  p50 : float;
  p95 : float;
  p99 : float;  (** latency quantiles over non-rejected requests, seconds *)
}

type run_result = { completions : completion array; stats : stats }

type t

val create :
  ?config:config ->
  ?pool:Parqo_util.Domain_pool.t ->
  machine:Parqo_machine.Machine.t ->
  catalog:Parqo_catalog.Catalog.t ->
  unit ->
  t
(** Raises {!Parqo_util.Parqo_error.Error} (subsystem ["serve"], phase
    ["config"]) on an invalid config.  [pool] is one persistent
    {!Parqo_util.Domain_pool.t} shared by every request this server
    plans: each request's search reuses its workers instead of spawning
    per call ([Search_stats] reports [spawned = 0] on warm requests),
    and the chosen plans are bit-identical to serving without a pool.
    The caller keeps ownership and must shut it down after the server
    is done. *)

val epoch : t -> int
(** Current plan-cache epoch (see {!Parqo_util.Plan_cache.epoch}). *)

val bump_epoch : t -> unit
(** Invalidate every cached plan — call after any catalog statistics
    change the server can't see. *)

val update_catalog : t -> Parqo_catalog.Catalog.t -> unit
(** Replace the catalog and {!bump_epoch} atomically with respect to
    the cache: no post-update lookup can return a pre-update plan. *)

val machine : t -> Parqo_machine.Machine.t

val update_machine : t -> Parqo_machine.Machine.t -> unit
(** Replace the machine; any topology change (degrade, growth, speed
    re-spec) bumps the epoch exactly like {!update_catalog} — plans
    cached against the old machine assumed its demand vectors and
    placements, so a degraded-machine request never sees a pre-degrade
    plan.  A structurally identical machine leaves the epoch alone. *)

val cache_stats : t -> int * int
(** Lifetime (hits, misses) of the plan cache. *)

val run : t -> request array -> run_result
(** Serve a request trace (sorted by arrival internally, ties broken by
    request id so burst streams serve reproducibly).  Admission:
    a request arriving while [queue_cap] admitted requests are still
    unfinished is [Rejected]; otherwise it is served by the earliest
    free worker in arrival order.  Serving: plan-cache lookup by query
    fingerprint, then the budgeted optimizer under the request's
    remaining deadline; chaos poisons retry with capped exponential
    backoff; deadline expiry, budget exhaustion and surviving failures
    degrade to the greedy plan.  Never raises on valid requests. *)
