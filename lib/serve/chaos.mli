(** Server-side chaos injection for the serving layer.

    The simulator's {!Parqo_sim.Fault} perturbs plan {e execution}; this
    module perturbs the {e optimizer service} itself — the failure modes
    a long-running optimizer-as-a-service actually sees: requests that
    take anomalously long (a slow metadata fetch, a GC pause), requests
    that fail transiently ("poisoned" — a caught exception the retry
    layer must absorb), and catalog changes landing mid-request (an
    epoch bump that invalidates the plan cache under the request's
    feet).

    All draws are pure functions of [(seed, request, attempt)], so a
    chaos trace replays bit-identically regardless of serving order —
    the same construction as {!Parqo_sim.Fault.draw}. *)

type config = {
  seed : int;
  slow_rate : float;  (** fraction of attempts delayed *)
  slow_seconds : float;  (** added service delay when slow *)
  poison_rate : float;
      (** fraction of attempts that raise a transient [Parqo_error];
          must be [< 1] so retries can succeed *)
  epoch_bump_every : int;
      (** a catalog epoch bump lands mid-request every this many
          requests; [0] disables *)
  machine_event_rate : float;
      (** fraction of first attempts on which the machine itself moves —
          a resource fail-stops, browns out, or the machine restores to
          nominal (see {!machine_draw}); [0.] disables *)
}

val none : config
(** All chaos off. *)

val default : ?seed:int -> unit -> config
(** 5% slow (+20 ms), 5% poisoned, an epoch bump every 100 requests. *)

val is_active : config -> bool

val validate : config -> (unit, string) result

type draw = { poisoned : bool; slow : bool; bump_epoch : bool }

val draw : config -> request:int -> attempt:int -> draw
(** The chaos outcome for one serving attempt ([attempt] is 1-based).
    [bump_epoch] only ever fires on attempt 1, so a retried request
    cannot be re-bumped forever. *)

type machine_op =
  | M_degrade of int  (** fail-stop the resource (speed 0) *)
  | M_rescale of int * float  (** brown the resource out to the factor *)
  | M_restore  (** every resource back to its nominal speed *)

val machine_draw :
  config -> request:int -> attempt:int -> n_resources:int ->
  machine_op option
(** The machine event, if any, landing before this attempt.  Pure in
    [(seed, request, attempt)] like {!draw}, and drawn from uniforms
    {e after} the poison/slow draws, so enabling machine events changes
    neither the poison nor the slow trace of a seed.  [None] whenever
    [machine_event_rate] is [0.], on retries ([attempt <> 1] — the
    machine must not move under a retry), or on an empty machine.
    Resource ids are drawn below [n_resources]; the server skips ops its
    machine's per-kind census rejects (e.g. degrading the only
    network). *)
