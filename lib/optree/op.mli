(** Operator trees (§4.2): the macro-expanded, atomic-operator form of an
    annotated join tree.  "Atomic" means the run-time scheduler cannot
    subdivide a node further, except by partitioning its input for
    cloning. *)

type exchange_mode =
  | Repartition  (** hash-repartition on an attribute *)
  | Merge_streams  (** collapse a partitioned stream to one consumer *)
  | Broadcast  (** replicate to every clone (fragment-and-replicate NL) *)

type kind =
  | Seq_scan of { rel : int }
  | Index_scan of { rel : int; index : Parqo_catalog.Index.t }
  | Sort of { key : Parqo_plan.Ordering.t }
  | Merge_join  (** merge phase of sort-merge *)
  | Hash_build
  | Hash_probe
  | Nl_join  (** pure-nested-loops *)
  | Create_index of { rel : int }  (** nested-loops "inflection" *)
  | Exchange of { mode : exchange_mode }

type composition = Pipelined | Materialized
(** Composition method between a node and its parent, annotated on the
    child (§4.2, annotation 1). *)

type node = {
  id : int;  (** unique within a tree, preorder *)
  kind : kind;
  children : node list;
  composition : composition;
  clone : int;  (** degree of cloning, >= 1 (annotation 2) *)
  partition : Parqo_plan.Ordering.col option;
      (** attribute partitioning of the output stream, when cloned *)
  out_card : float;  (** estimated output tuples *)
  out_width : float;  (** estimated output width in columns *)
}

val kind_name : kind -> string

val arity : kind -> int
(** Number of children the kind requires; [Hash_probe] is 2 (probe input
    first, build second), [Merge_join] and [Nl_join] are 2, scans and
    [Create_index] are 0 or 1 as built, [Sort] and [Exchange] are 1. *)

val iter : (node -> unit) -> node -> unit
(** Preorder. *)

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Preorder. *)

val size : node -> int

val find : (node -> bool) -> node -> node option

val base_relations : node -> Parqo_util.Bitset.t
(** Relation ids scanned (or indexed) anywhere in the subtree — the
    leaf set of the plan fragment the node materializes. *)

val materialized_front : node -> node list
(** The "materialized front" of §5: the maximal subtrees whose roots carry
    the [Materialized] annotation — everything that must finish before the
    tree emits its first tuple.  The root itself is never included. *)

val validate : node -> (unit, string) result
(** Checks arities, positive clone degrees, unique ids, and that
    cardinalities are non-negative. *)

val pp : Format.formatter -> node -> unit
(** Indented tree rendering with annotations, in the style of the paper's
    Example 1 table. *)

val to_string : node -> string
(** One-line functional rendering, e.g.
    [probe(scan(r0), build(scan(r1)))]. *)
