(** Macro-expansion of annotated join trees into operator trees (§4.2).

    Each join node expands by method:
    - sort-merge   → [merge(sort(outer), sort(inner))], sorts materialized;
      a sort is elided when its input already delivers the key ordering
      (the paper: "if R2 is already sorted then only one sort operation
      needs to be stated");
    - hash-join    → [probe(outer, build(inner))], build materialized;
    - nested-loops → [nested-loops(outer, inner)], optionally with the
      create-index inflection on the inner.

    Cloning (annotation 2) propagates partitioning requirements downward;
    exchange operators are inserted exactly where the producer's
    partitioning does not satisfy the consumer's (annotation 3, data
    redistribution).  The expansion of a given annotated join tree is
    unique, as the paper requires. *)

type config = {
  create_index_for_nl : bool;
      (** expand NL over an unindexed inner into
          [nested-loops(outer, create-index(inner))] *)
}

val default_config : config
(** [create_index_for_nl = false]. *)

val expand :
  ?config:config -> Parqo_plan.Estimator.t -> Parqo_plan.Join_tree.t -> Op.node
(** Raises [Invalid_argument] if the join tree is not well-formed for the
    estimator's query. *)

val expand_access : Parqo_plan.Estimator.t -> Parqo_plan.Join_tree.access -> Op.node
(** The scan node for one access leaf (id 0; see {!renumber}). *)

val expand_join :
  ?config:config ->
  Parqo_plan.Estimator.t ->
  Parqo_plan.Join_tree.join ->
  outer:Op.node ->
  inner:Op.node ->
  outer_ordering:Parqo_plan.Ordering.t Lazy.t ->
  inner_ordering:Parqo_plan.Ordering.t Lazy.t ->
  Op.node
(** Expand one join over already-expanded children: the new root
    operators (join, and any exchange / sort / build / create-index the
    annotations require) are built on top of the given child operator
    trees, which are grafted unchanged.  [outer_ordering] and
    [inner_ordering] are the children's join-tree output orderings
    ({!Parqo_plan.Props.ordering}), forced only when the sort-merge
    sort-elision check needs them — incremental costing passes memoized
    values, the full {!expand} passes lazy recomputations.

    New nodes carry id 0; callers that need the canonical preorder ids of
    {!expand} must {!renumber} the final tree.  Well-formedness of the
    combination is the caller's responsibility. *)

val renumber : Op.node -> Op.node
(** Rewrite node ids to a preorder numbering from 0 — the id assignment
    {!expand} performs.  Ids depend only on the tree shape, so grafting
    already-renumbered subtrees and renumbering the result reproduces a
    from-scratch expansion exactly. *)
