module P = Parqo_plan
module Q = Parqo_query.Query
module C = Parqo_catalog

type config = { create_index_for_nl : bool }

let default_config = { create_index_for_nl = false }

let node ?(composition = Op.Pipelined) ?partition ~clone ~out_card ~out_width kind
    children =
  {
    Op.id = 0;
    kind;
    children;
    composition;
    clone;
    partition;
    out_card;
    out_width;
  }

(* Insert an exchange unless the producer already satisfies the consumer's
   partitioning requirement.  [attr = None] accepts any partitioning
   attribute of the right degree. *)
let ensure_partition (n : Op.node) ~degree ~attr =
  let compatible =
    n.Op.clone = degree
    && (degree = 1
       || match attr with
          | None -> true
          | Some a -> (
            match n.Op.partition with
            | Some b -> a = b
            | None -> false))
  in
  if compatible then n
  else
    let mode = if degree = 1 then Op.Merge_streams else Op.Repartition in
    node
      (Op.Exchange { mode })
      [ n ] ~clone:degree ?partition:attr ~out_card:n.Op.out_card
      ~out_width:n.Op.out_width

let broadcast (n : Op.node) ~degree =
  if degree = 1 then ensure_partition n ~degree:1 ~attr:None
  else
    node
      (Op.Exchange { mode = Op.Broadcast })
      [ n ] ~clone:degree
      ~out_card:(n.Op.out_card *. float_of_int degree)
      ~out_width:n.Op.out_width

let expand_access est (a : P.Join_tree.access) =
  let out_card = P.Estimator.base_card est a.rel in
  let out_width =
    float_of_int (C.Table.arity (P.Estimator.table_of est a.rel))
  in
  let kind =
    match a.path with
    | P.Access_path.Seq_scan -> Op.Seq_scan { rel = a.rel }
    | P.Access_path.Index_scan index -> Op.Index_scan { rel = a.rel; index }
  in
  node kind [] ~clone:a.clone ~out_card ~out_width

(* Expand one join over already-expanded children.  The child operator
   trees are grafted as-is (their node ids are rewritten by the caller's
   final {!renumber}); [outer_ordering]/[inner_ordering] are the children's
   join-tree output orderings, taken lazily so the full expansion only
   computes them when the sort-merge sort-elision check needs them while
   incremental costing passes the memoized values for free. *)
let expand_join ?(config = default_config) est (j : P.Join_tree.join) ~outer
    ~inner ~outer_ordering ~inner_ordering =
  let query = P.Estimator.query est in
  let k = j.clone in
  let rels = P.Join_tree.relations (P.Join_tree.Join j) in
  let out_card = P.Estimator.card est rels in
  let out_width = P.Estimator.width est rels in
  let outer_key = P.Props.sort_key_outer query j in
  let inner_key = P.Props.sort_key_inner query j in
  let attr_of = function [] -> None | (c : P.Ordering.col) :: _ -> Some c in
  let composition = if j.materialize then Op.Materialized else Op.Pipelined in
  match j.method_ with
  | P.Join_method.Hash_join ->
    let inner' = ensure_partition inner ~degree:k ~attr:(attr_of inner_key) in
    let build =
      node Op.Hash_build [ inner' ] ~composition:Op.Materialized ~clone:k
        ?partition:(attr_of inner_key) ~out_card:inner'.Op.out_card
        ~out_width:inner'.Op.out_width
    in
    let outer' = ensure_partition outer ~degree:k ~attr:(attr_of outer_key) in
    node Op.Hash_probe [ outer'; build ] ~composition ~clone:k
      ?partition:(attr_of outer_key) ~out_card ~out_width
  | P.Join_method.Sort_merge ->
    let sorted side_ordering child key =
      (* A sort is needed unless the stream is single (k = 1), no
         exchange was inserted, and the input ordering subsumes the key.
         Exchanges destroy order; repartitioned streams are sorted per
         partition. *)
      let exchanged =
        match child.Op.kind with Op.Exchange _ -> true | _ -> false
      in
      if
        key <> []
        && (exchanged || k > 1
           || not (P.Ordering.satisfies (Lazy.force side_ordering) key))
      then
        node (Op.Sort { key }) [ child ] ~composition:Op.Materialized ~clone:k
          ?partition:child.Op.partition ~out_card:child.Op.out_card
          ~out_width:child.Op.out_width
      else child
    in
    let outer' = ensure_partition outer ~degree:k ~attr:(attr_of outer_key) in
    let inner' = ensure_partition inner ~degree:k ~attr:(attr_of inner_key) in
    let sorted_outer = sorted outer_ordering outer' outer_key in
    let sorted_inner = sorted inner_ordering inner' inner_key in
    node Op.Merge_join [ sorted_outer; sorted_inner ] ~composition ~clone:k
      ?partition:(attr_of outer_key) ~out_card ~out_width
  | P.Join_method.Nested_loops ->
    let outer' = ensure_partition outer ~degree:k ~attr:None in
    let inner' = broadcast inner ~degree:k in
    let inner'' =
      let unindexed_scan =
        match inner'.Op.kind with Op.Seq_scan _ -> true | _ -> false
      in
      if config.create_index_for_nl && unindexed_scan then
        let rel =
          match inner'.Op.kind with
          | Op.Seq_scan { rel } -> rel
          | _ -> assert false
        in
        node
          (Op.Create_index { rel })
          [ inner' ] ~composition:Op.Materialized ~clone:k
          ~out_card:inner'.Op.out_card ~out_width:inner'.Op.out_width
      else inner'
    in
    node Op.Nl_join [ outer'; inner'' ] ~composition ~clone:k ~out_card
      ~out_width

(* assign unique preorder ids — ids depend only on the final tree shape,
   so grafting pre-expanded (already renumbered) children and renumbering
   the whole tree yields exactly the ids a from-scratch expansion gives *)
let renumber root =
  let counter = ref 0 in
  let rec go (n : Op.node) =
    let id = !counter in
    incr counter;
    { n with Op.id; children = List.map go n.Op.children }
  in
  go root

let expand ?(config = default_config) est tree =
  let query = P.Estimator.query est in
  (match P.Join_tree.well_formed ~n_relations:(Q.n_relations query) tree with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Expand.expand: " ^ msg));
  let rec go t =
    match t with
    | P.Join_tree.Access a -> expand_access est a
    | P.Join_tree.Join j ->
      expand_join ~config est j ~outer:(go j.outer) ~inner:(go j.inner)
        ~outer_ordering:(lazy (P.Props.ordering query j.outer))
        ~inner_ordering:(lazy (P.Props.ordering query j.inner))
  in
  renumber (go tree)
