type exchange_mode = Repartition | Merge_streams | Broadcast

type kind =
  | Seq_scan of { rel : int }
  | Index_scan of { rel : int; index : Parqo_catalog.Index.t }
  | Sort of { key : Parqo_plan.Ordering.t }
  | Merge_join
  | Hash_build
  | Hash_probe
  | Nl_join
  | Create_index of { rel : int }
  | Exchange of { mode : exchange_mode }

type composition = Pipelined | Materialized

type node = {
  id : int;
  kind : kind;
  children : node list;
  composition : composition;
  clone : int;
  partition : Parqo_plan.Ordering.col option;
  out_card : float;
  out_width : float;
}

let kind_name = function
  | Seq_scan { rel } -> Printf.sprintf "scan(r%d)" rel
  | Index_scan { rel; index } ->
    Printf.sprintf "idx-scan(r%d:%s)" rel index.Parqo_catalog.Index.name
  | Sort { key } -> Printf.sprintf "sort[%s]" (Parqo_plan.Ordering.to_string key)
  | Merge_join -> "merge"
  | Hash_build -> "build"
  | Hash_probe -> "probe"
  | Nl_join -> "nested-loops"
  | Create_index { rel } -> Printf.sprintf "create-index(r%d)" rel
  | Exchange { mode } -> (
    match mode with
    | Repartition -> "xchg-repart"
    | Merge_streams -> "xchg-merge"
    | Broadcast -> "xchg-bcast")

let arity = function
  | Seq_scan _ | Index_scan _ -> 0
  | Sort _ | Create_index _ | Exchange _ -> 1
  | Merge_join | Hash_probe | Nl_join -> 2
  | Hash_build -> 1

let rec iter f node =
  f node;
  List.iter (iter f) node.children

let rec fold f acc node =
  List.fold_left (fold f) (f acc node) node.children

let size node = fold (fun n _ -> n + 1) 0 node

let base_relations node =
  fold
    (fun acc n ->
      match n.kind with
      | Seq_scan { rel } | Index_scan { rel; _ } | Create_index { rel } ->
        Parqo_util.Bitset.add rel acc
      | _ -> acc)
    Parqo_util.Bitset.empty node

let find p node =
  let result = ref None in
  (try
     iter
       (fun n -> if !result = None && p n then (result := Some n; raise Exit))
       node
   with Exit -> ());
  !result

let materialized_front root =
  (* maximal materialized subtrees below the root *)
  let rec collect ~is_root node acc =
    if (not is_root) && node.composition = Materialized then node :: acc
    else
      List.fold_left (fun acc c -> collect ~is_root:false c acc) acc node.children
  in
  List.rev (collect ~is_root:true root [])

let validate root =
  let seen = Hashtbl.create 16 in
  let error = ref None in
  let set_error msg = if !error = None then error := Some msg in
  iter
    (fun n ->
      if Hashtbl.mem seen n.id then
        set_error (Printf.sprintf "duplicate node id %d" n.id)
      else Hashtbl.replace seen n.id ();
      if List.length n.children <> arity n.kind then
        set_error
          (Printf.sprintf "%s has %d children, expected %d" (kind_name n.kind)
             (List.length n.children) (arity n.kind));
      if n.clone < 1 then
        set_error (Printf.sprintf "%s has clone degree %d" (kind_name n.kind) n.clone);
      if n.out_card < 0. then
        set_error (Printf.sprintf "%s has negative cardinality" (kind_name n.kind)))
    root;
  match !error with None -> Ok () | Some msg -> Error msg

let rec to_string n =
  let children =
    match n.children with
    | [] -> ""
    | cs -> "(" ^ String.concat ", " (List.map to_string cs) ^ ")"
  in
  let clone = if n.clone > 1 then Printf.sprintf "/%d" n.clone else "" in
  let comp = match n.composition with Materialized -> "!" | Pipelined -> "" in
  kind_name n.kind ^ clone ^ comp ^ children

let pp ppf root =
  let rec go indent n =
    Format.fprintf ppf "%s%s  [clone=%d %s card=%.0f%s]@," indent
      (kind_name n.kind) n.clone
      (match n.composition with
      | Pipelined -> "pipelined"
      | Materialized -> "materialized")
      n.out_card
      (match n.partition with
      | None -> ""
      | Some c -> Printf.sprintf " part=r%d.%s" c.Parqo_plan.Ordering.rel c.column);
    List.iter (go (indent ^ "  ")) n.children
  in
  Format.fprintf ppf "@[<v>";
  go "" root;
  Format.fprintf ppf "@]"
