(** Adaptive mid-query re-optimization: plan-level simulation under the
    {!Parqo_sim.Recovery.Replan} policy.

    [simulate] lowers a chosen join tree and runs the fault-injected
    simulator with a re-planner wired in: whenever recovery crosses a
    sync point (a full-loss outage destroys checkpoints, or cumulative
    rework passes the policy threshold), the surviving materialized
    intermediates become base relations of a {e residual} query
    ({!Parqo_cost.Residual}), the machine is degraded by the lost
    resources, and {!Parqo_search.Optimizer.minimize_response_time} is
    re-run under the policy's {!Parqo_search.Budget} (falling back to
    greedy when the budget runs out) — the winning plan's task graph is
    spliced into the running simulation.

    When the policy is not [Replan] — or it never triggers — the result
    is bit-identical to {!Parqo_sim.Simulator.simulate_plan} with the
    same arguments. *)

type replan_record = {
  at : float;  (** simulation time of the splice *)
  trigger : Parqo_sim.Simulator.replan_trigger;
  plan_key : string;  (** canonical key of the chosen residual plan *)
  considered : int;  (** plans considered by the re-optimization *)
  gave_up : bool;  (** the re-optimization budget ran out *)
  n_relations : int;  (** residual query size *)
  n_checkpoints : int;  (** surviving checkpoints turned base relations *)
}

type result = {
  outcome : Parqo_sim.Simulator.outcome;
  records : replan_record list;  (** chronological, one per splice *)
}

val simulate :
  ?mode:Parqo_sim.Simulator.mode ->
  ?faults:Parqo_sim.Fault.config ->
  ?recovery:Parqo_sim.Recovery.policy ->
  ?domains:int ->
  ?max_replans:int ->
  Parqo_cost.Env.t ->
  Parqo_plan.Join_tree.t ->
  result
(** [recovery] defaults to {!Parqo_sim.Recovery.replan}[()], [domains]
    (for the re-optimizations) to [1], [max_replans] to [4]; further
    triggers after the cap fall back to [Restart_from_sync] semantics.
    Degradation is cumulative and pessimistic: a resource lost to a
    full-loss outage is never re-admitted by later re-plans, even after
    the outage expires. *)
