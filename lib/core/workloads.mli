(** Canned databases with materialized rows, used by the examples, the
    integration tests and the benchmarks.

    Each workload returns a {!Parqo_catalog.Datagen.database} (catalog
    with statistics derived from the generated rows, plus the rows
    themselves) and one or more queries against it. *)

val portfolio :
  ?scale:int ->
  seed:int ->
  unit ->
  Parqo_catalog.Datagen.database * Parqo_query.Query.t
(** The decision-support scenario of the paper's introduction: a stock-
    portfolio star schema — [trade] (fact, [scale × 1000] rows) joining
    [stock], [category] and [calendar] dimensions — and the analyst query
    joining all four with a selection on the trading day.
    [scale] defaults to 1. *)

val university :
  seed:int -> unit -> Parqo_catalog.Datagen.database * Parqo_query.Query.t
(** The CTR/CI schema of Example 3 with generated rows: courses meeting
    at times in rooms, taught by instructors; the query projects course
    ids of the join. *)

val chain_db :
  ?n:int ->
  ?rows:int ->
  seed:int ->
  unit ->
  Parqo_catalog.Datagen.database * Parqo_query.Query.t
(** A chain of [n] (default 4) tables of [rows] (default 300) rows where
    table [i+1] holds a foreign key into table [i]; the query joins the
    whole chain.  Used for plan-equivalence checking at executable size. *)

(** A scaled-down TPC-H-like decision-support database (the workload
    class the paper's introduction motivates) and three SPJ analyst
    queries over it, named after their TPC-H inspirations. *)
type tpch = {
  db : Parqo_catalog.Datagen.database;
  q3 : Parqo_query.Query.t;
      (** shipping priority: customer ⋈ orders ⋈ lineitem, selections on
          market segment and order day, ordered by day *)
  q5 : Parqo_query.Query.t;
      (** local supplier volume: the six-way snowflake region ⋈ nation ⋈
          customer ⋈ orders ⋈ lineitem ⋈ supplier, where both customer
          and supplier must sit in the same nation *)
  q10 : Parqo_query.Query.t;
      (** returned items: customer ⋈ orders ⋈ lineitem ⋈ nation with a
          quantity selection *)
}

val tpch : ?scale:int -> seed:int -> unit -> tpch
(** [scale = 1] (default) materializes ~8k rows total (lineitem 6000,
    orders 1500, customer 300, part 200, supplier 100, nation 25,
    region 5), placed across four disks with clustered key indexes. *)

(** {1 Query streams for the serving layer} *)

type arrival = Parqo_sim.Workload.arrival =
  | Uniform of float  (** fixed rate, queries per second *)
  | Poisson of float  (** exponential inter-arrivals, mean rate in qps *)
  | Burst of { size : int; period : float }
      (** [size] simultaneous arrivals every [period] seconds *)

val arrival_to_string : arrival -> string

val arrivals : Parqo_util.Rng.t -> process:arrival -> n:int -> float array
(** [n] non-decreasing arrival instants (seconds from stream start)
    drawn from the process; deterministic in the rng state.  Raises
    [Invalid_argument] on [n < 0] or non-positive rate/size/period. *)

val serving_pool :
  ?n_tables:int ->
  ?max_relations:int ->
  ?pool:int ->
  ?base_card:float ->
  seed:int ->
  unit ->
  Parqo_catalog.Catalog.t * Parqo_query.Query.t array
(** A clique catalog of [n_tables] (default 6) tables and a pool of
    [pool] (default 24) random connected SPJ queries over 2 to
    [max_relations] (default 4) of them — the query population a
    serving benchmark samples from.  Queries keep their relations in
    ascending table order, so re-draws of the same table set share a
    {!Parqo_query.Query.fingerprint} and hit the serving plan cache.
    [base_card] (default 1000.) scales every cardinality: two pools
    from the same seed and different [base_card] share schema and
    queries but disagree on statistics — the "catalog changed, bump the
    epoch" scenario.  Raises [Invalid_argument] when [n_tables < 2],
    [max_relations < 2] or [pool < 1]. *)
