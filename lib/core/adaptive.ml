module Env = Parqo_cost.Env
module Cm = Parqo_cost.Costmodel
module Sim = Parqo_sim.Simulator
module TG = Parqo_sim.Task_graph
module Recovery = Parqo_sim.Recovery
module Fault = Parqo_sim.Fault
module Residual = Parqo_cost.Residual
module Optimizer = Parqo_search.Optimizer
module Stats = Parqo_search.Search_stats
module M = Parqo_machine.Machine
module R = Parqo_machine.Resource
module Parqo_error = Parqo_util.Parqo_error

type replan_record = {
  at : float;
  trigger : Sim.replan_trigger;
  plan_key : string;
  considered : int;
  gave_up : bool;
  n_relations : int;
  n_checkpoints : int;
}

type result = { outcome : Sim.outcome; records : replan_record list }

let simulate ?mode ?faults ?(recovery = Recovery.replan ()) ?(domains = 1)
    ?(max_replans = 4) (env : Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.Env.expand_config
      env.Env.estimator tree
  in
  let g = TG.of_optree env optree in
  match recovery with
  | Recovery.Replan { max_expansions; max_seconds; _ } ->
    let records = ref [] in
    (* the environment the current graph was planned in: survivors'
       op roots speak its relation ids, so each round's residual is
       built against the previous round's environment *)
    let cur_env = ref env in
    let down = ref [] in
    (* observed brownouts, resource id -> most pessimistic factor seen;
       the re-planner treats a brownout as permanent (it cannot know the
       remaining duration), so residual plans are costed — and lowered —
       on the rescaled machine.  Work a residual plan still places on a
       slowed resource is double-discounted while the window lasts; that
       pessimism is exactly what steers placement away from it. *)
    let slows = ref [] in
    (* grown dimensions take ids [base_nr + i] in onset (stable) order,
       matching the simulator's bookkeeping *)
    let grow_schedule =
      match faults with
      | None -> [||]
      | Some fc ->
        Array.of_list
          (List.stable_sort
             (fun (a : Fault.grow) b -> Float.compare a.Fault.g_at b.Fault.g_at)
             fc.Fault.grows)
    in
    let base_nr = M.n_resources env.Env.machine in
    (* the machine as observed at time [at]: base topology, plus every
       grow event online by then, minus lost resources, browned-out ones
       rescaled.  None when the surviving census cannot host a plan. *)
    let machine_at at =
      match
        let m = ref env.Env.machine in
        Array.iteri
          (fun i (gr : Fault.grow) ->
            if gr.Fault.g_at <= at +. 1e-12 then
              m :=
                M.grow ~speed:gr.Fault.g_speed !m
                  [
                    ( gr.Fault.g_kind,
                      Printf.sprintf "%s+%d"
                        (R.kind_to_string gr.Fault.g_kind)
                        (base_nr + i),
                      gr.Fault.g_node );
                  ])
          grow_schedule;
        (match !down with [] -> () | ids -> m := M.degrade !m ~down:ids);
        (match !slows with
        | [] -> ()
        | speeds -> m := M.rescale !m ~speeds);
        !m
      with
      | m -> Some m
      | exception Parqo_error.Error _ -> None
    in
    let round = ref 0 in
    let replanner (s : Sim.snapshot) =
      if !round >= max_replans then None
      else begin
        (match s.Sim.s_trigger with
        | Sim.Checkpoint_loss { resource } -> down := resource :: !down
        | Sim.Slowdown { resource; factor } ->
          let factor =
            match List.assoc_opt resource !slows with
            | None -> factor
            | Some f -> Float.min f factor
          in
          slows := (resource, factor) :: List.remove_assoc resource !slows
        | Sim.Work_inflation _ | Sim.Scale_out _ -> ());
        let survivors =
          List.filter_map
            (fun id -> s.Sim.s_graph.TG.stages.(id).TG.op_root)
            s.Sim.s_survivors
        in
        (* a graph not lowered from an operator tree cannot seed a
           residual query; decline and let Restart_from_sync handle it *)
        if List.length survivors <> List.length s.Sim.s_survivors then None
        else
          match
            match machine_at s.Sim.s_at with
            | None -> Error "machine census cannot host a plan"
            | Some machine ->
              Residual.construct !cur_env ~survivors ~machine ~round:!round
          with
          | Error _ -> None
          | Ok r -> (
            let renv = r.Residual.env in
            let budget =
              { Parqo_search.Budget.max_expansions; max_seconds; deadline = None }
            in
            let config =
              Parqo_search.Space.parallel_config renv.Env.machine
            in
            let outcome =
              Optimizer.minimize_response_time ~config ~budget ~domains renv
            in
            match outcome.Optimizer.best with
            | None -> None
            | Some best ->
              incr round;
              cur_env := renv;
              let plan_key = Parqo_plan.Join_tree.key best.Cm.tree in
              let considered =
                outcome.Optimizer.stats.Stats.considered
              in
              records :=
                {
                  at = s.Sim.s_at;
                  trigger = s.Sim.s_trigger;
                  plan_key;
                  considered;
                  gave_up = outcome.Optimizer.gave_up;
                  n_relations = r.Residual.n_relations;
                  n_checkpoints = List.length r.Residual.checkpoints;
                }
                :: !records;
              Some
                {
                  Sim.new_graph = TG.of_optree renv best.Cm.optree;
                  plan_key;
                  info =
                    Printf.sprintf
                      "%d rels, %d checkpoints, %d considered%s"
                      r.Residual.n_relations
                      (List.length r.Residual.checkpoints)
                      considered
                      (if outcome.Optimizer.gave_up then ", greedy fallback"
                       else "");
                })
      end
    in
    let outcome = Sim.run ?mode ?faults ~recovery ~replanner g in
    { outcome; records = List.rev !records }
  | _ -> { outcome = Sim.run ?mode ?faults ~recovery g; records = [] }
