module Env = Parqo_cost.Env
module Cm = Parqo_cost.Costmodel
module Sim = Parqo_sim.Simulator
module TG = Parqo_sim.Task_graph
module Recovery = Parqo_sim.Recovery
module Residual = Parqo_cost.Residual
module Optimizer = Parqo_search.Optimizer
module Stats = Parqo_search.Search_stats

type replan_record = {
  at : float;
  trigger : Sim.replan_trigger;
  plan_key : string;
  considered : int;
  gave_up : bool;
  n_relations : int;
  n_checkpoints : int;
}

type result = { outcome : Sim.outcome; records : replan_record list }

let simulate ?mode ?faults ?(recovery = Recovery.replan ()) ?(domains = 1)
    ?(max_replans = 4) (env : Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.Env.expand_config
      env.Env.estimator tree
  in
  let g = TG.of_optree env optree in
  match recovery with
  | Recovery.Replan { max_expansions; max_seconds; _ } ->
    let records = ref [] in
    (* the environment the current graph was planned in: survivors'
       op roots speak its relation ids, so each round's residual is
       built against the previous round's environment *)
    let cur_env = ref env in
    let down = ref [] in
    let round = ref 0 in
    let replanner (s : Sim.snapshot) =
      if !round >= max_replans then None
      else begin
        (match s.Sim.s_trigger with
        | Sim.Checkpoint_loss { resource } -> down := resource :: !down
        | Sim.Work_inflation _ -> ());
        let survivors =
          List.filter_map
            (fun id -> s.Sim.s_graph.TG.stages.(id).TG.op_root)
            s.Sim.s_survivors
        in
        (* a graph not lowered from an operator tree cannot seed a
           residual query; decline and let Restart_from_sync handle it *)
        if List.length survivors <> List.length s.Sim.s_survivors then None
        else
          match
            Residual.construct !cur_env ~survivors ~down:!down ~round:!round
          with
          | Error _ -> None
          | Ok r -> (
            let renv = r.Residual.env in
            let budget =
              { Parqo_search.Budget.max_expansions; max_seconds; deadline = None }
            in
            let config =
              Parqo_search.Space.parallel_config renv.Env.machine
            in
            let outcome =
              Optimizer.minimize_response_time ~config ~budget ~domains renv
            in
            match outcome.Optimizer.best with
            | None -> None
            | Some best ->
              incr round;
              cur_env := renv;
              let plan_key = Parqo_plan.Join_tree.key best.Cm.tree in
              let considered =
                outcome.Optimizer.stats.Stats.considered
              in
              records :=
                {
                  at = s.Sim.s_at;
                  trigger = s.Sim.s_trigger;
                  plan_key;
                  considered;
                  gave_up = outcome.Optimizer.gave_up;
                  n_relations = r.Residual.n_relations;
                  n_checkpoints = List.length r.Residual.checkpoints;
                }
                :: !records;
              Some
                {
                  Sim.new_graph = TG.of_optree renv best.Cm.optree;
                  plan_key;
                  info =
                    Printf.sprintf
                      "%d rels, %d checkpoints, %d considered%s"
                      r.Residual.n_relations
                      (List.length r.Residual.checkpoints)
                      considered
                      (if outcome.Optimizer.gave_up then ", greedy fallback"
                       else "");
                })
      end
    in
    let outcome = Sim.run ?mode ?faults ~recovery ~replanner g in
    { outcome; records = List.rev !records }
  | _ -> { outcome = Sim.run ?mode ?faults ~recovery g; records = [] }
