(** A database session: a materialized database plus optimizer settings,
    accepting SQL strings end to end — parse, optimize for response time
    under the session's work budget, execute in parallel, verify against
    the sequential executor.  This is the "downstream user" surface; the
    REPL ([bin/parqo_repl.ml]) is a thin shell over it. *)

type t

type answer = {
  query : Parqo_query.Query.t;
  plan : Parqo_cost.Costmodel.eval;  (** the chosen plan, fully costed *)
  work_optimal : Parqo_cost.Costmodel.eval option;
      (** the traditional optimizer's plan, for comparison *)
  batch : Parqo_exec.Batch.t;  (** the result rows *)
  verified : bool;  (** parallel execution matched the sequential one *)
  elapsed : float;  (** wall-clock seconds spent end to end *)
}

val create :
  ?machine:Parqo_machine.Machine.t ->
  ?bound:Parqo_search.Bounds.t ->
  db:Parqo_catalog.Datagen.database ->
  unit ->
  t
(** [machine] defaults to a 4-node shared-nothing configuration; [bound]
    to a 2x throughput-degradation budget. *)

val of_workload : ?seed:int -> string -> (t, string) result
(** ["tpch"], ["portfolio"], ["university"] or ["chain"]; [seed]
    defaults to 7. *)

val set_bound : t -> Parqo_search.Bounds.t -> unit

val bound : t -> Parqo_search.Bounds.t

val set_faults : t -> Parqo_sim.Fault.config -> unit
(** Fault schedule used by {!simulate}; defaults to
    {!Parqo_sim.Fault.none}. *)

val faults : t -> Parqo_sim.Fault.config

val set_recovery : t -> Parqo_sim.Recovery.policy -> unit
(** Recovery policy used by {!simulate}; defaults to
    {!Parqo_sim.Recovery.default}.  With {!Parqo_sim.Recovery.Replan}
    the simulation re-optimizes the residual query on trigger (see
    {!Adaptive}). *)

val recovery : t -> Parqo_sim.Recovery.policy

val machine : t -> Parqo_machine.Machine.t

val catalog : t -> Parqo_catalog.Catalog.t

val tables : t -> string list

val optimize_query :
  ?budget:Parqo_search.Budget.t ->
  t ->
  Parqo_query.Query.t ->
  (Parqo_cost.Costmodel.eval * bool, string) result
(** Optimize an already-parsed query under the session's bound and an
    optional search budget — the programmatic entry the serving layer
    builds on.  The boolean is the optimizer's [gave_up] flag: the
    budget expired and the plan is the greedy fallback. *)

val sql : t -> string -> (answer, string) result
(** The full pipeline on one SQL string. Errors are parse/validation
    messages. *)

val explain : t -> string -> (string, string) result
(** Parse and optimize only; the rendered operator-tree table. *)

type sim_report = {
  sim_plan : Parqo_cost.Costmodel.eval;  (** the plan that was simulated *)
  sim : Parqo_sim.Simulator.outcome;
  sim_replans : Adaptive.replan_record list;
      (** re-plan splices, when the session policy is [Replan] *)
}

val simulate : t -> string -> (sim_report, string) result
(** Parse, optimize, lower and simulate under the session's fault
    schedule and recovery policy ({!set_faults}/{!set_recovery}) —
    no tuples are executed. *)
