module C = Parqo_catalog
module D = C.Datagen
module Q = Parqo_query.Query
module Rng = Parqo_util.Rng

let portfolio ?(scale = 1) ~seed () =
  let rng = Rng.create seed in
  let specs =
    [
      D.spec ~name:"category" ~rows:12
        ~columns:[ ("cat_id", D.Serial); ("risk", D.Uniform_int (1, 5)) ]
        ~disks:[ 0 ] ();
      D.spec ~name:"stock" ~rows:(100 * scale)
        ~columns:
          [
            ("stock_id", D.Serial);
            ("cat_id", D.Fk "category");
            ("listed", D.Uniform_int (1980, 2020));
          ]
        ~disks:[ 1 ] ();
      D.spec ~name:"calendar" ~rows:250
        ~columns:[ ("day_id", D.Serial); ("month", D.Uniform_int (1, 12)) ]
        ~disks:[ 2 ] ();
      D.spec ~name:"trade" ~rows:(1000 * scale)
        ~columns:
          [
            ("trade_id", D.Serial);
            ("stock_id", D.Fk "stock");
            ("day_id", D.Fk "calendar");
            ("qty", D.Zipf_int (100, 1.1));
            ("price", D.Uniform_float (1., 500.));
          ]
        ~disks:[ 3 ] ();
    ]
  in
  let indexes =
    [
      C.Index.create ~name:"idx_stock_pk" ~table:"stock" ~columns:[ "stock_id" ]
        ~clustered:true ~disk:1 ();
      C.Index.create ~name:"idx_trade_stock" ~table:"trade"
        ~columns:[ "stock_id" ] ~disk:3 ();
      C.Index.create ~name:"idx_cat_pk" ~table:"category" ~columns:[ "cat_id" ]
        ~clustered:true ~disk:0 ();
      C.Index.create ~name:"idx_cal_pk" ~table:"calendar" ~columns:[ "day_id" ]
        ~clustered:true ~disk:2 ();
    ]
  in
  let db = D.materialize ~indexes rng specs in
  let query =
    Q.create
      ~relations:
        [ ("t", "trade"); ("s", "stock"); ("c", "category"); ("d", "calendar") ]
      ~joins:
        [
          {
            Q.left = { Q.rel = 0; column = "stock_id" };
            right = { Q.rel = 1; column = "stock_id" };
          };
          {
            Q.left = { Q.rel = 1; column = "cat_id" };
            right = { Q.rel = 2; column = "cat_id" };
          };
          {
            Q.left = { Q.rel = 0; column = "day_id" };
            right = { Q.rel = 3; column = "day_id" };
          };
        ]
      ~selections:
        [
          {
            Q.on = { Q.rel = 3; column = "month" };
            cmp = Q.Le;
            value = C.Value.Int 3;
          };
        ]
      ~projection:
        [
          { Q.rel = 1; column = "stock_id" };
          { Q.rel = 2; column = "risk" };
          { Q.rel = 0; column = "price" };
        ]
      ()
  in
  (db, query)

let university ~seed () =
  let rng = Rng.create seed in
  let specs =
    [
      D.spec ~name:"ctr" ~rows:600
        ~columns:
          [
            ("course", D.Uniform_int (0, 199));
            ("time", D.Uniform_int (8, 18));
            ("room", D.Uniform_int (100, 160));
          ]
        ~disks:[ 0 ] ();
      D.spec ~name:"ci" ~rows:300
        ~columns:
          [ ("course", D.Uniform_int (0, 199)); ("instructor", D.Uniform_int (0, 99)) ]
        ~disks:[ 0 ] ();
    ]
  in
  let indexes =
    [
      C.Index.create ~name:"i_ct" ~table:"ctr" ~columns:[ "course"; "time" ]
        ~clustered:true ~disk:0 ();
      C.Index.create ~name:"i_cr" ~table:"ctr" ~columns:[ "course"; "room" ]
        ~disk:1 ();
      C.Index.create ~name:"i_c" ~table:"ci" ~columns:[ "course" ] ~disk:0 ();
    ]
  in
  let db = D.materialize ~indexes rng specs in
  let query =
    Q.create
      ~relations:[ ("ctr", "ctr"); ("ci", "ci") ]
      ~joins:
        [
          {
            Q.left = { Q.rel = 0; column = "course" };
            right = { Q.rel = 1; column = "course" };
          };
        ]
      ~projection:[ { Q.rel = 0; column = "course" } ]
      ()
  in
  (db, query)

type tpch = {
  db : D.database;
  q3 : Q.t;
  q5 : Q.t;
  q10 : Q.t;
}

let tpch ?(scale = 1) ~seed () =
  let rng = Rng.create seed in
  let s n = n * scale in
  let specs =
    [
      D.spec ~name:"region" ~rows:5
        ~columns:[ ("r_key", D.Serial); ("r_name", D.String_pool 5) ]
        ~disks:[ 0 ] ();
      D.spec ~name:"nation" ~rows:25
        ~columns:
          [ ("n_key", D.Serial); ("r_key", D.Fk "region"); ("n_name", D.String_pool 25) ]
        ~disks:[ 0 ] ();
      D.spec ~name:"supplier" ~rows:(s 100)
        ~columns:
          [ ("s_key", D.Serial); ("n_key", D.Fk "nation"); ("s_acctbal", D.Uniform_float (0., 10_000.)) ]
        ~disks:[ 1 ] ();
      D.spec ~name:"customer" ~rows:(s 300)
        ~columns:
          [
            ("c_key", D.Serial);
            ("n_key", D.Fk "nation");
            ("c_segment", D.Uniform_int (1, 5));
            ("c_acctbal", D.Uniform_float (0., 10_000.));
          ]
        ~disks:[ 1 ] ();
      D.spec ~name:"part" ~rows:(s 200)
        ~columns:
          [ ("p_key", D.Serial); ("p_brand", D.Uniform_int (1, 25)); ("p_size", D.Uniform_int (1, 50)) ]
        ~disks:[ 2 ] ();
      D.spec ~name:"orders" ~rows:(s 1500)
        ~columns:
          [
            ("o_key", D.Serial);
            ("c_key", D.Fk "customer");
            ("o_day", D.Uniform_int (1, 365));
            ("o_total", D.Uniform_float (10., 10_000.));
          ]
        ~disks:[ 2 ] ();
      D.spec ~name:"lineitem" ~rows:(s 6000)
        ~columns:
          [
            ("l_key", D.Serial);
            ("o_key", D.Fk "orders");
            ("p_key", D.Fk "part");
            ("s_key", D.Fk "supplier");
            ("l_qty", D.Zipf_int (50, 1.0));
            ("l_price", D.Uniform_float (1., 1_000.));
          ]
        ~disks:[ 3 ] ();
    ]
  in
  let key_index ?(clustered = true) table column disk =
    C.Index.create
      ~name:(Printf.sprintf "idx_%s_%s" table column)
      ~table ~columns:[ column ] ~clustered ~disk ()
  in
  let indexes =
    [
      key_index "nation" "n_key" 0;
      key_index "supplier" "s_key" 1;
      key_index "customer" "c_key" 1;
      key_index "part" "p_key" 2;
      key_index "orders" "o_key" 2;
      key_index ~clustered:false "orders" "c_key" 2;
      key_index ~clustered:false "lineitem" "o_key" 3;
    ]
  in
  let db = D.materialize ~indexes rng specs in
  let r rel column = { Q.rel; column } in
  let q3 =
    (* SELECT ... FROM customer c, orders o, lineitem l
       WHERE c.c_key = o.c_key AND o.o_key = l.o_key
         AND c.c_segment = 1 AND o.o_day <= 90 ORDER BY o.o_day *)
    Q.create
      ~relations:[ ("c", "customer"); ("o", "orders"); ("l", "lineitem") ]
      ~joins:
        [
          { Q.left = r 0 "c_key"; right = r 1 "c_key" };
          { Q.left = r 1 "o_key"; right = r 2 "o_key" };
        ]
      ~selections:
        [
          { Q.on = r 0 "c_segment"; cmp = Q.Eq; value = C.Value.Int 1 };
          { Q.on = r 1 "o_day"; cmp = Q.Le; value = C.Value.Int 90 };
        ]
      ~projection:[ r 1 "o_key"; r 1 "o_day"; r 2 "l_price" ]
      ~order_by:[ r 1 "o_day" ]
      ()
  in
  let q5 =
    (* region ⋈ nation ⋈ customer ⋈ orders ⋈ lineitem ⋈ supplier, with the
       local-supplier condition s.n_key = c.n_key via the shared nation *)
    Q.create
      ~relations:
        [
          ("r", "region"); ("n", "nation"); ("c", "customer");
          ("o", "orders"); ("l", "lineitem"); ("s", "supplier");
        ]
      ~joins:
        [
          { Q.left = r 0 "r_key"; right = r 1 "r_key" };
          { Q.left = r 1 "n_key"; right = r 2 "n_key" };
          { Q.left = r 2 "c_key"; right = r 3 "c_key" };
          { Q.left = r 3 "o_key"; right = r 4 "o_key" };
          { Q.left = r 4 "s_key"; right = r 5 "s_key" };
          { Q.left = r 5 "n_key"; right = r 1 "n_key" };
        ]
      ~selections:[ { Q.on = r 3 "o_day"; cmp = Q.Le; value = C.Value.Int 180 } ]
      ~projection:[ r 1 "n_name"; r 4 "l_price" ]
      ()
  in
  let q10 =
    Q.create
      ~relations:
        [ ("c", "customer"); ("o", "orders"); ("l", "lineitem"); ("n", "nation") ]
      ~joins:
        [
          { Q.left = r 0 "c_key"; right = r 1 "c_key" };
          { Q.left = r 1 "o_key"; right = r 2 "o_key" };
          { Q.left = r 0 "n_key"; right = r 3 "n_key" };
        ]
      ~selections:[ { Q.on = r 2 "l_qty"; cmp = Q.Ge; value = C.Value.Int 40 } ]
      ~projection:[ r 0 "c_key"; r 3 "n_name"; r 2 "l_price" ]
      ()
  in
  { db; q3; q5; q10 }

(* ---------------------------------------------------------------- *)
(* query streams for the serving layer                               *)

(* Arrival processes live in [Parqo_sim.Workload] so the workload
   scheduler and the serving layer share one stream implementation;
   this module re-exports them under the historical names. *)

type arrival = Parqo_sim.Workload.arrival =
  | Uniform of float
  | Poisson of float
  | Burst of { size : int; period : float }

let arrival_to_string = Parqo_sim.Workload.arrival_to_string
let arrivals = Parqo_sim.Workload.arrivals

let serving_pool ?(n_tables = 6) ?(max_relations = 4) ?(pool = 24)
    ?(base_card = 1000.) ~seed () =
  if n_tables < 2 then invalid_arg "Workloads.serving_pool: n_tables < 2";
  if max_relations < 2 then
    invalid_arg "Workloads.serving_pool: max_relations < 2";
  if pool < 1 then invalid_arg "Workloads.serving_pool: pool < 1";
  (* a clique catalog has a join column between every table pair, so any
     subset of tables supports any connected sub-query; [base_card] is
     the knob a "catalog change" turns without touching the schema, so
     the same pool remains valid across epochs *)
  let spec =
    {
      (Parqo_query.Query_gen.default_spec Parqo_query.Query_gen.Clique n_tables)
      with
      Parqo_query.Query_gen.base_card;
    }
  in
  let catalog, _clique = Parqo_query.Query_gen.generate spec in
  let rng = Rng.create seed in
  let ids = Array.init n_tables Fun.id in
  let queries =
    Array.init pool (fun _ ->
        let k = 2 + Rng.int rng (min max_relations n_tables - 1) in
        Rng.shuffle rng ids;
        (* ascending table order canonicalizes relation ids, so distinct
           draws of the same table set share a fingerprint (cache hits) *)
        let chosen = Array.sub ids 0 k in
        Array.sort compare chosen;
        let col i j = Printf.sprintf "j%d_%d" (min i j) (max i j) in
        let pred a b =
          {
            Q.left = { Q.rel = a; column = col chosen.(a) chosen.(b) };
            right = { Q.rel = b; column = col chosen.(a) chosen.(b) };
          }
        in
        let joins = ref [] in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            (* spanning path over the sorted subset, plus random extras *)
            if b = a + 1 || Rng.float rng 1. < 0.3 then
              joins := pred a b :: !joins
          done
        done;
        let selections =
          if Rng.bool rng then
            [
              {
                Q.on = { Q.rel = Rng.int rng k; column = "val" };
                cmp = Q.Le;
                value = C.Value.Int (100 * (1 + Rng.int rng 9));
              };
            ]
          else []
        in
        Q.create
          ~relations:
            (Array.to_list
               (Array.map
                  (fun i ->
                    let t = Printf.sprintf "t%d" i in
                    (t, t))
                  chosen))
          ~joins:(List.rev !joins) ~selections ())
  in
  (catalog, queries)

let chain_db ?(n = 4) ?(rows = 300) ~seed () =
  if n < 1 then invalid_arg "Workloads.chain_db: n < 1";
  let rng = Rng.create seed in
  let specs =
    List.init n (fun i ->
        let fk =
          if i = 0 then [] else [ (Printf.sprintf "fk%d" (i - 1), D.Fk (Printf.sprintf "c%d" (i - 1))) ]
        in
        D.spec
          ~name:(Printf.sprintf "c%d" i)
          ~rows
          ~columns:
            ((("pk", D.Serial) :: fk) @ [ ("payload", D.Uniform_int (0, 9)) ])
          ~disks:[ i mod 4 ] ())
  in
  let db = D.materialize rng specs in
  let query =
    Q.create
      ~relations:(List.init n (fun i -> (Printf.sprintf "c%d" i, Printf.sprintf "c%d" i)))
      ~joins:
        (List.init (n - 1) (fun i ->
             {
               Q.left = { Q.rel = i; column = "pk" };
               right = { Q.rel = i + 1; column = Printf.sprintf "fk%d" i };
             }))
      ()
  in
  (db, query)
