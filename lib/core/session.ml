module D = Parqo_catalog.Datagen
module Cm = Parqo_cost.Costmodel

type t = {
  db : D.database;
  machine : Parqo_machine.Machine.t;
  mutable bound : Parqo_search.Bounds.t;
  mutable faults : Parqo_sim.Fault.config;
  mutable recovery : Parqo_sim.Recovery.policy;
}

type answer = {
  query : Parqo_query.Query.t;
  plan : Cm.eval;
  work_optimal : Cm.eval option;
  batch : Parqo_exec.Batch.t;
  verified : bool;
  elapsed : float;
}

let create ?machine ?(bound = Parqo_search.Bounds.Throughput_degradation 2.0)
    ~db () =
  let machine =
    match machine with
    | Some m -> m
    | None -> Parqo_machine.Machine.shared_nothing ~nodes:4 ()
  in
  {
    db;
    machine;
    bound;
    faults = Parqo_sim.Fault.none;
    recovery = Parqo_sim.Recovery.default;
  }

let of_workload ?(seed = 7) name =
  match String.lowercase_ascii name with
  | "tpch" -> Ok (create ~db:(Workloads.tpch ~seed ()).Workloads.db ())
  | "portfolio" -> Ok (create ~db:(fst (Workloads.portfolio ~seed ())) ())
  | "university" -> Ok (create ~db:(fst (Workloads.university ~seed ())) ())
  | "chain" -> Ok (create ~db:(fst (Workloads.chain_db ~seed ())) ())
  | other -> Error (Printf.sprintf "unknown workload %S (try tpch, portfolio, university, chain)" other)

let set_bound t bound = t.bound <- bound
let bound t = t.bound
let set_faults t faults = t.faults <- faults
let faults t = t.faults
let set_recovery t recovery = t.recovery <- recovery
let recovery t = t.recovery
let machine t = t.machine
let catalog t = t.db.D.catalog

let tables t =
  List.map (fun (tb : Parqo_catalog.Table.t) -> tb.Parqo_catalog.Table.name)
    (Parqo_catalog.Catalog.tables (catalog t))

let optimize t text =
  match Parqo_query.Parser.parse ~catalog:(catalog t) text with
  | Error e -> Error e
  | Ok query -> (
    let env =
      Parqo_cost.Env.create ~machine:t.machine ~catalog:(catalog t) ~query ()
    in
    let config = Parqo_search.Space.parallel_config t.machine in
    let outcome =
      Parqo_search.Optimizer.minimize_response_time ~config ~bound:t.bound env
    in
    match outcome.Parqo_search.Optimizer.best with
    | None -> Error "no plan found"
    | Some plan ->
      Ok (env, query, plan, outcome.Parqo_search.Optimizer.work_optimal))

let optimize_query ?budget t query =
  let env =
    Parqo_cost.Env.create ~machine:t.machine ~catalog:(catalog t) ~query ()
  in
  let config = Parqo_search.Space.parallel_config t.machine in
  let outcome =
    Parqo_search.Optimizer.minimize_response_time ~config ~bound:t.bound
      ?budget env
  in
  match outcome.Parqo_search.Optimizer.best with
  | None -> Error "no plan found"
  | Some plan -> Ok (plan, outcome.Parqo_search.Optimizer.gave_up)

let sql t text =
  let t0 = Unix.gettimeofday () in
  match optimize t text with
  | Error e -> Error e
  | Ok (_env, query, plan, work_optimal) ->
    let batch = Parqo_exec.Parallel_exec.run_query t.db query plan.Cm.optree in
    let verified =
      Parqo_exec.Batch.equal_bags batch
        (Parqo_exec.Executor.run_query t.db query plan.Cm.tree)
    in
    Ok
      {
        query;
        plan;
        work_optimal;
        batch;
        verified;
        elapsed = Unix.gettimeofday () -. t0;
      }

let explain t text =
  match optimize t text with
  | Error e -> Error e
  | Ok (env, _query, plan, _) ->
    Ok (Parqo_cost.Explain.explain_plan env plan.Cm.tree)

type sim_report = {
  sim_plan : Cm.eval;
  sim : Parqo_sim.Simulator.outcome;
  sim_replans : Adaptive.replan_record list;
}

let simulate t text =
  match optimize t text with
  | Error e -> Error e
  | Ok (env, _query, plan, _) ->
    let result =
      Adaptive.simulate ~faults:t.faults ~recovery:t.recovery env plan.Cm.tree
    in
    Ok
      {
        sim_plan = plan;
        sim = result.Adaptive.outcome;
        sim_replans = result.Adaptive.records;
      }
