(** PARQO — a parallel query optimizer reproducing "Query Optimization for
    Parallel Execution" (Ganguly, Hasan, Krishnamurthy; SIGMOD 1992).

    This module is the library facade: it re-exports every subsystem
    under one namespace and adds the paper's worked scenarios
    ({!Scenarios}) and canned databases ({!Workloads}).

    The typical flow:
    {[
      let catalog, query = Parqo.Query_gen.generate spec in
      let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
      let env = Parqo.Env.create ~machine ~catalog ~query () in
      let outcome =
        Parqo.Optimizer.minimize_response_time
          ~bound:(Parqo.Bounds.Throughput_degradation 2.0) env
      in
      ...
    ]} *)

(* utilities *)
module Bitset = Parqo_util.Bitset
module Vecf = Parqo_util.Vecf
module Rng = Parqo_util.Rng
module Combin = Parqo_util.Combin
module Tableau = Parqo_util.Tableau
module Statsu = Parqo_util.Statsu
module Pqueue = Parqo_util.Pqueue
module Parqo_error = Parqo_util.Parqo_error
module Domain_pool = Parqo_util.Domain_pool
module Plan_cache = Parqo_util.Plan_cache

(* machine *)
module Resource = Parqo_machine.Resource
module Machine = Parqo_machine.Machine

(* catalog and data *)
module Value = Parqo_catalog.Value
module Stats = Parqo_catalog.Stats
module Table = Parqo_catalog.Table
module Index = Parqo_catalog.Index
module Catalog = Parqo_catalog.Catalog
module Datagen = Parqo_catalog.Datagen

(* queries *)
module Query = Parqo_query.Query
module Sql = Parqo_query.Parser
module Query_gen = Parqo_query.Query_gen

(* plans *)
module Join_method = Parqo_plan.Join_method
module Access_path = Parqo_plan.Access_path
module Ordering = Parqo_plan.Ordering
module Join_tree = Parqo_plan.Join_tree
module Plan_io = Parqo_plan.Plan_io
module Estimator = Parqo_plan.Estimator
module Props = Parqo_plan.Props

(* operator trees *)
module Op = Parqo_optree.Op
module Expand = Parqo_optree.Expand

(* cost model *)
module Rvec = Parqo_cost.Rvec
module Tdesc = Parqo_cost.Tdesc
module Descriptor = Parqo_cost.Descriptor
module Opcost = Parqo_cost.Opcost
module Faultcost = Parqo_cost.Faultcost
module Placement = Parqo_cost.Placement
module Env = Parqo_cost.Env
module Costmodel = Parqo_cost.Costmodel
module Explain = Parqo_cost.Explain

(* search *)
module Space = Parqo_search.Space
module Metric = Parqo_search.Metric
module Cover = Parqo_search.Cover
module Dp = Parqo_search.Dp
module Podp = Parqo_search.Podp
module Bushy = Parqo_search.Bushy
module Brute = Parqo_search.Brute
module Greedy = Parqo_search.Greedy
module Twophase = Parqo_search.Twophase
module Random_plans = Parqo_search.Random_plans
module Bounds = Parqo_search.Bounds
module Budget = Parqo_search.Budget
module Optimizer = Parqo_search.Optimizer
module Search_stats = Parqo_search.Search_stats

(* execution *)
module Task_graph = Parqo_sim.Task_graph
module Fault = Parqo_sim.Fault
module Recovery = Parqo_sim.Recovery
module Simulator = Parqo_sim.Simulator
module Scheduler = Parqo_sim.Scheduler
module Residual = Parqo_cost.Residual
module Adaptive = Adaptive
module Batch = Parqo_exec.Batch
module Executor = Parqo_exec.Executor
module Parallel_exec = Parqo_exec.Parallel_exec
module Iterator = Parqo_exec.Iterator

module Scenarios = Scenarios
module Workloads = Workloads
module Session = Session
