type t = { max_expansions : int option; max_seconds : float option }

let unlimited = { max_expansions = None; max_seconds = None }
let expansions n = { unlimited with max_expansions = Some n }
let seconds s = { unlimited with max_seconds = Some s }

let is_unlimited b = b.max_expansions = None && b.max_seconds = None

type tracker = { budget : t; mutable used : int; started : float }

let start budget = { budget; used = 0; started = Sys.time () }
let tick tr n = tr.used <- tr.used + n
let spent tr = tr.used

let exhausted tr =
  (match tr.budget.max_expansions with
  | Some cap -> tr.used >= cap
  | None -> false)
  ||
  match tr.budget.max_seconds with
  | Some cap -> Sys.time () -. tr.started >= cap
  | None -> false
