type t = { max_expansions : int option; max_seconds : float option }

let unlimited = { max_expansions = None; max_seconds = None }
let expansions n = { unlimited with max_expansions = Some n }
let seconds s = { unlimited with max_seconds = Some s }

let is_unlimited b = b.max_expansions = None && b.max_seconds = None

(* Wall clock, not [Sys.time]: process CPU time accumulates across every
   running domain, so a k-domain search would burn a time cap ~k times
   too fast (and sleep/IO would not count at all). *)
let now () = Unix.gettimeofday ()

type tracker = { budget : t; used : int Atomic.t; started : float }

let start budget = { budget; used = Atomic.make 0; started = now () }
let tick tr n = ignore (Atomic.fetch_and_add tr.used n)
let spent tr = Atomic.get tr.used
let elapsed tr = now () -. tr.started

let exhausted tr =
  (match tr.budget.max_expansions with
  | Some cap -> Atomic.get tr.used >= cap
  | None -> false)
  ||
  match tr.budget.max_seconds with
  | Some cap -> now () -. tr.started >= cap
  | None -> false
