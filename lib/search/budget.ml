type t = {
  max_expansions : int option;
  max_seconds : float option;
  deadline : float option;
}

let unlimited = { max_expansions = None; max_seconds = None; deadline = None }
let expansions n = { unlimited with max_expansions = Some n }
let seconds s = { unlimited with max_seconds = Some s }
let deadline at = { unlimited with deadline = Some at }
let until at b = { b with deadline = Some at }

let is_unlimited b =
  b.max_expansions = None && b.max_seconds = None && b.deadline = None

(* Wall clock, not [Sys.time]: process CPU time accumulates across every
   running domain, so a k-domain search would burn a time cap ~k times
   too fast (and sleep/IO would not count at all). *)
let now () = Unix.gettimeofday ()

type tracker = { budget : t; used : int Atomic.t; started : float }

let start budget = { budget; used = Atomic.make 0; started = now () }
let tick tr n = ignore (Atomic.fetch_and_add tr.used n)
let spent tr = Atomic.get tr.used
let elapsed tr = now () -. tr.started

let exhausted tr =
  (match tr.budget.max_expansions with
  | Some cap -> Atomic.get tr.used >= cap
  | None -> false)
  || (match (tr.budget.max_seconds, tr.budget.deadline) with
     | None, None -> false
     | cap, dl ->
       (* one clock read covers both time caps *)
       let t = now () in
       (match cap with Some c -> t -. tr.started >= c | None -> false)
       || match dl with Some d -> t >= d | None -> false)

let remaining_seconds tr =
  let of_cap = function
    | None -> None
    | Some limit -> Some (Float.max 0. limit)
  in
  let t = now () in
  let candidates =
    List.filter_map Fun.id
      [
        of_cap
          (Option.map (fun c -> tr.started +. c -. t) tr.budget.max_seconds);
        of_cap (Option.map (fun d -> d -. t) tr.budget.deadline);
      ]
  in
  match candidates with
  | [] -> None
  | xs -> Some (List.fold_left Float.min infinity xs)
