(** Figure 2: partial-order dynamic programming over left-deep join trees.

    Instead of one optimal plan per relation subset, a cover set of
    incomparable plans (under the pruning metric's partial order) is kept;
    the final answer is the best-ranked member of the cover for the full
    set.  An optional work cap (from {!Bounds}) prunes partial plans —
    work only grows along extensions, so the cap is admissible, and "in
    fact cut[s] down the search space" (§6.4).

    The level loop is domain-parallel: a size-[k] subset's cover depends
    only on size-[k-1] memo entries, so each level's subsets are
    partitioned across a domain pool (levels are barriers) and the
    per-subset covers are merged back in increasing mask order.  Exact
    rank ties in beam pruning and final selection are broken by a stable
    plan key, so the [domains > 1] result is bit-identical to the
    sequential one. *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
  cover : Parqo_cost.Costmodel.eval list;
      (** final cover set for the full relation set *)
  stats : Search_stats.t;
  level_sizes : int array;  (** total plans stored per cardinality *)
  gave_up : bool;
      (** the budget ran out before the search completed; [best] may be
          [None] or of poor quality — callers should fall back *)
}

val optimize :
  ?config:Space.config ->
  ?rank:(Parqo_cost.Costmodel.eval -> float) ->
  ?work_cap:float ->
  ?final_filter:(Parqo_cost.Costmodel.eval -> bool) ->
  ?max_cover:int ->
  ?budget:Budget.t ->
  ?domains:int ->
  ?pool:Parqo_util.Domain_pool.t ->
  ?plan_cache:bool ->
  metric:Metric.t ->
  Parqo_cost.Env.t ->
  result
(** [rank] (default response time) selects among the final cover;
    [final_filter] (default accept-all) implements exact bound checks
    that are valid only on complete plans (cost–benefit ratio);
    [max_cover] (default unbounded) beam-bounds each cover set by [rank],
    trading the exactness of Figure 2 for scalability on metrics with
    many dimensions; [budget] (default unlimited) stops expanding
    subsets once exhausted and reports [gave_up] — access plans are
    always generated, remaining subsets are skipped.

    [domains] (default 1 — strictly sequential, no domain is spawned)
    sizes the worker pool for the level loop; the pool clamps it to the
    machine's cores (see {!Parqo_util.Domain_pool.create}).  [pool]
    supplies a persistent pool instead — the pool is reused as-is
    (workers stay parked between searches, [domains] is ignored) and the
    caller keeps ownership; without it a pool is created and shut down
    around this search.  With an unlimited budget the result is
    bit-identical for every [domains] value and pool width; under a
    budget workers flush expansion ticks in batches and check exhaustion
    once per claimed chunk, so the cap binds globally but which subsets
    get skipped near exhaustion may differ (an exhausted budget reports
    [gave_up] in every case).

    [plan_cache] (default on) evaluates candidates incrementally through
    a {!Parqo_cost.Costmodel.cache}: every extension reuses the memoized
    outer sub-plan's expansion and descriptor, so only the new root
    operators are costed.  The cache holds the memo winners plus the
    access-plan leaves — not the candidate stream — and the result is
    bit-identical with the cache off. *)
