module Cm = Parqo_cost.Costmodel
module M = Parqo_machine.Machine
module Vecf = Parqo_util.Vecf

type t = {
  name : string;
  arity : int;
  dims : Cm.eval -> float array;
  fill : (Cm.eval -> float array -> unit) option;
  refines : (Cm.eval -> Cm.eval -> bool) option;
}

let dominates m a b =
  let da = m.dims a and db = m.dims b in
  Vecf.dominates (Vecf.of_array da) (Vecf.of_array db)
  && match m.refines with None -> true | Some r -> r a b

let n_dims m _ = m.arity

let fill_dims m e dst =
  match m.fill with
  | Some f -> f e dst
  | None ->
    let a = m.dims e in
    Array.blit a 0 dst 0 (Array.length a)

let work =
  {
    name = "work";
    arity = 1;
    dims = (fun e -> [| e.Cm.work |]);
    fill = Some (fun e dst -> dst.(0) <- e.Cm.work);
    refines = None;
  }

let response_time =
  {
    name = "response-time";
    arity = 1;
    dims = (fun e -> [| e.Cm.response_time |]);
    fill = Some (fun e dst -> dst.(0) <- e.Cm.response_time);
    refines = None;
  }

let aggregate_work machine agg (w : Vecf.t) =
  let groups, group_of = M.aggregate machine agg in
  let out = Array.make groups 0. in
  for i = 0 to Vecf.dim w - 1 do
    out.(group_of i) <- out.(group_of i) +. Vecf.get w i
  done;
  out

let resource_vector machine agg =
  let groups, group_of = M.aggregate machine agg in
  {
    name = Printf.sprintf "resource-vector/%d" groups;
    arity = 1 + groups;
    dims =
      (fun e ->
        let d = e.Cm.descriptor in
        Array.append
          [| Parqo_cost.Descriptor.response_time d |]
          (aggregate_work machine agg (Parqo_cost.Descriptor.work_vector d)));
    fill =
      Some
        (fun e dst ->
          let d = e.Cm.descriptor in
          dst.(0) <- Parqo_cost.Descriptor.response_time d;
          for g = 0 to groups - 1 do
            dst.(1 + g) <- 0.
          done;
          let w = Parqo_cost.Descriptor.work_vector d in
          for i = 0 to Vecf.dim w - 1 do
            let g = 1 + group_of i in
            dst.(g) <- dst.(g) +. Vecf.get w i
          done);
    refines = None;
  }

let descriptor machine agg =
  let groups, group_of = M.aggregate machine agg in
  {
    name = Printf.sprintf "descriptor/%d" groups;
    arity = 2 + (2 * groups);
    dims =
      (fun e ->
        let d = e.Cm.descriptor in
        let rf = d.Parqo_cost.Descriptor.rf and rl = d.Parqo_cost.Descriptor.rl in
        let residual = Parqo_cost.Rvec.residual rl rf in
        Array.concat
          [
            [| rf.Parqo_cost.Rvec.time; residual.Parqo_cost.Rvec.time |];
            aggregate_work machine agg rf.Parqo_cost.Rvec.work;
            aggregate_work machine agg residual.Parqo_cost.Rvec.work;
          ]);
    fill =
      (* single pass over the resources: per-group first-tuple work,
         per-group residual work (clamped subtraction, same float ops as
         [Rvec.residual]) and the residual's busiest coordinate, staged
         in [dst.(1)] — values identical to the [dims] thunk's *)
      Some
        (fun e dst ->
          let d = e.Cm.descriptor in
          let rf = d.Parqo_cost.Descriptor.rf
          and rl = d.Parqo_cost.Descriptor.rl in
          for g = 0 to groups - 1 do
            dst.(2 + g) <- 0.;
            dst.(2 + groups + g) <- 0.
          done;
          let wf = rf.Parqo_cost.Rvec.work and wl = rl.Parqo_cost.Rvec.work in
          dst.(1) <- neg_infinity;
          for i = 0 to Vecf.dim wf - 1 do
            let f = Vecf.get wf i in
            let res = Float.max 0. (Vecf.get wl i -. f) in
            let g = group_of i in
            dst.(2 + g) <- dst.(2 + g) +. f;
            dst.(2 + groups + g) <- dst.(2 + groups + g) +. res;
            dst.(1) <- Float.max dst.(1) res
          done;
          dst.(0) <- rf.Parqo_cost.Rvec.time;
          dst.(1) <-
            Float.max dst.(1)
              (Float.max 0.
                 (rl.Parqo_cost.Rvec.time -. rf.Parqo_cost.Rvec.time)));
    refines = None;
  }

let expected_makespan (env : Parqo_cost.Env.t) ~fault_rate =
  let dim e =
    Parqo_cost.Faultcost.expected_response_time env ~fault_rate e
  in
  {
    name = Printf.sprintf "expected-makespan/f=%.3f" fault_rate;
    arity = 2;
    dims = (fun e -> [| dim e; e.Cm.work |]);
    fill =
      Some
        (fun e dst ->
          dst.(0) <- dim e;
          dst.(1) <- e.Cm.work);
    refines = None;
  }

let contention_rank ~pressure (e : Cm.eval) =
  let w = Parqo_cost.Descriptor.work_vector e.Cm.descriptor in
  let n = min (Array.length pressure) (Vecf.dim w) in
  let acc = Array.make 1 e.Cm.response_time in
  for r = 0 to n - 1 do
    acc.(0) <- acc.(0) +. (pressure.(r) *. Vecf.get w r)
  done;
  acc.(0)

let contended ~pressure =
  let peak = Array.fold_left Float.max 0. pressure in
  {
    name = Printf.sprintf "contended/%.2f" peak;
    arity = 2;
    dims = (fun e -> [| contention_rank ~pressure e; e.Cm.work |]);
    fill =
      Some
        (fun e dst ->
          dst.(0) <- contention_rank ~pressure e;
          dst.(1) <- e.Cm.work);
    refines = None;
  }

let with_partitioning m =
  let key (e : Cm.eval) =
    let root = e.Cm.optree in
    (root.Parqo_optree.Op.partition, root.Parqo_optree.Op.clone)
  in
  let same a b = key a = key b in
  let refines =
    match m.refines with
    | None -> same
    | Some r -> fun a b -> r a b && same a b
  in
  { m with name = m.name ^ "+partitioning"; refines = Some refines }

let with_ordering m =
  let subsumes a b =
    Parqo_plan.Ordering.subsumes a.Cm.ordering b.Cm.ordering
  in
  let refines =
    match m.refines with
    | None -> subsumes
    | Some r -> fun a b -> r a b && subsumes a b
  in
  { m with name = m.name ^ "+ordering"; refines = Some refines }

let pp ppf m = Format.pp_print_string ppf m.name
