module Cm = Parqo_cost.Costmodel
module M = Parqo_machine.Machine
module Vecf = Parqo_util.Vecf

type t = {
  name : string;
  dims : Cm.eval -> float array;
  refines : (Cm.eval -> Cm.eval -> bool) option;
}

let dominates m a b =
  let da = m.dims a and db = m.dims b in
  Vecf.dominates (Vecf.of_array da) (Vecf.of_array db)
  && match m.refines with None -> true | Some r -> r a b

let n_dims m e = Array.length (m.dims e)

let work = { name = "work"; dims = (fun e -> [| e.Cm.work |]); refines = None }

let response_time =
  { name = "response-time"; dims = (fun e -> [| e.Cm.response_time |]); refines = None }

let aggregate_work machine agg (w : Vecf.t) =
  let groups, group_of = M.aggregate machine agg in
  let out = Array.make groups 0. in
  for i = 0 to Vecf.dim w - 1 do
    out.(group_of i) <- out.(group_of i) +. Vecf.get w i
  done;
  out

let resource_vector machine agg =
  {
    name = Printf.sprintf "resource-vector/%d" (fst (M.aggregate machine agg));
    dims =
      (fun e ->
        let d = e.Cm.descriptor in
        Array.append
          [| Parqo_cost.Descriptor.response_time d |]
          (aggregate_work machine agg (Parqo_cost.Descriptor.work_vector d)));
    refines = None;
  }

let descriptor machine agg =
  {
    name = Printf.sprintf "descriptor/%d" (fst (M.aggregate machine agg));
    dims =
      (fun e ->
        let d = e.Cm.descriptor in
        let rf = d.Parqo_cost.Descriptor.rf and rl = d.Parqo_cost.Descriptor.rl in
        let residual = Parqo_cost.Rvec.residual rl rf in
        Array.concat
          [
            [| rf.Parqo_cost.Rvec.time; residual.Parqo_cost.Rvec.time |];
            aggregate_work machine agg rf.Parqo_cost.Rvec.work;
            aggregate_work machine agg residual.Parqo_cost.Rvec.work;
          ]);
    refines = None;
  }

let expected_makespan (env : Parqo_cost.Env.t) ~fault_rate =
  {
    name = Printf.sprintf "expected-makespan/f=%.3f" fault_rate;
    dims =
      (fun e ->
        [|
          Parqo_cost.Faultcost.expected_response_time env ~fault_rate e;
          e.Cm.work;
        |]);
    refines = None;
  }

let contention_rank ~pressure (e : Cm.eval) =
  let w = Parqo_cost.Descriptor.work_vector e.Cm.descriptor in
  let n = min (Array.length pressure) (Vecf.dim w) in
  let acc = ref e.Cm.response_time in
  for r = 0 to n - 1 do
    acc := !acc +. (pressure.(r) *. Vecf.get w r)
  done;
  !acc

let contended ~pressure =
  let peak = Array.fold_left Float.max 0. pressure in
  {
    name = Printf.sprintf "contended/%.2f" peak;
    dims = (fun e -> [| contention_rank ~pressure e; e.Cm.work |]);
    refines = None;
  }

let with_partitioning m =
  let key (e : Cm.eval) =
    let root = e.Cm.optree in
    (root.Parqo_optree.Op.partition, root.Parqo_optree.Op.clone)
  in
  let same a b = key a = key b in
  let refines =
    match m.refines with
    | None -> same
    | Some r -> fun a b -> r a b && same a b
  in
  { m with name = m.name ^ "+partitioning"; refines = Some refines }

let with_ordering m =
  let subsumes a b =
    Parqo_plan.Ordering.subsumes a.Cm.ordering b.Cm.ordering
  in
  let refines =
    match m.refines with
    | None -> subsumes
    | Some r -> fun a b -> r a b && subsumes a b
  in
  { m with name = m.name ^ "+ordering"; refines = Some refines }

let pp ppf m = Format.pp_print_string ppf m.name
