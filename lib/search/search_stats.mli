(** Instrumentation of the search algorithms, measured in the units of the
    paper's Table 1: "time complexity" is the number of plans considered
    (accessPlan/joinPlan invocations), "space complexity" the maximum
    number of plans stored.

    In addition to the global counters, the partial-order DP records one
    {!level} entry per subset cardinality it completes, in level order —
    the raw material for the parallel-search benchmark (per-level wall
    time and the domain count that produced it). *)

type level = {
  level : int;  (** subset cardinality (1 = access plans) *)
  subsets : int;  (** subsets processed at this level *)
  stored : int;  (** plans stored across the level's cover sets *)
  cover_max : int;  (** largest (pre-beam) cover set at this level *)
  wall_ms : float;  (** wall-clock time spent on the level *)
  domains : int;  (** domains that worked on the level *)
}

type t = {
  mutable considered : int;
      (** accessPlan / joinPlan invocations (Table 1 time unit) *)
  mutable generated : int;
      (** candidate plans actually costed (our joinPlan returns a
          candidate set; this is the constant-factor-finer count) *)
  mutable stored_peak : int;
      (** maximum plans simultaneously retained across the memo table *)
  mutable cover_max : int;
      (** largest cover set encountered (the paper's [k], bounded by
          [2^l] under Theorem 3) *)
  mutable levels : level list;  (** internal; read via {!levels} *)
  mutable pool : Parqo_util.Domain_pool.stats;
      (** what the domain pool actually did for this search: worker
          domains spawned (0 when the search reused a persistent pool or
          ran sequentially), parallel vs. fast-pathed regions, and worker
          parks — the honest counterpart of each level's [domains]
          field. *)
  mutable minor_words : float;
      (** words allocated on the coordinator's minor heap during the
          search — the allocation-per-plan currency of the cost-path
          benchmarks *)
  mutable major_words : float;
      (** words allocated directly on / promoted to the coordinator's
          major heap during the search *)
}

val create : unit -> t

val considered : t -> int -> unit
(** Add to the considered counter. *)

val generated : t -> int -> unit

val observe_stored : t -> int -> unit
(** Record a current storage level; keeps the peak. *)

val observe_cover : t -> int -> unit

val observe_level : t -> level -> unit
(** Append a completed level's record.  Callers must observe levels in
    increasing level order; {!levels} returns them in recording order. *)

val levels : t -> level list
(** Per-level records in the order they were observed. *)

val observe_pool : t -> Parqo_util.Domain_pool.stats -> unit
(** Record the pool counters this search contributed (already
    differenced when the pool persists across searches). *)

val observe_gc : t -> before:Gc.stat -> after:Gc.stat -> unit
(** Accumulate the allocation delta between two [Gc.quick_stat] samples
    bracketing (a phase of) the search, on the calling domain. *)

val pp : Format.formatter -> t -> unit

val pp_level : Format.formatter -> level -> unit
