(** Pruning metrics (§6.3).

    A pruning metric maps a costed plan to a point in l-dimensional space;
    plans are compared by the component-wise partial order [<=_l] of §6.2,
    optionally refined by non-numeric dimensions (interesting orders).
    Theorem 2 says no *total-order* metric can both predict response time
    and satisfy the principle of optimality, so the partial-order DP
    parameterizes over these instead.

    Design notes (see DESIGN.md): the [descriptor] metric uses the first-
    tuple vector and the residual vector, under which the calculus
    operators are monotone when the pipeline penalty [delta] is disabled —
    the principle of optimality then holds by construction.  With
    [delta_k > 0] it is a (measurably excellent) heuristic, exactly as
    System R's interesting-order retention is for work. *)

type t = {
  name : string;
  arity : int;  (** number of numeric coordinates, constant per metric *)
  dims : Parqo_cost.Costmodel.eval -> float array;
      (** numeric coordinates; smaller is better *)
  fill : (Parqo_cost.Costmodel.eval -> float array -> unit) option;
      (** allocation-free variant: write the same [arity] coordinates
          into the buffer's prefix; the DP's flat covers use this to
          avoid one array per candidate *)
  refines : (Parqo_cost.Costmodel.eval -> Parqo_cost.Costmodel.eval -> bool) option;
      (** extra dominance requirement, e.g. ordering subsumption *)
}

val dominates : t -> Parqo_cost.Costmodel.eval -> Parqo_cost.Costmodel.eval -> bool
(** [dominates m a b]: [a] is at least as good as [b] in every dimension. *)

val n_dims : t -> Parqo_cost.Costmodel.eval -> int
(** [l], the dimensionality on a given plan (constant per machine). *)

val fill_dims : t -> Parqo_cost.Costmodel.eval -> float array -> unit
(** Write the plan's coordinates into the buffer's prefix — [fill] when
    the metric provides it, a [dims] call plus blit otherwise.  The
    values are identical to [dims]'s either way. *)

val work : t
(** Scalar total work — the traditional metric; totally ordered. *)

val response_time : t
(** Scalar response time — totally ordered but violates the principle of
    optimality (Example 3); provided to demonstrate the failure. *)

val resource_vector :
  Parqo_machine.Machine.t -> Parqo_machine.Machine.aggregation -> t
(** §6.3's proposal: the resource vector itself, aggregated to [l]
    dimensions; dims are response time plus per-group total work. *)

val descriptor :
  Parqo_machine.Machine.t -> Parqo_machine.Machine.aggregation -> t
(** The default: first-tuple time and work-vector plus residual time and
    work-vector, each aggregated per group ([l = 2 + 2*groups]). *)

val expected_makespan : Parqo_cost.Env.t -> fault_rate:float -> t
(** Failure-aware pruning: response time plus the expected re-execution
    penalty of {!Parqo_cost.Faultcost} as the first dimension, total
    work as the second.  At [fault_rate = 0.] the first dimension is the
    plain response time, so the metric degenerates to response time ×
    work.  Rank final candidates with
    {!Parqo_cost.Faultcost.expected_response_time} to actually choose by
    the failure-aware objective. *)

val contention_rank :
  pressure:float array -> Parqo_cost.Costmodel.eval -> float
(** Response time on a {e loaded} machine: the solo response time plus
    the plan's per-resource work priced at the ambient load
    ([Σ_r pressure_r · work_r], pressure from
    [Parqo_sim.Scheduler.expected_pressure]).  At zero pressure this is
    exactly the solo response time; as pressure grows the work term
    dominates and the ranking flips toward low-work plans — the
    work-bound dual of §2 under contention.  Dimensions beyond
    [pressure]'s length contribute nothing. *)

val contended : pressure:float array -> t
(** Pruning metric for a loaded machine: {!contention_rank} as the first
    dimension and total work as the second (pair with
    [~rank:(contention_rank ~pressure)] when searching). *)

val with_ordering : t -> t
(** Adds interesting orders: [a] must also subsume [b]'s output ordering
    (§6.3, "tuple ordering may be incorporated as an additional
    dimension"). *)

val with_partitioning : t -> t
(** Adds data partitioning, "incorporated in a manner similar to
    ordering" (§6.3): [a] may dominate [b] only when their outputs carry
    the same partitioning (attribute and degree) — conservative, so
    partition-diverse plans survive for cloned consumers that could reuse
    them without an exchange. *)

val pp : Format.formatter -> t -> unit
