(** Search budgets: bound the optimizer's effort.

    The exact algorithms are exponential in the number of relations; a
    production optimizer must never run unbounded.  A budget caps the
    number of plan expansions (candidate evaluations) and/or wall-clock
    time; when a budgeted search exhausts its budget it stops expanding
    and reports {!exhausted}, and {!Optimizer.minimize_response_time}
    degrades gracefully to the greedy result instead of failing.

    Trackers are domain-safe: the expansion counter is atomic and the
    time cap is measured on a shared wall clock, so one tracker can be
    ticked concurrently by every worker of a parallel search and the cap
    still means "this much real time", not "this much summed CPU time
    across domains". *)

type t = {
  max_expansions : int option;  (** candidate plans costed *)
  max_seconds : float option;  (** elapsed wall-clock seconds *)
  deadline : float option;
      (** absolute wall-clock instant ([Unix.gettimeofday] scale) after
          which the search must stop — how a serving-layer request
          deadline is threaded into the optimizer.  Unlike
          [max_seconds] it is independent of when the tracker starts,
          so one deadline can bound several searches (retries, the
          greedy fallback) for the same request. *)
}

val unlimited : t

val expansions : int -> t
(** Cap expansions only. *)

val seconds : float -> t
(** Cap wall-clock only. *)

val deadline : float -> t
(** Cap by an absolute wall-clock deadline only.  A deadline already in
    the past makes every tracker {!exhausted} immediately. *)

val until : float -> t -> t
(** [until at b] is [b] with its deadline (re)set to [at] — compose a
    per-request deadline with a standing expansion/time cap. *)

val is_unlimited : t -> bool

type tracker
(** Consumption state for one search run; safe to share across domains. *)

val start : t -> tracker

val tick : tracker -> int -> unit
(** Record [n] expansions (atomic). *)

val exhausted : tracker -> bool
(** Whether either cap has been hit.  Cheap: the clock is consulted at
    most once per call and only when a time cap is set. *)

val spent : tracker -> int
(** Expansions recorded so far. *)

val elapsed : tracker -> float
(** Wall-clock seconds since {!start}. *)

val remaining_seconds : tracker -> float option
(** Wall-clock seconds until the tightest time cap (relative cap or
    absolute deadline) expires, clamped at [0.]; [None] when the budget
    has no time component. *)
