module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  level_sizes : int array;
  gave_up : bool;
}

let optimize ?(config = Space.default_config)
    ?(rank = fun (e : Cm.eval) -> e.Cm.response_time) ?work_cap
    ?(final_filter = fun _ -> true) ?max_cover ?(budget = Budget.unlimited)
    ~metric (env : Env.t) =
  let tracker = Budget.start budget in
  let gave_up = ref false in
  let apply_beam cover =
    match max_cover with
    | None -> ()
    | Some keep -> Cover.trim cover ~keep ~rank
  in
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let dominates = Metric.dominates metric in
  let memo : Cm.eval list array = Array.make (1 lsl n) [] in
  let level_sizes = Array.make (n + 1) 0 in
  let admissible e =
    match work_cap with None -> true | Some cap -> e.Cm.work <= cap +. 1e-9
  in
  let cover_of candidates =
    let cover = Cover.create ~dominates in
    List.iter
      (fun tree ->
        Search_stats.generated stats 1;
        Budget.tick tracker 1;
        let e = Cm.evaluate env tree in
        if admissible e then ignore (Cover.add cover e))
      candidates;
    apply_beam cover;
    cover
  in
  (* accessPlans — always generated, so even an exhausted budget leaves
     single-relation plans for the caller's fallback logic *)
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let cover = cover_of (Space.access_plans env config rel) in
    Search_stats.observe_cover stats (Cover.size cover);
    memo.(Bitset.to_int (Bitset.singleton rel)) <- Cover.elements cover
  done;
  level_sizes.(1) <-
    List.fold_left ( + ) 0
      (List.init n (fun r -> List.length memo.(Bitset.to_int (Bitset.singleton r))));
  for size = 2 to n do
    let subsets = Bitset.subsets_of_size n ~size in
    List.iter
      (fun s ->
        if Budget.exhausted tracker then gave_up := true
        else begin
          let best_plans = Cover.create ~dominates in
          let extend ~require_connection =
            Bitset.iter
              (fun j ->
                let s_j = Bitset.remove j s in
                if
                  (not require_connection)
                  || Space.connects env s_j (Bitset.singleton j)
                then
                  List.iter
                    (fun p ->
                      Search_stats.considered stats 1;
                      List.iter
                        (fun tree ->
                          Search_stats.generated stats 1;
                          Budget.tick tracker 1;
                          let e = Cm.evaluate env tree in
                          if admissible e then ignore (Cover.add best_plans e))
                        (Space.join_candidates env config ~outer:p.Cm.tree ~rel:j))
                    memo.(Bitset.to_int s_j))
              s
          in
          extend ~require_connection:true;
          if Cover.size best_plans = 0 then extend ~require_connection:false;
          Search_stats.observe_cover stats (Cover.size best_plans);
          apply_beam best_plans;
          level_sizes.(size) <- level_sizes.(size) + Cover.size best_plans;
          memo.(Bitset.to_int s) <- Cover.elements best_plans
        end)
      subsets;
    Search_stats.observe_stored stats level_sizes.(size)
  done;
  Search_stats.observe_stored stats level_sizes.(1);
  let cover = if n = 0 then [] else memo.(Bitset.to_int (Bitset.full n)) in
  let best =
    List.filter final_filter cover
    |> List.fold_left
         (fun acc e ->
           match acc with
           | None -> Some e
           | Some b -> if rank e < rank b then Some e else Some b)
         None
  in
  { best; cover; stats; level_sizes; gave_up = !gave_up }
