module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Domain_pool = Parqo_util.Domain_pool
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  level_sizes : int array;
  gave_up : bool;
}

(* Stable total key on plans: used to break exact rank ties so that beam
   pruning and final-plan selection are deterministic — independent of
   cover-list order, and therefore identical between the sequential and
   the domain-parallel search.  [Join_tree.key] is precomputed at plan
   construction, so a tie comparison costs no string building. *)
let plan_key (e : Cm.eval) = Parqo_plan.Join_tree.key e.Cm.tree
let tie a b = String.compare (plan_key a) (plan_key b)

(* A costed plan with its pruning-metric coordinates computed once.
   Dominance tests are the inner loop of cover maintenance — every [add]
   compares against the whole cover — so the metric's dims (which
   allocate aggregation arrays) must not be recomputed per comparison. *)
type entry = { e : Cm.eval; dims : Parqo_util.Vecf.t }

(* Outcome of one subset's cover computation, produced by a worker domain
   and merged by the coordinator.  Counters ride along instead of being
   written to the shared stats record so the merge — not the scheduling —
   decides accumulation order. *)
type subset_result = {
  elements : entry list;  (** post-beam cover, insertion order *)
  considered : int;
  generated : int;
  cover_pre : int;  (** cover size before the beam cut *)
}

let now_ms () = Unix.gettimeofday () *. 1000.

let optimize ?(config = Space.default_config)
    ?(rank = fun (e : Cm.eval) -> e.Cm.response_time) ?work_cap
    ?(final_filter = fun _ -> true) ?max_cover ?(budget = Budget.unlimited)
    ?(domains = 1) ?(plan_cache = true) ~metric (env : Env.t) =
  let pool = Domain_pool.create ~domains in
  let tracker = Budget.start budget in
  let gave_up = ref false in
  (* Incremental costing: every candidate at level l + 1 extends a
     memoized level-l plan, so with its sub-plans cached the evaluation
     only costs the new root operators.  Access-plan leaves self-cache on
     first miss; join entries are remembered explicitly — winners only,
     on the coordinator between level barriers — so the cache stays the
     size of the memo, not of the candidate stream.  Workers share the
     cache read-mostly (leaf insertion is mutex-guarded and idempotent);
     results are bit-identical with the cache off. *)
  let cache = if plan_cache then Some (Cm.create_cache ()) else None in
  let evaluate tree =
    match cache with
    | Some c -> Cm.evaluate_cached c env tree
    | None -> Cm.evaluate env tree
  in
  let remember e = match cache with Some c -> Cm.remember c e | None -> () in
  let rank_e ent = rank ent.e in
  let tie_e a b = tie a.e b.e in
  let apply_beam cover =
    match max_cover with
    | None -> ()
    | Some keep -> Cover.trim ~tie:tie_e cover ~keep ~rank:rank_e
  in
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let refines =
    match metric.Metric.refines with None -> fun _ _ -> true | Some r -> r
  in
  let dominates a b =
    Parqo_util.Vecf.dominates a.dims b.dims && refines a.e b.e
  in
  let entry e = { e; dims = Parqo_util.Vecf.of_array (metric.Metric.dims e) } in
  let memo : entry list array = Array.make (1 lsl n) [] in
  let level_sizes = Array.make (n + 1) 0 in
  (* per-relation access plans are annotation-independent of the level
     loop: generate them once instead of per (sub-plan, relation) pair *)
  let access_plans = Array.init n (Space.access_plans env config) in
  let admissible e =
    match work_cap with None -> true | Some cap -> e.Cm.work <= cap +. 1e-9
  in
  let level_start = ref (now_ms ()) in
  let finish_level ~level ~subsets ~cover_max ~used_domains =
    let t = now_ms () in
    Search_stats.observe_level stats
      {
        Search_stats.level;
        subsets;
        stored = level_sizes.(level);
        cover_max;
        wall_ms = t -. !level_start;
        domains = used_domains;
      };
    level_start := t
  in
  (* accessPlans — always generated, so even an exhausted budget leaves
     single-relation plans for the caller's fallback logic *)
  let l1_cover_max = ref 0 in
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let cover = Cover.create ~dominates in
    List.iter
      (fun tree ->
        Search_stats.generated stats 1;
        Budget.tick tracker 1;
        let e = evaluate tree in
        if admissible e then ignore (Cover.add cover (entry e)))
      access_plans.(rel);
    apply_beam cover;
    Search_stats.observe_cover stats (Cover.size cover);
    if Cover.size cover > !l1_cover_max then l1_cover_max := Cover.size cover;
    memo.(Bitset.to_int (Bitset.singleton rel)) <- Cover.elements cover
  done;
  level_sizes.(1) <-
    List.fold_left ( + ) 0
      (List.init n (fun r -> List.length memo.(Bitset.to_int (Bitset.singleton r))));
  (* stored sizes are recorded in level order, level 1 first *)
  if n > 0 then begin
    Search_stats.observe_stored stats level_sizes.(1);
    finish_level ~level:1 ~subsets:n ~cover_max:!l1_cover_max ~used_domains:1
  end;
  (* The level loop: within a level every subset's cover depends only on
     the memo entries of strictly smaller subsets, so the subsets of one
     size are embarrassingly parallel and level boundaries are barriers.
     Workers fill a per-subset slot; the coordinator merges the slots into
     [memo] in increasing mask order, making the result bit-identical to
     the sequential (domains = 1) run. *)
  for size = 2 to n do
    let subsets = Array.of_list (Bitset.subsets_of_size n ~size) in
    let n_subsets = Array.length subsets in
    let results : subset_result option array = Array.make n_subsets None in
    let compute s =
      let considered = ref 0 and generated = ref 0 in
      let best_plans = Cover.create ~dominates in
      let extend ~require_connection =
        Bitset.iter
          (fun j ->
            let s_j = Bitset.remove j s in
            if
              (not require_connection)
              || Space.connects env s_j (Bitset.singleton j)
            then
              List.iter
                (fun p ->
                  incr considered;
                  List.iter
                    (fun inner ->
                      List.iter
                        (fun tree ->
                          incr generated;
                          Budget.tick tracker 1;
                          let e = evaluate tree in
                          if admissible e then
                            ignore (Cover.add best_plans (entry e)))
                        (Space.combine_candidates env config
                           ~outer:p.e.Cm.tree ~inner))
                    access_plans.(j))
                memo.(Bitset.to_int s_j))
          s
      in
      extend ~require_connection:true;
      if Cover.size best_plans = 0 then extend ~require_connection:false;
      let cover_pre = Cover.size best_plans in
      apply_beam best_plans;
      {
        elements = Cover.elements best_plans;
        considered = !considered;
        generated = !generated;
        cover_pre;
      }
    in
    Domain_pool.run pool ~tasks:n_subsets (fun i ->
        if not (Budget.exhausted tracker) then
          results.(i) <- Some (compute subsets.(i)));
    let cover_max = ref 0 in
    Array.iteri
      (fun i r ->
        match r with
        | None -> gave_up := true
        | Some r ->
          Search_stats.considered stats r.considered;
          Search_stats.generated stats r.generated;
          Search_stats.observe_cover stats r.cover_pre;
          if r.cover_pre > !cover_max then cover_max := r.cover_pre;
          level_sizes.(size) <- level_sizes.(size) + List.length r.elements;
          List.iter (fun ent -> remember ent.e) r.elements;
          memo.(Bitset.to_int subsets.(i)) <- r.elements)
      results;
    Search_stats.observe_stored stats level_sizes.(size);
    finish_level ~level:size ~subsets:n_subsets ~cover_max:!cover_max
      ~used_domains:(min (Domain_pool.size pool) (max 1 n_subsets))
  done;
  let cover =
    if n = 0 then []
    else List.map (fun ent -> ent.e) memo.(Bitset.to_int (Bitset.full n))
  in
  let best =
    List.filter final_filter cover
    |> List.fold_left
         (fun acc e ->
           match acc with
           | None -> Some e
           | Some b ->
             let c = Float.compare (rank e) (rank b) in
             if c < 0 || (c = 0 && tie e b < 0) then Some e else Some b)
         None
  in
  { best; cover; stats; level_sizes; gave_up = !gave_up }
