module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Domain_pool = Parqo_util.Domain_pool
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  level_sizes : int array;
  gave_up : bool;
}

(* Stable total key on plans: used to break exact rank ties so that beam
   pruning and final-plan selection are deterministic — independent of
   cover order, and therefore identical between the sequential and the
   domain-parallel search.  [Join_tree.key] is precomputed at plan
   construction, so a tie comparison costs no string building. *)
let plan_key (e : Cm.eval) = Parqo_plan.Join_tree.key e.Cm.tree
let tie a b = String.compare (plan_key a) (plan_key b)

(* Outcome of one subset's cover computation, produced by a worker domain
   into its own arena and merged by the coordinator.  Counters ride along
   instead of being written to the shared stats record so the merge — not
   the scheduling — decides accumulation order. *)
type subset_result = {
  worker : int;  (** arena holding the post-beam cover *)
  start : int;  (** slice start in that arena *)
  len : int;  (** slice length *)
  considered : int;
  generated : int;
  cover_pre : int;  (** cover size before the beam cut *)
}

(* A growable append-only plan buffer.  Worker arenas collect each
   subset's post-beam cover as a contiguous slice (newest first, the
   cover's [elements] order); the coordinator's memo arena absorbs those
   slices at the level barrier, in increasing subset-mask order, so the
   memo layout — and everything downstream — is bit-identical to the
   sequential run's. *)
type arena = { mutable buf : Cm.eval array; mutable len : int }

let arena_create () = { buf = [||]; len = 0 }

let arena_room a n seed =
  if a.len + n > Array.length a.buf then begin
    let cap = max (a.len + n) (max 64 (2 * Array.length a.buf)) in
    let buf = Array.make cap seed in
    Array.blit a.buf 0 buf 0 a.len;
    a.buf <- buf
  end

let arena_push a e =
  arena_room a 1 e;
  a.buf.(a.len) <- e;
  a.len <- a.len + 1

let now_ms () = Unix.gettimeofday () *. 1000.

(* Shared counters are touched per batch, not per candidate: each worker
   accumulates its expansion ticks locally and flushes them to the atomic
   budget tracker every [tick_grain] candidates (and at chunk end), so
   the cap can overshoot by at most [width × tick_grain] expansions in
   exchange for an uncontended hot loop. *)
let tick_grain = 1024

let search ~config ~rank ~work_cap ~final_filter ~max_cover ~budget ~pool
    ~pool_stats0 ~plan_cache ~metric (env : Env.t) =
  let gc0 = Gc.quick_stat () in
  let width = Domain_pool.width pool in
  let tracker = Budget.start budget in
  let gave_up = ref false in
  (* Incremental costing: every candidate at level l + 1 extends a
     memoized level-l plan, so with its sub-plans cached the evaluation
     only costs the new root operators.  Access-plan leaves self-cache on
     first miss; join entries are remembered explicitly — winners only,
     on the coordinator between level barriers — so the cache stays the
     size of the memo, not of the candidate stream.  Workers read the
     published snapshot lock-free through per-worker shards (shard 0 is
     the coordinator's own handle); the coordinator publishes each
     level's writes at the barrier.  Results are bit-identical with the
     cache off. *)
  let cache = if plan_cache then Some (Cm.create_cache ()) else None in
  let shards =
    Array.init width (fun i ->
        if i = 0 then cache else Option.map Cm.shard_cache cache)
  in
  let evaluate_with shard tree =
    match shard with
    | Some c -> Cm.evaluate_cached c env tree
    | None -> Cm.evaluate env tree
  in
  let evaluate tree = evaluate_with cache tree in
  let remember e = match cache with Some c -> Cm.remember c e | None -> () in
  (* make this level's winners (and any leaf self-caching) visible to the
     worker shards of the next level; pointless when no worker exists *)
  let publish () =
    if width > 1 then Option.iter Cm.publish_cache cache
  in
  let apply_beam cover =
    match max_cover with
    | None -> ()
    | Some keep -> Cover.Flat.trim ~tie cover ~keep ~rank
  in
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  (* One reusable flat cover per worker (index 0 doubles as the
     coordinator's): entry coordinates are materialized once per
     candidate into the cover's scratch row, dominance tests run on the
     flat dims array.  Cleared per subset, capacity retained. *)
  let covers =
    Array.init width (fun _ ->
        Cover.Flat.create ~n_dims:metric.Metric.arity
          ?refines:metric.Metric.refines ())
  in
  let cover_add cover e =
    Metric.fill_dims metric e (Cover.Flat.scratch cover);
    ignore (Cover.Flat.add cover e)
  in
  (* The memo: one contiguous slice of the coordinator's arena per
     subset mask, in the cover's [elements] order (newest first).  Memo
     entries are only read as plans (their pruning coordinates matter
     only during their own subset's cover maintenance), so the arena
     stores bare evaluations — no per-entry dims rows retained. *)
  let memo = arena_create () in
  let memo_off = Array.make (1 lsl n) 0 in
  let memo_len = Array.make (1 lsl n) 0 in
  let absorb_cover ~mask cover =
    memo_off.(mask) <- memo.len;
    memo_len.(mask) <- Cover.Flat.size cover;
    Cover.Flat.iter_newest_first (arena_push memo) cover
  in
  let level_sizes = Array.make (n + 1) 0 in
  (* per-relation access plans are annotation-independent of the level
     loop: generate them once instead of per (sub-plan, relation) pair *)
  let access_plans = Array.init n (Space.access_plans env config) in
  let admissible e =
    match work_cap with None -> true | Some cap -> e.Cm.work <= cap +. 1e-9
  in
  let level_start = ref (now_ms ()) in
  let finish_level ~level ~subsets ~cover_max ~used_domains =
    let t = now_ms () in
    Search_stats.observe_level stats
      {
        Search_stats.level;
        subsets;
        stored = level_sizes.(level);
        cover_max;
        wall_ms = t -. !level_start;
        domains = used_domains;
      };
    level_start := t
  in
  (* accessPlans — always generated, so even an exhausted budget leaves
     single-relation plans for the caller's fallback logic *)
  let l1_cover_max = ref 0 in
  let l1_ticks = ref 0 in
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let cover = covers.(0) in
    Cover.Flat.clear cover;
    List.iter
      (fun tree ->
        Search_stats.generated stats 1;
        incr l1_ticks;
        let e = evaluate tree in
        if admissible e then cover_add cover e)
      access_plans.(rel);
    apply_beam cover;
    Search_stats.observe_cover stats (Cover.Flat.size cover);
    if Cover.Flat.size cover > !l1_cover_max then
      l1_cover_max := Cover.Flat.size cover;
    let mask = Bitset.to_int (Bitset.singleton rel) in
    absorb_cover ~mask cover;
    level_sizes.(1) <- level_sizes.(1) + memo_len.(mask)
  done;
  Budget.tick tracker !l1_ticks;
  (* stored sizes are recorded in level order, level 1 first *)
  if n > 0 then begin
    Search_stats.observe_stored stats level_sizes.(1);
    finish_level ~level:1 ~subsets:n ~cover_max:!l1_cover_max ~used_domains:1;
    publish ()
  end;
  (* The level loop: within a level every subset's cover depends only on
     the memo slices of strictly smaller subsets (written at earlier
     barriers), so the subsets of one size are embarrassingly parallel
     and level boundaries are barriers.  Workers append each subset's
     post-beam cover to their own arena; the coordinator absorbs the
     slices into the memo arena in increasing mask order, making the
     result bit-identical to the sequential (domains = 1) run. *)
  let arenas = Array.init width (fun _ -> arena_create ()) in
  for size = 2 to n do
    let subsets = Array.of_list (Bitset.subsets_of_size n ~size) in
    let n_subsets = Array.length subsets in
    let results : subset_result option array = Array.make n_subsets None in
    let compute ~worker ~evaluate ~ticks s =
      let considered = ref 0 and generated = ref 0 in
      let best_plans = covers.(worker) in
      Cover.Flat.clear best_plans;
      let extend ~require_connection =
        Bitset.iter
          (fun j ->
            let s_j = Bitset.remove j s in
            if
              (not require_connection)
              || Space.connects env s_j (Bitset.singleton j)
            then begin
              let mask = Bitset.to_int s_j in
              let off = memo_off.(mask) in
              for k = off to off + memo_len.(mask) - 1 do
                let p = memo.buf.(k) in
                incr considered;
                List.iter
                  (fun inner ->
                    List.iter
                      (fun tree ->
                        incr generated;
                        incr ticks;
                        if !ticks >= tick_grain then begin
                          Budget.tick tracker !ticks;
                          ticks := 0
                        end;
                        let e = evaluate tree in
                        if admissible e then cover_add best_plans e)
                      (Space.combine_candidates env config ~outer:p.Cm.tree
                         ~inner))
                  access_plans.(j)
              done
            end)
          s
      in
      extend ~require_connection:true;
      if Cover.Flat.size best_plans = 0 then extend ~require_connection:false;
      let cover_pre = Cover.Flat.size best_plans in
      apply_beam best_plans;
      let arena = arenas.(worker) in
      let start = arena.len in
      Cover.Flat.iter_newest_first (arena_push arena) best_plans;
      {
        worker;
        start;
        len = arena.len - start;
        considered = !considered;
        generated = !generated;
        cover_pre;
      }
    in
    (* One budget check (a clock read under time caps) per claimed chunk,
       not per subset: an exhausted budget skips the chunk whole, leaving
       its result slots empty — same semantics as the per-subset check at
       a coarser cancellation granularity. *)
    let used_domains =
      Domain_pool.run_ranged pool ~tasks:n_subsets
        (fun ~worker ~lo ~hi ->
          if not (Budget.exhausted tracker) then begin
            let evaluate = evaluate_with shards.(worker) in
            let ticks = ref 0 in
            for i = lo to hi - 1 do
              results.(i) <- Some (compute ~worker ~evaluate ~ticks subsets.(i))
            done;
            if !ticks > 0 then Budget.tick tracker !ticks
          end)
    in
    let cover_max = ref 0 in
    Array.iteri
      (fun i r ->
        match r with
        | None -> gave_up := true
        | Some r ->
          Search_stats.considered stats r.considered;
          Search_stats.generated stats r.generated;
          Search_stats.observe_cover stats r.cover_pre;
          if r.cover_pre > !cover_max then cover_max := r.cover_pre;
          level_sizes.(size) <- level_sizes.(size) + r.len;
          let mask = Bitset.to_int subsets.(i) in
          memo_off.(mask) <- memo.len;
          memo_len.(mask) <- r.len;
          let src = arenas.(r.worker) in
          if r.len > 0 then begin
            arena_room memo r.len src.buf.(r.start);
            Array.blit src.buf r.start memo.buf memo.len r.len;
            memo.len <- memo.len + r.len;
            for k = memo.len - r.len to memo.len - 1 do
              remember memo.buf.(k)
            done
          end)
      results;
    (* worker arenas are consumed; recycle them for the next level *)
    Array.iter (fun a -> a.len <- 0) arenas;
    Search_stats.observe_stored stats level_sizes.(size);
    finish_level ~level:size ~subsets:n_subsets ~cover_max:!cover_max
      ~used_domains;
    publish ()
  done;
  Array.iteri
    (fun i shard ->
      if i > 0 then
        match (cache, shard) with
        | Some c, Some s -> Cm.absorb_cache c s
        | _ -> ())
    shards;
  Search_stats.observe_pool stats
    (Domain_pool.diff_stats pool_stats0 (Domain_pool.stats pool));
  let cover =
    if n = 0 then []
    else begin
      let mask = Bitset.to_int (Bitset.full n) in
      let acc = ref [] in
      for k = memo_off.(mask) + memo_len.(mask) - 1 downto memo_off.(mask) do
        acc := memo.buf.(k) :: !acc
      done;
      !acc
    end
  in
  let best =
    List.filter final_filter cover
    |> List.fold_left
         (fun acc e ->
           match acc with
           | None -> Some e
           | Some b ->
             let c = Float.compare (rank e) (rank b) in
             if c < 0 || (c = 0 && tie e b < 0) then Some e else Some b)
         None
  in
  Search_stats.observe_gc stats ~before:gc0 ~after:(Gc.quick_stat ());
  { best; cover; stats; level_sizes; gave_up = !gave_up }

let optimize ?(config = Space.default_config)
    ?(rank = fun (e : Cm.eval) -> e.Cm.response_time) ?work_cap
    ?(final_filter = fun _ -> true) ?max_cover ?(budget = Budget.unlimited)
    ?(domains = 1) ?pool ?(plan_cache = true) ~metric (env : Env.t) =
  let go ~pool_stats0 pool =
    search ~config ~rank ~work_cap ~final_filter ~max_cover ~budget ~pool
      ~pool_stats0 ~plan_cache ~metric env
  in
  match pool with
  (* a persistent pool's spawns belong to whoever created it; an
     internal pool's whole lifetime belongs to this search *)
  | Some pool -> go ~pool_stats0:(Domain_pool.stats pool) pool
  | None ->
    Domain_pool.with_pool ~domains (go ~pool_stats0:Domain_pool.no_stats)
