module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Domain_pool = Parqo_util.Domain_pool
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  level_sizes : int array;
  gave_up : bool;
}

(* Stable total key on plans: used to break exact rank ties so that beam
   pruning and final-plan selection are deterministic — independent of
   cover-list order, and therefore identical between the sequential and
   the domain-parallel search. *)
let plan_key (e : Cm.eval) = Parqo_plan.Join_tree.to_string e.Cm.tree
let tie a b = String.compare (plan_key a) (plan_key b)

(* Outcome of one subset's cover computation, produced by a worker domain
   and merged by the coordinator.  Counters ride along instead of being
   written to the shared stats record so the merge — not the scheduling —
   decides accumulation order. *)
type subset_result = {
  elements : Cm.eval list;  (** post-beam cover, insertion order *)
  considered : int;
  generated : int;
  cover_pre : int;  (** cover size before the beam cut *)
}

let now_ms () = Unix.gettimeofday () *. 1000.

let optimize ?(config = Space.default_config)
    ?(rank = fun (e : Cm.eval) -> e.Cm.response_time) ?work_cap
    ?(final_filter = fun _ -> true) ?max_cover ?(budget = Budget.unlimited)
    ?(domains = 1) ~metric (env : Env.t) =
  let pool = Domain_pool.create ~domains in
  let tracker = Budget.start budget in
  let gave_up = ref false in
  let apply_beam cover =
    match max_cover with
    | None -> ()
    | Some keep -> Cover.trim ~tie cover ~keep ~rank
  in
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let dominates = Metric.dominates metric in
  let memo : Cm.eval list array = Array.make (1 lsl n) [] in
  let level_sizes = Array.make (n + 1) 0 in
  let admissible e =
    match work_cap with None -> true | Some cap -> e.Cm.work <= cap +. 1e-9
  in
  let level_start = ref (now_ms ()) in
  let finish_level ~level ~subsets ~cover_max ~used_domains =
    let t = now_ms () in
    Search_stats.observe_level stats
      {
        Search_stats.level;
        subsets;
        stored = level_sizes.(level);
        cover_max;
        wall_ms = t -. !level_start;
        domains = used_domains;
      };
    level_start := t
  in
  (* accessPlans — always generated, so even an exhausted budget leaves
     single-relation plans for the caller's fallback logic *)
  let l1_cover_max = ref 0 in
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let cover = Cover.create ~dominates in
    List.iter
      (fun tree ->
        Search_stats.generated stats 1;
        Budget.tick tracker 1;
        let e = Cm.evaluate env tree in
        if admissible e then ignore (Cover.add cover e))
      (Space.access_plans env config rel);
    apply_beam cover;
    Search_stats.observe_cover stats (Cover.size cover);
    if Cover.size cover > !l1_cover_max then l1_cover_max := Cover.size cover;
    memo.(Bitset.to_int (Bitset.singleton rel)) <- Cover.elements cover
  done;
  level_sizes.(1) <-
    List.fold_left ( + ) 0
      (List.init n (fun r -> List.length memo.(Bitset.to_int (Bitset.singleton r))));
  (* stored sizes are recorded in level order, level 1 first *)
  if n > 0 then begin
    Search_stats.observe_stored stats level_sizes.(1);
    finish_level ~level:1 ~subsets:n ~cover_max:!l1_cover_max ~used_domains:1
  end;
  (* The level loop: within a level every subset's cover depends only on
     the memo entries of strictly smaller subsets, so the subsets of one
     size are embarrassingly parallel and level boundaries are barriers.
     Workers fill a per-subset slot; the coordinator merges the slots into
     [memo] in increasing mask order, making the result bit-identical to
     the sequential (domains = 1) run. *)
  for size = 2 to n do
    let subsets = Array.of_list (Bitset.subsets_of_size n ~size) in
    let n_subsets = Array.length subsets in
    let results : subset_result option array = Array.make n_subsets None in
    let compute s =
      let considered = ref 0 and generated = ref 0 in
      let best_plans = Cover.create ~dominates in
      let extend ~require_connection =
        Bitset.iter
          (fun j ->
            let s_j = Bitset.remove j s in
            if
              (not require_connection)
              || Space.connects env s_j (Bitset.singleton j)
            then
              List.iter
                (fun p ->
                  incr considered;
                  List.iter
                    (fun tree ->
                      incr generated;
                      Budget.tick tracker 1;
                      let e = Cm.evaluate env tree in
                      if admissible e then ignore (Cover.add best_plans e))
                    (Space.join_candidates env config ~outer:p.Cm.tree ~rel:j))
                memo.(Bitset.to_int s_j))
          s
      in
      extend ~require_connection:true;
      if Cover.size best_plans = 0 then extend ~require_connection:false;
      let cover_pre = Cover.size best_plans in
      apply_beam best_plans;
      {
        elements = Cover.elements best_plans;
        considered = !considered;
        generated = !generated;
        cover_pre;
      }
    in
    Domain_pool.run pool ~tasks:n_subsets (fun i ->
        if not (Budget.exhausted tracker) then
          results.(i) <- Some (compute subsets.(i)));
    let cover_max = ref 0 in
    Array.iteri
      (fun i r ->
        match r with
        | None -> gave_up := true
        | Some r ->
          Search_stats.considered stats r.considered;
          Search_stats.generated stats r.generated;
          Search_stats.observe_cover stats r.cover_pre;
          if r.cover_pre > !cover_max then cover_max := r.cover_pre;
          level_sizes.(size) <- level_sizes.(size) + List.length r.elements;
          memo.(Bitset.to_int subsets.(i)) <- r.elements)
      results;
    Search_stats.observe_stored stats level_sizes.(size);
    finish_level ~level:size ~subsets:n_subsets ~cover_max:!cover_max
      ~used_domains:(min (Domain_pool.size pool) (max 1 n_subsets))
  done;
  let cover = if n = 0 then [] else memo.(Bitset.to_int (Bitset.full n)) in
  let best =
    List.filter final_filter cover
    |> List.fold_left
         (fun acc e ->
           match acc with
           | None -> Some e
           | Some b ->
             let c = Float.compare (rank e) (rank b) in
             if c < 0 || (c = 0 && tie e b < 0) then Some e else Some b)
         None
  in
  { best; cover; stats; level_sizes; gave_up = !gave_up }
