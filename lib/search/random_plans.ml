module J = Parqo_plan.Join_tree
module Rng = Parqo_util.Rng
module Env = Parqo_cost.Env

let pick_access rng (env : Env.t) (config : Space.config) rel =
  Rng.pick_list rng (Space.access_plans env config rel)

let pick_join rng (config : Space.config) ~outer ~inner ~joined =
  let methods =
    List.filter
      (fun m -> joined || m = Parqo_plan.Join_method.Nested_loops)
      config.Space.methods
  in
  let methods =
    match methods with [] -> [ Parqo_plan.Join_method.Nested_loops ] | ms -> ms
  in
  J.join
    ~clone:(Rng.pick_list rng config.Space.clone_degrees)
    ~materialize:(config.Space.materialize_choices && Rng.bool rng)
    (Rng.pick_list rng methods)
    ~outer ~inner

let connects env a b =
  Space.connects env (J.relations a) (J.relations b)

let random_tree ?(bushy = true) rng (env : Env.t) config =
  let n = Env.n_relations env in
  let rels = Array.init n (fun i -> i) in
  Rng.shuffle rng rels;
  let rec build rels =
    match rels with
    | [ r ] -> pick_access rng env config r
    | _ ->
      let len = List.length rels in
      let k = if bushy then 1 + Rng.int rng (len - 1) else len - 1 in
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
          let a, b = split (i + 1) rest in
          if i < k then (x :: a, b) else (a, x :: b)
      in
      let left, right = split 0 rels in
      let outer = build left and inner = build right in
      pick_join rng config ~outer ~inner ~joined:(connects env outer inner)
  in
  build (Array.to_list rels)

let leaf_count = J.n_leaves

(* replace the [idx]-th leaf (left-to-right) via [f] *)
let map_leaf idx f tree =
  let counter = ref (-1) in
  let rec go = function
    | J.Access a ->
      incr counter;
      if !counter = idx then f a else J.Access a
    | J.Join j ->
      (* evaluation order matters: the counter must walk left-to-right *)
      let outer = go j.J.outer in
      let inner = go j.J.inner in
      J.join ~clone:j.J.clone ~materialize:j.J.materialize j.J.method_ ~outer
        ~inner
  in
  go tree

(* replace the [idx]-th join (post-order) via [f] *)
let map_join idx f tree =
  let counter = ref (-1) in
  let rec go = function
    | J.Access a -> J.Access a
    | J.Join j ->
      let outer = go j.J.outer in
      let inner = go j.J.inner in
      incr counter;
      let rebuilt =
        J.join ~clone:j.J.clone ~materialize:j.J.materialize j.J.method_
          ~outer ~inner
      in
      if !counter <> idx then rebuilt
      else (match rebuilt with J.Join j -> f j | J.Access _ -> assert false)
  in
  go tree

let swap_leaves rng env config tree =
  let n = leaf_count tree in
  if n < 2 then tree
  else begin
    let i = Rng.int rng n in
    let k = 1 + Rng.int rng (n - 1) in
    let j = (i + k) mod n in
    let leaves = Array.of_list (J.leaves tree) in
    let rel_i = leaves.(i).J.rel and rel_j = leaves.(j).J.rel in
    (* swapped leaves get freshly drawn access plans: index availability
       is relation-specific *)
    let tree = map_leaf i (fun _ -> pick_access rng env config rel_j) tree in
    map_leaf j (fun _ -> pick_access rng env config rel_i) tree
  end

let reannotate rng env config tree =
  let n = J.n_joins tree in
  if n = 0 then tree
  else
    map_join (Rng.int rng n)
      (fun j ->
        pick_join rng config ~outer:j.J.outer ~inner:j.J.inner
          ~joined:(connects env j.J.outer j.J.inner))
      tree

(* join(join(a,b), c) -> join(a, join(b,c)) and the mirror *)
let rotate rng env config tree =
  let n = J.n_joins tree in
  if n = 0 then tree
  else
    map_join (Rng.int rng n)
      (fun j ->
        match (j.J.outer, j.J.inner) with
        | J.Join o, _ ->
          let bc =
            pick_join rng config ~outer:o.J.inner ~inner:j.J.inner
              ~joined:(connects env o.J.inner j.J.inner)
          in
          pick_join rng config ~outer:o.J.outer ~inner:bc
            ~joined:(connects env o.J.outer bc)
        | _, J.Join i ->
          let ab =
            pick_join rng config ~outer:j.J.outer ~inner:i.J.outer
              ~joined:(connects env j.J.outer i.J.outer)
          in
          pick_join rng config ~outer:ab ~inner:i.J.inner
            ~joined:(connects env ab i.J.inner)
        | J.Access _, J.Access _ -> J.Join j)
      tree

let random_move rng env config tree =
  match Rng.int rng 3 with
  | 0 -> swap_leaves rng env config tree
  | 1 -> reannotate rng env config tree
  | _ -> rotate rng env config tree
