module Cm = Parqo_cost.Costmodel
module Env = Parqo_cost.Env

let src = Logs.Src.create "parqo.optimizer" ~doc:"Top-level optimizer phases"

module Log = (val Logs.src_log src : Logs.LOG)

type tree_shape = Left_deep | Bushy

type outcome = {
  best : Cm.eval option;
  work_optimal : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  work_stats : Search_stats.t option;
  gave_up : bool;
}

(* §6.3: keep the number of dimensions small.  The Single aggregation
   (first-tuple/residual time and total work, l = 4) plus interesting
   orders finds the same plans as finer aggregations on our workloads at a
   fraction of the cover-set size. *)
let default_metric (env : Env.t) =
  Metric.with_ordering
    (Metric.descriptor env.Env.machine Parqo_machine.Machine.Single)

let minimize_work ?(config = Space.default_config) ?(shape = Left_deep)
    (env : Env.t) =
  match shape with
  | Left_deep ->
    let r = Dp.optimize ~config env in
    {
      best = r.Dp.best;
      work_optimal = r.Dp.best;
      cover = Option.to_list r.Dp.best;
      stats = r.Dp.stats;
      work_stats = None;
      gave_up = false;
    }
  | Bushy ->
    let r = Bushy.optimize_scalar ~config env in
    {
      best = r.Bushy.best;
      work_optimal = r.Bushy.best;
      cover = r.Bushy.cover;
      stats = r.Bushy.stats;
      work_stats = None;
      gave_up = false;
    }

let minimize_work_with_orders ?(config = Space.default_config)
    ?(shape = Left_deep) ?(domains = 1) ?pool ?(plan_cache = true) (env : Env.t) =
  let metric = Metric.with_ordering Metric.work in
  let rank (e : Cm.eval) = e.Cm.work in
  match shape with
  | Left_deep ->
    let r = Podp.optimize ~config ~metric ~rank ~domains ?pool ~plan_cache env in
    {
      best = r.Podp.best;
      work_optimal = r.Podp.best;
      cover = r.Podp.cover;
      stats = r.Podp.stats;
      work_stats = None;
      gave_up = r.Podp.gave_up;
    }
  | Bushy ->
    let r = Bushy.optimize_po ~config ~metric ~rank env in
    {
      best = r.Bushy.best;
      work_optimal = r.Bushy.best;
      cover = r.Bushy.cover;
      stats = r.Bushy.stats;
      work_stats = None;
      gave_up = false;
    }

let minimize_response_time ?(config = Space.default_config)
    ?(shape = Left_deep) ?metric ?(bound = Bounds.Unbounded) ?rank
    ?(budget = Budget.unlimited) ?(domains = 1) ?pool ?(plan_cache = true)
    (env : Env.t) =
  let metric = match metric with Some m -> m | None -> default_metric env in
  let rank =
    match rank with
    | Some r -> r
    | None -> fun (e : Cm.eval) -> e.Cm.response_time
  in
  let work_phase = minimize_work ~config ~shape env in
  let work_optimal = work_phase.work_optimal in
  (match work_optimal with
  | Some w ->
    Log.debug (fun m ->
        m "work phase: W_o=%.3f T_o=%.3f plan=%s (%s)" w.Cm.work
          w.Cm.response_time
          (Parqo_plan.Join_tree.to_string w.Cm.tree)
          (Bounds.to_string bound))
  | None -> Log.warn (fun m -> m "work phase found no plan"));
  let work_cap, final_filter =
    match (bound, work_optimal) with
    | Bounds.Unbounded, _ | _, None -> (None, fun _ -> true)
    | _, Some wo ->
      let work_opt = wo.Cm.work and rt_opt = wo.Cm.response_time in
      ( Bounds.partial_work_cap bound ~work_opt ~rt_opt,
        Bounds.admits bound ~work_opt ~rt_opt )
  in
  let best, cover, stats, gave_up =
    match shape with
    | Left_deep ->
      let r =
        Podp.optimize ~config ?work_cap ~final_filter ~rank ~budget ~domains
          ?pool ~plan_cache ~metric env
      in
      (r.Podp.best, r.Podp.cover, r.Podp.stats, r.Podp.gave_up)
    | Bushy ->
      let r =
        Bushy.optimize_po ~config ?work_cap ~final_filter ~rank ~metric env
      in
      (r.Bushy.best, r.Bushy.cover, r.Bushy.stats, false)
  in
  (* A truncated search may have missed (or degraded) the answer: degrade
     gracefully to the greedy plan rather than failing or returning a
     poor partial result. *)
  let best =
    if gave_up || best = None then begin
      if gave_up then
        Log.info (fun m ->
            m "search budget exhausted: falling back to greedy");
      let greedy = (Greedy.greedy ~config ~objective:rank env).Greedy.best in
      match (best, greedy) with
      | None, g -> g
      | Some b, Some g when rank g < rank b -> Some g
      | b, _ -> b
    end
    else best
  in
  (* The work-optimal plan is always admissible: fall back to it if the
     bounded search somehow lost every candidate, and prefer it when it
     already ranks best. *)
  let best =
    match (best, work_optimal) with
    | None, wo -> wo
    | Some b, Some wo when rank wo < rank b -> Some wo
    | b, _ -> b
  in
  (* ORDER BY: re-price the final candidates with the required output
     ordering (adding the final sort where an interesting order does not
     already deliver it) and re-select under the adjusted bound *)
  (match best with
  | Some b ->
    Log.debug (fun m ->
        m "response-time phase: RT=%.3f work=%.3f cover=%d plan=%s"
          b.Cm.response_time b.Cm.work (List.length cover)
          (Parqo_plan.Join_tree.to_string b.Cm.tree))
  | None -> Log.warn (fun m -> m "response-time phase found no plan"));
  let required = Cm.required_order env in
  if required = Parqo_plan.Ordering.none then
    { best; work_optimal; cover; stats; work_stats = Some work_phase.stats;
      gave_up }
  else begin
    let adjust (e : Cm.eval) = Cm.evaluate ~required_order:required env e.Cm.tree in
    let work_optimal = Option.map adjust work_optimal in
    let cover = List.map adjust cover in
    let admits =
      match (bound, work_optimal) with
      | Bounds.Unbounded, _ | _, None -> fun _ -> true
      | _, Some wo ->
        Bounds.admits bound ~work_opt:wo.Cm.work ~rt_opt:wo.Cm.response_time
    in
    let best =
      List.filter admits cover
      |> List.fold_left
           (fun acc e ->
             match acc with
             | None -> Some e
             | Some b -> if rank e < rank b then Some e else acc)
           None
    in
    let best = (match best with None -> work_optimal | b -> b) in
    { best; work_optimal; cover; stats; work_stats = Some work_phase.stats;
      gave_up }
  end

let minimize_under_contention ?config ?shape ?bound ?budget ?domains ?pool
    ?plan_cache ~pressure (env : Env.t) =
  minimize_response_time ?config ?shape
    ~metric:(Metric.with_ordering (Metric.contended ~pressure))
    ?bound
    ~rank:(Metric.contention_rank ~pressure)
    ?budget ?domains ?pool ?plan_cache env
