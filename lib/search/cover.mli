(** Cover sets (§6.2): the set of pairwise-incomparable minimal elements
    kept per relation subset by the partial-order DP.

    [add] maintains the invariant incrementally: a new element enters only
    if no current element dominates it, and evicts the elements it
    dominates.  The module is generic in the dominance relation so the
    Theorem 3 Monte-Carlo experiment can reuse it on raw points. *)

type 'a t

val create : dominates:('a -> 'a -> bool) -> 'a t
(** [dominates a b] must be a partial preorder ("a is at least as good as
    b in every dimension"). *)

val add : 'a t -> 'a -> bool
(** Returns [true] if the element was inserted (possibly evicting
    dominated ones), [false] if it was covered by an existing element. *)

val elements : 'a t -> 'a list
(** Current cover, in unspecified order. *)

val size : 'a t -> int

val is_covered : 'a t -> 'a -> bool

val trim : ?tie:('a -> 'a -> int) -> 'a t -> keep:int -> rank:('a -> float) -> unit
(** Beam bound: if the cover exceeds [keep] elements, retain the [keep]
    best (smallest) by [rank], leaving [elements] in ascending
    [(rank, tie)] order.  This deliberately breaks the exact-cover
    guarantee — Figure 2 with a practical size cap — and is only applied
    when the caller opts in.

    [tie] (default: everything equal) breaks exact [rank] ties.  Pass a
    total order on elements to make the cut deterministic: without it,
    rank-tied elements at the beam boundary survive or die by list
    position, so the pruned plan choice depends on insertion order.

    The cut runs as a bounded selection — O(n·keep), no full sort — with
    the same boundary semantics as a stable sort by [(rank, tie)]
    followed by taking the prefix: among fully tied elements the one
    closer to the list head (most recently inserted) survives. *)

val of_list : dominates:('a -> 'a -> bool) -> 'a list -> 'a t

val pareto : dominates:('a -> 'a -> bool) -> 'a list -> 'a list
(** One-shot cover of a list. *)

(** {2 Flat covers}

    The DP's cover maintenance is its inner loop: every candidate is
    compared against every cover entry.  [Flat] is the struct-of-arrays
    variant: each entry's numeric pruning-metric coordinates are
    materialized once into a flat row of a growable float array, so
    dominance tests are tight float-array loops — no closure dispatch,
    no per-comparison recomputation — and [add] compacts in place
    instead of rebuilding a list.  An optional [refines] predicate
    carries the metric's non-numeric dominance refinement (ordering,
    partitioning).

    Semantics are those of the list implementation above with
    [dominates a b = (dims a <= dims b pointwise) && refines a b]:
    same acceptance/eviction decisions, same [elements] order
    (newest first), same [trim] boundary behavior — property-tested
    against it. *)

module Flat : sig
  type 'a t

  val create : n_dims:int -> ?refines:('a -> 'a -> bool) -> unit -> 'a t
  (** An empty cover over [n_dims] numeric dimensions.  The handle is
      reusable across subsets via {!clear} and grows as needed. *)

  val n_dims : 'a t -> int

  val clear : 'a t -> unit
  (** Forget all entries, keeping capacity. *)

  val scratch : 'a t -> float array
  (** The candidate row, of length [n_dims]: fill it with the
      candidate's coordinates, then call {!add}.  Owned by the cover —
      valid until the next {!add}/{!is_covered}. *)

  val is_covered : 'a t -> 'a -> bool
  (** Compares the current {!scratch} row (plus [refines]) against the
      entries. *)

  val add : 'a t -> 'a -> bool
  (** Insert the element whose coordinates are in {!scratch}: [false] if
      covered, otherwise evicts dominated entries (stable) and appends. *)

  val size : 'a t -> int

  val elements : 'a t -> 'a list
  (** Newest first, like the list implementation. *)

  val iter_newest_first : ('a -> unit) -> 'a t -> unit
  (** Iterate in {!elements} order without building the list. *)

  val trim :
    ?tie:('a -> 'a -> int) -> 'a t -> keep:int -> rank:('a -> float) -> unit
  (** Same contract and boundary semantics as the list {!trim}. *)
end
