(** Cover sets (§6.2): the set of pairwise-incomparable minimal elements
    kept per relation subset by the partial-order DP.

    [add] maintains the invariant incrementally: a new element enters only
    if no current element dominates it, and evicts the elements it
    dominates.  The module is generic in the dominance relation so the
    Theorem 3 Monte-Carlo experiment can reuse it on raw points. *)

type 'a t

val create : dominates:('a -> 'a -> bool) -> 'a t
(** [dominates a b] must be a partial preorder ("a is at least as good as
    b in every dimension"). *)

val add : 'a t -> 'a -> bool
(** Returns [true] if the element was inserted (possibly evicting
    dominated ones), [false] if it was covered by an existing element. *)

val elements : 'a t -> 'a list
(** Current cover, in unspecified order. *)

val size : 'a t -> int

val is_covered : 'a t -> 'a -> bool

val trim : ?tie:('a -> 'a -> int) -> 'a t -> keep:int -> rank:('a -> float) -> unit
(** Beam bound: if the cover exceeds [keep] elements, retain the [keep]
    best (smallest) by [rank].  This deliberately breaks the exact-cover
    guarantee — Figure 2 with a practical size cap — and is only applied
    when the caller opts in.

    [tie] (default: everything equal) breaks exact [rank] ties.  Pass a
    total order on elements to make the cut deterministic: without it,
    rank-tied elements at the beam boundary survive or die by list
    position, so the pruned plan choice depends on insertion order. *)

val of_list : dominates:('a -> 'a -> bool) -> 'a list -> 'a t

val pareto : dominates:('a -> 'a -> bool) -> 'a list -> 'a list
(** One-shot cover of a list. *)
