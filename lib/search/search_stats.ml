type level = {
  level : int;
  subsets : int;
  stored : int;
  cover_max : int;
  wall_ms : float;
  domains : int;
}

type t = {
  mutable considered : int;
  mutable generated : int;
  mutable stored_peak : int;
  mutable cover_max : int;
  mutable levels : level list;  (* reverse recording order *)
  mutable pool : Parqo_util.Domain_pool.stats;
  mutable minor_words : float;
  mutable major_words : float;
}

let create () =
  {
    considered = 0;
    generated = 0;
    stored_peak = 0;
    cover_max = 0;
    levels = [];
    pool = Parqo_util.Domain_pool.no_stats;
    minor_words = 0.;
    major_words = 0.;
  }

let considered t n = t.considered <- t.considered + n
let generated t n = t.generated <- t.generated + n
let observe_stored t n = if n > t.stored_peak then t.stored_peak <- n
let observe_cover t n = if n > t.cover_max then t.cover_max <- n
let observe_level t l = t.levels <- l :: t.levels
let levels t = List.rev t.levels
let observe_pool t s = t.pool <- s

(* delta between two [Gc.quick_stat] samples bracketing the search; the
   coordinator's allocation only (worker domains keep their own GC
   counters), which is what the allocation-per-plan benchmarks track *)
let observe_gc t ~(before : Gc.stat) ~(after : Gc.stat) =
  t.minor_words <- t.minor_words +. (after.Gc.minor_words -. before.Gc.minor_words);
  t.major_words <-
    t.major_words +. (after.Gc.major_words -. before.Gc.major_words)

let pp ppf t =
  Format.fprintf ppf
    "considered=%d generated=%d stored-peak=%d cover-max=%d \
     minor-words=%.0f major-words=%.0f \
     pool: spawned=%d parallel-runs=%d sequential-runs=%d parks=%d"
    t.considered t.generated t.stored_peak t.cover_max t.minor_words
    t.major_words
    t.pool.Parqo_util.Domain_pool.spawned
    t.pool.Parqo_util.Domain_pool.parallel_runs
    t.pool.Parqo_util.Domain_pool.sequential_runs
    t.pool.Parqo_util.Domain_pool.parks

let pp_level ppf l =
  Format.fprintf ppf
    "level=%d subsets=%d stored=%d cover-max=%d wall=%.2fms domains=%d"
    l.level l.subsets l.stored l.cover_max l.wall_ms l.domains
