module P = Parqo_plan
module Q = Parqo_query.Query
module C = Parqo_catalog
module Bitset = Parqo_util.Bitset
module Env = Parqo_cost.Env

type config = {
  methods : P.Join_method.t list;
  clone_degrees : int list;
  use_indexes : bool;
  materialize_choices : bool;
}

let default_config =
  {
    methods = P.Join_method.all;
    clone_degrees = [ 1 ];
    use_indexes = true;
    materialize_choices = false;
  }

let sequential_config =
  {
    default_config with
    methods = [ P.Join_method.Nested_loops; P.Join_method.Sort_merge ];
    use_indexes = false;
  }

let minimal_config =
  {
    methods = [ P.Join_method.Nested_loops ];
    clone_degrees = [ 1 ];
    use_indexes = false;
    materialize_choices = false;
  }

let parallel_config machine =
  let n_cpus = List.length (Parqo_machine.Machine.cpu_ids machine) in
  let rec powers k acc = if k > n_cpus then List.rev acc else powers (2 * k) (k :: acc) in
  let degrees = match powers 1 [] with [] -> [ 1 ] | ds -> ds in
  { default_config with clone_degrees = degrees; materialize_choices = true }

let access_plans (env : Env.t) config rel =
  let est = env.Env.estimator in
  let table = P.Estimator.table_of est rel in
  let paths =
    P.Access_path.Seq_scan
    ::
    (if config.use_indexes then
       List.map
         (fun i -> P.Access_path.Index_scan i)
         (C.Catalog.indexes_of (P.Estimator.catalog est) table.C.Table.name)
     else [])
  in
  List.concat_map
    (fun path ->
      List.map (fun clone -> P.Join_tree.access ~path ~clone rel) config.clone_degrees)
    paths

let connects = Env.connects

let combine_candidates (env : Env.t) config ~outer ~inner =
  let joined =
    connects env (P.Join_tree.relations outer) (P.Join_tree.relations inner)
  in
  let methods =
    List.filter
      (fun m -> joined || m = P.Join_method.Nested_loops)
      config.methods
  in
  let mats = if config.materialize_choices then [ false; true ] else [ false ] in
  List.concat_map
    (fun method_ ->
      List.concat_map
        (fun clone ->
          List.map
            (fun materialize ->
              P.Join_tree.join ~clone ~materialize method_ ~outer ~inner)
            mats)
        config.clone_degrees)
    methods

let join_candidates env config ~outer ~rel =
  List.concat_map
    (fun inner -> combine_candidates env config ~outer ~inner)
    (access_plans env config rel)
