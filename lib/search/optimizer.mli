(** The top-level optimizer: minimize response time subject to a work
    bound — the paper's problem statement — or minimize work (the
    traditional problem), over left-deep or bushy trees.

    [minimize_response_time] composes the pieces the way §6.4 prescribes:
    run the work optimizer first to obtain [W_o] and [T_o], derive the
    work cap from the bound, then run the partial-order DP with the cap
    folded into the pruning order. *)

type tree_shape = Left_deep | Bushy

type outcome = {
  best : Parqo_cost.Costmodel.eval option;
      (** the chosen plan; [None] only when the bound excludes everything,
          which cannot happen for the bounds of {!Bounds.t} *)
  work_optimal : Parqo_cost.Costmodel.eval option;
      (** the traditional optimizer's plan (the baseline) *)
  cover : Parqo_cost.Costmodel.eval list;
      (** final cover set of the partial-order phase *)
  stats : Search_stats.t;  (** of the response-time phase *)
  work_stats : Search_stats.t option;  (** of the work phase, if run *)
  gave_up : bool;
      (** the search budget ran out and [best] came from (or was checked
          against) the greedy fallback *)
}

val minimize_work :
  ?config:Space.config -> ?shape:tree_shape -> Parqo_cost.Env.t -> outcome
(** Figure 1 (or its bushy analogue). [shape] defaults to [Left_deep]. *)

val minimize_work_with_orders :
  ?config:Space.config ->
  ?shape:tree_shape ->
  ?domains:int ->
  ?pool:Parqo_util.Domain_pool.t ->
  ?plan_cache:bool ->
  Parqo_cost.Env.t ->
  outcome
(** The System R remedy for the interesting-order violation (§6.1.2):
    work as the ranking objective under the partial order "less work AND
    subsuming output ordering" — i.e. Figure 2 instantiated with
    [Metric.with_ordering Metric.work].  Never returns a plan with more
    work than {!minimize_work}; strictly less when a retained ordering
    saves a later sort. *)

val minimize_response_time :
  ?config:Space.config ->
  ?shape:tree_shape ->
  ?metric:Metric.t ->
  ?bound:Bounds.t ->
  ?rank:(Parqo_cost.Costmodel.eval -> float) ->
  ?budget:Budget.t ->
  ?domains:int ->
  ?pool:Parqo_util.Domain_pool.t ->
  ?plan_cache:bool ->
  Parqo_cost.Env.t ->
  outcome
(** [metric] defaults to the descriptor metric with single-group
    aggregation plus interesting orders (§6.3 advises few dimensions);
    [bound] to [Unbounded].

    [rank] (default response time) selects among final candidates and is
    the objective of every fallback comparison — pass
    {!Parqo_cost.Faultcost.expected_response_time} together with
    [~metric:(Metric.expected_makespan ...)] for failure-aware plan
    choice.

    [budget] (default unlimited) caps the partial-order phase (left-deep
    shape); when exhausted the optimizer degrades gracefully to the
    greedy plan — it always returns a valid plan and never raises, at
    the price of optimality (and possibly of the work bound, which
    greedy does not enforce).

    [domains] (default 1) parallelizes the partial-order phase across an
    OCaml 5 domain pool; [pool] supplies a persistent pool instead of
    creating one per call.  The chosen plan is bit-identical to the
    sequential run (see {!Podp.optimize}).  The work phase and bushy
    search are unaffected.

    [plan_cache] (default on) enables incremental candidate costing in
    the partial-order phase (see {!Podp.optimize}); results are
    bit-identical either way. *)

val default_metric : Parqo_cost.Env.t -> Metric.t

val minimize_under_contention :
  ?config:Space.config ->
  ?shape:tree_shape ->
  ?bound:Bounds.t ->
  ?budget:Budget.t ->
  ?domains:int ->
  ?pool:Parqo_util.Domain_pool.t ->
  ?plan_cache:bool ->
  pressure:float array ->
  Parqo_cost.Env.t ->
  outcome
(** {!minimize_response_time} for a {e loaded} machine: candidates are
    pruned under [Metric.contended ~pressure] (with interesting orders)
    and ranked by [Metric.contention_rank ~pressure] — solo response
    time plus per-resource work priced at the ambient load.  At zero
    pressure the objective coincides with plain response time; as
    pressure grows the ranking flips toward low-work plans (the §2
    work-bound dual made operational; pressure comes from
    [Parqo_sim.Scheduler.expected_pressure] over the active set). *)
