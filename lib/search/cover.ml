type 'a t = {
  dominates : 'a -> 'a -> bool;
  mutable elements : 'a list;
  mutable n : int;  (* always [List.length elements] — size is O(1) *)
}

let create ~dominates = { dominates; elements = []; n = 0 }

let is_covered t x = List.exists (fun e -> t.dominates e x) t.elements

let add t x =
  if is_covered t x then false
  else begin
    let kept = ref 1 in
    t.elements <-
      x
      :: List.filter
           (fun e ->
             let keep = not (t.dominates x e) in
             if keep then incr kept;
             keep)
           t.elements;
    t.n <- !kept;
    true
  end

let elements t = t.elements
let size t = t.n

(* Bounded insertion selection shared by both trims: scan once keeping
   the [keep] smallest under the total order (rank, tie, scan position)
   in a sorted buffer.  Equal (rank, tie) keys compare [false] against an
   occupant, so with positions scanned in ascending order the earlier
   element wins the boundary — exactly the stable-sort-and-take-prefix
   semantics the trim documented, at O(n·keep) without sorting the whole
   cover. *)
let select_top ~keep ~rank ~tie ~n ~get ~put =
  let sel = Array.make keep (get 0) in
  let sel_r = Array.make keep 0. in
  let m = ref 0 in
  for p = 0 to n - 1 do
    let x = get p in
    let r = rank x in
    let lt j =
      match Float.compare r sel_r.(j) with
      | 0 -> tie x sel.(j) < 0
      | c -> c < 0
    in
    if !m < keep then begin
      let j = ref !m in
      while !j > 0 && lt (!j - 1) do
        sel.(!j) <- sel.(!j - 1);
        sel_r.(!j) <- sel_r.(!j - 1);
        decr j
      done;
      sel.(!j) <- x;
      sel_r.(!j) <- r;
      incr m
    end
    else if lt (keep - 1) then begin
      let j = ref (keep - 1) in
      while !j > 0 && lt (!j - 1) do
        sel.(!j) <- sel.(!j - 1);
        sel_r.(!j) <- sel_r.(!j - 1);
        decr j
      done;
      sel.(!j) <- x;
      sel_r.(!j) <- r
    end
  done;
  (* ascending (rank, tie, position), best first *)
  for k = 0 to keep - 1 do
    put k sel.(k)
  done

let trim ?(tie = fun _ _ -> 0) t ~keep ~rank =
  if keep < 1 then invalid_arg "Cover.trim: keep < 1";
  if t.n > keep then begin
    let arr = Array.of_list t.elements in
    let out = Array.make keep arr.(0) in
    select_top ~keep ~rank ~tie ~n:t.n
      ~get:(fun p -> arr.(p))
      ~put:(fun k x -> out.(k) <- x);
    t.elements <- Array.to_list out;
    t.n <- keep
  end

let of_list ~dominates xs =
  let t = create ~dominates in
  List.iter (fun x -> ignore (add t x)) xs;
  t

let pareto ~dominates xs = elements (of_list ~dominates xs)

(* ---------------------------------------------------------------- *)

module Flat = struct
  type 'a t = {
    nd : int;
    refines : ('a -> 'a -> bool) option;
    mutable elems : 'a array;  (* [0..n-1], oldest first *)
    mutable dims : float array;  (* row-major, [nd] floats per element *)
    mutable n : int;
    scratch : float array;  (* the candidate's dims row *)
  }

  let create ~n_dims ?refines () =
    if n_dims < 0 then invalid_arg "Cover.Flat.create: n_dims < 0";
    {
      nd = n_dims;
      refines;
      elems = [||];
      dims = [||];
      n = 0;
      scratch = Array.make n_dims 0.;
    }

  let n_dims t = t.nd
  let size t = t.n
  let clear t = t.n <- 0
  let scratch t = t.scratch

  (* entry [j]'s dims pointwise <= the candidate's *)
  let row_dominates_scratch t j =
    let base = j * t.nd in
    let rec go d =
      d >= t.nd || (t.dims.(base + d) <= t.scratch.(d) && go (d + 1))
    in
    go 0

  let scratch_dominates_row t j =
    let base = j * t.nd in
    let rec go d =
      d >= t.nd || (t.scratch.(d) <= t.dims.(base + d) && go (d + 1))
    in
    go 0

  let refines_ok t a b =
    match t.refines with None -> true | Some r -> r a b

  let is_covered t x =
    let rec go j =
      j < t.n
      && ((row_dominates_scratch t j && refines_ok t t.elems.(j) x) || go (j + 1))
    in
    go 0

  let ensure_room t x =
    if t.n = Array.length t.elems then begin
      let cap = max 8 (2 * t.n) in
      let elems = Array.make cap x in
      Array.blit t.elems 0 elems 0 t.n;
      let dims = Array.make (cap * t.nd) 0. in
      Array.blit t.dims 0 dims 0 (t.n * t.nd);
      t.elems <- elems;
      t.dims <- dims
    end

  let add t x =
    if is_covered t x then false
    else begin
      (* evict entries the candidate dominates; stable compaction keeps
         the survivors' insertion order *)
      let k = ref 0 in
      for j = 0 to t.n - 1 do
        let dead = scratch_dominates_row t j && refines_ok t x t.elems.(j) in
        if not dead then begin
          if !k <> j then begin
            t.elems.(!k) <- t.elems.(j);
            Array.blit t.dims (j * t.nd) t.dims (!k * t.nd) t.nd
          end;
          incr k
        end
      done;
      t.n <- !k;
      ensure_room t x;
      t.elems.(t.n) <- x;
      Array.blit t.scratch 0 t.dims (t.n * t.nd) t.nd;
      t.n <- t.n + 1;
      true
    end

  (* newest first, matching the list implementation's [elements] order *)
  let elements t =
    let acc = ref [] in
    for i = 0 to t.n - 1 do
      acc := t.elems.(i) :: !acc
    done;
    !acc

  let iter_newest_first f t =
    for i = t.n - 1 downto 0 do
      f t.elems.(i)
    done

  let trim ?(tie = fun _ _ -> 0) t ~keep ~rank =
    if keep < 1 then invalid_arg "Cover.trim: keep < 1";
    if t.n > keep then begin
      (* run the selection over scan positions (position [p], newest
         first like the list's head, is array index [t.n - 1 - p]) so
         the winners' dims rows can be carried along by index *)
      let sel_idx = Array.make keep 0 in
      select_top ~keep
        ~rank:(fun p -> rank t.elems.(t.n - 1 - p))
        ~tie:(fun p q -> tie t.elems.(t.n - 1 - p) t.elems.(t.n - 1 - q))
        ~n:t.n
        ~get:(fun p -> p)
        ~put:(fun k p -> sel_idx.(k) <- t.n - 1 - p);
      let tmp_e = Array.make keep t.elems.(0) in
      let tmp_d = Array.make (keep * t.nd) 0. in
      for k = 0 to keep - 1 do
        tmp_e.(k) <- t.elems.(sel_idx.(k));
        Array.blit t.dims (sel_idx.(k) * t.nd) tmp_d (k * t.nd) t.nd
      done;
      (* selection is best first; store reversed so the array (oldest
         first) yields the ascending order back from [elements] *)
      for k = 0 to keep - 1 do
        let dst = keep - 1 - k in
        t.elems.(dst) <- tmp_e.(k);
        Array.blit tmp_d (k * t.nd) t.dims (dst * t.nd) t.nd
      done;
      t.n <- keep
    end
end
