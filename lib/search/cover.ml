type 'a t = {
  dominates : 'a -> 'a -> bool;
  mutable elements : 'a list;
  mutable n : int;  (* always [List.length elements] — size is O(1) *)
}

let create ~dominates = { dominates; elements = []; n = 0 }

let is_covered t x = List.exists (fun e -> t.dominates e x) t.elements

let add t x =
  if is_covered t x then false
  else begin
    let kept = ref 1 in
    t.elements <-
      x
      :: List.filter
           (fun e ->
             let keep = not (t.dominates x e) in
             if keep then incr kept;
             keep)
           t.elements;
    t.n <- !kept;
    true
  end

let elements t = t.elements
let size t = t.n

let trim ?(tie = fun _ _ -> 0) t ~keep ~rank =
  if keep < 1 then invalid_arg "Cover.trim: keep < 1";
  if t.n > keep then begin
    let sorted =
      List.sort
        (fun a b ->
          match Float.compare (rank a) (rank b) with
          | 0 -> tie a b
          | c -> c)
        t.elements
    in
    t.elements <- List.filteri (fun i _ -> i < keep) sorted;
    t.n <- keep
  end

let of_list ~dominates xs =
  let t = create ~dominates in
  List.iter (fun x -> ignore (add t x)) xs;
  t

let pareto ~dominates xs = elements (of_list ~dominates xs)
