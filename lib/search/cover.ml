type 'a t = { dominates : 'a -> 'a -> bool; mutable elements : 'a list }

let create ~dominates = { dominates; elements = [] }

let is_covered t x = List.exists (fun e -> t.dominates e x) t.elements

let add t x =
  if is_covered t x then false
  else begin
    t.elements <- x :: List.filter (fun e -> not (t.dominates x e)) t.elements;
    true
  end

let elements t = t.elements
let size t = List.length t.elements

let trim ?(tie = fun _ _ -> 0) t ~keep ~rank =
  if keep < 1 then invalid_arg "Cover.trim: keep < 1";
  if List.length t.elements > keep then begin
    let sorted =
      List.sort
        (fun a b ->
          match Float.compare (rank a) (rank b) with
          | 0 -> tie a b
          | c -> c)
        t.elements
    in
    t.elements <- List.filteri (fun i _ -> i < keep) sorted
  end

let of_list ~dominates xs =
  let t = create ~dominates in
  List.iter (fun x -> ignore (add t x)) xs;
  t

let pareto ~dominates xs = elements (of_list ~dominates xs)
