module Cm = Parqo_cost.Costmodel
module Env = Parqo_cost.Env
module J = Parqo_plan.Join_tree

type result = {
  best : Cm.eval option;
  sequential : Cm.eval option;
  stats : Search_stats.t;
  evaluated : int;
  gave_up : bool;
}

let max_exhaustive_joins = 5

(* rewrite the [idx]-th join's (post-order) parallel annotations *)
let set_join idx ~clone ~materialize tree =
  let counter = ref (-1) in
  let rec go = function
    | J.Access a -> J.Access a
    | J.Join j ->
      let outer = go j.J.outer in
      let inner = go j.J.inner in
      incr counter;
      if !counter = idx then
        J.join ~clone ~materialize j.J.method_ ~outer ~inner
      else
        J.join ~clone:j.J.clone ~materialize:j.J.materialize j.J.method_
          ~outer ~inner
  in
  go tree

(* rewrite the [idx]-th leaf's (left-to-right) cloning degree *)
let set_leaf idx ~clone tree =
  let counter = ref (-1) in
  let rec go = function
    | J.Access a ->
      incr counter;
      if !counter = idx then J.access ~path:a.J.path ~clone a.J.rel
      else J.Access a
    | J.Join j ->
      let outer = go j.J.outer in
      let inner = go j.J.inner in
      J.join ~clone:j.J.clone ~materialize:j.J.materialize j.J.method_ ~outer
        ~inner
  in
  go tree

let optimize ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.response_time) ?(domains = 1)
    ?pool ?(budget = Budget.unlimited) (env : Env.t) =
  let sequential_config =
    { config with Space.clone_degrees = [ 1 ]; materialize_choices = false }
  in
  let phase1 = Dp.optimize ~config:sequential_config env in
  match phase1.Dp.best with
  | None ->
    { best = None; sequential = None; stats = phase1.Dp.stats; evaluated = 0;
      gave_up = false }
  | Some sequential ->
    let phase2 pool =
    let evaluated = ref 0 in
    (* Phase 2 can enumerate (degrees × mats)^joins assignments, each a
       full costing pass — sparse [Budget.tick]s alone would honor a
       deadline only between whole enumeration rounds.  Every annotation
       slot therefore checks the wall clock cooperatively ([out_of_time])
       before costing; on expiry the enumeration stops where it stands
       and the best assignment seen so far (at worst the phase-1 plan
       itself, which is always costed first) is returned with
       [gave_up = true]. *)
    let tracker = Budget.start budget in
    let skipped = Atomic.make false in
    (* called from pool workers too: the flag must be an atomic *)
    let out_of_time () =
      if Budget.exhausted tracker then begin
        Atomic.set skipped true;
        true
      end
      else false
    in
    (* annotation variants differ in a few slots, so whole sub-trees recur
       across the enumeration: cache every evaluation (remember_all) and
       cost only the changed spine of each variant *)
    let cache = Cm.create_cache ~remember_all:true () in
    let eval tree =
      incr evaluated;
      Budget.tick tracker 1;
      Cm.evaluate_cached cache env tree
    in
    let tree = sequential.Cm.tree in
    let n_joins = J.n_joins tree in
    let n_leaves = J.n_leaves tree in
    let degrees = config.Space.clone_degrees in
    let mats = if config.Space.materialize_choices then [ false; true ] else [ false ] in
    let join_choices =
      List.concat_map (fun c -> List.map (fun m -> (c, m)) mats) degrees
    in
    let best = ref (eval tree) in
    let keep e = if objective e < objective !best then best := e in
    if n_joins <= max_exhaustive_joins then begin
      (* exhaustive cross product over joins, then coordinate pass on
         leaves (leaf degrees interact weakly with each other).  The
         cross product is materialized and costed across the domain
         pool; folding the per-slot results in enumeration order keeps
         the winner identical to the sequential first-strictly-better
         scan. *)
      let assignments = ref [] in
      let rec assign_joins idx tree =
        if out_of_time () then ()
        else if idx >= n_joins then assignments := tree :: !assignments
        else
          List.iter
            (fun (clone, materialize) ->
              assign_joins (idx + 1) (set_join idx ~clone ~materialize tree))
            join_choices
      in
      assign_joins 0 tree;
      let assignments = Array.of_list (List.rev !assignments) in
      let evals = Array.map (fun _ -> None) assignments in
      (* workers read the published snapshot (which holds the shared
         sub-trees cached so far) lock-free and keep private overlays;
         the budget stays a per-task check — each task is a whole
         costing pass, so responsiveness beats batching here *)
      let width = Parqo_util.Domain_pool.width pool in
      let shards =
        Array.init width (fun i -> if i = 0 then cache else Cm.shard_cache cache)
      in
      Cm.publish_cache cache;
      ignore
        (Parqo_util.Domain_pool.run_ranged pool
           ~tasks:(Array.length assignments)
           (fun ~worker ~lo ~hi ->
             for i = lo to hi - 1 do
               if not (out_of_time ()) then begin
                 Budget.tick tracker 1;
                 evals.(i) <-
                   Some (Cm.evaluate_cached shards.(worker) env assignments.(i))
               end
             done));
      Array.iteri
        (fun i shard -> if i > 0 then Cm.absorb_cache cache shard)
        shards;
      Array.iter
        (function
          | Some e ->
            incr evaluated;
            keep e
          | None -> ())
        evals;
      let refined = ref !best in
      for leaf = 0 to n_leaves - 1 do
        List.iter
          (fun clone ->
            if not (out_of_time ()) then begin
              let e = eval (set_leaf leaf ~clone !refined.Cm.tree) in
              if objective e < objective !refined then refined := e
            end)
          degrees
      done;
      keep !refined
    end
    else begin
      (* coordinate descent over all annotation slots to a fixed point *)
      let improved = ref true in
      let rounds = ref 0 in
      while (!improved && !rounds < 5) && not (out_of_time ()) do
        improved := false;
        incr rounds;
        for idx = 0 to n_joins - 1 do
          List.iter
            (fun (clone, materialize) ->
              if not (out_of_time ()) then begin
                let e = eval (set_join idx ~clone ~materialize !best.Cm.tree) in
                if objective e < objective !best then begin
                  best := e;
                  improved := true
                end
              end)
            join_choices
        done;
        for leaf = 0 to n_leaves - 1 do
          List.iter
            (fun clone ->
              if not (out_of_time ()) then begin
                let e = eval (set_leaf leaf ~clone !best.Cm.tree) in
                if objective e < objective !best then begin
                  best := e;
                  improved := true
                end
              end)
            degrees
        done
      done
    end;
    {
      best = Some !best;
      sequential = Some sequential;
      stats = phase1.Dp.stats;
      evaluated = !evaluated;
      gave_up = Atomic.get skipped;
    }
    in
    (match pool with
    | Some p -> phase2 p
    | None -> Parqo_util.Domain_pool.with_pool ~domains phase2)
