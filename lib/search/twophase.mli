(** Two-phase parallel optimization — the XPRS approach of Hong &
    Stonebraker [HS91], the main prior art the paper positions against.

    Phase 1 picks the best *sequential* plan (Figure 1, work metric, no
    parallel annotations); phase 2 parallelizes that fixed join tree by
    choosing cloning degrees and output materialization per node, leaving
    join order, join methods and access paths untouched.

    The paper's argument (§1): the two-phase decomposition is only valid
    under XPRS's architectural assumptions (shared memory, RAID
    aggregating the disks); when resource placement matters, the best
    sequential join order can be impossible to parallelize well, and the
    one-phase partial-order DP wins.  Experiment E13 measures exactly
    that gap. *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
  sequential : Parqo_cost.Costmodel.eval option;
      (** the phase-1 plan, costed with its sequential annotations *)
  stats : Search_stats.t;  (** phase-1 counters *)
  evaluated : int;  (** phase-2 annotation assignments costed *)
  gave_up : bool;
      (** the budget ran out mid-enumeration; [best] is the best
          assignment seen before expiry (at worst the phase-1 tree) *)
}

val optimize :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  ?domains:int ->
  ?pool:Parqo_util.Domain_pool.t ->
  ?budget:Budget.t ->
  Parqo_cost.Env.t ->
  result
(** [config] bounds phase 2's annotation choices (clone degrees,
    materialization); phase 1 always runs on the sequential projection of
    the config (degree 1, no materialization).  [objective] (default
    response time) ranks phase-2 assignments.  Phase 2 enumerates the
    cross product of per-join annotations exactly when the tree has at
    most {!max_exhaustive_joins} joins, and falls back to coordinate
    descent (optimize one join's annotation at a time to a fixed point)
    beyond that.

    [domains] (default 1) spreads the exhaustive enumeration's plan
    costing across a domain pool (clamped to the machine's cores); the
    chosen assignment is identical for every pool size.  [pool] reuses a
    persistent pool instead of creating one per call (the caller keeps
    ownership, [domains] is ignored).  The coordinate-descent fallback is
    inherently sequential and ignores both.

    [budget] (default unlimited) bounds phase 2 with cooperative
    wall-clock checks at every annotation slot — a 1 ms deadline stops a
    clique-5 enumeration within that slot's costing pass rather than
    after the full cross product.  Under a budget the set of assignments
    costed depends on the wall clock, so the result is no longer
    deterministic across runs; [gave_up] reports any truncation.  Phase 1
    is never truncated (it provides the fallback plan). *)

val max_exhaustive_joins : int
(** 5: up to [(degrees × materialize)^5] assignments are enumerated. *)
