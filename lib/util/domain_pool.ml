(* A persistent pool of worker domains for level-synchronous parallel
   loops.

   The pre-pool implementation spawned and joined fresh domains for every
   parallel region — O(levels × domains) spawns per search, each spawn a
   stop-the-world event for the runtime.  Here the workers are spawned
   once at [create] and parked on a condition variable between regions:
   starting a region is one epoch increment plus a broadcast, finishing
   it is one counter decrement per worker.  A parked worker blocks inside
   [Condition.wait], which enters a blocking section, so the runtime's
   backup thread answers stop-the-world polls on its behalf — an idle
   pool does not slow the GC of the calling domain.

   Work distribution is chunked self-scheduling: workers claim contiguous
   index ranges with one fetch-and-add per chunk (adaptive size
   [max 1 (remaining / (8 × width))], so claims start coarse and shrink
   toward the tail for load balance) instead of one atomic operation per
   task.  Callers write results into per-index slots and merge them in
   index order after the barrier, which keeps the overall result
   independent of the scheduling.

   The pool never runs more domains than the machine has cores: [create]
   clamps the width to [Domain.recommended_domain_count ()] unless
   [~oversubscribe:true] (used by the determinism tests, which need real
   cross-domain execution even on a single-core box).  Oversubscribing
   allocating domains on too few cores serializes them through the minor
   collector's stop-the-world barrier — the 3–8× slowdown the earlier
   per-level spawning exhibited on one core — so on a clamped pool the
   [domains > 1] path degrades to the sequential loop and costs only the
   chunk bookkeeping. *)

type stats = {
  spawned : int;
  parallel_runs : int;
  sequential_runs : int;
  parks : int;
}

let no_stats = { spawned = 0; parallel_runs = 0; sequential_runs = 0; parks = 0 }

type t = {
  requested : int;
  width : int;  (* calling domain + spawned workers, after clamping *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* region state, guarded by [m] except where noted *)
  mutable epoch : int;
  mutable job : (worker:int -> lo:int -> hi:int -> unit) option;
  mutable tasks : int;
  mutable active : int;  (* workers still inside the current epoch *)
  mutable failure : exn option;  (* first worker exception of the epoch *)
  mutable stopping : bool;
  next : int Atomic.t;  (* chunk claim cursor (lock-free) *)
  abort : bool Atomic.t;  (* a task raised: stop claiming *)
  participated : bool array;  (* per worker, reset each region *)
  (* lifetime counters, guarded by [m] *)
  mutable n_parallel_runs : int;
  mutable n_sequential_runs : int;
  mutable n_parks : int;
}

let chunk_size ~width ~tasks ~pos = max 1 ((tasks - pos) / (8 * width))

(* Claim and run chunks until the cursor passes [tasks] or a failure
   aborts the region.  Exceptions from [job] are recorded (first wins)
   and abort the region; the claim loop itself never raises. *)
let claim_loop t ~worker ~tasks job =
  let claimed = ref false in
  let rec go () =
    if not (Atomic.get t.abort) then begin
      let pos = Atomic.get t.next in
      if pos < tasks then begin
        let chunk = chunk_size ~width:t.width ~tasks ~pos in
        let lo = Atomic.fetch_and_add t.next chunk in
        if lo < tasks then begin
          let hi = min tasks (lo + chunk) in
          if not !claimed then begin
            claimed := true;
            t.participated.(worker) <- true
          end;
          (try job ~worker ~lo ~hi
           with exn ->
             Atomic.set t.abort true;
             Mutex.lock t.m;
             if t.failure = None then t.failure <- Some exn;
             Mutex.unlock t.m);
          go ()
        end
      end
    end
  in
  go ()

let worker_main t worker =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while t.epoch = !last && not t.stopping do
      Condition.wait t.work_ready t.m
    done;
    if t.stopping then begin
      running := false;
      Mutex.unlock t.m
    end
    else begin
      last := t.epoch;
      let job = Option.get t.job and tasks = t.tasks in
      Mutex.unlock t.m;
      claim_loop t ~worker ~tasks job;
      Mutex.lock t.m;
      t.active <- t.active - 1;
      t.n_parks <- t.n_parks + 1;
      if t.active = 0 then Condition.signal t.work_done;
      Mutex.unlock t.m
    end
  done

let create ?(oversubscribe = false) ~domains () =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let width =
    if oversubscribe then domains
    else max 1 (min domains (Domain.recommended_domain_count ()))
  in
  let t =
    {
      requested = domains;
      width;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      job = None;
      tasks = 0;
      active = 0;
      failure = None;
      stopping = false;
      next = Atomic.make 0;
      abort = Atomic.make false;
      participated = Array.make width false;
      n_parallel_runs = 0;
      n_sequential_runs = 0;
      n_parks = 0;
    }
  in
  t.workers <-
    Array.init (width - 1) (fun i -> Domain.spawn (fun () -> worker_main t (i + 1)));
  t

let requested t = t.requested
let width t = t.width

let stats t =
  Mutex.lock t.m;
  let s =
    {
      spawned = Array.length t.workers;
      parallel_runs = t.n_parallel_runs;
      sequential_runs = t.n_sequential_runs;
      parks = t.n_parks;
    }
  in
  Mutex.unlock t.m;
  s

let diff_stats a b =
  {
    spawned = b.spawned - a.spawned;
    parallel_runs = b.parallel_runs - a.parallel_runs;
    sequential_runs = b.sequential_runs - a.sequential_runs;
    parks = b.parks - a.parks;
  }

let shutdown t =
  Mutex.lock t.m;
  let workers = t.workers in
  if not t.stopping then begin
    t.stopping <- true;
    t.workers <- [||];
    Condition.broadcast t.work_ready
  end;
  Mutex.unlock t.m;
  Array.iter Domain.join workers

(* The sequential path still iterates in chunks so callers that poll a
   budget per chunk (Podp) keep the same cancellation granularity with
   and without workers. *)
let run_sequential t ~tasks job =
  t.n_sequential_runs <- t.n_sequential_runs + 1;
  let pos = ref 0 in
  while !pos < tasks do
    let hi = min tasks (!pos + chunk_size ~width:1 ~tasks ~pos:!pos) in
    job ~worker:0 ~lo:!pos ~hi;
    pos := hi
  done;
  min tasks 1

let run_ranged t ~tasks job =
  if tasks < 0 then invalid_arg "Domain_pool.run_ranged: tasks < 0";
  if t.stopping then invalid_arg "Domain_pool.run_ranged: pool is shut down";
  if t.width = 1 || tasks <= 1 then run_sequential t ~tasks job
  else begin
    Mutex.lock t.m;
    if t.active <> 0 || t.job <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.run_ranged: concurrent run on one pool"
    end;
    Atomic.set t.next 0;
    Atomic.set t.abort false;
    Array.fill t.participated 0 t.width false;
    t.job <- Some job;
    t.tasks <- tasks;
    t.failure <- None;
    t.active <- Array.length t.workers;
    t.epoch <- t.epoch + 1;
    t.n_parallel_runs <- t.n_parallel_runs + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    (* the calling domain participates as worker 0 *)
    claim_loop t ~worker:0 ~tasks job;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    let participants =
      Array.fold_left (fun n p -> if p then n + 1 else n) 0 t.participated
    in
    Mutex.unlock t.m;
    (match failure with Some exn -> raise exn | None -> ());
    max 1 participants
  end

let run t ~tasks f =
  ignore
    (run_ranged t ~tasks (fun ~worker:_ ~lo ~hi ->
         for i = lo to hi - 1 do
           f i
         done))

let with_pool ?oversubscribe ~domains f =
  let t = create ?oversubscribe ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
