type t = { domains : int }

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  { domains }

let size t = t.domains

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Domain_pool.run: tasks < 0";
  if t.domains = 1 || tasks <= 1 then
    for i = 0 to tasks - 1 do
      f i
    done
  else begin
    (* Dynamic self-scheduling over a shared index: workers claim the next
       task with an atomic fetch-and-add, so load imbalance between tasks
       costs at most one task of idle time per worker.  Callers must write
       results into per-task slots — which task runs on which domain is
       not deterministic, only the task set is. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < tasks then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init
        (min (t.domains - 1) (tasks - 1))
        (fun _ -> Domain.spawn worker)
    in
    (* the calling domain participates; join even if it raises so no
       domain outlives the run *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join spawned) worker
  end
