(** A bounded pool of OCaml 5 domains for level-synchronous parallel
    loops.

    The optimizer's partial-order DP processes each subset size as one
    parallel region: every task reads only state written by strictly
    earlier regions, so {!run}'s return is a barrier.  Workers claim task
    indices dynamically (atomic fetch-and-add); the caller stores each
    task's output in a per-index slot and merges the slots afterwards in
    index order, which makes the overall result independent of the
    scheduling.

    With [domains = 1] (or at most one task) {!run} degrades to a plain
    sequential [for] loop on the calling domain — no domain is ever
    spawned, so the default code path is exactly the pre-parallel one. *)

type t

val create : domains:int -> t
(** [create ~domains] sizes the pool: each {!run} uses the calling domain
    plus at most [domains - 1] spawned workers.  Raises
    [Invalid_argument] if [domains < 1]. *)

val size : t -> int

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks - 1)], each exactly once,
    and returns when all are done (a barrier).  [f] must be safe to call
    from any domain and must not assume any execution order.  Exceptions
    raised by tasks are re-raised after all workers have been joined. *)
