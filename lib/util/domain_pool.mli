(** A persistent pool of OCaml 5 domains for level-synchronous parallel
    loops.

    The optimizer's partial-order DP processes each subset size as one
    parallel region: every task reads only state written by strictly
    earlier regions, so {!run_ranged}'s return is a barrier.  Workers are
    spawned once at {!create} and parked on a condition variable between
    regions (a parked worker blocks in [Condition.wait], so the runtime's
    backup thread answers stop-the-world polls for it); starting a region
    costs one epoch bump and a broadcast, not a [Domain.spawn] per
    worker.

    Workers claim contiguous index ranges ("chunks") with one
    fetch-and-add per chunk; the chunk size adapts as
    [max 1 (remaining / (8 × width))] so claims start coarse and shrink
    toward the tail.  The caller stores each task's output in a per-index
    slot and merges the slots in index order afterwards, which makes the
    overall result independent of the scheduling.

    {!create} clamps the pool's width to the machine's core count
    ([Domain.recommended_domain_count ()]) unless [oversubscribe] is set:
    running more allocating domains than cores serializes them through
    the minor collector's stop-the-world barrier and can cost several
    times the sequential wall-clock.  On a clamped single-core pool every
    region degrades to a chunked sequential loop on the calling domain —
    bit-identical by construction and within noise of [domains = 1]. *)

type t

type stats = {
  spawned : int;  (** worker domains spawned over the pool's lifetime *)
  parallel_runs : int;  (** regions executed with at least one worker *)
  sequential_runs : int;  (** regions served on the calling domain alone *)
  parks : int;  (** times a worker finished a region and went back to waiting *)
}

val no_stats : stats
(** All-zero counters (the [domains = 1] / no-pool baseline). *)

val create : ?oversubscribe:bool -> domains:int -> unit -> t
(** [create ~domains ()] spawns the pool's workers immediately: the
    calling domain plus [width - 1] spawned workers, where [width] is
    [domains] clamped to [Domain.recommended_domain_count ()] (unless
    [oversubscribe], default false, which forces [width = domains] —
    for tests that must exercise real cross-domain execution).  Raises
    [Invalid_argument] if [domains < 1].  Pools must be released with
    {!shutdown} (or use {!with_pool}). *)

val requested : t -> int
(** The [domains] argument given to {!create}. *)

val width : t -> int
(** Effective parallel width: 1 (the calling domain) + spawned workers. *)

val run_ranged : t -> tasks:int -> (worker:int -> lo:int -> hi:int -> unit) -> int
(** [run_ranged t ~tasks job] executes [job] over chunked ranges covering
    [0 .. tasks - 1], each index in exactly one chunk, and returns when
    all are done (a barrier).  [job ~worker ~lo ~hi] must process indices
    [lo .. hi - 1]; [worker] identifies the executing lane
    ([0 .. width t - 1], 0 being the calling domain) and is stable within
    a region — per-lane accumulators can be indexed by it.  Chunk
    boundaries are the natural place for cooperative cancellation checks
    (a budget's clock read per chunk, not per task).

    Returns the number of lanes that executed at least one chunk — what
    actually ran, as opposed to the pool's width.  With [width t = 1] or
    [tasks <= 1] the region runs as a chunked sequential loop on the
    calling domain (no synchronization at all) and returns
    [min tasks 1].

    [job] must be safe to call from any domain and must not assume any
    execution order.  If a chunk raises, claiming stops and the first
    exception is re-raised after all workers have parked — the pool
    remains usable.  Raises [Invalid_argument] on [tasks < 0], on a pool
    already shut down, and on overlapping regions (one pool runs one
    region at a time). *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] is {!run_ranged} with [f] applied to every index of
    each chunk — the per-task interface for callers that need no lane
    accumulators. *)

val stats : t -> stats

val diff_stats : stats -> stats -> stats
(** [diff_stats before after] — the counters one bracketed workload
    contributed (pools persist across searches, so lifetime counters must
    be differenced). *)

val shutdown : t -> unit
(** Park-joins every worker.  Idempotent; the pool cannot run regions
    afterwards. *)

val with_pool : ?oversubscribe:bool -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] brackets {!create} and {!shutdown} around
    [f] — shutdown runs even if [f] raises, so no domain leaks. *)
