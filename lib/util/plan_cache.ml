(* A domain-safe string-keyed memo table.

   Values are pure functions of their key (a canonical plan rendering),
   so concurrent writers can only ever store equal values — the mutex
   exists to keep the hashtable's internal structure consistent, the same
   discipline as the sparse Estimator memo.  Hit/miss counters are
   atomics so bench code can report cache effectiveness without locks. *)

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  epoch : int Atomic.t;
}

let create ?(size_hint = 1024) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create size_hint;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    epoch = Atomic.make 0;
  }

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

let remember t key v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.table key v;
  Mutex.unlock t.mutex

let epoch t = Atomic.get t.epoch

(* The clear and the epoch increment happen under the same lock, so no
   entry computed against the old epoch can survive into the new one, and
   [remember_at] below can never interleave a stale insert between them. *)
let bump t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Atomic.incr t.epoch;
  Mutex.unlock t.mutex

let remember_at t ~epoch key v =
  Mutex.lock t.mutex;
  if Atomic.get t.epoch = epoch then Hashtbl.replace t.table key v;
  Mutex.unlock t.mutex

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
    let v = compute () in
    remember t key v;
    v

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Mutex.unlock t.mutex;
  Atomic.set t.hits 0;
  Atomic.set t.misses 0

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
