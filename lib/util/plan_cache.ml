(* A plan memo split into a shared frozen snapshot and a single-owner
   overlay.

   The previous implementation guarded one hashtable with a mutex and
   bumped atomic hit/miss counters on every [find] — so the fully
   sequential search paid a lock and two atomic RMWs per candidate
   evaluation, and a parallel search serialized every worker through the
   same cache line.  The split removes both:

   - [snapshot] is an immutable hashtable published through an [Atomic]:
     readers probe it with no lock at all.  Publishing builds a fresh
     table and swaps the atomic, so a racing reader sees either the old
     or the new snapshot, both internally consistent; the [Atomic]
     provides the release/acquire edge the OCaml memory model requires
     for safe publication.

   - [overlay] is a plain hashtable private to the handle's owner: finds
     probe it first, writes land in it, hit/miss counters are plain ints
     beside it.  No synchronization, because exactly one domain owns a
     handle at a time.

   Cross-domain sharing goes through {!shard}: a shard is a fresh handle
   (own overlay, own counters) on the same snapshot and epoch.  A
   coordinator hands one shard to each worker, then {!absorb}s the
   shards back (merging overlays and summing counters) and {!publish}es
   to fold its overlay into the next snapshot — the per-level cadence of
   the partial-order DP, where every level reads only entries published
   by earlier levels.

   Values must be pure functions of (key, epoch): two shards may compute
   the same key independently and both results are interchangeable. *)

type 'a t = {
  snapshot : (string, 'a) Hashtbl.t Atomic.t;  (* shared, frozen tables *)
  epoch_ : int Atomic.t;  (* shared across shards *)
  overlay : (string, 'a) Hashtbl.t;  (* private to the owner *)
  mutable hits : int;  (* private to the owner *)
  mutable misses : int;
}

let create ?(size_hint = 1024) () =
  {
    snapshot = Atomic.make (Hashtbl.create size_hint);
    epoch_ = Atomic.make 0;
    overlay = Hashtbl.create size_hint;
    hits = 0;
    misses = 0;
  }

let shard t =
  {
    snapshot = t.snapshot;
    epoch_ = t.epoch_;
    overlay = Hashtbl.create 64;
    hits = 0;
    misses = 0;
  }

let find t key =
  let r =
    match Hashtbl.find_opt t.overlay key with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt (Atomic.get t.snapshot) key
  in
  (match r with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  r

let remember t key v = Hashtbl.replace t.overlay key v

let absorb t shard =
  Hashtbl.iter (fun k v -> Hashtbl.replace t.overlay k v) shard.overlay;
  Hashtbl.reset shard.overlay;
  t.hits <- t.hits + shard.hits;
  t.misses <- t.misses + shard.misses;
  shard.hits <- 0;
  shard.misses <- 0

let publish t =
  if Hashtbl.length t.overlay > 0 then begin
    let old = Atomic.get t.snapshot in
    let next = Hashtbl.create (2 * (Hashtbl.length old + Hashtbl.length t.overlay)) in
    Hashtbl.iter (fun k v -> Hashtbl.replace next k v) old;
    Hashtbl.iter (fun k v -> Hashtbl.replace next k v) t.overlay;
    Hashtbl.reset t.overlay;
    Atomic.set t.snapshot next
  end

let epoch t = Atomic.get t.epoch_

(* Owner-only: the overlay reset, the snapshot swap and the epoch bump
   are not atomic as a group, but only the owner may write, and
   [remember_at] compares against the epoch observed before computing —
   a stale write can only target the overlay of the same owner, which
   the owner just reset. *)
let bump t =
  Hashtbl.reset t.overlay;
  Atomic.set t.snapshot (Hashtbl.create 16);
  Atomic.incr t.epoch_

let remember_at t ~epoch key v =
  if Atomic.get t.epoch_ = epoch then remember t key v

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
    let v = compute () in
    remember t key v;
    v

let length t =
  let snapshot = Atomic.get t.snapshot in
  Hashtbl.length snapshot
  + Hashtbl.fold
      (fun k _ n -> if Hashtbl.mem snapshot k then n else n + 1)
      t.overlay 0

let clear t =
  Hashtbl.reset t.overlay;
  Atomic.set t.snapshot (Hashtbl.create 16);
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
