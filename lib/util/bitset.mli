(** Sets of small integers (0 .. 61) represented as bits of an [int].

    Used throughout the optimizer to represent sets of base relations: a
    query over [n] relations identifies each relation with an index in
    [0 .. n-1], and a subquery with the set of indices it covers.  All
    operations are O(1) or O(cardinality). *)

type t = private int
(** A set of integers in [0 .. max_element]. The representation is the
    canonical bit mask, so structural equality and [compare] coincide with
    set equality and an (arbitrary) total order. *)

val max_element : int
(** Largest storable element, [61] on 64-bit platforms. *)

val empty : t

val full : int -> t
(** [full n] is the set [{0, ..., n-1}]. Raises [Invalid_argument] unless
    [0 <= n <= max_element + 1]. *)

val singleton : int -> t

val of_list : int list -> t

val to_list : t -> int list
(** Elements in increasing order. *)

val mem : int -> t -> bool

val add : int -> t -> t

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val is_empty : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val cardinal : t -> int

val choose : t -> int
(** Smallest element. Raises [Not_found] on the empty set. *)

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val subsets_of_size : int -> size:int -> t list
(** [subsets_of_size n ~size] lists all subsets of [full n] with exactly
    [size] elements, in increasing mask order.  Enumerated with Gosper's
    hack in O(C(n,size)) — no scan of the full 2^n mask space. *)

val proper_nonempty_subsets : t -> t list
(** All subsets of [s] that are neither empty nor [s] itself, in increasing
    mask order.  Used to enumerate bushy-tree splits. *)

val to_int : t -> int
(** The underlying mask, usable as an array index (dense DP tables). *)

val of_int_unsafe : int -> t
(** Inverse of [to_int]; the caller must supply a valid mask. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0,2,3}]. *)
