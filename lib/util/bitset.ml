type t = int

let max_element = 61

let empty = 0

let full n =
  if n < 0 || n > max_element + 1 then invalid_arg "Bitset.full";
  if n = 0 then 0 else (-1) lsr (62 - n) land ((1 lsl n) - 1)

let singleton i =
  if i < 0 || i > max_element then invalid_arg "Bitset.singleton";
  1 lsl i

let mem i s = s land (1 lsl i) <> 0
let add i s = s lor singleton i
let remove i s = s land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let is_empty s = s = 0
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let choose s =
  if s = 0 then raise Not_found;
  (* index of least significant set bit *)
  let rec find i = if s land (1 lsl i) <> 0 then i else find (i + 1) in
  find 0

let iter f s =
  let rec loop i s =
    if s <> 0 then begin
      if s land 1 <> 0 then f i;
      loop (i + 1) (s lsr 1)
    end
  in
  loop 0 s

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

(* exists/for_all short-circuit: the search hot path probes adjacency
   bitsets with these, so an early hit must not scan the remaining bits *)
let exists p s =
  let rec loop i s =
    s <> 0 && ((s land 1 <> 0 && p i) || loop (i + 1) (s lsr 1))
  in
  loop 0 s

let for_all p s = not (exists (fun i -> not (p i)) s)
let of_list l = List.fold_left (fun s i -> add i s) empty l
let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let subsets_of_size n ~size =
  let all = full n in
  if size < 0 then invalid_arg "Bitset.subsets_of_size";
  if size = 0 then [ empty ]
  else if size > n then []
  else begin
    (* Gosper's hack: from a size-k mask, the next larger size-k mask is
       [r lor (((v lxor r) lsr 2) / c)] with [c] the lowest set bit and
       [r = v + c] — O(C(n,k)) total instead of scanning all 2^n masks. *)
    let rec loop v acc =
      let acc = v :: acc in
      let c = v land -v in
      let r = v + c in
      let v' = r lor (((v lxor r) lsr 2) / c) in
      (* v' < v: the carry overflowed past the top bit — last subset *)
      if v' > all || v' < v then List.rev acc else loop v' acc
    in
    loop ((1 lsl size) - 1) []
  end

let proper_nonempty_subsets s =
  (* Enumerate submasks of [s] with the standard (sub - 1) land s trick,
     then keep proper non-empty ones in increasing order. *)
  let rec loop sub acc =
    let acc = if sub <> 0 && sub <> s then sub :: acc else acc in
    if sub = 0 then acc else loop ((sub - 1) land s) acc
  in
  loop s []

let to_int s = s
let of_int_unsafe m = m

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
