(** Structured runtime errors.

    Validation and execution failures used to surface as bare
    [Invalid_argument]/[Failure] strings, indistinguishable from stdlib
    raises and carrying no context.  [Parqo_error.t] records which
    subsystem detected the problem and, when known, the operator, stage,
    query and serving phase involved — so fault reports (injected,
    expected), validation errors (a malformed plan) and serving failures
    (a poisoned request) can be told apart and rendered uniformly.  Every
    [bin/] entry point prints {!to_string} and exits nonzero instead of
    dumping a backtrace. *)

type t = {
  subsystem : string;  (** e.g. ["simulator"], ["parallel-exec"], ["serve"] *)
  operator : string option;  (** operator kind, e.g. ["hash_probe"] *)
  stage : int option;  (** task-graph stage id, when applicable *)
  query : string option;
      (** canonical query fingerprint ({!Parqo_query.Query.fingerprint})
          of the request being served, when applicable *)
  phase : string option;
      (** serving phase, e.g. ["optimize"], ["admission"] *)
  deadline_left : float option;
      (** wall-clock seconds remaining until the request's deadline when
          the error was raised; non-positive means it had already passed *)
  message : string;
}

exception Error of t

val fail :
  subsystem:string ->
  ?operator:string ->
  ?stage:int ->
  ?query:string ->
  ?phase:string ->
  ?deadline_left:float ->
  string ->
  'a
(** Raise {!Error} with the given context. *)

val failf :
  subsystem:string ->
  ?operator:string ->
  ?stage:int ->
  ?query:string ->
  ?phase:string ->
  ?deadline_left:float ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [fail] with a format string. *)

val to_string : t -> string
(** ["parqo[serve/optimize]: message (query <fp>, deadline left 12ms)"] —
    also installed as the [Printexc] printer for {!Error}. *)
