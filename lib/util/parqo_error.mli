(** Structured runtime errors.

    Validation and execution failures used to surface as bare
    [Invalid_argument]/[Failure] strings, indistinguishable from stdlib
    raises and carrying no context.  [Parqo_error.t] records which
    subsystem detected the problem and, when known, the operator and
    stage involved — so fault reports (injected, expected) and
    validation errors (a malformed plan) can be told apart and rendered
    uniformly. *)

type t = {
  subsystem : string;  (** e.g. ["simulator"], ["parallel-exec"] *)
  operator : string option;  (** operator kind, e.g. ["hash_probe"] *)
  stage : int option;  (** task-graph stage id, when applicable *)
  message : string;
}

exception Error of t

val fail : subsystem:string -> ?operator:string -> ?stage:int -> string -> 'a
(** Raise {!Error} with the given context. *)

val failf :
  subsystem:string ->
  ?operator:string ->
  ?stage:int ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [fail] with a format string. *)

val to_string : t -> string
(** ["parqo[simulator/stage 3]: message"] — also installed as the
    [Printexc] printer for {!Error}. *)
