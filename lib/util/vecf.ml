type t = float array

(* All loops below are written as direct index loops over float arrays
   (never [Array.init]/[Array.fold_left] with a float-returning closure):
   OCaml's flat float-array representation makes the direct loops
   allocation-free, while the polymorphic combinators box every
   intermediate float — measurably dominant in the optimizer's costing
   hot path, where these vectors are combined per candidate operator. *)

let make dim x = Array.make dim x
let zero dim = Array.make dim 0.
let of_array a = Array.copy a
let to_array v = Array.copy v
let init = Array.init
let dim = Array.length
let get v i = v.(i)

let set v i x =
  let v' = Array.copy v in
  v'.(i) <- x;
  v'

let check_dim a b = if Array.length a <> Array.length b then invalid_arg "Vecf: dimension mismatch"

let map2 f a b =
  check_dim a b;
  let n = Array.length a in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- f a.(i) b.(i)
  done;
  out

let add a b =
  check_dim a b;
  let n = Array.length a in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- a.(i) +. b.(i)
  done;
  out

let sub a b =
  check_dim a b;
  let n = Array.length a in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- a.(i) -. b.(i)
  done;
  out

let scale k v =
  let n = Array.length v in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- k *. v.(i)
  done;
  out

let pointwise_max a b = map2 Float.max a b

(* [Float.max]/[Float.min] are proper function calls without flambda —
   each one boxes both arguments — and the costing loops call them per
   coordinate.  On the costing domain neither NaN nor -0. ever occurs
   (every value is built from non-negative parameters with +, *, /, max),
   and on that domain the comparison branch returns the same bits, while
   reliably compiling to an unboxed compare. *)
let fmax (a : float) (b : float) = if a >= b then a else b
let fmin (a : float) (b : float) = if a <= b then a else b

let max_coord v =
  let acc = Array.make 1 neg_infinity in
  for i = 0 to Array.length v - 1 do
    acc.(0) <- (if acc.(0) >= v.(i) then acc.(0) else v.(i))
  done;
  acc.(0)

let sum v =
  (* one-slot float array: unboxed accumulator without flambda *)
  let acc = Array.make 1 0. in
  for i = 0 to Array.length v - 1 do
    acc.(0) <- acc.(0) +. v.(i)
  done;
  acc.(0)

let dominates a b =
  check_dim a b;
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal ?(eps = 0.) a b =
  Array.length a = Array.length b
  &&
  let rec loop i =
    i >= Array.length a || (Float.abs (a.(i) -. b.(i)) <= eps && loop (i + 1))
  in
  loop 0

let map = Array.map

let clamp_non_negative v =
  let n = Array.length v in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- fmax 0. v.(i)
  done;
  out

(* ---- scratch-buffer interface (allocation-free costing) ---- *)

let unsafe_adopt a = a
let unsafe_raw v = v

let blit_into v dst = Array.blit v 0 dst 0 (Array.length v)

let add_into a b dst =
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) +. b.(i)
  done

let residual_into whole front dst =
  for i = 0 to Array.length whole - 1 do
    dst.(i) <- fmax 0. (whole.(i) -. front.(i))
  done

let pp ppf v =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3g") v)))
