(** Dense float vectors with coordinate-wise arithmetic.

    Resource vectors in the cost model (per-resource work, §5.2 of the
    paper) are [Vecf.t] values whose dimension equals the number of modeled
    resources of the machine. *)

type t
(** An immutable vector of floats. *)

val make : int -> float -> t
(** [make dim x] is the [dim]-vector with every coordinate [x]. *)

val zero : int -> t

val of_array : float array -> t
(** Copies the array. *)

val to_array : t -> float array
(** Fresh copy. *)

val init : int -> (int -> float) -> t

val dim : t -> int

val get : t -> int -> float

val set : t -> int -> float -> t
(** Functional update. *)

val add : t -> t -> t
(** Coordinate-wise sum. Raises [Invalid_argument] on dimension mismatch. *)

val sub : t -> t -> t
(** Coordinate-wise difference. *)

val scale : float -> t -> t

val pointwise_max : t -> t -> t

val fmax : float -> float -> float
(** [if a >= b then a else b] — bit-identical to [Float.max] when
    neither argument is NaN and [-0.] cannot reach the left slot of a
    [(-0., +0.)] tie (the costing path only ever produces [+0.]), but
    small enough to inline without flambda where [Float.max] stays an
    allocating call. *)

val fmin : float -> float -> float
(** [if a <= b then a else b]; the [Float.min] counterpart of {!fmax}. *)

val max_coord : t -> float
(** Largest coordinate; [neg_infinity] for the 0-dimensional vector. *)

val sum : t -> float

val dominates : t -> t -> bool
(** [dominates a b] iff [a.(i) <= b.(i)] for every coordinate — the
    l-dimensional less-than of §6.2. *)

val equal : ?eps:float -> t -> t -> bool

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val clamp_non_negative : t -> t
(** Replaces negative coordinates by [0.]; used when subtracting a
    materialized front introduces small negative residuals. *)

(** {2 Scratch-buffer interface}

    The costing hot path combines vectors once per candidate operator;
    these entry points let it run on caller-owned [float array] scratch
    buffers with no allocation, then adopt the final buffer as a vector
    without a copy.  Ownership rule: an adopted array must never be
    written again, and a raw view must never outlive the vector's
    immutability assumption — callers are the cost calculus internals
    ({!Parqo_cost.Descriptor}, {!Parqo_cost.Opcost}), not general code. *)

val unsafe_adopt : float array -> t
(** Wraps the array as a vector {e without copying}.  The caller gives up
    ownership: mutating the array afterwards breaks immutability. *)

val unsafe_raw : t -> float array
(** The vector's backing array {e without copying} — read-only view. *)

val blit_into : t -> float array -> unit
(** Copies the vector's coordinates into the buffer's prefix. *)

val add_into : t -> t -> float array -> unit
(** [add_into a b dst] writes the coordinate-wise sum into [dst]. *)

val residual_into : t -> t -> float array -> unit
(** [residual_into whole front dst]: [dst.(i) = max 0 (whole.(i) - front.(i))]
    — the fused [clamp_non_negative (sub whole front)] of the [⊖]
    operator, bit-identical to the two-step form. *)

val pp : Format.formatter -> t -> unit
