type t = {
  subsystem : string;
  operator : string option;
  stage : int option;
  query : string option;
  phase : string option;
  deadline_left : float option;
  message : string;
}

exception Error of t

let to_string e =
  let ctx =
    String.concat "/"
      (e.subsystem
       :: List.filter_map Fun.id
            [
              e.phase;
              Option.map (fun op -> "op " ^ op) e.operator;
              Option.map (fun s -> Printf.sprintf "stage %d" s) e.stage;
            ])
  in
  let extras =
    List.filter_map Fun.id
      [
        Option.map (fun q -> "query " ^ q) e.query;
        Option.map
          (fun d ->
            if d <= 0. then "deadline exceeded"
            else Printf.sprintf "deadline left %.0fms" (1000. *. d))
          e.deadline_left;
      ]
  in
  Printf.sprintf "parqo[%s]: %s%s" ctx e.message
    (if extras = [] then ""
     else " (" ^ String.concat ", " extras ^ ")")

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)

let fail ~subsystem ?operator ?stage ?query ?phase ?deadline_left message =
  raise
    (Error { subsystem; operator; stage; query; phase; deadline_left; message })

let failf ~subsystem ?operator ?stage ?query ?phase ?deadline_left fmt =
  Printf.ksprintf (fail ~subsystem ?operator ?stage ?query ?phase ?deadline_left) fmt
