type t = {
  subsystem : string;
  operator : string option;
  stage : int option;
  message : string;
}

exception Error of t

let to_string e =
  let ctx =
    String.concat "/"
      (e.subsystem
       :: List.filter_map Fun.id
            [
              Option.map (fun op -> "op " ^ op) e.operator;
              Option.map (fun s -> Printf.sprintf "stage %d" s) e.stage;
            ])
  in
  Printf.sprintf "parqo[%s]: %s" ctx e.message

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)

let fail ~subsystem ?operator ?stage message =
  raise (Error { subsystem; operator; stage; message })

let failf ~subsystem ?operator ?stage fmt =
  Printf.ksprintf (fail ~subsystem ?operator ?stage) fmt
