(** A domain-safe memo table keyed by canonical plan keys.

    The incremental costing layer stores one entry per memoized sub-plan
    (its operator-tree expansion, resource descriptor and output
    ordering), keyed by the plan's interned canonical rendering
    ({!Parqo_plan.Join_tree.key} — but this module is generic, any
    injective string key works).

    All operations are safe to call from concurrent domains: the table is
    mutex-guarded and the hit/miss counters are atomic.  Callers must
    only store values that are pure functions of the key, so a racing
    insert can never change what a reader observes. *)

type 'a t

val create : ?size_hint:int -> unit -> 'a t

val find : 'a t -> string -> 'a option
(** Also bumps the hit or miss counter. *)

val remember : 'a t -> string -> 'a -> unit

val epoch : 'a t -> int
(** Current invalidation epoch, starting at 0.  Values are pure functions
    of (key, epoch): whenever what the keys denote may have changed
    (a catalog or machine update), {!bump} the epoch instead of trusting
    callers to stop reading. *)

val bump : 'a t -> unit
(** Invalidate every entry and increment {!epoch}, atomically: a reader
    can never observe a pre-bump value under the post-bump epoch.
    Hit/miss counters are preserved (unlike {!clear}). *)

val remember_at : 'a t -> epoch:int -> string -> 'a -> unit
(** [remember_at t ~epoch key v] stores [v] only if [t] is still at
    [epoch] — the write path for values computed before a possible
    concurrent {!bump}.  A stale write is silently dropped, which makes
    post-bump staleness impossible by construction: compute, then call
    this with the epoch observed {e before} the computation started. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [compute] runs outside the lock: two domains may race to compute the
    same key, in which case both results (necessarily equal) are stored
    in turn. *)

val length : 'a t -> int

val clear : 'a t -> unit
(** Also resets the counters. *)

val hits : 'a t -> int

val misses : 'a t -> int
