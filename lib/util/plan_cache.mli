(** A memo table keyed by canonical plan keys, split into a shared frozen
    snapshot and a single-owner overlay.

    The incremental costing layer stores one entry per memoized sub-plan
    (its operator-tree expansion, resource descriptor and output
    ordering), keyed by the plan's interned canonical rendering
    ({!Parqo_plan.Join_tree.key} — but this module is generic, any
    injective string key works).

    A handle is owned by exactly one domain at a time; {!find} and
    {!remember} take no lock and touch no atomic — the sequential search
    path is synchronization-free.  Concurrent use goes through shards:

    - {!shard} derives a worker-private handle over the same snapshot;
      workers read the snapshot lock-free and write only their own
      overlay.
    - {!absorb} merges a quiesced shard's overlay and counters back into
      the parent (coordinator-side, after the barrier).
    - {!publish} folds the owner's overlay into a freshly built snapshot
      and swaps it in atomically, making the entries visible to shards
      created (or probing) afterwards.

    Stored values must be pure functions of (key, {!epoch}), so
    independently computed entries for one key are interchangeable. *)

type 'a t

val create : ?size_hint:int -> unit -> 'a t

val find : 'a t -> string -> 'a option
(** Probes the private overlay, then the published snapshot.  Also bumps
    the handle's hit or miss counter.  Lock-free. *)

val remember : 'a t -> string -> 'a -> unit
(** Writes the private overlay; visible to this handle's {!find}
    immediately, to other shards only after {!publish}. *)

val shard : 'a t -> 'a t
(** A fresh private handle (empty overlay, zero counters) sharing the
    parent's snapshot and epoch.  Hand one per worker; never share one
    handle between two domains. *)

val absorb : 'a t -> 'a t -> unit
(** [absorb parent shard] merges the shard's overlay into the parent's
    overlay (shard entries win, though by purity they cannot differ) and
    adds its counters, then empties the shard.  Call only after the
    shard's owner has quiesced (post-barrier). *)

val publish : 'a t -> unit
(** Fold the overlay into a new snapshot table and swap it in.  Readers
    racing with the swap see the old or the new snapshot, never a
    mixture.  No-op on an empty overlay. *)

val epoch : 'a t -> int
(** Current invalidation epoch, starting at 0 and shared across shards.
    Values are pure functions of (key, epoch): whenever what the keys
    denote may have changed (a catalog or machine update), {!bump} the
    epoch instead of trusting callers to stop reading. *)

val bump : 'a t -> unit
(** Invalidate every entry (overlay and snapshot) and increment
    {!epoch}.  Owner-only, like every write.  Hit/miss counters are
    preserved (unlike {!clear}). *)

val remember_at : 'a t -> epoch:int -> string -> 'a -> unit
(** [remember_at t ~epoch key v] stores [v] only if [t] is still at
    [epoch] — the write path for values computed before a possible
    {!bump}.  A stale write is silently dropped: compute, then call this
    with the epoch observed {e before} the computation started. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a

val length : 'a t -> int
(** Distinct keys across snapshot and overlay. *)

val clear : 'a t -> unit
(** Empty the cache and reset the counters (epoch unchanged). *)

val hits : 'a t -> int
(** Hits recorded through this handle (absorbed shards included). *)

val misses : 'a t -> int
