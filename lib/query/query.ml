module Bitset = Parqo_util.Bitset

type column_ref = { rel : int; column : string }
type join_pred = { left : column_ref; right : column_ref }
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type selection = { on : column_ref; cmp : cmp; value : Parqo_catalog.Value.t }

type t = {
  relations : (string * string) array;
  joins : join_pred list;
  selections : selection list;
  projection : column_ref list;
  order_by : column_ref list;
  alias_ids : (string, int) Hashtbl.t;
  neighbor_masks : Bitset.t array;
  fingerprint : string;
}

(* Canonical whole-query key, the cross-query analogue of the interned
   [Join_tree.key]: table names by relation id (aliases are display-only
   — plans speak relation ids, so alias renamings must share a cache
   line), join predicates each normalized to put the lower (rel, column)
   side first and then sorted and deduplicated (conjunction order is
   semantically void), selections sorted likewise.  Projection and ORDER
   BY keep their order — both are position-significant.  Computed once at
   construction, like the adjacency bitsets. *)
let compute_fingerprint ~relations ~joins ~selections ~projection ~order_by =
  let buf = Buffer.create 128 in
  let col (c : column_ref) = Printf.sprintf "%d.%s" c.rel c.column in
  let join (j : join_pred) =
    let a = col j.left and b = col j.right in
    if a <= b then a ^ "=" ^ b else b ^ "=" ^ a
  in
  Buffer.add_string buf "T:";
  List.iteri
    (fun i (_, table) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf table)
    relations;
  Buffer.add_string buf "|J:";
  Buffer.add_string buf
    (String.concat "," (List.sort_uniq String.compare (List.map join joins)));
  Buffer.add_string buf "|S:";
  Buffer.add_string buf
    (String.concat ","
       (List.sort_uniq String.compare
          (List.map
             (fun (s : selection) ->
               Printf.sprintf "%s%s%s" (col s.on)
                 (match s.cmp with
                 | Eq -> "=" | Ne -> "<>" | Lt -> "<"
                 | Le -> "<=" | Gt -> ">" | Ge -> ">=")
                 (Parqo_catalog.Value.to_string s.value))
             selections)));
  Buffer.add_string buf "|P:";
  Buffer.add_string buf (String.concat "," (List.map col projection));
  Buffer.add_string buf "|O:";
  Buffer.add_string buf (String.concat "," (List.map col order_by));
  Buffer.contents buf

let create ~relations ~joins ?(selections = []) ?(projection = [])
    ?(order_by = []) () =
  let aliases = List.map fst relations in
  if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
  then invalid_arg "Query.create: duplicate alias";
  let n = List.length relations in
  let check_ref what (r : column_ref) =
    if r.rel < 0 || r.rel >= n then
      invalid_arg ("Query.create: " ^ what ^ " references invalid relation")
  in
  List.iter
    (fun (j : join_pred) ->
      check_ref "join" j.left;
      check_ref "join" j.right;
      if j.left.rel = j.right.rel then
        invalid_arg "Query.create: join predicate within one relation")
    joins;
  List.iter (fun (s : selection) -> check_ref "selection" s.on) selections;
  List.iter (fun c -> check_ref "projection" c) projection;
  List.iter (fun c -> check_ref "order by" c) order_by;
  (* lookup structures for the search hot path: alias resolution and the
     per-relation join-graph adjacency, both asked for per candidate *)
  let alias_ids = Hashtbl.create (max 8 n) in
  List.iteri (fun i (a, _) -> Hashtbl.replace alias_ids a i) relations;
  let neighbor_masks = Array.make (max 1 n) Bitset.empty in
  List.iter
    (fun (j : join_pred) ->
      neighbor_masks.(j.left.rel) <-
        Bitset.add j.right.rel neighbor_masks.(j.left.rel);
      neighbor_masks.(j.right.rel) <-
        Bitset.add j.left.rel neighbor_masks.(j.right.rel))
    joins;
  {
    relations = Array.of_list relations;
    joins;
    selections;
    projection;
    order_by;
    alias_ids;
    neighbor_masks;
    fingerprint =
      compute_fingerprint ~relations ~joins ~selections ~projection ~order_by;
  }

let fingerprint q = q.fingerprint

let n_relations q = Array.length q.relations
let alias q i = fst q.relations.(i)
let table_name q i = snd q.relations.(i)

let relation_id q a =
  match Hashtbl.find_opt q.alias_ids a with
  | Some i -> i
  | None -> raise Not_found

let connected_between q s1 s2 =
  Bitset.exists (fun r -> not (Bitset.disjoint q.neighbor_masks.(r) s2)) s1

let joins_between q s1 s2 =
  if not (connected_between q s1 s2) then []
  else
    List.filter
      (fun (j : join_pred) ->
        (Bitset.mem j.left.rel s1 && Bitset.mem j.right.rel s2)
        || (Bitset.mem j.left.rel s2 && Bitset.mem j.right.rel s1))
      q.joins

let joins_within q s =
  List.filter
    (fun (j : join_pred) -> Bitset.mem j.left.rel s && Bitset.mem j.right.rel s)
    q.joins

let selections_on q rel =
  List.filter (fun (s : selection) -> s.on.rel = rel) q.selections

let neighbors q rel = q.neighbor_masks.(rel)

let connected q s =
  if Bitset.cardinal s <= 1 then true
  else begin
    let start = Bitset.choose s in
    let rec grow frontier visited =
      if Bitset.is_empty frontier then visited
      else begin
        let next =
          Bitset.fold
            (fun r acc -> Bitset.union acc (Bitset.inter (neighbors q r) s))
            frontier Bitset.empty
        in
        let fresh = Bitset.diff next visited in
        grow fresh (Bitset.union visited fresh)
      end
    in
    let reached = grow (Bitset.singleton start) (Bitset.singleton start) in
    Bitset.equal reached s
  end

let validate catalog q =
  let module C = Parqo_catalog in
  let check_ref (r : column_ref) =
    let tname = table_name q r.rel in
    match C.Catalog.find_table catalog tname with
    | None -> Error (Printf.sprintf "unknown table %s" tname)
    | Some t ->
      if C.Table.has_column t r.column then Ok ()
      else Error (Printf.sprintf "unknown column %s.%s" tname r.column)
  in
  let refs =
    List.concat_map (fun (j : join_pred) -> [ j.left; j.right ]) q.joins
    @ List.map (fun (s : selection) -> s.on) q.selections
    @ q.projection
    @ q.order_by
    @ List.init (n_relations q) (fun _ -> { rel = 0; column = "" })
  in
  (* relation aliases themselves must resolve even with no predicates *)
  let rec check_tables i =
    if i >= n_relations q then Ok ()
    else
      match C.Catalog.find_table catalog (table_name q i) with
      | None -> Error (Printf.sprintf "unknown table %s" (table_name q i))
      | Some _ -> check_tables (i + 1)
  in
  match check_tables 0 with
  | Error _ as e -> e
  | Ok () ->
    let rec check = function
      | [] -> Ok ()
      | r :: rest when r.column = "" -> check rest
      | r :: rest -> ( match check_ref r with Ok () -> check rest | e -> e)
    in
    check refs

let contract q ~groups ~rename =
  let n = n_relations q in
  let in_group = Array.make n None in
  List.iteri
    (fun gi (rels, _, _) ->
      if rels = [] then invalid_arg "Query.contract: empty group";
      List.iter
        (fun r ->
          if r < 0 || r >= n then
            invalid_arg "Query.contract: relation out of range";
          if in_group.(r) <> None then
            invalid_arg "Query.contract: overlapping groups";
          in_group.(r) <- Some gi)
        rels)
    groups;
  let kept = List.filter (fun r -> in_group.(r) = None) (List.init n Fun.id) in
  let n_kept = List.length kept in
  let new_id = Array.make n (-1) in
  List.iteri (fun i r -> new_id.(r) <- i) kept;
  List.iteri
    (fun gi (rels, _, _) -> List.iter (fun r -> new_id.(r) <- n_kept + gi) rels)
    groups;
  let relations =
    List.map (fun r -> q.relations.(r)) kept
    @ List.map (fun (_, alias, table) -> (alias, table)) groups
  in
  let map_ref (c : column_ref) =
    match in_group.(c.rel) with
    | None -> { rel = new_id.(c.rel); column = c.column }
    | Some _ -> { rel = new_id.(c.rel); column = rename c.rel c.column }
  in
  let joins =
    List.filter_map
      (fun (j : join_pred) ->
        let l = map_ref j.left and r = map_ref j.right in
        if l.rel = r.rel then None else Some { left = l; right = r })
      q.joins
  in
  let selections =
    List.filter_map
      (fun (s : selection) ->
        match in_group.(s.on.rel) with
        | Some _ -> None (* already applied inside the contracted group *)
        | None -> Some { s with on = map_ref s.on })
      q.selections
  in
  let projection = List.map map_ref q.projection in
  let order_by = List.map map_ref q.order_by in
  ( create ~relations ~joins ~selections ~projection ~order_by (),
    fun r ->
      if r < 0 || r >= n then invalid_arg "Query.contract: relation out of range"
      else new_id.(r) )

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_column_ref q ppf (r : column_ref) =
  Format.fprintf ppf "%s.%s" (alias q r.rel) r.column

let to_sql q =
  let buf = Buffer.create 128 in
  let col (r : column_ref) = Printf.sprintf "%s.%s" (alias q r.rel) r.column in
  Buffer.add_string buf "SELECT ";
  (match q.projection with
  | [] -> Buffer.add_string buf "*"
  | cols -> Buffer.add_string buf (String.concat ", " (List.map col cols)));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (Array.to_list q.relations
       |> List.map (fun (a, t) -> if a = t then t else t ^ " " ^ a)));
  let preds =
    List.map
      (fun (j : join_pred) -> Printf.sprintf "%s = %s" (col j.left) (col j.right))
      q.joins
    @ List.map
        (fun (s : selection) ->
          Printf.sprintf "%s %s %s" (col s.on) (cmp_to_string s.cmp)
            (match s.value with
            | Parqo_catalog.Value.Str str -> "'" ^ str ^ "'"
            | v -> Parqo_catalog.Value.to_string v))
        q.selections
  in
  if preds <> [] then begin
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (String.concat " AND " preds)
  end;
  if q.order_by <> [] then begin
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf (String.concat ", " (List.map col q.order_by))
  end;
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (to_sql q)
