(** Select-Project-Join queries — the query class of the paper.

    A query binds aliases to catalog tables, conjoins equi-join predicates
    and single-column selections, and optionally projects.  Relations are
    identified by their dense index in [relations] ("relation ids"), which
    is what plans, bitsets and the estimator speak. *)

type column_ref = { rel : int; column : string }
(** [rel] is a relation id. *)

type join_pred = { left : column_ref; right : column_ref }
(** Equality predicate [left = right] with [left.rel <> right.rel]. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type selection = { on : column_ref; cmp : cmp; value : Parqo_catalog.Value.t }

type t = private {
  relations : (string * string) array;  (** (alias, table name) *)
  joins : join_pred list;
  selections : selection list;
  projection : column_ref list;  (** empty means "all columns" *)
  order_by : column_ref list;
      (** requested output ordering, most significant first; plans whose
          interesting order already satisfies it avoid a final sort *)
  alias_ids : (string, int) Hashtbl.t;
      (** precomputed alias → relation-id table; use {!relation_id} *)
  neighbor_masks : Parqo_util.Bitset.t array;
      (** precomputed per-relation join-graph adjacency; use {!neighbors} *)
  fingerprint : string;
      (** precomputed canonical query key; use {!fingerprint} *)
}

val create :
  relations:(string * string) list ->
  joins:join_pred list ->
  ?selections:selection list ->
  ?projection:column_ref list ->
  ?order_by:column_ref list ->
  unit ->
  t
(** Raises [Invalid_argument] on duplicate aliases, out-of-range relation
    ids, or a join predicate relating a relation to itself. *)

val n_relations : t -> int

val alias : t -> int -> string

val table_name : t -> int -> string

val relation_id : t -> string -> int
(** Id of an alias — O(1) hashtable lookup. Raises [Not_found]. *)

val fingerprint : t -> string
(** The canonical whole-query key, precomputed at construction — the
    cross-query extension of {!Parqo_plan.Join_tree.key} interning, and
    what the serving layer's plan cache is keyed by.  Two queries share a
    fingerprint iff they denote the same optimization problem against
    the same catalog: table names by relation id (aliases are ignored —
    plans reference relation ids), join predicates and selections as
    normalized sorted sets, projection and ORDER BY verbatim (both are
    position-significant).  Queries whose relations are permuted get
    different fingerprints: relation ids are load-bearing in plans, so a
    permutation is a different (if equivalent) problem. *)

val connected_between : t -> Parqo_util.Bitset.t -> Parqo_util.Bitset.t -> bool
(** Some join predicate crosses the two (disjoint) sets — O(|s1|) on the
    precomputed adjacency bitsets, no scan of the predicate list. *)

val joins_between : t -> Parqo_util.Bitset.t -> Parqo_util.Bitset.t -> join_pred list
(** Join predicates with one side in each (disjoint) set. *)

val joins_within : t -> Parqo_util.Bitset.t -> join_pred list
(** Join predicates with both sides inside the set. *)

val selections_on : t -> int -> selection list

val neighbors : t -> int -> Parqo_util.Bitset.t
(** Relations connected to the given relation by some join predicate. *)

val connected : t -> Parqo_util.Bitset.t -> bool
(** Whether the join graph restricted to the set is connected (true for
    empty and singleton sets). *)

val validate : Parqo_catalog.Catalog.t -> t -> (unit, string) result
(** Every alias resolves to a catalog table and every referenced column
    exists. *)

val contract :
  t ->
  groups:(int list * string * string) list ->
  rename:(int -> string -> string) ->
  t * (int -> int)
(** [contract q ~groups ~rename] replaces each group [(rels, alias,
    table)] of relation ids by a single relation [alias] bound to
    [table] — the residual-query construction of adaptive re-planning,
    where an already-materialized intermediate stands in for the
    relations it joined.  Column references into a group are renamed
    with [rename orig_rel column] (the caller names the corresponding
    column of the stand-in table); join predicates internal to a group
    and selections on group members are dropped (already applied inside
    the intermediate), predicates crossing a group boundary are
    remapped.  Kept relations come first (in original id order), then
    one relation per group, in the given order; the returned function
    maps original relation ids to contracted ones.  Raises
    [Invalid_argument] on empty, overlapping or out-of-range groups (and
    on duplicate aliases, via {!create}). *)

val pp : Format.formatter -> t -> unit

val to_sql : t -> string
(** A parseable SQL-ish rendering (inverse of {!Parser.parse}). *)

val pp_column_ref : t -> Format.formatter -> column_ref -> unit

val cmp_to_string : cmp -> string
