(** Base resource descriptors of atomic operators.

    [base] prices exactly one operator-tree node (not its children): the
    work it induces per resource given the machine's placement policy and
    cost constants, shaped into a descriptor — [atomic] (first tuple
    immediately) for streaming operators, [blocking] for sort, hash build
    and create-index.  These are the "descriptors of the leaves … derived
    in the traditional manner" of §5.1, where the standalone response
    time is the total work of the operation (scaled by cloning).

    Costing runs once per candidate operator in the DP hot path, so
    [base] works off a {!Placement.cache} (prepared once per
    optimization, carried by {!Env.t}) and accumulates demands straight
    into the descriptor's work array — no demand lists, no placement
    list walks. *)

val prepare :
  Parqo_machine.Machine.t -> Parqo_plan.Estimator.t -> Placement.cache
(** {!Placement.prepare} with the per-relation tables read off the
    estimator — for callers without an {!Env.t} (tests, simulators);
    [Env.create] builds the same cache once per optimization. *)

val base :
  Placement.cache ->
  Parqo_plan.Estimator.t ->
  Parqo_optree.Op.node ->
  Descriptor.t
(** Raises [Invalid_argument] on an arity violation (e.g. a [Sort] without
    a child) or a clone degree below 1. *)

val nl_inner_is_free : Parqo_optree.Op.node -> bool
(** True when the node is a nested-loops join whose inner child is a bare
    index scan: the index is then probed per outer tuple rather than
    scanned, so the inner child must not be costed separately.  The
    probing I/O is part of the join's own base descriptor and lands on
    the index's disk — the resource-contention mechanism of Example 3. *)
