(** The optimization context: machine, catalog, query, estimator and
    expansion configuration, bundled once and threaded through cost
    evaluation and search. *)

type t = {
  machine : Parqo_machine.Machine.t;
  estimator : Parqo_plan.Estimator.t;
  expand_config : Parqo_optree.Expand.config;
  dparams : Descriptor.params;
  adjacency : Parqo_util.Bitset.t array;
      (** per-relation join-graph adjacency, precomputed once so the
          search's connectivity probes never rescan the predicate list *)
  placement : Placement.cache;
      (** operator-to-resource placement, materialized once so
          per-operator costing never walks a resource list *)
}

val create :
  ?expand_config:Parqo_optree.Expand.config ->
  machine:Parqo_machine.Machine.t ->
  catalog:Parqo_catalog.Catalog.t ->
  query:Parqo_query.Query.t ->
  unit ->
  t
(** Builds the estimator and derives descriptor parameters from the
    machine.  Raises [Invalid_argument] if the query does not validate
    against the catalog. *)

val query : t -> Parqo_query.Query.t

val catalog : t -> Parqo_catalog.Catalog.t

val n_relations : t -> int

val neighbors : t -> int -> Parqo_util.Bitset.t
(** Relations joined to the given one — O(1), precomputed. *)

val connects : t -> Parqo_util.Bitset.t -> Parqo_util.Bitset.t -> bool
(** Some join predicate crosses the two sets — an adjacency-bitset probe,
    O(|s1|) with early exit, never a scan of the predicate list. *)
