module Op = Parqo_optree.Op

let node_work (env : Env.t) node =
  let d = Opcost.base env.Env.placement env.Env.estimator node in
  Parqo_util.Vecf.sum (Descriptor.work_vector d)

let segments (env : Env.t) root =
  let out = ref [] in
  (* accumulate (n, work) for the segment rooted at [node] *)
  let rec assign (node : Op.node) (n, w) =
    let acc = (n + 1, w +. node_work env node) in
    let children =
      if Opcost.nl_inner_is_free node then [ List.hd node.Op.children ]
      else node.Op.children
    in
    List.fold_left
      (fun acc (c : Op.node) ->
        match c.Op.composition with
        | Op.Pipelined -> assign c acc
        | Op.Materialized ->
          out := assign c (0, 0.) :: !out;
          acc)
      acc children
  in
  let root_segment = assign root (0, 0.) in
  root_segment :: List.rev !out

let expected_penalty env ~fault_rate root =
  if fault_rate <= 0. then 0.
  else
    List.fold_left
      (fun acc (n, w) -> acc +. (fault_rate *. float_of_int n *. w /. 2.))
      0. (segments env root)

(* A brownout does not destroy work, it stretches it: a segment caught
   by a factor-[f] window delivers at rate [f], so the affected work
   costs [1/f - 1] extra time units per unit of work.  With [n]
   operators per segment, each browning out at [rate] per attempt and
   catching on average half the segment (the same half-segment argument
   as [expected_penalty]), the charge is [rate * n * W * (1/f - 1) / 2].
   Fail-stop ([f = 0]) is priced by [expected_penalty], not here — the
   formulas meet at neither end on purpose: losing work and slowing work
   are different regimes. *)
let slowdown_penalty env ~rate ~factor root =
  if rate <= 0. || factor >= 1. then 0.
  else if factor <= 0. then
    invalid_arg "Faultcost.slowdown_penalty: factor must be in (0, 1)"
  else
    let stretch = (1. /. factor) -. 1. in
    List.fold_left
      (fun acc (n, w) ->
        acc +. (rate *. float_of_int n *. w *. stretch /. 2.))
      0. (segments env root)

let expected_response_time ?slowdown env ~fault_rate (e : Costmodel.eval) =
  let base =
    e.Costmodel.response_time
    +. expected_penalty env ~fault_rate e.Costmodel.optree
  in
  match slowdown with
  | None -> base
  | Some (rate, factor) ->
    base +. slowdown_penalty env ~rate ~factor e.Costmodel.optree
