module Op = Parqo_optree.Op

let node_work (env : Env.t) node =
  let d = Opcost.base env.Env.placement env.Env.estimator node in
  Parqo_util.Vecf.sum (Descriptor.work_vector d)

let segments (env : Env.t) root =
  let out = ref [] in
  (* accumulate (n, work) for the segment rooted at [node] *)
  let rec assign (node : Op.node) (n, w) =
    let acc = (n + 1, w +. node_work env node) in
    let children =
      if Opcost.nl_inner_is_free node then [ List.hd node.Op.children ]
      else node.Op.children
    in
    List.fold_left
      (fun acc (c : Op.node) ->
        match c.Op.composition with
        | Op.Pipelined -> assign c acc
        | Op.Materialized ->
          out := assign c (0, 0.) :: !out;
          acc)
      acc children
  in
  let root_segment = assign root (0, 0.) in
  root_segment :: List.rev !out

let expected_penalty env ~fault_rate root =
  if fault_rate <= 0. then 0.
  else
    List.fold_left
      (fun acc (n, w) -> acc +. (fault_rate *. float_of_int n *. w /. 2.))
      0. (segments env root)

let expected_response_time env ~fault_rate (e : Costmodel.eval) =
  e.Costmodel.response_time +. expected_penalty env ~fault_rate e.Costmodel.optree
