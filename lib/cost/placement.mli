(** Deterministic mapping from operators to machine resources.

    The paper's cloning annotation names an explicit resource set; the
    optimizer needs a policy to pick those sets.  This one is the simplest
    judicious choice: the [k] fastest CPUs (ids breaking ties, so the
    homogeneous order is the id order) host a degree-[k] clone, sorts
    spill to each CPU's site-local disk, and abstract catalog disk indexes
    map round-robin onto the machine's disks. *)

val cpu_order : Parqo_machine.Machine.t -> int list
(** In-service CPU ids, fastest first (descending speed, ascending id on
    ties) — identical to {!Parqo_machine.Machine.cpu_ids} when all speeds
    are equal. *)

val cpus_for : Parqo_machine.Machine.t -> clone:int -> int list
(** Resource ids of the CPUs executing a degree-[clone] operator: the
    [min clone n_cpus] fastest CPUs; [[]] on a machine without CPUs
    (CPU work is then not modeled, as in the paper's Example 3).  A
    slowest-chosen-clone term dominates the stage time, so taking the
    fastest [k] reproduces the heterogeneous-machines balance bound. *)

val effective_clone : Parqo_machine.Machine.t -> int -> int
(** Clone degree clamped to the number of CPUs (at least 1). *)

val disks_for_table :
  Parqo_machine.Machine.t -> Parqo_catalog.Table.t -> int list
(** Resource ids of the disks holding the table's partitions. *)

val disk_for_index :
  Parqo_machine.Machine.t -> Parqo_catalog.Index.t -> int option
(** Resource id of the index's disk; [None] on a diskless machine. *)

val spill_disks : Parqo_machine.Machine.t -> cpus:int list -> int list
(** One disk per executing CPU for sort spills: the CPU's site-local disk
    when it exists, else disks round-robin; [[]] without disks. *)

val network : Parqo_machine.Machine.t -> int option
(** Resource id of the interconnect, if any. *)

(** {2 Precomputed placement}

    The policy answers above are pure functions of the machine and the
    catalog; [prepare] materializes all of them into flat arrays once per
    optimization so per-operator costing never walks a resource list.
    Cached answers are identical to the policy functions' by
    construction. *)

type cache = {
  machine : Parqo_machine.Machine.t;
  dim : int;  (** number of modeled resources *)
  cpu_ids : int array;  (** {!cpus_for} with unbounded clone *)
  disk_ids : int array;
  network_id : int option;
  spill : int array array;
      (** [spill.(k)] = {!spill_disks} of the first [k] CPUs,
          for [0 <= k <= n_cpus] *)
  disks_of_rel : int array array;
      (** {!disks_for_table} per relation id *)
  speeds : float array;
      (** {!Parqo_machine.Machine.speed} per resource id — what costing
          divides per-resource demand shares by.  Only in-service ids
          are ever read. *)
  zero_usage : Rvec.t;
      (** shared all-zero usage vector (immutable, safe to embed in any
          descriptor) *)
}

val prepare :
  Parqo_machine.Machine.t -> tables:Parqo_catalog.Table.t array -> cache
(** [tables.(r)] must be the catalog table backing relation [r]. *)
