module Vecf = Parqo_util.Vecf

type t = { rf : Rvec.t; rl : Rvec.t }

type delta_mode = Stretch_time | Scale_all

type params = { delta_k : float; delta_mode : delta_mode }

let params ?(delta_mode = Stretch_time) delta_k =
  if delta_k < 0. then invalid_arg "Descriptor.params: delta_k < 0";
  { delta_k; delta_mode }

let of_machine (m : Parqo_machine.Machine.t) =
  params
    ~delta_mode:
      (if m.params.delta_scales_work then Scale_all else Stretch_time)
    m.params.pipeline_delta_k

let make ~rf ~rl =
  if rf.Rvec.time > rl.Rvec.time +. 1e-9 then
    invalid_arg "Descriptor.make: first tuple after last";
  { rf; rl }

let zero dim = { rf = Rvec.zero dim; rl = Rvec.zero dim }

let atomic usage =
  { rf = Rvec.zero (Parqo_util.Vecf.dim usage.Rvec.work); rl = usage }

let atomic_with ~zero usage = { rf = zero; rl = usage }

let blocking usage = { rf = usage; rl = usage }
let sync d = { rf = d.rl; rl = d.rl }

let delta p r1 r2 =
  let t1 = r1.Rvec.time and t2 = r2.Rvec.time in
  let hi = t1 +. t2 and lo = Float.max t1 t2 in
  if hi -. lo <= 1e-12 then 1.
  else begin
    let t' = (Rvec.par r1 r2).Rvec.time in
    let factor = 1. +. (p.delta_k *. (t' -. lo) /. (hi -. lo)) in
    Float.min (1. +. p.delta_k) (Float.max 1. factor)
  end

(* ---------------------------------------------------------------- *)
(* Scratch-buffer composition.

   [pipe]/[tree] are evaluated once per candidate operator in the DP hot
   path; building every intermediate residual and overlap vector as a
   fresh [Rvec.t] dominated the optimizer's allocation profile.  The
   combinators below run the same arithmetic, in the same order, on
   caller-owned scratch buffers, allocating only the two vectors that
   escape into the result descriptor — outputs are bit-identical to the
   historical allocating forms (the only structural change is that the
   overlap vector of the δ penalty is computed once instead of twice,
   which produces the same bits). *)

type scratch = {
  sdim : int;
  rp : float array;  (* producer residual work *)
  rc : float array;  (* consumer residual work *)
  ov : float array;  (* overlap (par of residuals) work *)
  szero : Rvec.t;  (* shared all-zero vector of the right dimension *)
  front : float array;  (* tree: par of the children's first-tuple work *)
  rl_l : float array;  (* tree: left child's residual work *)
  rl_r : float array;  (* tree: right child's residual work *)
  i_rf : float array;  (* tree: residual-pipe first-tuple work *)
  i_rl : float array;  (* tree: residual-pipe last-tuple work *)
  t2_rf : float array;  (* tree: front ; residual-pipe, first-tuple *)
  t2_rl : float array;  (* tree: front ; residual-pipe, last-tuple *)
  times : float array;  (* 2 slots: [pipe_core]'s rf/rl output times *)
}

let scratch dim =
  {
    sdim = dim;
    rp = Array.make dim 0.;
    rc = Array.make dim 0.;
    ov = Array.make dim 0.;
    szero = Rvec.zero dim;
    front = Array.make dim 0.;
    rl_l = Array.make dim 0.;
    rl_r = Array.make dim 0.;
    i_rf = Array.make dim 0.;
    i_rl = Array.make dim 0.;
    t2_rf = Array.make dim 0.;
    t2_rl = Array.make dim 0.;
    times = Array.make 2 0.;
  }

let scratch_dim s = s.sdim
let scratch_zero s = s.szero

(* read-only view of a scratch buffer for Vecf primitives *)
let view = Vecf.unsafe_adopt

let delta_factor p ~rp_t ~rc_t ~ov_t =
  let hi = rp_t +. rc_t and lo = Vecf.fmax rp_t rc_t in
  if hi -. lo <= 1e-12 then 1.
  else
    let factor = 1. +. (p.delta_k *. (ov_t -. lo) /. (hi -. lo)) in
    Vecf.fmin (1. +. p.delta_k) (Vecf.fmax 1. factor)

(* the arithmetic core of [pipe]: producer/consumer given as raw work
   vectors plus times, results written into the caller's [orf_w]/[orl_w]
   with the output times left in [s.times].(0)/(1) — so intermediate
   pipes (inside [tree_s]) can target scratch rows and only escaping
   results pay for fresh arrays.  Operation order is exactly [pipe]'s. *)
let pipe_core s p ~prf_t ~prf_w ~prl_t ~prl_w ~crf_t ~crf_w ~crl_t ~crl_w
    ~orf_w ~orl_w =
  (* rf = producer.rf ; consumer.rf *)
  Vecf.add_into prf_w crf_w orf_w;
  let rf_t = prf_t +. crf_t in
  Vecf.residual_into prl_w prf_w s.rp;
  let rp_t =
    Vecf.fmax (Vecf.max_coord (view s.rp)) (Vecf.fmax 0. (prl_t -. prf_t))
  in
  Vecf.residual_into crl_w crf_w s.rc;
  let rc_t =
    Vecf.fmax (Vecf.max_coord (view s.rc)) (Vecf.fmax 0. (crl_t -. crf_t))
  in
  (* overlap = residual_p || residual_c *)
  Vecf.add_into (view s.rp) (view s.rc) s.ov;
  let ov_t = Vecf.fmax (Vecf.fmax rp_t rc_t) (Vecf.max_coord (view s.ov)) in
  let factor = delta_factor p ~rp_t ~rc_t ~ov_t in
  let penal_t = factor *. ov_t in
  (match p.delta_mode with
  | Stretch_time -> ()
  | Scale_all ->
    for i = 0 to s.sdim - 1 do
      s.ov.(i) <- factor *. s.ov.(i)
    done);
  (* rl = rf ; penalized *)
  Vecf.add_into (view orf_w) (view s.ov) orl_w;
  s.times.(0) <- rf_t;
  s.times.(1) <- rf_t +. penal_t

let pipe_of_core s rf_w rl_w =
  {
    rf = { Rvec.time = s.times.(0); work = Vecf.unsafe_adopt rf_w };
    rl = { Rvec.time = s.times.(1); work = Vecf.unsafe_adopt rl_w };
  }

let pipe_s s p producer consumer =
  let rf_w = Array.make s.sdim 0. and rl_w = Array.make s.sdim 0. in
  pipe_core s p ~prf_t:producer.rf.Rvec.time ~prf_w:producer.rf.Rvec.work
    ~prl_t:producer.rl.Rvec.time ~prl_w:producer.rl.Rvec.work
    ~crf_t:consumer.rf.Rvec.time ~crf_w:consumer.rf.Rvec.work
    ~crl_t:consumer.rl.Rvec.time ~crl_w:consumer.rl.Rvec.work ~orf_w:rf_w
    ~orl_w:rl_w;
  pipe_of_core s rf_w rl_w

let dseq a b = { rf = Rvec.seq a.rf b.rf; rl = Rvec.seq a.rl b.rl }

let tree_s s p l r root =
  (* front = l.rf || r.rf, in scratch (same operations as Rvec.par) *)
  Vecf.add_into l.rf.Rvec.work r.rf.Rvec.work s.front;
  let front_t =
    Vecf.fmax
      (Vecf.fmax l.rf.Rvec.time r.rf.Rvec.time)
      (Vecf.max_coord (view s.front))
  in
  (* the children's residuals, in scratch (same operations as
     Rvec.residual); their rf is zero: the front already charged the
     first-tuple work *)
  Vecf.residual_into l.rl.Rvec.work l.rf.Rvec.work s.rl_l;
  let rl_l_t =
    Vecf.fmax
      (Vecf.max_coord (view s.rl_l))
      (Vecf.fmax 0. (l.rl.Rvec.time -. l.rf.Rvec.time))
  in
  Vecf.residual_into r.rl.Rvec.work r.rf.Rvec.work s.rl_r;
  let rl_r_t =
    Vecf.fmax
      (Vecf.max_coord (view s.rl_r))
      (Vecf.fmax 0. (r.rl.Rvec.time -. r.rf.Rvec.time))
  in
  (* the residuals, pipelined against each other *)
  let zero_w = s.szero.Rvec.work in
  pipe_core s p ~prf_t:0. ~prf_w:zero_w ~prl_t:rl_l_t ~prl_w:(view s.rl_l)
    ~crf_t:0. ~crf_w:zero_w ~crl_t:rl_r_t ~crl_w:(view s.rl_r) ~orf_w:s.i_rf
    ~orl_w:s.i_rl;
  let i_rf_t = s.times.(0) and i_rl_t = s.times.(1) in
  (* t2 = (front, front) ; residual pipe (same operations as Rvec.seq) *)
  Vecf.add_into (view s.front) (view s.i_rf) s.t2_rf;
  let t2_rf_t = front_t +. i_rf_t in
  Vecf.add_into (view s.front) (view s.i_rl) s.t2_rl;
  let t2_rl_t = front_t +. i_rl_t in
  (* result = t2 pipe root — the only allocating step *)
  let rf_w = Array.make s.sdim 0. and rl_w = Array.make s.sdim 0. in
  pipe_core s p ~prf_t:t2_rf_t ~prf_w:(view s.t2_rf) ~prl_t:t2_rl_t
    ~prl_w:(view s.t2_rl) ~crf_t:root.rf.Rvec.time ~crf_w:root.rf.Rvec.work
    ~crl_t:root.rl.Rvec.time ~crl_w:root.rl.Rvec.work ~orf_w:rf_w ~orl_w:rl_w;
  pipe_of_core s rf_w rl_w

let pipe p producer consumer =
  pipe_s (scratch (Parqo_util.Vecf.dim producer.rf.Rvec.work)) p producer consumer

let tree p l r root =
  tree_s (scratch (Parqo_util.Vecf.dim l.rf.Rvec.work)) p l r root

let response_time d = d.rl.Rvec.time
let first_tuple_time d = d.rf.Rvec.time
let work d = Rvec.total_work d.rl
let work_vector d = d.rl.Rvec.work

let equal ?eps a b = Rvec.equal ?eps a.rf b.rf && Rvec.equal ?eps a.rl b.rl

let pp ppf d =
  Format.fprintf ppf "{first=%a; last=%a}" Rvec.pp d.rf Rvec.pp d.rl
