module M = Parqo_machine.Machine
module R = Parqo_machine.Resource

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

(* in-service CPUs fastest first, ids breaking ties: on a homogeneous
   machine this is exactly ascending-id order, and a degree-k clone on a
   heterogeneous machine runs on the k fastest CPUs — the slowest chosen
   clone dominates the stage (Frisk et al.'s balance bound), so skipping
   a faster CPU can never help *)
let cpu_order m =
  M.cpus m
  |> List.sort (fun (a : R.t) (b : R.t) ->
         match Float.compare b.R.speed a.R.speed with
         | 0 -> compare a.R.id b.R.id
         | c -> c)
  |> List.map (fun r -> r.R.id)

let cpus_for m ~clone =
  if clone < 1 then invalid_arg "Placement.cpus_for: clone < 1";
  take clone (cpu_order m)

let effective_clone m clone =
  let n = List.length (M.cpu_ids m) in
  if n = 0 then 1 else min clone n

let disks_for_table m (t : Parqo_catalog.Table.t) =
  let disks = M.disk_ids m in
  match disks with
  | [] -> []
  | _ ->
    let n = List.length disks in
    List.map (fun d -> List.nth disks (d mod n)) t.Parqo_catalog.Table.disks
    |> List.sort_uniq compare

let disk_for_index m (i : Parqo_catalog.Index.t) =
  let disks = M.disk_ids m in
  match disks with
  | [] -> None
  | _ -> Some (List.nth disks (i.Parqo_catalog.Index.disk mod List.length disks))

let spill_disks m ~cpus =
  let disks = M.disk_ids m in
  match disks with
  | [] -> []
  | _ ->
    let n = List.length disks in
    List.mapi
      (fun i cpu_id ->
        let cpu = M.resource m cpu_id in
        match M.node_disk m cpu.R.node with
        | d -> d.R.id
        | exception Not_found -> List.nth disks (i mod n))
      cpus
    |> List.sort_uniq compare

let network m = Option.map (fun r -> r.R.id) (M.network m)

(* ---------------------------------------------------------------- *)
(* Precomputed placement cache.

   [Opcost.base] runs once per candidate operator in the DP hot path;
   the list-walking policy functions above, re-evaluated there, were a
   measurable share of its allocation.  The cache materializes every
   policy answer into int arrays once per optimization.  All derived
   arrays are produced by the functions above, so the cached and
   uncached answers are identical by construction. *)

type cache = {
  machine : M.t;
  dim : int;  (* number of modeled resources *)
  cpu_ids : int array;
  disk_ids : int array;
  network_id : int option;
  spill : int array array;
      (* [spill.(k)]: spill disks of the first [k] CPUs, [0 <= k <= n_cpus] *)
  disks_of_rel : int array array;  (* indexed by relation id *)
  speeds : float array;
      (* per resource id; only in-service ids (speed > 0) are ever read
         by costing, since every id group above excludes the rest *)
  zero_usage : Rvec.t;  (* shared all-zero usage vector *)
}

let prepare machine ~tables =
  let cpu_id_list = cpu_order machine in
  let n_cpus = List.length cpu_id_list in
  let dim = M.n_resources machine in
  {
    machine;
    dim;
    cpu_ids = Array.of_list cpu_id_list;
    disk_ids = Array.of_list (M.disk_ids machine);
    network_id = network machine;
    spill =
      Array.init (n_cpus + 1) (fun k ->
          Array.of_list (spill_disks machine ~cpus:(take k cpu_id_list)));
    disks_of_rel =
      Array.map (fun t -> Array.of_list (disks_for_table machine t)) tables;
    speeds = Array.init dim (M.speed machine);
    zero_usage = Rvec.zero dim;
  }
