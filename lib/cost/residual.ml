module Q = Parqo_query.Query
module C = Parqo_catalog
module Op = Parqo_optree.Op
module M = Parqo_machine.Machine
module Bitset = Parqo_util.Bitset

type t = {
  env : Env.t;
  checkpoints : (string * Op.node) list;
  n_relations : int;
}

let mangle q rel col = Q.alias q rel ^ "__" ^ col

(* keep maximal, pairwise-disjoint survivors: materialized subtrees of
   one tree have nested-or-disjoint leaf sets, so sorting by descending
   leaf count (then subtree size) and greedily keeping disjoint ones
   retains exactly the outermost checkpoints *)
let maximal survivors =
  let keyed =
    List.filter_map
      (fun node ->
        let rels = Op.base_relations node in
        if Bitset.is_empty rels then None else Some (rels, node))
      survivors
    |> List.sort (fun (s1, n1) (s2, n2) ->
           match compare (Bitset.cardinal s2) (Bitset.cardinal s1) with
           | 0 -> compare (Op.size n2) (Op.size n1)
           | c -> c)
  in
  List.fold_left
    (fun kept (s, n) ->
      if List.exists (fun (s', _) -> not (Bitset.disjoint s s')) kept then kept
      else (s, n) :: kept)
    [] keyed
  |> List.rev

let construct (env : Env.t) ~survivors ~machine ~round =
    let q = Env.query env in
    let est = env.Env.estimator in
    let n_disks = List.length (M.disk_ids machine) in
    let ckpt_disks = List.init (max 1 n_disks) Fun.id in
    let kept = maximal survivors in
    let groups, catalog, checkpoints =
      List.fold_left
        (fun (groups, catalog, cks) (rels, (node : Op.node)) ->
          let i = List.length groups in
          let name = Printf.sprintf "__ckpt%d_%d" round i in
          let alias = Printf.sprintf "__c%d_%d" round i in
          let card = Float.max 1. node.Op.out_card in
          (* the checkpoint inherits every covered relation's schema
             under mangled names, so predicates that cross its boundary
             keep resolving; distincts clamp to the checkpoint
             cardinality, histograms are dropped (the intermediate's
             value distribution is not tracked) *)
          let columns =
            Bitset.fold
              (fun rel acc ->
                let table = Parqo_plan.Estimator.table_of est rel in
                let cols =
                  Array.to_list table.C.Table.columns
                  |> List.map (fun (cname, (st : C.Stats.column)) ->
                         ( mangle q rel cname,
                           {
                             st with
                             C.Stats.distinct =
                               Float.max 1. (Float.min st.C.Stats.distinct card);
                             hist = None;
                           } ))
                in
                acc @ cols)
              rels []
          in
          let table =
            C.Table.create ~name ~columns ~cardinality:card ~disks:ckpt_disks ()
          in
          ( (Bitset.to_list rels, alias, name) :: groups,
            C.Catalog.add_table catalog table,
            (name, node) :: cks ))
        ([], Env.catalog env, [])
        kept
    in
    let groups = List.rev groups and checkpoints = List.rev checkpoints in
    match
      let query, _mapping = Q.contract q ~groups ~rename:(mangle q) in
      Env.create ~expand_config:env.Env.expand_config ~machine ~catalog ~query
        ()
    with
    | exception Invalid_argument msg -> Error ("residual query: " ^ msg)
    | env' ->
      Ok { env = env'; checkpoints; n_relations = Q.n_relations (Env.query env') }
