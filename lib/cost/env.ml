module Q = Parqo_query.Query
module Bitset = Parqo_util.Bitset

type t = {
  machine : Parqo_machine.Machine.t;
  estimator : Parqo_plan.Estimator.t;
  expand_config : Parqo_optree.Expand.config;
  dparams : Descriptor.params;
  adjacency : Bitset.t array;
  placement : Placement.cache;
}

let create ?(expand_config = Parqo_optree.Expand.default_config) ~machine
    ~catalog ~query () =
  let estimator = Parqo_plan.Estimator.create catalog query in
  let tables =
    Array.init (Q.n_relations query) (Parqo_plan.Estimator.table_of estimator)
  in
  {
    machine;
    estimator;
    expand_config;
    dparams = Descriptor.of_machine machine;
    adjacency = Array.init (Q.n_relations query) (Q.neighbors query);
    placement = Placement.prepare machine ~tables;
  }

let query t = Parqo_plan.Estimator.query t.estimator
let catalog t = Parqo_plan.Estimator.catalog t.estimator
let n_relations t = Parqo_query.Query.n_relations (query t)
let neighbors t rel = t.adjacency.(rel)

let connects t s1 s2 =
  Bitset.exists (fun r -> not (Bitset.disjoint t.adjacency.(r) s2)) s1
