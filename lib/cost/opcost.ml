module M = Parqo_machine.Machine
module Op = Parqo_optree.Op
module Est = Parqo_plan.Estimator

let log2 x = log x /. log 2.

let child n i =
  match List.nth_opt n.Op.children i with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Opcost: %s lacks child %d" (Op.kind_name n.Op.kind) i)

let prepare machine est =
  let n = Parqo_query.Query.n_relations (Est.query est) in
  Placement.prepare machine ~tables:(Array.init n (Est.table_of est))

let nl_inner_is_free node =
  match node.Op.kind with
  | Op.Nl_join -> (
    match (child node 1).Op.kind with Op.Index_scan _ -> true | _ -> false)
  | _ -> false

(* Demand accumulation runs directly on a fresh per-resource work array
   that [Rvec.of_accumulated] then adopts.  Every resource id receives at
   most one demand per operator (the id groups — executing CPUs, data
   disks, spill disks, network — are pairwise disjoint within each
   branch), so the accumulated array is equal, bit for bit, to the one
   [Rvec.of_demands] would have built from the equivalent demand list. *)

(* the accumulation helpers are top-level (taking [work] explicitly)
   rather than closures inside [base]: [base] runs once per operator of
   every costed candidate, and half a dozen closure allocations per call
   were visible in the optimizer's words-per-plan profile.

   Each resource's share is divided by its speed — demand vectors are in
   nominal-speed time units, so a half-speed disk takes twice as long
   over the same pages.  Division by 1.0 is exact in IEEE arithmetic,
   which is what keeps an all-nominal machine bit-identical to the
   pre-speed model. *)
let spread work speeds ids w =
  let n = Array.length ids in
  if n > 0 then begin
    let share = w /. float_of_int n in
    for i = 0 to n - 1 do
      work.(ids.(i)) <- work.(ids.(i)) +. (share /. speeds.(ids.(i)))
    done
  end

let spread_n work speeds ids n_used w =
  if n_used > 0 then begin
    let share = w /. float_of_int n_used in
    for i = 0 to n_used - 1 do
      work.(ids.(i)) <- work.(ids.(i)) +. (share /. speeds.(ids.(i)))
    done
  end

let on_index_disk (pc : Placement.cache) work (ix : Parqo_catalog.Index.t) w =
  let nd = Array.length pc.disk_ids in
  if nd > 0 then begin
    let d = pc.disk_ids.(ix.Parqo_catalog.Index.disk mod nd) in
    work.(d) <- work.(d) +. (w /. pc.speeds.(d))
  end

let finish_atomic (pc : Placement.cache) overhead work lanes =
  Descriptor.atomic_with ~zero:pc.zero_usage
    (Rvec.of_accumulated work ~lanes ~overhead)

let finish_blocking overhead work lanes =
  Descriptor.blocking (Rvec.of_accumulated work ~lanes ~overhead)

let base (pc : Placement.cache) est node =
  let p = pc.machine.M.params in
  let clone = node.Op.clone in
  if clone < 1 then invalid_arg "Opcost.base: clone < 1";
  let cpu_ids = pc.cpu_ids in
  let n_cpus = Array.length cpu_ids in
  let n_used = min clone n_cpus in
  let lanes = if n_cpus = 0 then 1 else n_used in
  let work = Array.make pc.dim 0. in
  let tpp = p.tuples_per_page in
  match node.Op.kind with
  | Op.Seq_scan { rel } ->
    let raw = Est.raw_card est rel in
    let disks = pc.disks_of_rel.(rel) in
    spread work pc.speeds disks (raw /. tpp *. p.io_page_cost);
    spread_n work pc.speeds cpu_ids n_used (raw *. p.cpu_tuple_cost);
    let lanes =
      if n_cpus = 0 then max 1 (min clone (Array.length disks)) else lanes
    in
    finish_atomic pc p.clone_overhead work lanes
  | Op.Index_scan { rel; index } ->
    let raw = Est.raw_card est rel in
    let penalty =
      if index.Parqo_catalog.Index.clustered then 1. else p.unclustered_penalty
    in
    on_index_disk pc work index
      (raw /. tpp *. p.index_page_factor *. penalty *. p.io_page_cost);
    spread_n work pc.speeds cpu_ids n_used (raw *. p.cpu_tuple_cost);
    finish_atomic pc p.clone_overhead work lanes
  | Op.Sort _ ->
    let n = (child node 0).Op.out_card in
    let per_lane = Parqo_util.Vecf.fmax 1. (n /. float_of_int lanes) in
    spread_n work pc.speeds cpu_ids n_used
      (n *. log2 (Parqo_util.Vecf.fmax 2. per_lane) *. p.cpu_compare_cost);
    if per_lane > p.sort_memory_tuples then
      spread work pc.speeds pc.spill.(n_used) (2. *. (n /. tpp) *. p.io_page_cost);
    finish_blocking p.clone_overhead work lanes
  | Op.Merge_join ->
    let outer = (child node 0).Op.out_card and inner = (child node 1).Op.out_card in
    spread_n work pc.speeds cpu_ids n_used
      (((outer +. inner) *. p.cpu_compare_cost)
      +. (node.Op.out_card *. p.cpu_tuple_cost));
    finish_atomic pc p.clone_overhead work lanes
  | Op.Hash_build ->
    let n = (child node 0).Op.out_card in
    let per_lane = n /. float_of_int lanes in
    spread_n work pc.speeds cpu_ids n_used (n *. p.cpu_hash_cost);
    (* a build larger than per-clone memory Grace-partitions to disk:
       one write and one read pass over the build input *)
    if per_lane > p.hash_memory_tuples then
      spread work pc.speeds pc.spill.(n_used) (2. *. (n /. tpp) *. p.io_page_cost);
    finish_blocking p.clone_overhead work lanes
  | Op.Hash_probe ->
    let outer = (child node 0).Op.out_card in
    let build_per_lane = (child node 1).Op.out_card /. float_of_int lanes in
    spread_n work pc.speeds cpu_ids n_used
      ((outer *. p.cpu_hash_cost) +. (node.Op.out_card *. p.cpu_tuple_cost));
    (* when the build spilled, the probe input is partitioned too *)
    if build_per_lane > p.hash_memory_tuples then
      spread work pc.speeds pc.spill.(n_used) (2. *. (outer /. tpp) *. p.io_page_cost);
    finish_atomic pc p.clone_overhead work lanes
  | Op.Nl_join ->
    let outer = (child node 0).Op.out_card in
    let inner = child node 1 in
    let result_cpu = node.Op.out_card *. p.cpu_tuple_cost in
    (match inner.Op.kind with
    | Op.Index_scan { index; _ } ->
      (* index nested loops: probe the index once per outer tuple *)
      on_index_disk pc work index (outer *. p.nl_index_probe_io *. p.io_page_cost);
      spread_n work pc.speeds cpu_ids n_used ((outer *. p.cpu_hash_cost) +. result_cpu)
    | Op.Create_index _ ->
      (* probe the temporary index, in memory *)
      spread_n work pc.speeds cpu_ids n_used ((outer *. p.cpu_hash_cost) +. result_cpu)
    | _ ->
      (* pure nested loops over a once-computed, memory-resident inner *)
      spread_n work pc.speeds cpu_ids n_used
        ((outer *. inner.Op.out_card *. p.cpu_compare_cost) +. result_cpu));
    finish_atomic pc p.clone_overhead work lanes
  | Op.Create_index _ ->
    let n = (child node 0).Op.out_card in
    spread_n work pc.speeds cpu_ids n_used
      ((n *. log2 (Parqo_util.Vecf.fmax 2. n) *. p.cpu_compare_cost)
      +. (n *. p.cpu_hash_cost));
    finish_blocking p.clone_overhead work lanes
  | Op.Exchange _ ->
    let n = node.Op.out_card in
    spread_n work pc.speeds cpu_ids n_used (2. *. n *. p.cpu_tuple_cost);
    (match pc.network_id with
    | Some r -> work.(r) <- work.(r) +. (n *. p.net_tuple_cost /. pc.speeds.(r))
    | None -> ());
    finish_atomic pc p.clone_overhead work lanes
