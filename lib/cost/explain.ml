module Op = Parqo_optree.Op
module T = Parqo_util.Tableau

type row = {
  depth : int;
  operator : string;
  cloning : int;
  composition : string;
  redistributes : bool;
  cardinality : float;
  own_work : float;
  subtree_rt : float;
  subtree_first : float;
}

let rows (env : Env.t) root =
  let acc = ref [] in
  let rec go depth (node : Op.node) =
    (* cumulative descriptor of the subtree: reuse the cost recursion *)
    let subtree = Costmodel.of_optree env node in
    let base = Opcost.base env.Env.placement env.Env.estimator node in
    acc :=
      {
        depth;
        operator = Op.kind_name node.Op.kind;
        cloning = node.Op.clone;
        composition =
          (match node.Op.composition with
          | Op.Pipelined -> "pipelined"
          | Op.Materialized -> "materialized");
        redistributes =
          (match node.Op.kind with Op.Exchange _ -> true | _ -> false);
        cardinality = node.Op.out_card;
        own_work = Descriptor.work base;
        subtree_rt = Descriptor.response_time subtree;
        subtree_first = Descriptor.first_tuple_time subtree;
      }
      :: !acc;
    List.iter (go (depth + 1)) node.Op.children
  in
  go 0 root;
  List.rev !acc

let table env root =
  let tbl =
    T.create ~title:"operator tree"
      ~columns:
        [
          ("operator", T.Left);
          ("cloning", T.Right);
          ("comp. method", T.Left);
          ("redistr.", T.Left);
          ("card", T.Right);
          ("own work", T.Right);
          ("subtree (tf,tl)", T.Right);
        ]
  in
  List.iter
    (fun r ->
      T.add_row tbl
        [
          String.make (2 * r.depth) ' ' ^ r.operator;
          (if r.cloning > 1 then string_of_int r.cloning else "-");
          r.composition;
          (if r.redistributes then "yes" else "no");
          T.cell_float r.cardinality;
          T.cell_float r.own_work;
          Printf.sprintf "(%s, %s)"
            (T.cell_float r.subtree_first)
            (T.cell_float r.subtree_rt);
        ])
    (rows env root);
  tbl

let render env root = T.render (table env root)

let explain_plan env tree =
  let e = Costmodel.evaluate env tree in
  Printf.sprintf "plan: %s\nresponse time %.3f | work %.3f | order %s\n%s"
    (Parqo_plan.Join_tree.to_string e.Costmodel.tree)
    e.Costmodel.response_time e.Costmodel.work
    (Parqo_plan.Ordering.to_string e.Costmodel.ordering)
    (render env e.Costmodel.optree)
