(** Resource descriptors and the contention-aware cost calculus (§5.2.2).

    A resource descriptor is a pair of resource vectors [(rf, rl)]: usage
    until the first tuple is produced and until the last.  The pipeline
    operator penalizes its parallel phase by the synchronization factor
    [delta(k)], which interpolates between 1 (no contention: IPE-like)
    and [1 + k] (full contention: worse than sequential) — realizing the
    §5 desiderata that a dependent parallel execution ranges from IPE
    down to worse-than-SE. *)

type t = { rf : Rvec.t; rl : Rvec.t }

type delta_mode =
  | Stretch_time  (** [delta(k)] scales only the time coordinate *)
  | Scale_all  (** [delta(k)] scales time and work (literal reading) *)

type params = { delta_k : float; delta_mode : delta_mode }
(** [delta_k] is the adjustable [k] of §5.2.2; [delta_k = 0.] disables the
    pipeline penalty. *)

val params : ?delta_mode:delta_mode -> float -> params
(** [delta_mode] defaults to [Stretch_time]. *)

val of_machine : Parqo_machine.Machine.t -> params

val make : rf:Rvec.t -> rl:Rvec.t -> t
(** Raises [Invalid_argument] unless [rf] is dominated by [rl] in time. *)

val zero : int -> t

val atomic : Rvec.t -> t
(** A pipelined atomic operator: nothing before the first tuple
    ([rf = 0]), the full usage by the last. *)

val atomic_with : zero:Rvec.t -> Rvec.t -> t
(** {!atomic} with a caller-supplied (shareable, immutable) zero vector,
    avoiding a fresh allocation per operator in the costing hot path. *)

val blocking : Rvec.t -> t
(** An operator that cannot emit before finishing (sort, hash build):
    [rf = rl = usage]. *)

val sync : t -> t
(** Materialized execution: first tuple available only at the end. *)

val delta : params -> Rvec.t -> Rvec.t -> float
(** [delta params r1 r2] for the pipelined residuals: the linear
    interpolation [1 + k*(t' - max(t1,t2)) / (t1 + t2 - max(t1,t2))]
    where [t'] is the time of [par r1 r2]; [1.] when either residual has
    zero time. *)

val pipe : params -> t -> t -> t
(** [pipe producer consumer]: [rf = pf ; cf],
    [rl = pf ; cf ; delta × ((pl - pf) || (cl - cf))]. *)

val dseq : t -> t -> t
(** Component-wise sequential composition. *)

val tree : params -> t -> t -> t -> t
(** [tree l r root]: fronts of [l] and [r] in (contended) parallel, then
    the two residuals pipelined, piped into [root]. *)

(** {2 Scratch-buffer composition}

    The DP hot path evaluates [pipe]/[tree] once per candidate operator;
    the [_s] variants below run the same arithmetic in the same order on
    a caller-owned scratch, allocating only the vectors that escape into
    the result.  Results are bit-identical to {!pipe}/{!tree}.  A scratch
    must not be shared across domains. *)

type scratch

val scratch : int -> scratch
(** [scratch dim] allocates reusable buffers for [dim]-resource
    machines. *)

val scratch_dim : scratch -> int

val scratch_zero : scratch -> Rvec.t
(** A shared all-zero vector of the scratch's dimension (immutable;
    safe to embed in descriptors via {!atomic_with}). *)

val pipe_s : scratch -> params -> t -> t -> t
(** Scratch-backed {!pipe}. *)

val tree_s : scratch -> params -> t -> t -> t -> t
(** Scratch-backed {!tree}. *)

val response_time : t -> float
(** [rl] time — the metric being minimized. *)

val first_tuple_time : t -> float

val work : t -> float
(** Total work of the complete execution, [sum rl.work]. *)

val work_vector : t -> Parqo_util.Vecf.t

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
