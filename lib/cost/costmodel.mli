(** Recursive cost evaluation of operator trees and annotated join trees
    (§5): descriptors are combined bottom-up with [pipe], [tree] and
    [sync] exactly as the calculus prescribes. *)

type eval = {
  tree : Parqo_plan.Join_tree.t;
  optree : Parqo_optree.Op.node;
  descriptor : Descriptor.t;
  response_time : float;
  work : float;
  ordering : Parqo_plan.Ordering.t;
}
(** A fully-costed plan: the join tree, its unique operator-tree
    expansion, the resource descriptor, and the derived response time,
    total work and output ordering. *)

val of_optree :
  ?reuse:(Parqo_optree.Op.node * Descriptor.t) list ->
  ?scratch:Descriptor.scratch ->
  Env.t ->
  Parqo_optree.Op.node ->
  Descriptor.t
(** Cost of an operator tree: leaves get their base descriptors; a unary
    node pipes its child into itself; a binary node combines its children
    with [tree]; a [Materialized] composition applies [sync].  A nested-
    loops join over a bare index scan absorbs the probing cost (see
    {!Opcost.nl_inner_is_free}).

    [reuse] short-circuits the recursion at sub-trees (matched by
    physical identity) whose descriptors are already known — the
    incremental path of {!evaluate_cached} passes the grafted children
    here so only the new root operators are costed.  [scratch] supplies
    the descriptor combinators' buffers (results are identical either
    way); the cached hot path passes its handle-owned scratch, omitting
    it allocates a fresh one per call. *)

val evaluate :
  ?required_order:Parqo_plan.Ordering.t -> Env.t -> Parqo_plan.Join_tree.t -> eval
(** Expand then cost. Raises [Invalid_argument] on ill-formed trees.

    When [required_order] is given (an ORDER BY) and the plan's output
    ordering does not subsume it, the operator tree is extended with a
    final sort (merging partitioned streams first when the root is
    cloned) and the descriptor reflects that extra cost — so plans that
    deliver the order through an interesting order win exactly as §6.1.2
    describes. *)

val required_order : Env.t -> Parqo_plan.Ordering.t
(** The query's ORDER BY as an ordering (empty when absent). *)

(** {2 Incremental costing}

    A sub-plan cache keyed by {!Parqo_plan.Join_tree.key}.
    {!evaluate_cached} evaluates a join of cached children in O(new root
    operators): the cached child expansions are grafted unchanged, the
    new operators' descriptors pipe onto the cached child descriptors,
    and the result is bit-identical to {!evaluate} (same arithmetic on
    the same values in the same order).

    A cache handle is owned by one domain (its read path takes no lock);
    parallel regions derive one {!shard_cache} per worker over the same
    published snapshot, {!absorb_cache} them after the barrier, and
    {!publish_cache} the coordinator's writes before the next region —
    see {!Parqo_util.Plan_cache}. *)

type cache

val create_cache : ?remember_all:bool -> unit -> cache
(** Access-plan leaves are always remembered on miss.  Join evaluations
    are remembered only when [remember_all] is set (suits annotation
    search, where sub-trees recur across variants) or via an explicit
    {!remember} (the DP remembers exactly its memoized covers, bounding
    the cache at the memo's size rather than one entry per candidate). *)

val evaluate_cached :
  ?required_order:Parqo_plan.Ordering.t ->
  cache ->
  Env.t ->
  Parqo_plan.Join_tree.t ->
  eval
(** Like {!evaluate}, reusing cached sub-plan evaluations.  Raises
    [Invalid_argument] when a relation appears on both sides of a join;
    sub-trees not in the cache are checked by their own evaluation. *)

val remember : cache -> eval -> unit
(** Insert an evaluation under its plan's key (idempotent; values are
    pure functions of the key, so independently computed entries are
    interchangeable). *)

val shard_cache : cache -> cache
(** A worker-private handle over the same published snapshot — one per
    worker of a parallel region; see {!Parqo_util.Plan_cache.shard}. *)

val absorb_cache : cache -> cache -> unit
(** [absorb_cache parent shard] merges a quiesced shard's private writes
    and hit/miss counters back into [parent] (post-barrier). *)

val publish_cache : cache -> unit
(** Fold the owner's private writes into the shared snapshot, making
    them visible to shards derived afterwards. *)

val cache_stats : cache -> int * int * int
(** [(hits, misses, entries)] — counters observed through this handle
    (absorbed shards included). *)

val response_time : Env.t -> Parqo_plan.Join_tree.t -> float

val work : Env.t -> Parqo_plan.Join_tree.t -> float

val pp_eval : Format.formatter -> eval -> unit
