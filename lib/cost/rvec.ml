module Vecf = Parqo_util.Vecf

type t = { time : float; work : Vecf.t }

let zero dim = { time = 0.; work = Vecf.zero dim }

let make ~time ~work =
  if time +. 1e-9 < Vecf.max_coord work then
    invalid_arg "Rvec.make: time below busiest resource";
  { time; work }

(* [work] is adopted, not copied: the caller hands over a freshly
   accumulated per-resource array (see {!of_demands} and
   [Opcost]'s scratch accumulation) and must not write it again *)
let of_accumulated work ~lanes ~overhead =
  if lanes < 1 then invalid_arg "Rvec.of_accumulated: lanes < 1";
  let work = Vecf.unsafe_adopt work in
  let total = Vecf.sum work in
  let cloned =
    total /. float_of_int lanes *. (1. +. (overhead *. float_of_int (lanes - 1)))
  in
  { time = Vecf.fmax (Vecf.max_coord work) cloned; work }

let of_demands dim demands ~lanes ~overhead =
  if lanes < 1 then invalid_arg "Rvec.of_demands: lanes < 1";
  let work = Array.make dim 0. in
  List.iter
    (fun (id, w) ->
      if id < 0 || id >= dim then invalid_arg "Rvec.of_demands: bad resource id";
      if w < 0. then invalid_arg "Rvec.of_demands: negative work";
      work.(id) <- work.(id) +. w)
    demands;
  of_accumulated work ~lanes ~overhead

let seq a b = { time = a.time +. b.time; work = Vecf.add a.work b.work }

let par a b =
  let work = Vecf.add a.work b.work in
  { time = Vecf.fmax (Vecf.fmax a.time b.time) (Vecf.max_coord work); work }

let residual whole front =
  let work = Vecf.clamp_non_negative (Vecf.sub whole.work front.work) in
  (* the remaining work still needs at least its busiest resource's time *)
  {
    time = Vecf.fmax (Vecf.max_coord work) (Vecf.fmax 0. (whole.time -. front.time));
    work;
  }

let stretch m r =
  if m < 1. then invalid_arg "Rvec.stretch: factor < 1";
  { r with time = m *. r.time }

let scale_all m r = { time = m *. r.time; work = Vecf.scale m r.work }
let response_time r = r.time
let total_work r = Vecf.sum r.work
let is_zero r = r.time = 0. && Vecf.sum r.work = 0.

let add_work r id w =
  let work = Vecf.set r.work id (Vecf.get r.work id +. w) in
  { time = Vecf.fmax r.time (Vecf.max_coord work); work }

let equal ?(eps = 1e-9) a b =
  Float.abs (a.time -. b.time) <= eps && Vecf.equal ~eps a.work b.work

let pp ppf r = Format.fprintf ppf "(t=%.3g, w=%a)" r.time Vecf.pp r.work
