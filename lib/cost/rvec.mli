(** Resource vectors (§5.2.1).

    A resource vector [(t, w⃗)] abstracts the usage of the machine's
    resources by a set of operations: [t] is the time after which all
    resources are freed (the response time of the set) and [w⃗] is the
    effective work per resource.  The model assumes usage is uniform over
    [t] and resources are preemptable, which yields the "property of
    stretching": [(t, w⃗)] can be scheduled as [(m·t, w⃗)] for any [m > 1]. *)

type t = { time : float; work : Parqo_util.Vecf.t }

val zero : int -> t
(** Zero usage over a machine with the given number of resources. *)

val make : time:float -> work:Parqo_util.Vecf.t -> t
(** Raises [Invalid_argument] if [time] is less than the largest work
    coordinate (a resource cannot do [w] work in less than [w] time). *)

val of_accumulated : float array -> lanes:int -> overhead:float -> t
(** Like {!of_demands} over an already-accumulated per-resource work
    array.  The array is {e adopted} (no copy, no validation): the caller
    must hand over a fresh buffer and never write it again — this is the
    allocation-free fast path of [Opcost].  Raises [Invalid_argument] if
    [lanes < 1]. *)

val of_demands : int -> (int * float) list -> lanes:int -> overhead:float -> t
(** [of_demands dim demands ~lanes ~overhead] builds the vector of an
    atomic operator: [demands] accumulates work per resource id; the
    standalone response time is the traditional "total work" estimate,
    divided by [lanes] (degree of cloning) and penalized by
    [1 + overhead*(lanes-1)], but never below the largest single-resource
    demand. *)

val seq : t -> t -> t
(** The [;] operator: sequential execution — times and works add. *)

val par : t -> t -> t
(** The [||] operator under contention (§5.2.2):
    [t = max(t1, t2, max_i(w1_i + w2_i))], [w = w1 + w2]. *)

val residual : t -> t -> t
(** [residual whole front] is the [⊖] of §5.2.2 realized as coordinate
    subtraction of work and time, clamped at zero; the residual time is
    floored at the busiest remaining resource's work so the vector stays
    well-formed. *)

val stretch : float -> t -> t
(** Scales time only, leaving work unchanged (property of stretching);
    factor must be [>= 1]. *)

val scale_all : float -> t -> t
(** Scales time and work (the literal [delta(k) ×] reading). *)

val response_time : t -> float

val total_work : t -> float

val is_zero : t -> bool

val add_work : t -> int -> float -> t
(** Adds work on one resource, raising the time floor if needed. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
