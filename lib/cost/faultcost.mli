(** Expected re-execution cost of a plan under fail-stop faults.

    The composition annotation of §4.2 is also a recovery choice: a
    [Materialized] edge checkpoints its producer, while a [Pipelined]
    segment must re-execute back to its nearest materialized ancestor
    after a failure.  This module prices that choice: decompose the
    operator tree into its pipelined segments (exactly the stages of
    [Task_graph.of_optree]), and charge each segment the expected work it
    re-executes when its tasks fail-stop at rate [fault_rate] per
    attempt.

    With [n] operators of total work [W] in a segment, each operator
    fails about [fault_rate] times in expectation and each failure loses
    on average half the segment's work under stage-restart recovery, so
    the segment's penalty is [fault_rate * n * W / 2].  More sync points
    mean smaller segments and a smaller penalty — at the price of the
    sync overhead the paper's calculus already charges.  The penalty is
    a pessimistic serial charge (re-execution is priced as time), which
    keeps the objective monotone in segment size. *)

val segments : Env.t -> Parqo_optree.Op.node -> (int * float) list
(** [(n_operators, total_work)] per pipelined segment, using the same
    decomposition (and the same nested-loops-inner exemption) as the
    simulator's task graph. *)

val expected_penalty : Env.t -> fault_rate:float -> Parqo_optree.Op.node -> float
(** [sum over segments of fault_rate * n * W / 2]; [0.] at rate [0.]. *)

val slowdown_penalty :
  Env.t -> rate:float -> factor:float -> Parqo_optree.Op.node -> float
(** Expected extra time from partial slowdowns (brownouts) rather than
    fail-stop loss: each segment operator browns out at [rate] per
    attempt to a remaining-capacity [factor], stretching the affected
    (half-segment, on average) work by [1/factor - 1] — so the charge is
    [sum over segments of rate * n * W * (1/factor - 1) / 2].  [0.] at
    rate [0.] or factor ≥ 1; raises [Invalid_argument] at factor ≤ 0
    (full loss is {!expected_penalty}'s regime). *)

val expected_response_time :
  ?slowdown:float * float ->
  Env.t ->
  fault_rate:float ->
  Costmodel.eval ->
  float
(** The failure-aware objective: calculus response time plus the
    expected re-execution penalty of the plan's operator tree, plus —
    when [slowdown = Some (rate, factor)] is given — the
    {!slowdown_penalty} of pricing brownouts at that rate.  Omitting
    [slowdown] leaves the objective bit-identical to the fail-stop-only
    form. *)
