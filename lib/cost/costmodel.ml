module Op = Parqo_optree.Op
module P = Parqo_plan
module Plan_cache = Parqo_util.Plan_cache
module Bitset = Parqo_util.Bitset

type eval = {
  tree : P.Join_tree.t;
  optree : Op.node;
  descriptor : Descriptor.t;
  response_time : float;
  work : float;
  ordering : P.Ordering.t;
}

let rec reuse_find node = function
  | [] -> None
  | (k, d) :: rest -> if k == node then Some d else reuse_find node rest

let of_optree ?(reuse = []) ?scratch (env : Env.t) root =
  let p = env.dparams in
  let s =
    (* the combinators run on a scratch either way; the cached hot path
       passes its per-handle scratch, one-shot callers get a fresh one *)
    match scratch with
    | Some s -> s
    | None -> Descriptor.scratch env.placement.Placement.dim
  in
  let rec descr (node : Op.node) =
    (* [reuse] holds grafted sub-trees (matched physically) whose
       descriptors were computed by this same recursion earlier — the
       incremental path stops here instead of re-walking them *)
    match reuse_find node reuse with
    | Some d -> d
    | None -> (
      let base = Opcost.base env.placement env.estimator node in
      let combined =
        match node.Op.children with
        | [] -> base
        | [ c ] -> Descriptor.pipe_s s p (descr c) base
        | [ l; r ] ->
          if Opcost.nl_inner_is_free node then
            (* the inner index is probed, not scanned: only the outer feeds
               the pipeline, probing cost is in [base] *)
            Descriptor.pipe_s s p (descr l) base
          else Descriptor.tree_s s p (descr l) (descr r) base
        | _ -> invalid_arg "Costmodel: operator with more than two children"
      in
      match node.Op.composition with
      | Op.Materialized -> Descriptor.sync combined
      | Op.Pipelined -> combined)
  in
  descr root

let required_order (env : Env.t) =
  List.map
    (fun (c : Parqo_query.Query.column_ref) ->
      { P.Ordering.rel = c.Parqo_query.Query.rel; column = c.Parqo_query.Query.column })
    (Env.query env).Parqo_query.Query.order_by

(* wrap the expanded plan in a final sort (after collapsing partitioned
   streams to one) so ORDER BY cost is part of the same calculus *)
let add_final_sort (root : Op.node) key =
  let max_id = Op.fold (fun acc n -> max acc n.Op.id) 0 root in
  let merged =
    if root.Op.clone > 1 then
      {
        Op.id = max_id + 1;
        kind = Op.Exchange { mode = Op.Merge_streams };
        children = [ root ];
        composition = Op.Pipelined;
        clone = 1;
        partition = None;
        out_card = root.Op.out_card;
        out_width = root.Op.out_width;
      }
    else root
  in
  {
    Op.id = max_id + 2;
    kind = Op.Sort { key };
    children = [ merged ];
    composition = Op.Pipelined;
    clone = 1;
    partition = None;
    out_card = merged.Op.out_card;
    out_width = merged.Op.out_width;
  }

let of_descriptor ~tree ~optree ~ordering descriptor =
  {
    tree;
    optree;
    descriptor;
    response_time = Descriptor.response_time descriptor;
    work = Descriptor.work descriptor;
    ordering;
  }

(* add the ORDER BY sort on top of an already-costed plan; the sort (and
   merge) descriptors pipe onto the root's, exactly as a from-scratch
   [of_optree] over the extended tree would compute them *)
let with_final_sort (env : Env.t) required e =
  let optree = add_final_sort e.optree required in
  let descriptor = of_optree ~reuse:[ (e.optree, e.descriptor) ] env optree in
  of_descriptor ~tree:e.tree ~optree ~ordering:e.ordering descriptor

let evaluate ?(required_order = P.Ordering.none) (env : Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.expand_config env.estimator tree
  in
  let ordering = P.Props.ordering (Env.query env) tree in
  let e = of_descriptor ~tree ~optree ~ordering (of_optree env optree) in
  if
    required_order <> P.Ordering.none
    && not (P.Ordering.satisfies ordering required_order)
  then with_final_sort env required_order e
  else e

(* ---------------------------------------------------------------- *)
(* Incremental costing (the PODP hot path).

   The partial-order DP only ever evaluates joins of sub-plans whose
   covers it already memoized, so the cache stores one entry per
   remembered sub-plan — keyed by the tree's interned canonical key —
   holding its expansion, descriptor and output ordering.  Evaluating a
   join of two cached children then costs O(new root operators): the
   child expansions are grafted under the new root operators
   (Expand.expand_join), the new operators' descriptors pipe onto the
   cached child descriptors (of_optree ~reuse), and only the node-id
   renumbering walks the whole tree.  Every arithmetic operation runs on
   the same values in the same order as the uncached path, so the result
   is bit-identical.

   Domain safety is by ownership, not locking: a cache handle belongs to
   one domain; parallel regions give each worker a [shard_cache] (private
   overlay over the shared published snapshot, lock-free reads), the
   coordinator [absorb_cache]s the shards after the barrier and
   [publish_cache]es its writes before the next region.  Values are pure
   functions of the key, so independently computed entries are
   interchangeable.  [remember_all] suits annotation search (two-phase),
   where revisited sub-trees are the common case; the DP instead
   remembers exactly its memoized covers plus the access-plan leaves,
   keeping the cache's footprint at the memo's size rather than one
   entry per candidate. *)

type cache = {
  store : eval Plan_cache.t;
  remember_all : bool;
  mutable scratch : Descriptor.scratch option;
      (* descriptor scratch, lazily sized to the machine; owned by this
         handle's domain like the store, never shared across shards *)
}

let create_cache ?(remember_all = false) () =
  { store = Plan_cache.create (); remember_all; scratch = None }

let shard_cache cache =
  {
    store = Plan_cache.shard cache.store;
    remember_all = cache.remember_all;
    scratch = None;
  }

let scratch_of cache (env : Env.t) =
  match cache.scratch with
  | Some s -> s
  | None ->
    let s = Descriptor.scratch env.placement.Placement.dim in
    cache.scratch <- Some s;
    s

let absorb_cache cache shard = Plan_cache.absorb cache.store shard.store
let publish_cache cache = Plan_cache.publish cache.store

let remember cache e = Plan_cache.remember cache.store (P.Join_tree.key e.tree) e

let cache_stats cache =
  (Plan_cache.hits cache.store, Plan_cache.misses cache.store,
   Plan_cache.length cache.store)

let rec evaluate_sub cache (env : Env.t) (tree : P.Join_tree.t) =
  match Plan_cache.find cache.store (P.Join_tree.key tree) with
  | Some e -> e
  | None ->
    let e =
      match tree with
      | P.Join_tree.Access _ -> evaluate env tree
      | P.Join_tree.Join j ->
        let oe = evaluate_sub cache env j.outer in
        let ie = evaluate_sub cache env j.inner in
        (* children are well-formed (their own evaluation checked them);
           the combination is iff their leaf sets are disjoint *)
        if not (Bitset.disjoint (P.Join_tree.relations j.outer)
                  (P.Join_tree.relations j.inner))
        then invalid_arg "Costmodel: relation used more than once";
        let root =
          Parqo_optree.Expand.expand_join ~config:env.expand_config
            env.estimator j ~outer:oe.optree ~inner:ie.optree
            ~outer_ordering:(lazy oe.ordering)
            ~inner_ordering:(lazy ie.ordering)
        in
        let descriptor =
          of_optree
            ~reuse:[ (oe.optree, oe.descriptor); (ie.optree, ie.descriptor) ]
            ~scratch:(scratch_of cache env) env root
        in
        let optree = Parqo_optree.Expand.renumber root in
        let ordering =
          P.Props.ordering_of_join (Env.query env) j
            ~outer:(fun () -> oe.ordering)
        in
        of_descriptor ~tree ~optree ~ordering descriptor
    in
    let keep =
      cache.remember_all
      || (match tree with P.Join_tree.Access _ -> true | P.Join_tree.Join _ -> false)
    in
    if keep then remember cache e;
    e

let evaluate_cached ?(required_order = P.Ordering.none) cache env tree =
  let e = evaluate_sub cache env tree in
  if
    required_order <> P.Ordering.none
    && not (P.Ordering.satisfies e.ordering required_order)
  then with_final_sort env required_order e
  else e

let response_time env tree = (evaluate env tree).response_time
let work env tree = (evaluate env tree).work

let pp_eval ppf e =
  Format.fprintf ppf "@[<v>plan: %s@,rt=%.3f work=%.3f order=%s@,%a@]"
    (P.Join_tree.to_string e.tree)
    e.response_time e.work
    (P.Ordering.to_string e.ordering)
    Op.pp e.optree
