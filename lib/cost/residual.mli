(** Residual-query construction for adaptive re-planning.

    When recovery crosses a sync point, the surviving materialized
    intermediates (checkpoints) are still on disk — re-optimization
    should treat them as base relations instead of recomputing them.
    [construct] builds that residual environment: each maximal surviving
    operator subtree becomes a synthetic catalog table (cardinality from
    the subtree root's estimated [out_card], schema = the mangled union
    of the covered relations' columns, declustered over every in-service
    disk), the query is {!Parqo_query.Query.contract}ed over the covered
    relation groups, and the environment is created on the machine the
    caller observed — degraded, rescaled or grown — so the optimizer
    re-plans exactly the work that remains, on the machine that
    remains. *)

type t = {
  env : Env.t;
      (** environment for the residual query on the given machine;
          optimize this, then lower the winner with
          {!Parqo_sim.Task_graph.of_optree} (downed resources keep their
          ids; a grown machine appends dimensions) *)
  checkpoints : (string * Parqo_optree.Op.node) list;
      (** synthetic table name → the surviving subtree it stands for *)
  n_relations : int;  (** relation count of the residual query *)
}

val construct :
  Env.t ->
  survivors:Parqo_optree.Op.node list ->
  machine:Parqo_machine.Machine.t ->
  round:int ->
  (t, string) result
(** [survivors] are the op roots of surviving materialized stages (in
    any order; non-maximal ones — nested inside another survivor — are
    dropped; the empty list re-plans the whole query from scratch).
    [machine] is the effective machine to re-plan on — typically the
    original one with lost resources {!Parqo_machine.Machine.degrade}d,
    browned-out ones {!Parqo_machine.Machine.rescale}d and scale-out
    events {!Parqo_machine.Machine.grow}n on.  [round] numbers the
    re-plan so synthetic names stay unique across repeated re-planning.
    Errors (rather than raises) when no usable residual environment
    exists. *)
