(** A single-threaded, tuple-at-a-time reference executor.

    It executes annotated join trees over materialized synthetic data
    using the join method each node is annotated with (nested loops,
    sort-merge or hash).  Its purpose is semantic ground truth: every
    legal plan for a query must return the same bag of tuples, so any
    plan the optimizer emits can be checked end-to-end.  Parallel
    annotations (cloning, composition) do not affect results and are
    ignored here; timing is the {!Parqo_sim} simulator's job. *)

val scan :
  Parqo_catalog.Datagen.database -> Parqo_query.Query.t -> rel:int -> Batch.t
(** Base rows of a relation with the query's selections applied. *)

val join :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  method_:Parqo_plan.Join_method.t ->
  outer:Batch.t ->
  inner:Batch.t ->
  Batch.t
(** Joins two batches on every query predicate that crosses them
    (cartesian product when none does). All three methods produce
    identical bags. *)

val run :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_plan.Join_tree.t ->
  Batch.t
(** Executes a join tree bottom-up. Raises [Invalid_argument] on a tree
    that is not well-formed for the query. *)

val project :
  Parqo_catalog.Datagen.database -> Parqo_query.Query.t -> Batch.t -> Batch.t
(** Applies the query's projection list (identity when empty). *)

val finalize :
  Parqo_catalog.Datagen.database -> Parqo_query.Query.t -> Batch.t -> Batch.t
(** ORDER BY (stable sort on the requested columns) followed by the
    projection — the query's output contract, shared by every executor. *)

val run_query :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_plan.Join_tree.t ->
  Batch.t
(** [run] followed by [finalize]. *)

val reference :
  Parqo_catalog.Datagen.database -> Parqo_query.Query.t -> Batch.t
(** Ground truth computed by a fixed canonical plan (left-deep in
    relation order, nested loops), with projection. *)
