module C = Parqo_catalog
module Q = Parqo_query.Query
module P = Parqo_plan
module Value = C.Value

type t = {
  layout : Batch.layout;
  mutable pull : unit -> Value.t array option;
  mutable closed : bool;
  counter : int ref;  (* base rows fetched, shared along the pipeline *)
}

let layout it = it.layout

let next it =
  if it.closed then invalid_arg "Iterator.next: closed";
  it.pull ()

let close it =
  it.closed <- true;
  it.pull <- (fun () -> None)

let rows_until_first it = it.counter

let table_of db query rel =
  C.Catalog.table db.C.Datagen.catalog (Q.table_name query rel)

let col_pos db query layout (r : Q.column_ref) =
  Batch.offset layout r.Q.rel
  + C.Table.column_index (table_of db query r.Q.rel) r.Q.column

(* positions of each cross predicate's columns on the two sides *)
let key_positions db query ~outer_layout ~inner_layout =
  let module B = Parqo_util.Bitset in
  let outer_rels = B.of_list (List.map fst outer_layout) in
  let inner_rels = B.of_list (List.map fst inner_layout) in
  Q.joins_between query outer_rels inner_rels
  |> List.map (fun (p : Q.join_pred) ->
         if B.mem p.Q.left.Q.rel outer_rels then
           (col_pos db query outer_layout p.Q.left,
            col_pos db query inner_layout p.Q.right)
         else
           (col_pos db query outer_layout p.Q.right,
            col_pos db query inner_layout p.Q.left))

let key_of positions row = List.map (fun p -> row.(p)) positions

let compare_keys a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else go xs ys
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
  in
  go a b

(* drain another iterator completely (used by blocking operators) *)
let drain it =
  let rec go acc =
    match next it with None -> List.rev acc | Some row -> go (row :: acc)
  in
  let rows = go [] in
  close it;
  rows

let scan counter db query rel =
  let b = Executor.scan db query ~rel in
  let remaining = ref b.Batch.rows in
  {
    layout = b.Batch.layout;
    closed = false;
    counter;
    pull =
      (fun () ->
        match !remaining with
        | [] -> None
        | row :: rest ->
          remaining := rest;
          incr counter;
          Some row);
  }

let index_scan counter db query rel (index : C.Index.t) =
  let b = Executor.scan db query ~rel in
  let positions =
    List.map
      (fun column -> col_pos db query b.Batch.layout { Q.rel; column })
      index.C.Index.columns
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare_keys (key_of positions a) (key_of positions b))
      b.Batch.rows
  in
  let remaining = ref sorted in
  {
    layout = b.Batch.layout;
    closed = false;
    counter;
    pull =
      (fun () ->
        match !remaining with
        | [] -> None
        | row :: rest ->
          remaining := rest;
          incr counter;
          Some row);
  }

let combined_layout outer inner = Batch.concat_layouts outer.layout inner.layout

(* nested loops: stream the outer, memoize the inner on first use *)
let nl_join db query outer inner =
  let layout = combined_layout outer inner in
  let keys =
    key_positions db query ~outer_layout:outer.layout ~inner_layout:inner.layout
  in
  let opos = List.map fst keys and ipos = List.map snd keys in
  let inner_rows = lazy (drain inner) in
  let current = ref None (* (outer_row, remaining inner matches) *) in
  let rec pull () =
    match !current with
    | Some (orow, irow :: rest) ->
      current := Some (orow, rest);
      Some (Array.append orow irow)
    | Some (_, []) ->
      current := None;
      pull ()
    | None -> (
      match next outer with
      | None -> None
      | Some orow ->
        let okey = key_of opos orow in
        let matches =
          List.filter
            (fun irow -> compare_keys okey (key_of ipos irow) = 0)
            (Lazy.force inner_rows)
        in
        let matches =
          if keys = [] then Lazy.force inner_rows (* cartesian *) else matches
        in
        current := Some (orow, matches);
        pull ())
  in
  { layout; closed = false; counter = outer.counter; pull }

(* hash join: blocking build on the inner, streaming probe of the outer *)
let hash_join db query outer inner =
  let layout = combined_layout outer inner in
  let keys =
    key_positions db query ~outer_layout:outer.layout ~inner_layout:inner.layout
  in
  let opos = List.map fst keys and ipos = List.map snd keys in
  let table =
    lazy
      (let tbl = Hashtbl.create 64 in
       List.iter
         (fun irow -> Hashtbl.add tbl (key_of ipos irow) irow)
         (drain inner);
       tbl)
  in
  let pending = ref [] in
  let rec pull () =
    match !pending with
    | row :: rest ->
      pending := rest;
      Some row
    | [] -> (
      match next outer with
      | None -> None
      | Some orow ->
        let matches = Hashtbl.find_all (Lazy.force table) (key_of opos orow) in
        pending := List.rev_map (fun irow -> Array.append orow irow) matches;
        pull ())
  in
  { layout; closed = false; counter = outer.counter; pull }

(* sort-merge: blocking sorts, streaming merge with group cross products *)
let merge_join db query outer inner =
  let layout = combined_layout outer inner in
  let keys =
    key_positions db query ~outer_layout:outer.layout ~inner_layout:inner.layout
  in
  let opos = List.map fst keys and ipos = List.map snd keys in
  let state =
    lazy
      (let sort pos rows =
         List.stable_sort
           (fun a b -> compare_keys (key_of pos a) (key_of pos b))
           rows
       in
       (ref (sort opos (drain outer)), ref (sort ipos (drain inner))))
  in
  let pending = ref [] in
  let rec pull () =
    match !pending with
    | row :: rest ->
      pending := rest;
      Some row
    | [] -> (
      let orows, irows = Lazy.force state in
      match (!orows, !irows) with
      | [], _ | _, [] -> None
      | orow :: orest, irow :: _ ->
        let c = compare_keys (key_of opos orow) (key_of ipos irow) in
        if c < 0 then begin
          orows := orest;
          pull ()
        end
        else if c > 0 then begin
          irows := List.tl !irows;
          pull ()
        end
        else begin
          (* emit the cross product of orow with the inner group *)
          let okey = key_of opos orow in
          let group =
            let rec take = function
              | r :: rest when compare_keys (key_of ipos r) okey = 0 ->
                r :: take rest
              | _ -> []
            in
            take !irows
          in
          orows := orest;
          pending := List.map (fun irow -> Array.append orow irow) group;
          pull ()
        end)
  in
  { layout; closed = false; counter = outer.counter; pull }

let of_plan db query tree =
  (match
     P.Join_tree.well_formed ~n_relations:(Q.n_relations query) tree
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Iterator.of_plan: " ^ msg));
  let counter = ref 0 in
  let rec build = function
    | P.Join_tree.Access a -> (
      match a.P.Join_tree.path with
      | P.Access_path.Seq_scan -> scan counter db query a.P.Join_tree.rel
      | P.Access_path.Index_scan index ->
        index_scan counter db query a.P.Join_tree.rel index)
    | P.Join_tree.Join j ->
      let outer = build j.P.Join_tree.outer in
      let inner = build j.P.Join_tree.inner in
      (match j.P.Join_tree.method_ with
      | P.Join_method.Nested_loops -> nl_join db query outer inner
      | P.Join_method.Hash_join -> hash_join db query outer inner
      | P.Join_method.Sort_merge -> merge_join db query outer inner)
  in
  build tree

let to_batch it =
  let rows = drain it in
  Batch.create ~layout:it.layout ~rows

let run_query db query tree =
  Executor.finalize db query (to_batch (of_plan db query tree))
