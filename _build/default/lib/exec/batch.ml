module Value = Parqo_catalog.Value

type layout = (int * int) list
type t = { layout : layout; rows : Value.t array list }

let total layout = List.fold_left (fun acc (_, a) -> acc + a) 0 layout

let create ~layout ~rows =
  let w = total layout in
  if List.exists (fun r -> Array.length r <> w) rows then
    invalid_arg "Batch.create: row width mismatch";
  { layout; rows }

let n_rows b = List.length b.rows
let width b = total b.layout

let offset layout rel =
  let rec go acc = function
    | [] -> raise Not_found
    | (r, a) :: rest -> if r = rel then acc else go (acc + a) rest
  in
  go 0 layout

let column b ~rel ~index row = row.(offset b.layout rel + index)

let concat_layouts a b =
  let rels l = List.map fst l in
  if List.exists (fun r -> List.mem r (rels b)) (rels a) then
    invalid_arg "Batch.concat_layouts: overlapping relations";
  a @ b

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonical b =
  let sorted_layout = List.sort compare b.layout in
  let moves =
    (* for each target position, the source position *)
    List.concat_map
      (fun (rel, arity) ->
        let src = offset b.layout rel in
        List.init arity (fun i -> src + i))
      sorted_layout
  in
  let moves = Array.of_list moves in
  let remap row = Array.map (fun src -> row.(src)) moves in
  let rows = List.map remap b.rows |> List.sort compare_rows in
  { layout = sorted_layout; rows }

let equal_bags a b =
  let ca = canonical a and cb = canonical b in
  ca.layout = cb.layout
  && List.length ca.rows = List.length cb.rows
  && List.for_all2 (fun x y -> compare_rows x y = 0) ca.rows cb.rows

let pp ppf b =
  Format.fprintf ppf "@[<v>batch %d rows, layout=[%s]@,"
    (n_rows b)
    (String.concat "; "
       (List.map (fun (r, a) -> Printf.sprintf "r%d:%d" r a) b.layout));
  List.iteri
    (fun i row ->
      if i < 5 then
        Format.fprintf ppf "  (%s)@,"
          (String.concat ", "
             (Array.to_list (Array.map Value.to_string row))))
    b.rows;
  Format.fprintf ppf "@]"
