(** A pull-based (Volcano-style) iterator executor.

    Where {!Executor} materializes every intermediate result, this
    executor streams: each operator produces tuples on demand through
    [next], so pipelined composition (§4.2) is real at the data level —
    a probe emits its first joined row after only the build side has been
    consumed, exactly the first-tuple/last-tuple distinction the cost
    model's descriptors track.  Blocking operators (sort, hash build)
    consume their whole input inside [open_].

    The three executors (materializing, parallel-partitioned, streaming)
    are mutually cross-checked by the test suite on random plans. *)

type t
(** An open iterator: a stream of rows over a fixed layout. *)

val layout : t -> Batch.layout

val next : t -> Parqo_catalog.Value.t array option
(** The next row, or [None] when exhausted (idempotent thereafter). *)

val close : t -> unit
(** Releases state; [next] after [close] raises [Invalid_argument]. *)

val of_plan :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_plan.Join_tree.t ->
  t
(** Compiles an annotated join tree to an iterator pipeline: accesses
    stream base rows (index scans in key order), joins use the annotated
    method — nested loops streams the outer and rescans a memoized inner,
    hash join builds on the inner then streams the outer, sort-merge
    sorts both inputs (blocking) and streams the merge. Selections are
    applied in the scans. *)

val to_batch : t -> Batch.t
(** Drains the iterator (and closes it). *)

val run_query :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_plan.Join_tree.t ->
  Batch.t
(** [of_plan] + drain + ORDER BY + projection — same contract as
    {!Executor.run_query}. *)

val rows_until_first : t -> int ref
(** Instrumentation used by tests: a counter incremented per base-table
    row fetched; reading it right after the first [next] shows how much
    input a pipelined plan needed to emit its first tuple (small for
    streaming plans, everything for blocking ones). *)
