(** Intermediate results of the tuple-level executor.

    A batch is a bag of rows plus a layout describing which relation's
    columns occupy which positions — join results concatenate their
    operands' layouts, so equivalent plans produce column orders that
    differ only by relation permutation.  [canonical] normalizes that,
    letting the tests assert that every plan for a query returns the same
    bag. *)

type layout = (int * int) list
(** [(relation id, arity)] segments, in row order. A projected batch uses
    the pseudo-relation [-1]. *)

type t = { layout : layout; rows : Parqo_catalog.Value.t array list }

val create : layout:layout -> rows:Parqo_catalog.Value.t array list -> t
(** Raises [Invalid_argument] if some row's width differs from the layout
    total. *)

val n_rows : t -> int

val width : t -> int

val offset : layout -> int -> int
(** Start position of a relation's columns. Raises [Not_found]. *)

val column :
  t -> rel:int -> index:int -> Parqo_catalog.Value.t array -> Parqo_catalog.Value.t
(** Value of the [index]-th column of [rel] within one row. *)

val concat_layouts : layout -> layout -> layout
(** Raises [Invalid_argument] when a relation appears on both sides. *)

val canonical : t -> t
(** Columns regrouped by ascending relation id; rows sorted.  Two batches
    are the same bag iff their canonical forms are equal. *)

val equal_bags : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Layout plus the first few rows. *)
