(** A data-level executor for *operator trees*: runs the macro-expanded,
    annotated form of a plan with its parallel semantics made concrete.

    Each operator runs as [clone] instances, each owning one partition of
    its input; exchange operators physically move rows — [Repartition]
    routes each row by the hash of its partitioning attribute,
    [Broadcast] replicates the input to every instance, [Merge_streams]
    collapses to one.  Joins execute per instance with the annotated
    method.

    Purpose: semantic validation of the §4 expansion.  If {!Parqo_optree.Expand}
    ever placed an exchange wrongly (or omitted one), co-partitioned joins
    would miss matches and the result would diverge from the sequential
    executor — the test suite checks exactly that equivalence over random
    annotated plans.  (Timing is the simulator's job; this module is about
    where the tuples go.) *)

val run :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_optree.Op.node ->
  Batch.t
(** Executes an operator tree bottom-up, merging the root's partitions.
    ORDER BY and projection are not applied (compare with
    {!Executor.run}); use {!run_query} for the full pipeline.  Raises
    [Invalid_argument] on trees whose partitioning attributes cannot be
    resolved against the query. *)

val run_query :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_optree.Op.node ->
  Batch.t
(** [run] followed by the query's ORDER BY and projection. *)

val partition_skew :
  Parqo_catalog.Datagen.database ->
  Parqo_query.Query.t ->
  Parqo_optree.Op.node ->
  (string * int * float) list
(** Diagnostic: for every cloned operator in the tree, the label, its
    degree and the ratio of its largest partition to the mean — the
    data-skew the uniform cost model abstracts away (§5's "we lose some
    ability to model hot spots"). *)
