lib/exec/iterator.ml: Array Batch Executor Hashtbl Lazy List Parqo_catalog Parqo_plan Parqo_query Parqo_util
