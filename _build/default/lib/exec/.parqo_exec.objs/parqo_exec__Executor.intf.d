lib/exec/executor.mli: Batch Parqo_catalog Parqo_plan Parqo_query
