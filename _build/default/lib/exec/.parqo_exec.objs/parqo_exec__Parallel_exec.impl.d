lib/exec/parallel_exec.ml: Array Batch Executor List Parqo_catalog Parqo_optree Parqo_plan Parqo_query Printf
