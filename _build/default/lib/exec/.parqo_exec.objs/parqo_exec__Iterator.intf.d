lib/exec/iterator.mli: Batch Parqo_catalog Parqo_plan Parqo_query
