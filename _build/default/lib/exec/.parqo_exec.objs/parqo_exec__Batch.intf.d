lib/exec/batch.mli: Format Parqo_catalog
