lib/exec/executor.ml: Array Batch Hashtbl List Parqo_catalog Parqo_plan Parqo_query Parqo_util
