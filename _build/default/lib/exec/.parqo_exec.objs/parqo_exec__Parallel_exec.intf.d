lib/exec/parallel_exec.mli: Batch Parqo_catalog Parqo_optree Parqo_query
