lib/exec/batch.ml: Array Format List Parqo_catalog Printf String
