module C = Parqo_catalog
module Q = Parqo_query.Query
module P = Parqo_plan
module Bitset = Parqo_util.Bitset
module Value = C.Value

let table_of db query rel =
  C.Catalog.table db.C.Datagen.catalog (Q.table_name query rel)

let column_pos db query layout (r : Q.column_ref) =
  let table = table_of db query r.Q.rel in
  Batch.offset layout r.Q.rel + C.Table.column_index table r.Q.column

let cmp_holds cmp c =
  match cmp with
  | Q.Eq -> c = 0
  | Q.Ne -> c <> 0
  | Q.Lt -> c < 0
  | Q.Le -> c <= 0
  | Q.Gt -> c > 0
  | Q.Ge -> c >= 0

let scan db query ~rel =
  let table = table_of db query rel in
  let layout = [ (rel, C.Table.arity table) ] in
  let selections = Q.selections_on query rel in
  let keep row =
    List.for_all
      (fun (s : Q.selection) ->
        let v = row.(C.Table.column_index table s.Q.on.Q.column) in
        cmp_holds s.Q.cmp (Value.compare v s.Q.value))
      selections
  in
  let rows =
    C.Datagen.rows_of db table.C.Table.name
    |> Array.to_list
    |> List.filter keep
  in
  Batch.create ~layout ~rows

(* key extractors: positions of each join predicate's columns on the
   outer and inner sides *)
let key_positions db query ~(outer : Batch.t) ~(inner : Batch.t) =
  let outer_rels = Bitset.of_list (List.map fst outer.Batch.layout) in
  let inner_rels = Bitset.of_list (List.map fst inner.Batch.layout) in
  let preds = Q.joins_between query outer_rels inner_rels in
  List.map
    (fun (p : Q.join_pred) ->
      if Bitset.mem p.Q.left.Q.rel outer_rels then
        ( column_pos db query outer.Batch.layout p.Q.left,
          column_pos db query inner.Batch.layout p.Q.right )
      else
        ( column_pos db query outer.Batch.layout p.Q.right,
          column_pos db query inner.Batch.layout p.Q.left ))
    preds

let key_of positions row = List.map (fun pos -> row.(pos)) positions

let combine_row a b = Array.append a b

let nested_loops keys outer_rows inner_rows =
  let opos = List.map fst keys and ipos = List.map snd keys in
  List.concat_map
    (fun orow ->
      let okey = key_of opos orow in
      List.filter_map
        (fun irow ->
          if List.for_all2 (fun a b -> Value.compare a b = 0) okey (key_of ipos irow)
          then Some (combine_row orow irow)
          else None)
        inner_rows)
    outer_rows

let hash_join keys outer_rows inner_rows =
  let opos = List.map fst keys and ipos = List.map snd keys in
  let table = Hashtbl.create (List.length inner_rows) in
  List.iter
    (fun irow -> Hashtbl.add table (key_of ipos irow) irow)
    inner_rows;
  List.concat_map
    (fun orow ->
      Hashtbl.find_all table (key_of opos orow)
      |> List.rev_map (fun irow -> combine_row orow irow))
    outer_rows

let compare_keys a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else go xs ys
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
  in
  go a b

let sort_merge keys outer_rows inner_rows =
  let opos = List.map fst keys and ipos = List.map snd keys in
  let outer =
    List.sort (fun a b -> compare_keys (key_of opos a) (key_of opos b)) outer_rows
  in
  let inner =
    List.sort (fun a b -> compare_keys (key_of ipos a) (key_of ipos b)) inner_rows
  in
  (* group inner rows by key, then merge *)
  let rec groups = function
    | [] -> []
    | row :: _ as rows ->
      let key = key_of ipos row in
      let same, rest =
        List.partition (fun r -> compare_keys (key_of ipos r) key = 0) rows
      in
      (key, same) :: groups rest
  in
  let inner_groups = groups inner in
  let rec merge outer groups acc =
    match (outer, groups) with
    | [], _ | _, [] -> acc
    | orow :: orest, (key, same) :: grest -> (
      let c = compare_keys (key_of opos orow) key in
      if c < 0 then merge orest groups acc
      else if c > 0 then merge outer grest acc
      else
        merge orest groups
          (List.fold_left (fun acc irow -> combine_row orow irow :: acc) acc same))
  in
  List.rev (merge outer inner_groups [])

let join db query ~method_ ~(outer : Batch.t) ~(inner : Batch.t) =
  let keys = key_positions db query ~outer ~inner in
  let rows =
    match (keys, method_) with
    | [], _ ->
      (* cartesian product *)
      List.concat_map
        (fun orow -> List.map (combine_row orow) inner.Batch.rows)
        outer.Batch.rows
    | _, P.Join_method.Nested_loops ->
      nested_loops keys outer.Batch.rows inner.Batch.rows
    | _, P.Join_method.Hash_join ->
      hash_join keys outer.Batch.rows inner.Batch.rows
    | _, P.Join_method.Sort_merge ->
      sort_merge keys outer.Batch.rows inner.Batch.rows
  in
  Batch.create
    ~layout:(Batch.concat_layouts outer.Batch.layout inner.Batch.layout)
    ~rows

let run db query tree =
  (match
     P.Join_tree.well_formed ~n_relations:(Q.n_relations query) tree
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: " ^ msg));
  let rec go = function
    | P.Join_tree.Access a -> scan db query ~rel:a.P.Join_tree.rel
    | P.Join_tree.Join j ->
      let outer = go j.P.Join_tree.outer and inner = go j.P.Join_tree.inner in
      join db query ~method_:j.P.Join_tree.method_ ~outer ~inner
  in
  go tree

let project db query (b : Batch.t) =
  match query.Q.projection with
  | [] -> b
  | cols ->
    let positions = List.map (column_pos db query b.Batch.layout) cols in
    let rows =
      List.map
        (fun row -> Array.of_list (List.map (fun p -> row.(p)) positions))
        b.Batch.rows
    in
    Batch.create ~layout:[ (-1, List.length positions) ] ~rows

let order_rows db query (b : Batch.t) =
  match query.Q.order_by with
  | [] -> b
  | cols ->
    let positions = List.map (column_pos db query b.Batch.layout) cols in
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | p :: rest ->
          let c = Value.compare a.(p) b.(p) in
          if c <> 0 then c else go rest
      in
      go positions
    in
    Batch.create ~layout:b.Batch.layout
      ~rows:(List.stable_sort compare_rows b.Batch.rows)

let finalize db query b = project db query (order_rows db query b)

let run_query db query tree = finalize db query (run db query tree)

let reference db query =
  let n = Q.n_relations query in
  let tree =
    List.fold_left
      (fun acc rel ->
        P.Join_tree.join P.Join_method.Nested_loops ~outer:acc
          ~inner:(P.Join_tree.access rel))
      (P.Join_tree.access 0)
      (List.init (n - 1) (fun i -> i + 1))
  in
  run_query db query tree
