(** Synthetic catalogs and query shapes for experiments.

    Shapes follow the standard join-graph taxonomy: chains (pipelines of
    joins), stars (fact table with dimensions — the decision-support shape
    the paper's introduction motivates), cycles, and cliques (every pair
    joinable, the worst case for the search algorithms and the shape under
    which the DP counters match Table 1 exactly). *)

type shape = Chain | Star | Cycle | Clique

val shape_to_string : shape -> string

type spec = {
  shape : shape;
  n : int;  (** number of relations, >= 1 *)
  base_card : float;  (** cardinality of the smallest relation *)
  card_skew : float;
      (** relation i has cardinality [base_card * (1 + card_skew)^i] *)
  distinct_fraction : float;  (** distinct values per join column, as a
      fraction of the relation cardinality (controls join selectivity) *)
  n_disks : int;  (** tables are placed round-robin on this many disks *)
  with_indexes : bool;  (** clustered index on each join column *)
}

val default_spec : shape -> int -> spec
(** [base_card = 1000.], [card_skew = 0.5], [distinct_fraction = 0.1],
    [n_disks = 4], [with_indexes = true]. *)

val generate : spec -> Parqo_catalog.Catalog.t * Query.t
(** A deterministic catalog ["t0" .. "t(n-1)"] and the query joining them
    in the requested shape. Join columns are named after the edge, e.g.
    ["j0_1"] joining t0 and t1. *)

val random :
  Parqo_util.Rng.t ->
  n:int ->
  ?n_disks:int ->
  ?with_indexes:bool ->
  unit ->
  Parqo_catalog.Catalog.t * Query.t
(** A random connected join graph over [n] relations (spanning tree plus
    random extra edges) with randomized cardinalities (100 .. 100_000) and
    selectivities; placements round-robin over [n_disks] (default 4). *)
