module C = Parqo_catalog
module Rng = Parqo_util.Rng

type shape = Chain | Star | Cycle | Clique

let shape_to_string = function
  | Chain -> "chain"
  | Star -> "star"
  | Cycle -> "cycle"
  | Clique -> "clique"

type spec = {
  shape : shape;
  n : int;
  base_card : float;
  card_skew : float;
  distinct_fraction : float;
  n_disks : int;
  with_indexes : bool;
}

let default_spec shape n =
  {
    shape;
    n;
    base_card = 1000.;
    card_skew = 0.5;
    distinct_fraction = 0.1;
    n_disks = 4;
    with_indexes = true;
  }

let edges_of_shape shape n =
  match shape with
  | Chain -> List.init (n - 1) (fun i -> (i, i + 1))
  | Star -> List.init (n - 1) (fun i -> (0, i + 1))
  | Cycle ->
    List.init (n - 1) (fun i -> (i, i + 1)) @ if n > 2 then [ (n - 1, 0) ] else []
  | Clique ->
    List.concat
      (List.init n (fun i -> List.init (n - 1 - i) (fun d -> (i, i + 1 + d))))

let join_col i j = Printf.sprintf "j%d_%d" (min i j) (max i j)

let build_catalog_and_query ~cards ~distinct_of ~edges ~n_disks ~with_indexes n =
  let columns_of rel =
    let joins =
      List.filter (fun (i, j) -> i = rel || j = rel) edges
      |> List.map (fun (i, j) ->
             let card = cards.(rel) in
             let distinct = Float.max 1. (distinct_of rel card) in
             ( join_col i j,
               C.Stats.column ~distinct ~min_v:0. ~max_v:(distinct -. 1.) () ))
    in
    let payload =
      ( "val",
        C.Stats.column
          ~distinct:(Float.max 1. (cards.(rel) /. 10.))
          ~min_v:0. ~max_v:1000. () )
    in
    ("pk", C.Stats.column ~distinct:cards.(rel) ~min_v:0. ~max_v:(cards.(rel) -. 1.) ())
    :: joins
    @ [ payload ]
  in
  let tables =
    List.init n (fun i ->
        C.Table.create
          ~name:(Printf.sprintf "t%d" i)
          ~columns:(columns_of i) ~cardinality:cards.(i)
          ~disks:[ i mod n_disks ] ())
  in
  let indexes =
    if not with_indexes then []
    else
      List.concat
        (List.init n (fun rel ->
             List.filter (fun (i, j) -> i = rel || j = rel) edges
             |> List.mapi (fun k (i, j) ->
                    C.Index.create
                      ~name:(Printf.sprintf "idx_t%d_%s" rel (join_col i j))
                      ~table:(Printf.sprintf "t%d" rel)
                      ~columns:[ join_col i j ]
                      ~clustered:(k = 0)
                      ~disk:(rel mod n_disks) ())))
  in
  let catalog = C.Catalog.create ~tables ~indexes in
  let joins =
    List.map
      (fun (i, j) ->
        {
          Query.left = { Query.rel = i; column = join_col i j };
          right = { Query.rel = j; column = join_col i j };
        })
      edges
  in
  let relations =
    List.init n (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "t%d" i))
  in
  (catalog, Query.create ~relations ~joins ())

let generate spec =
  if spec.n < 1 then invalid_arg "Query_gen.generate: n < 1";
  let cards =
    Array.init spec.n (fun i ->
        spec.base_card *. Parqo_util.Combin.powi (1. +. spec.card_skew) i)
  in
  let distinct_of _rel card = spec.distinct_fraction *. card in
  let edges = edges_of_shape spec.shape spec.n in
  build_catalog_and_query ~cards ~distinct_of:(fun r c -> distinct_of r c)
    ~edges ~n_disks:spec.n_disks ~with_indexes:spec.with_indexes spec.n

let random rng ~n ?(n_disks = 4) ?(with_indexes = true) () =
  if n < 1 then invalid_arg "Query_gen.random: n < 1";
  let cards =
    Array.init n (fun _ -> float_of_int (Rng.range rng 100 100_000))
  in
  (* spanning tree: each relation i >= 1 attaches to a random earlier one *)
  let tree_edges =
    List.init (max 0 (n - 1)) (fun i ->
        let j = i + 1 in
        (Rng.int rng j, j))
  in
  let extra_edges =
    if n < 3 then []
    else
      List.filter_map
        (fun _ ->
          let i = Rng.int rng n and j = Rng.int rng n in
          if i = j then None else Some (min i j, max i j))
        (List.init (Rng.int rng n) (fun i -> i))
  in
  let edges =
    List.sort_uniq compare
      (List.map (fun (i, j) -> (min i j, max i j)) (tree_edges @ extra_edges))
  in
  let distinct_of _rel card =
    Float.max 2. (card *. (0.01 +. Rng.float rng 0.5))
  in
  build_catalog_and_query ~cards ~distinct_of ~edges ~n_disks ~with_indexes n
