module C = Parqo_catalog

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Comma
  | Dot
  | Star
  | Op of string
  | Kw of string  (* SELECT FROM WHERE AND *)
  | Eof

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let keywords = [ "select"; "from"; "where"; "and"; "order"; "by" ]

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ',' then (emit Comma; incr i)
    else if c = '.' && not (!i + 1 < n && is_digit input.[!i + 1]) then (emit Dot; incr i)
    else if c = '*' then (emit Star; incr i)
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && input.[!j] <> '\'' do incr j done;
      if !j >= n then fail "unterminated string literal at offset %d" !i;
      emit (Str_lit (String.sub input (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1]) then begin
      let j = ref (!i + 1) in
      let seen_dot = ref false in
      while
        !j < n
        && (is_digit input.[!j] || (input.[!j] = '.' && not !seen_dot))
      do
        if input.[!j] = '.' then seen_dot := true;
        incr j
      done;
      let text = String.sub input !i (!j - !i) in
      if !seen_dot then emit (Float_lit (float_of_string text))
      else emit (Int_lit (int_of_string text));
      i := !j
    end
    else if c = '=' then (emit (Op "="); incr i)
    else if c = '<' || c = '>' || c = '!' then begin
      let two =
        if !i + 1 < n then String.sub input !i 2 else String.make 1 c
      in
      match two with
      | "<>" | "<=" | ">=" | "!=" -> (emit (Op two); i := !i + 2)
      | _ ->
        if c = '!' then fail "unexpected '!' at offset %d" !i;
        emit (Op (String.make 1 c));
        incr i
    end
    else if is_ident_char c && not (is_digit c) then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let word = String.sub input !i (!j - !i) in
      let lower = String.lowercase_ascii word in
      if List.mem lower keywords then emit (Kw lower) else emit (Ident word);
      i := !j
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  emit Eof;
  List.rev !tokens

type operand =
  | Col of string option * string  (* qualifier, column *)
  | Lit of C.Value.t

type raw_pred = { lhs : operand; op : string; rhs : operand }

(* recursive-descent parser over the token list *)
type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_kw st kw =
  match peek st with
  | Kw k when k = kw -> advance st
  | t ->
    fail "expected %s, got %s" (String.uppercase_ascii kw)
      (match t with
      | Ident s -> s
      | Kw s -> String.uppercase_ascii s
      | Eof -> "end of input"
      | _ -> "punctuation")

let parse_ident st =
  match peek st with
  | Ident s -> advance st; s
  | _ -> fail "expected identifier"

let parse_colref st =
  let first = parse_ident st in
  match peek st with
  | Dot ->
    advance st;
    let column = parse_ident st in
    Col (Some first, column)
  | _ -> Col (None, first)

let parse_operand st =
  match peek st with
  | Int_lit v -> advance st; Lit (C.Value.Int v)
  | Float_lit v -> advance st; Lit (C.Value.Flt v)
  | Str_lit v -> advance st; Lit (C.Value.Str v)
  | Ident _ -> parse_colref st
  | _ -> fail "expected column or literal"

let parse_pred st =
  let lhs = parse_operand st in
  let op =
    match peek st with
    | Op o -> advance st; o
    | _ -> fail "expected comparison operator"
  in
  let rhs = parse_operand st in
  { lhs; op; rhs }

let parse_projection st =
  match peek st with
  | Star -> advance st; []
  | _ ->
    let rec items acc =
      let c = parse_colref st in
      match peek st with
      | Comma -> advance st; items (c :: acc)
      | _ -> List.rev (c :: acc)
    in
    items []

let parse_relations st =
  let rec rels acc =
    let table = parse_ident st in
    let alias = match peek st with Ident a -> advance st; a | _ -> table in
    let acc = (alias, table) :: acc in
    match peek st with Comma -> advance st; rels acc | _ -> List.rev acc
  in
  rels []

let parse_preds st =
  let rec preds acc =
    let p = parse_pred st in
    match peek st with
    | Kw "and" -> advance st; preds (p :: acc)
    | _ -> List.rev (p :: acc)
  in
  preds []

let cmp_of_op = function
  | "=" -> Query.Eq
  | "<>" | "!=" -> Query.Ne
  | "<" -> Query.Lt
  | "<=" -> Query.Le
  | ">" -> Query.Gt
  | ">=" -> Query.Ge
  | o -> fail "unknown operator %s" o

let flip = function
  | Query.Eq -> Query.Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* Resolution: bind qualifiers to aliases, find unique owners of
   unqualified columns, classify predicates as joins or selections. *)
let resolve catalog relations projection preds order_by =
  let n = List.length relations in
  List.iter
    (fun (_, table) ->
      if C.Catalog.find_table catalog table = None then
        fail "unknown table %s" table)
    relations;
  let alias_id a =
    let rec find i = function
      | [] -> fail "unknown alias %s" a
      | (alias, _) :: rest -> if alias = a then i else find (i + 1) rest
    in
    find 0 relations
  in
  let table_of i = snd (List.nth relations i) in
  let resolve_col qualifier column =
    match qualifier with
    | Some a ->
      let rel = alias_id a in
      (match C.Catalog.find_table catalog (table_of rel) with
      | None -> fail "unknown table %s" (table_of rel)
      | Some t ->
        if not (C.Table.has_column t column) then
          fail "no column %s in table %s" column (table_of rel));
      { Query.rel; column }
    | None ->
      let owners =
        List.filteri (fun _ _ -> true) (List.init n (fun i -> i))
        |> List.filter (fun i ->
               match C.Catalog.find_table catalog (table_of i) with
               | None -> false
               | Some t -> C.Table.has_column t column)
      in
      (match owners with
      | [ rel ] -> { Query.rel; column }
      | [] -> fail "no relation has column %s" column
      | _ -> fail "ambiguous column %s" column)
  in
  let joins = ref [] and selections = ref [] in
  List.iter
    (fun { lhs; op; rhs } ->
      let cmp = cmp_of_op op in
      match (lhs, rhs) with
      | Col (q1, c1), Col (q2, c2) ->
        if cmp <> Query.Eq then fail "join predicates must be equalities";
        let left = resolve_col q1 c1 and right = resolve_col q2 c2 in
        if left.Query.rel = right.Query.rel then
          fail "predicate %s.%s = %s.%s relates a relation to itself" c1 c1 c2 c2;
        joins := { Query.left; right } :: !joins
      | Col (q, c), Lit v ->
        selections := { Query.on = resolve_col q c; cmp; value = v } :: !selections
      | Lit v, Col (q, c) ->
        selections :=
          { Query.on = resolve_col q c; cmp = flip cmp; value = v } :: !selections
      | Lit _, Lit _ -> fail "predicate between two literals")
    preds;
  let resolve_cols what cols =
    List.map
      (fun op ->
        match op with
        | Col (q, c) -> resolve_col q c
        | Lit _ -> fail "literal in %s" what)
      (List.map (fun (q, c) -> Col (q, c)) cols)
  in
  let projection = resolve_cols "projection" projection in
  let order_by = resolve_cols "order by" order_by in
  Query.create ~relations ~joins:(List.rev !joins)
    ~selections:(List.rev !selections) ~projection ~order_by ()

let parse ~catalog input =
  try
    let st = { toks = lex input } in
    expect_kw st "select";
    let projection = parse_projection st in
    expect_kw st "from";
    let relations = parse_relations st in
    let preds =
      match peek st with
      | Kw "where" -> advance st; parse_preds st
      | _ -> []
    in
    let order_by =
      match peek st with
      | Kw "order" ->
        advance st;
        expect_kw st "by";
        let rec cols acc =
          let c = parse_colref st in
          match peek st with
          | Comma -> advance st; cols (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        cols []
      | _ -> []
    in
    (match peek st with
    | Eof -> ()
    | _ -> fail "trailing input after query");
    let as_pair = function Col (q, c) -> (q, c) | Lit _ -> assert false in
    Ok
      (resolve catalog relations
         (List.map as_pair projection)
         preds
         (List.map as_pair order_by))
  with
  | Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let parse_exn ~catalog input =
  match parse ~catalog input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Parser.parse: " ^ msg)
