lib/query/query_gen.mli: Parqo_catalog Parqo_util Query
