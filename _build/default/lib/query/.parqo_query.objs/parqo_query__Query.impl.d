lib/query/query.ml: Array Buffer Format List Parqo_catalog Parqo_util Printf String
