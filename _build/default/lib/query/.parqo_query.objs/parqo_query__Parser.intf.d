lib/query/parser.mli: Parqo_catalog Query
