lib/query/query.mli: Format Parqo_catalog Parqo_util
