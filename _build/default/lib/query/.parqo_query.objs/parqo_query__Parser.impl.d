lib/query/parser.ml: List Parqo_catalog Printf Query String
