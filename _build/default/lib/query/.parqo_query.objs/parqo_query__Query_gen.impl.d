lib/query/query_gen.ml: Array Float List Parqo_catalog Parqo_util Printf Query
