(** A small SQL-ish front-end for SPJ queries.

    Grammar (case-insensitive keywords, {e braces} denote repetition and
    brackets optionality):
    {v
    query   ::= SELECT cols FROM rel {"," rel}
                [WHERE pred {AND pred}] [ORDER BY colref {"," colref}]
    cols    ::= "*" | colref {"," colref}
    rel     ::= ident [ident]             -- table with optional alias
    pred    ::= operand cmp operand
    operand ::= colref | int | float | 'string'
    colref  ::= ident "." ident | ident   -- unqualified resolved via catalog
    cmp     ::= "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
    v}

    A predicate relating two column references must be an equality (equi-
    join); one relating a column to a literal becomes a selection. *)

val parse : catalog:Parqo_catalog.Catalog.t -> string -> (Query.t, string) result
(** Parses and resolves a query against the catalog.  Errors carry a
    human-readable message with the offending position or name. *)

val parse_exn : catalog:Parqo_catalog.Catalog.t -> string -> Query.t
(** Raises [Invalid_argument] with the error message. *)
