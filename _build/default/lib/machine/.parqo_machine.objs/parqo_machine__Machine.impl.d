lib/machine/machine.ml: Array Format List Printf Resource
