lib/machine/machine.mli: Format Resource
