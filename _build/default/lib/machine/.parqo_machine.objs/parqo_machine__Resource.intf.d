lib/machine/resource.mli: Format
