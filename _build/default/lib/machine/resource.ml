type kind = Cpu | Disk | Network

type t = { id : int; kind : kind; name : string; node : int }

let kind_to_string = function
  | Cpu -> "cpu"
  | Disk -> "disk"
  | Network -> "network"

let pp ppf r =
  Format.fprintf ppf "%s(id=%d,node=%d)" r.name r.id r.node

let equal a b = a.id = b.id
