type mode = Concurrent | Serialized

type event = { at : float; what : string }

type outcome = {
  makespan : float;
  busy : float array;
  total_work : float;
  stage_start : (int * float) list;
  stage_finish : (int * float) list;
  trace : event list;
}

type stage_status = Pending | Running | Done

let eps = 1e-9

let run ?(mode = Concurrent) (g : Task_graph.t) =
  (match Task_graph.validate g with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Simulator.run: " ^ msg));
  let n_stages = Array.length g.Task_graph.stages in
  let nr = g.Task_graph.n_resources in
  match mode with
  | Serialized ->
    (* topological order, then run every task to completion alone *)
    let status = Array.make n_stages false in
    let order = ref [] in
    let rec visit id =
      if not status.(id) then begin
        status.(id) <- true;
        List.iter visit g.Task_graph.stages.(id).Task_graph.deps;
        order := id :: !order
      end
    in
    for id = 0 to n_stages - 1 do
      visit id
    done;
    let order = List.rev !order in
    let busy = Array.make nr 0. in
    let time = ref 0. in
    let trace = ref [] in
    let stage_finish = ref [] in
    let stage_start = ref [] in
    List.iter
      (fun id ->
        let stage = g.Task_graph.stages.(id) in
        stage_start := (id, !time) :: !stage_start;
        List.iter
          (fun (t : Task_graph.task) ->
            let w = Array.fold_left ( +. ) 0. t.Task_graph.demands in
            Array.iteri
              (fun r d -> busy.(r) <- busy.(r) +. d)
              t.Task_graph.demands;
            time := !time +. w;
            trace :=
              { at = !time; what = Printf.sprintf "task %s done" t.Task_graph.label }
              :: !trace)
          stage.Task_graph.tasks;
        stage_finish := (id, !time) :: !stage_finish)
      order;
    {
      makespan = !time;
      busy;
      total_work = Task_graph.total_work g;
      stage_start = List.rev !stage_start;
      stage_finish = List.rev !stage_finish;
      trace = List.rev !trace;
    }
  | Concurrent ->
    let status = Array.make n_stages Pending in
    let remaining_deps =
      Array.map (fun s -> ref (List.length s.Task_graph.deps)) g.Task_graph.stages
    in
    let dependents = Array.make n_stages [] in
    Array.iter
      (fun (s : Task_graph.stage) ->
        List.iter
          (fun d ->
            dependents.(d) <- s.Task_graph.stage_id :: dependents.(d))
          s.Task_graph.deps)
      g.Task_graph.stages;
    (* remaining work per task, keyed by (stage, index) *)
    let remaining =
      Array.map
        (fun (s : Task_graph.stage) ->
          Array.of_list
            (List.map
               (fun (t : Task_graph.task) -> Array.copy t.Task_graph.demands)
               s.Task_graph.tasks))
        g.Task_graph.stages
    in
    let labels =
      Array.map
        (fun (s : Task_graph.stage) ->
          Array.of_list
            (List.map (fun (t : Task_graph.task) -> t.Task_graph.label) s.Task_graph.tasks))
        g.Task_graph.stages
    in
    let busy = Array.make nr 0. in
    let time = ref 0. in
    let trace = ref [] in
    let stage_start = ref [] in
    let stage_finish = ref [] in
    let emit what = trace := { at = !time; what } :: !trace in
    let stage_done id =
      Array.for_all
        (fun demands -> Array.for_all (fun d -> d <= eps) demands)
        remaining.(id)
    in
    let rec start_ready () =
      Array.iteri
        (fun id s ->
          if status.(id) = Pending && !(remaining_deps.(id)) = 0 then begin
            status.(id) <- Running;
            stage_start := (id, !time) :: !stage_start;
            emit (Printf.sprintf "stage %d start" id);
            (* a stage with no work completes immediately *)
            if stage_done id then complete id
          end;
          ignore s)
        g.Task_graph.stages
    and complete id =
      status.(id) <- Done;
      stage_finish := (id, !time) :: !stage_finish;
      emit (Printf.sprintf "stage %d done" id);
      List.iter
        (fun dep -> decr remaining_deps.(dep))
        dependents.(id);
      start_ready ()
    in
    start_ready ();
    let all_done () = Array.for_all (fun s -> s = Done) status in
    let guard = ref 0 in
    let max_events = 1000 * (1 + n_stages) * (1 + nr) in
    while (not (all_done ())) && !guard < max_events do
      incr guard;
      (* demand counts per resource over running tasks *)
      let count = Array.make nr 0 in
      for id = 0 to n_stages - 1 do
        if status.(id) = Running then
          Array.iter
            (fun demands ->
              Array.iteri
                (fun r d -> if d > eps then count.(r) <- count.(r) + 1)
                demands)
            remaining.(id)
      done;
      (* time to next demand exhaustion *)
      let dt = ref infinity in
      for id = 0 to n_stages - 1 do
        if status.(id) = Running then
          Array.iter
            (fun demands ->
              Array.iteri
                (fun r d ->
                  if d > eps then
                    dt := Float.min !dt (d *. float_of_int count.(r)))
                demands)
            remaining.(id)
      done;
      if !dt = infinity then
        (* running stages but no demand: finish them *)
        Array.iteri
          (fun id s ->
            ignore s;
            if status.(id) = Running && stage_done id then complete id)
          g.Task_graph.stages
      else begin
        let dt = !dt in
        time := !time +. dt;
        for r = 0 to nr - 1 do
          if count.(r) > 0 then busy.(r) <- busy.(r) +. dt
        done;
        (* advance all running demands *)
        for id = 0 to n_stages - 1 do
          if status.(id) = Running then
            Array.iteri
              (fun ti demands ->
                Array.iteri
                  (fun r d ->
                    if d > eps then begin
                      let d' = d -. (dt /. float_of_int count.(r)) in
                      demands.(r) <- (if d' <= eps then 0. else d');
                      if d' <= eps && Array.for_all (fun x -> x <= eps) demands
                      then
                        emit
                          (Printf.sprintf "task %s done" labels.(id).(ti))
                    end)
                  demands)
              remaining.(id)
        done;
        (* completions *)
        Array.iteri
          (fun id s ->
            ignore s;
            if status.(id) = Running && stage_done id then complete id)
          g.Task_graph.stages
      end
    done;
    if not (all_done ()) then failwith "Simulator.run: did not converge";
    {
      makespan = !time;
      busy;
      total_work = Task_graph.total_work g;
      stage_start = List.rev !stage_start;
      stage_finish = List.rev !stage_finish;
      trace = List.rev !trace;
    }

let simulate_plan ?mode (env : Parqo_cost.Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.Parqo_cost.Env.expand_config
      env.Parqo_cost.Env.estimator tree
  in
  run ?mode (Task_graph.of_optree env optree)

let utilization o =
  if o.makespan <= 0. then 1.
  else o.total_work /. (o.makespan *. float_of_int (Array.length o.busy))

let timeline ?(width = 50) o =
  let span = Float.max 1e-9 o.makespan in
  let col t = int_of_float (float_of_int width *. t /. span) in
  let rows =
    List.filter_map
      (fun (id, start) ->
        match List.assoc_opt id o.stage_finish with
        | None -> None
        | Some finish -> Some (id, start, finish))
      o.stage_start
    |> List.sort (fun (_, s1, _) (_, s2, _) -> Float.compare s1 s2)
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (id, start, finish) ->
      let s = col start and f = max (col start + 1) (col finish) in
      let bar =
        String.concat ""
          [
            String.make s ' ';
            String.make (min (width - s) (f - s)) '=';
            String.make (max 0 (width - f)) ' ';
          ]
      in
      Buffer.add_string buf
        (Printf.sprintf "stage %-3d |%s| %.1f .. %.1f\n" id bar start finish))
    rows;
  Buffer.contents buf
