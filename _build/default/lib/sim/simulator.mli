(** A fluid discrete-event simulator of parallel plan execution.

    Resources are preemptable and time-shared (the paper's §5.2.1
    assumptions, realized as processor sharing): at any instant, each
    resource divides its unit capacity equally among the tasks of running
    stages that still demand it; a task progresses on all its resources
    concurrently and finishes when every demand is exhausted; a stage
    finishes when all its tasks do, releasing dependent stages.  The
    makespan is the simulated response time.

    [Serialized] mode executes stages and tasks one at a time — the
    sequential-execution baseline of the §5 desiderata, whose makespan is
    exactly the total work. *)

type mode = Concurrent | Serialized

type event = {
  at : float;
  what : string;  (** e.g. ["task sort done"], ["stage 3 start"] *)
}

type outcome = {
  makespan : float;
  busy : float array;
      (** per-resource busy time; equals per-resource demand totals *)
  total_work : float;
  stage_start : (int * float) list;  (** activation time per stage *)
  stage_finish : (int * float) list;  (** completion time per stage *)
  trace : event list;  (** chronological *)
}

val run : ?mode:mode -> Task_graph.t -> outcome
(** [mode] defaults to [Concurrent]. Raises [Invalid_argument] on an
    invalid graph. *)

val simulate_plan :
  ?mode:mode -> Parqo_cost.Env.t -> Parqo_plan.Join_tree.t -> outcome
(** Expand, lower and simulate a join tree in one call. *)

val utilization : outcome -> float
(** [total_work / (makespan * n_resources)] — the fraction of machine
    capacity used; in (0, 1]. *)

val timeline : ?width:int -> outcome -> string
(** An ASCII Gantt chart of stage lifetimes, one row per stage:
    {v
    stage 1  |   ======                  | 12.0 .. 48.3
    stage 0  |         ================  | 48.3 .. 130.0
    v}
    [width] (default 50) is the bar area in characters. *)
