lib/sim/simulator.ml: Array Buffer Float List Parqo_cost Parqo_optree Printf String Task_graph
