lib/sim/task_graph.mli: Parqo_cost Parqo_optree
