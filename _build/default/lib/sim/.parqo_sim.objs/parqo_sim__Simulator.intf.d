lib/sim/simulator.mli: Parqo_cost Parqo_plan Task_graph
