lib/sim/task_graph.ml: Array Hashtbl List Parqo_cost Parqo_machine Parqo_optree Parqo_util
