(** Textual round-tripping of annotated join trees.

    The format is exactly {!Join_tree.to_string}'s compact rendering:
    {v
    plan   := join | access
    join   := ("NL"|"SM"|"HJ") annots "(" plan ", " plan ")"
    access := "scan(rN)" annots | "idx(rN:index_name)" annots
    annots := ["/" degree] ["!"]        -- cloning, materialized output
    v}
    e.g. [HJ/4!(SM(scan(r0), idx(r1:t1_pk)), scan(r2))].  Index names are
    resolved against the catalog; relation numbers against the query. *)

val to_string : Join_tree.t -> string
(** Alias of {!Join_tree.to_string}. *)

val of_string :
  catalog:Parqo_catalog.Catalog.t ->
  query:Parqo_query.Query.t ->
  string ->
  (Join_tree.t, string) result
(** Parses the format above and validates well-formedness against the
    query (every relation exactly once, indexes exist and target the
    right tables). *)

val of_string_exn :
  catalog:Parqo_catalog.Catalog.t ->
  query:Parqo_query.Query.t ->
  string ->
  Join_tree.t
(** Raises [Invalid_argument] with the parse error. *)
