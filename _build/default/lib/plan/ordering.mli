(** Interesting orders — the physical property that makes the System R
    work metric violate the principle of optimality (§6.1.2), and one of
    the extra dimensions of a partial-order pruning metric (§6.3).

    An ordering is the sequence of columns by which a stream is sorted,
    most significant first.  The paper's [<=ordering] relation is
    "subsequence of": an ordering subsumes another if the latter is a
    prefix-compatible subsequence of the former. *)

type col = { rel : int; column : string }

type t = col list
(** [[]] means "no known order". *)

val none : t

val of_join_pred_side : Parqo_query.Query.column_ref -> col

val equal : t -> t -> bool

val subsumes : t -> t -> bool
(** [subsumes strong weak]: [weak] is a prefix of [strong], i.e. any
    consumer content with [weak] is content with [strong].  Every ordering
    subsumes [none]. *)

val satisfies : t -> t -> bool
(** [satisfies have want] = [subsumes have want]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
