module C = Parqo_catalog
module Q = Parqo_query.Query
module Bitset = Parqo_util.Bitset

type t = {
  catalog : C.Catalog.t;
  query : Q.t;
  tables : C.Table.t array;  (** by relation id *)
  base_cards : float array;  (** after selections *)
  card_memo : (int, float) Hashtbl.t;
}

let stats_of t (r : Q.column_ref) =
  C.Table.column_stats t.tables.(r.rel) r.column

let selection_selectivity_of tables (s : Q.selection) =
  let stats = C.Table.column_stats tables.(s.on.Q.rel) s.on.Q.column in
  let v = C.Value.to_float s.value in
  let sel =
    match s.cmp with
    | Q.Eq -> C.Stats.eq_fraction stats v
    | Q.Ne -> 1. -. C.Stats.eq_fraction stats v
    | Q.Le -> C.Stats.le_fraction stats v
    | Q.Lt -> C.Stats.le_fraction stats v -. C.Stats.eq_fraction stats v
    | Q.Gt -> 1. -. C.Stats.le_fraction stats v
    | Q.Ge -> 1. -. C.Stats.le_fraction stats v +. C.Stats.eq_fraction stats v
  in
  Float.min 1. (Float.max 0. sel)

let create catalog query =
  (match Q.validate catalog query with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Estimator.create: " ^ msg));
  let n = Q.n_relations query in
  let tables =
    Array.init n (fun i -> C.Catalog.table catalog (Q.table_name query i))
  in
  let base_cards =
    Array.init n (fun i ->
        let raw = tables.(i).C.Table.cardinality in
        let sel =
          List.fold_left
            (fun acc s -> acc *. selection_selectivity_of tables s)
            1.
            (Q.selections_on query i)
        in
        raw *. sel)
  in
  { catalog; query; tables; base_cards; card_memo = Hashtbl.create 64 }

let catalog t = t.catalog
let query t = t.query
let raw_card t rel = t.tables.(rel).C.Table.cardinality
let base_card t rel = t.base_cards.(rel)
let table_of t rel = t.tables.(rel)
let selection_selectivity t s = selection_selectivity_of t.tables s

let join_selectivity t (j : Q.join_pred) =
  C.Stats.join_selectivity (stats_of t j.left) (stats_of t j.right)

let card t set =
  let key = Bitset.to_int set in
  match Hashtbl.find_opt t.card_memo key with
  | Some c -> c
  | None ->
    let base =
      Bitset.fold (fun rel acc -> acc *. t.base_cards.(rel)) set 1.
    in
    let sel =
      List.fold_left
        (fun acc j -> acc *. join_selectivity t j)
        1.
        (Q.joins_within t.query set)
    in
    let c = base *. sel in
    Hashtbl.replace t.card_memo key c;
    c

let width t set =
  Bitset.fold
    (fun rel acc -> acc +. float_of_int (C.Table.arity t.tables.(rel)))
    set 0.
