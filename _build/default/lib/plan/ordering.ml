type col = { rel : int; column : string }
type t = col list

let none = []

let of_join_pred_side (r : Parqo_query.Query.column_ref) =
  { rel = r.Parqo_query.Query.rel; column = r.Parqo_query.Query.column }

let equal_col a b = a.rel = b.rel && String.equal a.column b.column

let equal a b = List.length a = List.length b && List.for_all2 equal_col a b

let rec subsumes strong weak =
  match (strong, weak) with
  | _, [] -> true
  | [], _ -> false
  | s :: srest, w :: wrest ->
    if equal_col s w then subsumes srest wrest else false

let satisfies have want = subsumes have want

let to_string t =
  match t with
  | [] -> "-"
  | _ ->
    String.concat ","
      (List.map (fun c -> Printf.sprintf "r%d.%s" c.rel c.column) t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
