lib/plan/join_tree.ml: Access_path Format Join_method List Parqo_catalog Parqo_util Printf
