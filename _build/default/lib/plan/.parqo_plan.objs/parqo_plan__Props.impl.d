lib/plan/props.ml: Access_path Join_method Join_tree List Ordering Parqo_query Parqo_util
