lib/plan/estimator.mli: Parqo_catalog Parqo_query Parqo_util
