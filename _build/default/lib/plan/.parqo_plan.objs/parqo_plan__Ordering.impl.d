lib/plan/ordering.ml: Format List Parqo_query Printf String
