lib/plan/plan_io.ml: Access_path Join_method Join_tree List Parqo_catalog Parqo_query Printf String
