lib/plan/ordering.mli: Format Parqo_query
