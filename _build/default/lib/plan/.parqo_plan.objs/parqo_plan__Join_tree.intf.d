lib/plan/join_tree.mli: Access_path Format Join_method Parqo_util
