lib/plan/access_path.mli: Format Ordering Parqo_catalog
