lib/plan/join_method.ml: Format
