lib/plan/access_path.ml: Format List Ordering Parqo_catalog Printf String
