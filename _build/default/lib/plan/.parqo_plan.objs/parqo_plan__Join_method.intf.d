lib/plan/join_method.mli: Format
