lib/plan/estimator.ml: Array Float Hashtbl List Parqo_catalog Parqo_query Parqo_util
