lib/plan/plan_io.mli: Join_tree Parqo_catalog Parqo_query
