lib/plan/props.mli: Join_tree Ordering Parqo_query
