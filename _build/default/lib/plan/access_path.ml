type t = Seq_scan | Index_scan of Parqo_catalog.Index.t

let to_string = function
  | Seq_scan -> "seq-scan"
  | Index_scan i -> Printf.sprintf "index-scan(%s)" i.Parqo_catalog.Index.name

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ordering ~rel = function
  | Seq_scan -> Ordering.none
  | Index_scan i ->
    List.map (fun column -> { Ordering.rel; column }) i.Parqo_catalog.Index.columns

let disk (table : Parqo_catalog.Table.t) = function
  | Seq_scan -> table.Parqo_catalog.Table.disks
  | Index_scan i -> [ i.Parqo_catalog.Index.disk ]

let equal a b =
  match (a, b) with
  | Seq_scan, Seq_scan -> true
  | Index_scan x, Index_scan y ->
    String.equal x.Parqo_catalog.Index.name y.Parqo_catalog.Index.name
  | Seq_scan, Index_scan _ | Index_scan _, Seq_scan -> false
