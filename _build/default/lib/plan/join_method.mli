(** The three join methods of the execution space (§4.2): each one
    macro-expands to a different operator subtree with different
    composition (pipelined / materialized) behavior. *)

type t =
  | Nested_loops  (** pipelined on the outer; optionally builds a
                      temporary index on the inner (an "inflection") *)
  | Sort_merge  (** explicit sorts (materialized) feeding a pipelined merge *)
  | Hash_join  (** materialized build on the inner, pipelined probe *)

val all : t list

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
