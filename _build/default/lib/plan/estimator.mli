(** System-R-style cardinality estimation.

    Estimates depend only on the *logical* subquery (the set of relations),
    never on the physical plan — this is exactly the "physical
    transparency" property of Theorem 1, and the tests rely on it. *)

type t

val create : Parqo_catalog.Catalog.t -> Parqo_query.Query.t -> t
(** Raises [Invalid_argument] when the query does not validate against the
    catalog. *)

val catalog : t -> Parqo_catalog.Catalog.t

val query : t -> Parqo_query.Query.t

val raw_card : t -> int -> float
(** Base-table cardinality of a relation (before selections). *)

val base_card : t -> int -> float
(** Cardinality after applying the query's selections on the relation. *)

val selection_selectivity : t -> Parqo_query.Query.selection -> float
(** In [0, 1]: histogram-based when statistics carry histograms, the
    classical uniform defaults otherwise. *)

val join_selectivity : t -> Parqo_query.Query.join_pred -> float
(** [1 / max(distinct left, distinct right)]. *)

val card : t -> Parqo_util.Bitset.t -> float
(** Output cardinality of joining the relation set: product of base
    cardinalities times the selectivities of all join predicates inside
    the set (memoized). The empty set has cardinality 1. *)

val width : t -> Parqo_util.Bitset.t -> float
(** Output tuple width in columns — a proxy for bytes per tuple used by
    the cost model's transfer and materialization terms. *)

val table_of : t -> int -> Parqo_catalog.Table.t
(** Catalog table backing a relation id. *)
