(** Access paths for base relations. *)

type t =
  | Seq_scan
  | Index_scan of Parqo_catalog.Index.t
      (** full scan through the index; clustered indexes deliver the
          index ordering at sequential cost, unclustered ones pay extra
          random I/O but still deliver the ordering *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val ordering : rel:int -> t -> Ordering.t
(** Output ordering of the path: the index key columns for an index scan,
    none for a sequential scan. *)

val disk : Parqo_catalog.Table.t -> t -> int list
(** Abstract disk indexes read by the path: the index's disk for an index
    scan, the table's placement otherwise. *)

val equal : t -> t -> bool
