type t = Nested_loops | Sort_merge | Hash_join

let all = [ Nested_loops; Sort_merge; Hash_join ]

let to_string = function
  | Nested_loops -> "nested-loops"
  | Sort_merge -> "sort-merge"
  | Hash_join -> "hash-join"

let of_string = function
  | "nested-loops" | "nl" -> Some Nested_loops
  | "sort-merge" | "sm" -> Some Sort_merge
  | "hash-join" | "hash" | "hj" -> Some Hash_join
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b
