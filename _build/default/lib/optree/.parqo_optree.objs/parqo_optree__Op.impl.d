lib/optree/op.ml: Format Hashtbl List Parqo_catalog Parqo_plan Printf String
