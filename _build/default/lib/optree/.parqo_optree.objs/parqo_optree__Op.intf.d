lib/optree/op.mli: Format Parqo_catalog Parqo_plan
