lib/optree/expand.ml: List Op Parqo_catalog Parqo_plan Parqo_query
