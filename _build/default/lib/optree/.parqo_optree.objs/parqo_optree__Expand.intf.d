lib/optree/expand.mli: Op Parqo_plan
