(** Macro-expansion of annotated join trees into operator trees (§4.2).

    Each join node expands by method:
    - sort-merge   → [merge(sort(outer), sort(inner))], sorts materialized;
      a sort is elided when its input already delivers the key ordering
      (the paper: "if R2 is already sorted then only one sort operation
      needs to be stated");
    - hash-join    → [probe(outer, build(inner))], build materialized;
    - nested-loops → [nested-loops(outer, inner)], optionally with the
      create-index inflection on the inner.

    Cloning (annotation 2) propagates partitioning requirements downward;
    exchange operators are inserted exactly where the producer's
    partitioning does not satisfy the consumer's (annotation 3, data
    redistribution).  The expansion of a given annotated join tree is
    unique, as the paper requires. *)

type config = {
  create_index_for_nl : bool;
      (** expand NL over an unindexed inner into
          [nested-loops(outer, create-index(inner))] *)
}

val default_config : config
(** [create_index_for_nl = false]. *)

val expand :
  ?config:config -> Parqo_plan.Estimator.t -> Parqo_plan.Join_tree.t -> Op.node
(** Raises [Invalid_argument] if the join tree is not well-formed for the
    estimator's query. *)
