lib/core/workloads.mli: Parqo_catalog Parqo_query
