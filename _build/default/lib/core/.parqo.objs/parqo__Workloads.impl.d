lib/core/workloads.ml: List Parqo_catalog Parqo_query Parqo_util Printf
