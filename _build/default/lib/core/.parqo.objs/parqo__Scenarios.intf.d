lib/core/scenarios.mli: Parqo_catalog Parqo_cost Parqo_machine Parqo_optree Parqo_query
