lib/core/scenarios.ml: Parqo_catalog Parqo_cost Parqo_machine Parqo_optree Parqo_plan Parqo_query Parqo_util
