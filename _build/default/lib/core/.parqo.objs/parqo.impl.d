lib/core/parqo.ml: Parqo_catalog Parqo_cost Parqo_exec Parqo_machine Parqo_optree Parqo_plan Parqo_query Parqo_search Parqo_sim Parqo_util Scenarios Session Workloads
