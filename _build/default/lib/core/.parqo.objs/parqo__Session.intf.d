lib/core/session.mli: Parqo_catalog Parqo_cost Parqo_exec Parqo_machine Parqo_query Parqo_search
