lib/core/session.ml: List Parqo_catalog Parqo_cost Parqo_exec Parqo_machine Parqo_query Parqo_search Printf String Unix Workloads
