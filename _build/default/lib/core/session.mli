(** A database session: a materialized database plus optimizer settings,
    accepting SQL strings end to end — parse, optimize for response time
    under the session's work budget, execute in parallel, verify against
    the sequential executor.  This is the "downstream user" surface; the
    REPL ([bin/parqo_repl.ml]) is a thin shell over it. *)

type t

type answer = {
  query : Parqo_query.Query.t;
  plan : Parqo_cost.Costmodel.eval;  (** the chosen plan, fully costed *)
  work_optimal : Parqo_cost.Costmodel.eval option;
      (** the traditional optimizer's plan, for comparison *)
  batch : Parqo_exec.Batch.t;  (** the result rows *)
  verified : bool;  (** parallel execution matched the sequential one *)
  elapsed : float;  (** wall-clock seconds spent end to end *)
}

val create :
  ?machine:Parqo_machine.Machine.t ->
  ?bound:Parqo_search.Bounds.t ->
  db:Parqo_catalog.Datagen.database ->
  unit ->
  t
(** [machine] defaults to a 4-node shared-nothing configuration; [bound]
    to a 2x throughput-degradation budget. *)

val of_workload : ?seed:int -> string -> (t, string) result
(** ["tpch"], ["portfolio"], ["university"] or ["chain"]; [seed]
    defaults to 7. *)

val set_bound : t -> Parqo_search.Bounds.t -> unit

val bound : t -> Parqo_search.Bounds.t

val machine : t -> Parqo_machine.Machine.t

val catalog : t -> Parqo_catalog.Catalog.t

val tables : t -> string list

val sql : t -> string -> (answer, string) result
(** The full pipeline on one SQL string. Errors are parse/validation
    messages. *)

val explain : t -> string -> (string, string) result
(** Parse and optimize only; the rendered operator-tree table. *)
