module Tdesc = Parqo_cost.Tdesc
module Rvec = Parqo_cost.Rvec
module Descriptor = Parqo_cost.Descriptor
module C = Parqo_catalog
module Q = Parqo_query.Query
module M = Parqo_machine.Machine

let example1 () =
  let catalog, query =
    Parqo_query.Query_gen.generate
      (Parqo_query.Query_gen.default_spec Parqo_query.Query_gen.Chain 3)
  in
  let machine = M.shared_nothing ~nodes:4 () in
  let env = Parqo_cost.Env.create ~machine ~catalog ~query () in
  let tree =
    Parqo_plan.Join_tree.join Parqo_plan.Join_method.Nested_loops
      ~outer:
        (Parqo_plan.Join_tree.join Parqo_plan.Join_method.Sort_merge
           ~outer:(Parqo_plan.Join_tree.access 0)
           ~inner:(Parqo_plan.Join_tree.access 1))
      ~inner:(Parqo_plan.Join_tree.access 2)
  in
  (env, Parqo_optree.Expand.expand env.Parqo_cost.Env.estimator tree)

type example2_row = {
  operator : string;
  base : Tdesc.t;
  computed : Tdesc.t;
}

let example2 () =
  let d tf tl = Tdesc.make ~tf ~tl in
  let scan_r1 = d 0. 1. in
  let scan_r2 = d 0. 3. in
  let scan_r3 = d 0. 2. in
  let sort1_base = d 5. 5. in
  let sort2_base = d 10. 10. in
  let merge_base = d 0. 2. in
  let nloops_base = d 0. 2. in
  let sort1 = Tdesc.sync (Tdesc.pipe scan_r1 sort1_base) in
  let sort2 = Tdesc.sync (Tdesc.pipe scan_r2 sort2_base) in
  let merge = Tdesc.tree sort1 sort2 merge_base in
  let nloops = Tdesc.tree merge scan_r3 nloops_base in
  [
    { operator = "scan R1"; base = scan_r1; computed = scan_r1 };
    { operator = "scan R2"; base = scan_r2; computed = scan_r2 };
    { operator = "scan R3"; base = scan_r3; computed = scan_r3 };
    { operator = "sort1"; base = sort1_base; computed = sort1 };
    { operator = "sort2"; base = sort2_base; computed = sort2 };
    { operator = "merge"; base = merge_base; computed = merge };
    { operator = "n.loops"; base = nloops_base; computed = nloops };
  ]

type example3 = {
  rt_p1 : float;
  rt_p2 : float;
  rt_join_p1 : float;
  rt_join_p2 : float;
}

let example3 () =
  (* two resources: disk1 (coord 0) and disk2 (coord 1); delta disabled to
     follow the paper's arithmetic exactly *)
  let params = Descriptor.params 0. in
  let vec t w1 w2 = Rvec.make ~time:t ~work:(Parqo_util.Vecf.of_array [| w1; w2 |]) in
  let p1 = Descriptor.atomic (vec 20. 20. 0.) in
  let p2 = Descriptor.atomic (vec 25. 0. 25.) in
  let join = Descriptor.atomic (vec 40. 40. 0.) in
  let nl p = Descriptor.pipe params p join in
  {
    rt_p1 = Descriptor.response_time p1;
    rt_p2 = Descriptor.response_time p2;
    rt_join_p1 = Descriptor.response_time (nl p1);
    rt_join_p2 = Descriptor.response_time (nl p2);
  }

let example3_violates_po () =
  let e = example3 () in
  e.rt_p1 < e.rt_p2 && e.rt_join_p1 > e.rt_join_p2

let ctr_ci () =
  let col distinct lo hi = C.Stats.column ~distinct ~min_v:lo ~max_v:hi () in
  let ctr =
    C.Table.create ~name:"ctr"
      ~columns:
        [ ("course", col 500. 0. 499.); ("time", col 40. 0. 39.); ("room", col 60. 0. 59.) ]
      ~cardinality:2000. ~disks:[ 0 ] ()
  in
  let ci =
    C.Table.create ~name:"ci"
      ~columns:[ ("course", col 500. 0. 499.); ("instructor", col 300. 0. 299.) ]
      ~cardinality:1000. ~disks:[ 0 ] ()
  in
  let indexes =
    [
      C.Index.create ~name:"i_ct" ~table:"ctr" ~columns:[ "course"; "time" ]
        ~clustered:true ~disk:0 ();
      C.Index.create ~name:"i_cr" ~table:"ctr" ~columns:[ "course"; "room" ]
        ~clustered:false ~disk:1 ();
      C.Index.create ~name:"i_c" ~table:"ci" ~columns:[ "course" ] ~disk:0 ();
    ]
  in
  let catalog = C.Catalog.create ~tables:[ ctr; ci ] ~indexes in
  let query =
    Q.create
      ~relations:[ ("ctr", "ctr"); ("ci", "ci") ]
      ~joins:
        [
          {
            Q.left = { Q.rel = 0; column = "course" };
            right = { Q.rel = 1; column = "course" };
          };
        ]
      ~projection:[ { Q.rel = 0; column = "course" } ]
      ()
  in
  (catalog, query, M.two_disks ())
