(** The paper's worked examples, reproduced executably.

    Example 2 exercises the contention-free time-descriptor calculus on
    the paper's hypothetical numbers; Example 3 exhibits the violation of
    the principle of optimality by response time, both on the paper's raw
    resource vectors and end-to-end through the full cost model on the
    CTR/CI database. *)

val example1 : unit -> Parqo_cost.Env.t * Parqo_optree.Op.node
(** Example 1: the join tree [nested-loops(sort-merge(R1, R2), R3)] macro-
    expanded to its operator tree
    [nested-loops(merge(sort1(scan R1), sort2(scan R2)), scan R3)] over a
    three-relation catalog — with the paper's annotations: scans and merge
    pipelined, sorts materialized.  Returns the environment and the
    expanded tree for inspection. *)

(** One row of Example 2's table: the operator, its standalone descriptor,
    and the computed subtree descriptor. *)
type example2_row = {
  operator : string;
  base : Parqo_cost.Tdesc.t;
  computed : Parqo_cost.Tdesc.t;
}

val example2 : unit -> example2_row list
(** Recomputes the whole table of Example 2 with the §5.1 calculus.
    Expected: sort1 (6,6), sort2 (13,13), merge (13,15), n.loops (13,15). *)

(** Example 3's four response times, computed with the resource-vector
    calculus on the paper's numbers over the two-disk machine. *)
type example3 = {
  rt_p1 : float;  (** 20: index scan of I_CT alone *)
  rt_p2 : float;  (** 25: index scan of I_CR alone *)
  rt_join_p1 : float;  (** 60: NL(p1, indexScan(I_C)) — contention on disk 1 *)
  rt_join_p2 : float;  (** 40: NL(p2, indexScan(I_C)) — disks overlap *)
}

val example3 : unit -> example3

val example3_violates_po : unit -> bool
(** [rt_p1 < rt_p2] yet [rt_join_p1 > rt_join_p2] — the violation. *)

val ctr_ci : unit ->
  Parqo_catalog.Catalog.t * Parqo_query.Query.t * Parqo_machine.Machine.t
(** The CTR/CI database of Example 3 as a real catalog: CTR(course, time,
    room) with clustered index I_CT on disk 0 and unclustered I_CR on disk
    1, CI(course, instructor) with index I_C on disk 0; query
    [SELECT ctr.course FROM ctr, ci WHERE ctr.course = ci.course]; a
    machine with two disks as the significant resources. *)
