module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Env = Parqo_cost.Env
module P = Parqo_plan

type result = {
  best : Cm.eval option;
  stats : Search_stats.t;
  level_sizes : int array;
}

let best_of objective candidates current =
  List.fold_left
    (fun acc cand ->
      match acc with
      | None -> Some cand
      | Some b -> if objective cand < objective b then Some cand else Some b)
    current candidates

let optimize ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.work) (env : Env.t) =
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let memo : Cm.eval option array = Array.make (1 lsl n) None in
  let level_sizes = Array.make (n + 1) 0 in
  let eval_all trees =
    Search_stats.generated stats (List.length trees);
    List.map (Cm.evaluate env) trees
  in
  (* accessPlan *)
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let candidates = eval_all (Space.access_plans env config rel) in
    memo.(Bitset.to_int (Bitset.singleton rel)) <- best_of objective candidates None
  done;
  level_sizes.(1) <- n;
  (* increasingly larger subsets *)
  for size = 2 to n do
    let subsets = Bitset.subsets_of_size n ~size in
    List.iter
      (fun s ->
        let extend ~require_connection best =
          Bitset.fold
            (fun j best ->
              let s_j = Bitset.remove j s in
              match memo.(Bitset.to_int s_j) with
              | None -> best
              | Some p ->
                if
                  require_connection
                  && not (Space.connects env s_j (Bitset.singleton j))
                then best
                else begin
                  Search_stats.considered stats 1;
                  let candidates =
                    eval_all
                      (Space.join_candidates env config ~outer:p.Cm.tree ~rel:j)
                  in
                  best_of objective candidates best
                end)
            s best
        in
        let best =
          match extend ~require_connection:true None with
          | Some _ as b -> b
          | None -> extend ~require_connection:false None
        in
        (match best with
        | Some _ -> level_sizes.(size) <- level_sizes.(size) + 1
        | None -> ());
        memo.(Bitset.to_int s) <- best)
      subsets;
    Search_stats.observe_stored stats level_sizes.(size)
  done;
  Search_stats.observe_stored stats level_sizes.(1);
  {
    best = (if n = 0 then None else memo.(Bitset.to_int (Bitset.full n)));
    stats;
    level_sizes;
  }
