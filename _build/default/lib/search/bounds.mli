(** Work bounds (§2): the two ways a system administrator limits the
    extra work traded for response time, implemented as search pruning
    (§6.4) plus a final feasibility check.

    Both bounds are expressed relative to the work-optimal plan's work
    [W_o] and response time [T_o]:
    - [Throughput_degradation k]: admit plans with [W_p <= k * W_o];
    - [Cost_benefit k]: every unit of response-time improvement may buy
      at most [k] units of extra work, [W_p - W_o <= k * (T_o - T_p)].
      (The paper prints the inequality inverted; see DESIGN.md.)

    Because total work only grows when a partial plan is extended, each
    bound yields an admissible work cap on partial plans; the cost–benefit
    bound additionally needs an exact check on complete plans. *)

type t =
  | Unbounded
  | Throughput_degradation of float  (** factor [k >= 1] *)
  | Cost_benefit of float  (** ratio [k >= 0] *)

val partial_work_cap : t -> work_opt:float -> rt_opt:float -> float option
(** Largest total work any (partial or complete) admissible plan may
    have: [k * W_o] resp. [W_o + k * T_o]; [None] when unbounded. *)

val admits : t -> work_opt:float -> rt_opt:float -> Parqo_cost.Costmodel.eval -> bool
(** Exact feasibility of a complete plan. The work-optimal plan itself is
    always admissible. *)

val to_string : t -> string
