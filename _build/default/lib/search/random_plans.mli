(** Random plan generation and local transformations.

    These power the non-exhaustive search algorithms of {!Greedy} (the
    paper's §7 notes that for bushy spaces at ten-plus relations
    "non-exhaustive search algorithms may be imperative") and the
    randomized fixtures of the test suite. All transformations preserve
    well-formedness: the relation set of the tree never changes. *)

val random_tree :
  ?bushy:bool ->
  Parqo_util.Rng.t ->
  Parqo_cost.Env.t ->
  Space.config ->
  Parqo_plan.Join_tree.t
(** A uniformly-shaped random join tree over all the query's relations
    with annotations drawn from the config (methods, access paths, clone
    degrees, materialization). [bushy] defaults to true; false forces a
    left-deep shape. *)

val random_move :
  Parqo_util.Rng.t ->
  Parqo_cost.Env.t ->
  Space.config ->
  Parqo_plan.Join_tree.t ->
  Parqo_plan.Join_tree.t
(** One random neighbor: either swap the relations of two leaves (access
    paths are re-drawn), re-annotate a random join (method, clone degree,
    materialization), or apply an associativity rotation at a random
    internal node.  Returns a well-formed tree; may return the input when
    no move applies (single-relation trees). *)

val leaf_count : Parqo_plan.Join_tree.t -> int
