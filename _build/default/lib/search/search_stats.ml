type t = {
  mutable considered : int;
  mutable generated : int;
  mutable stored_peak : int;
  mutable cover_max : int;
}

let create () = { considered = 0; generated = 0; stored_peak = 0; cover_max = 0 }
let considered t n = t.considered <- t.considered + n
let generated t n = t.generated <- t.generated + n
let observe_stored t n = if n > t.stored_peak then t.stored_peak <- n
let observe_cover t n = if n > t.cover_max then t.cover_max <- n

let pp ppf t =
  Format.fprintf ppf "considered=%d generated=%d stored-peak=%d cover-max=%d"
    t.considered t.generated t.stored_peak t.cover_max
