module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  n_plans : int;
  stats : Search_stats.t;
}

let better objective a b =
  match a with
  | None -> Some b
  | Some a' -> if objective b < objective a' then Some b else a

let leftdeep ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.response_time) ?(on_plan = fun _ -> ())
    (env : Env.t) =
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let best = ref None in
  let n_plans = ref 0 in
  let full = Bitset.full n in
  let complete e =
    incr n_plans;
    on_plan e;
    best := better objective !best e
  in
  let rec extend covered tree =
    if Bitset.equal covered full then complete (Cm.evaluate env tree)
    else
      for rel = 0 to n - 1 do
        if not (Bitset.mem rel covered) then begin
          Search_stats.considered stats 1;
          let candidates = Space.join_candidates env config ~outer:tree ~rel in
          Search_stats.generated stats (List.length candidates);
          List.iter (extend (Bitset.add rel covered)) candidates
        end
      done
  in
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let starts = Space.access_plans env config rel in
    Search_stats.generated stats (List.length starts);
    List.iter (extend (Bitset.singleton rel)) starts
  done;
  { best = !best; n_plans = !n_plans; stats }

let bushy ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.response_time) ?(on_plan = fun _ -> ())
    (env : Env.t) =
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  (* all plans for a subset; no memoization — this is the brute force *)
  let rec plans_for s =
    if Bitset.cardinal s = 1 then begin
      Search_stats.considered stats 1;
      let starts = Space.access_plans env config (Bitset.choose s) in
      Search_stats.generated stats (List.length starts);
      starts
    end
    else
      List.concat_map
        (fun s1 ->
          let s2 = Bitset.diff s s1 in
          Search_stats.considered stats 1;
          List.concat_map
            (fun outer ->
              List.concat_map
                (fun inner ->
                  let cs = Space.combine_candidates env config ~outer ~inner in
                  Search_stats.generated stats (List.length cs);
                  cs)
                (plans_for s2))
            (plans_for s1))
        (Bitset.proper_nonempty_subsets s)
  in
  let all = if n = 0 then [] else plans_for (Bitset.full n) in
  let best = ref None in
  let n_plans = ref 0 in
  List.iter
    (fun tree ->
      let e = Cm.evaluate env tree in
      incr n_plans;
      on_plan e;
      best := better objective !best e)
    all;
  { best = !best; n_plans = !n_plans; stats }
