module Cm = Parqo_cost.Costmodel
module Bitset = Parqo_util.Bitset
module Env = Parqo_cost.Env

type result = {
  best : Cm.eval option;
  cover : Cm.eval list;
  stats : Search_stats.t;
  level_sizes : int array;
}

(* The common skeleton: per subset an abstract mutable accumulator [cell]
   collects candidate plans; splits are ordered pairs (S1, S2) of
   non-empty disjoint parts, so both operand orders are explored. *)
let run ~config ~make_cell ~add ~contents (env : Env.t) =
  let n = Env.n_relations env in
  let stats = Search_stats.create () in
  let memo = Array.make (1 lsl n) [] in
  let level_sizes = Array.make (n + 1) 0 in
  for rel = 0 to n - 1 do
    Search_stats.considered stats 1;
    let cell = make_cell () in
    let trees = Space.access_plans env config rel in
    Search_stats.generated stats (List.length trees);
    List.iter (fun tree -> add stats cell (Cm.evaluate env tree)) trees;
    memo.(Bitset.to_int (Bitset.singleton rel)) <- contents cell
  done;
  level_sizes.(1) <-
    List.fold_left ( + ) 0
      (List.init n (fun r -> List.length memo.(Bitset.to_int (Bitset.singleton r))));
  for size = 2 to n do
    let subsets = Bitset.subsets_of_size n ~size in
    List.iter
      (fun s ->
        let cell = make_cell () in
        let filled = ref false in
        let try_splits ~require_connection =
          List.iter
            (fun s1 ->
              let s2 = Bitset.diff s s1 in
              if (not require_connection) || Space.connects env s1 s2 then begin
                Search_stats.considered stats 1;
                List.iter
                  (fun p1 ->
                    List.iter
                      (fun p2 ->
                        List.iter
                          (fun tree ->
                            Search_stats.generated stats 1;
                            filled := true;
                            add stats cell (Cm.evaluate env tree))
                          (Space.combine_candidates env config
                             ~outer:p1.Cm.tree ~inner:p2.Cm.tree))
                      memo.(Bitset.to_int s2))
                  memo.(Bitset.to_int s1)
              end)
            (Bitset.proper_nonempty_subsets s)
        in
        try_splits ~require_connection:true;
        if not !filled then try_splits ~require_connection:false;
        let plans = contents cell in
        level_sizes.(size) <- level_sizes.(size) + List.length plans;
        memo.(Bitset.to_int s) <- plans)
      subsets;
    Search_stats.observe_stored stats level_sizes.(size)
  done;
  Search_stats.observe_stored stats level_sizes.(1);
  let final = if n = 0 then [] else memo.(Bitset.to_int (Bitset.full n)) in
  (final, stats, level_sizes)

let argmin rank plans =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some b -> if rank e < rank b then Some e else Some b)
    None plans

let optimize_scalar ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.work) (env : Env.t) =
  let make_cell () = ref None in
  let add _stats cell e =
    match !cell with
    | None -> cell := Some e
    | Some b -> if objective e < objective b then cell := Some e
  in
  let contents cell = Option.to_list !cell in
  let final, stats, level_sizes = run ~config ~make_cell ~add ~contents env in
  { best = argmin objective final; cover = final; stats; level_sizes }

let optimize_po ?(config = Space.default_config)
    ?(rank = fun (e : Cm.eval) -> e.Cm.response_time) ?work_cap
    ?(final_filter = fun _ -> true) ?max_cover ~metric (env : Env.t) =
  let dominates = Metric.dominates metric in
  let admissible e =
    match work_cap with None -> true | Some cap -> e.Cm.work <= cap +. 1e-9
  in
  let make_cell () = Cover.create ~dominates in
  let add stats cover e =
    if admissible e then begin
      ignore (Cover.add cover e);
      Search_stats.observe_cover stats (Cover.size cover);
      match max_cover with
      | None -> ()
      | Some keep ->
        (* amortize trimming: allow 2x overshoot before cutting back *)
        if Cover.size cover > 2 * keep then Cover.trim cover ~keep ~rank
    end
  in
  let contents cover =
    (match max_cover with
    | None -> ()
    | Some keep -> Cover.trim cover ~keep ~rank);
    Cover.elements cover
  in
  let final, stats, level_sizes = run ~config ~make_cell ~add ~contents env in
  { best = argmin rank (List.filter final_filter final); cover = final; stats; level_sizes }
