(** Dynamic programming over bushy join trees (§6.4, [GHK92]).

    Bushy trees expose more independent parallelism — two composite
    subtrees can execute concurrently — at an O(3^n) search cost.  Both
    the scalar-objective variant (the bushy analogue of Figure 1) and the
    partial-order variant (of Figure 2) enumerate, for every relation
    subset, every ordered split into two non-empty disjoint parts. *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
  cover : Parqo_cost.Costmodel.eval list;  (** singleton for the scalar variant *)
  stats : Search_stats.t;
  level_sizes : int array;
}

val optimize_scalar :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  Parqo_cost.Env.t ->
  result
(** Bushy DP with a totally-ordered objective (default: work). *)

val optimize_po :
  ?config:Space.config ->
  ?rank:(Parqo_cost.Costmodel.eval -> float) ->
  ?work_cap:float ->
  ?final_filter:(Parqo_cost.Costmodel.eval -> bool) ->
  ?max_cover:int ->
  metric:Metric.t ->
  Parqo_cost.Env.t ->
  result
(** Bushy partial-order DP (default rank: response time); [max_cover]
    beam-bounds cover sets as in {!Podp.optimize}. *)
