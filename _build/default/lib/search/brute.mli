(** Exhaustive enumeration — the "brute force" rows of Table 1 and the
    ground truth the DP variants are verified against in the tests.

    Enumeration covers every join order in the requested tree shape and
    every annotation combination the space config generates; use
    {!Space.minimal_config} to count pure join orders (n! left-deep,
    (2(n-1))!/(n-1)! bushy). *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
  n_plans : int;  (** complete plans enumerated *)
  stats : Search_stats.t;
}

val leftdeep :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  ?on_plan:(Parqo_cost.Costmodel.eval -> unit) ->
  Parqo_cost.Env.t ->
  result
(** Enumerates all left-deep plans (cartesian joins included, so counts
    are shape-independent). [objective] defaults to response time.
    Exponential: intended for n <= 8 with the minimal config. *)

val bushy :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  ?on_plan:(Parqo_cost.Costmodel.eval -> unit) ->
  Parqo_cost.Env.t ->
  result
(** Enumerates all bushy plans. Intended for n <= 5. *)
