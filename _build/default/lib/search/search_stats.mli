(** Instrumentation of the search algorithms, measured in the units of the
    paper's Table 1: "time complexity" is the number of plans considered
    (accessPlan/joinPlan invocations), "space complexity" the maximum
    number of plans stored. *)

type t = {
  mutable considered : int;
      (** accessPlan / joinPlan invocations (Table 1 time unit) *)
  mutable generated : int;
      (** candidate plans actually costed (our joinPlan returns a
          candidate set; this is the constant-factor-finer count) *)
  mutable stored_peak : int;
      (** maximum plans simultaneously retained across the memo table *)
  mutable cover_max : int;
      (** largest cover set encountered (the paper's [k], bounded by
          [2^l] under Theorem 3) *)
}

val create : unit -> t

val considered : t -> int -> unit
(** Add to the considered counter. *)

val generated : t -> int -> unit

val observe_stored : t -> int -> unit
(** Record a current storage level; keeps the peak. *)

val observe_cover : t -> int -> unit

val pp : Format.formatter -> t -> unit
