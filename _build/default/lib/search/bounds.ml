module Cm = Parqo_cost.Costmodel

type t =
  | Unbounded
  | Throughput_degradation of float
  | Cost_benefit of float

let partial_work_cap t ~work_opt ~rt_opt =
  match t with
  | Unbounded -> None
  | Throughput_degradation k -> Some (k *. work_opt)
  | Cost_benefit k -> Some (work_opt +. (k *. rt_opt))

let admits t ~work_opt ~rt_opt (e : Cm.eval) =
  match t with
  | Unbounded -> true
  | Throughput_degradation k -> e.Cm.work <= (k *. work_opt) +. 1e-9
  | Cost_benefit k ->
    e.Cm.work <= work_opt +. 1e-9
    || e.Cm.work -. work_opt <= (k *. Float.max 0. (rt_opt -. e.Cm.response_time)) +. 1e-9

let to_string = function
  | Unbounded -> "unbounded"
  | Throughput_degradation k -> Printf.sprintf "throughput-degradation(%.2f)" k
  | Cost_benefit k -> Printf.sprintf "cost-benefit(%.2f)" k
