(** Figure 1: the System R dynamic-programming algorithm over left-deep
    join trees, with a scalar (totally ordered) objective.

    With the default [objective = work] this is the traditional work
    optimizer.  Passing [objective = response time] demonstrates the
    paper's point (§6.1.3): the algorithm runs, but its single-plan
    memoization is unsound for response time, and the experiments compare
    its output against the partial-order DP and exhaustive search. *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
      (** [None] only for the empty query *)
  stats : Search_stats.t;
  level_sizes : int array;
      (** plans stored per subset cardinality (index 0 unused) *)
}

val optimize :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  Parqo_cost.Env.t ->
  result
(** [config] defaults to {!Space.default_config}, [objective] to total
    work.  Cartesian products are considered only for subsets that have
    no connected extension. *)
