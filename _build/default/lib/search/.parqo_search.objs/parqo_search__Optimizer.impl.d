lib/search/optimizer.ml: Bounds Bushy Dp List Logs Metric Option Parqo_cost Parqo_machine Parqo_plan Podp Search_stats Space
