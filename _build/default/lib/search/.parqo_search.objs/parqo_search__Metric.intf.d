lib/search/metric.mli: Format Parqo_cost Parqo_machine
