lib/search/search_stats.ml: Format
