lib/search/twophase.mli: Parqo_cost Search_stats Space
