lib/search/random_plans.ml: Array List Parqo_cost Parqo_plan Parqo_util Space
