lib/search/bounds.mli: Parqo_cost
