lib/search/space.ml: List Parqo_catalog Parqo_cost Parqo_machine Parqo_plan Parqo_query Parqo_util
