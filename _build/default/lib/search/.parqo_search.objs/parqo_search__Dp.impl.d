lib/search/dp.ml: Array List Parqo_cost Parqo_plan Parqo_util Search_stats Space
