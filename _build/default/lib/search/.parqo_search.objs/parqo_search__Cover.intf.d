lib/search/cover.mli:
