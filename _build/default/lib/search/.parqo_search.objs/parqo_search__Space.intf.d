lib/search/space.mli: Parqo_cost Parqo_machine Parqo_plan Parqo_util
