lib/search/optimizer.mli: Bounds Metric Parqo_cost Search_stats Space
