lib/search/greedy.mli: Parqo_cost Parqo_util Space
