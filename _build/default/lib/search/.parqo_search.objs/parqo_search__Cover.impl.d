lib/search/cover.ml: Float List
