lib/search/search_stats.mli: Format
