lib/search/brute.mli: Parqo_cost Search_stats Space
