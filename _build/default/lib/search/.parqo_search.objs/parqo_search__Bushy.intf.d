lib/search/bushy.mli: Metric Parqo_cost Search_stats Space
