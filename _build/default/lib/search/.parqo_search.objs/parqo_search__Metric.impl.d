lib/search/metric.ml: Array Format Parqo_cost Parqo_machine Parqo_optree Parqo_plan Parqo_util Printf
