lib/search/brute.ml: List Parqo_cost Parqo_util Search_stats Space
