lib/search/greedy.ml: Array List Parqo_cost Parqo_plan Random_plans Space
