lib/search/random_plans.mli: Parqo_cost Parqo_plan Parqo_util Space
