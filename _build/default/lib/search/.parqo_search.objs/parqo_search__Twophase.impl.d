lib/search/twophase.ml: Dp List Parqo_cost Parqo_plan Search_stats Space
