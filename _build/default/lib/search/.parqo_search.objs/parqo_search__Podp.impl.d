lib/search/podp.ml: Array Cover List Metric Parqo_cost Parqo_util Search_stats Space
