lib/search/podp.mli: Metric Parqo_cost Search_stats Space
