lib/search/bushy.ml: Array Cover List Metric Option Parqo_cost Parqo_util Search_stats Space
