lib/search/dp.mli: Parqo_cost Search_stats Space
