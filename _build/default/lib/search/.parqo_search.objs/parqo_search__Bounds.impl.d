lib/search/bounds.ml: Float Parqo_cost Printf
