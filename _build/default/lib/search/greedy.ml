module Cm = Parqo_cost.Costmodel
module Env = Parqo_cost.Env
module J = Parqo_plan.Join_tree

type result = { best : Cm.eval option; evaluated : int }

let greedy ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.response_time) (env : Env.t) =
  let n = Env.n_relations env in
  let evaluated = ref 0 in
  let eval tree =
    incr evaluated;
    Cm.evaluate env tree
  in
  let best_of trees =
    List.fold_left
      (fun acc t ->
        let e = eval t in
        match acc with
        | None -> Some e
        | Some b -> if objective e < objective b then Some e else acc)
      None trees
  in
  if n = 0 then { best = None; evaluated = 0 }
  else begin
    (* forest of best access plans *)
    let forest =
      ref
        (List.init n (fun rel ->
             match best_of (Space.access_plans env config rel) with
             | Some e -> e
             | None -> assert false))
    in
    while List.length !forest > 1 do
      (* cheapest join over all ordered pairs; prefer connected pairs *)
      let plans = Array.of_list !forest in
      let best_pair = ref None in
      let consider ~require_connection =
        Array.iteri
          (fun i pi ->
            Array.iteri
              (fun k pk ->
                if i <> k then begin
                  let joined =
                    Space.connects env (J.relations pi.Cm.tree)
                      (J.relations pk.Cm.tree)
                  in
                  if joined || not require_connection then
                    match
                      best_of
                        (Space.combine_candidates env config ~outer:pi.Cm.tree
                           ~inner:pk.Cm.tree)
                    with
                    | None -> ()
                    | Some e -> (
                      match !best_pair with
                      | None -> best_pair := Some (i, k, e)
                      | Some (_, _, b) ->
                        if objective e < objective b then
                          best_pair := Some (i, k, e))
                end)
              plans)
          plans
      in
      consider ~require_connection:true;
      if !best_pair = None then consider ~require_connection:false;
      match !best_pair with
      | None -> assert false
      | Some (i, k, joined) ->
        forest :=
          joined
          :: List.filteri (fun idx _ -> idx <> i && idx <> k) !forest
    done;
    { best = (match !forest with [ e ] -> Some e | _ -> None);
      evaluated = !evaluated }
  end

let iterative_improvement ?(config = Space.default_config)
    ?(objective = fun (e : Cm.eval) -> e.Cm.response_time) ?(restarts = 8)
    ?(patience = 64) ~rng (env : Env.t) =
  let evaluated = ref 0 in
  let eval tree =
    incr evaluated;
    Cm.evaluate env tree
  in
  let best = ref None in
  let keep e =
    match !best with
    | None -> best := Some e
    | Some b -> if objective e < objective b then best := Some e
  in
  for _ = 1 to restarts do
    let current = ref (eval (Random_plans.random_tree rng env config)) in
    keep !current;
    let stale = ref 0 in
    while !stale < patience do
      let candidate =
        eval (Random_plans.random_move rng env config !current.Cm.tree)
      in
      if objective candidate < objective !current then begin
        current := candidate;
        keep candidate;
        stale := 0
      end
      else incr stale
    done
  done;
  { best = !best; evaluated = !evaluated }
