(** Search-space generation: the candidate annotated join trees the
    algorithms enumerate.

    [join_candidates] plays the role of the paper's [joinPlan(p', R)] —
    except that, because annotations (join method, access path, cloning
    degree, output materialization) are independent optimization choices,
    it returns every candidate extension and lets the caller keep the best
    one (Figure 1) or the cover set (Figure 2). *)

type config = {
  methods : Parqo_plan.Join_method.t list;
  clone_degrees : int list;  (** candidate cloning degrees; must include 1 *)
  use_indexes : bool;  (** consider index scans as access paths *)
  materialize_choices : bool;
      (** also generate join variants whose output is materialized *)
}

val default_config : config
(** All three methods, degrees [[1]], indexes on, no materialize
    variants — the sequential System R space. *)

val sequential_config : config
(** Nested loops + sort-merge only, no indexes, degree 1: the minimal
    space whose plan counts equal the join-order counts of Table 1 is
    obtained with {!minimal_config}. *)

val minimal_config : config
(** Exactly one method (nested loops), seq scans only, degree 1: one plan
    per join order, for verifying Table 1 space sizes. *)

val parallel_config : Parqo_machine.Machine.t -> config
(** Degrees 1, 2, 4, ... up to the machine's CPU count, materialize
    variants on. *)

val access_plans : Parqo_cost.Env.t -> config -> int -> Parqo_plan.Join_tree.t list
(** All access paths × cloning degrees for a relation. Never empty. *)

val connects : Parqo_cost.Env.t -> Parqo_util.Bitset.t -> Parqo_util.Bitset.t -> bool
(** Some join predicate crosses the two sets. *)

val combine_candidates :
  Parqo_cost.Env.t ->
  config ->
  outer:Parqo_plan.Join_tree.t ->
  inner:Parqo_plan.Join_tree.t ->
  Parqo_plan.Join_tree.t list
(** All annotated joins of two subplans.  Sort-merge and hash join are
    generated only when a join predicate connects the sides; nested loops
    always is (it is the cartesian fallback). *)

val join_candidates :
  Parqo_cost.Env.t ->
  config ->
  outer:Parqo_plan.Join_tree.t ->
  rel:int ->
  Parqo_plan.Join_tree.t list
(** [combine_candidates] against every access plan of [rel]. *)
