(** Non-exhaustive search (§7: for bushy spaces "even for ten relations
    … use of non-exhaustive search algorithms may be imperative").

    Two classic baselines over the same candidate space as the exact
    algorithms:
    - {!greedy}: keep a forest of subplans, repeatedly combine the pair
      whose best join candidate minimizes the objective (greedy operator
      ordering);
    - {!iterative_improvement}: repeated hill-climbing from random bushy
      plans using the moves of {!Random_plans} (leaf swap, re-annotation,
      rotation). *)

type result = {
  best : Parqo_cost.Costmodel.eval option;
  evaluated : int;  (** plans costed — the search effort *)
}

val greedy :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  Parqo_cost.Env.t ->
  result
(** O(n^3) joins costed. [objective] defaults to response time. *)

val iterative_improvement :
  ?config:Space.config ->
  ?objective:(Parqo_cost.Costmodel.eval -> float) ->
  ?restarts:int ->
  ?patience:int ->
  rng:Parqo_util.Rng.t ->
  Parqo_cost.Env.t ->
  result
(** [restarts] random starting plans (default 8), each hill-climbed until
    [patience] consecutive non-improving moves (default 64). *)
