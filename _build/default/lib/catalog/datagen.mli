(** Synthetic data generation.

    A schema is described by table specs; [materialize] produces both the
    rows (for the tuple-level executor) and a catalog whose statistics are
    *derived from the generated rows*, so the estimator, the cost model and
    the executor all describe the same database. *)

type gen =
  | Serial  (** 0, 1, 2, ... — a primary key *)
  | Uniform_int of int * int  (** inclusive bounds *)
  | Zipf_int of int * float  (** [Zipf_int (n, theta)] draws in [1..n] *)
  | Uniform_float of float * float
  | Fk of string  (** uniform reference to the [Serial] key of that table *)
  | String_pool of int  (** one of [n] distinct strings "s0".."s(n-1)" *)

type table_spec = {
  name : string;
  rows : int;
  columns : (string * gen) list;
  disks : int list;  (** placement, as in {!Table.t} *)
}

type database = {
  catalog : Catalog.t;
  data : (string * Value.t array array) list;
      (** per table, rows in generation order; row.(i) matches column i *)
}

val spec :
  name:string -> rows:int -> columns:(string * gen) list -> ?disks:int list ->
  unit -> table_spec
(** [disks] defaults to [[0]]. *)

val materialize :
  ?indexes:Index.t list -> Parqo_util.Rng.t -> table_spec list -> database
(** Generates every table (specs may reference earlier specs via [Fk]),
    derives column statistics from the rows, and assembles the catalog.
    Raises [Invalid_argument] if an [Fk] references an unknown or
    not-yet-generated table, or a spec has zero rows. *)

val rows_of : database -> string -> Value.t array array
(** Raises [Not_found]. *)
