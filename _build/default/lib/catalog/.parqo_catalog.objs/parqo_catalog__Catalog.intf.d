lib/catalog/catalog.mli: Format Index Stats Table
