lib/catalog/datagen.mli: Catalog Index Parqo_util Value
