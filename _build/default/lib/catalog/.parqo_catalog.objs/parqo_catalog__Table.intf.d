lib/catalog/table.mli: Format Stats
