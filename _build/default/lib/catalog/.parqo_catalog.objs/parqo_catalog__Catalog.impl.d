lib/catalog/catalog.ml: Format Index List Printf String Table
