lib/catalog/stats.mli: Format
