lib/catalog/value.ml: Float Format Hashtbl Printf String
