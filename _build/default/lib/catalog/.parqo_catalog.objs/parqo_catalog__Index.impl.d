lib/catalog/index.ml: Format List String
