lib/catalog/value.mli: Format
