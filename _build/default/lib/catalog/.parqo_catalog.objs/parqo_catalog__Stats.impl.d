lib/catalog/stats.ml: Array Float Format List Printf
