lib/catalog/datagen.ml: Array Catalog List Parqo_util Printf Stats Table Value
