lib/catalog/table.ml: Array Format List Stats String
