type t = {
  name : string;
  table : string;
  columns : string list;
  clustered : bool;
  disk : int;
}

let create ~name ~table ~columns ?(clustered = false) ?(disk = 0) () =
  if columns = [] then invalid_arg "Index.create: no columns";
  { name; table; columns; clustered; disk }

let covers t cols = List.for_all (fun c -> List.mem c t.columns) cols

let pp ppf t =
  Format.fprintf ppf "%s on %s(%s)%s disk=%d" t.name t.table
    (String.concat "," t.columns)
    (if t.clustered then " clustered" else "")
    t.disk
