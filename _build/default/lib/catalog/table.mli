(** Base-table metadata: schema, cardinality, column statistics, and
    physical placement on disks.

    Placement uses abstract disk indexes [0, 1, ...] that the cost model
    resolves against the machine's disk list; a table declustered over
    several disks is read by naturally cloned scans (§4.1, intra-operator
    parallelism). *)

type t = {
  name : string;
  columns : (string * Stats.column) array;  (** in schema order *)
  cardinality : float;  (** number of rows, >= 0 *)
  disks : int list;  (** disk indexes holding the data; singleton = unpartitioned *)
}

val create :
  name:string ->
  columns:(string * Stats.column) list ->
  cardinality:float ->
  ?disks:int list ->
  unit ->
  t
(** [disks] defaults to [[0]]. Raises [Invalid_argument] on duplicate
    column names, empty column list, empty [disks] or negative
    cardinality. *)

val column_names : t -> string list

val column_stats : t -> string -> Stats.column
(** Raises [Not_found]. *)

val has_column : t -> string -> bool

val column_index : t -> string -> int
(** Position of the column in schema order. Raises [Not_found]. *)

val arity : t -> int

val pp : Format.formatter -> t -> unit
