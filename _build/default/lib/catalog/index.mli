(** Secondary access paths.  An index is an annotation source for access
    plans: it offers an ordering on its key columns, lives on a specific
    disk (which matters for resource contention — the crux of the paper's
    Example 3), and is clustered or not. *)

type t = {
  name : string;
  table : string;
  columns : string list;  (** key columns, significant order *)
  clustered : bool;
  disk : int;  (** abstract disk index, as in {!Table.t} *)
}

val create :
  name:string ->
  table:string ->
  columns:string list ->
  ?clustered:bool ->
  ?disk:int ->
  unit ->
  t
(** [clustered] defaults to false, [disk] to 0. Raises [Invalid_argument]
    on an empty column list. *)

val covers : t -> string list -> bool
(** [covers idx cols]: every requested column is a key column, i.e. the
    index alone can answer a scan of [cols] (an index-only scan). *)

val pp : Format.formatter -> t -> unit
