type t = {
  name : string;
  columns : (string * Stats.column) array;
  cardinality : float;
  disks : int list;
}

let create ~name ~columns ~cardinality ?(disks = [ 0 ]) () =
  if columns = [] then invalid_arg "Table.create: no columns";
  if cardinality < 0. then invalid_arg "Table.create: negative cardinality";
  if disks = [] then invalid_arg "Table.create: no disks";
  let names = List.map fst columns in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Table.create: duplicate column";
  { name; columns = Array.of_list columns; cardinality; disks }

let column_names t = Array.to_list t.columns |> List.map fst

let column_stats t name =
  let found =
    Array.to_list t.columns |> List.find_opt (fun (n, _) -> n = name)
  in
  match found with Some (_, s) -> s | None -> raise Not_found

let has_column t name = Array.exists (fun (n, _) -> n = name) t.columns

let column_index t name =
  let rec find i =
    if i >= Array.length t.columns then raise Not_found
    else if fst t.columns.(i) = name then i
    else find (i + 1)
  in
  find 0

let arity t = Array.length t.columns

let pp ppf t =
  Format.fprintf ppf "%s(%s) card=%.0f disks=[%s]" t.name
    (String.concat ", " (column_names t))
    t.cardinality
    (String.concat ";" (List.map string_of_int t.disks))
