(** Runtime values stored in tuples.  The tuple-level executor operates on
    these; the statistics module summarizes them through [to_float]. *)

type t = Int of int | Flt of float | Str of string

val compare : t -> t -> int
(** Total order: numeric values compare numerically across [Int]/[Flt];
    strings compare lexicographically and sort after numbers. *)

val equal : t -> t -> bool

val to_float : t -> float
(** Numeric image used for statistics; strings hash to a stable float. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
