type t = Int of int | Flt of float | Str of string

let to_float = function
  | Int i -> float_of_int i
  | Flt f -> f
  | Str s -> float_of_int (Hashtbl.hash s)

let compare a b =
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | Str _, (Int _ | Flt _) -> 1
  | (Int _ | Flt _), Str _ -> -1
  | (Int _ | Flt _), (Int _ | Flt _) -> Float.compare (to_float a) (to_float b)

let equal a b = compare a b = 0

let hash = function
  | Int i -> Hashtbl.hash i
  | Flt f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Int i -> string_of_int i
  | Flt f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)
