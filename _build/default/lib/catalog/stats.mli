(** Per-column statistics used by the System-R-style cardinality estimator.

    Statistics may be declared directly (synthetic catalogs) or derived
    from generated data ([of_values]), which keeps the estimator and the
    tuple executor consistent in the integration tests. *)

type histogram = {
  bounds : float array;
      (** bucket boundaries, length = buckets + 1, non-decreasing;
          bucket i spans [bounds.(i), bounds.(i+1)) *)
  counts : float array;  (** per-bucket row counts *)
}
(** Both equi-width and equi-depth histograms use this shape; they differ
    only in how the boundaries are chosen. *)

type column = {
  distinct : float;  (** number of distinct values, >= 1 *)
  min_v : float;
  max_v : float;
  hist : histogram option;
}

val column : ?hist:histogram -> distinct:float -> min_v:float -> max_v:float -> unit -> column
(** Declares statistics. Raises [Invalid_argument] if [distinct < 1.] or
    [min_v > max_v]. *)

val of_values : ?buckets:int -> float list -> column
(** Derives statistics (including an equi-width histogram, default 16
    buckets) from actual values. Raises [Invalid_argument] on []. *)

val of_values_equidepth : ?buckets:int -> float list -> column
(** Like [of_values] but with an equi-depth histogram: boundaries at the
    value quantiles, so every bucket holds (close to) the same number of
    rows — much more accurate under skew (experiment E14). *)

val eq_fraction : column -> float -> float
(** Estimated fraction of rows equal to a constant: histogram bucket mass
    spread over the distinct values falling in it when a histogram exists,
    else the uniform [1/distinct]; [0.] outside [min_v, max_v]. *)

val le_fraction : column -> float -> float
(** Estimated fraction of rows with value [<= c], interpolating within
    the histogram bucket (or the [min_v..max_v] span without one). *)

val join_selectivity : column -> column -> float
(** System R equi-join selectivity: [1 / max(distinct_l, distinct_r)]. *)

val pp_column : Format.formatter -> column -> unit
