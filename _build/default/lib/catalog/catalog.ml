type t = { tables : Table.t list; indexes : Index.t list }

let empty = { tables = []; indexes = [] }

let check_unique what names =
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg ("Catalog: duplicate " ^ what)

let create ~tables ~indexes =
  check_unique "table" (List.map (fun (t : Table.t) -> t.name) tables);
  check_unique "index" (List.map (fun (i : Index.t) -> i.name) indexes);
  { tables; indexes }

let add_table c table =
  create ~tables:(c.tables @ [ table ]) ~indexes:c.indexes

let add_index c index =
  create ~tables:c.tables ~indexes:(c.indexes @ [ index ])

let tables c = c.tables
let indexes c = c.indexes

let find_table c name =
  List.find_opt (fun (t : Table.t) -> t.name = name) c.tables

let table c name =
  match find_table c name with Some t -> t | None -> raise Not_found

let indexes_of c name =
  List.filter (fun (i : Index.t) -> i.table = name) c.indexes

let column_stats c ~table:tname ~column =
  Table.column_stats (table c tname) column

let validate ?n_disks c =
  let check_disk what d =
    match n_disks with
    | Some n when d < 0 || d >= n ->
      Error (Printf.sprintf "%s references disk %d outside [0,%d)" what d n)
    | _ -> Ok ()
  in
  let rec check_all = function
    | [] -> Ok ()
    | check :: rest -> ( match check () with Ok () -> check_all rest | e -> e)
  in
  let table_checks =
    List.map
      (fun (t : Table.t) () ->
        check_all
          (List.map (fun d () -> check_disk ("table " ^ t.name) d) t.disks))
      c.tables
  in
  let index_checks =
    List.map
      (fun (i : Index.t) () ->
        match find_table c i.table with
        | None ->
          Error (Printf.sprintf "index %s references missing table %s" i.name i.table)
        | Some t -> (
          match
            List.find_opt (fun col -> not (Table.has_column t col)) i.columns
          with
          | Some col ->
            Error
              (Printf.sprintf "index %s references missing column %s.%s"
                 i.name i.table col)
          | None -> check_disk ("index " ^ i.name) i.disk))
      c.indexes
  in
  check_all (table_checks @ index_checks)

let pp ppf c =
  Format.fprintf ppf "@[<v>catalog:@,%a@,%a@]"
    (Format.pp_print_list Table.pp)
    c.tables
    (Format.pp_print_list Index.pp)
    c.indexes
