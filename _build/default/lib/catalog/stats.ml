type histogram = { bounds : float array; counts : float array }

type column = {
  distinct : float;
  min_v : float;
  max_v : float;
  hist : histogram option;
}

let column ?hist ~distinct ~min_v ~max_v () =
  if distinct < 1. then invalid_arg "Stats.column: distinct < 1";
  if min_v > max_v then invalid_arg "Stats.column: min > max";
  { distinct; min_v; max_v; hist }

let base_stats values =
  match values with
  | [] -> invalid_arg "Stats.of_values: empty"
  | _ ->
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let distinct =
      List.sort_uniq Float.compare values |> List.length |> float_of_int
    in
    (lo, hi, distinct)

let fill_counts bounds values =
  let buckets = Array.length bounds - 1 in
  let counts = Array.make buckets 0. in
  let bucket_of v =
    (* rightmost bucket whose lower bound is <= v, capped *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if bounds.(mid) <= v then search mid hi else search lo (mid - 1)
    in
    min (buckets - 1) (search 0 (buckets - 1))
  in
  List.iter (fun v -> counts.(bucket_of v) <- counts.(bucket_of v) +. 1.) values;
  counts

let of_values ?(buckets = 16) values =
  let lo, hi, distinct = base_stats values in
  let hist =
    if hi > lo then begin
      let width = (hi -. lo) /. float_of_int buckets in
      let bounds =
        Array.init (buckets + 1) (fun i ->
            if i = buckets then hi else lo +. (float_of_int i *. width))
      in
      Some { bounds; counts = fill_counts bounds values }
    end
    else None
  in
  { distinct; min_v = lo; max_v = hi; hist }

let of_values_equidepth ?(buckets = 16) values =
  let lo, hi, distinct = base_stats values in
  let hist =
    if hi > lo then begin
      let sorted = Array.of_list (List.sort Float.compare values) in
      let n = Array.length sorted in
      let bounds =
        Array.init (buckets + 1) (fun i ->
            if i = 0 then lo
            else if i = buckets then hi
            else sorted.(i * n / buckets))
      in
      (* merge duplicate boundaries are fine: empty buckets count 0 *)
      Some { bounds; counts = fill_counts bounds values }
    end
    else None
  in
  { distinct; min_v = lo; max_v = hi; hist }

let total_count h = Array.fold_left ( +. ) 0. h.counts

let bucket_of h v =
  let buckets = Array.length h.counts in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if h.bounds.(mid) <= v then search mid hi else search lo (mid - 1)
  in
  min (buckets - 1) (max 0 (search 0 (buckets - 1)))

let eq_fraction c v =
  if v < c.min_v || v > c.max_v then 0.
  else
    match c.hist with
    | None -> 1. /. c.distinct
    | Some h ->
      let total = total_count h in
      if total <= 0. then 1. /. c.distinct
      else begin
        let buckets = float_of_int (Array.length h.counts) in
        (* distinct values assumed evenly spread over buckets *)
        let per_bucket_distinct = Float.max 1. (c.distinct /. buckets) in
        h.counts.(bucket_of h v) /. total /. per_bucket_distinct
      end

let le_fraction c v =
  if v < c.min_v then 0.
  else if v >= c.max_v then 1.
  else
    match c.hist with
    | None ->
      if c.max_v = c.min_v then 1.
      else (v -. c.min_v) /. (c.max_v -. c.min_v)
    | Some h ->
      let total = total_count h in
      if total <= 0. then 0.
      else begin
        let b = bucket_of h v in
        let below = ref 0. in
        for i = 0 to b - 1 do
          below := !below +. h.counts.(i)
        done;
        let b_lo = h.bounds.(b) and b_hi = h.bounds.(b + 1) in
        let frac_in_bucket =
          if b_hi > b_lo then (v -. b_lo) /. (b_hi -. b_lo) else 1.
        in
        (!below +. (h.counts.(b) *. frac_in_bucket)) /. total
      end

let join_selectivity a b = 1. /. Float.max a.distinct b.distinct

let pp_column ppf c =
  Format.fprintf ppf "distinct=%.0f range=[%g,%g]%s" c.distinct c.min_v c.max_v
    (match c.hist with
    | None -> ""
    | Some h -> Printf.sprintf " hist(%d)" (Array.length h.counts))
