(** The database catalog: tables plus indexes, with lookup and validation.

    Catalogs are immutable; [add_table] / [add_index] return extended
    catalogs.  [validate] checks referential consistency (index targets,
    key columns, disk indexes) against an optional disk count. *)

type t

val empty : t

val create : tables:Table.t list -> indexes:Index.t list -> t
(** Raises [Invalid_argument] on duplicate table or index names. *)

val add_table : t -> Table.t -> t

val add_index : t -> Index.t -> t

val tables : t -> Table.t list

val indexes : t -> Index.t list

val find_table : t -> string -> Table.t option

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val indexes_of : t -> string -> Index.t list
(** All indexes whose target is the given table. *)

val column_stats : t -> table:string -> column:string -> Stats.column
(** Raises [Not_found] if the table or column does not exist. *)

val validate : ?n_disks:int -> t -> (unit, string) result
(** Checks: every index references an existing table and existing columns;
    every placement disk index is within [0 .. n_disks-1] when [n_disks]
    is given. Returns the first violation found. *)

val pp : Format.formatter -> t -> unit
