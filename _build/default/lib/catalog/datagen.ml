type gen =
  | Serial
  | Uniform_int of int * int
  | Zipf_int of int * float
  | Uniform_float of float * float
  | Fk of string
  | String_pool of int

type table_spec = {
  name : string;
  rows : int;
  columns : (string * gen) list;
  disks : int list;
}

type database = {
  catalog : Catalog.t;
  data : (string * Value.t array array) list;
}

let spec ~name ~rows ~columns ?(disks = [ 0 ]) () =
  { name; rows; columns; disks }

let generate_column rng ~rows ~generated = function
  | Serial -> Array.init rows (fun i -> Value.Int i)
  | Uniform_int (lo, hi) ->
    Array.init rows (fun _ -> Value.Int (Parqo_util.Rng.range rng lo hi))
  | Zipf_int (n, theta) ->
    Array.init rows (fun _ -> Value.Int (Parqo_util.Rng.zipf rng ~n ~theta))
  | Uniform_float (lo, hi) ->
    Array.init rows (fun _ ->
        Value.Flt (lo +. Parqo_util.Rng.float rng (hi -. lo)))
  | Fk target -> (
    match List.assoc_opt target generated with
    | None -> invalid_arg ("Datagen: Fk references unknown table " ^ target)
    | Some target_rows ->
      let n = Array.length target_rows in
      if n = 0 then invalid_arg ("Datagen: Fk references empty table " ^ target);
      Array.init rows (fun _ -> Value.Int (Parqo_util.Rng.int rng n)))
  | String_pool n ->
    Array.init rows (fun _ ->
        Value.Str (Printf.sprintf "s%d" (Parqo_util.Rng.int rng n)))

let materialize ?(indexes = []) rng specs =
  let generated =
    List.fold_left
      (fun generated spec ->
        if spec.rows <= 0 then
          invalid_arg ("Datagen: table " ^ spec.name ^ " has no rows");
        let cols =
          List.map
            (fun (_, g) -> generate_column rng ~rows:spec.rows ~generated g)
            spec.columns
        in
        let rows =
          Array.init spec.rows (fun r ->
              Array.of_list (List.map (fun col -> col.(r)) cols))
        in
        generated @ [ (spec.name, rows) ])
      [] specs
  in
  let tables =
    List.map
      (fun spec ->
        let rows = List.assoc spec.name generated in
        let columns =
          List.mapi
            (fun i (cname, _) ->
              let values =
                Array.to_list rows |> List.map (fun r -> Value.to_float r.(i))
              in
              (cname, Stats.of_values values))
            spec.columns
        in
        Table.create ~name:spec.name ~columns
          ~cardinality:(float_of_int spec.rows) ~disks:spec.disks ())
      specs
  in
  { catalog = Catalog.create ~tables ~indexes; data = generated }

let rows_of db name =
  match List.assoc_opt name db.data with
  | Some rows -> rows
  | None -> raise Not_found
