type 'a t =
  | Leaf
  | Node of { rank : int; prio : float; value : 'a; left : 'a t; right : 'a t; count : int }

let empty = Leaf
let is_empty = function Leaf -> true | Node _ -> false
let rank = function Leaf -> 0 | Node { rank; _ } -> rank
let size = function Leaf -> 0 | Node { count; _ } -> count

let node prio value a b =
  let left, right = if rank a >= rank b then (a, b) else (b, a) in
  Node { rank = rank right + 1; prio; value; left; right; count = size a + size b + 1 }

let rec merge a b =
  match (a, b) with
  | Leaf, t | t, Leaf -> t
  | Node na, Node nb ->
    if na.prio <= nb.prio then node na.prio na.value na.left (merge na.right b)
    else node nb.prio nb.value nb.left (merge a nb.right)

let insert prio value q = merge (Node { rank = 1; prio; value; left = Leaf; right = Leaf; count = 1 }) q

let min = function
  | Leaf -> None
  | Node { prio; value; _ } -> Some (prio, value)

let pop = function
  | Leaf -> None
  | Node { prio; value; left; right; _ } -> Some (prio, value, merge left right)

let of_list l = List.fold_left (fun q (p, v) -> insert p v q) empty l

let to_sorted_list q =
  let rec loop q acc =
    match pop q with
    | None -> List.rev acc
    | Some (p, v, q') -> loop q' ((p, v) :: acc)
  in
  loop q []
