(** A purely functional min-priority queue (leftist heap), keyed by float
    priority.  The discrete-event simulator uses it as its event queue. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val insert : float -> 'a -> 'a t -> 'a t
(** [insert priority value q]. Ties are broken by insertion order being
    unspecified; callers requiring determinism must disambiguate in the
    value. *)

val min : 'a t -> (float * 'a) option
(** Smallest priority with its value, without removing it. *)

val pop : 'a t -> (float * 'a * 'a t) option
(** Remove and return the minimum. *)

val of_list : (float * 'a) list -> 'a t

val to_sorted_list : 'a t -> (float * 'a) list
(** All entries in non-decreasing priority order. O(n log n). *)
