type t = float array

let make dim x = Array.make dim x
let zero dim = Array.make dim 0.
let of_array a = Array.copy a
let to_array v = Array.copy v
let init = Array.init
let dim = Array.length
let get v i = v.(i)

let set v i x =
  let v' = Array.copy v in
  v'.(i) <- x;
  v'

let check_dim a b = if Array.length a <> Array.length b then invalid_arg "Vecf: dimension mismatch"

let map2 f a b =
  check_dim a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale k v = Array.map (fun x -> k *. x) v
let pointwise_max a b = map2 Float.max a b
let max_coord v = Array.fold_left Float.max neg_infinity v
let sum v = Array.fold_left ( +. ) 0. v

let dominates a b =
  check_dim a b;
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal ?(eps = 0.) a b =
  Array.length a = Array.length b
  &&
  let rec loop i =
    i >= Array.length a || (Float.abs (a.(i) -. b.(i)) <= eps && loop (i + 1))
  in
  loop 0

let map = Array.map
let clamp_non_negative v = Array.map (fun x -> Float.max 0. x) v

let pp ppf v =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3g") v)))
