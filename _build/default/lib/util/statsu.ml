type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Statsu.mean"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Statsu.summarize"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. float_of_int n
    in
    {
      n;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
    }

(* Average ranks: ties receive the mean of the positions they occupy. *)
let ranks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare arr.(a) arr.(b)) idx;
  let rank = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      rank.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list rank

let pearson xs ys =
  if List.length xs <> List.length ys || List.length xs < 2 then
    invalid_arg "Statsu.pearson";
  let mx = mean xs and my = mean ys in
  let num, dx, dy =
    List.fold_left2
      (fun (num, dx, dy) x y ->
        let a = x -. mx and b = y -. my in
        (num +. (a *. b), dx +. (a *. a), dy +. (b *. b)))
      (0., 0., 0.) xs ys
  in
  if dx = 0. || dy = 0. then 0. else num /. sqrt (dx *. dy)

let spearman xs ys = pearson (ranks xs) (ranks ys)

let quantile q xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Statsu.quantile"
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end
