(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every randomized component of the repository (data generation, workload
    generation, Monte-Carlo experiments, property tests' fixtures) draws from
    an explicit [Rng.t] so results are reproducible from a single seed and
    independent streams can be split off without sharing state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a seed. Equal seeds give equal
    streams. *)

val split : t -> t
(** A new generator statistically independent of the parent; the parent
    advances by one step. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0 .. bound). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo .. hi] inclusive. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipf distribution over [1 .. n] with
    skew [theta] (0 = uniform) by inversion over the exact CDF. O(log n)
    after an O(n) table built per (n, theta) — cached internally. *)
