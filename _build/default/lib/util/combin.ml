let factorial n =
  let rec loop acc i = if i > n then acc else loop (acc *. float_of_int i) (i + 1) in
  if n < 0 then invalid_arg "Combin.factorial" else loop 1. 2

let binomial n k =
  if k < 0 || k > n then 0.
  else begin
    (* multiplicative formula keeps intermediate values small *)
    let k = min k (n - k) in
    let acc = ref 1. in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    Float.round !acc
  end

let powi x n =
  if n < 0 then invalid_arg "Combin.powi";
  let rec loop acc base n =
    if n = 0 then acc
    else loop (if n land 1 = 1 then acc *. base else acc) (base *. base) (n lsr 1)
  in
  loop 1. x n

let leftdeep_space n = factorial n
let bushy_space n = factorial (2 * (n - 1)) /. factorial (n - 1)
let dp_leftdeep_time n = float_of_int n *. powi 2. (n - 1)
let dp_leftdeep_space n = binomial n ((n + 1) / 2)
let podp_leftdeep_time n ~l = dp_leftdeep_time n *. powi 2. l
let podp_leftdeep_space n ~l = dp_leftdeep_space n *. powi 2. l

let dp_bushy_time n ~b =
  powi 2. b *. (powi 3. n -. powi 2. (n + 1) +. float_of_int n +. 1.)

let dp_bushy_space n ~b = powi 2. b *. powi 2. n
let podp_bushy_time n ~b ~l = powi 2. l *. dp_bushy_time n ~b
let podp_bushy_space n ~b ~l = powi 2. l *. dp_bushy_space n ~b

let theorem3_bound ~l ~m =
  let p = powi 2. l in
  p *. (1. -. powi (1. -. (1. /. p)) m)

let harmonic n =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. float_of_int i)
  done;
  !acc
