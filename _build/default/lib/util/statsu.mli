(** Small statistical helpers for the experiment harness: summaries of
    samples and rank correlation between predicted and simulated response
    times (experiment E9). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float

val spearman : float list -> float list -> float
(** Spearman rank correlation of two equal-length samples (average ranks
    for ties). Raises [Invalid_argument] on mismatch or length < 2. *)

val pearson : float list -> float list -> float

val quantile : float -> float list -> float
(** [quantile q xs] for [0 <= q <= 1], linear interpolation between order
    statistics. *)
