(** Combinatorics used by Table 1 of the paper (analytic sizes of plan
    spaces and complexity of the search algorithms) and by Theorem 3. *)

val factorial : int -> float
(** [n!] as a float (exact for n <= 18). *)

val binomial : int -> int -> float
(** [binomial n k] = C(n, k); [0.] when [k < 0] or [k > n]. *)

val powi : float -> int -> float
(** [powi x n] is [x^n] for [n >= 0] by repeated squaring. *)

val leftdeep_space : int -> float
(** Number of left-deep join trees over [n] relations: [n!]. *)

val bushy_space : int -> float
(** Number of bushy join trees over [n] relations, counting both shape and
    leaf order: [(2(n-1))! / (n-1)!] as in Table 1. *)

val dp_leftdeep_time : int -> float
(** Plans considered by the System R DP of Figure 1 on a clique query:
    [n * 2^(n-1)] (Table 1). *)

val dp_leftdeep_space : int -> float
(** Maximum plans stored by Figure 1: [C(n, ceil n/2)] (Table 1). *)

val podp_leftdeep_time : int -> l:int -> float
(** Table 1 row "p.o. DP for left-deep": [n * 2^(n-1) * 2^l]. *)

val podp_leftdeep_space : int -> l:int -> float
(** Table 1: [2^l * C(n, ceil n/2)]. *)

val dp_bushy_time : int -> b:int -> float
(** Table 1 row "DP for bushy": [2^b * (3^n - 2^(n+1) + n + 1)]. *)

val dp_bushy_space : int -> b:int -> float
(** Table 1: [2^b * 2^n]. *)

val podp_bushy_time : int -> b:int -> l:int -> float

val podp_bushy_space : int -> b:int -> l:int -> float

val theorem3_bound : l:int -> m:int -> float
(** Theorem 3: expected cover-set size of [m] independent random points in
    [l]-dimensional space is at most [2^l * (1 - (1 - 2^-l)^m)]. *)

val harmonic : int -> float
(** [H_n], the n-th harmonic number — the exact expected cover (Pareto) set
    size for [l = 2] dimensions, used to cross-check the Monte Carlo. *)
