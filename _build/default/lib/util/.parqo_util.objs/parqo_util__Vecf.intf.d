lib/util/vecf.mli: Format
