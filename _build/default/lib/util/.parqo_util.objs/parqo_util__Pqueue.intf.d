lib/util/pqueue.mli:
