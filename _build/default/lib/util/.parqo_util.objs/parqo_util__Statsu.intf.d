lib/util/statsu.mli:
