lib/util/tableau.mli:
