lib/util/vecf.ml: Array Float Format Printf String
