lib/util/combin.ml: Float
