lib/util/bitset.ml: Format List Stdlib String
