lib/util/statsu.ml: Array Float List
