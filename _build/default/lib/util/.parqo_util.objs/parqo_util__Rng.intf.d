lib/util/rng.mli:
