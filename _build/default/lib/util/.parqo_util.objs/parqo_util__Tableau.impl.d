lib/util/tableau.ml: Buffer Char Filename Float List Printf String Sys
