lib/util/combin.mli:
