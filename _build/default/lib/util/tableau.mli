(** Plain-text table rendering for the benchmark harness and CLI: the
    experiment tables (E1..E10 in DESIGN.md) are printed through this
    module so every experiment reports in a uniform format. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string
(** The table as a string, boxed with ASCII rules. *)

val to_csv : t -> string
(** Header row plus data rows, RFC-4180-style quoting; rules are
    skipped. *)

val set_csv_dir : string option -> unit
(** When set, every subsequent [print] also writes the table as
    [<dir>/<slug-of-title>.csv] (the directory is created).  The
    benchmark harness exposes this as [--csv DIR]. *)

val print : t -> unit
(** [render] to stdout followed by a blank line (plus the CSV side
    effect when a directory is configured). *)

val cell_float : ?decimals:int -> float -> string
(** Compact numeric cell: fixed decimals for small magnitudes, scientific
    notation beyond 1e7, ["-"] for NaN and ["inf"] for infinities. *)

val cell_int : int -> string
