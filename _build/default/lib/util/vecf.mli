(** Dense float vectors with coordinate-wise arithmetic.

    Resource vectors in the cost model (per-resource work, §5.2 of the
    paper) are [Vecf.t] values whose dimension equals the number of modeled
    resources of the machine. *)

type t
(** An immutable vector of floats. *)

val make : int -> float -> t
(** [make dim x] is the [dim]-vector with every coordinate [x]. *)

val zero : int -> t

val of_array : float array -> t
(** Copies the array. *)

val to_array : t -> float array
(** Fresh copy. *)

val init : int -> (int -> float) -> t

val dim : t -> int

val get : t -> int -> float

val set : t -> int -> float -> t
(** Functional update. *)

val add : t -> t -> t
(** Coordinate-wise sum. Raises [Invalid_argument] on dimension mismatch. *)

val sub : t -> t -> t
(** Coordinate-wise difference. *)

val scale : float -> t -> t

val pointwise_max : t -> t -> t

val max_coord : t -> float
(** Largest coordinate; [neg_infinity] for the 0-dimensional vector. *)

val sum : t -> float

val dominates : t -> t -> bool
(** [dominates a b] iff [a.(i) <= b.(i)] for every coordinate — the
    l-dimensional less-than of §6.2. *)

val equal : ?eps:float -> t -> t -> bool

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val clamp_non_negative : t -> t
(** Replaces negative coordinates by [0.]; used when subtracting a
    materialized front introduces small negative residuals. *)

val pp : Format.formatter -> t -> unit
