type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = int64 t in
  { state = mix seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, same construction as the stdlib *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let range t lo hi = lo + int t (hi - lo + 1)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

let pick_list t l = pick t (Array.of_list l)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean = -.mean *. log (1. -. float t 1.)

(* Zipf by binary search over the cumulative distribution.  The table is
   cached per (n, theta) since workloads draw many values with the same
   parameters. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_cdf n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some c -> c
  | None ->
    let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.;
    Hashtbl.replace zipf_cache (n, theta) cdf;
    cdf

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf";
  let cdf = zipf_cdf n theta in
  let u = float t 1. in
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)
