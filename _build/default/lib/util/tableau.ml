type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tableau.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_cells headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      match row with
      | Rule -> Buffer.add_string buf (rule ^ "\n")
      | Cells cells -> Buffer.add_string buf (render_cells cells ^ "\n"))
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line (List.map fst t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      match row with
      | Rule -> ()
      | Cells cells ->
        Buffer.add_string buf (line cells);
        Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then Char.lowercase_ascii c
      else '-')
    title

let write_csv t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug t.title ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

let print t =
  print_string (render t);
  print_newline ();
  print_newline ();
  match !csv_dir with None -> () | Some dir -> write_csv t dir

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "-"
  else if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1e7 then Printf.sprintf "%.3e" x
  else Printf.sprintf "%.*f" decimals x

let cell_int = string_of_int
