module M = Parqo_machine.Machine
module Op = Parqo_optree.Op
module Est = Parqo_plan.Estimator

let spread ids w =
  match ids with
  | [] -> []
  | _ ->
    let share = w /. float_of_int (List.length ids) in
    List.map (fun id -> (id, share)) ids

let log2 x = log x /. log 2.

let child n i =
  match List.nth_opt n.Op.children i with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Opcost: %s lacks child %d" (Op.kind_name n.Op.kind) i)

let nl_inner_is_free node =
  match node.Op.kind with
  | Op.Nl_join -> (
    match (child node 1).Op.kind with Op.Index_scan _ -> true | _ -> false)
  | _ -> false

let base machine est node =
  let p = machine.M.params in
  let dim = M.n_resources machine in
  let lanes = Placement.effective_clone machine node.Op.clone in
  let cpus = Placement.cpus_for machine ~clone:node.Op.clone in
  let pages card = card /. p.tuples_per_page in
  let usage ?(lanes = lanes) demands =
    Rvec.of_demands dim demands ~lanes ~overhead:p.clone_overhead
  in
  match node.Op.kind with
  | Op.Seq_scan { rel } ->
    let raw = Est.raw_card est rel in
    let disks = Placement.disks_for_table machine (Est.table_of est rel) in
    let io = spread disks (pages raw *. p.io_page_cost) in
    let cpu = spread cpus (raw *. p.cpu_tuple_cost) in
    let lanes =
      if cpus = [] then max 1 (min node.Op.clone (List.length disks)) else lanes
    in
    Descriptor.atomic (usage ~lanes (io @ cpu))
  | Op.Index_scan { rel; index } ->
    let raw = Est.raw_card est rel in
    let penalty =
      if index.Parqo_catalog.Index.clustered then 1. else p.unclustered_penalty
    in
    let io_work = pages raw *. p.index_page_factor *. penalty *. p.io_page_cost in
    let io =
      match Placement.disk_for_index machine index with
      | Some d -> [ (d, io_work) ]
      | None -> []
    in
    let cpu = spread cpus (raw *. p.cpu_tuple_cost) in
    Descriptor.atomic (usage (io @ cpu))
  | Op.Sort _ ->
    let n = (child node 0).Op.out_card in
    let per_lane = Float.max 1. (n /. float_of_int lanes) in
    let cpu_work = n *. log2 (Float.max 2. per_lane) *. p.cpu_compare_cost in
    let io =
      if per_lane > p.sort_memory_tuples then
        spread
          (Placement.spill_disks machine ~cpus)
          (2. *. pages n *. p.io_page_cost)
      else []
    in
    Descriptor.blocking (usage (spread cpus cpu_work @ io))
  | Op.Merge_join ->
    let outer = (child node 0).Op.out_card and inner = (child node 1).Op.out_card in
    let cpu_work =
      ((outer +. inner) *. p.cpu_compare_cost)
      +. (node.Op.out_card *. p.cpu_tuple_cost)
    in
    Descriptor.atomic (usage (spread cpus cpu_work))
  | Op.Hash_build ->
    let n = (child node 0).Op.out_card in
    let per_lane = n /. float_of_int lanes in
    (* a build larger than per-clone memory Grace-partitions to disk:
       one write and one read pass over the build input *)
    let io =
      if per_lane > p.hash_memory_tuples then
        spread (Placement.spill_disks machine ~cpus) (2. *. pages n *. p.io_page_cost)
      else []
    in
    Descriptor.blocking (usage (spread cpus (n *. p.cpu_hash_cost) @ io))
  | Op.Hash_probe ->
    let outer = (child node 0).Op.out_card in
    let build_per_lane = (child node 1).Op.out_card /. float_of_int lanes in
    let cpu_work =
      (outer *. p.cpu_hash_cost) +. (node.Op.out_card *. p.cpu_tuple_cost)
    in
    (* when the build spilled, the probe input is partitioned too *)
    let io =
      if build_per_lane > p.hash_memory_tuples then
        spread (Placement.spill_disks machine ~cpus)
          (2. *. pages outer *. p.io_page_cost)
      else []
    in
    Descriptor.atomic (usage (spread cpus cpu_work @ io))
  | Op.Nl_join ->
    let outer = (child node 0).Op.out_card in
    let inner = child node 1 in
    let result_cpu = node.Op.out_card *. p.cpu_tuple_cost in
    let demands =
      match inner.Op.kind with
      | Op.Index_scan { index; _ } ->
        (* index nested loops: probe the index once per outer tuple *)
        let io_work = outer *. p.nl_index_probe_io *. p.io_page_cost in
        let io =
          match Placement.disk_for_index machine index with
          | Some d -> [ (d, io_work) ]
          | None -> []
        in
        io @ spread cpus ((outer *. p.cpu_hash_cost) +. result_cpu)
      | Op.Create_index _ ->
        (* probe the temporary index, in memory *)
        spread cpus ((outer *. p.cpu_hash_cost) +. result_cpu)
      | _ ->
        (* pure nested loops over a once-computed, memory-resident inner *)
        spread cpus
          ((outer *. inner.Op.out_card *. p.cpu_compare_cost) +. result_cpu)
    in
    Descriptor.atomic (usage demands)
  | Op.Create_index _ ->
    let n = (child node 0).Op.out_card in
    let cpu_work =
      (n *. log2 (Float.max 2. n) *. p.cpu_compare_cost)
      +. (n *. p.cpu_hash_cost)
    in
    Descriptor.blocking (usage (spread cpus cpu_work))
  | Op.Exchange _ ->
    let n = node.Op.out_card in
    let cpu = spread cpus (2. *. n *. p.cpu_tuple_cost) in
    let net =
      match Placement.network machine with
      | Some r -> [ (r, n *. p.net_tuple_cost) ]
      | None -> []
    in
    Descriptor.atomic (usage (cpu @ net))
