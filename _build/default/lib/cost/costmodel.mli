(** Recursive cost evaluation of operator trees and annotated join trees
    (§5): descriptors are combined bottom-up with [pipe], [tree] and
    [sync] exactly as the calculus prescribes. *)

type eval = {
  tree : Parqo_plan.Join_tree.t;
  optree : Parqo_optree.Op.node;
  descriptor : Descriptor.t;
  response_time : float;
  work : float;
  ordering : Parqo_plan.Ordering.t;
}
(** A fully-costed plan: the join tree, its unique operator-tree
    expansion, the resource descriptor, and the derived response time,
    total work and output ordering. *)

val of_optree : Env.t -> Parqo_optree.Op.node -> Descriptor.t
(** Cost of an operator tree: leaves get their base descriptors; a unary
    node pipes its child into itself; a binary node combines its children
    with [tree]; a [Materialized] composition applies [sync].  A nested-
    loops join over a bare index scan absorbs the probing cost (see
    {!Opcost.nl_inner_is_free}). *)

val evaluate :
  ?required_order:Parqo_plan.Ordering.t -> Env.t -> Parqo_plan.Join_tree.t -> eval
(** Expand then cost. Raises [Invalid_argument] on ill-formed trees.

    When [required_order] is given (an ORDER BY) and the plan's output
    ordering does not subsume it, the operator tree is extended with a
    final sort (merging partitioned streams first when the root is
    cloned) and the descriptor reflects that extra cost — so plans that
    deliver the order through an interesting order win exactly as §6.1.2
    describes. *)

val required_order : Env.t -> Parqo_plan.Ordering.t
(** The query's ORDER BY as an ordering (empty when absent). *)

val response_time : Env.t -> Parqo_plan.Join_tree.t -> float

val work : Env.t -> Parqo_plan.Join_tree.t -> float

val pp_eval : Format.formatter -> eval -> unit
