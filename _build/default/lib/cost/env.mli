(** The optimization context: machine, catalog, query, estimator and
    expansion configuration, bundled once and threaded through cost
    evaluation and search. *)

type t = {
  machine : Parqo_machine.Machine.t;
  estimator : Parqo_plan.Estimator.t;
  expand_config : Parqo_optree.Expand.config;
  dparams : Descriptor.params;
}

val create :
  ?expand_config:Parqo_optree.Expand.config ->
  machine:Parqo_machine.Machine.t ->
  catalog:Parqo_catalog.Catalog.t ->
  query:Parqo_query.Query.t ->
  unit ->
  t
(** Builds the estimator and derives descriptor parameters from the
    machine.  Raises [Invalid_argument] if the query does not validate
    against the catalog. *)

val query : t -> Parqo_query.Query.t

val catalog : t -> Parqo_catalog.Catalog.t

val n_relations : t -> int
