module Op = Parqo_optree.Op
module P = Parqo_plan

type eval = {
  tree : P.Join_tree.t;
  optree : Op.node;
  descriptor : Descriptor.t;
  response_time : float;
  work : float;
  ordering : P.Ordering.t;
}

let of_optree (env : Env.t) root =
  let p = env.dparams in
  let rec descr (node : Op.node) =
    let base = Opcost.base env.machine env.estimator node in
    let combined =
      match node.Op.children with
      | [] -> base
      | [ c ] -> Descriptor.pipe p (descr c) base
      | [ l; r ] ->
        if Opcost.nl_inner_is_free node then
          (* the inner index is probed, not scanned: only the outer feeds
             the pipeline, probing cost is in [base] *)
          Descriptor.pipe p (descr l) base
        else Descriptor.tree p (descr l) (descr r) base
      | _ -> invalid_arg "Costmodel: operator with more than two children"
    in
    match node.Op.composition with
    | Op.Materialized -> Descriptor.sync combined
    | Op.Pipelined -> combined
  in
  descr root

let required_order (env : Env.t) =
  List.map
    (fun (c : Parqo_query.Query.column_ref) ->
      { P.Ordering.rel = c.Parqo_query.Query.rel; column = c.Parqo_query.Query.column })
    (Env.query env).Parqo_query.Query.order_by

(* wrap the expanded plan in a final sort (after collapsing partitioned
   streams to one) so ORDER BY cost is part of the same calculus *)
let add_final_sort (root : Op.node) key =
  let max_id = Op.fold (fun acc n -> max acc n.Op.id) 0 root in
  let merged =
    if root.Op.clone > 1 then
      {
        Op.id = max_id + 1;
        kind = Op.Exchange { mode = Op.Merge_streams };
        children = [ root ];
        composition = Op.Pipelined;
        clone = 1;
        partition = None;
        out_card = root.Op.out_card;
        out_width = root.Op.out_width;
      }
    else root
  in
  {
    Op.id = max_id + 2;
    kind = Op.Sort { key };
    children = [ merged ];
    composition = Op.Pipelined;
    clone = 1;
    partition = None;
    out_card = merged.Op.out_card;
    out_width = merged.Op.out_width;
  }

let evaluate ?(required_order = P.Ordering.none) (env : Env.t) tree =
  let optree =
    Parqo_optree.Expand.expand ~config:env.expand_config env.estimator tree
  in
  let ordering = P.Props.ordering (Env.query env) tree in
  let optree =
    if
      required_order <> P.Ordering.none
      && not (P.Ordering.satisfies ordering required_order)
    then add_final_sort optree required_order
    else optree
  in
  let descriptor = of_optree env optree in
  {
    tree;
    optree;
    descriptor;
    response_time = Descriptor.response_time descriptor;
    work = Descriptor.work descriptor;
    ordering;
  }

let response_time env tree = (evaluate env tree).response_time
let work env tree = (evaluate env tree).work

let pp_eval ppf e =
  Format.fprintf ppf "@[<v>plan: %s@,rt=%.3f work=%.3f order=%s@,%a@]"
    (P.Join_tree.to_string e.tree)
    e.response_time e.work
    (P.Ordering.to_string e.ordering)
    Op.pp e.optree
