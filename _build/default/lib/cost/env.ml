type t = {
  machine : Parqo_machine.Machine.t;
  estimator : Parqo_plan.Estimator.t;
  expand_config : Parqo_optree.Expand.config;
  dparams : Descriptor.params;
}

let create ?(expand_config = Parqo_optree.Expand.default_config) ~machine
    ~catalog ~query () =
  {
    machine;
    estimator = Parqo_plan.Estimator.create catalog query;
    expand_config;
    dparams = Descriptor.of_machine machine;
  }

let query t = Parqo_plan.Estimator.query t.estimator
let catalog t = Parqo_plan.Estimator.catalog t.estimator
let n_relations t = Parqo_query.Query.n_relations (query t)
