(** Time descriptors and the contention-free calculus of §5.1.

    A time descriptor [(tf, tl)] gives the times at which the first and
    last tuple of a plan are produced.  This module implements the paper's
    scalar calculus exactly — [||] is max, [;] is plus, [⊖] is minus — and
    reproduces Example 2 literally; the resource-descriptor calculus of
    {!Descriptor} generalizes it with contention. *)

type t = { tf : float; tl : float }
(** Invariant: [0 <= tf <= tl]. *)

val make : tf:float -> tl:float -> t
(** Raises [Invalid_argument] if the invariant is violated. *)

val zero : t

val par : float -> float -> float
(** [t1 || t2 = max t1 t2] — independent parallel execution. *)

val seq : float -> float -> float
(** [t1 ; t2 = t1 + t2] — sequential execution. *)

val residual : float -> float -> float
(** [t1 ⊖ t2 ~ t1 - t2] — the residual after the materialized front. *)

val sync : t -> t
(** Materialized execution: [sync (tf, tl) = (tl, tl)]. *)

val pipe : t -> t -> t
(** [pipe p c] is the paper's [p | c]:
    [tf = pf ; cf] and [tl = pf ; cf ; ((pl ⊖ pf) || (cl ⊖ cf))]. *)

val dseq : t -> t -> t
(** Sequential composition of descriptors, component-wise. *)

val tree : t -> t -> t -> t
(** [tree l r root]: materialized fronts of [l] and [r] in parallel, then
    their residuals pipelined together, then piped into [root] — the
    [tree(L, R, root)] operator of §5.1. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
