(** Plan explanation: the paper's Example-1-style annotation table plus
    per-node cost descriptors — an EXPLAIN ANALYZE for operator trees.

    Each row describes one operator: its annotations (cloning degree,
    composition method, whether an exchange redistributes its input — the
    three annotations of §4.2), the estimated cardinality, its own base
    descriptor cost and the cumulative descriptor of its subtree. *)

type row = {
  depth : int;  (** nesting level, for indented rendering *)
  operator : string;
  cloning : int;
  composition : string;  (** "pipelined" or "materialized" *)
  redistributes : bool;  (** the node is an exchange *)
  cardinality : float;
  own_work : float;  (** work of this operator's base descriptor *)
  subtree_rt : float;  (** response time of the subtree rooted here *)
  subtree_first : float;  (** first-tuple time of the subtree *)
}

val rows : Env.t -> Parqo_optree.Op.node -> row list
(** Preorder. *)

val table : Env.t -> Parqo_optree.Op.node -> Parqo_util.Tableau.t
(** The rows as a printable table. *)

val render : Env.t -> Parqo_optree.Op.node -> string

val explain_plan : Env.t -> Parqo_plan.Join_tree.t -> string
(** Expand and render, with a cost summary line. *)
