type t = { rf : Rvec.t; rl : Rvec.t }

type delta_mode = Stretch_time | Scale_all

type params = { delta_k : float; delta_mode : delta_mode }

let params ?(delta_mode = Stretch_time) delta_k =
  if delta_k < 0. then invalid_arg "Descriptor.params: delta_k < 0";
  { delta_k; delta_mode }

let of_machine (m : Parqo_machine.Machine.t) =
  params
    ~delta_mode:
      (if m.params.delta_scales_work then Scale_all else Stretch_time)
    m.params.pipeline_delta_k

let make ~rf ~rl =
  if rf.Rvec.time > rl.Rvec.time +. 1e-9 then
    invalid_arg "Descriptor.make: first tuple after last";
  { rf; rl }

let zero dim = { rf = Rvec.zero dim; rl = Rvec.zero dim }

let atomic usage =
  { rf = Rvec.zero (Parqo_util.Vecf.dim usage.Rvec.work); rl = usage }

let blocking usage = { rf = usage; rl = usage }
let sync d = { rf = d.rl; rl = d.rl }

let delta p r1 r2 =
  let t1 = r1.Rvec.time and t2 = r2.Rvec.time in
  let hi = t1 +. t2 and lo = Float.max t1 t2 in
  if hi -. lo <= 1e-12 then 1.
  else begin
    let t' = (Rvec.par r1 r2).Rvec.time in
    let factor = 1. +. (p.delta_k *. (t' -. lo) /. (hi -. lo)) in
    Float.min (1. +. p.delta_k) (Float.max 1. factor)
  end

let apply_delta p factor r =
  match p.delta_mode with
  | Stretch_time -> Rvec.stretch factor r
  | Scale_all -> Rvec.scale_all factor r

let pipe p producer consumer =
  let rf = Rvec.seq producer.rf consumer.rf in
  let residual_p = Rvec.residual producer.rl producer.rf in
  let residual_c = Rvec.residual consumer.rl consumer.rf in
  let overlap = Rvec.par residual_p residual_c in
  let penalized = apply_delta p (delta p residual_p residual_c) overlap in
  { rf; rl = Rvec.seq rf penalized }

let dseq a b = { rf = Rvec.seq a.rf b.rf; rl = Rvec.seq a.rl b.rl }

let tree p l r root =
  let dim = Parqo_util.Vecf.dim l.rf.Rvec.work in
  let front = Rvec.par l.rf r.rf in
  let t1 = { rf = front; rl = front } in
  let residual d = { rf = Rvec.zero dim; rl = Rvec.residual d.rl d.rf } in
  let t2 = dseq t1 (pipe p (residual l) (residual r)) in
  pipe p t2 root

let response_time d = d.rl.Rvec.time
let first_tuple_time d = d.rf.Rvec.time
let work d = Rvec.total_work d.rl
let work_vector d = d.rl.Rvec.work

let equal ?eps a b = Rvec.equal ?eps a.rf b.rf && Rvec.equal ?eps a.rl b.rl

let pp ppf d =
  Format.fprintf ppf "{first=%a; last=%a}" Rvec.pp d.rf Rvec.pp d.rl
