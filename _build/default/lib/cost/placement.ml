module M = Parqo_machine.Machine
module R = Parqo_machine.Resource

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let cpus_for m ~clone =
  if clone < 1 then invalid_arg "Placement.cpus_for: clone < 1";
  take clone (M.cpu_ids m)

let effective_clone m clone =
  let n = List.length (M.cpu_ids m) in
  if n = 0 then 1 else min clone n

let disks_for_table m (t : Parqo_catalog.Table.t) =
  let disks = M.disk_ids m in
  match disks with
  | [] -> []
  | _ ->
    let n = List.length disks in
    List.map (fun d -> List.nth disks (d mod n)) t.Parqo_catalog.Table.disks
    |> List.sort_uniq compare

let disk_for_index m (i : Parqo_catalog.Index.t) =
  let disks = M.disk_ids m in
  match disks with
  | [] -> None
  | _ -> Some (List.nth disks (i.Parqo_catalog.Index.disk mod List.length disks))

let spill_disks m ~cpus =
  let disks = M.disk_ids m in
  match disks with
  | [] -> []
  | _ ->
    let n = List.length disks in
    List.mapi
      (fun i cpu_id ->
        let cpu = M.resource m cpu_id in
        match M.node_disk m cpu.R.node with
        | d -> d.R.id
        | exception Not_found -> List.nth disks (i mod n))
      cpus
    |> List.sort_uniq compare

let network m = Option.map (fun r -> r.R.id) (M.network m)
