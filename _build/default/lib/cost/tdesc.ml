type t = { tf : float; tl : float }

let make ~tf ~tl =
  if tf < 0. || tl < tf then invalid_arg "Tdesc.make: need 0 <= tf <= tl";
  { tf; tl }

let zero = { tf = 0.; tl = 0. }
let par t1 t2 = Float.max t1 t2
let seq t1 t2 = t1 +. t2
let residual t1 t2 = Float.max 0. (t1 -. t2)
let sync d = { tf = d.tl; tl = d.tl }

let pipe p c =
  let tf = seq p.tf c.tf in
  let tl = seq tf (par (residual p.tl p.tf) (residual c.tl c.tf)) in
  { tf; tl }

let dseq a b = { tf = seq a.tf b.tf; tl = seq a.tl b.tl }

let tree l r root =
  let front = par l.tf r.tf in
  let t1 = { tf = front; tl = front } in
  let residual_l = { tf = 0.; tl = residual l.tl l.tf } in
  let residual_r = { tf = 0.; tl = residual r.tl r.tf } in
  let t2 = dseq t1 (pipe residual_l residual_r) in
  pipe t2 root

let equal ?(eps = 1e-9) a b =
  Float.abs (a.tf -. b.tf) <= eps && Float.abs (a.tl -. b.tl) <= eps

let pp ppf d = Format.fprintf ppf "(%g, %g)" d.tf d.tl
