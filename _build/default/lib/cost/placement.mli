(** Deterministic mapping from operators to machine resources.

    The paper's cloning annotation names an explicit resource set; the
    optimizer needs a policy to pick those sets.  This one is the simplest
    judicious choice: the first [k] CPUs host a degree-[k] clone, sorts
    spill to each CPU's site-local disk, and abstract catalog disk indexes
    map round-robin onto the machine's disks. *)

val cpus_for : Parqo_machine.Machine.t -> clone:int -> int list
(** Resource ids of the CPUs executing a degree-[clone] operator: the
    [min clone n_cpus] lowest-id CPUs; [[]] on a machine without CPUs
    (CPU work is then not modeled, as in the paper's Example 3). *)

val effective_clone : Parqo_machine.Machine.t -> int -> int
(** Clone degree clamped to the number of CPUs (at least 1). *)

val disks_for_table :
  Parqo_machine.Machine.t -> Parqo_catalog.Table.t -> int list
(** Resource ids of the disks holding the table's partitions. *)

val disk_for_index :
  Parqo_machine.Machine.t -> Parqo_catalog.Index.t -> int option
(** Resource id of the index's disk; [None] on a diskless machine. *)

val spill_disks : Parqo_machine.Machine.t -> cpus:int list -> int list
(** One disk per executing CPU for sort spills: the CPU's site-local disk
    when it exists, else disks round-robin; [[]] without disks. *)

val network : Parqo_machine.Machine.t -> int option
(** Resource id of the interconnect, if any. *)
