lib/cost/rvec.ml: Array Float Format List Parqo_util
