lib/cost/explain.mli: Env Parqo_optree Parqo_plan Parqo_util
