lib/cost/env.ml: Descriptor Parqo_machine Parqo_optree Parqo_plan Parqo_query
