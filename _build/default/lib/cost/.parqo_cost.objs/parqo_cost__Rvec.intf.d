lib/cost/rvec.mli: Format Parqo_util
