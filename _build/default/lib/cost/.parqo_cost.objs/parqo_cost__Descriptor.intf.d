lib/cost/descriptor.mli: Format Parqo_machine Parqo_util Rvec
