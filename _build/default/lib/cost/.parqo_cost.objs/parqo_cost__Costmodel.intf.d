lib/cost/costmodel.mli: Descriptor Env Format Parqo_optree Parqo_plan
