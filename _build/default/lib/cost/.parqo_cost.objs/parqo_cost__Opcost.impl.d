lib/cost/opcost.ml: Descriptor Float List Parqo_catalog Parqo_machine Parqo_optree Parqo_plan Placement Printf Rvec
