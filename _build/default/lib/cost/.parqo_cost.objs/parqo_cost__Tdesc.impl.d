lib/cost/tdesc.ml: Float Format
