lib/cost/placement.ml: List Option Parqo_catalog Parqo_machine
