lib/cost/explain.ml: Costmodel Descriptor Env List Opcost Parqo_optree Parqo_plan Parqo_util Printf String
