lib/cost/descriptor.ml: Float Format Parqo_machine Parqo_util Rvec
