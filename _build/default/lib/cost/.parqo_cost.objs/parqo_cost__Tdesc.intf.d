lib/cost/tdesc.mli: Format
