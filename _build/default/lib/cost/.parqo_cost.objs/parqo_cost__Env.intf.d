lib/cost/env.mli: Descriptor Parqo_catalog Parqo_machine Parqo_optree Parqo_plan Parqo_query
