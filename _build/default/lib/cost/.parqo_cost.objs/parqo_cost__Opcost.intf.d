lib/cost/opcost.mli: Descriptor Parqo_machine Parqo_optree Parqo_plan
