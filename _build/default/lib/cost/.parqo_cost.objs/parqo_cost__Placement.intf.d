lib/cost/placement.mli: Parqo_catalog Parqo_machine
