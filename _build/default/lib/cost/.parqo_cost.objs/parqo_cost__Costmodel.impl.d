lib/cost/costmodel.ml: Descriptor Env Format List Opcost Parqo_optree Parqo_plan Parqo_query
