(* Bechamel micro-benchmarks: one Test per core operation and one per
   experiment-scale search, timed with the monotonic clock. *)

open Bechamel
open Toolkit

let make_tests () =
  let env = Common.shape_env Parqo.Query_gen.Chain 4 in
  let tree =
    Parqo.Join_tree.join Parqo.Join_method.Hash_join
      ~outer:
        (Parqo.Join_tree.join Parqo.Join_method.Sort_merge
           ~outer:(Parqo.Join_tree.access 0) ~inner:(Parqo.Join_tree.access 1))
      ~inner:(Parqo.Join_tree.access 2)
  in
  let clique6 = Common.shape_env Parqo.Query_gen.Clique 6 in
  let metric = Parqo.Optimizer.default_metric env in
  let parallel_cfg =
    { (Parqo.Space.parallel_config env.Parqo.Env.machine) with
      Parqo.Space.clone_degrees = [ 1; 2; 4 ] }
  in
  let optree = Parqo.Expand.expand env.Parqo.Env.estimator tree in
  let graph = Parqo.Task_graph.of_optree env optree in
  let rng = Parqo.Rng.create 1 in
  let points =
    List.init 256 (fun _ -> Array.init 4 (fun _ -> Parqo.Rng.float rng 1.))
  in
  let dom4 a b =
    let rec go i = i >= 4 || (a.(i) <= b.(i) && go (i + 1)) in
    go 0
  in
  [
    Test.make ~name:"cost/evaluate (3-way plan)"
      (Staged.stage (fun () -> ignore (Parqo.Costmodel.evaluate env tree)));
    Test.make ~name:"optree/expand (3-way plan)"
      (Staged.stage (fun () ->
           ignore (Parqo.Expand.expand env.Parqo.Env.estimator tree)));
    Test.make ~name:"sim/run (3-way plan)"
      (Staged.stage (fun () -> ignore (Parqo.Simulator.run graph)));
    Test.make ~name:"cover/pareto (256 pts, 4 dims)"
      (Staged.stage (fun () ->
           ignore (Parqo.Cover.pareto ~dominates:dom4 points)));
    Test.make ~name:"search/DP-work clique-6 (Table 1)"
      (Staged.stage (fun () ->
           ignore (Parqo.Dp.optimize ~config:Parqo.Space.minimal_config clique6)));
    Test.make ~name:"search/poDP chain-4 parallel space"
      (Staged.stage (fun () ->
           ignore
             (Parqo.Podp.optimize ~config:parallel_cfg ~metric ~max_cover:32 env)));
    Test.make ~name:"search/bushy-DP-work clique-6"
      (Staged.stage (fun () ->
           ignore
             (Parqo.Bushy.optimize_scalar ~config:Parqo.Space.minimal_config clique6)));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results =
    List.map (fun test -> Benchmark.all cfg instances test)
      (List.map (fun t -> Test.make_grouped ~name:"parqo" ~fmt:"%s %s" [ t ])
         (make_tests ()))
  in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun raw ->
      Hashtbl.iter (fun k v -> Hashtbl.replace merged k v) raw)
    raw_results;
  List.map (fun instance -> Analyze.all ols instance merged) instances
  |> Analyze.merge ols instances

let run () =
  Common.header "Micro-benchmarks (bechamel, monotonic clock)" [];
  let results = benchmark () in
  let open Notty_unix in
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  eol img |> output_image;
  print_newline ()
