(* E13 — one-phase vs two-phase parallel optimization.

   XPRS [HS91] optimizes in two phases (best sequential plan, then
   parallelize it); the paper argues this is only safe under XPRS's
   architectural assumptions and proposes one-phase search instead.  Here
   both run over the same annotation space: the gap is the price of
   fixing the join order before thinking about parallelism. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel

let run () =
  Common.header "E13 — one-phase (this paper) vs two-phase (XPRS [HS91])"
    [
      "same machine, same annotation space; 'gap' = two-phase RT / one-";
      "phase RT (1.0 = two-phase loses nothing).";
    ];
  let tbl =
    T.create ~title:"H13. response time: one-phase vs two-phase"
      ~columns:
        [
          ("query", T.Right);
          ("n", T.Right);
          ("machine", T.Left);
          ("sequential RT", T.Right);
          ("two-phase RT", T.Right);
          ("one-phase RT", T.Right);
          ("gap", T.Right);
        ]
  in
  let machines =
    [
      ("shared-nothing x4", fun () -> Parqo.Machine.shared_nothing ~nodes:4 ());
      ("shared-memory 4c/4d", fun () -> Parqo.Machine.shared_memory ~cpus:4 ~disks:4 ());
    ]
  in
  List.iter
    (fun (shape, n) ->
      List.iter
        (fun (mname, mk) ->
          let machine = mk () in
          let catalog, query =
            Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
          in
          let env = Parqo.Env.create ~machine ~catalog ~query () in
          let config =
            { (Parqo.Space.parallel_config machine) with
              Parqo.Space.clone_degrees = [ 1; 2; 4 ] }
          in
          let two = Parqo.Twophase.optimize ~config env in
          let metric = Parqo.Optimizer.default_metric env in
          let one = Parqo.Podp.optimize ~config ~metric ~max_cover:32 env in
          match (two.Parqo.Twophase.best, two.Parqo.Twophase.sequential,
                 one.Parqo.Podp.best)
          with
          | Some t, Some s, Some o ->
            T.add_row tbl
              [
                Parqo.Query_gen.shape_to_string shape;
                Common.celli n;
                mname;
                Common.cell s.Cm.response_time;
                Common.cell t.Cm.response_time;
                Common.cell o.Cm.response_time;
                Common.cell ~decimals:3 (t.Cm.response_time /. o.Cm.response_time);
              ]
          | _ -> ())
        machines)
    [
      (Parqo.Query_gen.Chain, 4);
      (Parqo.Query_gen.Star, 4);
      (Parqo.Query_gen.Cycle, 5);
      (Parqo.Query_gen.Clique, 4);
    ];
  (* the Example 3 setting: placement-induced contention, where fixing
     the phase-1 plan before looking at resources is most dangerous *)
  let catalog, query, machine = Parqo.Scenarios.ctr_ci () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let config = Parqo.Space.default_config in
  let two = Parqo.Twophase.optimize ~config env in
  let metric = Parqo.Metric.descriptor machine Parqo.Machine.Per_resource in
  let one = Parqo.Podp.optimize ~config ~metric env in
  (match (two.Parqo.Twophase.best, two.Parqo.Twophase.sequential, one.Parqo.Podp.best) with
  | Some t, Some s, Some o ->
    T.add_rule tbl;
    T.add_row tbl
      [
        "ctr/ci";
        "2";
        "two disks (Ex. 3)";
        Common.cell s.Cm.response_time;
        Common.cell t.Cm.response_time;
        Common.cell o.Cm.response_time;
        Common.cell ~decimals:3 (t.Cm.response_time /. o.Cm.response_time);
      ]
  | _ -> ());
  T.print tbl
