(* E12 — join-method crossover: who wins a two-way equi-join as the outer
   cardinality grows, against a fixed 100k-row inner with a clustered
   index on the key.

   Expected shape: index nested loops wins tiny outers (a handful of
   probes beats building a 100k hash table), hash join takes over as
   probes accumulate, and sort-merge rides the inner's interesting order
   (no inner sort needed) to stay competitive throughout — the classic
   System-R-style crossover, reproduced by the parallel cost model. *)

module T = Parqo.Tableau
module J = Parqo.Join_tree
module M = Parqo.Join_method
module Cm = Parqo.Costmodel

let catalog_for outer_card =
  let col distinct lo hi = Parqo.Stats.column ~distinct ~min_v:lo ~max_v:hi () in
  Parqo.Catalog.create
    ~tables:
      [
        Parqo.Table.create ~name:"outer_t"
          ~columns:
            [ ("k", col (Float.max 2. (outer_card /. 2.)) 0. 99_999.);
              ("pay", col 100. 0. 99.) ]
          ~cardinality:outer_card ~disks:[ 0 ] ();
        Parqo.Table.create ~name:"inner_t"
          ~columns:[ ("k", col 50_000. 0. 99_999.); ("pay", col 100. 0. 99.) ]
          ~cardinality:100_000. ~disks:[ 1 ] ();
      ]
    ~indexes:
      [
        Parqo.Index.create ~name:"inner_k" ~table:"inner_t" ~columns:[ "k" ]
          ~clustered:true ~disk:1 ();
        Parqo.Index.create ~name:"outer_k" ~table:"outer_t" ~columns:[ "k" ]
          ~clustered:true ~disk:0 ();
      ]

let query =
  Parqo.Query.create
    ~relations:[ ("o", "outer_t"); ("i", "inner_t") ]
    ~joins:
      [
        {
          Parqo.Query.left = { Parqo.Query.rel = 0; column = "k" };
          right = { Parqo.Query.rel = 1; column = "k" };
        };
      ]
    ()

let run () =
  Common.header "E12 — join method crossover vs outer cardinality"
    [
      "fixed 100k-row inner with a clustered key index; the outer grows.";
      "RT of the best plan per method; 'chosen' is the optimizer's pick";
      "over the full space.";
    ];
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let tbl =
    T.create ~title:"M12. best response time per join method"
      ~columns:
        [
          ("outer rows", T.Right);
          ("NL (best)", T.Right);
          ("hash (best)", T.Right);
          ("sort-merge (best)", T.Right);
          ("chosen", T.Left);
        ]
  in
  List.iter
    (fun outer_card ->
      let catalog = catalog_for outer_card in
      let env = Parqo.Env.create ~machine ~catalog ~query () in
      let base = Parqo.Space.parallel_config machine in
      let best_for methods =
        let config = { base with Parqo.Space.methods } in
        match
          (Parqo.Optimizer.minimize_response_time ~config env).Parqo.Optimizer.best
        with
        | Some (e : Cm.eval) -> e
        | None -> failwith "no plan"
      in
      let nl = best_for [ M.Nested_loops ] in
      let hj = best_for [ M.Hash_join ] in
      let sm = best_for [ M.Sort_merge ] in
      let all = best_for M.all in
      let chosen =
        match all.Cm.tree with
        | J.Join j -> M.to_string j.J.method_
        | J.Access _ -> "-"
      in
      T.add_row tbl
        [
          Common.cell outer_card;
          Common.cell nl.Cm.response_time;
          Common.cell hj.Cm.response_time;
          Common.cell sm.Cm.response_time;
          chosen;
        ])
    [ 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ];
  T.print tbl
