(* Random annotated join trees for fidelity sampling: drawn from the
   library's own generator over the machine's parallel space. *)

let random_tree rng (env : Parqo.Env.t) =
  let config =
    {
      (Parqo.Space.parallel_config env.Parqo.Env.machine) with
      Parqo.Space.materialize_choices = true;
    }
  in
  Parqo.Random_plans.random_tree rng env config
