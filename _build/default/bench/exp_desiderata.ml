(* E5 — the §5 cost-model desiderata:
   1. IPE degrades to SE with resource contention;
   2. DPE spans [IPE, worse-than-SE] depending on contention and delta;
   3. CPE tracks IPE of the clones. *)

module T = Parqo.Tableau
module D = Parqo.Descriptor
module R = Parqo.Rvec
module V = Parqo.Vecf

let two_ops overlap =
  (* two 10-unit operators; [overlap] of the second op's work shares the
     first op's resource *)
  let a = R.make ~time:10. ~work:(V.of_array [| 10.; 0. |]) in
  let b =
    R.make ~time:10. ~work:(V.of_array [| 10. *. overlap; 10. *. (1. -. overlap) |])
  in
  (a, b)

let run () =
  Common.header "E5 — cost-model desiderata (§5)"
    [
      "two 10-unit operators; 'overlap' = fraction of shared resource.";
      "IPE = independent parallel, SE = sequential, DPE = pipelined with";
      "delta(k) penalty (k = 0.5).";
    ];
  let tbl =
    T.create ~title:"D5. IPE / DPE / SE response times vs contention"
      ~columns:
        [
          ("overlap", T.Right);
          ("IPE", T.Right);
          ("SE", T.Right);
          ("DPE (k=0.5)", T.Right);
          ("regime", T.Left);
        ]
  in
  let params = D.params 0.5 in
  List.iter
    (fun overlap ->
      let a, b = two_ops overlap in
      let ipe = R.response_time (R.par a b) in
      let se = R.response_time (R.seq a b) in
      let dpe =
        D.response_time (D.pipe params (D.atomic a) (D.atomic b))
      in
      let regime =
        if dpe <= ipe +. 1e-9 then "DPE = IPE (free parallelism)"
        else if dpe <= se +. 1e-9 then "IPE < DPE <= SE"
        else "DPE worse than SE (penalty)"
      in
      T.add_row tbl
        [
          Common.cell overlap;
          Common.cell ipe;
          Common.cell se;
          Common.cell dpe;
          regime;
        ])
    [ 0.; 0.25; 0.5; 0.75; 1.0 ];
  T.print tbl;
  (* desideratum 3: cloning *)
  let tbl2 =
    T.create ~title:"D5b. CPE: a 16-unit operator cloned k ways (overhead 2%)"
      ~columns:[ ("k", T.Right); ("RT(CPE)", T.Right); ("ideal 16/k", T.Right) ]
  in
  List.iter
    (fun k ->
      let r =
        R.of_demands 16
          (List.init k (fun i -> (i, 16. /. float_of_int k)))
          ~lanes:k ~overhead:0.02
      in
      T.add_row tbl2
        [
          Common.celli k;
          Common.cell (R.response_time r);
          Common.cell (16. /. float_of_int k);
        ])
    [ 1; 2; 4; 8; 16 ];
  T.print tbl2
