(* E2 / E3 — the paper's worked examples, recomputed. *)

module T = Parqo.Tableau
module Sc = Parqo.Scenarios

let example2 () =
  let tbl =
    T.create ~title:"E2. Example 2 — time-descriptor calculus (paper's exact numbers)"
      ~columns:
        [
          ("operator", T.Left);
          ("(tf,tl) base", T.Left);
          ("(tf,tl) computed", T.Left);
          ("paper", T.Left);
          ("match", T.Left);
        ]
  in
  let expected =
    [
      ("scan R1", (0., 1.));
      ("scan R2", (0., 3.));
      ("scan R3", (0., 2.));
      ("sort1", (6., 6.));
      ("sort2", (13., 13.));
      ("merge", (13., 15.));
      ("n.loops", (13., 15.));
    ]
  in
  List.iter
    (fun (r : Sc.example2_row) ->
      let etf, etl = List.assoc r.Sc.operator expected in
      let matches =
        r.Sc.computed.Parqo.Tdesc.tf = etf && r.Sc.computed.Parqo.Tdesc.tl = etl
      in
      T.add_row tbl
        [
          r.Sc.operator;
          Printf.sprintf "(%g,%g)" r.Sc.base.Parqo.Tdesc.tf r.Sc.base.Parqo.Tdesc.tl;
          Printf.sprintf "(%g,%g)" r.Sc.computed.Parqo.Tdesc.tf
            r.Sc.computed.Parqo.Tdesc.tl;
          Printf.sprintf "(%g,%g)" etf etl;
          (if matches then "yes" else "NO");
        ])
    (Sc.example2 ());
  T.print tbl

let example3 () =
  let e = Sc.example3 () in
  let tbl =
    T.create
      ~title:
        "E3. Example 3 — response time violates the principle of optimality"
      ~columns:
        [ ("plan", T.Left); ("RT computed", T.Right); ("RT paper", T.Right) ]
  in
  T.add_row tbl [ "p1 = indexScan(I_CT)"; Common.cell e.Sc.rt_p1; "20" ];
  T.add_row tbl [ "p2 = indexScan(I_CR)"; Common.cell e.Sc.rt_p2; "25" ];
  T.add_row tbl [ "NL(p1, indexScan(I_C))"; Common.cell e.Sc.rt_join_p1; "60" ];
  T.add_row tbl [ "NL(p2, indexScan(I_C))"; Common.cell e.Sc.rt_join_p2; "40" ];
  T.print tbl;
  Printf.printf
    "  p1 beats p2 standalone (%g < %g) yet loses after the join (%g > %g):\n\
    \  principle of optimality violated = %b\n\n"
    e.Sc.rt_p1 e.Sc.rt_p2 e.Sc.rt_join_p1 e.Sc.rt_join_p2
    (Sc.example3_violates_po ());
  (* end-to-end through the full cost model on the CTR/CI database *)
  let catalog, query, machine = Sc.ctr_ci () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let objective (e : Parqo.Costmodel.eval) = e.Parqo.Costmodel.response_time in
  let naive = Parqo.Dp.optimize ~objective env in
  let metric = Parqo.Metric.descriptor machine Parqo.Machine.Per_resource in
  let po = Parqo.Podp.optimize ~metric env in
  let brute = Parqo.Brute.leftdeep ~objective env in
  let rt = function
    | Some (e : Parqo.Costmodel.eval) -> e.Parqo.Costmodel.response_time
    | None -> nan
  in
  let tbl2 =
    T.create
      ~title:"E3b. Search on the CTR/CI database (full cost model, two disks)"
      ~columns:[ ("algorithm", T.Left); ("best RT found", T.Right) ]
  in
  T.add_row tbl2 [ "Figure 1 DP with naive RT metric"; Common.cell (rt naive.Parqo.Dp.best) ];
  T.add_row tbl2 [ "Figure 2 partial-order DP"; Common.cell (rt po.Parqo.Podp.best) ];
  T.add_row tbl2 [ "exhaustive (ground truth)"; Common.cell (rt brute.Parqo.Brute.best) ];
  T.print tbl2

let run () =
  Common.header "E2/E3 — worked examples of the paper" [];
  example2 ();
  example3 ()
