(* E8 — evaluation of pruning-metric alternatives (§6.3, called for in
   §7): cover sizes, search cost and plan quality per metric, and the
   effect of dimensionality l. *)

module T = Parqo.Tableau
module Mt = Parqo.Metric
module Cm = Parqo.Costmodel
module Stats = Parqo.Search_stats

let run () =
  Common.header "E8 — pruning metric alternatives (§6.3)"
    [
      "chain query, 4 relations, 4 nodes, parallel annotation space.";
      "'quality' = best RT found / exhaustive optimum (1.0 = optimal).";
    ];
  let env = Common.shape_env Parqo.Query_gen.Chain 4 in
  let machine = env.Parqo.Env.machine in
  (* a space small enough for the exhaustive ground truth (~170k plans)
     while keeping all three methods, index choices and real cloning *)
  let config =
    {
      (Parqo.Space.parallel_config machine) with
      Parqo.Space.clone_degrees = [ 1; 4 ];
      materialize_choices = false;
    }
  in
  (* exhaustive ground truth over the same space *)
  let truth, truth_time =
    Common.timed (fun () ->
        Parqo.Brute.leftdeep ~config
          ~objective:(fun (e : Cm.eval) -> e.Cm.response_time)
          env)
  in
  let optimum =
    match truth.Parqo.Brute.best with
    | Some b -> b.Cm.response_time
    | None -> nan
  in
  let tbl =
    T.create ~title:"C8. partial-order DP per pruning metric"
      ~columns:
        [
          ("metric", T.Left);
          ("l (dims)", T.Right);
          ("cover max", T.Right);
          ("generated", T.Right);
          ("time (s)", T.Right);
          ("best RT", T.Right);
          ("quality", T.Right);
        ]
  in
  let probe = Cm.evaluate env (Parqo.Join_tree.access 0) in
  let metrics =
    [
      ("naive RT (total order)", Mt.response_time);
      ("work (total order)", Mt.work);
      ("resource-vector / single", Mt.resource_vector machine Parqo.Machine.Single);
      ("resource-vector / by-kind", Mt.resource_vector machine Parqo.Machine.By_kind);
      ("descriptor / single", Mt.descriptor machine Parqo.Machine.Single);
      ( "descriptor / single + order",
        Mt.with_ordering (Mt.descriptor machine Parqo.Machine.Single) );
      ("descriptor / by-kind", Mt.descriptor machine Parqo.Machine.By_kind);
    ]
  in
  List.iter
    (fun (name, metric) ->
      let r, secs =
        Common.timed (fun () -> Parqo.Podp.optimize ~config ~metric env)
      in
      match r.Parqo.Podp.best with
      | Some b ->
        T.add_row tbl
          [
            name;
            Common.celli (Mt.n_dims metric probe);
            Common.celli r.Parqo.Podp.stats.Stats.cover_max;
            Common.celli r.Parqo.Podp.stats.Stats.generated;
            Common.cell ~decimals:3 secs;
            Common.cell b.Cm.response_time;
            Common.cell ~decimals:4 (b.Cm.response_time /. optimum);
          ]
      | None -> ())
    metrics;
  T.add_rule tbl;
  T.add_row tbl
    [
      "exhaustive (ground truth)";
      "-";
      "-";
      Common.celli truth.Parqo.Brute.n_plans;
      Common.cell ~decimals:3 truth_time;
      Common.cell optimum;
      "1.0000";
    ];
  T.print tbl
