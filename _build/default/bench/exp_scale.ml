(* E11 — scaling the search (§7): at ten-plus relations exhaustive bushy
   search is out of reach and "non-exhaustive search algorithms may be
   imperative".  Compare exact DP, beam-bounded partial-order DP, greedy
   operator ordering and iterative improvement on growing queries:
   wall-clock effort vs the quality of the response time found. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel

let run () =
  Common.header "E11 — exact vs non-exhaustive search at scale (§7)"
    [
      "quality = RT found / best RT found by any algorithm on the instance;";
      "poDP beam-capped at 16 plans per subset; II = 8 restarts.";
    ];
  let tbl =
    T.create ~title:"X11. search algorithms at growing n"
      ~columns:
        [
          ("query", T.Right);
          ("n", T.Right);
          ("algorithm", T.Left);
          ("RT", T.Right);
          ("quality", T.Right);
          ("plans costed", T.Right);
          ("time (s)", T.Right);
        ]
  in
  List.iter
    (fun (shape, n) ->
      let env = Common.shape_env shape n in
      let config =
        { (Parqo.Space.parallel_config env.Parqo.Env.machine) with
          Parqo.Space.clone_degrees = [ 1; 4 ]; materialize_choices = false }
      in
      let metric = Parqo.Optimizer.default_metric env in
      let rng = Parqo.Rng.create 99 in
      let entries =
        [
          ( "DP work (Figure 1)",
            fun () ->
              let r = Parqo.Dp.optimize ~config env in
              (r.Parqo.Dp.best, r.Parqo.Dp.stats.Parqo.Search_stats.generated) );
          ( "poDP left-deep (beam 16)",
            fun () ->
              let r = Parqo.Podp.optimize ~config ~metric ~max_cover:16 env in
              (r.Parqo.Podp.best, r.Parqo.Podp.stats.Parqo.Search_stats.generated) );
          ( "poDP bushy (beam 8)",
            fun () ->
              (* O(3^n) splits x cover products: feasible to n = 6 here;
                 beyond that the paper's point stands — go non-exhaustive *)
              if n > 6 then (None, 0)
              else begin
                let r =
                  Parqo.Bushy.optimize_po ~config ~metric ~max_cover:8 env
                in
                (r.Parqo.Bushy.best, r.Parqo.Bushy.stats.Parqo.Search_stats.generated)
              end );
          ( "greedy",
            fun () ->
              let r = Parqo.Greedy.greedy ~config env in
              (r.Parqo.Greedy.best, r.Parqo.Greedy.evaluated) );
          ( "iterative improvement",
            fun () ->
              let r = Parqo.Greedy.iterative_improvement ~config ~rng env in
              (r.Parqo.Greedy.best, r.Parqo.Greedy.evaluated) );
        ]
      in
      let results =
        List.map
          (fun (name, f) ->
            let (best, costed), secs = Common.timed f in
            (name, best, costed, secs))
          entries
      in
      let best_rt =
        List.fold_left
          (fun acc (_, best, _, _) ->
            match best with
            | Some (e : Cm.eval) -> Float.min acc e.Cm.response_time
            | None -> acc)
          infinity results
      in
      List.iter
        (fun (name, best, costed, secs) ->
          match best with
          | Some (e : Cm.eval) ->
            T.add_row tbl
              [
                Parqo.Query_gen.shape_to_string shape;
                Common.celli n;
                name;
                Common.cell e.Cm.response_time;
                Common.cell ~decimals:3 (e.Cm.response_time /. best_rt);
                Common.celli costed;
                Common.cell ~decimals:3 secs;
              ]
          | None -> ())
        results;
      T.add_rule tbl)
    [
      (Parqo.Query_gen.Chain, 6);
      (Parqo.Query_gen.Star, 8);
      (Parqo.Query_gen.Chain, 10);
    ];
  T.print tbl
