(* E7 — left-deep vs bushy (§6.4): bushy trees offer more independent
   parallelism at a much larger search cost. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module Stats = Parqo.Search_stats

let run () =
  Common.header "E7 — left-deep vs bushy trees (§6.4)"
    [
      "partial-order DP over both spaces (bushy beam-capped at 24 per set);";
      "'considered' counts joinPlan/split invocations.";
    ];
  let tbl =
    T.create ~title:"B7. response time and search cost by tree shape"
      ~columns:
        [
          ("query", T.Right);
          ("n", T.Right);
          ("RT left-deep", T.Right);
          ("RT bushy", T.Right);
          ("bushy gain", T.Right);
          ("considered LD", T.Right);
          ("considered bushy", T.Right);
          ("space LD (n!)", T.Right);
          ("space bushy", T.Right);
        ]
  in
  List.iter
    (fun (shape, n) ->
      let env = Common.shape_env shape n in
      let config =
        { (Parqo.Space.parallel_config env.Parqo.Env.machine) with
          Parqo.Space.clone_degrees = [ 1; 2; 4 ] }
      in
      let metric = Parqo.Optimizer.default_metric env in
      let ld = Parqo.Podp.optimize ~config ~metric ~max_cover:24 env in
      let bushy = Parqo.Bushy.optimize_po ~config ~metric ~max_cover:24 env in
      match (ld.Parqo.Podp.best, bushy.Parqo.Bushy.best) with
      | Some l, Some b ->
        T.add_row tbl
          [
            Parqo.Query_gen.shape_to_string shape;
            Common.celli n;
            Common.cell l.Cm.response_time;
            Common.cell b.Cm.response_time;
            Printf.sprintf "%.1f%%"
              (100. *. (1. -. (b.Cm.response_time /. l.Cm.response_time)));
            Common.celli ld.Parqo.Podp.stats.Stats.considered;
            Common.celli bushy.Parqo.Bushy.stats.Stats.considered;
            Common.cell (Parqo.Combin.leftdeep_space n);
            Common.cell (Parqo.Combin.bushy_space n);
          ]
      | _ -> ())
    [
      (Parqo.Query_gen.Chain, 4);
      (Parqo.Query_gen.Chain, 5);
      (Parqo.Query_gen.Star, 4);
      (Parqo.Query_gen.Star, 5);
      (Parqo.Query_gen.Cycle, 5);
      (Parqo.Query_gen.Clique, 4);
    ];
  T.print tbl;
  Printf.printf
    "  At n = 10 the bushy space is %.1e vs %.1e left-deep — the \"three\n\
    \  orders of magnitude\" the paper quotes (ratio %.0fx).\n\n"
    (Parqo.Combin.bushy_space 10)
    (Parqo.Combin.leftdeep_space 10)
    (Parqo.Combin.bushy_space 10 /. Parqo.Combin.leftdeep_space 10)
