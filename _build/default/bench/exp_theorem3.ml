(* E4 — Theorem 3: expected cover-set size of m random points in l dims,
   Monte Carlo vs the paper's bound 2^l (1 - (1 - 2^-l)^m).

   Reproduction finding: the bound holds in the small-m regime but is
   exceeded for large m — for l = 2 the true expectation is the harmonic
   number H_m (unbounded), so the theorem cannot be a uniform bound on
   the full minimal-element set.  The paper itself flags its independence
   assumption as "likely to be optimistic". *)

module T = Parqo.Tableau

let mean_cover rng l m trials =
  let dom a b =
    let rec go i = i >= l || (a.(i) <= b.(i) && go (i + 1)) in
    go 0
  in
  let total = ref 0 in
  for _ = 1 to trials do
    let pts = List.init m (fun _ -> Array.init l (fun _ -> Parqo.Rng.float rng 1.)) in
    total := !total + List.length (Parqo.Cover.pareto ~dominates:dom pts)
  done;
  float_of_int !total /. float_of_int trials

let run () =
  Common.header "E4 / Theorem 3 — expected cover-set size"
    [
      "mean over 100 trials of the Pareto set of m uniform points in l dims;";
      "'bound' is the paper's 2^l(1-(1-2^-l)^m); H_m shown for l = 2.";
    ];
  let rng = Parqo.Rng.create 2024 in
  let tbl =
    T.create ~title:"T3. Monte Carlo vs Theorem 3 bound"
      ~columns:
        [
          ("l", T.Right);
          ("m", T.Right);
          ("measured mean", T.Right);
          ("paper bound", T.Right);
          ("within bound", T.Left);
          ("H_m (l=2 exact)", T.Right);
        ]
  in
  List.iter
    (fun (l, m) ->
      let mean = mean_cover rng l m 100 in
      let bound = Parqo.Combin.theorem3_bound ~l ~m in
      T.add_row tbl
        [
          Common.celli l;
          Common.celli m;
          Common.cell mean;
          Common.cell bound;
          (if mean <= bound +. 0.35 then "yes" else "EXCEEDED");
          (if l = 2 then Common.cell (Parqo.Combin.harmonic m) else "-");
        ])
    [
      (1, 4); (1, 64);
      (2, 4); (2, 16); (2, 64); (2, 256); (2, 1024);
      (3, 16); (3, 256);
      (4, 64); (4, 1024);
      (5, 256);
    ];
  T.print tbl
