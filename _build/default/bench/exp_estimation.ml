(* E14 — the estimator substrate: selectivity estimation error by
   histogram type and data skew, plus FK-join cardinality accuracy
   against materialized data.  The cost model is only as judicious as the
   cardinalities feeding it. *)

module T = Parqo.Tableau
module S = Parqo.Stats

let selection_error () =
  let rng = Parqo.Rng.create 404 in
  let n = 4000 in
  let datasets =
    [
      ("uniform", List.init n (fun _ -> Parqo.Rng.float rng 1000.));
      ( "zipf 1.0",
        List.init n (fun _ -> float_of_int (Parqo.Rng.zipf rng ~n:1000 ~theta:1.0)) );
      ( "zipf 1.3",
        List.init n (fun _ -> float_of_int (Parqo.Rng.zipf rng ~n:1000 ~theta:1.3)) );
    ]
  in
  let tbl =
    T.create
      ~title:"N14. mean |estimated - true| selectivity of range predicates"
      ~columns:
        [
          ("data", T.Left);
          ("no histogram", T.Right);
          ("equi-width (16)", T.Right);
          ("equi-depth (16)", T.Right);
        ]
  in
  List.iter
    (fun (label, values) ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let truth v =
        float_of_int (List.length (List.filter (fun x -> x <= v) values))
        /. float_of_int n
      in
      let probes =
        List.init 40 (fun _ -> lo +. Parqo.Rng.float rng (hi -. lo))
      in
      let error column =
        List.fold_left
          (fun acc v -> acc +. Float.abs (S.le_fraction column v -. truth v))
          0. probes
        /. float_of_int (List.length probes)
      in
      let flat =
        let c = S.of_values values in
        S.column ~distinct:c.S.distinct ~min_v:c.S.min_v ~max_v:c.S.max_v ()
      in
      T.add_row tbl
        [
          label;
          Common.cell ~decimals:4 (error flat);
          Common.cell ~decimals:4 (error (S.of_values ~buckets:16 values));
          Common.cell ~decimals:4 (error (S.of_values_equidepth ~buckets:16 values));
        ])
    datasets;
  T.print tbl

let join_cardinality () =
  let tbl =
    T.create ~title:"N14b. FK-join cardinality: estimated vs actual"
      ~columns:
        [
          ("chain length", T.Right);
          ("estimated", T.Right);
          ("actual", T.Right);
          ("ratio", T.Right);
        ]
  in
  List.iter
    (fun n ->
      let db, query = Parqo.Workloads.chain_db ~n ~rows:400 ~seed:77 () in
      let est = Parqo.Estimator.create db.Parqo.Datagen.catalog query in
      let predicted = Parqo.Estimator.card est (Parqo.Bitset.full n) in
      let actual =
        float_of_int (Parqo.Batch.n_rows (Parqo.Executor.reference db query))
      in
      T.add_row tbl
        [
          Common.celli n;
          Common.cell predicted;
          Common.cell actual;
          Common.cell ~decimals:3 (predicted /. actual);
        ])
    [ 2; 3; 4; 5 ];
  T.print tbl

let run () =
  Common.header "E14 — cardinality estimation quality (substrate check)" [];
  selection_error ();
  join_cardinality ()
