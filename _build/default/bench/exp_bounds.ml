(* E6 — minimize response time subject to a throughput-degradation bound
   (§2): sweeping the budget factor k traces the work / response-time
   tradeoff the paper's formulation exposes to the administrator. *)

module T = Parqo.Tableau
module Opt = Parqo.Optimizer
module Cm = Parqo.Costmodel

let sweep shape n =
  let env = Common.shape_env shape n in
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let tbl =
    T.create
      ~title:
        (Printf.sprintf "W6. RT vs work budget — %s query, %d relations, 4 nodes"
           (Parqo.Query_gen.shape_to_string shape)
           n)
      ~columns:
        [
          ("k (work budget)", T.Right);
          ("RT", T.Right);
          ("work", T.Right);
          ("work / W_opt", T.Right);
          ("RT / RT(W_opt plan)", T.Right);
        ]
  in
  let baseline = ref None in
  List.iter
    (fun k ->
      let bound =
        if Float.is_integer k && k > 100. then Parqo.Bounds.Unbounded
        else Parqo.Bounds.Throughput_degradation k
      in
      let o = Opt.minimize_response_time ~config ~bound env in
      match (o.Opt.best, o.Opt.work_optimal) with
      | Some b, Some w ->
        if !baseline = None then baseline := Some w;
        T.add_row tbl
          [
            (if bound = Parqo.Bounds.Unbounded then "unbounded" else Common.cell k);
            Common.cell b.Cm.response_time;
            Common.cell b.Cm.work;
            Common.cell ~decimals:3 (b.Cm.work /. w.Cm.work);
            Common.cell ~decimals:3 (b.Cm.response_time /. w.Cm.response_time);
          ]
      | _ -> T.add_row tbl [ Common.cell k; "-"; "-"; "-"; "-" ])
    [ 1.0; 1.1; 1.25; 1.5; 2.0; 3.0; 5.0; 1e9 ];
  T.print tbl

let run () =
  Common.header "E6 — response time subject to work bounds (§2, §6.4)"
    [
      "k = 1 forbids extra work (the traditional optimum); growing k buys";
      "response time with parallelism until the curve saturates.";
      "W_opt comes from Figure 1, which can itself miss the true work";
      "optimum because of interesting orders (§6.1.2) — a ratio slightly";
      "below 1 means the partial-order phase found a cheaper plan too.";
    ];
  sweep Parqo.Query_gen.Chain 4;
  sweep Parqo.Query_gen.Star 4
