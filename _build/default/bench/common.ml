(* Shared helpers for the experiment harness. *)

let cell = Parqo.Tableau.cell_float
let celli = Parqo.Tableau.cell_int

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let env_for ?(nodes = 4) ?machine catalog query =
  let machine =
    match machine with
    | Some m -> m
    | None -> Parqo.Machine.shared_nothing ~nodes ()
  in
  Parqo.Env.create ~machine ~catalog ~query ()

let shape_env ?nodes shape n =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
  in
  env_for ?nodes catalog query

let header title lines =
  Printf.printf "%s\n" (String.make 78 '=');
  Printf.printf "%s\n" title;
  List.iter (fun l -> Printf.printf "  %s\n" l) lines;
  Printf.printf "%s\n\n" (String.make 78 '=')
