(* E15 — robustness to cardinality misestimation: distort the statistics
   the optimizer sees (distinct-value counts scaled by a factor, which
   scales every join selectivity), optimize under the lie, then price the
   chosen plan under the true statistics.  Regret = chosen RT / best RT,
   both measured under the truth. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module C = Parqo_catalog

let distort_catalog factor catalog =
  let tables =
    List.map
      (fun (t : C.Table.t) ->
        let columns =
          Array.to_list t.C.Table.columns
          |> List.map (fun (name, (s : C.Stats.column)) ->
                 ( name,
                   C.Stats.column
                     ~distinct:(Float.max 1. (s.C.Stats.distinct *. factor))
                     ~min_v:s.C.Stats.min_v ~max_v:s.C.Stats.max_v () ))
        in
        C.Table.create ~name:t.C.Table.name ~columns
          ~cardinality:t.C.Table.cardinality ~disks:t.C.Table.disks ())
      (C.Catalog.tables catalog)
  in
  C.Catalog.create ~tables ~indexes:(C.Catalog.indexes catalog)

let run () =
  Common.header "E15 — plan robustness under misestimated statistics"
    [
      "distinct counts scaled by f (selectivities scaled by 1/f); plans";
      "chosen under the distorted catalog, priced under the true one.";
      "regret = chosen RT / true-optimal RT.";
    ];
  let tbl =
    T.create ~title:"R15. optimizer regret vs distortion factor"
      ~columns:
        [
          ("query", T.Left);
          ("f", T.Right);
          ("chosen RT (true)", T.Right);
          ("best RT (true)", T.Right);
          ("regret", T.Right);
        ]
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let config =
    { (Parqo.Space.parallel_config machine) with Parqo.Space.clone_degrees = [ 1; 2; 4 ] }
  in
  List.iter
    (fun (label, shape) ->
      let catalog, query =
        Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape 4)
      in
      let true_env = Parqo.Env.create ~machine ~catalog ~query () in
      let metric = Parqo.Optimizer.default_metric true_env in
      let true_best =
        match (Parqo.Podp.optimize ~config ~metric true_env).Parqo.Podp.best with
        | Some b -> b
        | None -> failwith "no plan"
      in
      List.iter
        (fun f ->
          let lying_env =
            Parqo.Env.create ~machine ~catalog:(distort_catalog f catalog)
              ~query ()
          in
          let chosen =
            match
              (Parqo.Podp.optimize ~config ~metric lying_env).Parqo.Podp.best
            with
            | Some b -> b
            | None -> failwith "no plan"
          in
          (* re-price the chosen tree under the truth *)
          let repriced = Cm.evaluate true_env chosen.Cm.tree in
          T.add_row tbl
            [
              label;
              Common.cell ~decimals:3 f;
              Common.cell repriced.Cm.response_time;
              Common.cell true_best.Cm.response_time;
              Common.cell ~decimals:3
                (repriced.Cm.response_time /. true_best.Cm.response_time);
            ])
        [ 0.125; 0.5; 1.0; 2.0; 8.0 ];
      T.add_rule tbl)
    [ ("chain-4", Parqo.Query_gen.Chain); ("star-4", Parqo.Query_gen.Star) ];
  T.print tbl
