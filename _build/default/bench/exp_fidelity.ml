(* E9 — cost-model fidelity: the optimizer's predicted response times vs
   the discrete-event simulator's makespans over random plans.  The
   optimizer only needs correct *ranking* (it compares plans), so rank
   correlation is the headline number. *)

module T = Parqo.Tableau
module Cm = Parqo.Costmodel
module Sim = Parqo.Simulator

let run () =
  Common.header "E9 — cost model vs execution simulator"
    [
      "random annotated plans over random queries; prediction = cost-model";
      "RT, observation = simulated makespan under processor sharing.";
    ];
  let rng = Parqo.Rng.create 314 in
  let tbl =
    T.create ~title:"S9. predicted vs simulated response time"
      ~columns:
        [
          ("machine", T.Left);
          ("plans", T.Right);
          ("spearman", T.Right);
          ("pearson", T.Right);
          ("median pred/sim", T.Right);
          ("work exact", T.Left);
        ]
  in
  List.iter
    (fun (label, machine) ->
      let predictions = ref [] and observations = ref [] in
      let work_exact = ref true in
      let samples = 120 in
      for _ = 1 to samples do
        let n = 2 + Parqo.Rng.int rng 3 in
        let catalog, query = Parqo.Query_gen.random rng ~n () in
        let env = Parqo.Env.create ~machine ~catalog ~query () in
        let tree = Helpers_bench.random_tree rng env in
        let e = Cm.evaluate env tree in
        let sim = Sim.simulate_plan env tree in
        predictions := e.Cm.response_time :: !predictions;
        observations := sim.Sim.makespan :: !observations;
        if
          not
            (Float.abs (e.Cm.work -. sim.Sim.total_work)
            <= 1e-6 *. Float.max 1. e.Cm.work)
        then work_exact := false
      done;
      let ratios =
        List.map2 (fun p o -> p /. o) !predictions !observations
      in
      T.add_row tbl
        [
          label;
          Common.celli samples;
          Common.cell ~decimals:3 (Parqo.Statsu.spearman !predictions !observations);
          Common.cell ~decimals:3 (Parqo.Statsu.pearson !predictions !observations);
          Common.cell ~decimals:3 (Parqo.Statsu.quantile 0.5 ratios);
          (if !work_exact then "yes" else "NO");
        ])
    [
      ("shared-nothing x4", Parqo.Machine.shared_nothing ~nodes:4 ());
      ("shared-nothing x8", Parqo.Machine.shared_nothing ~nodes:8 ());
      ("shared-memory 4c/2d", Parqo.Machine.shared_memory ~cpus:4 ~disks:2 ());
      ("sequential", Parqo.Machine.sequential ());
    ];
  T.print tbl
