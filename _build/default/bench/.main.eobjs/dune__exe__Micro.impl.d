bench/micro.ml: Analyze Array Bechamel Bechamel_notty Benchmark Common Hashtbl Instance List Measure Notty_unix Parqo Staged Test Time Toolkit Unix
