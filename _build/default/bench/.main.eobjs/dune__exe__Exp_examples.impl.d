bench/exp_examples.ml: Common List Parqo Printf
