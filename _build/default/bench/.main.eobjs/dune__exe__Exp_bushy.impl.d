bench/exp_bushy.ml: Common List Parqo Printf
