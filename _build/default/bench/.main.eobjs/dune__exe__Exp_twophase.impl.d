bench/exp_twophase.ml: Common List Parqo
