bench/exp_crossover.ml: Common Float List Parqo
