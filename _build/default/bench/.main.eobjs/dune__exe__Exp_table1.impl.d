bench/exp_table1.ml: Common List Parqo
