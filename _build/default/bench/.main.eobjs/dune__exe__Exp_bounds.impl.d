bench/exp_bounds.ml: Common Float List Parqo Printf
