bench/exp_scale.ml: Common Float List Parqo
