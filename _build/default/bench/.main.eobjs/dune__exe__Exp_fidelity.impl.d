bench/exp_fidelity.ml: Common Float Helpers_bench List Parqo
