bench/helpers_bench.ml: Parqo
