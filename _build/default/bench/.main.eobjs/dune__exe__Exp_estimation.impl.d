bench/exp_estimation.ml: Common Float List Parqo
