bench/exp_speedup.ml: Common List Parqo
