bench/common.ml: List Parqo Printf String Unix
