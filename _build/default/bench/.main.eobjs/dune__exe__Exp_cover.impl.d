bench/exp_cover.ml: Common List Parqo
