bench/main.mli:
