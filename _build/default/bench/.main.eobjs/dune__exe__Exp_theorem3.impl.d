bench/exp_theorem3.ml: Array Common List Parqo
