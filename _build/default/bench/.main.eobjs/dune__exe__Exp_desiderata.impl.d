bench/exp_desiderata.ml: Common List Parqo
