bench/exp_robustness.ml: Array Common Float List Parqo Parqo_catalog
