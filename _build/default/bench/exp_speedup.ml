(* E10 — the motivation experiment (§1): throwing processors at a
   decision-support query.  Cloning degree sweeps on a 16-node machine:
   predicted and simulated response time, speedup and efficiency, plus
   the extra work the parallel plan costs. *)

module T = Parqo.Tableau
module J = Parqo.Join_tree
module M = Parqo.Join_method
module Cm = Parqo.Costmodel
module Sim = Parqo.Simulator

let plan clone =
  J.join ~clone M.Hash_join
    ~outer:(J.join ~clone M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
    ~inner:(J.access 2)

let run () =
  Common.header "E10 — speedup from intra-operator parallelism (cloning)"
    [
      "chain query, 3 relations, hash-join plan cloned k ways on a 16-node";
      "shared-nothing machine; baseline k = 1.";
    ];
  let catalog, query =
    Parqo.Query_gen.generate
      { (Parqo.Query_gen.default_spec Parqo.Query_gen.Chain 3) with
        Parqo.Query_gen.base_card = 20_000.; n_disks = 16 }
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:16 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let base = Cm.evaluate env (plan 1) in
  let base_sim = Sim.simulate_plan env (plan 1) in
  let tbl =
    T.create ~title:"P10. response time vs cloning degree"
      ~columns:
        [
          ("k", T.Right);
          ("RT predicted", T.Right);
          ("speedup", T.Right);
          ("efficiency", T.Right);
          ("RT simulated", T.Right);
          ("sim speedup", T.Right);
          ("work / W(k=1)", T.Right);
        ]
  in
  List.iter
    (fun k ->
      let e = Cm.evaluate env (plan k) in
      let sim = Sim.simulate_plan env (plan k) in
      let speedup = base.Cm.response_time /. e.Cm.response_time in
      T.add_row tbl
        [
          Common.celli k;
          Common.cell e.Cm.response_time;
          Common.cell ~decimals:2 speedup;
          Common.cell ~decimals:2 (speedup /. float_of_int k);
          Common.cell sim.Sim.makespan;
          Common.cell ~decimals:2 (base_sim.Sim.makespan /. sim.Sim.makespan);
          Common.cell ~decimals:3 (e.Cm.work /. base.Cm.work);
        ])
    [ 1; 2; 4; 8; 16 ];
  T.print tbl
