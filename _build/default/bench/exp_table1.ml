(* E1 — Table 1 of the paper: time and space complexity of the six search
   algorithms, analytic columns next to measured counters.  Measured on
   clique queries (every subset connected), minimal config (one plan per
   join order) so the counters are in the paper's units. *)

module T = Parqo.Tableau
module S = Parqo.Space
module Stats = Parqo.Search_stats

let leftdeep () =
  let tbl =
    T.create ~title:"T1a. Table 1, left-deep trees (clique queries, measured vs analytic)"
      ~columns:
        [
          ("n", T.Right);
          ("space n! (analytic)", T.Right);
          ("brute plans (meas)", T.Right);
          ("DP time (analytic)", T.Right);
          ("DP considered (meas)", T.Right);
          ("DP space (analytic)", T.Right);
          ("DP stored (meas)", T.Right);
          ("poDP considered (meas)", T.Right);
          ("poDP cover max", T.Right);
        ]
  in
  List.iter
    (fun n ->
      let env = Common.shape_env Parqo.Query_gen.Clique n in
      let brute_plans =
        if n <= 7 then
          Common.cell
            (float_of_int
               (Parqo.Brute.leftdeep ~config:S.minimal_config env).Parqo.Brute.n_plans)
        else "-"
      in
      let dp = Parqo.Dp.optimize ~config:S.minimal_config env in
      let metric =
        Parqo.Metric.descriptor env.Parqo.Env.machine Parqo.Machine.Single
      in
      let podp = Parqo.Podp.optimize ~config:S.minimal_config ~metric env in
      T.add_row tbl
        [
          Common.celli n;
          Common.cell (Parqo.Combin.leftdeep_space n);
          brute_plans;
          Common.cell (Parqo.Combin.dp_leftdeep_time n);
          Common.celli dp.Parqo.Dp.stats.Stats.considered;
          Common.cell (Parqo.Combin.dp_leftdeep_space n);
          Common.celli dp.Parqo.Dp.stats.Stats.stored_peak;
          Common.celli podp.Parqo.Podp.stats.Stats.considered;
          Common.celli podp.Parqo.Podp.stats.Stats.cover_max;
        ])
    [ 2; 3; 4; 5; 6; 7; 8; 9 ];
  T.print tbl

let bushy () =
  let tbl =
    T.create ~title:"T1b. Table 1, bushy trees (clique queries, b = 0 for SPJ)"
      ~columns:
        [
          ("n", T.Right);
          ("space (2(n-1))!/(n-1)!", T.Right);
          ("brute plans (meas)", T.Right);
          ("DP time 3^n-2^(n+1)+n+1", T.Right);
          ("DP considered (meas)", T.Right);
          ("poDP considered (meas)", T.Right);
          ("poDP cover max", T.Right);
        ]
  in
  List.iter
    (fun n ->
      let env = Common.shape_env Parqo.Query_gen.Clique n in
      let brute_plans =
        if n <= 5 then
          Common.cell
            (float_of_int
               (Parqo.Brute.bushy ~config:S.minimal_config env).Parqo.Brute.n_plans)
        else "-"
      in
      let dp = Parqo.Bushy.optimize_scalar ~config:S.minimal_config env in
      let metric =
        Parqo.Metric.descriptor env.Parqo.Env.machine Parqo.Machine.Single
      in
      let podp =
        Parqo.Bushy.optimize_po ~config:S.minimal_config ~metric ~max_cover:32 env
      in
      T.add_row tbl
        [
          Common.celli n;
          Common.cell (Parqo.Combin.bushy_space n);
          brute_plans;
          Common.cell (Parqo.Combin.dp_bushy_time n ~b:0);
          Common.celli dp.Parqo.Bushy.stats.Stats.considered;
          Common.celli podp.Parqo.Bushy.stats.Stats.considered;
          Common.celli podp.Parqo.Bushy.stats.Stats.cover_max;
        ])
    [ 2; 3; 4; 5; 6; 7 ];
  T.print tbl

let run () =
  Common.header "E1 / Table 1 — comparison of search algorithms"
    [
      "Measured plan counters must match the analytic formulas exactly for";
      "DP (considered, stored) and brute force (plans); partial-order DP";
      "adds the cover-set factor the paper bounds by 2^l.";
    ];
  leftdeep ();
  bushy ()
