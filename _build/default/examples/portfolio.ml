(* The decision-support scenario from the paper's introduction: a stock
   portfolio analyst clicks a button; the system must answer a four-way
   star join interactively.  This example optimizes the query under
   different work budgets, executes the chosen plan on generated data,
   and verifies the answer against a reference execution.

   Run with: dune exec examples/portfolio.exe *)

module Cm = Parqo.Costmodel

let () =
  let db, query = Parqo.Workloads.portfolio ~scale:1 ~seed:2024 () in
  let catalog = db.Parqo.Datagen.catalog in
  Printf.printf "query: %s\n\n" (Parqo.Query.to_sql query);
  let machine = Parqo.Machine.shared_nothing ~nodes:8 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let config = Parqo.Space.parallel_config machine in
  (* sweep the administrator's throughput-degradation budget *)
  let tbl =
    Parqo.Tableau.create ~title:"portfolio: response time vs work budget"
      ~columns:
        [
          ("budget k", Parqo.Tableau.Right);
          ("response time", Parqo.Tableau.Right);
          ("work", Parqo.Tableau.Right);
          ("plan", Parqo.Tableau.Left);
        ]
  in
  let best_plan = ref None in
  List.iter
    (fun k ->
      let outcome =
        Parqo.Optimizer.minimize_response_time ~config
          ~bound:(Parqo.Bounds.Throughput_degradation k) env
      in
      match outcome.Parqo.Optimizer.best with
      | Some b ->
        best_plan := Some b;
        Parqo.Tableau.add_row tbl
          [
            Parqo.Tableau.cell_float k;
            Parqo.Tableau.cell_float b.Cm.response_time;
            Parqo.Tableau.cell_float b.Cm.work;
            Parqo.Join_tree.to_string b.Cm.tree;
          ]
      | None -> ())
    [ 1.0; 1.5; 2.0; 4.0 ];
  Parqo.Tableau.print tbl;
  (* execute the most aggressive plan on the actual rows *)
  match !best_plan with
  | None -> print_endline "no plan"
  | Some b ->
    let result = Parqo.Executor.run_query db query b.Cm.tree in
    let reference = Parqo.Executor.reference db query in
    Printf.printf "executed plan returns %d rows; matches reference: %b\n"
      (Parqo.Batch.n_rows result)
      (Parqo.Batch.equal_bags result reference);
    (* and simulate its parallel execution *)
    let sim = Parqo.Simulator.simulate_plan env b.Cm.tree in
    Printf.printf
      "simulated makespan %.2f (predicted %.2f), machine utilization %.0f%%\n"
      sim.Parqo.Simulator.makespan b.Cm.response_time
      (100. *. Parqo.Simulator.utilization sim)
