(* Decision support on a TPC-H-like database: optimize three analyst
   queries for response time, execute the chosen plans (in parallel, with
   real exchanges) and check them against the sequential executor.

   Run with: dune exec examples/tpch.exe *)

module Cm = Parqo.Costmodel
module W = Parqo.Workloads

let run_query name db query =
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env =
    Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query ()
  in
  Printf.printf "%s: %s\n" name (Parqo.Query.to_sql query);
  let config =
    { (Parqo.Space.parallel_config machine) with Parqo.Space.clone_degrees = [ 1; 2; 4 ] }
  in
  let outcome =
    Parqo.Optimizer.minimize_response_time ~config
      ~bound:(Parqo.Bounds.Throughput_degradation 2.0) env
  in
  match (outcome.Parqo.Optimizer.work_optimal, outcome.Parqo.Optimizer.best) with
  | Some wopt, Some best ->
    Printf.printf "  work-optimal : rt=%8.1f  work=%8.1f  %s\n"
      wopt.Cm.response_time wopt.Cm.work (Parqo.Join_tree.to_string wopt.Cm.tree);
    Printf.printf "  rt-optimal   : rt=%8.1f  work=%8.1f  %s\n"
      best.Cm.response_time best.Cm.work (Parqo.Join_tree.to_string best.Cm.tree);
    (* execute the parallel plan with its exchanges, data and all *)
    let optree = best.Cm.optree in
    let parallel = Parqo.Parallel_exec.run_query db query optree in
    let sequential = Parqo.Executor.run_query db query best.Cm.tree in
    Printf.printf "  executed     : %d rows; parallel = sequential: %b\n"
      (Parqo.Batch.n_rows parallel)
      (Parqo.Batch.equal_bags parallel sequential);
    let sim = Parqo.Simulator.simulate_plan env best.Cm.tree in
    Printf.printf "  simulated    : makespan %.1f (predicted %.1f), %.0f%% util\n\n"
      sim.Parqo.Simulator.makespan best.Cm.response_time
      (100. *. Parqo.Simulator.utilization sim)
  | _ -> print_endline "  no plan found\n"

let () =
  let { W.db; q3; q5; q10 } = W.tpch ~seed:7 () in
  run_query "Q3 (shipping priority)" db q3;
  run_query "Q5 (local supplier volume)" db q5;
  run_query "Q10 (returned items)" db q10
