(* Quickstart: declare a catalog, write a query in SQL, optimize it for
   response time on a parallel machine, and inspect the plan.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a catalog: two tables with statistics, one index *)
  let col distinct lo hi = Parqo.Stats.column ~distinct ~min_v:lo ~max_v:hi () in
  let catalog =
    Parqo.Catalog.create
      ~tables:
        [
          Parqo.Table.create ~name:"orders"
            ~columns:
              [ ("order_id", col 100_000. 0. 99_999.);
                ("customer_id", col 5_000. 0. 4_999.);
                ("total", col 1_000. 0. 10_000.) ]
            ~cardinality:100_000. ~disks:[ 0 ] ();
          Parqo.Table.create ~name:"customers"
            ~columns:
              [ ("customer_id", col 5_000. 0. 4_999.);
                ("region", col 10. 0. 9.) ]
            ~cardinality:5_000. ~disks:[ 1 ] ();
        ]
      ~indexes:
        [
          Parqo.Index.create ~name:"cust_pk" ~table:"customers"
            ~columns:[ "customer_id" ] ~clustered:true ~disk:1 ();
        ]
  in
  (* 2. a query, straight from SQL *)
  let query =
    Parqo.Sql.parse_exn ~catalog
      "SELECT o.order_id, c.region FROM orders o, customers c WHERE \
       o.customer_id = c.customer_id AND o.total >= 9000"
  in
  Printf.printf "query: %s\n\n" (Parqo.Query.to_sql query);
  (* 3. a machine: four shared-nothing nodes *)
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  (* 4. optimize — first the traditional way (minimum work), then the
     paper's way (minimum response time, work bounded at 2x) *)
  let config = Parqo.Space.parallel_config machine in
  let outcome =
    Parqo.Optimizer.minimize_response_time ~config
      ~bound:(Parqo.Bounds.Throughput_degradation 2.0) env
  in
  (match (outcome.Parqo.Optimizer.work_optimal, outcome.Parqo.Optimizer.best) with
  | Some wopt, Some best ->
    Printf.printf "work-optimal plan  : %s\n"
      (Parqo.Join_tree.to_string wopt.Parqo.Costmodel.tree);
    Printf.printf "  response time %.2f, work %.2f\n\n"
      wopt.Parqo.Costmodel.response_time wopt.Parqo.Costmodel.work;
    Printf.printf "response-time plan : %s\n"
      (Parqo.Join_tree.to_string best.Parqo.Costmodel.tree);
    Printf.printf "  response time %.2f (%.1fx faster), work %.2f (%.2fx)\n\n"
      best.Parqo.Costmodel.response_time
      (wopt.Parqo.Costmodel.response_time /. best.Parqo.Costmodel.response_time)
      best.Parqo.Costmodel.work
      (best.Parqo.Costmodel.work /. wopt.Parqo.Costmodel.work);
    (* 5. the operator tree the cost model priced (§4 of the paper) *)
    Format.printf "operator tree:@.%a@." Parqo.Op.pp best.Parqo.Costmodel.optree
  | _ -> print_endline "no plan found")
