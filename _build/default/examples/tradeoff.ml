(* The work / response-time tradeoff (§2): sweep both bound families —
   throughput degradation and cost–benefit ratio — and print the frontier
   the administrator chooses from, together with the final cover set of
   incomparable plans the partial-order DP retains.

   Run with: dune exec examples/tradeoff.exe *)

module Cm = Parqo.Costmodel
module T = Parqo.Tableau

let () =
  let env =
    let catalog, query =
      Parqo.Query_gen.generate
        (Parqo.Query_gen.default_spec Parqo.Query_gen.Star 5)
    in
    let machine = Parqo.Machine.shared_nothing ~nodes:8 () in
    Parqo.Env.create ~machine ~catalog ~query ()
  in
  let config =
    { (Parqo.Space.parallel_config env.Parqo.Env.machine) with
      Parqo.Space.clone_degrees = [ 1; 2; 4; 8 ] }
  in
  let run bound =
    Parqo.Optimizer.minimize_response_time ~config ~bound env
  in
  let tbl =
    T.create ~title:"star-5 on 8 nodes: bounded response-time optimization"
      ~columns:
        [
          ("bound", T.Left);
          ("RT", T.Right);
          ("work", T.Right);
          ("work/W_opt", T.Right);
        ]
  in
  let add bound =
    let o = run bound in
    match (o.Parqo.Optimizer.best, o.Parqo.Optimizer.work_optimal) with
    | Some b, Some w ->
      T.add_row tbl
        [
          Parqo.Bounds.to_string bound;
          T.cell_float b.Cm.response_time;
          T.cell_float b.Cm.work;
          T.cell_float ~decimals:3 (b.Cm.work /. w.Cm.work);
        ]
    | _ -> ()
  in
  List.iter add
    [
      Parqo.Bounds.Throughput_degradation 1.0;
      Parqo.Bounds.Throughput_degradation 1.25;
      Parqo.Bounds.Throughput_degradation 2.0;
      Parqo.Bounds.Cost_benefit 0.1;
      Parqo.Bounds.Cost_benefit 1.0;
      Parqo.Bounds.Cost_benefit 10.0;
      Parqo.Bounds.Unbounded;
    ];
  T.print tbl;
  (* the frontier: the final cover set under work x response time *)
  let o = run Parqo.Bounds.Unbounded in
  let frontier =
    Parqo.Cover.pareto
      ~dominates:(fun (a : Cm.eval) b ->
        a.Cm.work <= b.Cm.work && a.Cm.response_time <= b.Cm.response_time)
      o.Parqo.Optimizer.cover
  in
  let tbl2 =
    T.create ~title:"work / response-time frontier (incomparable plans)"
      ~columns:[ ("RT", T.Right); ("work", T.Right); ("plan", T.Left) ]
  in
  List.iter
    (fun (e : Cm.eval) ->
      T.add_row tbl2
        [
          T.cell_float e.Cm.response_time;
          T.cell_float e.Cm.work;
          Parqo.Join_tree.to_string e.Cm.tree;
        ])
    (List.sort
       (fun (a : Cm.eval) b -> Float.compare a.Cm.response_time b.Cm.response_time)
       frontier);
  T.print tbl2
