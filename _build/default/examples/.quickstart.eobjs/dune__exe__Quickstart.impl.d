examples/quickstart.ml: Format Parqo Printf
