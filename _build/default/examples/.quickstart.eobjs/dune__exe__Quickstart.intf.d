examples/quickstart.mli:
