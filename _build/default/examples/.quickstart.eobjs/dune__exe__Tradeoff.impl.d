examples/tradeoff.ml: Float List Parqo
