examples/simulate.ml: Array Format List Parqo Printf String
