examples/portfolio.mli:
