examples/tpch.mli:
