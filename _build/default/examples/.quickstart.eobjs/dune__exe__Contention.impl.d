examples/contention.ml: List Parqo Printf
