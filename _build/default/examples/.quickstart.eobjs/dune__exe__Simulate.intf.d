examples/simulate.mli:
