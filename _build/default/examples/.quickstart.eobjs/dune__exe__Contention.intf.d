examples/contention.mli:
