examples/tpch.ml: Parqo Printf
