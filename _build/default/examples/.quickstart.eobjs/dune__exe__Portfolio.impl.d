examples/portfolio.ml: List Parqo Printf
