examples/tradeoff.mli:
