(* Watch a parallel plan execute: lower an operator tree to its stage
   DAG, run the fluid simulator, and print the event trace and a small
   per-resource utilization report.

   Run with: dune exec examples/simulate.exe *)

module Sim = Parqo.Simulator
module TG = Parqo.Task_graph

let () =
  let catalog, query =
    Parqo.Query_gen.generate
      (Parqo.Query_gen.default_spec Parqo.Query_gen.Chain 3)
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let tree =
    Parqo.Join_tree.join ~clone:4 Parqo.Join_method.Hash_join
      ~outer:
        (Parqo.Join_tree.join ~clone:2 Parqo.Join_method.Sort_merge
           ~outer:(Parqo.Join_tree.access 0)
           ~inner:(Parqo.Join_tree.access 1))
      ~inner:(Parqo.Join_tree.access 2)
  in
  Printf.printf "plan: %s\n\n" (Parqo.Join_tree.to_string tree);
  let optree = Parqo.Expand.expand env.Parqo.Env.estimator tree in
  Format.printf "operator tree:@.%a@." Parqo.Op.pp optree;
  let graph = TG.of_optree env optree in
  Printf.printf "stage DAG: %d stages, %.1f units of total work\n\n"
    (Array.length graph.TG.stages) (TG.total_work graph);
  Array.iter
    (fun (s : TG.stage) ->
      Printf.printf "  stage %d (deps: %s): %s\n" s.TG.stage_id
        (String.concat "," (List.map string_of_int s.TG.deps))
        (String.concat ", "
           (List.map (fun (t : TG.task) -> t.TG.label) s.TG.tasks)))
    graph.TG.stages;
  let outcome = Sim.run graph in
  Printf.printf "\nevent trace:\n";
  List.iter
    (fun (e : Sim.event) -> Printf.printf "  t=%8.2f  %s\n" e.Sim.at e.Sim.what)
    outcome.Sim.trace;
  Printf.printf "\nstage timeline:\n%s" (Sim.timeline outcome);
  Printf.printf "\nmakespan %.2f, utilization %.0f%%\n" outcome.Sim.makespan
    (100. *. Sim.utilization outcome);
  Printf.printf "per-resource busy time:\n";
  Array.iteri
    (fun id busy ->
      let r = Parqo.Machine.resource machine id in
      Printf.printf "  %-6s %8.2f  %s\n" r.Parqo.Resource.name busy
        (String.make (int_of_float (40. *. busy /. outcome.Sim.makespan)) '#'))
    outcome.Sim.busy;
  (* compare against the cost model and the sequential baseline *)
  let e = Parqo.Costmodel.evaluate env tree in
  let seq = Sim.run ~mode:Sim.Serialized graph in
  Printf.printf
    "\ncost model predicted %.2f; sequential execution would take %.2f (%.1fx)\n"
    e.Parqo.Costmodel.response_time seq.Sim.makespan
    (seq.Sim.makespan /. outcome.Sim.makespan)
