(* Example 3 of the paper, end to end: resource contention makes response
   time violate the principle of optimality, so a System-R-style
   optimizer that keeps one best subplan per relation set can lose, and
   the partial-order DP (Figure 2) keeps the cover set instead.

   Run with: dune exec examples/contention.exe *)

module Cm = Parqo.Costmodel
module J = Parqo.Join_tree

let () =
  (* the paper's raw arithmetic *)
  let e = Parqo.Scenarios.example3 () in
  Printf.printf "Paper's Example 3 (two disks as the only resources):\n";
  Printf.printf "  RT(p1 = scan I_CT)          = %2.0f   (paper: 20)\n" e.rt_p1;
  Printf.printf "  RT(p2 = scan I_CR)          = %2.0f   (paper: 25)\n" e.rt_p2;
  Printf.printf "  RT(NL(p1, indexScan(I_C)))  = %2.0f   (paper: 60)\n" e.rt_join_p1;
  Printf.printf "  RT(NL(p2, indexScan(I_C)))  = %2.0f   (paper: 40)\n" e.rt_join_p2;
  Printf.printf "  principle of optimality violated: %b\n\n"
    (Parqo.Scenarios.example3_violates_po ());
  (* the same database through the full pipeline *)
  let catalog, query, machine = Parqo.Scenarios.ctr_ci () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  Printf.printf "Full cost model on the CTR/CI catalog (%s):\n"
    (Parqo.Query.to_sql query);
  let index name =
    List.find (fun (i : Parqo.Index.t) -> i.Parqo.Index.name = name)
      (Parqo.Catalog.indexes catalog)
  in
  let scan name rel = J.access ~path:(Parqo.Access_path.Index_scan (index name)) rel in
  let rt tree = (Cm.evaluate env tree).Cm.response_time in
  let p1 = scan "i_ct" 0 and p2 = scan "i_cr" 0 in
  let join p = J.join Parqo.Join_method.Nested_loops ~outer:p ~inner:(scan "i_c" 1) in
  Printf.printf "  RT(p1) = %.1f < RT(p2) = %.1f\n" (rt p1) (rt p2);
  Printf.printf "  ... but RT(join via p1) = %.1f > RT(join via p2) = %.1f\n\n"
    (rt (join p1)) (rt (join p2));
  (* what the search algorithms do about it *)
  let metric = Parqo.Metric.descriptor machine Parqo.Machine.Per_resource in
  let po = Parqo.Podp.optimize ~metric env in
  Printf.printf "Partial-order DP cover for {CTR}: %d incomparable plans kept\n"
    (List.length po.Parqo.Podp.cover);
  match po.Parqo.Podp.best with
  | Some b ->
    Printf.printf "chosen plan: %s  (RT %.1f)\n" (J.to_string b.Cm.tree)
      b.Cm.response_time
  | None -> print_endline "no plan"
