module P = Parqo.Opcost
module Pl = Parqo.Placement
module M = Parqo.Machine

let t name f = Alcotest.test_case name `Quick f

let cpus_for () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "one cpu" 1 (List.length (Pl.cpus_for m ~clone:1));
  Alcotest.(check int) "clamped at machine size" 4
    (List.length (Pl.cpus_for m ~clone:16));
  (* deterministic: lowest ids first *)
  Alcotest.(check (list int)) "stable choice" (Pl.cpus_for m ~clone:2)
    (Pl.cpus_for m ~clone:2);
  let two = M.two_disks () in
  Alcotest.(check int) "no cpus on example-3 machine" 0
    (List.length (Pl.cpus_for two ~clone:4))

let effective_clone () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "within capacity" 3 (Pl.effective_clone m 3);
  Alcotest.(check int) "clamped" 4 (Pl.effective_clone m 9);
  let two = M.two_disks () in
  Alcotest.(check int) "no cpus -> 1" 1 (Pl.effective_clone two 8)

let table_and_index_disks () =
  let m = M.shared_nothing ~nodes:4 () in
  let col = Parqo.Stats.column ~distinct:10. ~min_v:0. ~max_v:9. () in
  let table d =
    Parqo.Table.create ~name:"t" ~columns:[ ("c", col) ] ~cardinality:10.
      ~disks:d ()
  in
  Alcotest.(check int) "single placement" 1
    (List.length (Pl.disks_for_table m (table [ 2 ])));
  Alcotest.(check int) "partitioned placement" 3
    (List.length (Pl.disks_for_table m (table [ 0; 1; 2 ])));
  (* abstract disk indexes wrap around machine disks *)
  Alcotest.(check int) "modulo wrap" 1
    (List.length (Pl.disks_for_table m (table [ 5 ])));
  let idx = Parqo.Index.create ~name:"i" ~table:"t" ~columns:[ "c" ] ~disk:1 () in
  (match Pl.disk_for_index m idx with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a disk");
  (* spill disks are cpu-local on shared-nothing *)
  let cpus = Pl.cpus_for m ~clone:2 in
  Alcotest.(check int) "one spill disk per cpu" 2
    (List.length (Pl.spill_disks m ~cpus))

let suite =
  ( "placement",
    [
      t "cpus_for" cpus_for;
      t "effective clone" effective_clone;
      t "table and index disks" table_and_index_disks;
    ] )
