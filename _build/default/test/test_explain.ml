module E = Parqo.Explain
module J = Parqo.Join_tree
module M = Parqo.Join_method

let t name f = Alcotest.test_case name `Quick f

let env () = Helpers.chain_env ~n:3 ()

let tree =
  J.join ~clone:4 M.Hash_join
    ~outer:(J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1))
    ~inner:(J.access 2)

let rows_structure () =
  let env = env () in
  let e = Parqo.Costmodel.evaluate env tree in
  let rows = E.rows env e.Parqo.Costmodel.optree in
  Alcotest.(check int) "one row per operator" (Parqo.Op.size e.Parqo.Costmodel.optree)
    (List.length rows);
  let root = List.hd rows in
  Alcotest.(check int) "root depth 0" 0 root.E.depth;
  Alcotest.(check int) "root cloned" 4 root.E.cloning;
  Helpers.check_float ~eps:1e-6 "root subtree rt = plan rt"
    e.Parqo.Costmodel.response_time root.E.subtree_rt;
  (* subtree response times never exceed the root's *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "subtree rt bounded" true
        (r.E.subtree_rt <= root.E.subtree_rt +. 1e-6);
      Alcotest.(check bool) "first <= last" true
        (r.E.subtree_first <= r.E.subtree_rt +. 1e-6);
      Alcotest.(check bool) "non-negative own work" true (r.E.own_work >= 0.))
    rows

let annotations_reported () =
  let env = env () in
  let e = Parqo.Costmodel.evaluate env tree in
  let rows = E.rows env e.Parqo.Costmodel.optree in
  Alcotest.(check bool) "some exchange row" true
    (List.exists (fun r -> r.E.redistributes) rows);
  Alcotest.(check bool) "sorts are materialized" true
    (List.for_all
       (fun r ->
         (not (String.length r.E.operator >= 4 && String.sub r.E.operator 0 4 = "sort"))
         || r.E.composition = "materialized")
       rows)

let render_contains_plan () =
  let env = env () in
  let text = E.explain_plan env tree in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions response time" true (contains "response time");
  Alcotest.(check bool) "shows the probe" true (contains "probe");
  Alcotest.(check bool) "shows composition column" true (contains "comp. method")

let suite =
  ( "explain",
    [
      t "rows structure" rows_structure;
      t "annotations reported" annotations_reported;
      t "render" render_contains_plan;
    ] )
