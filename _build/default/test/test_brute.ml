module Brute = Parqo.Brute
module S = Parqo.Space
module G = Parqo.Query_gen
module Cm = Parqo.Costmodel

let t name f = Alcotest.test_case name `Quick f

let env_of shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes:2 () in
  Parqo.Env.create ~machine ~catalog ~query ()

(* Table 1, "size of space": with the minimal config (one method, one
   access path, no clones) brute force enumerates exactly the join
   orders: n! left-deep and (2(n-1))!/(n-1)! bushy *)
let leftdeep_space_size () =
  List.iter
    (fun n ->
      let env = env_of G.Clique n in
      let r = Brute.leftdeep ~config:S.minimal_config env in
      Alcotest.(check int)
        (Printf.sprintf "n! for n=%d" n)
        (int_of_float (Parqo.Combin.leftdeep_space n))
        r.Brute.n_plans)
    [ 1; 2; 3; 4; 5; 6 ]

let bushy_space_size () =
  List.iter
    (fun n ->
      let env = env_of G.Clique n in
      let r = Brute.bushy ~config:S.minimal_config env in
      Alcotest.(check int)
        (Printf.sprintf "(2(n-1))!/(n-1)! for n=%d" n)
        (int_of_float (Parqo.Combin.bushy_space n))
        r.Brute.n_plans)
    [ 1; 2; 3; 4 ]

(* annotations multiply the space: two methods double each join choice *)
let annotations_multiply () =
  let env = env_of G.Clique 3 in
  let one = Brute.leftdeep ~config:S.minimal_config env in
  let two =
    Brute.leftdeep
      ~config:
        {
          S.minimal_config with
          S.methods = [ Parqo.Join_method.Nested_loops; Parqo.Join_method.Hash_join ];
        }
      env
  in
  Alcotest.(check int) "2^joins multiplier" (one.Brute.n_plans * 4) two.Brute.n_plans

let on_plan_callback () =
  let env = env_of G.Chain 3 in
  let seen = ref 0 in
  let r =
    Brute.leftdeep ~config:S.minimal_config ~on_plan:(fun _ -> incr seen) env
  in
  Alcotest.(check int) "callback per plan" r.Brute.n_plans !seen

let best_is_minimum () =
  let env = env_of G.Chain 3 in
  let rts = ref [] in
  let r =
    Brute.leftdeep ~config:S.default_config
      ~objective:(fun (e : Cm.eval) -> e.Cm.response_time)
      ~on_plan:(fun e -> rts := e.Cm.response_time :: !rts)
      env
  in
  match r.Brute.best with
  | Some b ->
    Helpers.check_float "best = min over stream"
      (List.fold_left Float.min infinity !rts)
      b.Cm.response_time
  | None -> Alcotest.fail "no plan"

let suite =
  ( "brute",
    [
      t "left-deep space size (Table 1)" leftdeep_space_size;
      t "bushy space size (Table 1)" bushy_space_size;
      t "annotations multiply" annotations_multiply;
      t "on_plan callback" on_plan_callback;
      t "best is minimum" best_is_minimum;
    ] )
