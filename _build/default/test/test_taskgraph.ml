module TG = Parqo.Task_graph
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

let lower env tree =
  let optree =
    Parqo.Expand.expand env.Parqo.Env.estimator tree
  in
  TG.of_optree env optree

let pipeline_is_one_stage () =
  let env = env () in
  (* scan -> probe (pipelined) with a build side: two stages *)
  let g = lower env (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
  Alcotest.(check int) "probe stage + build stage" 2 (Array.length g.TG.stages);
  (match TG.validate g with Ok () -> () | Error e -> Alcotest.fail e);
  (* root stage holds scan(outer) and probe *)
  let root = g.TG.stages.(g.TG.root_stage) in
  Alcotest.(check int) "two tasks in pipeline" 2 (List.length root.TG.tasks);
  Alcotest.(check int) "root depends on build" 1 (List.length root.TG.deps)

let sort_merge_stages () =
  let env = env () in
  let g = lower env (J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1)) in
  (* merge stage + two sort stages (each sort pipelines its scan) *)
  Alcotest.(check int) "three stages" 3 (Array.length g.TG.stages);
  let root = g.TG.stages.(g.TG.root_stage) in
  Alcotest.(check int) "root waits for both sorts" 2 (List.length root.TG.deps)

let nl_index_inner_has_no_task () =
  let env = env () in
  let catalog = Parqo.Env.catalog env in
  let idx = List.hd (Parqo.Catalog.indexes_of catalog "t1") in
  let tree =
    J.join M.Nested_loops ~outer:(J.access 0)
      ~inner:(J.access ~path:(Parqo.Access_path.Index_scan idx) 1)
  in
  let g = lower env tree in
  Alcotest.(check int) "one stage" 1 (Array.length g.TG.stages);
  (* nl + outer scan only: the probed index contributes no task *)
  Alcotest.(check int) "two tasks" 2
    (List.length g.TG.stages.(g.TG.root_stage).TG.tasks)

let demands_match_cost_model () =
  let env = env () in
  let tree = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let g = lower env tree in
  let e = Parqo.Costmodel.evaluate env tree in
  (* stretch mode: the task graph's total work equals the plan's work *)
  Helpers.check_float ~eps:1e-6 "work agrees" e.Parqo.Costmodel.work
    (TG.total_work g)

let validate_catches_cycles () =
  let bad =
    {
      TG.stages =
        [|
          { TG.stage_id = 0; tasks = []; deps = [ 1 ] };
          { TG.stage_id = 1; tasks = []; deps = [ 0 ] };
        |];
      n_resources = 1;
      root_stage = 0;
    }
  in
  match TG.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected cycle error"

let suite =
  ( "task-graph",
    [
      t "pipeline is one stage" pipeline_is_one_stage;
      t "sort-merge stages" sort_merge_stages;
      t "NL index inner has no task" nl_index_inner_has_no_task;
      t "demands match cost model" demands_match_cost_model;
      t "validate catches cycles" validate_catches_cycles;
    ] )
