(* Example 3 and Theorem 2: response time violates the principle of
   optimality — on the paper's raw numbers, and end-to-end through the
   full cost model and search on the CTR/CI database. *)

module Sc = Parqo.Scenarios
module Cm = Parqo.Costmodel
module J = Parqo.Join_tree
module M = Parqo.Join_method
module AP = Parqo.Access_path

let t name f = Alcotest.test_case name `Quick f

let paper_numbers_exact () =
  let e = Sc.example3 () in
  Helpers.check_float "RT(p1) = 20" 20. e.Sc.rt_p1;
  Helpers.check_float "RT(p2) = 25" 25. e.Sc.rt_p2;
  Helpers.check_float "RT(NL(p1,.)) = 60" 60. e.Sc.rt_join_p1;
  Helpers.check_float "RT(NL(p2,.)) = 40" 40. e.Sc.rt_join_p2;
  Alcotest.(check bool) "violates PO" true (Sc.example3_violates_po ())

(* the same phenomenon arises organically in the full pipeline: scanning
   the clustered index (disk 0) is faster standalone, but the subsequent
   index-nested-loops probe also hits disk 0, so the plan through the
   unclustered index on disk 1 wins the join *)
let end_to_end_violation () =
  let catalog, query, machine = Sc.ctr_ci () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let find_index name =
    List.find
      (fun (i : Parqo.Index.t) -> i.Parqo.Index.name = name)
      (Parqo.Catalog.indexes catalog)
  in
  let p1 = J.access ~path:(AP.Index_scan (find_index "i_ct")) 0 in
  let p2 = J.access ~path:(AP.Index_scan (find_index "i_cr")) 0 in
  let join p = J.join M.Nested_loops ~outer:p ~inner:(J.access ~path:(AP.Index_scan (find_index "i_c")) 1) in
  let rt tree = (Cm.evaluate env tree).Cm.response_time in
  (* subplan order *)
  Alcotest.(check bool) "p1 faster standalone" true (rt p1 < rt p2);
  (* extended order inverts: contention on disk 0 *)
  Alcotest.(check bool) "p2's extension wins" true (rt (join p2) < rt (join p1))

(* consequence for search: Figure 1 with the RT objective keeps p1 for
   the subquery and misses the optimum; Figure 2's cover set keeps both *)
let podp_fixes_the_example () =
  let catalog, query, machine = Sc.ctr_ci () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let config = Parqo.Space.default_config in
  let objective (e : Cm.eval) = e.Cm.response_time in
  let naive = Parqo.Dp.optimize ~config ~objective env in
  let metric = Parqo.Metric.descriptor machine Parqo.Machine.Per_resource in
  let po = Parqo.Podp.optimize ~config ~metric env in
  let brute = Parqo.Brute.leftdeep ~config ~objective env in
  match (naive.Parqo.Dp.best, po.Parqo.Podp.best, brute.Parqo.Brute.best) with
  | Some n, Some p, Some b ->
    Helpers.check_float ~eps:1e-6 "po-DP achieves the true optimum"
      b.Cm.response_time p.Cm.response_time;
    Alcotest.(check bool) "naive DP is no better than po-DP" true
      (p.Cm.response_time <= n.Cm.response_time +. 1e-9)
  | _ -> Alcotest.fail "missing plan"

let example2_table_rendered () =
  (* the Example 2 computation is part of Scenarios; verify the table is
     complete and self-consistent *)
  let rows = Sc.example2 () in
  Alcotest.(check int) "seven rows" 7 (List.length rows);
  List.iter
    (fun (r : Sc.example2_row) ->
      Alcotest.(check bool) "tf <= tl" true
        (r.Sc.computed.Parqo.Tdesc.tf <= r.Sc.computed.Parqo.Tdesc.tl))
    rows

let suite =
  ( "po-violation",
    [
      t "paper numbers exact" paper_numbers_exact;
      t "end-to-end violation" end_to_end_violation;
      t "po-dp fixes the example" podp_fixes_the_example;
      t "example 2 table" example2_table_rendered;
    ] )
