module Gr = Parqo.Greedy
module RP = Parqo.Random_plans
module Cm = Parqo.Costmodel
module J = Parqo.Join_tree
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env_of shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

let config env = Parqo.Space.parallel_config env.Parqo.Env.machine

let random_tree_well_formed () =
  let rng = Parqo.Rng.create 1 in
  let env = env_of G.Star 5 in
  for _ = 1 to 50 do
    let tree = RP.random_tree rng env (config env) in
    (match J.well_formed ~n_relations:5 tree with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Alcotest.(check int) "all relations" 5 (J.n_leaves tree)
  done;
  (* left-deep mode *)
  for _ = 1 to 20 do
    let tree = RP.random_tree ~bushy:false rng env (config env) in
    Alcotest.(check bool) "left-deep" true (J.is_left_deep tree)
  done

let moves_preserve_well_formedness () =
  let rng = Parqo.Rng.create 2 in
  let env = env_of G.Cycle 5 in
  let cfg = config env in
  let tree = ref (RP.random_tree rng env cfg) in
  for _ = 1 to 200 do
    tree := RP.random_move rng env cfg !tree;
    match J.well_formed ~n_relations:5 !tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "move broke tree: %s" e
  done

let moves_reach_new_plans () =
  let rng = Parqo.Rng.create 3 in
  let env = env_of G.Chain 4 in
  let cfg = config env in
  let start = RP.random_tree rng env cfg in
  let seen = Hashtbl.create 64 in
  let tree = ref start in
  for _ = 1 to 100 do
    tree := RP.random_move rng env cfg !tree;
    Hashtbl.replace seen (J.to_string !tree) ()
  done;
  Alcotest.(check bool) "explores many plans" true (Hashtbl.length seen > 20)

let greedy_finds_valid_plan () =
  List.iter
    (fun shape ->
      let env = env_of shape 5 in
      let r = Gr.greedy ~config:(config env) env in
      match r.Gr.best with
      | Some e ->
        (match J.well_formed ~n_relations:5 e.Cm.tree with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
        Alcotest.(check bool) "finite rt" true (Float.is_finite e.Cm.response_time);
        Alcotest.(check bool) "did work" true (r.Gr.evaluated > 0)
      | None -> Alcotest.fail "greedy found nothing")
    [ G.Chain; G.Star; G.Clique ]

let greedy_reasonable_quality () =
  (* greedy within 3x of the partial-order DP optimum on small queries *)
  let env = env_of G.Chain 4 in
  let cfg = config env in
  let metric = Parqo.Optimizer.default_metric env in
  let exact = Parqo.Podp.optimize ~config:cfg ~metric env in
  let greedy = Gr.greedy ~config:cfg env in
  match (exact.Parqo.Podp.best, greedy.Gr.best) with
  | Some e, Some g ->
    Alcotest.(check bool)
      (Printf.sprintf "greedy %.0f vs exact %.0f" g.Cm.response_time
         e.Cm.response_time)
      true
      (g.Cm.response_time <= 3. *. e.Cm.response_time)
  | _ -> Alcotest.fail "missing plan"

let ii_valid_and_deterministic () =
  let env = env_of G.Star 5 in
  let cfg = config env in
  let run seed =
    let rng = Parqo.Rng.create seed in
    Gr.iterative_improvement ~config:cfg ~restarts:3 ~patience:20 ~rng env
  in
  let a = run 7 and b = run 7 in
  (match (a.Gr.best, b.Gr.best) with
  | Some x, Some y ->
    Helpers.check_float "same seed, same answer" x.Cm.response_time
      y.Cm.response_time
  | _ -> Alcotest.fail "missing plan");
  match a.Gr.best with
  | Some e -> (
    match J.well_formed ~n_relations:5 e.Cm.tree with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> Alcotest.fail "missing plan"

let ii_beats_single_random_plan () =
  (* hill climbing cannot be worse than its own start; compare against a
     fresh random plan drawn from the same distribution *)
  let env = env_of G.Chain 5 in
  let cfg = config env in
  let rng = Parqo.Rng.create 11 in
  let random_plan = Cm.evaluate env (RP.random_tree (Parqo.Rng.create 12) env cfg) in
  let r = Gr.iterative_improvement ~config:cfg ~restarts:6 ~patience:40 ~rng env in
  match r.Gr.best with
  | Some e ->
    Alcotest.(check bool) "II beats a random plan" true
      (e.Cm.response_time <= random_plan.Cm.response_time)
  | None -> Alcotest.fail "missing plan"

let singleton_query () =
  let env = env_of G.Chain 1 in
  match (Gr.greedy env).Gr.best with
  | Some e -> Alcotest.(check int) "access only" 0 (J.n_joins e.Cm.tree)
  | None -> Alcotest.fail "no plan for n=1"

let suite =
  ( "greedy",
    [
      t "random tree well-formed" random_tree_well_formed;
      t "moves preserve well-formedness" moves_preserve_well_formedness;
      t "moves reach new plans" moves_reach_new_plans;
      t "greedy valid plan" greedy_finds_valid_plan;
      t "greedy reasonable quality" greedy_reasonable_quality;
      t "II deterministic" ii_valid_and_deterministic;
      t "II beats random" ii_beats_single_random_plan;
      t "singleton query" singleton_query;
    ] )
