module V = Parqo.Vecf

let t name f = Alcotest.test_case name `Quick f

let vec_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6) (float_bound_inclusive 100.)
    |> map (fun l -> V.of_array (Array.of_list l)))

let vec_pair_gen =
  QCheck2.Gen.(
    pair (int_range 1 6) (int_range 0 1000) |> map (fun (d, seed) ->
        let rng = Parqo.Rng.create seed in
        ( V.init d (fun _ -> Parqo.Rng.float rng 100.),
          V.init d (fun _ -> Parqo.Rng.float rng 100.) )))

let basics () =
  let v = V.of_array [| 1.; 2.; 3. |] in
  Alcotest.(check int) "dim" 3 (V.dim v);
  Helpers.check_float "get" 2. (V.get v 1);
  Helpers.check_float "sum" 6. (V.sum v);
  Helpers.check_float "max" 3. (V.max_coord v);
  let v' = V.set v 0 10. in
  Helpers.check_float "set new" 10. (V.get v' 0);
  Helpers.check_float "set preserves original" 1. (V.get v 0)

let arithmetic () =
  let a = V.of_array [| 1.; 2. |] and b = V.of_array [| 3.; 1. |] in
  Alcotest.(check bool) "add" true
    (V.equal (V.add a b) (V.of_array [| 4.; 3. |]));
  Alcotest.(check bool) "sub" true
    (V.equal (V.sub a b) (V.of_array [| -2.; 1. |]));
  Alcotest.(check bool) "scale" true
    (V.equal (V.scale 2. a) (V.of_array [| 2.; 4. |]));
  Alcotest.(check bool) "pointwise max" true
    (V.equal (V.pointwise_max a b) (V.of_array [| 3.; 2. |]));
  Alcotest.(check bool) "clamp" true
    (V.equal (V.clamp_non_negative (V.sub a b)) (V.of_array [| 0.; 1. |]))

let dominance () =
  let a = V.of_array [| 1.; 2. |] in
  Alcotest.(check bool) "reflexive" true (V.dominates a a);
  Alcotest.(check bool) "dominates" true
    (V.dominates a (V.of_array [| 1.; 3. |]));
  Alcotest.(check bool) "incomparable" false
    (V.dominates a (V.of_array [| 0.5; 3. |]))

let errors () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vecf: dimension mismatch") (fun () ->
      ignore (V.add (V.zero 2) (V.zero 3)))

let prop_add_comm =
  Helpers.qtest "add commutative" vec_pair_gen (fun (a, b) ->
      V.equal ~eps:1e-9 (V.add a b) (V.add b a))

let prop_dominance_antisym =
  Helpers.qtest "mutual dominance = equality" vec_pair_gen (fun (a, b) ->
      if V.dominates a b && V.dominates b a then V.equal a b else true)

let prop_max_le_sum =
  Helpers.qtest "max_coord <= sum for non-negative" vec_gen (fun v ->
      let v = V.map Float.abs v in
      V.max_coord v <= V.sum v +. 1e-9)

let suite =
  ( "vecf",
    [
      t "basics" basics;
      t "arithmetic" arithmetic;
      t "dominance" dominance;
      t "errors" errors;
      prop_add_comm;
      prop_dominance_antisym;
      prop_max_le_sum;
    ] )
