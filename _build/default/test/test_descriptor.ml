(* The contention-aware resource-descriptor calculus (§5.2.2), including
   the delta(k) pipeline penalty and the §5 desiderata. *)

module D = Parqo.Descriptor
module R = Parqo.Rvec
module V = Parqo.Vecf

let t name f = Alcotest.test_case name `Quick f

let rv t a b = R.make ~time:t ~work:(V.of_array [| a; b |])
let p0 = D.params 0.

let atomic_blocking () =
  let u = rv 10. 10. 0. in
  let a = D.atomic u in
  Helpers.check_float "atomic first" 0. (D.first_tuple_time a);
  Helpers.check_float "atomic last" 10. (D.response_time a);
  let b = D.blocking u in
  Helpers.check_float "blocking first" 10. (D.first_tuple_time b);
  Alcotest.(check bool) "sync = blocking of rl" true
    (D.equal (D.sync a) (D.blocking u))

let delta_interpolation () =
  let p = D.params 1.0 in
  (* no shared resources: t' = max, delta = 1 *)
  let a = rv 10. 10. 0. and b = rv 10. 0. 10. in
  Helpers.check_float "disjoint: delta=1" 1. (D.delta p a b);
  (* fully shared: t' = sum, delta = 1 + k *)
  let c = rv 10. 10. 0. and d = rv 10. 10. 0. in
  Helpers.check_float "contended: delta=1+k" 2. (D.delta p c d);
  (* zero-time residual: no penalty *)
  Helpers.check_float "zero residual" 1. (D.delta p a (R.zero 2));
  (* k = 0 disables *)
  Helpers.check_float "k=0" 1. (D.delta p0 c d)

let pipe_matches_example3 () =
  let join = D.atomic (rv 40. 40. 0.) in
  let p1 = D.atomic (rv 20. 20. 0.) in
  let p2 = D.atomic (rv 25. 0. 25.) in
  Helpers.check_float "NL(p1,-) = 60" 60.
    (D.response_time (D.pipe p0 p1 join));
  Helpers.check_float "NL(p2,-) = 40" 40.
    (D.response_time (D.pipe p0 p2 join))

(* §5 desiderata 1: IPE degrades toward SE as contention rises *)
let desideratum_ipe_degrades () =
  let nr = 2 in
  let op share =
    (* fraction [share] of the work on resource 0, the rest on 1 *)
    R.make ~time:10. ~work:(V.of_array [| 10. *. share; 10. *. (1. -. share) |])
  in
  ignore nr;
  let a = op 1.0 in
  let rt_at share = R.response_time (R.par a (op share)) in
  (* no overlap: max(10,10)=10 = IPE; full overlap: 20 = SE *)
  Helpers.check_float "no contention = IPE" 10. (rt_at 0.);
  Helpers.check_float "full contention = SE" 20. (rt_at 1.);
  Alcotest.(check bool) "monotone degradation" true
    (rt_at 0. <= rt_at 0.5 && rt_at 0.5 <= rt_at 1.0)

(* §5 desiderata 2: DPE ranges from IPE down to worse than SE *)
let desideratum_dpe_range () =
  let k = 0.5 in
  let p = D.params k in
  (* disjoint resources: pipeline = IPE of the two phases *)
  let prod = D.atomic (rv 10. 10. 0.) and cons = D.atomic (rv 10. 0. 10.) in
  Helpers.check_float "DPE best = IPE" 10.
    (D.response_time (D.pipe p prod cons));
  (* full contention: pipeline pays delta on top of the serialized time,
     i.e. strictly worse than sequential execution *)
  let prod2 = D.atomic (rv 10. 10. 0.) and cons2 = D.atomic (rv 10. 10. 0.) in
  let dpe = D.response_time (D.pipe p prod2 cons2) in
  let se = D.response_time (D.dseq prod2 cons2) in
  Helpers.check_float "SE is 20" 20. se;
  Alcotest.(check bool) "DPE worse than SE under contention" true (dpe > se);
  Helpers.check_float "penalty is delta" (se *. (1. +. k)) dpe

(* §5 desiderata 3: CPE ~ IPE of the clones *)
let desideratum_cpe () =
  (* one op of 12 units cloned 3 ways over 3 resources *)
  let clones =
    List.init 3 (fun i ->
        D.atomic
          (R.make ~time:4.
             ~work:(V.init 3 (fun j -> if i = j then 4. else 0.))))
  in
  let combined =
    match clones with
    | first :: rest ->
      List.fold_left
        (fun acc c ->
          { D.rf = R.par acc.D.rf c.D.rf; rl = R.par acc.D.rl c.D.rl })
        first rest
    | [] -> assert false
  in
  Helpers.check_float "3-way clone = 1/3 the time" 4.
    (D.response_time combined)

let tree_with_resources () =
  (* replicate Example 2 shapes with 1-resource vectors: the resource
     calculus collapses to the time calculus when all work shares one
     resource... except || becomes contended. Use disjoint resources to
     match the scalar max. *)
  let dim = 4 in
  let on i t = R.make ~time:t ~work:(V.init dim (fun j -> if i = j then t else 0.)) in
  let sort1 = D.sync (D.pipe p0 (D.atomic (on 0 1.)) (D.blocking (on 0 5.))) in
  Helpers.check_float "sort1 rt 6" 6. (D.response_time sort1);
  let sort2 = D.sync (D.pipe p0 (D.atomic (on 1 3.)) (D.blocking (on 1 10.))) in
  Helpers.check_float "sort2 rt 13" 13. (D.response_time sort2);
  let merge = D.tree p0 sort1 sort2 (D.atomic (on 2 2.)) in
  Helpers.check_float "merge rf 13" 13. (D.first_tuple_time merge);
  Helpers.check_float "merge rl 15" 15. (D.response_time merge)

let delta_modes () =
  let stretch = D.params ~delta_mode:D.Stretch_time 1.0 in
  let scale = D.params ~delta_mode:D.Scale_all 1.0 in
  let a = D.atomic (rv 10. 10. 0.) and b = D.atomic (rv 10. 10. 0.) in
  let w_stretch = D.work (D.pipe stretch a b) in
  let w_scale = D.work (D.pipe scale a b) in
  Helpers.check_float "stretch preserves work" 20. w_stretch;
  Helpers.check_float "scale doubles penalized work" 40. w_scale;
  Helpers.check_float "same response time"
    (D.response_time (D.pipe stretch a b))
    (D.response_time (D.pipe scale a b))

let rvec_desc_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, slack, fa, fb) ->
        let rl_work = V.of_array [| a; b |] in
        let rl = R.make ~time:(Float.max a b +. slack) ~work:rl_work in
        let rf_work = V.of_array [| a *. fa; b *. fb |] in
        let rf =
          R.make
            ~time:(Float.min rl.R.time (Float.max (a *. fa) (b *. fb)))
            ~work:rf_work
        in
        D.make ~rf ~rl)
      (tup5 (float_bound_inclusive 40.) (float_bound_inclusive 40.)
         (float_bound_inclusive 20.) (float_bound_inclusive 1.)
         (float_bound_inclusive 1.)))

let prop_pipe_first_before_last =
  Helpers.qtest "pipe keeps rf <= rl" (QCheck2.Gen.pair rvec_desc_gen rvec_desc_gen)
    (fun (p, c) ->
      let r = D.pipe (D.params 0.3) p c in
      D.first_tuple_time r <= D.response_time r +. 1e-6)

let prop_pipe_work_conserved_stretch =
  Helpers.qtest "stretch-mode pipe conserves work"
    (QCheck2.Gen.pair rvec_desc_gen rvec_desc_gen) (fun (p, c) ->
      let r = D.pipe (D.params ~delta_mode:D.Stretch_time 2.0) p c in
      Helpers.feq ~eps:1e-5 (D.work r) (D.work p +. D.work c))

let prop_delta_in_range =
  Helpers.qtest "delta within [1, 1+k]"
    (QCheck2.Gen.pair rvec_desc_gen rvec_desc_gen) (fun (p, c) ->
      let k = 0.7 in
      let d =
        D.delta (D.params k)
          (R.residual p.D.rl p.D.rf)
          (R.residual c.D.rl c.D.rf)
      in
      d >= 1. -. 1e-9 && d <= 1. +. k +. 1e-9)

let suite =
  ( "descriptor",
    [
      t "atomic/blocking/sync" atomic_blocking;
      t "delta interpolation" delta_interpolation;
      t "pipe matches Example 3" pipe_matches_example3;
      t "desideratum: IPE degrades to SE" desideratum_ipe_degrades;
      t "desideratum: DPE spans IPE..worse-than-SE" desideratum_dpe_range;
      t "desideratum: CPE ~ IPE of clones" desideratum_cpe;
      t "tree with resources" tree_with_resources;
      t "delta modes" delta_modes;
      prop_pipe_first_before_last;
      prop_pipe_work_conserved_stretch;
      prop_delta_in_range;
    ] )
