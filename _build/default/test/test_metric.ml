module Mt = Parqo.Metric
module Cm = Parqo.Costmodel
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env () = Helpers.chain_env ()

let eval env tree = Cm.evaluate env tree

let scalar_metrics_total () =
  let env = env () in
  let a = eval env (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
  let b = eval env (J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1)) in
  (* work metric: one of the two directions must hold (total order) *)
  Alcotest.(check bool) "work total order" true
    (Mt.dominates Mt.work a b || Mt.dominates Mt.work b a);
  Alcotest.(check bool) "rt total order" true
    (Mt.dominates Mt.response_time a b || Mt.dominates Mt.response_time b a);
  Alcotest.(check int) "work is 1-dim" 1 (Mt.n_dims Mt.work a)

let vector_metric_partial () =
  let env = env () in
  let machine = env.Parqo.Env.machine in
  let m = Mt.resource_vector machine Parqo.Machine.By_kind in
  let a = eval env (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
  Alcotest.(check bool) "reflexive" true (Mt.dominates m a a);
  Alcotest.(check bool) "dims = 1 + kinds" true (Mt.n_dims m a >= 3)

let descriptor_metric_dims () =
  let env = env () in
  let machine = env.Parqo.Env.machine in
  let a = eval env (J.access 0) in
  let per = Mt.descriptor machine Parqo.Machine.Per_resource in
  let single = Mt.descriptor machine Parqo.Machine.Single in
  Alcotest.(check int) "single = 4 dims" 4 (Mt.n_dims single a);
  Alcotest.(check int) "per-resource = 2 + 2R dims"
    (2 + (2 * Parqo.Machine.n_resources machine))
    (Mt.n_dims per a)

let ordering_refinement () =
  let env = env () in
  let catalog = Parqo.Env.catalog env in
  let machine = env.Parqo.Env.machine in
  let base = Mt.descriptor machine Parqo.Machine.Single in
  let with_ord = Mt.with_ordering base in
  let idx =
    List.find
      (fun (i : Parqo.Index.t) -> i.Parqo.Index.columns = [ "j0_1" ])
      (Parqo.Catalog.indexes_of catalog "t0")
  in
  let ordered = eval env (J.access ~path:(Parqo.Access_path.Index_scan idx) 0) in
  let unordered = eval env (J.access 0) in
  (* the plain metric may let the cheap unordered scan dominate; with the
     ordering dimension the ordered plan survives *)
  if Mt.dominates base unordered ordered then
    Alcotest.(check bool) "ordering saves the ordered plan" false
      (Mt.dominates with_ord unordered ordered);
  (* ordered plan still dominates itself *)
  Alcotest.(check bool) "reflexive with ordering" true
    (Mt.dominates with_ord ordered ordered)

(* Theorem 1: work is totally ordered and, under physical transparency
   (our estimator), satisfies the principle of optimality for plans in a
   space without interesting orders: extending two plans for the same
   subquery by the same hash join preserves their work order. *)
let theorem1_work_po () =
  let env = env () in
  let rng = Parqo.Rng.create 55 in
  let ok = ref true in
  for _ = 1 to 100 do
    (* two random plans for {0,1}, extended identically by relation 2 *)
    let mk () =
      J.join
        (Parqo.Rng.pick_list rng [ M.Hash_join; M.Nested_loops ])
        ~outer:(J.access 0) ~inner:(J.access 1)
    in
    let p1 = mk () and p2 = mk () in
    let extend p = J.join M.Hash_join ~outer:p ~inner:(J.access 2) in
    let w p = (eval env p).Cm.work in
    if w p1 <= w p2 && not (w (extend p1) <= w (extend p2) +. 1e-9) then
      ok := false
  done;
  Alcotest.(check bool) "principle of optimality for work" true !ok

(* Theorem 2 (exhibit): response time is a total order but extending two
   plans can invert it — the Example 3 family. *)
let theorem2_rt_violation () =
  Alcotest.(check bool) "Example 3 violates PO for RT" true
    (Parqo.Scenarios.example3_violates_po ())

let partitioning_refinement () =
  let env = env () in
  let machine = env.Parqo.Env.machine in
  let base = Mt.work in
  let with_part = Mt.with_partitioning base in
  let j clone =
    eval env (J.join ~clone M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
  in
  let seq = j 1 and par = j 4 in
  (* under plain work, the cheaper plan dominates; with the partitioning
     dimension, differently-partitioned plans are incomparable *)
  Alcotest.(check bool) "work: one dominates" true
    (Mt.dominates base seq par || Mt.dominates base par seq);
  Alcotest.(check bool) "partitioning keeps both" false
    (Mt.dominates with_part seq par || Mt.dominates with_part par seq);
  Alcotest.(check bool) "reflexive" true (Mt.dominates with_part seq seq);
  ignore machine

let suite =
  ( "metric",
    [
      t "partitioning refinement" partitioning_refinement;
      t "scalar metrics total" scalar_metrics_total;
      t "vector metric partial" vector_metric_partial;
      t "descriptor metric dims" descriptor_metric_dims;
      t "ordering refinement" ordering_refinement;
      t "Theorem 1: work satisfies PO" theorem1_work_po;
      t "Theorem 2: RT violates PO" theorem2_rt_violation;
    ] )
