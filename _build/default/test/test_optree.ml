module Op = Parqo.Op
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let sample () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let est = Parqo.Estimator.create catalog query in
  Parqo.Expand.expand est
    (J.join M.Hash_join
       ~outer:(J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1))
       ~inner:(J.access 2))

let traversals () =
  let root = sample () in
  (* size = number of iter visits = number of fold visits *)
  let iter_count = ref 0 in
  Op.iter (fun _ -> incr iter_count) root;
  Alcotest.(check int) "size = iter count" (Op.size root) !iter_count;
  Alcotest.(check int) "fold agrees" (Op.size root)
    (Op.fold (fun n _ -> n + 1) 0 root);
  (* preorder: the root is visited first *)
  let first = ref None in
  Op.iter (fun n -> if !first = None then first := Some n.Op.id) root;
  Alcotest.(check (option int)) "root first" (Some root.Op.id) !first

let find_and_arity () =
  let root = sample () in
  (match Op.find (fun n -> n.Op.kind = Op.Merge_join) root with
  | Some n ->
    Alcotest.(check int) "merge arity" 2 (List.length n.Op.children)
  | None -> Alcotest.fail "no merge found");
  Alcotest.(check bool) "missing kind" true
    (Op.find (fun n -> n.Op.kind = Op.Nl_join) root = None);
  (* declared arities *)
  Alcotest.(check int) "scan arity" 0 (Op.arity (Op.Seq_scan { rel = 0 }));
  Alcotest.(check int) "sort arity" 1 (Op.arity (Op.Sort { key = [] }));
  Alcotest.(check int) "probe arity" 2 (Op.arity Op.Hash_probe);
  Alcotest.(check int) "build arity" 1 (Op.arity Op.Hash_build)

let rendering () =
  let root = sample () in
  let s = Op.to_string root in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length s in
      let rec scan i = i + n <= h && (String.sub s i n = needle || scan (i + 1)) in
      Alcotest.(check bool) ("contains " ^ needle) true (scan 0))
    [ "probe"; "build!"; "merge"; "sort"; "scan(r2)" ]

let kind_names () =
  Alcotest.(check string) "scan" "scan(r3)" (Op.kind_name (Op.Seq_scan { rel = 3 }));
  Alcotest.(check string) "nl" "nested-loops" (Op.kind_name Op.Nl_join);
  Alcotest.(check string) "bcast" "xchg-bcast"
    (Op.kind_name (Op.Exchange { mode = Op.Broadcast }));
  Alcotest.(check string) "repart" "xchg-repart"
    (Op.kind_name (Op.Exchange { mode = Op.Repartition }))

let validate_rejects () =
  let root = sample () in
  (* breaking arity by dropping a child must be caught *)
  let broken = { root with Op.children = [ List.hd root.Op.children ] } in
  (match Op.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected arity error");
  (* duplicate ids *)
  let dup = { root with Op.id = (List.hd root.Op.children).Op.id } in
  match Op.validate dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected duplicate-id error"

let suite =
  ( "optree",
    [
      t "traversals" traversals;
      t "find and arity" find_and_arity;
      t "rendering" rendering;
      t "kind names" kind_names;
      t "validate rejects" validate_rejects;
    ] )
