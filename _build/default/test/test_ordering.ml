module O = Parqo.Ordering

let t name f = Alcotest.test_case name `Quick f

let c rel column = { O.rel; column }

let subsumption () =
  let ab = [ c 0 "a"; c 0 "b" ] in
  let a = [ c 0 "a" ] in
  Alcotest.(check bool) "longer subsumes prefix" true (O.subsumes ab a);
  Alcotest.(check bool) "prefix does not subsume longer" false (O.subsumes a ab);
  Alcotest.(check bool) "anything subsumes none" true (O.subsumes a O.none);
  Alcotest.(check bool) "none subsumes none" true (O.subsumes O.none O.none);
  Alcotest.(check bool) "none does not subsume" false (O.subsumes O.none a);
  Alcotest.(check bool) "reflexive" true (O.subsumes ab ab);
  Alcotest.(check bool) "different column" false (O.subsumes [ c 0 "x" ] a);
  Alcotest.(check bool) "different relation" false (O.subsumes [ c 1 "a" ] a);
  (* subsequence must be a prefix in our realization *)
  Alcotest.(check bool) "non-prefix subsequence rejected" false
    (O.subsumes ab [ c 0 "b" ])

let equality () =
  Alcotest.(check bool) "equal" true (O.equal [ c 0 "a" ] [ c 0 "a" ]);
  Alcotest.(check bool) "unequal length" false (O.equal [ c 0 "a" ] []);
  Alcotest.(check string) "to_string none" "-" (O.to_string O.none);
  Alcotest.(check string) "to_string" "r0.a,r1.b"
    (O.to_string [ c 0 "a"; c 1 "b" ])

let prop_transitive =
  let gen =
    QCheck2.Gen.(
      let col = map (fun i -> c 0 (String.make 1 (Char.chr (97 + i)))) (int_bound 3) in
      triple (list_size (int_bound 4) col) (list_size (int_bound 4) col)
        (list_size (int_bound 4) col))
  in
  Helpers.qtest "subsumption transitive" gen (fun (x, y, z) ->
      if O.subsumes x y && O.subsumes y z then O.subsumes x z else true)

let suite =
  ("ordering", [ t "subsumption" subsumption; t "equality" equality; prop_transitive ])
