module D = Parqo.Datagen
module C = Parqo.Catalog
module Value = Parqo.Value

let t name f = Alcotest.test_case name `Quick f

let specs =
  [
    D.spec ~name:"parent" ~rows:50
      ~columns:[ ("pk", D.Serial); ("weight", D.Uniform_int (1, 5)) ]
      ();
    D.spec ~name:"child" ~rows:200
      ~columns:
        [
          ("pk", D.Serial);
          ("parent", D.Fk "parent");
          ("zip", D.Zipf_int (20, 1.0));
          ("score", D.Uniform_float (0., 1.));
          ("tag", D.String_pool 3);
        ]
      ~disks:[ 1 ] ();
  ]

let db () = D.materialize (Parqo.Rng.create 123) specs

let shapes () =
  let db = db () in
  let parent = D.rows_of db "parent" and child = D.rows_of db "child" in
  Alcotest.(check int) "parent rows" 50 (Array.length parent);
  Alcotest.(check int) "child rows" 200 (Array.length child);
  Alcotest.(check int) "child width" 5 (Array.length child.(0))

let serial_is_pk () =
  let db = db () in
  let parent = D.rows_of db "parent" in
  Array.iteri
    (fun i row ->
      match row.(0) with
      | Value.Int v -> Alcotest.(check int) "serial" i v
      | _ -> Alcotest.fail "serial not an int")
    parent

let fk_in_range () =
  let db = db () in
  let child = D.rows_of db "child" in
  Array.iter
    (fun row ->
      match row.(1) with
      | Value.Int v -> Alcotest.(check bool) "fk valid" true (v >= 0 && v < 50)
      | _ -> Alcotest.fail "fk not an int")
    child

let stats_match_data () =
  let db = db () in
  let stats = C.column_stats db.D.catalog ~table:"parent" ~column:"pk" in
  Helpers.check_float "pk distinct = rows" 50. stats.Parqo.Stats.distinct;
  Helpers.check_float "pk min" 0. stats.Parqo.Stats.min_v;
  Helpers.check_float "pk max" 49. stats.Parqo.Stats.max_v;
  let card = (C.table db.D.catalog "parent").Parqo.Table.cardinality in
  Helpers.check_float "cardinality" 50. card

let determinism () =
  let a = D.materialize (Parqo.Rng.create 9) specs in
  let b = D.materialize (Parqo.Rng.create 9) specs in
  Alcotest.(check bool) "same data for same seed" true
    (D.rows_of a "child" = D.rows_of b "child");
  let c = D.materialize (Parqo.Rng.create 10) specs in
  Alcotest.(check bool) "different seed differs" true
    (D.rows_of a "child" <> D.rows_of c "child")

let errors () =
  Alcotest.check_raises "fk to unknown"
    (Invalid_argument "Datagen: Fk references unknown table ghost") (fun () ->
      ignore
        (D.materialize (Parqo.Rng.create 1)
           [ D.spec ~name:"t" ~rows:5 ~columns:[ ("c", D.Fk "ghost") ] () ]));
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Datagen: table t has no rows") (fun () ->
      ignore
        (D.materialize (Parqo.Rng.create 1)
           [ D.spec ~name:"t" ~rows:0 ~columns:[ ("c", D.Serial) ] () ]))

let suite =
  ( "datagen",
    [
      t "shapes" shapes;
      t "serial is pk" serial_is_pk;
      t "fk in range" fk_in_range;
      t "stats match data" stats_match_data;
      t "determinism" determinism;
      t "errors" errors;
    ] )
