(* The scalar time-descriptor calculus of §5.1, including the literal
   reproduction of the paper's Example 2. *)

module T = Parqo.Tdesc

let t name f = Alcotest.test_case name `Quick f

let d tf tl = T.make ~tf ~tl

let tdesc_gen =
  QCheck2.Gen.(
    map
      (fun (tf, extra) -> d tf (tf +. extra))
      (pair (float_bound_inclusive 50.) (float_bound_inclusive 50.)))

let operators () =
  Helpers.check_float "par" 7. (T.par 3. 7.);
  Helpers.check_float "seq" 10. (T.seq 3. 7.);
  Helpers.check_float "residual" 4. (T.residual 7. 3.);
  Helpers.check_float "residual clamps" 0. (T.residual 3. 7.)

let sync_pipe () =
  let s = T.sync (d 2. 9.) in
  Helpers.check_float "sync tf" 9. s.T.tf;
  Helpers.check_float "sync tl" 9. s.T.tl;
  (* pipe of a fast producer into a blocking consumer *)
  let p = T.pipe (d 0. 1.) (d 5. 5.) in
  Helpers.check_float "pipe tf" 5. p.T.tf;
  Helpers.check_float "pipe tl" 6. p.T.tl

let example2_exact () =
  (* the full worked example of the paper, all four derived rows *)
  let rows = Parqo.Scenarios.example2 () in
  let find name =
    (List.find (fun (r : Parqo.Scenarios.example2_row) -> r.operator = name)
       rows)
      .computed
  in
  Alcotest.(check bool) "sort1 = (6,6)" true (T.equal (find "sort1") (d 6. 6.));
  Alcotest.(check bool) "sort2 = (13,13)" true (T.equal (find "sort2") (d 13. 13.));
  Alcotest.(check bool) "merge = (13,15)" true (T.equal (find "merge") (d 13. 15.));
  Alcotest.(check bool) "n.loops = (13,15)" true
    (T.equal (find "n.loops") (d 13. 15.))

let tree_formula () =
  (* materialized fronts run in parallel, residuals pipeline, root pipes *)
  let l = d 6. 6. and r = d 13. 13. and root = d 0. 2. in
  let result = T.tree l r root in
  Alcotest.(check bool) "merge case" true (T.equal result (d 13. 15.));
  (* unbalanced residuals: the longer residual bounds the pipeline *)
  let l2 = d 2. 10. and r2 = d 3. 5. in
  let res = T.tree l2 r2 (d 0. 1.) in
  (* front = 3; residuals 8 || 2 = 8; pipe into root: tf=3, tl=3+max(8,1)=11 *)
  Alcotest.(check bool) "unbalanced" true (T.equal res (d 3. 11.))

let invariants () =
  Alcotest.check_raises "tf > tl rejected"
    (Invalid_argument "Tdesc.make: need 0 <= tf <= tl") (fun () ->
      ignore (d 5. 3.))

let prop_pipe_invariant =
  Helpers.qtest "pipe preserves tf <= tl" (QCheck2.Gen.pair tdesc_gen tdesc_gen)
    (fun (p, c) ->
      let r = T.pipe p c in
      r.T.tf <= r.T.tl +. 1e-9 && r.T.tf >= 0.)

let prop_pipe_bounds =
  Helpers.qtest "producer+consumer bounds pipe"
    (QCheck2.Gen.pair tdesc_gen tdesc_gen) (fun (p, c) ->
      let r = T.pipe p c in
      (* never better than the producer alone, never worse than running
         them fully sequentially *)
      r.T.tl +. 1e-9 >= p.T.tl && r.T.tl <= p.T.tl +. c.T.tl +. 1e-9)

let prop_sync_idempotent =
  Helpers.qtest "sync idempotent" tdesc_gen (fun x ->
      T.equal (T.sync (T.sync x)) (T.sync x))

let prop_tree_symmetric =
  Helpers.qtest "tree symmetric in children"
    (QCheck2.Gen.triple tdesc_gen tdesc_gen tdesc_gen) (fun (l, r, root) ->
      T.equal ~eps:1e-6 (T.tree l r root) (T.tree r l root))

let suite =
  ( "tdesc",
    [
      t "operators" operators;
      t "sync and pipe" sync_pipe;
      t "Example 2 exact" example2_exact;
      t "tree formula" tree_formula;
      t "invariants" invariants;
      prop_pipe_invariant;
      prop_pipe_bounds;
      prop_sync_idempotent;
      prop_tree_symmetric;
    ] )
