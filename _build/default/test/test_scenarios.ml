module Sc = Parqo.Scenarios
module Op = Parqo.Op

let t name f = Alcotest.test_case name `Quick f

(* Example 1's annotation table: scans pipelined, sorts materialized,
   merge pipelined, as in the paper *)
let example1_annotations () =
  let _env, root = Sc.example1 () in
  (match Op.validate root with Ok () -> () | Error e -> Alcotest.fail e);
  (match root.Op.kind with
  | Op.Nl_join -> ()
  | k -> Alcotest.failf "expected nested-loops root, got %s" (Op.kind_name k));
  let count pred = Op.fold (fun n node -> if pred node then n + 1 else n) 0 root in
  Alcotest.(check int) "three scans" 3
    (count (fun n -> match n.Op.kind with Op.Seq_scan _ -> true | _ -> false));
  Alcotest.(check int) "two sorts" 2
    (count (fun n -> match n.Op.kind with Op.Sort _ -> true | _ -> false));
  Alcotest.(check int) "one merge" 1
    (count (fun n -> n.Op.kind = Op.Merge_join));
  (* annotation table: composition per operator kind *)
  Op.iter
    (fun n ->
      match n.Op.kind with
      | Op.Seq_scan _ | Op.Merge_join ->
        Alcotest.(check bool)
          (Op.kind_name n.Op.kind ^ " pipelined")
          true
          (n.Op.composition = Op.Pipelined)
      | Op.Sort _ ->
        Alcotest.(check bool) "sort materialized" true
          (n.Op.composition = Op.Materialized)
      | _ -> ())
    root;
  (* the materialized front of the whole tree is the two sorts (§5) *)
  let front = Op.materialized_front root in
  Alcotest.(check int) "front = {sort1, sort2}" 2 (List.length front);
  List.iter
    (fun (n : Op.node) ->
      match n.Op.kind with
      | Op.Sort _ -> ()
      | k -> Alcotest.failf "front contains %s" (Op.kind_name k))
    front

let ctr_ci_catalog_valid () =
  let catalog, query, machine = Sc.ctr_ci () in
  (match
     Parqo.Catalog.validate
       ~n_disks:(List.length (Parqo.Machine.disk_ids machine))
       catalog
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Parqo.Query.validate catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let example2_stable () =
  (* defensive: the Example 2 rows never drift *)
  let rows = Sc.example2 () in
  let find name =
    (List.find (fun (r : Sc.example2_row) -> r.Sc.operator = name) rows).Sc.computed
  in
  Helpers.check_float "merge tl" 15. (find "merge").Parqo.Tdesc.tl;
  Helpers.check_float "nloops tf" 13. (find "n.loops").Parqo.Tdesc.tf

let suite =
  ( "scenarios",
    [
      t "example 1 annotations" example1_annotations;
      t "ctr/ci catalog valid" ctr_ci_catalog_valid;
      t "example 2 stable" example2_stable;
    ] )
