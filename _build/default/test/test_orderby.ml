(* ORDER BY end to end: parsing, final-sort costing, optimizer preference
   for plans whose interesting order covers the request, and executor
   output ordering. *)

module Q = Parqo.Query
module Cm = Parqo.Costmodel
module J = Parqo.Join_tree
module M = Parqo.Join_method
module O = Parqo.Ordering
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let parse_order_by () =
  let catalog, _ = G.generate (G.default_spec G.Chain 2) in
  let q =
    Parqo.Sql.parse_exn ~catalog
      "SELECT * FROM t0, t1 WHERE t0.j0_1 = t1.j0_1 ORDER BY t0.j0_1, t1.pk"
  in
  Alcotest.(check int) "two order columns" 2 (List.length q.Q.order_by);
  let c = List.hd q.Q.order_by in
  Alcotest.(check string) "first column" "j0_1" c.Q.column;
  (* rendering round-trips *)
  let q2 = Parqo.Sql.parse_exn ~catalog (Q.to_sql q) in
  Alcotest.(check string) "sql fixpoint" (Q.to_sql q) (Q.to_sql q2)

let with_order_env () =
  let catalog, base = G.generate (G.default_spec G.Chain 2) in
  let query =
    Q.create
      ~relations:(Array.to_list base.Q.relations)
      ~joins:base.Q.joins
      ~order_by:[ { Q.rel = 0; column = "j0_1" } ]
      ()
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  (Parqo.Env.create ~machine ~catalog ~query (), query)

let final_sort_costed () =
  let env, _ = with_order_env () in
  let required = Cm.required_order env in
  Alcotest.(check bool) "required order non-empty" true (required <> O.none);
  (* a hash join does not deliver the order: the adjusted eval is dearer *)
  let tree = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let plain = Cm.evaluate env tree in
  let adjusted = Cm.evaluate ~required_order:required env tree in
  Alcotest.(check bool) "final sort costs time" true
    (adjusted.Cm.response_time > plain.Cm.response_time);
  Alcotest.(check bool) "final sort costs work" true
    (adjusted.Cm.work > plain.Cm.work);
  (* a sort-merge join delivers it: no adjustment *)
  let sm = J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1) in
  let sm_plain = Cm.evaluate env sm in
  let sm_adjusted = Cm.evaluate ~required_order:required env sm in
  Helpers.check_float "order satisfied, no extra cost" sm_plain.Cm.response_time
    sm_adjusted.Cm.response_time

let cloned_plan_merges_before_sort () =
  let env, _ = with_order_env () in
  let required = Cm.required_order env in
  let tree = J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let adjusted = Cm.evaluate ~required_order:required env tree in
  (* root of the adjusted operator tree is the final sort over a merge *)
  match adjusted.Cm.optree.Parqo.Op.kind with
  | Parqo.Op.Sort _ -> (
    let child = List.hd adjusted.Cm.optree.Parqo.Op.children in
    match child.Parqo.Op.kind with
    | Parqo.Op.Exchange { mode = Parqo.Op.Merge_streams } -> ()
    | k -> Alcotest.failf "expected merge under sort, got %s" (Parqo.Op.kind_name k))
  | k -> Alcotest.failf "expected final sort, got %s" (Parqo.Op.kind_name k)

let optimizer_respects_order () =
  let env, _ = with_order_env () in
  let o = Parqo.Optimizer.minimize_response_time env in
  match o.Parqo.Optimizer.best with
  | None -> Alcotest.fail "no plan"
  | Some best ->
    (* whatever it picked, the reported cost covers the ordering: either
       the plan delivers the order or the optree ends in a sort *)
    let delivers = O.satisfies best.Cm.ordering (Cm.required_order env) in
    let has_final_sort =
      match best.Cm.optree.Parqo.Op.kind with
      | Parqo.Op.Sort _ -> true
      | _ -> false
    in
    Alcotest.(check bool) "order accounted for" true (delivers || has_final_sort)

let executor_orders_rows () =
  let db, base = Parqo.Workloads.chain_db ~n:2 ~rows:50 ~seed:3 () in
  let query =
    Q.create
      ~relations:(Array.to_list base.Q.relations)
      ~joins:base.Q.joins
      ~order_by:[ { Q.rel = 1; column = "payload" } ]
      ~projection:[ { Q.rel = 1; column = "payload" } ]
      ()
  in
  let tree = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let out = Parqo.Executor.run_query db query tree in
  let values =
    List.map (fun row -> Parqo.Value.to_float row.(0)) out.Parqo.Batch.rows
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "rows sorted by payload" true (sorted values);
  Alcotest.(check bool) "non-empty" true (values <> [])

let suite =
  ( "order-by",
    [
      t "parse" parse_order_by;
      t "final sort costed" final_sort_costed;
      t "cloned plan merges before sort" cloned_plan_merges_before_sort;
      t "optimizer respects order" optimizer_respects_order;
      t "executor orders rows" executor_orders_rows;
    ] )
