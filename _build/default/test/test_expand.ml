module Op = Parqo.Op
module X = Parqo.Expand
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen
module AP = Parqo.Access_path
module E = Parqo.Estimator

let t name f = Alcotest.test_case name `Quick f

let est_of ?(n = 3) ?(shape = G.Chain) () =
  let catalog, query = G.generate (G.default_spec shape n) in
  (catalog, query, E.create catalog query)

let kinds root =
  let acc = ref [] in
  Op.iter (fun n -> acc := n.Op.kind :: !acc) root;
  List.rev !acc

let count pred root = List.length (List.filter pred (kinds root))

let is_sort = function Op.Sort _ -> true | _ -> false
let is_exchange = function Op.Exchange _ -> true | _ -> false

let hash_join_shape () =
  let _, _, est = est_of () in
  let tree = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = X.expand est tree in
  (match root.Op.kind with
  | Op.Hash_probe -> ()
  | k -> Alcotest.failf "expected probe root, got %s" (Op.kind_name k));
  (match Op.validate root with Ok () -> () | Error e -> Alcotest.fail e);
  (* probe(outer, build(inner)) with materialized build *)
  let build = List.nth root.Op.children 1 in
  (match build.Op.kind with
  | Op.Hash_build -> ()
  | k -> Alcotest.failf "expected build, got %s" (Op.kind_name k));
  Alcotest.(check bool) "build materialized" true
    (build.Op.composition = Op.Materialized);
  Alcotest.(check int) "front is the build" 1
    (List.length (Op.materialized_front root))

let sort_merge_shape () =
  let _, _, est = est_of () in
  let tree = J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = X.expand est tree in
  (match root.Op.kind with
  | Op.Merge_join -> ()
  | k -> Alcotest.failf "expected merge root, got %s" (Op.kind_name k));
  Alcotest.(check int) "two sorts" 2 (count is_sort root);
  (* both sorts are materialized: they form the front *)
  Alcotest.(check int) "front = sorts" 2 (List.length (Op.materialized_front root))

let sort_elision () =
  let catalog, _, est = est_of () in
  (* index on the join column delivers the needed ordering *)
  let idx =
    List.find
      (fun (i : Parqo.Index.t) -> i.Parqo.Index.columns = [ "j0_1" ])
      (Parqo.Catalog.indexes_of catalog "t0")
  in
  let tree =
    J.join M.Sort_merge
      ~outer:(J.access ~path:(AP.Index_scan idx) 0)
      ~inner:(J.access 1)
  in
  let root = X.expand est tree in
  Alcotest.(check int) "one sort elided" 1 (count is_sort root)

let nested_loops_shape () =
  let _, _, est = est_of () in
  let tree = J.join M.Nested_loops ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = X.expand est tree in
  (match root.Op.kind with
  | Op.Nl_join -> ()
  | k -> Alcotest.failf "expected nl root, got %s" (Op.kind_name k));
  Alcotest.(check int) "no exchanges sequential" 0 (count is_exchange root)

let create_index_inflection () =
  let _, _, est = est_of () in
  let tree = J.join M.Nested_loops ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = X.expand ~config:{ X.create_index_for_nl = true } est tree in
  Alcotest.(check int) "create-index inserted" 1
    (count (function Op.Create_index _ -> true | _ -> false) root)

let cloning_inserts_exchanges () =
  let _, _, est = est_of () in
  let tree = J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = X.expand est tree in
  (* both scan streams must be repartitioned to degree 4 *)
  Alcotest.(check int) "two repartition exchanges" 2 (count is_exchange root);
  Op.iter
    (fun n ->
      match n.Op.kind with
      | Op.Exchange { mode } ->
        Alcotest.(check bool) "repartition mode" true (mode = Op.Repartition);
        Alcotest.(check int) "exchange degree" 4 n.Op.clone
      | _ -> ())
    root

let compatible_partitioning_no_exchange () =
  let _, _, est = est_of () in
  (* pre-cloned scans matching the join degree: hash join still needs
     attribute partitioning, which plain scans cannot guarantee *)
  let tree =
    J.join ~clone:4 M.Hash_join
      ~outer:(J.access ~clone:4 0)
      ~inner:(J.access ~clone:4 1)
  in
  let root = X.expand est tree in
  (* scans are degree 4 but not attribute-partitioned: exchanges stay *)
  Alcotest.(check int) "attribute repartition still required" 2
    (count is_exchange root);
  (* nested loops accepts any partitioning of the outer: no outer exchange *)
  let nl =
    J.join ~clone:4 M.Nested_loops
      ~outer:(J.access ~clone:4 0)
      ~inner:(J.access 1)
  in
  let nl_root = X.expand est nl in
  (* only the broadcast of the inner remains *)
  Alcotest.(check int) "NL outer reused, inner broadcast" 1
    (count is_exchange nl_root);
  Op.iter
    (fun n ->
      match n.Op.kind with
      | Op.Exchange { mode } ->
        Alcotest.(check bool) "broadcast mode" true (mode = Op.Broadcast)
      | _ -> ())
    nl_root

let broadcast_multiplies_cardinality () =
  let _, _, est = est_of () in
  let nl =
    J.join ~clone:4 M.Nested_loops ~outer:(J.access ~clone:4 0) ~inner:(J.access 1)
  in
  let root = X.expand est nl in
  let bcast =
    Op.find (fun n -> match n.Op.kind with Op.Exchange _ -> true | _ -> false) root
  in
  match bcast with
  | Some b ->
    let inner_scan = List.hd b.Op.children in
    Helpers.check_float "4x replicated" (4. *. inner_scan.Op.out_card) b.Op.out_card
  | None -> Alcotest.fail "expected broadcast"

let unique_ids () =
  let _, _, est = est_of ~n:4 () in
  let tree =
    J.join M.Hash_join
      ~outer:(J.join ~clone:2 M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.join M.Nested_loops ~outer:(J.access 2) ~inner:(J.access 3))
  in
  let root = X.expand est tree in
  match Op.validate root with Ok () -> () | Error e -> Alcotest.fail e

let materialize_annotation () =
  let _, _, est = est_of () in
  let tree =
    J.join ~materialize:true M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)
  in
  let root = X.expand est tree in
  Alcotest.(check bool) "root materialized" true
    (root.Op.composition = Op.Materialized)

let expansion_deterministic () =
  let _, _, est = est_of () in
  let tree = J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1) in
  Alcotest.(check string) "unique expansion"
    (Op.to_string (X.expand est tree))
    (Op.to_string (X.expand est tree))

let ill_formed_rejected () =
  let _, _, est = est_of ~n:2 () in
  let dup = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 0) in
  Alcotest.(check bool) "duplicate leaf rejected" true
    (try
       ignore (X.expand est dup);
       false
     with Invalid_argument _ -> true)

let random_plans_expand_validly () =
  (* every random annotated tree expands to a valid operator tree whose
     root cardinality is the estimator's for the full relation set *)
  let rng = Parqo.Rng.create 500 in
  for _ = 1 to 10 do
    let catalog, query = Parqo.Query_gen.random rng ~n:(2 + Parqo.Rng.int rng 4) () in
    let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
    let env = Parqo.Env.create ~machine ~catalog ~query () in
    let est = env.Parqo.Env.estimator in
    for _ = 1 to 10 do
      let tree = Helpers.random_tree rng env in
      let root = X.expand est tree in
      (match Op.validate root with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (J.to_string tree) e);
      let n = Parqo.Query.n_relations query in
      Helpers.check_float ~eps:1e-6 "root cardinality is logical"
        (E.card est (Parqo.Bitset.full n))
        root.Op.out_card;
      (* every node's cardinality is non-negative and finite *)
      Op.iter
        (fun node ->
          Alcotest.(check bool) "finite card" true
            (Float.is_finite node.Op.out_card && node.Op.out_card >= 0.))
        root
    done
  done

let suite =
  ( "expand",
    [
      t "random plans expand validly" random_plans_expand_validly;
      t "hash join shape" hash_join_shape;
      t "sort-merge shape" sort_merge_shape;
      t "sort elision" sort_elision;
      t "nested loops shape" nested_loops_shape;
      t "create-index inflection" create_index_inflection;
      t "cloning inserts exchanges" cloning_inserts_exchanges;
      t "partitioning compatibility" compatible_partitioning_no_exchange;
      t "broadcast cardinality" broadcast_multiplies_cardinality;
      t "unique ids" unique_ids;
      t "materialize annotation" materialize_annotation;
      t "deterministic" expansion_deterministic;
      t "ill-formed rejected" ill_formed_rejected;
    ] )
