module R = Parqo.Rng

let t name f = Alcotest.test_case name `Quick f

let determinism () =
  let a = R.create 42 and b = R.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.int64 a) (R.int64 b)
  done;
  let c = R.create 43 in
  Alcotest.(check bool) "different seeds differ" true
    (R.int64 (R.create 42) <> R.int64 c)

let bounds () =
  let rng = R.create 7 in
  for _ = 1 to 1000 do
    let v = R.int rng 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let f = R.float rng 3.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0. && f < 3.5);
    let r = R.range rng (-5) 5 in
    Alcotest.(check bool) "range inclusive" true (r >= -5 && r <= 5)
  done

let uniformity () =
  (* chi-squared-ish sanity: each of 10 buckets gets 10% +/- 3% of 10k *)
  let rng = R.create 11 in
  let counts = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = R.int rng 10 in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (abs (c - (n / 10)) < n * 3 / 100))
    counts

let split_independence () =
  let parent = R.create 5 in
  let child = R.split parent in
  (* child stream must not simply replay the parent stream *)
  let xs = List.init 20 (fun _ -> R.int64 parent) in
  let ys = List.init 20 (fun _ -> R.int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let copy_independence () =
  let a = R.create 9 in
  let b = R.copy a in
  Alcotest.(check int64) "copies agree" (R.int64 a) (R.int64 b);
  ignore (R.int64 a);
  (* advancing a does not advance b *)
  let a' = R.int64 a and b' = R.int64 b in
  Alcotest.(check bool) "diverge after copy use" true (a' <> b' || true)

let shuffle_permutes () =
  let rng = R.create 3 in
  let a = Array.init 30 (fun i -> i) in
  R.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 (fun i -> i)) sorted

let zipf_skew () =
  let rng = R.create 13 in
  let n = 5000 in
  let count1 = ref 0 in
  for _ = 1 to n do
    let v = R.zipf rng ~n:100 ~theta:1.0 in
    Alcotest.(check bool) "zipf in range" true (v >= 1 && v <= 100);
    if v = 1 then incr count1
  done;
  (* with theta=1 over 100 values, rank 1 has ~19% mass *)
  Alcotest.(check bool) "rank 1 is heavy" true (!count1 > n / 10)

let exponential_mean () =
  let rng = R.create 17 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. R.exponential rng ~mean:2.
  done;
  let m = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 2" true (Float.abs (m -. 2.) < 0.1)

let errors () =
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int") (fun () ->
      ignore (R.int (R.create 1) 0))

let suite =
  ( "rng",
    [
      t "determinism" determinism;
      t "bounds" bounds;
      t "uniformity" uniformity;
      t "split independence" split_independence;
      t "copy" copy_independence;
      t "shuffle" shuffle_permutes;
      t "zipf" zipf_skew;
      t "exponential" exponential_mean;
      t "errors" errors;
    ] )
