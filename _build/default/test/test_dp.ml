(* Figure 1: System R DP over left-deep trees. *)

module Dp = Parqo.Dp
module Brute = Parqo.Brute
module Cm = Parqo.Costmodel
module S = Parqo.Space
module G = Parqo.Query_gen
module Stats = Parqo.Search_stats

let t name f = Alcotest.test_case name `Quick f

let env_of shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

let finds_a_plan () =
  List.iter
    (fun shape ->
      let env = env_of shape 4 in
      let r = Dp.optimize env in
      match r.Dp.best with
      | Some e ->
        Alcotest.(check bool) "left-deep result" true
          (Parqo.Join_tree.is_left_deep e.Cm.tree);
        Alcotest.(check bool) "covers all relations" true
          (Parqo.Bitset.equal
             (Parqo.Join_tree.relations e.Cm.tree)
             (Parqo.Bitset.full 4))
      | None -> Alcotest.fail "no plan")
    [ G.Chain; G.Star; G.Cycle; G.Clique ]

(* the central correctness check: in a space without interesting orders
   (no sort-merge), physical transparency holds (Theorem 1) and DP's work
   optimum equals brute force's over the identical candidate space *)
let matches_brute_force () =
  let rng = Parqo.Rng.create 21 in
  let config =
    {
      S.default_config with
      S.methods = [ Parqo.Join_method.Nested_loops; Parqo.Join_method.Hash_join ];
    }
  in
  for _ = 1 to 8 do
    let env = Helpers.random_env rng ~n:3 in
    let objective (e : Cm.eval) = e.Cm.work in
    let dp = Dp.optimize ~config ~objective env in
    let brute = Brute.leftdeep ~config ~objective env in
    match (dp.Dp.best, brute.Brute.best) with
    | Some a, Some b ->
      Helpers.check_float ~eps:1e-6 "same optimal work" b.Cm.work a.Cm.work
    | _ -> Alcotest.fail "missing plan"
  done

(* with sort-merge in the space, interesting orders break the principle
   of optimality for work (§6.1.2): DP can only be >= brute force, and
   the gap is real on some instances *)
let interesting_orders_gap () =
  let rng = Parqo.Rng.create 22 in
  let config = S.default_config in
  let objective (e : Cm.eval) = e.Cm.work in
  for _ = 1 to 8 do
    let env = Helpers.random_env rng ~n:3 in
    let dp = Dp.optimize ~config ~objective env in
    let brute = Brute.leftdeep ~config ~objective env in
    match (dp.Dp.best, brute.Brute.best) with
    | Some a, Some b ->
      Alcotest.(check bool) "dp never beats brute" true
        (b.Cm.work <= a.Cm.work +. 1e-6)
    | _ -> Alcotest.fail "missing plan"
  done

(* Table 1: on a clique query every (S, j) pair is connected, so plans
   considered = n 2^(n-1) and peak storage per level = C(n, ceil(n/2)). *)
let table1_counters () =
  List.iter
    (fun n ->
      let env = env_of G.Clique n in
      let r = Dp.optimize ~config:S.minimal_config env in
      Alcotest.(check int)
        (Printf.sprintf "considered n=%d" n)
        (int_of_float (Parqo.Combin.dp_leftdeep_time n))
        r.Dp.stats.Stats.considered;
      Alcotest.(check int)
        (Printf.sprintf "stored peak n=%d" n)
        (int_of_float (Parqo.Combin.dp_leftdeep_space n))
        r.Dp.stats.Stats.stored_peak)
    [ 2; 3; 4; 5; 6; 7 ]

(* non-clique shapes skip disconnected extensions: strictly fewer plans *)
let connectivity_prunes () =
  let clique = Dp.optimize ~config:S.minimal_config (env_of G.Clique 5) in
  let chain = Dp.optimize ~config:S.minimal_config (env_of G.Chain 5) in
  Alcotest.(check bool) "chain considers fewer" true
    (chain.Dp.stats.Stats.considered < clique.Dp.stats.Stats.considered)

let disconnected_queries_work () =
  (* two disjoint joined pairs: requires a cartesian bridge *)
  let catalog, _ = G.generate (G.default_spec G.Chain 4) in
  let query =
    Parqo.Query.create
      ~relations:[ ("t0", "t0"); ("t1", "t1"); ("t2", "t2"); ("t3", "t3") ]
      ~joins:
        [
          {
            Parqo.Query.left = { Parqo.Query.rel = 0; column = "j0_1" };
            right = { Parqo.Query.rel = 1; column = "j0_1" };
          };
          {
            Parqo.Query.left = { Parqo.Query.rel = 2; column = "j2_3" };
            right = { Parqo.Query.rel = 3; column = "j2_3" };
          };
        ]
      ()
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:2 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  match (Dp.optimize env).Dp.best with
  | Some e ->
    Alcotest.(check bool) "all four joined" true
      (Parqo.Bitset.cardinal (Parqo.Join_tree.relations e.Cm.tree) = 4)
  | None -> Alcotest.fail "no plan for disconnected query"

(* running Figure 1 with RT as objective is unsound: brute force can find
   strictly better response times (the paper's motivation for §6.2) *)
let rt_objective_suboptimal_somewhere () =
  let rng = Parqo.Rng.create 4242 in
  let objective (e : Cm.eval) = e.Cm.response_time in
  let found_gap = ref false in
  (* also verify DP-RT never beats brute force (it searches a subset) *)
  for _ = 1 to 12 do
    let env = Helpers.random_env rng ~n:3 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let dp = Parqo.Dp.optimize ~config ~objective env in
    let brute = Brute.leftdeep ~config ~objective env in
    match (dp.Dp.best, brute.Brute.best) with
    | Some a, Some b ->
      Alcotest.(check bool) "brute <= dp for RT" true
        (b.Cm.response_time <= a.Cm.response_time +. 1e-6);
      if b.Cm.response_time +. 1e-6 < a.Cm.response_time then found_gap := true
    | _ -> Alcotest.fail "missing plan"
  done;
  ignore !found_gap (* gap existence is demonstrated deterministically in
                       test_po_violation; random draws need not exhibit it *)

let singleton_query () =
  let env = env_of G.Chain 1 in
  match (Dp.optimize env).Dp.best with
  | Some e -> Alcotest.(check int) "single access plan" 0 (Parqo.Join_tree.n_joins e.Cm.tree)
  | None -> Alcotest.fail "no plan for single relation"

let suite =
  ( "dp",
    [
      t "finds a plan" finds_a_plan;
      t "matches brute force" matches_brute_force;
      t "interesting orders gap" interesting_orders_gap;
      t "Table 1 counters" table1_counters;
      t "connectivity prunes" connectivity_prunes;
      t "disconnected queries" disconnected_queries_work;
      t "rt objective vs brute" rt_objective_suboptimal_somewhere;
      t "singleton query" singleton_query;
    ] )
