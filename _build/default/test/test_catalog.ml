module C = Parqo.Catalog
module Table = Parqo.Table
module Index = Parqo.Index
module Stats = Parqo.Stats
module Value = Parqo.Value

let t name f = Alcotest.test_case name `Quick f

let col ?(distinct = 10.) () = Stats.column ~distinct ~min_v:0. ~max_v:100. ()

let sample_catalog () =
  let emp =
    Table.create ~name:"emp"
      ~columns:[ ("id", col ~distinct:1000. ()); ("dept", col ()) ]
      ~cardinality:1000. ~disks:[ 0 ] ()
  in
  let dept =
    Table.create ~name:"dept"
      ~columns:[ ("id", col ()); ("name", col ()) ]
      ~cardinality:10. ~disks:[ 1 ] ()
  in
  let idx = Index.create ~name:"emp_dept" ~table:"emp" ~columns:[ "dept" ] ~disk:0 () in
  C.create ~tables:[ emp; dept ] ~indexes:[ idx ]

let values () =
  Alcotest.(check int) "int order" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  Alcotest.(check int) "mixed numeric" 0 (Value.compare (Value.Int 2) (Value.Flt 2.));
  Alcotest.(check bool) "strings after numbers" true
    (Value.compare (Value.Str "a") (Value.Int 5) > 0);
  Alcotest.(check string) "to_string" "3.5" (Value.to_string (Value.Flt 3.5));
  Alcotest.(check bool) "equal" true (Value.equal (Value.Str "x") (Value.Str "x"))

let table_ops () =
  let c = sample_catalog () in
  let emp = C.table c "emp" in
  Alcotest.(check int) "arity" 2 (Table.arity emp);
  Alcotest.(check (list string)) "column names" [ "id"; "dept" ] (Table.column_names emp);
  Alcotest.(check int) "column index" 1 (Table.column_index emp "dept");
  Alcotest.(check bool) "has column" true (Table.has_column emp "id");
  Alcotest.(check bool) "lacks column" false (Table.has_column emp "salary");
  Helpers.check_float "stats lookup" 1000.
    (C.column_stats c ~table:"emp" ~column:"id").Stats.distinct

let table_errors () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Table.create: duplicate column") (fun () ->
      ignore
        (Table.create ~name:"x"
           ~columns:[ ("a", col ()); ("a", col ()) ]
           ~cardinality:1. ()));
  Alcotest.check_raises "no columns"
    (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create ~name:"x" ~columns:[] ~cardinality:1. ()))

let index_ops () =
  let c = sample_catalog () in
  Alcotest.(check int) "indexes_of emp" 1 (List.length (C.indexes_of c "emp"));
  Alcotest.(check int) "indexes_of dept" 0 (List.length (C.indexes_of c "dept"));
  let idx = List.hd (C.indexes_of c "emp") in
  Alcotest.(check bool) "covers" true (Index.covers idx [ "dept" ]);
  Alcotest.(check bool) "does not cover" false (Index.covers idx [ "id" ])

let validation () =
  let c = sample_catalog () in
  (match C.validate ~n_disks:2 c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* index on missing table *)
  let bad =
    C.add_index c (Index.create ~name:"ghost" ~table:"nope" ~columns:[ "x" ] ())
  in
  (match C.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected missing-table error");
  (* index on missing column *)
  let bad2 =
    C.add_index c (Index.create ~name:"badcol" ~table:"emp" ~columns:[ "zzz" ] ())
  in
  (match C.validate bad2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected missing-column error");
  (* disk out of range *)
  match C.validate ~n_disks:1 c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected disk-range error"

let duplicates () =
  let emp =
    Table.create ~name:"emp" ~columns:[ ("id", col ()) ] ~cardinality:1. ()
  in
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Catalog: duplicate table") (fun () ->
      ignore (C.create ~tables:[ emp; emp ] ~indexes:[]))

let suite =
  ( "catalog",
    [
      t "values" values;
      t "table ops" table_ops;
      t "table errors" table_errors;
      t "index ops" index_ops;
      t "validation" validation;
      t "duplicates" duplicates;
    ] )
