module P = Parqo.Props
module J = Parqo.Join_tree
module M = Parqo.Join_method
module O = Parqo.Ordering
module G = Parqo.Query_gen
module AP = Parqo.Access_path

let t name f = Alcotest.test_case name `Quick f

let setup () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  (catalog, query)

let join_preds () =
  let _, query = setup () in
  let j01 =
    match J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) with
    | J.Join j -> j
    | J.Access _ -> assert false
  in
  Alcotest.(check int) "connected pair" 1 (List.length (P.join_preds query j01));
  let j02 =
    match J.join M.Nested_loops ~outer:(J.access 0) ~inner:(J.access 2) with
    | J.Join j -> j
    | J.Access _ -> assert false
  in
  Alcotest.(check int) "cartesian pair" 0 (List.length (P.join_preds query j02))

let sort_keys () =
  let _, query = setup () in
  let j =
    match J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1) with
    | J.Join j -> j
    | J.Access _ -> assert false
  in
  let outer_key = P.sort_key_outer query j in
  let inner_key = P.sort_key_inner query j in
  Alcotest.(check int) "outer key" 1 (List.length outer_key);
  Alcotest.(check int) "inner key" 1 (List.length inner_key);
  Alcotest.(check int) "outer side rel" 0 (List.hd outer_key).O.rel;
  Alcotest.(check int) "inner side rel" 1 (List.hd inner_key).O.rel;
  Alcotest.(check string) "join column" "j0_1" (List.hd outer_key).O.column

let orderings () =
  let catalog, query = setup () in
  (* seq scan has no order *)
  Alcotest.(check bool) "scan unordered" true
    (O.equal O.none (P.ordering query (J.access 0)));
  (* index scan delivers the index key *)
  let idx = List.hd (Parqo.Catalog.indexes_of catalog "t0") in
  let tree = J.access ~path:(AP.Index_scan idx) 0 in
  Alcotest.(check bool) "index scan ordered" true
    (P.ordering query tree <> O.none);
  (* cloning destroys order *)
  let cloned = J.access ~path:(AP.Index_scan idx) ~clone:2 0 in
  Alcotest.(check bool) "cloned scan unordered" true
    (O.equal O.none (P.ordering query cloned));
  (* sort-merge delivers the outer key; hash preserves outer order *)
  let sm = J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1) in
  Alcotest.(check bool) "SM ordered on join col" true
    (P.ordering query sm <> O.none);
  let hj = J.join M.Hash_join ~outer:tree ~inner:(J.access 1) in
  Alcotest.(check bool) "HJ preserves outer order" true
    (O.equal (P.ordering query tree) (P.ordering query hj))

let partitioning () =
  let _, query = setup () in
  let cloned_join =
    J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)
  in
  (match P.partition_column query cloned_join with
  | Some c -> Alcotest.(check string) "partition on join col" "j0_1" c.O.column
  | None -> Alcotest.fail "expected a partition column");
  Alcotest.(check bool) "degree-1 join unpartitioned" true
    (P.partition_column query
       (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
    = None)

let suite =
  ( "props",
    [
      t "join preds" join_preds;
      t "sort keys" sort_keys;
      t "orderings" orderings;
      t "partitioning" partitioning;
    ] )
