module B = Parqo.Bounds
module Cm = Parqo.Costmodel
module G = Parqo.Query_gen
module Opt = Parqo.Optimizer

let t name f = Alcotest.test_case name `Quick f

let caps () =
  Alcotest.(check (option (float 1e-9))) "unbounded" None
    (B.partial_work_cap B.Unbounded ~work_opt:100. ~rt_opt:50.);
  Alcotest.(check (option (float 1e-9))) "throughput degradation"
    (Some 200.)
    (B.partial_work_cap (B.Throughput_degradation 2.) ~work_opt:100. ~rt_opt:50.);
  Alcotest.(check (option (float 1e-9))) "cost-benefit"
    (Some 150.)
    (B.partial_work_cap (B.Cost_benefit 1.) ~work_opt:100. ~rt_opt:50.)

let dummy_eval work rt =
  (* synthesize an eval through the real pipeline, then override is not
     possible (immutable); instead test [admits] through a real plan with
     scaled bounds *)
  ignore work;
  ignore rt

let admits () =
  let env = Helpers.chain_env ~n:2 () in
  let e =
    Cm.evaluate env
      (Parqo.Join_tree.join Parqo.Join_method.Hash_join
         ~outer:(Parqo.Join_tree.access 0) ~inner:(Parqo.Join_tree.access 1))
  in
  ignore (dummy_eval 0. 0.);
  (* the plan relative to itself as work-optimum: always admitted *)
  Alcotest.(check bool) "self admitted TD" true
    (B.admits (B.Throughput_degradation 1.) ~work_opt:e.Cm.work
       ~rt_opt:e.Cm.response_time e);
  Alcotest.(check bool) "self admitted CB" true
    (B.admits (B.Cost_benefit 0.) ~work_opt:e.Cm.work ~rt_opt:e.Cm.response_time e);
  (* a plan with double the work of the optimum *)
  Alcotest.(check bool) "TD 1.5 rejects 2x work" false
    (B.admits (B.Throughput_degradation 1.5) ~work_opt:(e.Cm.work /. 2.)
       ~rt_opt:e.Cm.response_time e);
  Alcotest.(check bool) "TD 3 admits 2x work" true
    (B.admits (B.Throughput_degradation 3.) ~work_opt:(e.Cm.work /. 2.)
       ~rt_opt:e.Cm.response_time e);
  (* cost-benefit: extra work admitted only if response time improves
     enough; here rt equals the optimum's, so extra work is rejected *)
  Alcotest.(check bool) "CB rejects no-benefit extra work" false
    (B.admits (B.Cost_benefit 10.) ~work_opt:(e.Cm.work /. 2.)
       ~rt_opt:e.Cm.response_time e);
  (* generous improvement: admitted *)
  Alcotest.(check bool) "CB admits paid-for work" true
    (B.admits (B.Cost_benefit 10.) ~work_opt:(e.Cm.work /. 2.)
       ~rt_opt:(e.Cm.response_time *. 10.) e)

(* end-to-end: RT(k) is non-increasing and W <= k * W_opt always holds *)
let bound_sweep_monotone () =
  let env = Helpers.chain_env ~n:4 () in
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let results =
    List.map
      (fun k ->
        let o =
          Opt.minimize_response_time ~config
            ~bound:(B.Throughput_degradation k) env
        in
        match (o.Opt.best, o.Opt.work_optimal) with
        | Some b, Some w ->
          Alcotest.(check bool)
            (Printf.sprintf "work within %.2fx" k)
            true
            (b.Cm.work <= (k *. w.Cm.work) +. 1e-6);
          b.Cm.response_time
        | _ -> Alcotest.fail "missing plan")
      [ 1.0; 1.5; 2.0; 4.0 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-6 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "rt non-increasing in budget" true (non_increasing results);
  (* k = 1: no extra work allowed; response time equals the work
     optimum's response time *)
  let tight =
    Opt.minimize_response_time ~config ~bound:(B.Throughput_degradation 1.0) env
  in
  match (tight.Opt.best, tight.Opt.work_optimal) with
  | Some b, Some w ->
    Alcotest.(check bool) "k=1 collapses to work optimum" true
      (b.Cm.response_time <= w.Cm.response_time +. 1e-6)
  | _ -> Alcotest.fail "missing plan"

let to_string () =
  Alcotest.(check string) "unbounded" "unbounded" (B.to_string B.Unbounded);
  Alcotest.(check string) "td" "throughput-degradation(2.00)"
    (B.to_string (B.Throughput_degradation 2.))

let suite =
  ( "bounds",
    [
      t "caps" caps;
      t "admits" admits;
      t "bound sweep monotone" bound_sweep_monotone;
      t "to_string" to_string;
    ] )
