module W = Parqo.Workloads
module Q = Parqo.Query

let t name f = Alcotest.test_case name `Quick f

let portfolio () =
  let db, query = W.portfolio ~seed:1 () in
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "four relations" 4 (Q.n_relations query);
  Alcotest.(check int) "three joins" 3 (List.length query.Q.joins);
  Alcotest.(check bool) "star around trade" true
    (Q.connected query (Parqo.Bitset.full 4));
  Alcotest.(check int) "trade rows" 1000
    (Array.length (Parqo.Datagen.rows_of db "trade"));
  (* scale parameter *)
  let db2, _ = W.portfolio ~scale:2 ~seed:1 () in
  Alcotest.(check int) "scaled trade rows" 2000
    (Array.length (Parqo.Datagen.rows_of db2 "trade"))

let university () =
  let db, query = W.university ~seed:1 () in
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two relations" 2 (Q.n_relations query);
  Alcotest.(check int) "three indexes" 3
    (List.length (Parqo.Catalog.indexes db.Parqo.Datagen.catalog))

let chain () =
  let db, query = W.chain_db ~n:5 ~rows:50 ~seed:1 () in
  Alcotest.(check int) "five relations" 5 (Q.n_relations query);
  Alcotest.(check int) "four joins" 4 (List.length query.Q.joins);
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Workloads.chain_db: n < 1") (fun () ->
      ignore (W.chain_db ~n:0 ~seed:1 ()))

let tpch () =
  let { W.db; q3; q5; q10 } = W.tpch ~seed:1 () in
  List.iter
    (fun (name, q) ->
      match Q.validate db.Parqo.Datagen.catalog q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    [ ("q3", q3); ("q5", q5); ("q10", q10) ];
  Alcotest.(check int) "q5 is a six-way join" 6 (Q.n_relations q5);
  Alcotest.(check int) "q5 has six predicates" 6 (List.length q5.Q.joins);
  Alcotest.(check bool) "q5 connected" true
    (Q.connected q5 (Parqo.Bitset.full 6));
  Alcotest.(check int) "lineitem rows" 6000
    (Array.length (Parqo.Datagen.rows_of db "lineitem"));
  Alcotest.(check int) "q3 orders by day" 1 (List.length q3.Q.order_by);
  (* scaling *)
  let { W.db = db2; _ } = W.tpch ~scale:2 ~seed:1 () in
  Alcotest.(check int) "scaled lineitem" 12000
    (Array.length (Parqo.Datagen.rows_of db2 "lineitem"))

let tpch_q3_executes () =
  let { W.db; q3; _ } = W.tpch ~seed:2 () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query:q3 () in
  let o = Parqo.Optimizer.minimize_response_time env in
  match o.Parqo.Optimizer.best with
  | None -> Alcotest.fail "no plan"
  | Some best ->
    let out = Parqo.Executor.run_query db q3 best.Parqo.Costmodel.tree in
    let reference = Parqo.Executor.reference db q3 in
    (* reference applies no ORDER BY; compare as bags *)
    Alcotest.(check bool) "matches reference bag" true
      (Parqo.Batch.equal_bags out reference);
    (* the optimizer accounted for the ORDER BY *)
    Alcotest.(check bool) "rows ordered by o_day" true
      (let day_col = 1 in
       let rec sorted = function
         | a :: (b :: _ as rest) ->
           Parqo.Value.compare a.(day_col) b.(day_col) <= 0 && sorted rest
         | _ -> true
       in
       sorted out.Parqo.Batch.rows)

let deterministic () =
  let a, _ = W.portfolio ~seed:42 () and b, _ = W.portfolio ~seed:42 () in
  Alcotest.(check bool) "same seed, same data" true
    (Parqo.Datagen.rows_of a "trade" = Parqo.Datagen.rows_of b "trade")

let suite =
  ( "workloads",
    [
      t "portfolio" portfolio;
      t "university" university;
      t "chain" chain;
      t "tpch" tpch;
      t "tpch q3 executes" tpch_q3_executes;
      t "deterministic" deterministic;
    ] )
