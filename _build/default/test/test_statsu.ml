module S = Parqo.Statsu

let t name f = Alcotest.test_case name `Quick f

let summary () =
  let s = S.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "n" 4 s.S.n;
  Helpers.check_float "mean" 2.5 s.S.mean;
  Helpers.check_float "min" 1. s.S.min;
  Helpers.check_float "max" 4. s.S.max;
  Helpers.check_float ~eps:1e-9 "stddev" (sqrt 1.25) s.S.stddev

let correlation () =
  Helpers.check_float "perfect spearman" 1.
    (S.spearman [ 1.; 2.; 3.; 4. ] [ 10.; 20.; 30.; 40. ]);
  Helpers.check_float "inverse spearman" (-1.)
    (S.spearman [ 1.; 2.; 3.; 4. ] [ 4.; 3.; 2.; 1. ]);
  (* monotone but nonlinear: spearman 1, pearson < 1 *)
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  let ys = List.map (fun x -> x *. x *. x) xs in
  Helpers.check_float "spearman on monotone" 1. (S.spearman xs ys);
  Alcotest.(check bool) "pearson below 1 on nonlinear" true (S.pearson xs ys < 1.)

let ties () =
  (* ties get average ranks; correlation of a constant list is 0 *)
  Helpers.check_float "constant series" 0.
    (S.spearman [ 1.; 1.; 1. ] [ 1.; 2.; 3. ])

let quantiles () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Helpers.check_float "median" 3. (S.quantile 0.5 xs);
  Helpers.check_float "min" 1. (S.quantile 0. xs);
  Helpers.check_float "max" 5. (S.quantile 1. xs);
  Helpers.check_float "interpolated" 1.5 (S.quantile 0.125 xs)

let errors () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Statsu.summarize")
    (fun () -> ignore (S.summarize []));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Statsu.pearson")
    (fun () -> ignore (S.pearson [ 1. ] [ 1.; 2. ]))

let suite =
  ( "statsu",
    [
      t "summary" summary;
      t "correlation" correlation;
      t "ties" ties;
      t "quantiles" quantiles;
      t "errors" errors;
    ] )
