module S = Parqo.Space
module J = Parqo.Join_tree
module M = Parqo.Join_method
module B = Parqo.Bitset
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env () = Helpers.chain_env ()

let access_plan_counts () =
  let env = env () in
  (* chain t0 has 1 join edge -> 1 index (+1 seq scan) with default config *)
  let plans = S.access_plans env S.default_config 0 in
  Alcotest.(check int) "seq + index" 2 (List.length plans);
  let no_idx = S.access_plans env { S.default_config with S.use_indexes = false } 0 in
  Alcotest.(check int) "seq only" 1 (List.length no_idx);
  let degrees =
    S.access_plans env { S.default_config with S.clone_degrees = [ 1; 2; 4 ] } 0
  in
  Alcotest.(check int) "3 degrees x 2 paths" 6 (List.length degrees);
  Alcotest.(check int) "minimal config" 1
    (List.length (S.access_plans env S.minimal_config 0))

let connects () =
  let env = env () in
  Alcotest.(check bool) "chain neighbors" true
    (S.connects env (B.singleton 0) (B.singleton 1));
  Alcotest.(check bool) "chain non-neighbors" false
    (S.connects env (B.singleton 0) (B.singleton 2));
  Alcotest.(check bool) "via set" true
    (S.connects env (B.of_list [ 0; 1 ]) (B.singleton 2))

let join_candidate_methods () =
  let env = env () in
  let outer = J.access 0 in
  (* connected pair: all three methods appear *)
  let cands = S.join_candidates env S.default_config ~outer ~rel:1 in
  let methods =
    List.sort_uniq compare
      (List.filter_map
         (function J.Join j -> Some j.J.method_ | J.Access _ -> None)
         cands)
  in
  Alcotest.(check int) "three methods" 3 (List.length methods);
  (* cartesian pair: nested loops only *)
  let cart = S.join_candidates env S.default_config ~outer ~rel:2 in
  List.iter
    (fun c ->
      match c with
      | J.Join j ->
        Alcotest.(check bool) "NL only for cartesian" true
          (j.J.method_ = M.Nested_loops)
      | J.Access _ -> Alcotest.fail "expected join")
    cart

let materialize_choices () =
  let env = env () in
  let outer = J.access 0 in
  let without = S.join_candidates env S.default_config ~outer ~rel:1 in
  let with_mat =
    S.join_candidates env
      { S.default_config with S.materialize_choices = true }
      ~outer ~rel:1
  in
  Alcotest.(check int) "materialize doubles candidates"
    (2 * List.length without)
    (List.length with_mat)

let parallel_config () =
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let cfg = S.parallel_config machine in
  Alcotest.(check (list int)) "degrees powers of two" [ 1; 2; 4 ] cfg.S.clone_degrees;
  Alcotest.(check bool) "materialize on" true cfg.S.materialize_choices;
  let seq = S.parallel_config (Parqo.Machine.sequential ()) in
  Alcotest.(check (list int)) "sequential machine degree 1" [ 1 ] seq.S.clone_degrees

let all_candidates_well_formed () =
  let env = env () in
  let outer = J.access 0 in
  let cands =
    S.join_candidates env (S.parallel_config env.Parqo.Env.machine) ~outer ~rel:1
  in
  Alcotest.(check bool) "non-empty" true (cands <> []);
  List.iter
    (fun c ->
      match J.well_formed ~n_relations:4 c with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    cands

let suite =
  ( "space",
    [
      t "access plan counts" access_plan_counts;
      t "connects" connects;
      t "join candidate methods" join_candidate_methods;
      t "materialize choices" materialize_choices;
      t "parallel config" parallel_config;
      t "candidates well-formed" all_candidates_well_formed;
    ] )
