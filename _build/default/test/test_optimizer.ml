module Opt = Parqo.Optimizer
module Cm = Parqo.Costmodel
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env () = Helpers.chain_env ()

let minimize_work_shapes () =
  let env = env () in
  let ld = Opt.minimize_work env in
  let bushy = Opt.minimize_work ~shape:Opt.Bushy env in
  match (ld.Opt.best, bushy.Opt.best) with
  | Some l, Some b ->
    Alcotest.(check bool) "left-deep result is left-deep" true
      (Parqo.Join_tree.is_left_deep l.Cm.tree);
    Alcotest.(check bool) "bushy at least as good" true
      (b.Cm.work <= l.Cm.work +. 1e-6)
  | _ -> Alcotest.fail "missing plan"

let rt_beats_work_plan () =
  let env = env () in
  let config = Parqo.Space.parallel_config env.Parqo.Env.machine in
  let o = Opt.minimize_response_time ~config env in
  match (o.Opt.best, o.Opt.work_optimal) with
  | Some best, Some wopt ->
    (* the whole point of the paper: buying response time with work *)
    Alcotest.(check bool) "rt-optimal at most work-optimal's rt" true
      (best.Cm.response_time <= wopt.Cm.response_time +. 1e-6);
    Alcotest.(check bool) "on a parallel machine it strictly wins" true
      (best.Cm.response_time < wopt.Cm.response_time);
    Alcotest.(check bool) "and pays some extra work" true
      (best.Cm.work >= wopt.Cm.work)
  | _ -> Alcotest.fail "missing plan"

let work_phase_always_runs () =
  let env = env () in
  let o = Opt.minimize_response_time env in
  Alcotest.(check bool) "work stats present" true (o.Opt.work_stats <> None);
  Alcotest.(check bool) "work optimal present" true (o.Opt.work_optimal <> None)

let sequential_machine_degenerates () =
  (* on one cpu/one disk there is no parallelism to buy: the rt-optimal
     plan does not clone *)
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let machine = Parqo.Machine.sequential () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let config = Parqo.Space.parallel_config machine in
  let o = Opt.minimize_response_time ~config env in
  match o.Opt.best with
  | Some b ->
    List.iter
      (fun (j : Parqo.Join_tree.join) ->
        Alcotest.(check int) "no cloning" 1 j.Parqo.Join_tree.clone)
      (Parqo.Join_tree.joins b.Cm.tree)
  | None -> Alcotest.fail "no plan"

let fallback_to_work_optimal () =
  (* with a tight bound the answer must still exist (the work optimum is
     always admissible) *)
  let env = env () in
  let o =
    Opt.minimize_response_time
      ~bound:(Parqo.Bounds.Throughput_degradation 1.0) env
  in
  Alcotest.(check bool) "always a plan" true (o.Opt.best <> None)

(* the System R interesting-orders remedy: work-with-orders never loses
   to Figure 1 on work, and matches brute force on instances where plain
   DP is tripped up by a saved sort *)
let orders_fix_work_optimality () =
  let rng = Parqo.Rng.create 77 in
  for _ = 1 to 6 do
    let env = Helpers.random_env rng ~n:3 in
    let fig1 = Opt.minimize_work env in
    let fixed = Opt.minimize_work_with_orders env in
    let brute =
      Parqo.Brute.leftdeep ~objective:(fun (e : Cm.eval) -> e.Cm.work) env
    in
    match (fig1.Opt.best, fixed.Opt.best, brute.Parqo.Brute.best) with
    | Some f1, Some fx, Some b ->
      Alcotest.(check bool) "with-orders <= Figure 1" true
        (fx.Cm.work <= f1.Cm.work +. 1e-6);
      Helpers.check_float ~eps:1e-6 "with-orders = brute optimum" b.Cm.work
        fx.Cm.work
    | _ -> Alcotest.fail "missing plan"
  done

let suite =
  ( "optimizer",
    [
      t "interesting-orders work fix" orders_fix_work_optimality;
      t "minimize work shapes" minimize_work_shapes;
      t "rt beats work plan" rt_beats_work_plan;
      t "work phase always runs" work_phase_always_runs;
      t "sequential machine degenerates" sequential_machine_degenerates;
      t "fallback to work optimal" fallback_to_work_optimal;
    ] )
