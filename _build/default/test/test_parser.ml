module Q = Parqo.Query
module P = Parqo.Sql

let t name f = Alcotest.test_case name `Quick f

let catalog =
  let col = Parqo.Stats.column ~distinct:10. ~min_v:0. ~max_v:9. () in
  Parqo.Catalog.create
    ~tables:
      [
        Parqo.Table.create ~name:"emp"
          ~columns:[ ("id", col); ("dept_id", col); ("salary", col) ]
          ~cardinality:100. ();
        Parqo.Table.create ~name:"dept"
          ~columns:[ ("id", col); ("city", col) ]
          ~cardinality:10. ();
      ]
    ~indexes:[]

let parse s =
  match P.parse ~catalog s with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse failed: %s" e

let simple_select () =
  let q = parse "SELECT * FROM emp" in
  Alcotest.(check int) "one relation" 1 (Q.n_relations q);
  Alcotest.(check int) "no joins" 0 (List.length q.Q.joins);
  Alcotest.(check int) "no projection" 0 (List.length q.Q.projection)

let join_query () =
  let q = parse "SELECT e.id FROM emp e, dept d WHERE e.dept_id = d.id" in
  Alcotest.(check int) "two relations" 2 (Q.n_relations q);
  Alcotest.(check int) "one join" 1 (List.length q.Q.joins);
  Alcotest.(check string) "alias" "e" (Q.alias q 0);
  Alcotest.(check string) "table" "emp" (Q.table_name q 0);
  Alcotest.(check int) "projection" 1 (List.length q.Q.projection)

let selections () =
  let q = parse "SELECT * FROM emp WHERE salary >= 5 AND id <> 3" in
  Alcotest.(check int) "two selections" 2 (List.length q.Q.selections);
  let s = List.hd q.Q.selections in
  Alcotest.(check string) "column resolved" "salary" s.Q.on.Q.column;
  Alcotest.(check bool) "cmp" true (s.Q.cmp = Q.Ge)

let literal_flip () =
  let q = parse "SELECT * FROM emp WHERE 5 < salary" in
  let s = List.hd q.Q.selections in
  Alcotest.(check bool) "flipped to >" true (s.Q.cmp = Q.Gt)

let unqualified_resolution () =
  let q = parse "SELECT city FROM emp, dept WHERE dept_id = city" in
  Alcotest.(check int) "join recognized" 1 (List.length q.Q.joins);
  let j = List.hd q.Q.joins in
  Alcotest.(check int) "dept_id owner" 0 j.Q.left.Q.rel;
  Alcotest.(check int) "city owner" 1 j.Q.right.Q.rel

let string_and_float_literals () =
  let q = parse "SELECT * FROM dept WHERE city = 'paris'" in
  (match (List.hd q.Q.selections).Q.value with
  | Parqo.Value.Str s -> Alcotest.(check string) "string literal" "paris" s
  | _ -> Alcotest.fail "expected string");
  let q2 = parse "SELECT * FROM emp WHERE salary <= 3.5" in
  match (List.hd q2.Q.selections).Q.value with
  | Parqo.Value.Flt f -> Helpers.check_float "float literal" 3.5 f
  | _ -> Alcotest.fail "expected float"

let case_insensitive_keywords () =
  let q = parse "select * from emp where salary > 1" in
  Alcotest.(check int) "parsed" 1 (List.length q.Q.selections)

let roundtrip () =
  let q = parse "SELECT e.id FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary < 5" in
  let q2 = parse (Q.to_sql q) in
  Alcotest.(check string) "sql fixpoint" (Q.to_sql q) (Q.to_sql q2)

let errors () =
  let expect_error s =
    match P.parse ~catalog s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" s
  in
  expect_error "SELECT";
  expect_error "SELECT * FROM";
  expect_error "SELECT * FROM ghost";
  expect_error "SELECT * FROM emp WHERE nope = 1";
  expect_error "SELECT * FROM emp e, dept d WHERE e.id < d.id";
  (* non-equi join *)
  expect_error "SELECT * FROM emp WHERE id = id";
  (* self-relating predicate *)
  expect_error "SELECT * FROM emp, dept WHERE id = 1";
  (* ambiguous unqualified column *)
  expect_error "SELECT * FROM emp WHERE 1 = 2";
  (* two literals *)
  expect_error "SELECT * FROM emp WHERE salary = 'unterminated"

let fuzz_no_crash =
  Helpers.qtest ~count:300 "arbitrary input never raises"
    QCheck2.Gen.(string_size ~gen:printable (int_bound 60))
    (fun s -> match P.parse ~catalog s with Ok _ | Error _ -> true)

let fuzz_mutations =
  let base = "SELECT e.id FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary < 5" in
  Helpers.qtest ~count:300 "mutated SQL never raises"
    QCheck2.Gen.(pair (int_bound (String.length base - 1)) printable)
    (fun (i, c) ->
      let mutated = String.mapi (fun j x -> if i = j then c else x) base in
      match P.parse ~catalog mutated with Ok _ | Error _ -> true)

let suite =
  ( "parser",
    [
      fuzz_no_crash;
      fuzz_mutations;
      t "simple select" simple_select;
      t "join query" join_query;
      t "selections" selections;
      t "literal flip" literal_flip;
      t "unqualified resolution" unqualified_resolution;
      t "literals" string_and_float_literals;
      t "case insensitive" case_insensitive_keywords;
      t "roundtrip" roundtrip;
      t "errors" errors;
    ] )
