(* End-to-end: SQL text -> parse -> optimize -> execute -> simulate, over
   the canned workloads. *)

module Opt = Parqo.Optimizer
module Cm = Parqo.Costmodel
module Ex = Parqo.Executor
module B = Parqo.Batch

let t name f = Alcotest.test_case name `Quick f

let optimize_and_execute db query =
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env =
    Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query ()
  in
  let config = Parqo.Space.parallel_config machine in
  let o = Opt.minimize_response_time ~config env in
  match o.Opt.best with
  | None -> Alcotest.fail "no plan"
  | Some best ->
    let result = Ex.run_query db query best.Cm.tree in
    let reference = Ex.reference db query in
    Alcotest.(check bool) "optimized plan gives the right answer" true
      (B.equal_bags result reference);
    (env, best)

let portfolio_end_to_end () =
  let db, query = Parqo.Workloads.portfolio ~seed:11 () in
  let env, best = optimize_and_execute db query in
  (* the plan simulates without error and in plausible agreement with the
     cost model *)
  let sim = Parqo.Simulator.simulate_plan env best.Cm.tree in
  Alcotest.(check bool) "simulated response time positive" true
    (sim.Parqo.Simulator.makespan > 0.);
  Alcotest.(check bool) "sim within 4x of prediction" true
    (sim.Parqo.Simulator.makespan < 4. *. best.Cm.response_time
    && best.Cm.response_time < 4. *. sim.Parqo.Simulator.makespan)

let university_end_to_end () =
  let db, query = Parqo.Workloads.university ~seed:3 () in
  ignore (optimize_and_execute db query)

let sql_to_result () =
  let db, _ = Parqo.Workloads.portfolio ~seed:11 () in
  let catalog = db.Parqo.Datagen.catalog in
  let query =
    Parqo.Sql.parse_exn ~catalog
      "SELECT t.price, s.stock_id FROM trade t, stock s WHERE t.stock_id = \
       s.stock_id AND t.qty <= 3"
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:2 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let o = Opt.minimize_work env in
  match o.Opt.best with
  | None -> Alcotest.fail "no plan"
  | Some best ->
    let out = Ex.run_query db query best.Cm.tree in
    Alcotest.(check int) "projected width" 2 (B.width out);
    Alcotest.(check bool) "selection applied" true
      (B.n_rows out < Array.length (Parqo.Datagen.rows_of db "trade"));
    (* cross-check against the reference executor *)
    Alcotest.(check bool) "matches reference" true
      (B.equal_bags out (Ex.reference db query))

let estimator_grounded_in_data () =
  (* estimated join cardinality within a sane factor of the true result
     for FK joins on generated data *)
  let db, query = Parqo.Workloads.chain_db ~n:3 ~rows:400 ~seed:23 () in
  let est = Parqo.Estimator.create db.Parqo.Datagen.catalog query in
  let predicted = Parqo.Estimator.card est (Parqo.Bitset.full 3) in
  let reference = Ex.reference db query in
  let actual = float_of_int (B.n_rows reference) in
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.0f vs actual %.0f within 5x" predicted actual)
    true
    (predicted < 5. *. actual && actual < 5. *. predicted)

let every_algorithm_same_answer () =
  (* all six search algorithms return plans computing the same result *)
  let db, query = Parqo.Workloads.chain_db ~n:3 ~rows:60 ~seed:5 () in
  let machine = Parqo.Machine.shared_nothing ~nodes:2 () in
  let env =
    Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query ()
  in
  let reference = Ex.reference db query in
  let metric = Opt.default_metric env in
  let plans =
    [
      (Parqo.Dp.optimize env).Parqo.Dp.best;
      (Parqo.Podp.optimize ~metric env).Parqo.Podp.best;
      (Parqo.Bushy.optimize_scalar env).Parqo.Bushy.best;
      (Parqo.Bushy.optimize_po ~metric ~max_cover:16 env).Parqo.Bushy.best;
      (Parqo.Brute.leftdeep env).Parqo.Brute.best;
      (Parqo.Brute.bushy ~config:Parqo.Space.minimal_config env).Parqo.Brute.best;
    ]
  in
  List.iteri
    (fun i plan ->
      match plan with
      | None -> Alcotest.failf "algorithm %d found no plan" i
      | Some (e : Cm.eval) ->
        Alcotest.(check bool)
          (Printf.sprintf "algorithm %d equivalent" i)
          true
          (B.equal_bags reference (Ex.run_query db query e.Cm.tree)))
    plans

let suite =
  ( "integration",
    [
      t "portfolio end-to-end" portfolio_end_to_end;
      t "university end-to-end" university_end_to_end;
      t "sql to result" sql_to_result;
      t "estimator grounded" estimator_grounded_in_data;
      t "every algorithm same answer" every_algorithm_same_answer;
    ] )
