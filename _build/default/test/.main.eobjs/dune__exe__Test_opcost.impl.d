test/test_opcost.ml: Alcotest Helpers List Parqo Printf
