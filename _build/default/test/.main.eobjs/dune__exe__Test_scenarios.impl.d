test/test_scenarios.ml: Alcotest Helpers List Parqo
