test/test_costmodel.ml: Alcotest Helpers List Parqo
