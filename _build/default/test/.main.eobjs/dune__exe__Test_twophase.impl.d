test/test_twophase.ml: Alcotest List Parqo
