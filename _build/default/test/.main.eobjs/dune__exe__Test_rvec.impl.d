test/test_rvec.ml: Alcotest Float Helpers Parqo QCheck2
