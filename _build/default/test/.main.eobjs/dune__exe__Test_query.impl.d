test/test_query.ml: Alcotest List Parqo String
