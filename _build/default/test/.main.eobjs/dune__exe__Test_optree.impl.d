test/test_optree.ml: Alcotest List Parqo String
