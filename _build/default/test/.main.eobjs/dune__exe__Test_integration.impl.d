test/test_integration.ml: Alcotest Array List Parqo Printf
