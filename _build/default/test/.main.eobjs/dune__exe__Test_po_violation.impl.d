test/test_po_violation.ml: Alcotest Helpers List Parqo
