test/test_query_gen.ml: Alcotest Helpers List Parqo Printf
