test/test_parallel_exec.ml: Alcotest Helpers List Parqo Printf
