test/test_plan_io.ml: Alcotest Helpers List Parqo Printf QCheck2 String
