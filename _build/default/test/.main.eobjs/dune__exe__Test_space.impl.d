test/test_space.ml: Alcotest Helpers List Parqo
