test/test_pqueue.ml: Alcotest Helpers List Parqo QCheck2
