test/main.mli:
