test/test_taskgraph.ml: Alcotest Array Helpers List Parqo
