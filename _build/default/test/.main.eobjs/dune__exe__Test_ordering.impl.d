test/test_ordering.ml: Alcotest Char Helpers Parqo QCheck2 String
