test/test_explain.ml: Alcotest Helpers List Parqo String
