test/test_optimizer.ml: Alcotest Helpers List Parqo
