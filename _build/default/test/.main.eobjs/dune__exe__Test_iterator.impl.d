test/test_iterator.ml: Alcotest Array Helpers List Parqo Printf
