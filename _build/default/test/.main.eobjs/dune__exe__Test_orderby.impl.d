test/test_orderby.ml: Alcotest Array Helpers List Parqo
