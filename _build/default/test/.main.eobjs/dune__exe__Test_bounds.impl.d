test/test_bounds.ml: Alcotest Helpers List Parqo Printf
