test/test_podp.ml: Alcotest Helpers List Parqo Printf
