test/test_exec.ml: Alcotest Array Helpers List Parqo Printf
