test/test_greedy.ml: Alcotest Float Hashtbl Helpers List Parqo Printf
