test/test_props.ml: Alcotest List Parqo
