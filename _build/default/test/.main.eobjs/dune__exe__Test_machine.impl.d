test/test_machine.ml: Alcotest List Parqo
