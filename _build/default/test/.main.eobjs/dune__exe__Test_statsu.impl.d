test/test_statsu.ml: Alcotest Helpers List Parqo
