test/test_join_tree.ml: Alcotest List Parqo
