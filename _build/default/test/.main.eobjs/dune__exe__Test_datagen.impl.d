test/test_datagen.ml: Alcotest Array Helpers Parqo
