test/test_rng.ml: Alcotest Array Float List Parqo
