test/test_tableau.ml: Alcotest Float List Parqo String
