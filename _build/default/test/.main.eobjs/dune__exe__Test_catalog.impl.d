test/test_catalog.ml: Alcotest Helpers List Parqo
