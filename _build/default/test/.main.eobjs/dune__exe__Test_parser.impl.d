test/test_parser.ml: Alcotest Helpers List Parqo QCheck2 String
