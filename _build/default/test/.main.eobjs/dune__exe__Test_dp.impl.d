test/test_dp.ml: Alcotest Helpers List Parqo Printf
