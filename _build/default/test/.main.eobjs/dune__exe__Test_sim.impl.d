test/test_sim.ml: Alcotest Array Float Helpers List Parqo Printf String
