test/test_combin.ml: Alcotest Helpers Parqo QCheck2
