test/test_estimator.ml: Alcotest Helpers List Parqo
