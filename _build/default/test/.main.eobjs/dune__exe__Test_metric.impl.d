test/test_metric.ml: Alcotest Helpers List Parqo
