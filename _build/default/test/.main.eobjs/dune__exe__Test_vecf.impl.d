test/test_vecf.ml: Alcotest Array Float Helpers Parqo QCheck2
