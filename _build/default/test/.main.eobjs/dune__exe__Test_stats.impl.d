test/test_stats.ml: Alcotest Array Float Helpers List Parqo Printf QCheck2
