test/test_descriptor.ml: Alcotest Float Helpers List Parqo QCheck2
