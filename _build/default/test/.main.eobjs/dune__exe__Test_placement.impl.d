test/test_placement.ml: Alcotest List Parqo
