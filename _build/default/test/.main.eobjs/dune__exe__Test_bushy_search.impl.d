test/test_bushy_search.ml: Alcotest Helpers List Parqo Printf
