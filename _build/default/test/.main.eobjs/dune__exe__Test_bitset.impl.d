test/test_bitset.ml: Alcotest Helpers List Parqo QCheck2
