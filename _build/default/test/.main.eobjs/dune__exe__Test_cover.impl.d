test/test_cover.ml: Alcotest Array Float List Parqo Printf
