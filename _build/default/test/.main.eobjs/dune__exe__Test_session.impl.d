test/test_session.ml: Alcotest List Parqo String
