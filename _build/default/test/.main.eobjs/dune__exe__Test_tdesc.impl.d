test/test_tdesc.ml: Alcotest Helpers List Parqo QCheck2
