test/helpers.ml: Alcotest Float Fmt Parqo QCheck2 QCheck_alcotest
