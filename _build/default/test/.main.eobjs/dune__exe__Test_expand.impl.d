test/test_expand.ml: Alcotest Float Helpers List Parqo
