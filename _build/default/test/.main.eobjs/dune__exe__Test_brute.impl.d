test/test_brute.ml: Alcotest Float Helpers List Parqo Printf
