module M = Parqo.Machine
module R = Parqo.Resource

let t name f = Alcotest.test_case name `Quick f

let shared_nothing () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "4 cpus" 4 (List.length (M.cpu_ids m));
  Alcotest.(check int) "4 disks" 4 (List.length (M.disk_ids m));
  Alcotest.(check bool) "has network" true (M.network m <> None);
  Alcotest.(check int) "9 resources" 9 (M.n_resources m);
  (* node-local lookups *)
  let cpu2 = M.node_cpu m 2 in
  Alcotest.(check int) "cpu2 on node 2" 2 cpu2.R.node;
  let disk2 = M.node_disk m 2 in
  Alcotest.(check bool) "disk co-located" true (disk2.R.node = 2);
  (* single node has no network *)
  let solo = M.shared_nothing ~nodes:1 () in
  Alcotest.(check bool) "single node, no net" true (M.network solo = None)

let shared_memory () =
  let m = M.shared_memory ~cpus:4 ~disks:2 () in
  Alcotest.(check int) "4 cpus" 4 (List.length (M.cpu_ids m));
  Alcotest.(check int) "2 disks" 2 (List.length (M.disk_ids m));
  Alcotest.(check bool) "no network" true (M.network m = None);
  Alcotest.(check int) "one node" 1 m.M.nodes

let special_machines () =
  let seq = M.sequential () in
  Alcotest.(check int) "sequential: 2 resources" 2 (M.n_resources seq);
  let two = M.two_disks () in
  Alcotest.(check int) "example 3: disks only" 2 (List.length (M.disk_ids two));
  Alcotest.(check int) "example 3: no cpus" 0 (List.length (M.cpu_ids two))

let aggregation_modes () =
  let m = M.shared_nothing ~nodes:4 () in
  let check_mode name agg expected_dims =
    let dims, group = M.aggregate m agg in
    Alcotest.(check int) (name ^ " dims") expected_dims dims;
    (* every resource maps into range *)
    for id = 0 to M.n_resources m - 1 do
      let g = group id in
      Alcotest.(check bool) (name ^ " in range") true (g >= 0 && g < dims)
    done
  in
  check_mode "single" M.Single 1;
  check_mode "by-kind" M.By_kind 3;
  check_mode "by-node" M.By_node 4;
  check_mode "per-resource" M.Per_resource 9;
  (* by-kind groups cpus together *)
  let _, group = M.aggregate m M.By_kind in
  let cpu_groups = List.map group (M.cpu_ids m) in
  Alcotest.(check int) "all cpus one group" 1
    (List.length (List.sort_uniq compare cpu_groups));
  (* machines without a network have only two kinds *)
  let sm = M.shared_memory ~cpus:2 ~disks:2 () in
  Alcotest.(check int) "shared memory kinds" 2 (fst (M.aggregate sm M.By_kind))

let params_sanity () =
  let p = M.default_params in
  Alcotest.(check bool) "costs positive" true
    (p.M.io_page_cost > 0. && p.M.cpu_tuple_cost > 0.
    && p.M.tuples_per_page > 0.);
  Alcotest.(check bool) "delta k sane" true (p.M.pipeline_delta_k >= 0.)

let errors () =
  Alcotest.check_raises "0 nodes" (Invalid_argument "Machine.shared_nothing")
    (fun () -> ignore (M.shared_nothing ~nodes:0 ()));
  Alcotest.check_raises "0 cpus" (Invalid_argument "Machine.shared_memory")
    (fun () -> ignore (M.shared_memory ~cpus:0 ~disks:1 ()));
  let two = M.two_disks () in
  Alcotest.check_raises "no cpu on diskful machine" Not_found (fun () ->
      ignore (M.node_cpu two 0))

let suite =
  ( "machine",
    [
      t "shared nothing" shared_nothing;
      t "shared memory" shared_memory;
      t "special machines" special_machines;
      t "aggregation modes" aggregation_modes;
      t "params sanity" params_sanity;
      t "errors" errors;
    ] )
