module T = Parqo.Tableau

let t name f = Alcotest.test_case name `Quick f

let render () =
  let tbl =
    T.create ~title:"demo" ~columns:[ ("name", T.Left); ("value", T.Right) ]
  in
  T.add_row tbl [ "alpha"; "1" ];
  T.add_rule tbl;
  T.add_row tbl [ "b"; "20" ];
  let s = T.render tbl in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  (* all data present *)
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and h = String.length s in
        let rec scan i = i + n <= h && (String.sub s i n = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true found)
    [ "alpha"; "20"; "value" ]

let width_mismatch () =
  let tbl = T.create ~title:"x" ~columns:[ ("a", T.Left) ] in
  Alcotest.check_raises "row too wide"
    (Invalid_argument "Tableau.add_row: width mismatch") (fun () ->
      T.add_row tbl [ "1"; "2" ])

let cells () =
  Alcotest.(check string) "integer float" "42" (T.cell_float 42.);
  Alcotest.(check string) "decimals" "3.14" (T.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (T.cell_float Float.nan);
  Alcotest.(check string) "big goes scientific" "1.000e+08" (T.cell_float 1e8);
  Alcotest.(check string) "int" "7" (T.cell_int 7)

let csv () =
  let tbl =
    T.create ~title:"x" ~columns:[ ("a", T.Left); ("b", T.Right) ]
  in
  T.add_row tbl [ "plain"; "1" ];
  T.add_rule tbl;
  T.add_row tbl [ "comma, quoted \"q\""; "2" ];
  Alcotest.(check string) "csv escaping"
    "a,b\nplain,1\n\"comma, quoted \"\"q\"\"\",2\n" (T.to_csv tbl)

let suite =
  ( "tableau",
    [
      t "render" render;
      t "width mismatch" width_mismatch;
      t "cells" cells;
      t "csv" csv;
    ] )
