module J = Parqo.Join_tree
module M = Parqo.Join_method
module B = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

let leaf r = J.access r

let left_deep =
  J.join M.Hash_join
    ~outer:(J.join M.Sort_merge ~outer:(leaf 0) ~inner:(leaf 1))
    ~inner:(leaf 2)

let bushy =
  J.join M.Nested_loops
    ~outer:(J.join M.Hash_join ~outer:(leaf 0) ~inner:(leaf 1))
    ~inner:(J.join M.Sort_merge ~outer:(leaf 2) ~inner:(leaf 3))

let structure () =
  Alcotest.(check (list int)) "relations" [ 0; 1; 2 ]
    (B.to_list (J.relations left_deep));
  Alcotest.(check int) "leaves" 3 (J.n_leaves left_deep);
  Alcotest.(check int) "joins" 2 (J.n_joins left_deep);
  Alcotest.(check bool) "left deep" true (J.is_left_deep left_deep);
  Alcotest.(check bool) "bushy is not left deep" false (J.is_left_deep bushy);
  Alcotest.(check int) "bushy joins" 3 (J.n_joins bushy);
  Alcotest.(check (list int)) "leaf order" [ 0; 1; 2 ]
    (List.map (fun (a : J.access) -> a.J.rel) (J.leaves left_deep))

let folding () =
  let sum = J.fold ~access:(fun a -> a.J.rel) ~join:(fun _ l r -> l + r) bushy in
  Alcotest.(check int) "fold sums leaves" 6 sum

let well_formedness () =
  (match J.well_formed ~n_relations:3 left_deep with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let dup = J.join M.Hash_join ~outer:(leaf 0) ~inner:(leaf 0) in
  (match J.well_formed ~n_relations:2 dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected duplicate-relation error");
  match J.well_formed ~n_relations:2 left_deep with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected out-of-range error"

let equality () =
  Alcotest.(check bool) "equal to itself" true (J.equal left_deep left_deep);
  let other = J.join M.Hash_join ~outer:(leaf 0) ~inner:(leaf 1) in
  Alcotest.(check bool) "different trees differ" false (J.equal left_deep other);
  let cloned = J.join ~clone:2 M.Hash_join ~outer:(leaf 0) ~inner:(leaf 1) in
  Alcotest.(check bool) "clone matters" false (J.equal other cloned)

let rendering () =
  Alcotest.(check string) "compact form" "HJ(SM(scan(r0), scan(r1)), scan(r2))"
    (J.to_string left_deep);
  let annotated = J.join ~clone:4 ~materialize:true M.Hash_join ~outer:(leaf 0) ~inner:(leaf 1) in
  Alcotest.(check string) "annotations rendered" "HJ/4!(scan(r0), scan(r1))"
    (J.to_string annotated)

let errors () =
  Alcotest.check_raises "clone < 1" (Invalid_argument "Join_tree.access: clone < 1")
    (fun () -> ignore (J.access ~clone:0 1))

let suite =
  ( "join-tree",
    [
      t "structure" structure;
      t "folding" folding;
      t "well-formedness" well_formedness;
      t "equality" equality;
      t "rendering" rendering;
      t "errors" errors;
    ] )
