module P = Parqo.Pqueue

let t name f = Alcotest.test_case name `Quick f

let basics () =
  Alcotest.(check bool) "empty" true (P.is_empty P.empty);
  let q = P.insert 3. "c" (P.insert 1. "a" (P.insert 2. "b" P.empty)) in
  Alcotest.(check int) "size" 3 (P.size q);
  (match P.min q with
  | Some (p, v) ->
    Helpers.check_float "min prio" 1. p;
    Alcotest.(check string) "min value" "a" v
  | None -> Alcotest.fail "expected a minimum");
  match P.pop q with
  | Some (_, v, q') ->
    Alcotest.(check string) "pop order" "a" v;
    Alcotest.(check int) "size after pop" 2 (P.size q')
  | None -> Alcotest.fail "expected pop"

let sorted_drain () =
  let entries = [ (5., 5); (1., 1); (3., 3); (2., 2); (4., 4) ] in
  let q = P.of_list entries in
  let drained = P.to_sorted_list q in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.map snd drained)

let prop_heap_order =
  Helpers.qtest "drain is non-decreasing"
    QCheck2.Gen.(list_size (int_bound 50) (float_bound_inclusive 1000.))
    (fun prios ->
      let q = P.of_list (List.map (fun p -> (p, ())) prios) in
      let drained = List.map fst (P.to_sorted_list q) in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing drained && List.length drained = List.length prios)

let suite =
  ("pqueue", [ t "basics" basics; t "sorted drain" sorted_drain; prop_heap_order ])
