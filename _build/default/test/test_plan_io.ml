module P = Parqo.Plan_io
module J = Parqo.Join_tree
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let setup () =
  let catalog, query = G.generate (G.default_spec G.Chain 4) in
  (catalog, query)

let explicit_round_trip () =
  let catalog, query = setup () in
  let texts =
    [
      "scan(r0)";
      "scan(r2)/4";
      "HJ(scan(r0), scan(r1))";
      "SM/2!(scan(r0), scan(r1))";
      "NL(HJ(scan(r0), scan(r1)), scan(r2))";
      "HJ/4!(SM(scan(r0), scan(r1)), NL(scan(r2), scan(r3)))";
    ]
  in
  List.iter
    (fun text ->
      match P.of_string ~catalog ~query text with
      | Ok tree -> Alcotest.(check string) text text (P.to_string tree)
      | Error e -> Alcotest.failf "%s: %s" text e)
    texts

let index_resolution () =
  let catalog, query = setup () in
  let idx = List.hd (Parqo.Catalog.indexes_of catalog "t0") in
  let text = Printf.sprintf "idx(r0:%s)/2" idx.Parqo.Index.name in
  match P.of_string ~catalog ~query text with
  | Ok tree -> Alcotest.(check string) "round trip" text (P.to_string tree)
  | Error e -> Alcotest.fail e

let random_round_trips () =
  let catalog, query = setup () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let rng = Parqo.Rng.create 21 in
  for _ = 1 to 50 do
    let tree = Helpers.random_tree rng env in
    let text = P.to_string tree in
    match P.of_string ~catalog ~query text with
    | Ok tree' ->
      Alcotest.(check bool) ("equal: " ^ text) true (J.equal tree tree')
    | Error e -> Alcotest.failf "%s: %s" text e
  done

let errors () =
  let catalog, query = setup () in
  let expect_error text =
    match P.of_string ~catalog ~query text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  expect_error "";
  expect_error "scan(r9)";
  (* out of range *)
  expect_error "HJ(scan(r0), scan(r0))";
  (* duplicate relation *)
  expect_error "idx(r0:no_such_index)";
  expect_error "HJ(scan(r0)";
  (* unbalanced *)
  expect_error "HJ(scan(r0), scan(r1)) trailing"

let fuzz_no_crash =
  let catalog, query = setup () in
  Helpers.qtest ~count:300 "arbitrary input never raises"
    QCheck2.Gen.(string_size ~gen:printable (int_bound 40))
    (fun s ->
      match P.of_string ~catalog ~query s with Ok _ | Error _ -> true)

let fuzz_mutations_no_crash =
  (* mutate a valid plan text: still never raises *)
  let catalog, query = setup () in
  let base = "HJ/4!(SM(scan(r0), scan(r1)), NL(scan(r2), scan(r3)))" in
  Helpers.qtest ~count:300 "mutated plan text never raises"
    QCheck2.Gen.(pair (int_bound (String.length base - 1)) printable)
    (fun (i, c) ->
      let mutated = String.mapi (fun j x -> if i = j then c else x) base in
      match P.of_string ~catalog ~query mutated with Ok _ | Error _ -> true)

let suite =
  ( "plan-io",
    [
      fuzz_no_crash;
      fuzz_mutations_no_crash;
      t "explicit round trip" explicit_round_trip;
      t "index resolution" index_resolution;
      t "random round trips" random_round_trips;
      t "errors" errors;
    ] )
