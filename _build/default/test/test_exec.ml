module B = Parqo.Batch
module Ex = Parqo.Executor
module J = Parqo.Join_tree
module M = Parqo.Join_method
module Q = Parqo.Query
module V = Parqo.Value

let t name f = Alcotest.test_case name `Quick f

let db_and_query () = Parqo.Workloads.chain_db ~n:3 ~rows:80 ~seed:7 ()

let batch_basics () =
  let rows = [ [| V.Int 1; V.Int 2 |]; [| V.Int 3; V.Int 4 |] ] in
  let b = B.create ~layout:[ (0, 2) ] ~rows in
  Alcotest.(check int) "rows" 2 (B.n_rows b);
  Alcotest.(check int) "width" 2 (B.width b);
  Alcotest.(check int) "offset" 0 (B.offset b.B.layout 0);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Batch.create: row width mismatch") (fun () ->
      ignore (B.create ~layout:[ (0, 3) ] ~rows))

let layout_ops () =
  let l = B.concat_layouts [ (1, 2) ] [ (0, 1) ] in
  Alcotest.(check int) "offset second segment" 2 (B.offset l 0);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Batch.concat_layouts: overlapping relations")
    (fun () -> ignore (B.concat_layouts [ (0, 1) ] [ (0, 1) ]))

let canonicalization () =
  (* same bag, columns in different relation order *)
  let a =
    B.create ~layout:[ (0, 1); (1, 1) ]
      ~rows:[ [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 20 |] ]
  in
  let b =
    B.create ~layout:[ (1, 1); (0, 1) ]
      ~rows:[ [| V.Int 20; V.Int 2 |]; [| V.Int 10; V.Int 1 |] ]
  in
  Alcotest.(check bool) "equal bags modulo layout" true (B.equal_bags a b);
  let c =
    B.create ~layout:[ (0, 1); (1, 1) ]
      ~rows:[ [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 99 |] ]
  in
  Alcotest.(check bool) "different values differ" false (B.equal_bags a c);
  (* bags: duplicates matter *)
  let d =
    B.create ~layout:[ (0, 1); (1, 1) ]
      ~rows:[ [| V.Int 1; V.Int 10 |] ]
  in
  Alcotest.(check bool) "cardinality matters" false (B.equal_bags a d)

let scan_applies_selections () =
  let db, query = db_and_query () in
  let query' =
    Q.create
      ~relations:(Array.to_list query.Q.relations)
      ~joins:query.Q.joins
      ~selections:
        [ { Q.on = { Q.rel = 0; column = "payload" }; cmp = Q.Le; value = V.Int 4 } ]
      ()
  in
  let all = Ex.scan db query ~rel:0 in
  let filtered = Ex.scan db query' ~rel:0 in
  Alcotest.(check bool) "selection filters" true
    (B.n_rows filtered < B.n_rows all);
  (* every surviving row satisfies the predicate *)
  let table = Parqo.Catalog.table db.Parqo.Datagen.catalog "c0" in
  let payload_idx = Parqo.Table.column_index table "payload" in
  List.iter
    (fun row ->
      match row.(payload_idx) with
      | V.Int v -> Alcotest.(check bool) "payload <= 4" true (v <= 4)
      | _ -> Alcotest.fail "unexpected type")
    filtered.B.rows

let join_methods_agree () =
  let db, query = db_and_query () in
  let outer = Ex.scan db query ~rel:0 and inner = Ex.scan db query ~rel:1 in
  let nl = Ex.join db query ~method_:M.Nested_loops ~outer ~inner in
  let hj = Ex.join db query ~method_:M.Hash_join ~outer ~inner in
  let sm = Ex.join db query ~method_:M.Sort_merge ~outer ~inner in
  Alcotest.(check bool) "hash = nl" true (B.equal_bags nl hj);
  Alcotest.(check bool) "sort-merge = nl" true (B.equal_bags nl sm);
  Alcotest.(check bool) "non-empty join" true (B.n_rows nl > 0)

let fk_join_cardinality () =
  (* child.fk -> parent.pk: every child row matches exactly one parent *)
  let db, query = db_and_query () in
  let c0 = Ex.scan db query ~rel:0 and c1 = Ex.scan db query ~rel:1 in
  let joined = Ex.join db query ~method_:M.Hash_join ~outer:c0 ~inner:c1 in
  Alcotest.(check int) "FK join preserves child count" (B.n_rows c1)
    (B.n_rows joined)

let cartesian_product () =
  let db, _ = db_and_query () in
  (* a query with no join predicates *)
  let query =
    Q.create ~relations:[ ("c0", "c0"); ("c1", "c1") ] ~joins:[] ()
  in
  let a = Ex.scan db query ~rel:0 and b = Ex.scan db query ~rel:1 in
  let prod = Ex.join db query ~method_:M.Nested_loops ~outer:a ~inner:b in
  Alcotest.(check int) "cartesian size" (B.n_rows a * B.n_rows b) (B.n_rows prod)

let all_plans_equivalent () =
  let db, query = db_and_query () in
  let reference = Ex.reference db query in
  let machine = Parqo.Machine.shared_nothing ~nodes:2 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query () in
  let rng = Parqo.Rng.create 17 in
  for _ = 1 to 15 do
    let tree = Helpers.random_tree rng env in
    let result = Ex.run_query db query tree in
    Alcotest.(check bool)
      (Printf.sprintf "plan %s equivalent" (J.to_string tree))
      true
      (B.equal_bags reference result)
  done

let projection () =
  let db, query = db_and_query () in
  let query' =
    Q.create
      ~relations:(Array.to_list query.Q.relations)
      ~joins:query.Q.joins
      ~projection:[ { Q.rel = 0; column = "pk" }; { Q.rel = 2; column = "payload" } ]
      ()
  in
  let tree =
    J.join M.Hash_join
      ~outer:(J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.access 2)
  in
  let out = Ex.run_query db query' tree in
  Alcotest.(check int) "two columns" 2 (B.width out)

let suite =
  ( "executor",
    [
      t "batch basics" batch_basics;
      t "layout ops" layout_ops;
      t "canonicalization" canonicalization;
      t "scan applies selections" scan_applies_selections;
      t "join methods agree" join_methods_agree;
      t "fk join cardinality" fk_join_cardinality;
      t "cartesian product" cartesian_product;
      t "all plans equivalent" all_plans_equivalent;
      t "projection" projection;
    ] )
