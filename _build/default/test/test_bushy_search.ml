module Bushy = Parqo.Bushy
module Dp = Parqo.Dp
module Brute = Parqo.Brute
module Cm = Parqo.Costmodel
module S = Parqo.Space
module G = Parqo.Query_gen
module Stats = Parqo.Search_stats
module Mt = Parqo.Metric

let t name f = Alcotest.test_case name `Quick f

let env_of ?(nodes = 4) shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes () in
  Parqo.Env.create ~machine ~catalog ~query ()

let finds_plans () =
  List.iter
    (fun shape ->
      let env = env_of shape 4 in
      match (Bushy.optimize_scalar env).Bushy.best with
      | Some e ->
        Alcotest.(check bool) "covers all" true
          (Parqo.Bitset.equal
             (Parqo.Join_tree.relations e.Cm.tree)
             (Parqo.Bitset.full 4))
      | None -> Alcotest.fail "no plan")
    [ G.Chain; G.Star; G.Clique ]

(* bushy DP searches a superset of left-deep DP's space: its work optimum
   is never worse (same candidate generator, same objective) *)
let at_least_as_good_as_leftdeep () =
  let rng = Parqo.Rng.create 30 in
  let config =
    {
      S.default_config with
      S.methods = [ Parqo.Join_method.Nested_loops; Parqo.Join_method.Hash_join ];
    }
  in
  for _ = 1 to 6 do
    let env = Helpers.random_env rng ~n:4 in
    let ld = Dp.optimize ~config env in
    let bushy = Bushy.optimize_scalar ~config env in
    match (ld.Dp.best, bushy.Bushy.best) with
    | Some l, Some b ->
      Alcotest.(check bool) "bushy work <= left-deep work" true
        (b.Cm.work <= l.Cm.work +. 1e-6)
    | _ -> Alcotest.fail "missing plan"
  done

(* bushy DP matches bushy brute force without interesting orders *)
let matches_brute () =
  let rng = Parqo.Rng.create 31 in
  let config =
    {
      S.minimal_config with
      S.methods = [ Parqo.Join_method.Nested_loops; Parqo.Join_method.Hash_join ];
    }
  in
  for _ = 1 to 5 do
    let env = Helpers.random_env rng ~n:4 in
    let objective (e : Cm.eval) = e.Cm.work in
    let dp = Bushy.optimize_scalar ~config ~objective env in
    let brute = Brute.bushy ~config ~objective env in
    match (dp.Bushy.best, brute.Brute.best) with
    | Some a, Some b ->
      Helpers.check_float ~eps:1e-6 "same optimum" b.Cm.work a.Cm.work
    | _ -> Alcotest.fail "missing plan"
  done

(* Table 1: plans considered by bushy DP on a clique =
   3^n - 2^(n+1) + n + 1 (with b = 0: bindings fixed for SPJ) *)
let table1_counters () =
  List.iter
    (fun n ->
      let env = env_of G.Clique n in
      let r = Bushy.optimize_scalar ~config:S.minimal_config env in
      Alcotest.(check int)
        (Printf.sprintf "considered n=%d" n)
        (int_of_float (Parqo.Combin.dp_bushy_time n ~b:0))
        r.Bushy.stats.Stats.considered)
    [ 2; 3; 4; 5 ]

(* the paper §6.4: on a parallel machine bushy partial-order DP finds
   response times at least as good as left-deep partial-order DP *)
let bushy_rt_at_least_as_good () =
  let env = env_of ~nodes:4 G.Star 4 in
  let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
  let metric =
    Mt.with_ordering (Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single)
  in
  let ld = Parqo.Podp.optimize ~config ~metric env in
  (* beam-bounded: exact bushy po-DP cover products are prohibitive; the
     beam keeps the best plans per subset and still beats left-deep *)
  let bushy = Bushy.optimize_po ~config ~metric ~max_cover:24 env in
  match (ld.Parqo.Podp.best, bushy.Bushy.best) with
  | Some l, Some b ->
    Alcotest.(check bool) "bushy rt <= left-deep rt" true
      (b.Cm.response_time <= l.Cm.response_time +. 1e-6)
  | _ -> Alcotest.fail "missing plan"

let beam_bound_respected () =
  let env = env_of G.Chain 4 in
  let metric = Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single in
  let r = Bushy.optimize_po ~metric ~max_cover:4 env in
  Alcotest.(check bool) "has result" true (r.Bushy.best <> None);
  Alcotest.(check bool) "cover bounded" true (List.length r.Bushy.cover <= 4)

let suite =
  ( "bushy",
    [
      t "finds plans" finds_plans;
      t "at least as good as left-deep" at_least_as_good_as_leftdeep;
      t "matches brute force" matches_brute;
      t "Table 1 counters" table1_counters;
      t "bushy rt wins" bushy_rt_at_least_as_good;
      t "beam bound" beam_bound_respected;
    ] )
