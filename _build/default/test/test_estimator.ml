module E = Parqo.Estimator
module Q = Parqo.Query
module B = Parqo.Bitset
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env_of shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  E.create catalog query

let base_cards () =
  let est = env_of G.Chain 3 in
  Helpers.check_float "raw t0" 1000. (E.raw_card est 0);
  Helpers.check_float "raw t1" 1500. (E.raw_card est 1);
  (* no selections: base = raw *)
  Helpers.check_float "base = raw" (E.raw_card est 2) (E.base_card est 2)

let selection_reduces () =
  let catalog, query = G.generate (G.default_spec G.Chain 2) in
  let query' =
    Q.create
      ~relations:[ ("t0", "t0"); ("t1", "t1") ]
      ~joins:query.Q.joins
      ~selections:
        [
          {
            Q.on = { Q.rel = 0; column = "val" };
            cmp = Q.Le;
            value = Parqo.Value.Flt 500.;
          };
        ]
      ()
  in
  let est = E.create catalog query' in
  Alcotest.(check bool) "selection reduces base card" true
    (E.base_card est 0 < E.raw_card est 0);
  Alcotest.(check bool) "other relation untouched" true
    (Helpers.feq (E.base_card est 1) (E.raw_card est 1))

let join_cardinality () =
  let est = env_of G.Chain 3 in
  let query = E.query est in
  let sel01 = E.join_selectivity est (List.hd query.Q.joins) in
  Alcotest.(check bool) "selectivity in (0,1]" true (sel01 > 0. && sel01 <= 1.);
  let pair = B.of_list [ 0; 1 ] in
  Helpers.check_float ~eps:1e-6 "card of pair"
    (E.base_card est 0 *. E.base_card est 1 *. sel01)
    (E.card est pair);
  (* adding an unconnected relation multiplies cardinality *)
  Helpers.check_float ~eps:1e-3 "cartesian with t2... via chain sel"
    (E.card est pair *. E.base_card est 2
    *. E.join_selectivity est (List.nth query.Q.joins 1))
    (E.card est (B.full 3))

let monotone_in_predicates () =
  (* clique has more predicates inside any subset than a chain: its
     cardinality estimate for the full set must be no larger *)
  let chain = env_of G.Chain 4 and clique = env_of G.Clique 4 in
  Alcotest.(check bool) "clique <= chain" true
    (E.card clique (B.full 4) <= E.card chain (B.full 4))

let physical_transparency () =
  (* the estimate depends only on the relation set - feed it twice *)
  let est = env_of G.Star 4 in
  Helpers.check_float "memoized identical" (E.card est (B.full 4))
    (E.card est (B.full 4))

let empty_set () =
  let est = env_of G.Chain 2 in
  Helpers.check_float "empty set card" 1. (E.card est B.empty)

let width () =
  let est = env_of G.Chain 3 in
  (* chain tables: pk + joins + val *)
  Alcotest.(check bool) "width grows with set" true
    (E.width est (B.full 3) > E.width est (B.singleton 0))

let errors () =
  let catalog, _ = G.generate (G.default_spec G.Chain 2) in
  let bad = Q.create ~relations:[ ("x", "missing") ] ~joins:[] () in
  Alcotest.(check bool) "invalid query rejected" true
    (try
       ignore (E.create catalog bad);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "estimator",
    [
      t "base cards" base_cards;
      t "selection reduces" selection_reduces;
      t "join cardinality" join_cardinality;
      t "monotone in predicates" monotone_in_predicates;
      t "physical transparency" physical_transparency;
      t "empty set" empty_set;
      t "width" width;
      t "errors" errors;
    ] )
