(* Shared test utilities. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let float_testable ?(eps = 1e-9) () =
  Alcotest.testable (Fmt.float) (fun a b -> feq ~eps a b)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (float_testable ~eps ()) msg expected actual

let qtest ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* A small fixed environment for plan-level tests: a chain query over 4
   relations on a 4-node shared-nothing machine. *)
let chain_env ?(n = 4) ?(shape = Parqo.Query_gen.Chain) () =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

let random_env rng ~n =
  let catalog, query = Parqo.Query_gen.random rng ~n () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

(* A deterministic stream of random join trees for a query: random bushy
   shapes with annotations drawn from the parallel space. *)
let random_tree rng (env : Parqo.Env.t) =
  let config =
    {
      (Parqo.Space.parallel_config env.Parqo.Env.machine) with
      Parqo.Space.materialize_choices = true;
    }
  in
  Parqo.Random_plans.random_tree rng env config
