module G = Parqo.Query_gen
module Q = Parqo.Query
module B = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

let edge_counts () =
  let count shape n =
    let _, q = G.generate (G.default_spec shape n) in
    List.length q.Q.joins
  in
  Alcotest.(check int) "chain 5" 4 (count G.Chain 5);
  Alcotest.(check int) "star 5" 4 (count G.Star 5);
  Alcotest.(check int) "cycle 5" 5 (count G.Cycle 5);
  Alcotest.(check int) "clique 5" 10 (count G.Clique 5);
  Alcotest.(check int) "cycle 2 degenerates" 1 (count G.Cycle 2)

let connectivity () =
  List.iter
    (fun shape ->
      let _, q = G.generate (G.default_spec shape 6) in
      Alcotest.(check bool)
        (G.shape_to_string shape ^ " connected")
        true
        (Q.connected q (B.full 6)))
    [ G.Chain; G.Star; G.Cycle; G.Clique ]

let star_center () =
  let _, q = G.generate (G.default_spec G.Star 5) in
  (* every edge touches relation 0 *)
  List.iter
    (fun (j : Q.join_pred) ->
      Alcotest.(check bool) "touches center" true
        (j.Q.left.Q.rel = 0 || j.Q.right.Q.rel = 0))
    q.Q.joins

let catalog_valid () =
  List.iter
    (fun shape ->
      let catalog, q = G.generate (G.default_spec shape 5) in
      match Q.validate catalog q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (G.shape_to_string shape) e)
    [ G.Chain; G.Star; G.Cycle; G.Clique ]

let cardinality_skew () =
  let spec = { (G.default_spec G.Chain 4) with card_skew = 1.0; base_card = 100. } in
  let catalog, _ = G.generate spec in
  let card i =
    (Parqo.Catalog.table catalog (Printf.sprintf "t%d" i)).Parqo.Table.cardinality
  in
  Helpers.check_float "t0" 100. (card 0);
  Helpers.check_float "t1" 200. (card 1);
  Helpers.check_float "t3" 800. (card 3)

let indexes_toggle () =
  let with_idx, _ = G.generate (G.default_spec G.Chain 3) in
  let without, _ =
    G.generate { (G.default_spec G.Chain 3) with with_indexes = false }
  in
  Alcotest.(check bool) "indexes present" true
    (Parqo.Catalog.indexes with_idx <> []);
  Alcotest.(check int) "indexes absent" 0
    (List.length (Parqo.Catalog.indexes without))

let random_generator () =
  let rng = Parqo.Rng.create 77 in
  for _ = 1 to 20 do
    let n = 2 + Parqo.Rng.int rng 5 in
    let catalog, q = G.random rng ~n () in
    Alcotest.(check int) "n relations" n (Q.n_relations q);
    Alcotest.(check bool) "connected" true (Q.connected q (B.full n));
    match Q.validate catalog q with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done

let suite =
  ( "query-gen",
    [
      t "edge counts" edge_counts;
      t "connectivity" connectivity;
      t "star center" star_center;
      t "catalog valid" catalog_valid;
      t "cardinality skew" cardinality_skew;
      t "indexes toggle" indexes_toggle;
      t "random generator" random_generator;
    ] )
