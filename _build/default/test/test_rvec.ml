module R = Parqo.Rvec
module V = Parqo.Vecf

let t name f = Alcotest.test_case name `Quick f

let v2 a b = V.of_array [| a; b |]
let rv t a b = R.make ~time:t ~work:(v2 a b)

let rvec_gen =
  QCheck2.Gen.(
    let work = float_bound_inclusive 50. in
    map
      (fun (a, b, slack) ->
        let peak = Float.max a b in
        R.make ~time:(peak +. slack) ~work:(v2 a b))
      (triple work work (float_bound_inclusive 50.)))

let construction () =
  let r = rv 10. 4. 6. in
  Helpers.check_float "time" 10. (R.response_time r);
  Helpers.check_float "work" 10. (R.total_work r);
  Alcotest.(check bool) "zero is zero" true (R.is_zero (R.zero 3));
  Alcotest.check_raises "time below busiest"
    (Invalid_argument "Rvec.make: time below busiest resource") (fun () ->
      ignore (rv 3. 4. 0.))

let of_demands () =
  let r = R.of_demands 2 [ (0, 6.); (1, 2.); (0, 2.) ] ~lanes:1 ~overhead:0. in
  Helpers.check_float "demands accumulate" 8. (V.get r.R.work 0);
  (* traditional: response time = total work for a sequential op *)
  Helpers.check_float "time = total work" 10. (R.response_time r);
  (* cloned over 2 lanes: halved plus overhead *)
  let c = R.of_demands 2 [ (0, 6.); (1, 6.) ] ~lanes:2 ~overhead:0.1 in
  Helpers.check_float "cloned time" (12. /. 2. *. 1.1) (R.response_time c);
  (* time never drops below the busiest resource *)
  let skew = R.of_demands 2 [ (0, 100.) ] ~lanes:8 ~overhead:0. in
  Helpers.check_float "bounded by busiest" 100. (R.response_time skew)

let sequential () =
  let a = rv 10. 10. 0. and b = rv 5. 0. 5. in
  let s = R.seq a b in
  Helpers.check_float "times add" 15. (R.response_time s);
  Helpers.check_float "work adds" 15. (R.total_work s)

let parallel_contention () =
  (* disjoint resources: true parallelism *)
  let a = rv 10. 10. 0. and b = rv 5. 0. 5. in
  Helpers.check_float "disjoint = max" 10. (R.response_time (R.par a b));
  (* same resource: contention forces the sum *)
  let c = rv 10. 10. 0. and d = rv 8. 8. 0. in
  Helpers.check_float "contended = sum" 18. (R.response_time (R.par c d));
  (* Example 3 arithmetic: p2 and the join on different disks *)
  let p2 = rv 25. 0. 25. and join = rv 40. 40. 0. in
  Helpers.check_float "Example 3 p2 case" 40. (R.response_time (R.par p2 join));
  let p1 = rv 20. 20. 0. in
  Helpers.check_float "Example 3 p1 case" 60. (R.response_time (R.par p1 join))

let residual () =
  let whole = rv 10. 8. 2. and front = rv 4. 4. 0. in
  let r = R.residual whole front in
  Helpers.check_float "time subtracts" 6. (R.response_time r);
  Helpers.check_float "work subtracts" 4. (V.get r.R.work 0);
  Helpers.check_float "clamped at zero" 2. (V.get r.R.work 1);
  (* over-subtraction clamps instead of going negative *)
  let r2 = R.residual front whole in
  Alcotest.(check bool) "non-negative" true
    (R.response_time r2 >= 0. && V.get r2.R.work 0 >= 0.)

let stretching () =
  let r = rv 10. 8. 2. in
  let s = R.stretch 2. r in
  Helpers.check_float "time doubles" 20. (R.response_time s);
  Helpers.check_float "work unchanged" 10. (R.total_work s);
  Alcotest.check_raises "stretch < 1" (Invalid_argument "Rvec.stretch: factor < 1")
    (fun () -> ignore (R.stretch 0.5 r))

let prop_par_commutative =
  Helpers.qtest "par commutative" (QCheck2.Gen.pair rvec_gen rvec_gen)
    (fun (a, b) -> R.equal (R.par a b) (R.par b a))

let prop_par_bounds =
  Helpers.qtest "max <= par <= seq" (QCheck2.Gen.pair rvec_gen rvec_gen)
    (fun (a, b) ->
      let p = R.response_time (R.par a b) in
      p +. 1e-9 >= Float.max (R.response_time a) (R.response_time b)
      && p <= R.response_time (R.seq a b) +. 1e-9)

let prop_seq_associative =
  Helpers.qtest "seq associative" (QCheck2.Gen.triple rvec_gen rvec_gen rvec_gen)
    (fun (a, b, c) ->
      R.equal ~eps:1e-6 (R.seq (R.seq a b) c) (R.seq a (R.seq b c)))

let prop_par_work_conserved =
  Helpers.qtest "par conserves work" (QCheck2.Gen.pair rvec_gen rvec_gen)
    (fun (a, b) ->
      Helpers.feq ~eps:1e-6
        (R.total_work (R.par a b))
        (R.total_work a +. R.total_work b))

let suite =
  ( "rvec",
    [
      t "construction" construction;
      t "of_demands" of_demands;
      t "sequential" sequential;
      t "parallel contention" parallel_contention;
      t "residual" residual;
      t "stretching" stretching;
      prop_par_commutative;
      prop_par_bounds;
      prop_seq_associative;
      prop_par_work_conserved;
    ] )
