module C = Parqo.Combin

let t name f = Alcotest.test_case name `Quick f

let factorials () =
  Helpers.check_float "0!" 1. (C.factorial 0);
  Helpers.check_float "1!" 1. (C.factorial 1);
  Helpers.check_float "5!" 120. (C.factorial 5);
  Helpers.check_float "10!" 3628800. (C.factorial 10)

let binomials () =
  Helpers.check_float "C(4,2)" 6. (C.binomial 4 2);
  Helpers.check_float "C(10,5)" 252. (C.binomial 10 5);
  Helpers.check_float "C(n,0)" 1. (C.binomial 7 0);
  Helpers.check_float "C(n,n)" 1. (C.binomial 7 7);
  Helpers.check_float "out of range" 0. (C.binomial 5 6)

let powers () =
  Helpers.check_float "2^10" 1024. (C.powi 2. 10);
  Helpers.check_float "x^0" 1. (C.powi 3.7 0);
  Helpers.check_float "3^5" 243. (C.powi 3. 5)

(* Table 1 formulas at the values quoted/implied by the paper *)
let table1_formulas () =
  Helpers.check_float "left-deep space n=10" 3628800. (C.leftdeep_space 10);
  Helpers.check_float "DP left-deep time n=10" (10. *. 512.) (C.dp_leftdeep_time 10);
  Helpers.check_float "DP left-deep space n=10" 252. (C.dp_leftdeep_space 10);
  Helpers.check_float "po-DP time multiplies by 2^l" (C.dp_leftdeep_time 8 *. 8.)
    (C.podp_leftdeep_time 8 ~l:3);
  Helpers.check_float "bushy space n=2" 2. (C.bushy_space 2);
  Helpers.check_float "bushy space n=3" 12. (C.bushy_space 3);
  Helpers.check_float "bushy space n=4" 120. (C.bushy_space 4);
  (* the paper: bushy is "three orders of magnitude" above left-deep at n=10 *)
  let ratio = C.bushy_space 10 /. C.leftdeep_space 10 in
  Alcotest.(check bool) "bushy/leftdeep at n=10 ~ 10^3" true
    (ratio > 1e3 && ratio < 1e5);
  Helpers.check_float "DP bushy time n=3, b=0"
    (C.powi 3. 3 -. C.powi 2. 4 +. 3. +. 1.)
    (C.dp_bushy_time 3 ~b:0)

let theorem3_bound () =
  (* bound is monotone in m, approaches 2^l *)
  let b1 = C.theorem3_bound ~l:3 ~m:10 in
  let b2 = C.theorem3_bound ~l:3 ~m:100 in
  Alcotest.(check bool) "monotone in m" true (b1 <= b2);
  Alcotest.(check bool) "below 2^l" true (b2 <= 8.);
  Helpers.check_float "m=1 gives 1" 1. (C.theorem3_bound ~l:4 ~m:1);
  (* l = 0: a total order keeps one plan *)
  Helpers.check_float "l=0 keeps 1" 1. (C.theorem3_bound ~l:0 ~m:1000)

let harmonic () =
  Helpers.check_float "H_1" 1. (C.harmonic 1);
  Helpers.check_float ~eps:1e-9 "H_4" (1. +. 0.5 +. (1. /. 3.) +. 0.25) (C.harmonic 4)

let prop_pascal =
  Helpers.qtest "Pascal's rule"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 20))
    (fun (n, k) ->
      let k = min k n in
      if k = 0 || k = n then true
      else
        Helpers.feq ~eps:1e-6
          (C.binomial n k)
          (C.binomial (n - 1) (k - 1) +. C.binomial (n - 1) k))

let suite =
  ( "combin",
    [
      t "factorials" factorials;
      t "binomials" binomials;
      t "powers" powers;
      t "Table 1 formulas" table1_formulas;
      t "Theorem 3 bound" theorem3_bound;
      t "harmonic" harmonic;
      prop_pascal;
    ] )
