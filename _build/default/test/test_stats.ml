module S = Parqo.Stats

let t name f = Alcotest.test_case name `Quick f

let declared () =
  let c = S.column ~distinct:10. ~min_v:0. ~max_v:9. () in
  Helpers.check_float "eq uniform" 0.1 (S.eq_fraction c 5.);
  Helpers.check_float "eq outside" 0. (S.eq_fraction c 50.);
  Helpers.check_float "le at max" 1. (S.le_fraction c 9.);
  Helpers.check_float "le below min" 0. (S.le_fraction c (-1.));
  Helpers.check_float "le midpoint" 0.5 (S.le_fraction c 4.5)

let derived () =
  let values = List.init 100 (fun i -> float_of_int (i mod 10)) in
  let c = S.of_values values in
  Helpers.check_float "distinct" 10. c.S.distinct;
  Helpers.check_float "min" 0. c.S.min_v;
  Helpers.check_float "max" 9. c.S.max_v;
  Alcotest.(check bool) "has histogram" true (c.S.hist <> None)

let histogram_fractions () =
  (* skewed data: 90 zeros and 10 nines *)
  let values = List.init 90 (fun _ -> 0.) @ List.init 10 (fun _ -> 9.) in
  let c = S.of_values values in
  (* eq_fraction at the heavy value should exceed the uniform 1/2 *)
  Alcotest.(check bool) "skew detected" true (S.eq_fraction c 0. > 0.5);
  (* le covers most mass below 9 *)
  Alcotest.(check bool) "le before tail" true (S.le_fraction c 8.9 >= 0.85)

let join_selectivity () =
  let a = S.column ~distinct:100. ~min_v:0. ~max_v:99. () in
  let b = S.column ~distinct:20. ~min_v:0. ~max_v:99. () in
  Helpers.check_float "1/max distinct" 0.01 (S.join_selectivity a b);
  Helpers.check_float "symmetric" (S.join_selectivity a b) (S.join_selectivity b a)

let constant_column () =
  let c = S.of_values [ 7.; 7.; 7. ] in
  Helpers.check_float "distinct 1" 1. c.S.distinct;
  Helpers.check_float "eq hits" 1. (S.eq_fraction c 7.);
  Helpers.check_float "le at value" 1. (S.le_fraction c 7.)

let equidepth_beats_equiwidth_on_skew () =
  (* heavy-tailed data: equi-depth boundaries adapt, equi-width wastes
     buckets on the empty tail *)
  let rng = Parqo.Rng.create 5 in
  let values =
    List.init 4000 (fun _ ->
        float_of_int (Parqo.Rng.zipf rng ~n:1000 ~theta:1.2))
  in
  let ew = S.of_values ~buckets:16 values in
  let ed = S.of_values_equidepth ~buckets:16 values in
  let truth v =
    let n = List.length values in
    float_of_int (List.length (List.filter (fun x -> x <= v) values))
    /. float_of_int n
  in
  let error c =
    let points = [ 1.5; 2.5; 5.; 10.; 50.; 200.; 800. ] in
    List.fold_left
      (fun acc v -> acc +. Float.abs (S.le_fraction c v -. truth v))
      0. points
    /. float_of_int (List.length points)
  in
  let e_ew = error ew and e_ed = error ed in
  Alcotest.(check bool)
    (Printf.sprintf "equi-depth %.4f < equi-width %.4f" e_ed e_ew)
    true (e_ed < e_ew)

let equidepth_buckets_balanced () =
  let rng = Parqo.Rng.create 6 in
  let values = List.init 1600 (fun _ -> Parqo.Rng.float rng 100.) in
  let c = S.of_values_equidepth ~buckets:16 values in
  match c.S.hist with
  | None -> Alcotest.fail "expected a histogram"
  | Some h ->
    Array.iter
      (fun count ->
        Alcotest.(check bool) "bucket near 100" true
          (count >= 80. && count <= 120.))
      h.S.counts

let errors () =
  Alcotest.check_raises "distinct < 1" (Invalid_argument "Stats.column: distinct < 1")
    (fun () -> ignore (S.column ~distinct:0. ~min_v:0. ~max_v:1. ()));
  Alcotest.check_raises "empty values" (Invalid_argument "Stats.of_values: empty")
    (fun () -> ignore (S.of_values []))

let prop_le_monotone =
  Helpers.qtest "le_fraction is monotone"
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 50) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (values, (x, y)) ->
      let c = S.of_values values in
      let lo = Float.min x y and hi = Float.max x y in
      S.le_fraction c lo <= S.le_fraction c hi +. 1e-9)

let prop_fractions_in_range =
  Helpers.qtest "fractions within [0,1]"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_bound_inclusive 100.))
        (float_bound_inclusive 120.))
    (fun (values, x) ->
      let c = S.of_values values in
      let e = S.eq_fraction c x and l = S.le_fraction c x in
      e >= 0. && e <= 1. && l >= 0. && l <= 1.)

let suite =
  ( "stats",
    [
      t "declared" declared;
      t "derived" derived;
      t "histogram fractions" histogram_fractions;
      t "join selectivity" join_selectivity;
      t "constant column" constant_column;
      t "equi-depth beats equi-width" equidepth_beats_equiwidth_on_skew;
      t "equi-depth balanced" equidepth_buckets_balanced;
      t "errors" errors;
      prop_le_monotone;
      prop_fractions_in_range;
    ] )
