module B = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

let small_set = QCheck2.Gen.(map B.of_list (list_size (int_bound 8) (int_bound 15)))

let basics () =
  Alcotest.(check (list int)) "empty" [] (B.to_list B.empty);
  Alcotest.(check (list int)) "full 4" [ 0; 1; 2; 3 ] (B.to_list (B.full 4));
  Alcotest.(check (list int)) "of_list sorts+dedups" [ 1; 3; 7 ]
    (B.to_list (B.of_list [ 7; 3; 1; 3 ]));
  Alcotest.(check int) "cardinal" 3 (B.cardinal (B.of_list [ 0; 5; 9 ]));
  Alcotest.(check bool) "mem yes" true (B.mem 5 (B.of_list [ 0; 5 ]));
  Alcotest.(check bool) "mem no" false (B.mem 1 (B.of_list [ 0; 5 ]));
  Alcotest.(check int) "choose = min" 2 (B.choose (B.of_list [ 9; 2; 4 ]))

let set_algebra () =
  let a = B.of_list [ 0; 1; 2 ] and b = B.of_list [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (B.to_list (B.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (B.to_list (B.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (B.to_list (B.diff a b));
  Alcotest.(check bool) "subset" true (B.subset (B.of_list [ 1 ]) a);
  Alcotest.(check bool) "not subset" false (B.subset b a);
  Alcotest.(check bool) "disjoint" true (B.disjoint (B.of_list [ 0 ]) (B.of_list [ 1 ]));
  Alcotest.(check bool) "not disjoint" false (B.disjoint a b)

let subsets_of_size () =
  let subsets = B.subsets_of_size 4 ~size:2 in
  Alcotest.(check int) "C(4,2)=6" 6 (List.length subsets);
  List.iter (fun s -> Alcotest.(check int) "size 2" 2 (B.cardinal s)) subsets;
  (* all distinct *)
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq B.compare subsets))

let proper_subsets () =
  let s = B.of_list [ 0; 2; 5 ] in
  let subs = B.proper_nonempty_subsets s in
  Alcotest.(check int) "2^3-2" 6 (List.length subs);
  List.iter
    (fun sub ->
      Alcotest.(check bool) "proper" true
        (B.subset sub s && (not (B.is_empty sub)) && not (B.equal sub s)))
    subs

let errors () =
  Alcotest.check_raises "full -1" (Invalid_argument "Bitset.full") (fun () ->
      ignore (B.full (-1)));
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (B.choose B.empty))

let prop_union_cardinal =
  Helpers.qtest "cardinal(a∪b) = |a|+|b|-|a∩b|"
    QCheck2.Gen.(pair small_set small_set)
    (fun (a, b) ->
      B.cardinal (B.union a b)
      = B.cardinal a + B.cardinal b - B.cardinal (B.inter a b))

let prop_fold_iter_agree =
  Helpers.qtest "fold and to_list agree" small_set (fun s ->
      List.rev (B.fold (fun i acc -> i :: acc) s []) = B.to_list s)

let prop_roundtrip =
  Helpers.qtest "of_list ∘ to_list = id" small_set (fun s ->
      B.equal (B.of_list (B.to_list s)) s)

let suite =
  ( "bitset",
    [
      t "basics" basics;
      t "set algebra" set_algebra;
      t "subsets of size" subsets_of_size;
      t "proper subsets" proper_subsets;
      t "errors" errors;
      prop_union_cardinal;
      prop_fold_iter_agree;
      prop_roundtrip;
    ] )
