module I = Parqo.Iterator
module Ex = Parqo.Executor
module B = Parqo.Batch
module J = Parqo.Join_tree
module M = Parqo.Join_method

let t name f = Alcotest.test_case name `Quick f

let setup ?(n = 3) ?(rows = 80) ?(seed = 7) () =
  let db, query = Parqo.Workloads.chain_db ~n ~rows ~seed () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query () in
  (db, query, env)

let streaming_basics () =
  let db, query, _ = setup () in
  let it = I.of_plan db query (J.access 0) in
  Alcotest.(check int) "layout arity" 3 (B.offset (I.layout it) 0 + 3 - 3 + 3);
  let first = I.next it in
  Alcotest.(check bool) "has a row" true (first <> None);
  let b = I.to_batch it in
  Alcotest.(check int) "rest of the 80 rows" 79 (B.n_rows b)

let closed_iterator_raises () =
  let db, query, _ = setup () in
  let it = I.of_plan db query (J.access 0) in
  I.close it;
  Alcotest.(check bool) "closed raises" true
    (try
       ignore (I.next it);
       false
     with Invalid_argument _ -> true)

let matches_materializing_executor () =
  let db, query, env = setup ~n:4 ~rows:60 ~seed:13 () in
  let rng = Parqo.Rng.create 41 in
  for _ = 1 to 20 do
    let tree = Helpers.random_tree rng env in
    let streamed = I.run_query db query tree in
    let materialized = Ex.run_query db query tree in
    Alcotest.(check bool)
      (Printf.sprintf "agree on %s" (J.to_string tree))
      true
      (B.equal_bags streamed materialized)
  done

let three_executors_agree_on_tpch () =
  let { Parqo.Workloads.db; q3; _ } = Parqo.Workloads.tpch ~seed:5 () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query:q3 () in
  let tree =
    J.join ~clone:2 M.Hash_join
      ~outer:(J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.access 2)
  in
  let a = Ex.run_query db q3 tree in
  let b = I.run_query db q3 tree in
  let c =
    Parqo.Parallel_exec.run_query db q3
      (Parqo.Expand.expand env.Parqo.Env.estimator tree)
  in
  Alcotest.(check bool) "iterator = materializing" true (B.equal_bags a b);
  Alcotest.(check bool) "partitioned = materializing" true (B.equal_bags a c);
  Alcotest.(check bool) "non-empty" true (B.n_rows a > 0)

(* the point of pipelining: a streaming (NL/HJ-probe) plan produces its
   first tuple having read far fewer base rows than a blocking one *)
let first_tuple_effort () =
  let db, query, _ = setup ~rows:200 () in
  let effort tree =
    let it = I.of_plan db query tree in
    match I.next it with
    | Some _ ->
      let n = !(I.rows_until_first it) in
      I.close it;
      n
    | None -> Alcotest.fail "plan produced nothing"
  in
  (* chain c0 <- c1: every c1 row matches, so NL emits after reading ~1
     outer row (plus the memoized inner); sort-merge must consume both
     sides entirely before the first output *)
  let streaming = J.join M.Hash_join ~outer:(J.access 1) ~inner:(J.access 0) in
  let blocking = J.join M.Sort_merge ~outer:(J.access 1) ~inner:(J.access 0) in
  let es = effort streaming and eb = effort blocking in
  Alcotest.(check bool)
    (Printf.sprintf "streaming (%d rows) < blocking (%d rows)" es eb)
    true (es < eb);
  (* sort-merge needs every row of both 200-row tables *)
  Alcotest.(check int) "blocking reads everything" 400 eb

let sorted_index_scan_streams_in_order () =
  let db, query, _ = setup () in
  let catalog = db.Parqo.Datagen.catalog in
  (* chain_db has no indexes; use tpch for an indexed table *)
  ignore catalog;
  let { Parqo.Workloads.db; q3; _ } = Parqo.Workloads.tpch ~seed:5 () in
  let idx =
    List.find
      (fun (i : Parqo.Index.t) -> i.Parqo.Index.name = "idx_orders_o_key")
      (Parqo.Catalog.indexes db.Parqo.Datagen.catalog)
  in
  let it =
    I.of_plan db q3 (J.access ~path:(Parqo.Access_path.Index_scan idx) 1)
  in
  let b = I.to_batch it in
  let key_col = 0 (* o_key is the first column *) in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Parqo.Value.compare a.(key_col) b.(key_col) <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "index order delivered" true (sorted b.B.rows);
  ignore query

let suite =
  ( "iterator",
    [
      t "streaming basics" streaming_basics;
      t "closed raises" closed_iterator_raises;
      t "matches materializing executor" matches_materializing_executor;
      t "three executors agree" three_executors_agree_on_tpch;
      t "first-tuple effort" first_tuple_effort;
      t "index scan order" sorted_index_scan_streams_in_order;
    ] )
