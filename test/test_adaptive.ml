(* Adaptive mid-query re-optimization (Recovery.Replan): identity
   guarantees when it never fires, policy equivalences, and an
   engineered checkpoint-loss scenario where the splice both fires and
   beats static recovery. *)

module Sim = Parqo.Simulator
module TG = Parqo.Task_graph
module F = Parqo.Fault
module R = Parqo.Recovery
module A = Parqo.Adaptive
module J = Parqo.Join_tree
module M = Parqo.Join_method

let t name f = Alcotest.test_case name `Quick f

let bits = Int64.bits_of_float

let check_bits msg a b = Alcotest.(check int64) msg (bits a) (bits b)

(* bit-for-bit outcome equality: makespan, busy, total work and the
   full trace, via Int64.bits_of_float (no epsilon) *)
let check_identical msg (a : Sim.outcome) (b : Sim.outcome) =
  check_bits (msg ^ ": makespan") a.Sim.makespan b.Sim.makespan;
  check_bits (msg ^ ": total_work") a.Sim.total_work b.Sim.total_work;
  Alcotest.(check (array int64))
    (msg ^ ": busy")
    (Array.map bits a.Sim.busy)
    (Array.map bits b.Sim.busy);
  Alcotest.(check (list (pair int64 string)))
    (msg ^ ": trace")
    (List.map (fun (e : Sim.event) -> (bits e.Sim.at, e.Sim.what)) a.Sim.trace)
    (List.map (fun (e : Sim.event) -> (bits e.Sim.at, e.Sim.what)) b.Sim.trace)

(* a join tree with materialized sync points on every join: sort-merge
   producers checkpoint their outputs, which is what re-planning feeds on *)
let sorted_tree n =
  let rec go acc i =
    if i >= n then acc
    else go (J.join M.Sort_merge ~outer:acc ~inner:(J.access i)) (i + 1)
  in
  go (J.access 0) 1

let lower (env : Parqo.Env.t) tree =
  TG.of_optree env
    (Parqo.Expand.expand ~config:env.Parqo.Env.expand_config
       env.Parqo.Env.estimator tree)

(* earliest-finished non-root checkpointed stage and a disk it used *)
let pick_target machine (g : TG.t) (clean : Sim.outcome) =
  let disk_ids = Parqo.Machine.disk_ids machine in
  let stage_disk (s : TG.stage) =
    List.find_opt
      (fun d ->
        List.exists
          (fun (tk : TG.task) ->
            Array.length tk.TG.demands > d && tk.TG.demands.(d) > 0.)
          s.TG.tasks)
      disk_ids
  in
  List.filter_map
    (fun (sid, fin) ->
      if sid = g.TG.root_stage then None
      else
        let s = g.TG.stages.(sid) in
        if s.TG.op_root = None then None
        else Option.map (fun d -> (fin, d)) (stage_disk s))
    clean.Sim.stage_finish
  |> List.sort compare |> List.hd

(* an outage schedule that destroys that checkpoint mid-run and keeps
   the disk dead long enough that waiting it out is clearly worse *)
let engineered () =
  let env = Helpers.chain_env ~n:4 () in
  let tree = sorted_tree 4 in
  let g = lower env tree in
  let clean = Sim.run g in
  let fin, disk = pick_target env.Parqo.Env.machine g clean in
  let outage =
    {
      F.resource = disk;
      at = fin +. (0.01 *. clean.Sim.makespan);
      duration = 5. *. clean.Sim.makespan;
      factor = 0.;
    }
  in
  (env, tree, g, clean, { F.none with F.outages = [ outage ] })

(* without faults, every policy — including Replan with a live
   replanner — is bit-identical to the clean simulator *)
let fault_free_identity () =
  List.iter
    (fun shape ->
      let env = Helpers.chain_env ~n:4 ~shape () in
      let tree = sorted_tree 4 in
      let clean = Sim.run (lower env tree) in
      List.iter
        (fun (name, recovery) ->
          let r = A.simulate ~recovery env tree in
          check_identical (name ^ ": fault-free") clean r.A.outcome;
          Alcotest.(check int) (name ^ ": no splices") 0 r.A.outcome.Sim.n_replans;
          Alcotest.(check int) (name ^ ": no records") 0 (List.length r.A.records))
        [
          ("retry", R.retry_task ());
          ("stage", R.Restart_stage);
          ("sync", R.Restart_from_sync);
          ("replan", R.replan ());
        ])
    [ Parqo.Query_gen.Chain; Parqo.Query_gen.Star ]

(* fail-stops and stragglers alone never cross a sync point: with no
   full-loss outage and an unreachable inflation threshold, Replan is
   bit-identical to Restart_from_sync under the same injected faults *)
let untriggered_replan_is_sync () =
  let env = Helpers.chain_env ~n:4 () in
  let tree = sorted_tree 4 in
  List.iter
    (fun seed ->
      let faults = F.default ~seed ~straggler:true ~fault_rate:0.5 () in
      let sync =
        (A.simulate ~faults ~recovery:R.Restart_from_sync env tree).A.outcome
      in
      let rp =
        A.simulate ~faults ~recovery:(R.replan ~threshold:1e18 ()) env tree
      in
      check_identical (Printf.sprintf "seed %d" seed) sync rp.A.outcome;
      Alcotest.(check int) "no splices" 0 rp.A.outcome.Sim.n_replans)
    [ 1; 2; 3; 4; 5 ]

(* the same hand-built graph generator as test_fault *)
let random_graph rng =
  let n_stages = 1 + Parqo.Rng.int rng 4 in
  let stages =
    List.init n_stages (fun i ->
        let tasks =
          List.init
            (1 + Parqo.Rng.int rng 3)
            (fun j ->
              {
                TG.task_id = (i * 100) + j;
                label = Printf.sprintf "t%d_%d" i j;
                demands = Array.init 3 (fun _ -> 1. +. Parqo.Rng.float rng 10.);
              })
        in
        let deps =
          if i < n_stages - 1 && Parqo.Rng.bool rng then [ i + 1 ] else []
        in
        { TG.stage_id = i; tasks; deps; op_root = None })
  in
  { TG.stages = Array.of_list stages; n_resources = 3; root_stage = 0 }

(* a degraded (factor > 0) outage never destroys checkpoints, so
   Restart_from_sync adds nothing over Restart_stage: bit-identical on
   randomized graphs and schedules (MODEL.md section 7) *)
let sync_equals_stage_on_degraded_outages () =
  let rng = Parqo.Rng.create 1234 in
  for i = 1 to 25 do
    let g = random_graph rng in
    let outages =
      List.init
        (1 + Parqo.Rng.int rng 2)
        (fun _ ->
          {
            F.resource = Parqo.Rng.int rng 3;
            at = Parqo.Rng.float rng 20.;
            duration = 0.5 +. Parqo.Rng.float rng 20.;
            factor = 0.1 +. Parqo.Rng.float rng 0.85;
          })
    in
    let faults =
      { (F.default ~seed:i ~straggler:true ~fault_rate:0.3 ()) with F.outages }
    in
    let stage = Sim.run ~faults ~recovery:R.Restart_stage g in
    let sync = Sim.run ~faults ~recovery:R.Restart_from_sync g in
    check_identical (Printf.sprintf "graph %d" i) stage sync
  done

(* the engineered outage fires the replanner: the splice is recorded in
   the outcome, the trace and the timeline, and the adaptive makespan
   strictly beats static Restart_from_sync recovery *)
let checkpoint_loss_triggers_replan () =
  let env, tree, g, _clean, faults = engineered () in
  let static_sim = Sim.run ~faults ~recovery:R.Restart_from_sync g in
  let r = A.simulate ~faults ~recovery:(R.replan ()) env tree in
  let o = r.A.outcome in
  Alcotest.(check bool) "replanned" true (o.Sim.n_replans >= 1);
  Alcotest.(check int) "one record per splice" o.Sim.n_replans
    (List.length r.A.records);
  List.iter2
    (fun (ev : Sim.replan_event) (rec_ : A.replan_record) ->
      Alcotest.(check string) "plan keys agree" ev.Sim.rp_plan rec_.A.plan_key;
      check_bits "splice times agree" ev.Sim.rp_at rec_.A.at;
      Alcotest.(check bool) "residual is non-trivial" true
        (rec_.A.n_relations >= 1))
    o.Sim.replans r.A.records;
  (match (List.hd r.A.records).A.trigger with
  | Sim.Checkpoint_loss _ -> ()
  | _ -> Alcotest.fail "expected a checkpoint-loss trigger");
  Alcotest.(check bool) "adaptive strictly beats static" true
    (o.Sim.makespan < static_sim.Sim.makespan);
  Alcotest.(check bool) "utilization sound" true (Sim.utilization o <= 1. +. 1e-9);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timeline annotates the splice" true
    (contains (Sim.timeline o) "replan at")

(* re-optimization under 1 and 4 search domains picks the same residual
   plan (deterministic merge), so the spliced simulation is bit-identical *)
let domains_do_not_change_the_splice () =
  let env, tree, _g, _clean, faults = engineered () in
  let d1 = A.simulate ~faults ~recovery:(R.replan ()) ~domains:1 env tree in
  let d4 = A.simulate ~faults ~recovery:(R.replan ()) ~domains:4 env tree in
  Alcotest.(check bool) "replanned" true (d1.A.outcome.Sim.n_replans >= 1);
  check_identical "domains 1 vs 4" d1.A.outcome d4.A.outcome;
  Alcotest.(check (list string))
    "same residual plans"
    (List.map (fun (r : A.replan_record) -> r.A.plan_key) d1.A.records)
    (List.map (fun (r : A.replan_record) -> r.A.plan_key) d4.A.records)

(* the max_replans cap declines further triggers (Restart_from_sync
   fallback) instead of splicing forever *)
let replan_cap_respected () =
  let env, tree, _g, _clean, faults = engineered () in
  let r = A.simulate ~faults ~recovery:(R.replan ()) ~max_replans:0 env tree in
  Alcotest.(check int) "no splice under a zero cap" 0
    r.A.outcome.Sim.n_replans;
  let sync = A.simulate ~faults ~recovery:R.Restart_from_sync env tree in
  check_identical "declined replan = sync" sync.A.outcome r.A.outcome

(* a long deep brownout on a busy resource fires the Slowdown trigger:
   nothing is destroyed, but the replanner steers residual work away *)
let brownout_triggers_slowdown_replan () =
  let env = Helpers.chain_env ~n:4 () in
  let tree = sorted_tree 4 in
  let g = lower env tree in
  let clean = Sim.run g in
  (* the busiest resource, browned out for most of the run *)
  let busiest = ref 0 in
  Array.iteri
    (fun r b -> if b > clean.Sim.busy.(!busiest) then busiest := r)
    clean.Sim.busy;
  let faults =
    {
      F.none with
      F.outages =
        [
          F.brownout ~resource:!busiest
            ~at:(0.1 *. clean.Sim.makespan)
            ~duration:(5. *. clean.Sim.makespan)
            ~factor:0.1;
        ];
    }
  in
  let r = A.simulate ~faults ~recovery:(R.replan ()) env tree in
  Alcotest.(check bool) "replanned on the slowdown" true
    (r.A.outcome.Sim.n_replans >= 1);
  (match (List.hd r.A.records).A.trigger with
  | Sim.Slowdown { resource; factor } ->
    Alcotest.(check int) "trigger names the resource" !busiest resource;
    Helpers.check_float "trigger carries the factor" 0.1 factor
  | tr -> Alcotest.failf "expected a slowdown trigger, got %s"
            (Sim.trigger_to_string tr));
  Alcotest.(check bool) "utilization sound" true
    (Sim.utilization r.A.outcome <= 1. +. 1e-9)

(* a fast CPU joining mid-run fires Scale_out; the spliced plan is
   lowered on the grown machine and delivers work on the new resource *)
let scale_out_splices_onto_grown_resource () =
  let env = Helpers.chain_env ~n:4 () in
  let tree = sorted_tree 4 in
  let g = lower env tree in
  let clean = Sim.run g in
  let nr = Parqo.Machine.n_resources env.Parqo.Env.machine in
  let faults =
    {
      F.none with
      F.grows =
        [
          {
            F.g_at = 0.3 *. clean.Sim.makespan;
            g_kind = Parqo.Resource.Cpu;
            g_node = 0;
            g_speed = 2.0;
          };
        ];
    }
  in
  (* static recovery sees the grown capacity but can never place work on
     it: the old graph has no demand in the new dimension *)
  let static_sim = Sim.run ~faults ~recovery:R.Restart_from_sync g in
  Alcotest.(check int) "static busy tracks the grown dimension" (nr + 1)
    (Array.length static_sim.Sim.busy);
  Helpers.check_float "static delivers nothing on the grown resource" 0.
    static_sim.Sim.busy.(nr);
  let r = A.simulate ~faults ~recovery:(R.replan ()) env tree in
  let o = r.A.outcome in
  Alcotest.(check bool) "replanned on growth" true (o.Sim.n_replans >= 1);
  (match (List.hd r.A.records).A.trigger with
  | Sim.Scale_out { n_new } -> Alcotest.(check int) "one new resource" 1 n_new
  | tr ->
    Alcotest.failf "expected a scale-out trigger, got %s"
      (Sim.trigger_to_string tr));
  Alcotest.(check int) "busy grew a dimension" (nr + 1)
    (Array.length o.Sim.busy);
  Alcotest.(check bool) "grown resource delivered work" true
    (o.Sim.busy.(nr) > 0.)

(* of_string: aliases accepted, errors list every valid name *)
let recovery_of_string () =
  List.iter
    (fun (s, expect) ->
      match R.of_string s with
      | Ok p -> Alcotest.(check string) s expect (R.to_string p)
      | Error e -> Alcotest.failf "%s rejected: %s" s e)
    [
      ("retry", "retry");
      ("stage", "stage");
      ("sync", "sync");
      ("replan", "replan");
      ("re-plan", "replan");
      ("adaptive", "replan");
      ("  REPLAN  ", "replan");
    ];
  match R.of_string "bogus" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun name ->
        Alcotest.(check bool) ("error lists " ^ name) true (contains e name))
      R.valid_names

let suite =
  ( "adaptive replanning",
    [
      t "fault-free identity, all policies" fault_free_identity;
      t "untriggered replan = sync" untriggered_replan_is_sync;
      t "sync = stage on degraded outages" sync_equals_stage_on_degraded_outages;
      t "checkpoint loss triggers replan" checkpoint_loss_triggers_replan;
      t "domains do not change the splice" domains_do_not_change_the_splice;
      t "brownout triggers slowdown replan" brownout_triggers_slowdown_replan;
      t "scale-out splices onto the grown resource"
        scale_out_splices_onto_grown_resource;
      t "replan cap respected" replan_cap_respected;
      t "recovery of_string" recovery_of_string;
    ] )
