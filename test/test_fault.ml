module Sim = Parqo.Simulator
module TG = Parqo.Task_graph
module F = Parqo.Fault
module R = Parqo.Recovery

let t name f = Alcotest.test_case name `Quick f

(* same hand-built graph helper as test_sim *)
let graph ~n_resources stages =
  {
    TG.stages =
      Array.of_list
        (List.mapi
           (fun i (tasks, deps) ->
             {
               TG.stage_id = i;
               tasks =
                 List.mapi
                   (fun j demands ->
                     {
                       TG.task_id = (i * 100) + j;
                       label = Printf.sprintf "t%d_%d" i j;
                       demands;
                     })
                   tasks;
               deps;
               op_root = None;
             })
           stages);
    n_resources;
    root_stage = 0;
  }

let random_graph rng =
  let n_stages = 1 + Parqo.Rng.int rng 4 in
  let stages =
    List.init n_stages (fun i ->
        let tasks =
          List.init
            (1 + Parqo.Rng.int rng 3)
            (fun _ -> Array.init 3 (fun _ -> 1. +. Parqo.Rng.float rng 10.))
        in
        let deps =
          if i < n_stages - 1 && Parqo.Rng.bool rng then [ i + 1 ] else []
        in
        (tasks, deps))
  in
  graph ~n_resources:3 stages

let chain_graph () =
  (* root <- s1 <- s2, two resources *)
  graph ~n_resources:2
    [
      ([ [| 3.; 1. |] ], [ 1 ]);
      ([ [| 2.; 4. |]; [| 1.; 1. |] ], [ 2 ]);
      ([ [| 5.; 2. |] ], []);
    ]

let policies =
  [
    ("retry", R.retry_task ());
    ("stage", R.Restart_stage);
    ("sync", R.Restart_from_sync);
    ("replan", R.replan ());
  ]

(* same seed and config reproduce the run bit-for-bit *)
let determinism () =
  let fc = F.default ~seed:7 ~straggler:true ~fault_rate:0.3 () in
  List.iter
    (fun (name, policy) ->
      let a = Sim.run ~faults:fc ~recovery:policy (chain_graph ()) in
      let b = Sim.run ~faults:fc ~recovery:policy (chain_graph ()) in
      Helpers.check_float (name ^ ": makespan") a.Sim.makespan b.Sim.makespan;
      Alcotest.(check int) (name ^ ": n_faults") a.Sim.n_faults b.Sim.n_faults;
      Alcotest.(check int) (name ^ ": n_retries") a.Sim.n_retries b.Sim.n_retries;
      Alcotest.(check (list (pair (float 0.) string)))
        (name ^ ": trace")
        (List.map (fun (e : Sim.event) -> (e.Sim.at, e.Sim.what)) a.Sim.trace)
        (List.map (fun (e : Sim.event) -> (e.Sim.at, e.Sim.what)) b.Sim.trace))
    policies

(* fault draws are pure functions of (seed, stage, task, attempt) *)
let draw_purity () =
  let fc = F.default ~seed:3 ~straggler:true ~fault_rate:0.5 () in
  for stage = 0 to 4 do
    for task = 0 to 4 do
      for attempt = 1 to 3 do
        let a = F.draw fc ~stage ~task ~attempt in
        let b = F.draw fc ~stage ~task ~attempt in
        Alcotest.(check bool) "fails equal" a.F.fails b.F.fails;
        Helpers.check_float "fail_point equal" a.F.fail_point b.F.fail_point;
        Helpers.check_float "slowdown equal" a.F.slowdown b.F.slowdown;
        Alcotest.(check bool) "fail_point in (0.05,0.95)" true
          (a.F.fail_point > 0.049 && a.F.fail_point < 0.951)
      done
    done
  done

(* an inactive config is bit-identical to no fault injection at all *)
let zero_rate_identity () =
  let g () = chain_graph () in
  let plain = Sim.run (g ()) in
  List.iter
    (fun fc ->
      let o = Sim.run ?faults:fc (g ()) in
      Helpers.check_float "makespan" plain.Sim.makespan o.Sim.makespan;
      Alcotest.(check int) "n_replans" 0 o.Sim.n_replans;
      Alcotest.(check (array (float 0.))) "busy" plain.Sim.busy o.Sim.busy;
      Alcotest.(check int) "n_faults" 0 o.Sim.n_faults;
      Alcotest.(check int) "n_retries" 0 o.Sim.n_retries;
      Alcotest.(check (list (pair (float 0.) string)))
        "trace"
        (List.map (fun (e : Sim.event) -> (e.Sim.at, e.Sim.what)) plain.Sim.trace)
        (List.map (fun (e : Sim.event) -> (e.Sim.at, e.Sim.what)) o.Sim.trace);
      Alcotest.(check (list (pair int (float 0.))))
        "stage_finish" plain.Sim.stage_finish o.Sim.stage_finish)
    [ None; Some F.none; Some (F.default ~fault_rate:0. ()) ]

(* recovery can only cost time: recovered makespan dominates the
   failure-free makespan for every policy, on randomized graphs *)
let recovery_dominates_failure_free () =
  let rng = Parqo.Rng.create 91 in
  for i = 1 to 15 do
    let g = random_graph rng in
    let clean = Sim.run g in
    List.iter
      (fun (name, policy) ->
        let fc = F.default ~seed:i ~fault_rate:0.4 () in
        let o = Sim.run ~faults:fc ~recovery:policy g in
        Alcotest.(check bool)
          (Printf.sprintf "%s: recovered >= clean (graph %d)" name i)
          true
          (o.Sim.makespan +. 1e-9 >= clean.Sim.makespan))
      policies
  done

(* near-certain failure: every first attempt dies, so faults and retries
   are observed and the makespan strictly exceeds the clean run *)
let forced_failures () =
  let fc =
    {
      F.none with
      F.seed = 5;
      task_fail_rate = 0.999;
      max_fail_attempts = 3;
    }
  in
  let clean = Sim.run (chain_graph ()) in
  List.iter
    (fun (name, policy) ->
      let o = Sim.run ~faults:fc ~recovery:policy (chain_graph ()) in
      Alcotest.(check bool) (name ^ ": faults observed") true (o.Sim.n_faults > 0);
      Alcotest.(check bool) (name ^ ": retries observed") true
        (o.Sim.n_retries > 0);
      Alcotest.(check bool) (name ^ ": slower than clean") true
        (o.Sim.makespan > clean.Sim.makespan);
      Alcotest.(check bool) (name ^ ": fault events recorded") true
        (List.length o.Sim.faults = o.Sim.n_faults);
      List.iter
        (fun (f : Sim.fault_event) ->
          Alcotest.(check bool) "attempt from 1" true (f.Sim.f_attempt >= 1))
        o.Sim.faults)
    policies

(* a full outage freezes the affected resource for its duration *)
let outage_delays () =
  let g () = graph ~n_resources:1 [ ([ [| 4. |] ], []) ] in
  let fc =
    { F.none with F.outages = [ { F.resource = 0; at = 1.; duration = 2.; factor = 0. } ] }
  in
  let o = Sim.run ~faults:fc (g ()) in
  (* 1 unit done by t=1, frozen until t=3, remaining 3 units by t=6 *)
  Helpers.check_float "outage window added" 6. o.Sim.makespan;
  Alcotest.(check int) "outage counted" 1 o.Sim.n_faults;
  (* degradation to half capacity doubles the run *)
  let half =
    { F.none with F.outages = [ { F.resource = 0; at = 0.; duration = 100.; factor = 0.5 } ] }
  in
  let o = Sim.run ~faults:half (g ()) in
  Helpers.check_float "half capacity doubles" 8. o.Sim.makespan

(* Restart_from_sync: losing a resource destroys the checkpoints on it,
   so finished producers re-execute; Restart_stage keeps them *)
let checkpoint_loss_cascades () =
  let g () =
    graph ~n_resources:2 [ ([ [| 0.; 10. |] ], [ 1 ]); ([ [| 2.; 0. |] ], []) ]
  in
  let fc =
    { F.none with F.outages = [ { F.resource = 0; at = 3.; duration = 1.; factor = 0. } ] }
  in
  (* producer (stage 1) done at t=2; outage on its resource at t=3.
     Restart_stage: consumer never touches r0, unaffected: 2 + 10 = 12 *)
  let keep = Sim.run ~faults:fc ~recovery:R.Restart_stage (g ()) in
  Helpers.check_float "checkpoint survives" 12. keep.Sim.makespan;
  (* Restart_from_sync: checkpoint on r0 lost, producer re-runs during the
     outage window (no capacity until t=4), consumer restarts after: 16 *)
  let lose = Sim.run ~faults:fc ~recovery:R.Restart_from_sync (g ()) in
  Helpers.check_float "checkpoint lost, re-executed" 16. lose.Sim.makespan;
  Alcotest.(check bool) "re-execution recorded" true
    (lose.Sim.n_retries > keep.Sim.n_retries)

(* serialized mode injects the same fault process *)
let serialized_faults () =
  let fc = F.default ~seed:11 ~fault_rate:0.5 () in
  let clean = Sim.run ~mode:Sim.Serialized (chain_graph ()) in
  let a = Sim.run ~mode:Sim.Serialized ~faults:fc (chain_graph ()) in
  let b = Sim.run ~mode:Sim.Serialized ~faults:fc (chain_graph ()) in
  Helpers.check_float "deterministic" a.Sim.makespan b.Sim.makespan;
  Alcotest.(check bool) "faults observed" true (a.Sim.n_faults > 0);
  Alcotest.(check bool) "at least total work" true
    (a.Sim.makespan +. 1e-9 >= clean.Sim.makespan)

(* invalid configs are rejected with a structured error *)
let invalid_config_rejected () =
  let bad = { F.none with F.task_fail_rate = 1.5 } in
  let raised =
    try
      ignore (Sim.run ~faults:bad (chain_graph ()));
      false
    with Parqo.Parqo_error.Error e ->
      e.Parqo.Parqo_error.subsystem = "simulator"
  in
  Alcotest.(check bool) "Parqo_error from the simulator" true raised

(* simulate_plan under faults: full pipeline from join tree, annotated
   timeline mentions the fault count *)
let plan_level_faults () =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec Parqo.Query_gen.Chain 3)
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let tree =
    Parqo.Join_tree.join Parqo.Join_method.Hash_join
      ~outer:
        (Parqo.Join_tree.join Parqo.Join_method.Hash_join
           ~outer:(Parqo.Join_tree.access 0)
           ~inner:(Parqo.Join_tree.access 1))
      ~inner:(Parqo.Join_tree.access 2)
  in
  let clean = Sim.simulate_plan env tree in
  let fc = { (F.default ~seed:2 ~fault_rate:0.9 ()) with F.max_fail_attempts = 2 } in
  let o = Sim.simulate_plan ~faults:fc env tree in
  Alcotest.(check bool) "faults observed" true (o.Sim.n_faults > 0);
  Alcotest.(check bool) "recovered >= clean" true
    (o.Sim.makespan +. 1e-9 >= clean.Sim.makespan);
  let text = Sim.timeline o in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timeline annotates faults" true (contains text "fault")

(* brownouts, scale-out schedules and the piecewise-capacity boundaries *)
let hetero_fault_config () =
  (* brownout requires a factor strictly inside (0, 1) *)
  let b = F.brownout ~resource:0 ~at:1. ~duration:2. ~factor:0.5 in
  Helpers.check_float "brownout factor kept" 0.5 b.F.factor;
  List.iter
    (fun factor ->
      match F.brownout ~resource:0 ~at:1. ~duration:2. ~factor with
      | (_ : F.outage) -> Alcotest.failf "factor %f accepted" factor
      | exception Invalid_argument _ -> ())
    [ 0.; 1.; -0.5; 1.5 ];
  (* grow validation: onset and speed sanity *)
  let grow g_at g_speed =
    { F.g_at; g_kind = Parqo.Resource.Cpu; g_node = 0; g_speed }
  in
  Alcotest.(check bool) "valid grow accepted" true
    (Result.is_ok (F.validate { F.none with F.grows = [ grow 3. 2. ] }));
  List.iter
    (fun g ->
      Alcotest.(check bool) "invalid grow rejected" true
        (Result.is_error (F.validate { F.none with F.grows = [ g ] })))
    [ grow (-1.) 1.; grow 3. 0.; grow 3. Float.nan; grow Float.nan 1. ];
  (* random_rescales: deterministic per seed, windows inside the horizon,
     factors at the requested level *)
  let schedule seed =
    F.random_rescales (Parqo.Rng.create seed) ~n_resources:3 ~horizon:100.
      ~rate:2. ~mean_duration:10. ~factor:0.3
  in
  let a = schedule 42 and b = schedule 42 in
  Alcotest.(check int) "same seed, same schedule" (List.length a)
    (List.length b);
  List.iter2
    (fun (x : F.outage) (y : F.outage) ->
      Alcotest.(check int) "resource" x.F.resource y.F.resource;
      Helpers.check_float "onset" x.F.at y.F.at;
      Helpers.check_float "duration" x.F.duration y.F.duration)
    a b;
  List.iter
    (fun (o : F.outage) ->
      Alcotest.(check bool) "onset in horizon" true
        (o.F.at >= 0. && o.F.at < 100.);
      Alcotest.(check bool) "resource in range" true
        (o.F.resource >= 0 && o.F.resource < 3);
      Helpers.check_float "brownout factor" 0.3 o.F.factor)
    a;
  (* next_capacity_change walks outage onsets, expiries and grow onsets *)
  let fc =
    {
      F.none with
      F.outages = [ { F.resource = 0; at = 2.; duration = 3.; factor = 0.5 } ];
      grows = [ grow 7. 2. ];
    }
  in
  let next after =
    match F.next_capacity_change fc ~after with
    | Some t -> t
    | None -> Alcotest.fail "expected a boundary"
  in
  Helpers.check_float "onset" 2. (next 0.);
  Helpers.check_float "expiry" 5. (next 2.);
  Helpers.check_float "grow onset" 7. (next 5.);
  Alcotest.(check bool) "nothing after the last boundary" true
    (F.next_capacity_change fc ~after:7. = None);
  (* capacity reads the brownout window *)
  Helpers.check_float "inside the window" 0.5 (F.capacity fc ~time:3. ~resource:0);
  Helpers.check_float "outside the window" 1. (F.capacity fc ~time:6. ~resource:0)

let suite =
  ( "fault injection",
    [
      t "determinism" determinism;
      t "draw purity" draw_purity;
      t "zero-rate identity" zero_rate_identity;
      t "recovery dominates failure-free" recovery_dominates_failure_free;
      t "forced failures" forced_failures;
      t "outage delays" outage_delays;
      t "checkpoint loss cascades" checkpoint_loss_cascades;
      t "serialized faults" serialized_faults;
      t "invalid config rejected" invalid_config_rejected;
      t "plan-level faults" plan_level_faults;
      t "heterogeneous fault config" hetero_fault_config;
    ] )
