module S = Parqo.Session
module Cm = Parqo.Costmodel

let t name f = Alcotest.test_case name `Quick f

let session () =
  match S.of_workload "tpch" with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let workload_lookup () =
  List.iter
    (fun name ->
      match S.of_workload name with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    [ "tpch"; "portfolio"; "university"; "chain" ];
  match S.of_workload "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-workload error"

let tables_listed () =
  let s = session () in
  let ts = S.tables s in
  Alcotest.(check bool) "has lineitem" true (List.mem "lineitem" ts);
  Alcotest.(check int) "seven tables" 7 (List.length ts)

let sql_runs () =
  let s = session () in
  match
    S.sql s
      "SELECT c.c_key, o.o_total FROM customer c, orders o WHERE c.c_key = \
       o.c_key AND o.o_total >= 9000"
  with
  | Error e -> Alcotest.fail e
  | Ok a ->
    Alcotest.(check bool) "verified" true a.S.verified;
    Alcotest.(check bool) "has rows" true (Parqo.Batch.n_rows a.S.batch > 0);
    Alcotest.(check bool) "plan costed" true
      (a.S.plan.Cm.response_time > 0. && a.S.plan.Cm.work > 0.);
    Alcotest.(check bool) "work baseline present" true (a.S.work_optimal <> None)

let budget_respected () =
  let s = session () in
  let q =
    "SELECT o.o_key, l.l_price FROM orders o, lineitem l WHERE o.o_key = l.o_key"
  in
  S.set_bound s (Parqo.Bounds.Throughput_degradation 1.0);
  let tight =
    match S.sql s q with Ok a -> a | Error e -> Alcotest.fail e
  in
  S.set_bound s Parqo.Bounds.Unbounded;
  let free = match S.sql s q with Ok a -> a | Error e -> Alcotest.fail e in
  (match tight.S.work_optimal with
  | Some w ->
    Alcotest.(check bool) "tight budget caps work" true
      (tight.S.plan.Cm.work <= w.Cm.work +. 1e-6)
  | None -> Alcotest.fail "no baseline");
  Alcotest.(check bool) "free budget at least as fast" true
    (free.S.plan.Cm.response_time <= tight.S.plan.Cm.response_time +. 1e-6);
  Alcotest.(check bool) "same answer either way" true
    (Parqo.Batch.equal_bags free.S.batch tight.S.batch)

let explain_text () =
  let s = session () in
  match S.explain s "SELECT * FROM nation n, region r WHERE n.r_key = r.r_key" with
  | Error e -> Alcotest.fail e
  | Ok text ->
    Alcotest.(check bool) "mentions response time" true
      (let needle = "response time" in
       let n = String.length needle and h = String.length text in
       let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
       scan 0)

let sql_errors_propagate () =
  let s = session () in
  (match S.sql s "SELECT * FROM ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-table error");
  match S.sql s "not sql at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let simulate_under_faults () =
  let s = session () in
  let q =
    "SELECT c.c_key, o.o_total FROM customer c, orders o WHERE c.c_key = \
     o.c_key"
  in
  Alcotest.(check bool) "default faults inactive" false
    (Parqo.Fault.is_active (S.faults s));
  Alcotest.(check string) "default recovery" "stage"
    (Parqo.Recovery.to_string (S.recovery s));
  let clean =
    match S.simulate s q with Ok r -> r | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "clean makespan positive" true
    (clean.S.sim.Parqo.Simulator.makespan > 0.);
  Alcotest.(check int) "no faults injected" 0
    clean.S.sim.Parqo.Simulator.n_faults;
  Alcotest.(check int) "no replans" 0 (List.length clean.S.sim_replans);
  S.set_faults s (Parqo.Fault.default ~seed:3 ~fault_rate:0.9 ());
  S.set_recovery s (Parqo.Recovery.replan ());
  Alcotest.(check string) "recovery updated" "replan"
    (Parqo.Recovery.to_string (S.recovery s));
  Alcotest.(check bool) "faults updated" true
    (Parqo.Fault.is_active (S.faults s));
  match S.simulate s q with
  | Error e -> Alcotest.fail e
  | Ok faulty ->
    Alcotest.(check bool) "faults observed" true
      (faulty.S.sim.Parqo.Simulator.n_faults > 0);
    Alcotest.(check int) "records match outcome"
      faulty.S.sim.Parqo.Simulator.n_replans
      (List.length faulty.S.sim_replans);
    Alcotest.(check bool) "utilization sound" true
      (Parqo.Simulator.utilization faulty.S.sim <= 1. +. 1e-9)

let suite =
  ( "session",
    [
      t "workload lookup" workload_lookup;
      t "tables listed" tables_listed;
      t "sql runs" sql_runs;
      t "budget respected" budget_respected;
      t "explain text" explain_text;
      t "errors propagate" sql_errors_propagate;
      t "simulate under faults" simulate_under_faults;
    ] )
