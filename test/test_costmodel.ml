module Cm = Parqo.Costmodel
module D = Parqo.Descriptor
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env ?(nodes = 4) ?(shape = G.Chain) ?(n = 3) () =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes () in
  Parqo.Env.create ~machine ~catalog ~query ()

let leftdeep_tree ?(method_ = M.Hash_join) ?(clone = 1) n =
  List.fold_left
    (fun acc rel -> J.join ~clone method_ ~outer:acc ~inner:(J.access rel))
    (J.access 0)
    (List.init (n - 1) (fun i -> i + 1))

let evaluation_consistency () =
  let env = env () in
  let e = Cm.evaluate env (leftdeep_tree 3) in
  Helpers.check_float "rt = descriptor rl time" (D.response_time e.Cm.descriptor)
    e.Cm.response_time;
  Helpers.check_float "work = descriptor work" (D.work e.Cm.descriptor) e.Cm.work;
  Alcotest.(check bool) "positive costs" true (e.Cm.work > 0. && e.Cm.response_time > 0.)

let rt_bounded_by_work () =
  (* on any machine, response time of a plan never exceeds its work plus
     pipeline penalties; with delta(k) bounded by 1+k *)
  let env = env () in
  let rng = Parqo.Rng.create 31 in
  let k = env.Parqo.Env.machine.Parqo.Machine.params.Parqo.Machine.pipeline_delta_k in
  for _ = 1 to 50 do
    let tree = Helpers.random_tree rng env in
    let e = Cm.evaluate env tree in
    Alcotest.(check bool) "rt <= (1+k) * work" true
      (e.Cm.response_time <= ((1. +. k) ** 3.) *. e.Cm.work +. 1e-6)
  done

let parallelism_helps () =
  let env = env () in
  let seq = Cm.evaluate env (leftdeep_tree ~clone:1 3) in
  let par = Cm.evaluate env (leftdeep_tree ~clone:4 3) in
  Alcotest.(check bool) "cloning reduces response time" true
    (par.Cm.response_time < seq.Cm.response_time);
  Alcotest.(check bool) "cloning costs extra work" true (par.Cm.work >= seq.Cm.work)

let materialize_trades_penalty () =
  (* forcing materialization must not change total work (stretch mode)
     and yields a valid descriptor *)
  let env = env () in
  let pipelined = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let materialized =
    J.join ~materialize:true M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)
  in
  let ep = Cm.evaluate env pipelined and em = Cm.evaluate env materialized in
  Helpers.check_float ~eps:1e-6 "same work" ep.Cm.work em.Cm.work;
  Helpers.check_float "materialized blocks"
    (D.response_time em.Cm.descriptor)
    (D.first_tuple_time em.Cm.descriptor)

let bushy_vs_leftdeep () =
  (* star query, 4 relations: bushy trees can run both dimension joins in
     parallel; on a parallel machine some bushy plan should be at least as
     good as the same-method left-deep plan *)
  let env = env ~shape:G.Star ~n:4 () in
  let ld = Cm.evaluate env (leftdeep_tree 4) in
  let bushy =
    J.join M.Hash_join
      ~outer:(J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.join M.Hash_join ~outer:(J.access 2) ~inner:(J.access 3))
  in
  (* star: 2-3 joins 0; this tree is legal but the 2-3 join is cartesian *)
  let eb = Cm.evaluate env bushy in
  Alcotest.(check bool) "both evaluable" true
    (ld.Cm.response_time > 0. && eb.Cm.response_time > 0.)

let work_additivity () =
  (* physical transparency: the work of a plan equals the sum over its
     operator tree of base works (stretch mode keeps work exact) *)
  let env = env () in
  let tree = leftdeep_tree 3 in
  let e = Cm.evaluate env tree in
  let sum = ref 0. in
  Parqo.Op.iter
    (fun node ->
      if
        not
          (Parqo.Opcost.nl_inner_is_free node)
        (* all ops here are costed *)
      then
        sum :=
          !sum
          +. D.work
               (Parqo.Opcost.base env.Parqo.Env.placement env.Parqo.Env.estimator
                  node))
    e.Cm.optree;
  Helpers.check_float ~eps:1e-6 "work additivity" !sum e.Cm.work

let deterministic () =
  let env = env () in
  let tree = leftdeep_tree 3 in
  let a = Cm.evaluate env tree and b = Cm.evaluate env tree in
  Helpers.check_float "same rt" a.Cm.response_time b.Cm.response_time;
  Helpers.check_float "same work" a.Cm.work b.Cm.work

(* the pipeline penalty only ever hurts: any plan's response time with
   delta_k > 0 is at least its delta-free response time, and work is
   unchanged in stretch mode *)
let delta_ablation () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let mk k =
    let params = { Parqo.Machine.default_params with pipeline_delta_k = k } in
    Parqo.Env.create
      ~machine:(Parqo.Machine.shared_nothing ~params ~nodes:4 ())
      ~catalog ~query ()
  in
  let free = mk 0. and taxed = mk 0.5 in
  let rng = Parqo.Rng.create 62 in
  for _ = 1 to 30 do
    let tree = Helpers.random_tree rng free in
    let a = Cm.evaluate free tree and b = Cm.evaluate taxed tree in
    Alcotest.(check bool) "delta cannot help" true
      (a.Cm.response_time <= b.Cm.response_time +. 1e-9);
    Helpers.check_float ~eps:1e-6 "work unchanged" a.Cm.work b.Cm.work
  done

let suite =
  ( "costmodel",
    [
      t "delta ablation" delta_ablation;
      t "evaluation consistency" evaluation_consistency;
      t "rt bounded" rt_bounded_by_work;
      t "parallelism helps" parallelism_helps;
      t "materialize annotation" materialize_trades_penalty;
      t "bushy evaluable" bushy_vs_leftdeep;
      t "work additivity" work_additivity;
      t "deterministic" deterministic;
    ] )
