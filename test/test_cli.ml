(* The installed CLI surface, driven as a subprocess (the binary is a
   declared test dependency, built into ../bin).  Bad flag values must
   exit nonzero with the list of valid choices and no backtrace; the
   replan policy must run end to end. *)

let t name f = Alcotest.test_case name `Quick f

let cli = Filename.concat Filename.parent_dir_name "bin/parqo_cli.exe"

let run_cli args =
  let out = Filename.temp_file "parqo_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >%s 2>&1" (Filename.quote cli) args
         (Filename.quote out))
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let skip_unless_built k = if Sys.file_exists cli then k () else ()

let bad_recovery_listed () =
  skip_unless_built @@ fun () ->
  let code, text =
    run_cli "simulate --shape chain -n 3 --recovery bogus"
  in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("lists " ^ name) true (contains text name))
    Parqo.Recovery.valid_names;
  Alcotest.(check bool) "no backtrace" false (contains text "Raised at")

let bad_fault_rate_rejected () =
  skip_unless_built @@ fun () ->
  let code, text = run_cli "simulate --shape chain -n 3 --fault-rate 1.5" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool) "explains the range" true (contains text "[0, 1)");
  Alcotest.(check bool) "no backtrace" false (contains text "Raised at")

let replan_policy_runs () =
  skip_unless_built @@ fun () ->
  let code, text =
    run_cli
      "simulate --shape chain -n 3 --fault-rate 0.3 --recovery replan \
       --fault-seed 1"
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports makespan" true (contains text "makespan");
  Alcotest.(check bool) "reports replans" true (contains text "replans")

let serve_runs () =
  skip_unless_built @@ fun () ->
  let code, text =
    run_cli
      "serve --tables 4 --pool 6 --requests 15 --rate 200 --deadline 50 \
       --chaos"
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports dispositions" true (contains text "planned");
  Alcotest.(check bool) "reports latency" true (contains text "p99");
  Alcotest.(check bool) "chaos noted" true (contains text "chaos on")

let bad_arrival_listed () =
  skip_unless_built @@ fun () ->
  let code, text = run_cli "serve --requests 5 --arrival bogus" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("lists " ^ name) true (contains text name))
    [ "uniform"; "poisson"; "burst" ];
  Alcotest.(check bool) "no backtrace" false (contains text "Raised at")

let bad_deadline_rejected () =
  skip_unless_built @@ fun () ->
  let code, text = run_cli "serve --requests 5 --deadline=-3" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool) "explains the constraint" true (contains text "> 0");
  Alcotest.(check bool) "no backtrace" false (contains text "Raised at")

let suite =
  ( "cli",
    [
      t "bad recovery lists choices" bad_recovery_listed;
      t "bad fault rate rejected" bad_fault_rate_rejected;
      t "replan policy runs" replan_policy_runs;
      t "serve runs end to end" serve_runs;
      t "bad arrival process lists choices" bad_arrival_listed;
      t "bad deadline rejected" bad_deadline_rejected;
    ] )
